module ordo

go 1.22
