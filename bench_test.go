// Package-level benchmarks: one testing.B benchmark per table and figure
// of the paper (each run regenerates its rows/series through the
// internal/bench harness and reports the headline metric), plus native
// micro-benchmarks of the primitives on the host hardware.
//
// Regenerate everything at full fidelity with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/ordo-bench            # paper-style tables
package ordo_test

import (
	"io"
	"sync/atomic"
	"testing"

	"ordo"
	"ordo/internal/bench"
	"ordo/internal/db"
	"ordo/internal/sim"
	"ordo/internal/topology"
)

// benchExperiment runs one harness experiment per iteration and reports
// nothing but wall time — the tables themselves go to ordo-bench.
func benchExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Run(io.Discard, bench.Quick)
	}
}

func BenchmarkTable1_Offsets(b *testing.B)         { benchExperiment(b, "table1") }
func BenchmarkFigure1_RLUPhi(b *testing.B)         { benchExperiment(b, "fig1") }
func BenchmarkFigure8a_TimestampCost(b *testing.B) { benchExperiment(b, "fig8a") }
func BenchmarkFigure8b_TimestampGen(b *testing.B)  { benchExperiment(b, "fig8b") }
func BenchmarkFigure9_Heatmap(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFigure10_Exim(b *testing.B)          { benchExperiment(b, "fig10") }
func BenchmarkFigure11_RLU(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkFigure12_RLUDefer(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFigure13_YCSB(b *testing.B)          { benchExperiment(b, "fig13") }
func BenchmarkFigure14_TPCC(b *testing.B)          { benchExperiment(b, "fig14") }
func BenchmarkFigure15_STAMP(b *testing.B)         { benchExperiment(b, "fig15") }
func BenchmarkFigure16_Sensitivity(b *testing.B)   { benchExperiment(b, "fig16") }

// Headline-metric benchmarks: report the paper's key ratios as custom
// metrics so `go test -bench` output records them.

func BenchmarkHeadline_Fig13_OCCOrdoSpeedup(b *testing.B) {
	x := topology.Xeon()
	var ratio float64
	for i := 0; i < b.N; i++ {
		occ := sim.RunYCSBAt(sim.YCSBConfig{Topo: x, Protocol: db.OCC}, x.Threads()).OpsPerUSec()
		occOrdo := sim.RunYCSBAt(sim.YCSBConfig{Topo: x, Protocol: db.OCCOrdo}, x.Threads()).OpsPerUSec()
		ratio = occOrdo / occ
	}
	b.ReportMetric(ratio, "x-speedup")
}

func BenchmarkHeadline_Fig1_RLUOrdoSpeedup(b *testing.B) {
	p := topology.Phi()
	var ratio float64
	for i := 0; i < b.N; i++ {
		l := sim.RunRLUAt(sim.RLUConfig{Topo: p, UpdateRatio: 0.02}, p.Threads()).OpsPerUSec()
		o := sim.RunRLUAt(sim.RLUConfig{Topo: p, UpdateRatio: 0.02, Ordo: true}, p.Threads()).OpsPerUSec()
		ratio = o / l
	}
	b.ReportMetric(ratio, "x-speedup")
}

// Native micro-benchmarks on the host hardware.

func BenchmarkNative_GetTime(b *testing.B) {
	o := ordo.New(ordo.Hardware, 64)
	var sink ordo.Time
	for i := 0; i < b.N; i++ {
		sink = o.GetTime()
	}
	_ = sink
}

func BenchmarkNative_NewTime(b *testing.B) {
	o := ordo.New(ordo.Hardware, 64)
	t := o.GetTime()
	for i := 0; i < b.N; i++ {
		t = o.NewTime(t)
	}
}

func BenchmarkNative_CmpTime(b *testing.B) {
	o := ordo.New(ordo.Hardware, 276)
	t1, t2 := o.GetTime(), o.GetTime()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = o.CmpTime(t1, t2)
	}
	_ = sink
}

// BenchmarkNative_AtomicCounter is the contended baseline GetTime replaces.
func BenchmarkNative_AtomicCounter(b *testing.B) {
	var clock atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			clock.Add(1)
		}
	})
}

func BenchmarkNative_GetTimeParallel(b *testing.B) {
	o := ordo.New(ordo.Hardware, 64)
	b.RunParallel(func(pb *testing.PB) {
		var sink ordo.Time
		for pb.Next() {
			sink = o.GetTime()
		}
		_ = sink
	})
}

func BenchmarkNative_Calibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := ordo.Calibrate(ordo.CalibrationOptions{Runs: 10, MaxPairs: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
