// db-ycsb runs the YCSB workload natively over every concurrency-control
// protocol in the engine — Silo, TicToc, OCC, OCC_ORDO, Hekaton and
// Hekaton_ORDO — and prints throughput and abort rates, the native-scale
// analogue of the paper's Figure 13.
//
//	go run ./examples/db-ycsb -workers 4 -records 10000 -reads 1.0
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"ordo/internal/core"
	"ordo/internal/db"
	"ordo/internal/db/ycsb"
)

func main() {
	var (
		workers = flag.Int("workers", 4, "worker goroutines")
		records = flag.Int("records", 10000, "table size")
		reads   = flag.Float64("reads", 1.0, "read ratio (paper Fig. 13: 1.0)")
		seconds = flag.Float64("seconds", 1, "duration per protocol")
	)
	flag.Parse()

	o, b, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 100})
	if err != nil {
		log.Fatalf("calibrate: %v", err)
	}
	fmt.Printf("ORDO_BOUNDARY = %d ticks; YCSB %d records, %.0f%% reads, %d workers\n\n",
		b.Global, *records, *reads*100, *workers)

	for _, p := range db.AllProtocols() {
		engine, err := db.New(p, ycsb.Schema(), o)
		if err != nil {
			log.Fatalf("%v: %v", p, err)
		}
		w, err := ycsb.New(engine, ycsb.Config{Records: *records, OpsPerTxn: 2, ReadRatio: *reads})
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Load(); err != nil {
			log.Fatalf("%v: load: %v", p, err)
		}

		var wg sync.WaitGroup
		stop := make(chan struct{})
		wks := make([]*ycsb.Worker, *workers)
		for i := range wks {
			wks[i] = w.NewWorker(int64(i + 1))
			wg.Add(1)
			go func(wk *ycsb.Worker) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := wk.RunOne(); err != nil {
						log.Printf("txn error: %v", err)
						return
					}
				}
			}(wks[i])
		}
		time.Sleep(time.Duration(*seconds * float64(time.Second)))
		close(stop)
		wg.Wait()

		var txns, aborts uint64
		for _, wk := range wks {
			txns += wk.Txns
			aborts += wk.Aborts
		}
		fmt.Printf("%-13s %9.0f txns/sec   abort rate %.2f%%\n",
			p, float64(txns)/(*seconds), 100*float64(aborts)/float64(txns+aborts+1))
	}
}
