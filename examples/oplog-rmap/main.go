// oplog-rmap demonstrates OpLog on the kernel reverse-map structure from
// §6.3: "processes" fork and exit concurrently, each fork adding page
// mappings and each exit removing them, while a reclaim thread
// periodically walks pages. It compares the lock-based baseline with the
// OpLog versions (raw TSC and Ordo timestamps).
//
//	go run ./examples/oplog-rmap -workers 4 -seconds 1
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ordo/internal/core"
	"ordo/internal/oplog"
)

const pagesPerProc = 16

func main() {
	var (
		workers = flag.Int("workers", 4, "forking goroutines")
		seconds = flag.Float64("seconds", 1, "duration per variant")
	)
	flag.Parse()

	o, b, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 100})
	if err != nil {
		log.Fatalf("calibrate: %v", err)
	}
	fmt.Printf("ORDO_BOUNDARY = %d ticks\n\n", b.Global)

	lockBased(*workers, *seconds)
	opLogged("Oplog (raw TSC)  ", oplog.RawTSC{}, *workers, *seconds)
	opLogged("Oplog_ORDO       ", oplog.OrdoStamp{O: o}, *workers, *seconds)
}

func lockBased(workers int, seconds float64) {
	r := oplog.NewLockedRmap()
	ops := drive(workers, seconds,
		func(worker int, proc uint64, rng *rand.Rand) {
			for pg := 0; pg < pagesPerProc; pg++ {
				r.AddMapping(uint64(pg), oplog.Mapping{Proc: proc, VA: uint64(pg) << 12})
			}
			r.RemoveProc(proc)
		},
		func() { r.Walk(0) })
	fmt.Printf("Vanilla (locked) %9.0f forks/sec\n", float64(ops)/seconds)
}

func opLogged(name string, stamp oplog.Timestamper, workers int, seconds float64) {
	r := oplog.NewRmap(stamp)
	handles := make([]*oplog.RmapHandle, workers)
	for i := range handles {
		handles[i] = r.NewHandle()
	}
	ops := drive(workers, seconds,
		func(worker int, proc uint64, rng *rand.Rand) {
			h := handles[worker]
			for pg := 0; pg < pagesPerProc; pg++ {
				h.AddMapping(uint64(pg), oplog.Mapping{Proc: proc, VA: uint64(pg) << 12})
			}
			h.RemoveProc(proc)
		},
		func() { r.Walk(0) })
	fmt.Printf("%s %9.0f forks/sec\n", name, float64(ops)/seconds)
}

// drive runs `fork` repeatedly on each worker and `walk` on a reader until
// the duration elapses; returns total fork count.
func drive(workers int, seconds float64, fork func(int, uint64, *rand.Rand), walk func()) uint64 {
	var total atomic.Uint64
	var procIDs atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			var ops uint64
			for {
				select {
				case <-stop:
					total.Add(ops)
					return
				default:
				}
				fork(worker, procIDs.Add(1), rng)
				ops++
			}
		}(w)
	}
	wg.Add(1)
	go func() { // reclaim walker
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			walk()
			time.Sleep(10 * time.Millisecond)
		}
	}()
	time.Sleep(time.Duration(seconds * float64(time.Second)))
	close(stop)
	wg.Wait()
	return total.Load()
}
