// stm-bank demonstrates the TL2 software transactional memory on a bank
// of accounts: concurrent transfers with a running audit that must always
// observe the invariant total. It runs both clock designs and reports
// throughput and abort rates.
//
//	go run ./examples/stm-bank -workers 4 -accounts 64 -seconds 1
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"ordo/internal/core"
	"ordo/internal/tl2"
)

func main() {
	var (
		workers  = flag.Int("workers", 4, "transfer goroutines")
		accounts = flag.Int("accounts", 64, "bank accounts")
		seconds  = flag.Float64("seconds", 1, "duration per variant")
	)
	flag.Parse()

	o, b, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 100})
	if err != nil {
		log.Fatalf("calibrate: %v", err)
	}
	fmt.Printf("ORDO_BOUNDARY = %d ticks\n\n", b.Global)

	for _, mode := range []struct {
		name string
		stm  *tl2.STM
	}{
		{"TL2 (logical clock)", tl2.New(tl2.Logical, nil, *accounts)},
		{"TL2_ORDO           ", tl2.New(tl2.Ordo, o, *accounts)},
	} {
		runBank(mode.name, mode.stm, *workers, *accounts, *seconds)
	}
}

func runBank(name string, s *tl2.STM, workers, accounts int, seconds float64) {
	const initial = 1000
	for a := 0; a < accounts; a++ {
		s.WriteDirect(a, initial)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amount := uint64(1 + rng.Intn(10))
				_ = s.Atomically(func(tx *tl2.Txn) error {
					bal := tx.Load(from)
					if bal < amount {
						return nil // insufficient funds: no-op commit
					}
					tx.Store(from, bal-amount)
					tx.Store(to, tx.Load(to)+amount)
					return nil
				})
			}
		}(int64(w + 1))
	}

	// Auditor: full-scan transactions that must always see the total.
	var audits, bad int
	wg.Add(1)
	go func() {
		defer wg.Done()
		want := uint64(accounts * initial)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sum uint64
			if err := s.Atomically(func(tx *tl2.Txn) error {
				sum = 0
				for a := 0; a < accounts; a++ {
					sum += tx.Load(a)
				}
				return nil
			}); err == nil {
				audits++
				if sum != want {
					bad++
				}
			}
		}
	}()

	time.Sleep(time.Duration(seconds * float64(time.Second)))
	close(stop)
	wg.Wait()

	commits, aborts := s.Stats()
	fmt.Printf("%s  %8.0f txns/sec  abort rate %.1f%%  audits %d (torn: %d)\n",
		name, float64(commits)/seconds,
		100*float64(aborts)/float64(commits+aborts+1), audits, bad)
	if bad > 0 {
		log.Fatalf("%s: %d audits observed a torn total — serializability broken", name, bad)
	}
}
