// stm-bank demonstrates the TL2 software transactional memory on a bank
// of accounts: concurrent transfers with a running audit that must always
// observe the invariant total. It runs both clock designs and reports
// throughput and abort rates.
//
// Transactions run through db.RunWithRetry over a thin adapter (tl2.Try
// mapped onto the db.Session surface), so the STM demo and the database
// engines share one conflict-retry policy.
//
//	go run ./examples/stm-bank -workers 4 -accounts 64 -seconds 1
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"ordo/internal/core"
	"ordo/internal/db"
	"ordo/internal/tl2"
)

// maxRetries caps each transaction's conflict retries; the bank's small
// transactions never come close under a correct STM.
const maxRetries = 1 << 20

// stmSession adapts one STM heap to db.Session: each Run is one tl2.Try
// attempt, with tl2.ErrConflict translated to db.ErrConflict so
// db.RunWithRetry drives the retry loop. Accounts are one-column rows
// keyed by index; the table id is ignored.
type stmSession struct {
	stm     *tl2.STM
	commits uint64
	aborts  uint64
}

func (s *stmSession) Stats() (commits, aborts uint64) { return s.commits, s.aborts }

func (s *stmSession) Run(fn func(tx db.Tx) error) error {
	var bodyErr error
	err := s.stm.Try(func(tx *tl2.Txn) error {
		bodyErr = fn(stmTx{tx})
		return bodyErr
	})
	if err == nil {
		s.commits++
		return nil
	}
	s.aborts++
	if errors.Is(err, tl2.ErrConflict) {
		return db.ErrConflict
	}
	return bodyErr
}

type stmTx struct{ tx *tl2.Txn }

func (t stmTx) Read(_ int, key uint64) ([]uint64, error) {
	return []uint64{t.tx.Load(int(key))}, nil
}
func (t stmTx) Update(_ int, key uint64, vals []uint64) error {
	t.tx.Store(int(key), vals[0])
	return nil
}
func (t stmTx) Insert(int, uint64, []uint64) error {
	return errors.New("stm-bank: fixed account set, no inserts")
}
func (t stmTx) Delete(int, uint64) error {
	return errors.New("stm-bank: fixed account set, no deletes")
}

func main() {
	var (
		workers  = flag.Int("workers", 4, "transfer goroutines")
		accounts = flag.Int("accounts", 64, "bank accounts")
		seconds  = flag.Float64("seconds", 1, "duration per variant")
	)
	flag.Parse()

	o, b, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 100})
	if err != nil {
		log.Fatalf("calibrate: %v", err)
	}
	fmt.Printf("ORDO_BOUNDARY = %d ticks\n\n", b.Global)

	for _, mode := range []struct {
		name string
		stm  *tl2.STM
	}{
		{"TL2 (logical clock)", tl2.New(tl2.Logical, nil, *accounts)},
		{"TL2_ORDO           ", tl2.New(tl2.Ordo, o, *accounts)},
	} {
		runBank(mode.name, mode.stm, *workers, *accounts, *seconds)
	}
}

func runBank(name string, s *tl2.STM, workers, accounts int, seconds float64) {
	const initial = 1000
	for a := 0; a < accounts; a++ {
		s.WriteDirect(a, initial)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			sess := &stmSession{stm: s}
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amount := uint64(1 + rng.Intn(10))
				err := db.RunWithRetry(sess, maxRetries, func(tx db.Tx) error {
					fromRow, err := tx.Read(0, uint64(from))
					if err != nil {
						return err
					}
					if fromRow[0] < amount {
						return nil // insufficient funds: no-op commit
					}
					// Debit before reading the destination: read-your-writes
					// keeps a self-transfer (from == to) balance-neutral.
					if err := tx.Update(0, uint64(from), []uint64{fromRow[0] - amount}); err != nil {
						return err
					}
					toRow, err := tx.Read(0, uint64(to))
					if err != nil {
						return err
					}
					return tx.Update(0, uint64(to), []uint64{toRow[0] + amount})
				})
				if err != nil {
					log.Fatalf("%s: transfer failed: %v", name, err)
				}
			}
		}(int64(w + 1))
	}

	// Auditor: full-scan transactions that must always see the total.
	var audits, bad int
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := &stmSession{stm: s}
		want := uint64(accounts * initial)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sum uint64
			err := db.RunWithRetry(sess, maxRetries, func(tx db.Tx) error {
				sum = 0
				for a := 0; a < accounts; a++ {
					row, err := tx.Read(0, uint64(a))
					if err != nil {
						return err
					}
					sum += row[0]
				}
				return nil
			})
			if err == nil {
				audits++
				if sum != want {
					bad++
				}
			}
		}
	}()

	time.Sleep(time.Duration(seconds * float64(time.Second)))
	close(stop)
	wg.Wait()

	commits, aborts := s.Stats()
	fmt.Printf("%s  %8.0f txns/sec  abort rate %.1f%%  audits %d (torn: %d)\n",
		name, float64(commits)/seconds,
		100*float64(aborts)/float64(commits+aborts+1), audits, bad)
	if bad > 0 {
		log.Fatalf("%s: %d audits observed a torn total — serializability broken", name, bad)
	}
}
