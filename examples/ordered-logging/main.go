// ordered-logging demonstrates the two §7-inspired extensions built on
// the Ordo primitive:
//
//   - a scalable write-ahead log (internal/wal): concurrent appenders
//     touch no shared cache line; a flush merges per-thread buffers in
//     timestamp order and assigns dense LSNs;
//
//   - a timestamped stack (internal/tsstack): per-thread push pools with
//     delayed Ordo timestamps, pops taking the globally newest element.
//
//     go run ./examples/ordered-logging -workers 4
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"ordo/internal/core"
	"ordo/internal/oplog"
	"ordo/internal/tsstack"
	"ordo/internal/wal"
)

func main() {
	workers := flag.Int("workers", 4, "concurrent goroutines")
	flag.Parse()

	o, b, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 100})
	if err != nil {
		log.Fatalf("calibrate: %v", err)
	}
	fmt.Printf("ORDO_BOUNDARY = %d ticks\n\n", b.Global)
	stamp := oplog.OrdoStamp{O: o}

	// --- Write-ahead log: group commit across concurrent appenders.
	dev := &wal.MemDevice{}
	l := wal.New(dev, stamp)
	var wg sync.WaitGroup
	const perWorker = 1000
	for w := 0; w < *workers; w++ {
		h := l.NewHandle()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Append([]byte(fmt.Sprintf("worker %d op %d", id, i)))
			}
		}(w)
	}
	wg.Wait()
	horizon, err := l.Flush()
	if err != nil {
		log.Fatalf("flush: %v", err)
	}
	recs := dev.Records()
	if err := wal.Verify(recs); err != nil {
		log.Fatalf("recovery check: %v", err)
	}
	fmt.Printf("WAL: %d records durable, LSNs dense 1..%d, horizon ts %d, recovery-verified\n",
		len(recs), recs[len(recs)-1].LSN, horizon)

	// --- Timestamped stack: concurrent pushes, every element popped once.
	s := tsstack.New[int](stamp)
	total := *workers * 500
	for w := 0; w < *workers; w++ {
		h := s.NewHandle()
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Push(base + i)
			}
		}(w * 10000)
	}
	wg.Wait()
	h := s.NewHandle()
	seen := map[int]bool{}
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		if seen[v] {
			log.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	fmt.Printf("TS-stack: pushed %d, popped %d distinct — no loss, no duplication\n",
		total, len(seen))
}
