// paper-figures regenerates one figure of the paper on the simulated
// machines — the same engine cmd/ordo-bench drives, packaged as a minimal
// example of the simulation API.
//
//	go run ./examples/paper-figures -figure fig1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ordo/internal/bench"
)

func main() {
	figure := flag.String("figure", "fig1", "experiment id (see ordo-bench -list)")
	flag.Parse()

	e, ok := bench.ByID(*figure)
	if !ok {
		log.Fatalf("unknown figure %q", *figure)
	}
	fmt.Printf("%s — %s\n\n", e.ID, e.Title)
	e.Run(os.Stdout, bench.Quick)
}
