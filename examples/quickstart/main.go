// Quickstart: calibrate the Ordo primitive on this machine and use its
// three methods — GetTime, NewTime, CmpTime — exactly as a timestamp-based
// algorithm would.
package main

import (
	"fmt"
	"log"
	"sync"

	"ordo"
)

func main() {
	// 1. Calibrate: measure the ORDO_BOUNDARY across every CPU pair with
	// the one-way-delay protocol.
	o, b, err := ordo.Calibrate(ordo.CalibrationOptions{Runs: 200})
	if err != nil {
		log.Fatalf("calibrate: %v", err)
	}
	fmt.Printf("calibrated over %d CPUs: ORDO_BOUNDARY = %d ticks (min pairwise %d)\n",
		b.CPUs, b.Global, b.Min)

	// 2. GetTime reads the local invariant hardware clock.
	t0 := o.GetTime()

	// 3. NewTime returns a timestamp certainly greater than its argument:
	// every core in the machine can order it after t0.
	t1 := o.NewTime(t0)
	fmt.Printf("get_time()=%d  new_time()=%d\n", t0, t1)

	// 4. CmpTime orders timestamps under the uncertainty window.
	describe := func(a, b ordo.Time) {
		switch o.CmpTime(a, b) {
		case ordo.After:
			fmt.Printf("cmp_time(%d, %d) = After (certainly newer)\n", a, b)
		case ordo.Before:
			fmt.Printf("cmp_time(%d, %d) = Before (certainly older)\n", a, b)
		default:
			fmt.Printf("cmp_time(%d, %d) = Uncertain (within one boundary)\n", a, b)
		}
	}
	describe(t1, t0)
	describe(t0, t1)

	// On a single-CPU machine the calibrated boundary is 0 and every
	// comparison is exact; to show the uncertain case, use a primitive
	// with the paper's Xeon boundary (276 ticks).
	demo := ordo.New(ordo.Hardware, 276)
	switch demo.CmpTime(t0, t0+100) {
	case ordo.Uncertain:
		fmt.Println("with boundary 276: timestamps 100 ticks apart are Uncertain")
	default:
		fmt.Println("unexpected: 100-tick gap ordered despite a 276-tick boundary")
	}

	// 5. Timestamps taken on different goroutines (hence possibly
	// different cores) order correctly through the primitive: each link of
	// this chain stamps its event with NewTime on a fresh goroutine, and
	// every stamp is certainly after its predecessor.
	events := make([]ordo.Time, 4)
	prev := o.GetTime()
	for i := range events {
		i, after := i, prev
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			events[i] = o.NewTime(after)
		}()
		wg.Wait()
		prev = events[i]
	}
	ok := true
	for i := 1; i < len(events); i++ {
		if o.CmpTime(events[i], events[i-1]) != ordo.After {
			ok = false
		}
	}
	fmt.Printf("cross-goroutine causal chain ordered: %v (%v)\n", ok, events)
}
