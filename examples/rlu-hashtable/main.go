// rlu-hashtable runs the paper's RLU hash-table benchmark natively on
// this machine: a fixed-bucket hash table of sorted linked lists under
// Read-Log-Update, once with the original global logical clock and once
// with the Ordo primitive, printing throughput for both.
//
//	go run ./examples/rlu-hashtable -workers 4 -updates 0.02 -seconds 2
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ordo/internal/core"
	"ordo/internal/intset"
	"ordo/internal/rlu"
)

func main() {
	var (
		workers = flag.Int("workers", 4, "concurrent goroutines")
		updates = flag.Float64("updates", 0.02, "fraction of operations that write")
		buckets = flag.Int("buckets", 1000, "hash buckets")
		keys    = flag.Int("keys", 10000, "key range (~nodes at 50% fill)")
		seconds = flag.Float64("seconds", 1, "measurement duration per variant")
	)
	flag.Parse()

	o, b, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 100})
	if err != nil {
		log.Fatalf("calibrate: %v", err)
	}
	fmt.Printf("ORDO_BOUNDARY = %d ticks over %d CPUs\n\n", b.Global, b.CPUs)

	for _, mode := range []struct {
		name string
		d    *rlu.Domain
	}{
		{"RLU (logical clock)", rlu.NewDomain(rlu.Logical, nil)},
		{"RLU_ORDO           ", rlu.NewDomain(rlu.Ordo, o)},
	} {
		ops := run(mode.d, *workers, *updates, *buckets, *keys, *seconds)
		fmt.Printf("%s  %8.0f ops/sec  (%d workers, %.0f%% updates)\n",
			mode.name, float64(ops)/(*seconds), *workers, *updates*100)
	}
}

func run(d *rlu.Domain, workers int, updates float64, buckets, keys int, seconds float64) uint64 {
	set := intset.NewHashSet(d, buckets)
	// Pre-fill half the key range.
	loader := set.NewHandle()
	for k := 0; k < keys; k += 2 {
		loader.Add(int64(k))
	}

	var total atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		h := set.NewHandle()
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var ops uint64
			for {
				select {
				case <-stop:
					total.Add(ops)
					return
				default:
				}
				k := int64(rng.Intn(keys))
				if rng.Float64() < updates {
					if rng.Intn(2) == 0 {
						h.Add(k)
					} else {
						h.Remove(k)
					}
				} else {
					h.Contains(k)
				}
				ops++
			}
		}(int64(w + 1))
	}
	time.Sleep(time.Duration(seconds * float64(time.Second)))
	close(stop)
	wg.Wait()
	return total.Load()
}
