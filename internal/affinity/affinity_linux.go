//go:build linux

// Package affinity pins OS threads to specific CPUs so that clock-offset
// measurements actually sample the pair of hardware clocks they claim to.
// The Go scheduler is free to migrate goroutines between OS threads and the
// kernel is free to migrate threads between CPUs; calibration must defeat
// both, which it does by combining runtime.LockOSThread with
// sched_setaffinity(2).
package affinity

import (
	"fmt"
	"runtime"
	"syscall"
	"unsafe"
)

// cpuSet mirrors the kernel's cpu_set_t for up to 1024 CPUs.
type cpuSet [16]uint64

func (s *cpuSet) set(cpu int) { s[cpu/64] |= 1 << (uint(cpu) % 64) }

func (s *cpuSet) count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func setaffinity(set *cpuSet) error {
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(unsafe.Sizeof(*set)), uintptr(unsafe.Pointer(set)))
	if errno != 0 {
		return errno
	}
	return nil
}

func getaffinity(set *cpuSet) error {
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		0, uintptr(unsafe.Sizeof(*set)), uintptr(unsafe.Pointer(set)))
	if errno != 0 {
		return errno
	}
	return nil
}

// Pin locks the calling goroutine to its OS thread and restricts that
// thread to the given CPU. It returns a restore function that reinstates
// the previous affinity mask and unlocks the thread. Callers must invoke
// restore from the same goroutine.
func Pin(cpu int) (restore func(), err error) {
	if cpu < 0 || cpu >= 1024 {
		return nil, fmt.Errorf("affinity: cpu %d out of range", cpu)
	}
	runtime.LockOSThread()
	var old cpuSet
	if err := getaffinity(&old); err != nil {
		runtime.UnlockOSThread()
		return nil, fmt.Errorf("affinity: sched_getaffinity: %w", err)
	}
	var want cpuSet
	want.set(cpu)
	if err := setaffinity(&want); err != nil {
		runtime.UnlockOSThread()
		return nil, fmt.Errorf("affinity: sched_setaffinity(cpu=%d): %w", cpu, err)
	}
	return func() {
		_ = setaffinity(&old)
		runtime.UnlockOSThread()
	}, nil
}

// Available returns the number of CPUs the current thread may run on.
func Available() int {
	var s cpuSet
	if err := getaffinity(&s); err != nil {
		return runtime.NumCPU()
	}
	return s.count()
}

// Supported reports whether pinning works on this platform.
func Supported() bool { return true }
