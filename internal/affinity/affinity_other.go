//go:build !linux

package affinity

import (
	"errors"
	"runtime"
)

// ErrUnsupported is returned by Pin on platforms without sched_setaffinity.
var ErrUnsupported = errors.New("affinity: thread pinning not supported on this platform")

// Pin is unsupported here; calibration falls back to unpinned sampling,
// which inflates (never deflates) the measured offset and therefore keeps
// the Ordo boundary conservative.
func Pin(cpu int) (restore func(), err error) { return nil, ErrUnsupported }

// Available returns the number of usable CPUs.
func Available() int { return runtime.NumCPU() }

// Supported reports whether pinning works on this platform.
func Supported() bool { return false }
