package affinity

import (
	"runtime"
	"testing"
)

func TestAvailablePositive(t *testing.T) {
	if n := Available(); n < 1 {
		t.Fatalf("Available() = %d, want >= 1", n)
	}
}

func TestPinAndRestore(t *testing.T) {
	if !Supported() {
		t.Skip("pinning unsupported on this platform")
	}
	restore, err := Pin(0)
	if err != nil {
		t.Fatalf("Pin(0): %v", err)
	}
	if got := Available(); got != 1 {
		restore()
		t.Fatalf("after Pin(0), Available() = %d, want 1", got)
	}
	restore()
	if got := Available(); got < 1 {
		t.Fatalf("after restore, Available() = %d", got)
	}
}

func TestPinRejectsOutOfRange(t *testing.T) {
	if !Supported() {
		t.Skip("pinning unsupported on this platform")
	}
	if _, err := Pin(-1); err == nil {
		t.Error("Pin(-1) succeeded, want error")
	}
	if _, err := Pin(4096); err == nil {
		t.Error("Pin(4096) succeeded, want error")
	}
}

func TestPinNonexistentCPUFails(t *testing.T) {
	if !Supported() {
		t.Skip("pinning unsupported on this platform")
	}
	if runtime.NumCPU() >= 1000 {
		t.Skip("machine actually has 1000 CPUs")
	}
	if restore, err := Pin(1000); err == nil {
		restore()
		t.Error("Pin(1000) succeeded on a machine without cpu 1000")
	}
}
