// Package reclaim implements clock-based quiescence for safe memory
// reclamation — the third family of Ordo clients the paper's introduction
// names (after concurrency control and logging): "determining the
// quiescence period for memory reclamation", as in Parallel Sections
// (Wang et al., EuroSys'16) and epoch-based RCU schemes.
//
// Epoch-based reclamation serializes on a shared epoch counter; the
// clock-based scheme replaces it entirely: a reader entering a section
// records its local invariant-clock value; an object retired at clock R
// may be freed once every in-flight section certainly began after R —
// a per-thread clock read on the reader's fast path and pure local
// comparisons on the reclaimer's, with the ORDO_BOUNDARY absorbing clock
// skew (uncertain comparisons simply defer freeing, never unsafely free).
package reclaim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ordo/internal/core"
)

// idle marks a thread with no section in flight.
const idle = ^uint64(0)

// Domain is one reclamation domain: threads registered in it protect
// objects retired in it.
type Domain struct {
	o *core.Ordo

	mu      sync.Mutex
	threads []*Thread
	view    atomic.Pointer[[]*Thread]
}

// NewDomain creates a reclamation domain over a calibrated primitive.
func NewDomain(o *core.Ordo) *Domain {
	if o == nil {
		panic("reclaim: nil Ordo primitive")
	}
	d := &Domain{o: o}
	empty := []*Thread{}
	d.view.Store(&empty)
	return d
}

// Thread is one participant; a Thread must be used by one goroutine at a
// time.
type Thread struct {
	d       *Domain
	active  atomic.Uint64 // section-start clock, or idle
	retired []retiree

	// Freed counts objects this thread has reclaimed.
	Freed uint64
}

type retiree struct {
	ts   core.Time
	free func()
}

// Register adds a participant.
func (d *Domain) Register() *Thread {
	t := &Thread{d: d}
	t.active.Store(idle)
	d.mu.Lock()
	d.threads = append(d.threads, t)
	snap := make([]*Thread, len(d.threads))
	copy(snap, d.threads)
	d.view.Store(&snap)
	d.mu.Unlock()
	return t
}

// Enter begins a read-side section: one local clock read.
func (t *Thread) Enter() {
	t.active.Store(uint64(t.d.o.GetTime()))
}

// Exit ends the section.
func (t *Thread) Exit() {
	t.active.Store(idle)
}

// Retire schedules free() once no section that could observe the object
// remains. The caller must have unlinked the object from every shared
// structure before retiring it (standard RCU discipline); the retirement
// timestamp is taken after the unlink, so any section beginning certainly
// later cannot have found the object.
func (t *Thread) Retire(free func()) {
	ts := t.d.o.GetTime()
	t.retired = append(t.retired, retiree{ts: ts, free: free})
}

// Reclaim frees every retired object whose retirement is certainly before
// the start of every in-flight section, returning the number freed.
// Uncertain comparisons defer (never free): correctness does not depend on
// the boundary's tightness, only throughput does.
func (t *Thread) Reclaim() int {
	if len(t.retired) == 0 {
		return 0
	}
	horizon := t.horizon()
	kept := t.retired[:0]
	n := 0
	for _, r := range t.retired {
		if freeable(t.d.o, r.ts, horizon) {
			r.free()
			n++
		} else {
			kept = append(kept, r)
		}
	}
	t.retired = kept
	t.Freed += uint64(n)
	return n
}

// Pending reports how many retirees await quiescence.
func (t *Thread) Pending() int { return len(t.retired) }

// horizon returns the oldest in-flight section-start clock, or idle if
// every thread is quiescent.
func (t *Thread) horizon() uint64 {
	threads := *t.d.view.Load()
	oldest := idle
	for _, th := range threads {
		a := th.active.Load()
		if a == idle {
			continue
		}
		if oldest == idle || a < oldest {
			oldest = a
		}
	}
	return oldest
}

// freeable reports whether a retirement at ts is certainly before the
// oldest in-flight section.
func freeable(o *core.Ordo, ts core.Time, horizon uint64) bool {
	if horizon == idle {
		// No section in flight at the sample instant; any section that
		// begins later reads a clock at or after our sample, so the
		// retiree is unreachable. (The sample happens-before the free.)
		return true
	}
	return o.CmpTime(ts, core.Time(horizon)) == core.Before
}

// Synchronize blocks until every section in flight at the call has ended
// or provably began after it (the RCU synchronize analogue), by spinning
// on the horizon.
func (d *Domain) Synchronize() {
	target := d.o.GetTime()
	threads := *d.view.Load()
	for _, th := range threads {
		for spins := 0; ; spins++ {
			a := th.active.Load()
			if a == idle {
				break
			}
			if d.o.CmpTime(core.Time(a), target) == core.After {
				break // began certainly after us
			}
			// Re-sample: the section may have ended or restarted.
			if spins%64 == 63 {
				runtime.Gosched()
			}
		}
	}
}
