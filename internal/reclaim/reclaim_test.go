package reclaim

import (
	"sync"
	"sync/atomic"
	"testing"

	"ordo/internal/core"
)

// fakeClock lets tests place sections and retirements at exact clock
// values, including inside the uncertainty window.
type fakeClock struct{ t atomic.Uint64 }

func (f *fakeClock) Now() core.Time { return core.Time(f.t.Load()) }

func fixture(boundary core.Time) (*Domain, *fakeClock) {
	fc := &fakeClock{}
	fc.t.Store(1 << 20)
	return NewDomain(core.New(fc, boundary)), fc
}

func TestNewDomainNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDomain(nil) did not panic")
		}
	}()
	NewDomain(nil)
}

func TestReclaimWithNoReaders(t *testing.T) {
	d, _ := fixture(100)
	th := d.Register()
	freed := 0
	th.Retire(func() { freed++ })
	if n := th.Reclaim(); n != 1 || freed != 1 {
		t.Fatalf("Reclaim = %d, freed = %d; want 1/1 with no readers", n, freed)
	}
	if th.Pending() != 0 {
		t.Fatalf("Pending = %d", th.Pending())
	}
}

func TestActiveOldReaderBlocksReclaim(t *testing.T) {
	d, fc := fixture(100)
	reader := d.Register()
	writer := d.Register()

	reader.Enter() // section starts at clock 1<<20
	fc.t.Add(50)   // retire happens 50 ticks later: inside the boundary
	freed := false
	writer.Retire(func() { freed = true })
	if n := writer.Reclaim(); n != 0 || freed {
		t.Fatalf("reclaimed under an uncertain pre-existing reader (n=%d)", n)
	}
	// Even far later, the same old section still blocks.
	fc.t.Add(10_000)
	writer.Retire(func() {})
	if writer.Reclaim() != 0 {
		t.Fatal("reclaimed a retiree not certainly before the in-flight section")
	}
	reader.Exit()
	if n := writer.Reclaim(); n != 2 {
		t.Fatalf("after reader exit Reclaim = %d, want 2", n)
	}
}

func TestPostRetireReaderDoesNotBlock(t *testing.T) {
	d, fc := fixture(100)
	reader := d.Register()
	writer := d.Register()

	freed := false
	writer.Retire(func() { freed = true })
	fc.t.Add(500) // well past the boundary
	reader.Enter()
	if n := writer.Reclaim(); n != 1 || !freed {
		t.Fatalf("a section beginning certainly after retirement blocked reclaim (n=%d)", n)
	}
	reader.Exit()
}

func TestUncertainNewReaderDefers(t *testing.T) {
	d, fc := fixture(100)
	reader := d.Register()
	writer := d.Register()

	writer.Retire(func() {})
	fc.t.Add(60) // new section inside the uncertainty window of the retire
	reader.Enter()
	if writer.Reclaim() != 0 {
		t.Fatal("freed despite an uncertain comparison — must defer")
	}
	reader.Exit()
	if writer.Reclaim() != 1 {
		t.Fatal("not freed after the uncertain reader exited")
	}
}

func TestSynchronizeWaitsForOldSections(t *testing.T) {
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDomain(o)
	reader := d.Register()
	_ = d.Register()

	reader.Enter()
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Synchronize returned while an old section was active")
	default:
	}
	reader.Exit()
	<-done // must now return
}

func TestConcurrentRetireAndReadStress(t *testing.T) {
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDomain(o)
	const readers = 3
	const retires = 2000

	var freed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		th := d.Register()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				th.Enter()
				th.Exit()
			}
		}()
	}
	writer := d.Register()
	for i := 0; i < retires; i++ {
		writer.Retire(func() { freed.Add(1) })
		if i%64 == 0 {
			writer.Reclaim()
		}
	}
	close(stop)
	wg.Wait()
	// Everything must eventually drain once readers are gone.
	for writer.Pending() > 0 {
		writer.Reclaim()
	}
	if freed.Load() != retires {
		t.Fatalf("freed %d, want %d (each retiree exactly once)", freed.Load(), retires)
	}
	if writer.Freed != retires {
		t.Fatalf("Freed counter %d, want %d", writer.Freed, retires)
	}
}

func TestReclaimBatchesPartially(t *testing.T) {
	d, fc := fixture(100)
	reader := d.Register()
	writer := d.Register()

	writer.Retire(func() {}) // old retiree, certainly before the section below
	fc.t.Add(500)
	reader.Enter()
	fc.t.Add(50)
	writer.Retire(func() {}) // new retiree, uncertain vs the section
	if n := writer.Reclaim(); n != 1 {
		t.Fatalf("Reclaim = %d, want exactly the certainly-old retiree", n)
	}
	if writer.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", writer.Pending())
	}
	reader.Exit()
}
