// Package stamp provides Go renditions of the six STAMP benchmarks the
// paper runs over TL2 (§6.6, Figure 15). Each workload preserves the
// transaction profile that determines its clock sensitivity:
//
//	genome     large, mostly conflict-free read-dominated transactions
//	intruder   medium transactions with a contended completion counter
//	kmeans     very short read-modify-write transactions (clock-bound)
//	labyrinth  very long transactions over many cells (costly re-execution)
//	ssca2      tiny two-word graph updates (clock-bound)
//	vacation   reservation-style transactions over several tables
//
// Every workload carries a Validate method asserting its semantic
// invariant after a run, so the suite doubles as an integration test of
// the TL2 engine under both clock designs.
package stamp

import (
	"fmt"
	"math/rand"

	"ordo/internal/tl2"
)

// Workload is one STAMP benchmark bound to an STM heap.
type Workload interface {
	// Name is the STAMP benchmark name.
	Name() string
	// Words is the heap size the workload needs.
	Words() int
	// Setup populates the heap (single-threaded, before workers start).
	Setup(s *tl2.STM)
	// Txn runs one transaction on behalf of a worker; rng is the worker's
	// private source.
	Txn(s *tl2.STM, rng *rand.Rand) error
	// Validate checks the workload's invariant after a quiesced run, given
	// the engine's commit count for this workload's transactions.
	Validate(s *tl2.STM, commits uint64) error
}

// All returns the six workloads with paper-flavoured default sizes,
// scaled by factor (1 = test-sized; benchmarks pass larger factors).
func All(factor int) []Workload {
	if factor < 1 {
		factor = 1
	}
	return []Workload{
		NewGenome(2048 * factor),
		NewIntruder(128 * factor),
		NewKmeans(16, 8),
		NewLabyrinth(32 * factor),
		NewSSCA2(1024 * factor),
		NewVacation(256 * factor),
	}
}

// ---------------------------------------------------------------- genome

// Genome models sequence dedup: segments hash into a table; a transaction
// examines a batch of buckets and claims the empty ones. Long transactions,
// almost no conflicts — the global clock is stressed only by commit
// frequency, so the Ordo win is modest (matching Figure 15's Genome panel).
type Genome struct{ buckets int }

// NewGenome sizes the segment table.
func NewGenome(buckets int) *Genome { return &Genome{buckets: buckets} }

func (g *Genome) Name() string     { return "genome" }
func (g *Genome) Words() int       { return g.buckets }
func (g *Genome) Setup(s *tl2.STM) {}

func (g *Genome) Txn(s *tl2.STM, rng *rand.Rand) error {
	// Examine 32 buckets, claim empties with the bucket's canonical id.
	base := rng.Intn(g.buckets)
	return s.Atomically(func(tx *tl2.Txn) error {
		for i := 0; i < 32; i++ {
			b := (base + i*17) % g.buckets
			if tx.Load(b) == 0 {
				tx.Store(b, uint64(b)+1)
			}
		}
		return nil
	})
}

func (g *Genome) Validate(s *tl2.STM, _ uint64) error {
	for b := 0; b < g.buckets; b++ {
		v := s.ReadDirect(b)
		if v != 0 && v != uint64(b)+1 {
			return fmt.Errorf("genome: bucket %d holds %d, want 0 or %d", b, v, b+1)
		}
	}
	return nil
}

// -------------------------------------------------------------- intruder

// Intruder models packet reassembly: each flow accumulates fragments in a
// bitmap; a completed flow bumps a shared counter and resets. The shared
// counter plus medium transactions give the modest-win profile of the
// Intruder panel.
type Intruder struct{ flows int }

// NewIntruder sizes the flow table.
func NewIntruder(flows int) *Intruder { return &Intruder{flows: flows} }

const intruderFrags = 8 // fragments per flow

func (in *Intruder) Name() string     { return "intruder" }
func (in *Intruder) Words() int       { return in.flows + 1 } // +1: completed counter
func (in *Intruder) Setup(s *tl2.STM) {}

func (in *Intruder) Txn(s *tl2.STM, rng *rand.Rand) error {
	flow := rng.Intn(in.flows)
	frag := uint(rng.Intn(intruderFrags))
	counter := in.flows
	return s.Atomically(func(tx *tl2.Txn) error {
		bits := tx.Load(flow)
		bits |= 1 << frag
		if bits == 1<<intruderFrags-1 {
			tx.Store(flow, 0)
			tx.Store(counter, tx.Load(counter)+1)
			return nil
		}
		tx.Store(flow, bits)
		return nil
	})
}

func (in *Intruder) Validate(s *tl2.STM, commits uint64) error {
	// Every committed txn sets exactly one fragment bit; completed flows
	// account for intruderFrags bits each... except duplicate fragments
	// (same bit set twice) absorb deliveries without adding bits. So:
	// completed*frags + pending-bits <= commits.
	var pending uint64
	for f := 0; f < in.flows; f++ {
		v := s.ReadDirect(f)
		if v >= 1<<intruderFrags {
			return fmt.Errorf("intruder: flow %d bitmap %x out of range", f, v)
		}
		for ; v != 0; v &= v - 1 {
			pending++
		}
	}
	completed := s.ReadDirect(in.flows)
	if completed*intruderFrags+pending > commits {
		return fmt.Errorf("intruder: %d completed × %d + %d pending > %d commits",
			completed, intruderFrags, pending, commits)
	}
	return nil
}

// ---------------------------------------------------------------- kmeans

// Kmeans models the clustering kernel: a transaction folds one point into
// one center — a handful of words. Short transactions commit constantly,
// so the global clock dominates: the Figure 15 panel with the largest
// Ordo win.
type Kmeans struct{ k, dims int }

// NewKmeans sizes the centers.
func NewKmeans(k, dims int) *Kmeans { return &Kmeans{k: k, dims: dims} }

func (km *Kmeans) Name() string     { return "kmeans" }
func (km *Kmeans) Words() int       { return km.k * (km.dims + 1) }
func (km *Kmeans) Setup(s *tl2.STM) {}

func (km *Kmeans) Txn(s *tl2.STM, rng *rand.Rand) error {
	c := rng.Intn(km.k)
	base := c * (km.dims + 1)
	var point [32]uint64
	for d := 0; d < km.dims; d++ {
		point[d] = uint64(rng.Intn(100))
	}
	return s.Atomically(func(tx *tl2.Txn) error {
		for d := 0; d < km.dims; d++ {
			tx.Store(base+d, tx.Load(base+d)+point[d])
		}
		tx.Store(base+km.dims, tx.Load(base+km.dims)+1)
		return nil
	})
}

func (km *Kmeans) Validate(s *tl2.STM, commits uint64) error {
	var points uint64
	for c := 0; c < km.k; c++ {
		points += s.ReadDirect(c*(km.dims+1) + km.dims)
	}
	if points != commits {
		return fmt.Errorf("kmeans: centers absorbed %d points, want %d", points, commits)
	}
	return nil
}

// ------------------------------------------------------------- labyrinth

// Labyrinth models maze routing: a transaction claims a long path of grid
// cells, reading and writing each — very long transactions whose aborted
// re-execution is expensive, which is exactly where clock-contention-
// induced aborts hurt most (Figure 15 shows 2–3.8×).
type Labyrinth struct{ side int }

// NewLabyrinth sizes the grid (side × side).
func NewLabyrinth(side int) *Labyrinth { return &Labyrinth{side: side} }

func (lb *Labyrinth) Name() string     { return "labyrinth" }
func (lb *Labyrinth) Words() int       { return lb.side*lb.side + 1 } // +1: path id
func (lb *Labyrinth) Setup(s *tl2.STM) {}

func (lb *Labyrinth) Txn(s *tl2.STM, rng *rand.Rand) error {
	// Route a staircase path between two random points.
	x0, y0 := rng.Intn(lb.side), rng.Intn(lb.side)
	x1, y1 := rng.Intn(lb.side), rng.Intn(lb.side)
	idWord := lb.side * lb.side
	return s.Atomically(func(tx *tl2.Txn) error {
		id := tx.Load(idWord) + 1
		tx.Store(idWord, id)
		x, y := x0, y0
		for {
			cell := y*lb.side + x
			_ = tx.Load(cell) // read the cell (routing inspects occupancy)
			tx.Store(cell, id)
			if x == x1 && y == y1 {
				break
			}
			if x != x1 {
				if x < x1 {
					x++
				} else {
					x--
				}
			} else {
				if y < y1 {
					y++
				} else {
					y--
				}
			}
		}
		return nil
	})
}

func (lb *Labyrinth) Validate(s *tl2.STM, commits uint64) error {
	maxID := s.ReadDirect(lb.side * lb.side)
	if maxID != commits {
		return fmt.Errorf("labyrinth: issued %d path ids, want %d", maxID, commits)
	}
	for c := 0; c < lb.side*lb.side; c++ {
		if v := s.ReadDirect(c); v > maxID {
			return fmt.Errorf("labyrinth: cell %d claims path %d > max %d", c, v, maxID)
		}
	}
	return nil
}

// ----------------------------------------------------------------- ssca2

// SSCA2 models graph kernel construction: a transaction adds one edge by
// bumping two vertex degrees — the shortest transactions in the suite,
// giving the other large Ordo win of Figure 15.
type SSCA2 struct{ nodes int }

// NewSSCA2 sizes the vertex set.
func NewSSCA2(nodes int) *SSCA2 { return &SSCA2{nodes: nodes} }

func (sc *SSCA2) Name() string     { return "ssca2" }
func (sc *SSCA2) Words() int       { return sc.nodes }
func (sc *SSCA2) Setup(s *tl2.STM) {}

func (sc *SSCA2) Txn(s *tl2.STM, rng *rand.Rand) error {
	u := rng.Intn(sc.nodes)
	v := rng.Intn(sc.nodes)
	return s.Atomically(func(tx *tl2.Txn) error {
		tx.Store(u, tx.Load(u)+1)
		if v != u {
			tx.Store(v, tx.Load(v)+1)
		} else {
			tx.Store(u, tx.Load(u)+1) // self-loop still adds degree 2
		}
		return nil
	})
}

func (sc *SSCA2) Validate(s *tl2.STM, commits uint64) error {
	var degree uint64
	for n := 0; n < sc.nodes; n++ {
		degree += s.ReadDirect(n)
	}
	if degree != 2*commits {
		return fmt.Errorf("ssca2: total degree %d, want %d", degree, 2*commits)
	}
	return nil
}

// -------------------------------------------------------------- vacation

// Vacation models the travel-reservation OLTP mix: a transaction reads a
// customer, checks a resource's availability and reserves it. Transaction-
// intensive with moderate footprints; the clock matters because commit
// volume is high (Figure 15's Vacation panel).
type Vacation struct{ resources int }

// NewVacation sizes the resource tables (cars+rooms+flights interleaved).
func NewVacation(resources int) *Vacation { return &Vacation{resources: resources} }

const vacationCapacity = 1 << 30 // effectively unlimited seats

// Layout: resource r occupies two words: [capacity, reserved]; customers
// follow, one word each: [spent].
func (vc *Vacation) Name() string { return "vacation" }
func (vc *Vacation) Words() int   { return vc.resources*2 + vc.resources }
func (vc *Vacation) Setup(s *tl2.STM) {
	for r := 0; r < vc.resources; r++ {
		s.WriteDirect(r*2, vacationCapacity)
	}
}

func (vc *Vacation) Txn(s *tl2.STM, rng *rand.Rand) error {
	r := rng.Intn(vc.resources)
	cust := vc.resources*2 + rng.Intn(vc.resources)
	return s.Atomically(func(tx *tl2.Txn) error {
		capacity := tx.Load(r * 2)
		reserved := tx.Load(r*2 + 1)
		if reserved >= capacity {
			return nil // sold out; read-only outcome
		}
		tx.Store(r*2+1, reserved+1)
		tx.Store(cust, tx.Load(cust)+1)
		return nil
	})
}

func (vc *Vacation) Validate(s *tl2.STM, commits uint64) error {
	var reserved, spent uint64
	for r := 0; r < vc.resources; r++ {
		reserved += s.ReadDirect(r*2 + 1)
	}
	for c := 0; c < vc.resources; c++ {
		spent += s.ReadDirect(vc.resources*2 + c)
	}
	if reserved != spent {
		return fmt.Errorf("vacation: %d reservations vs %d customer units", reserved, spent)
	}
	if reserved > commits {
		return fmt.Errorf("vacation: %d reservations exceed %d commits", reserved, commits)
	}
	return nil
}
