package stamp

import (
	"math/rand"
	"sync"
	"testing"

	"ordo/internal/core"
	"ordo/internal/tl2"
)

func modes(t *testing.T) map[string]func(words int) *tl2.STM {
	t.Helper()
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]func(int) *tl2.STM{
		"logical": func(w int) *tl2.STM { return tl2.New(tl2.Logical, nil, w) },
		"ordo":    func(w int) *tl2.STM { return tl2.New(tl2.Ordo, o, w) },
	}
}

func TestAllReturnsSix(t *testing.T) {
	ws := All(1)
	if len(ws) != 6 {
		t.Fatalf("All(1) returned %d workloads, want 6", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		names[w.Name()] = true
		if w.Words() <= 0 {
			t.Errorf("%s: Words() = %d", w.Name(), w.Words())
		}
	}
	for _, want := range []string{"genome", "intruder", "kmeans", "labyrinth", "ssca2", "vacation"} {
		if !names[want] {
			t.Errorf("missing workload %q", want)
		}
	}
}

func TestWorkloadsSingleThreaded(t *testing.T) {
	for mode, mk := range modes(t) {
		for _, w := range All(1) {
			w := w
			t.Run(mode+"/"+w.Name(), func(t *testing.T) {
				s := mk(w.Words())
				w.Setup(s)
				rng := rand.New(rand.NewSource(1))
				for i := 0; i < 150; i++ {
					if err := w.Txn(s, rng); err != nil {
						t.Fatalf("txn %d: %v", i, err)
					}
				}
				commits, _ := s.Stats()
				if commits != 150 {
					t.Fatalf("commits = %d, want 150", commits)
				}
				if err := w.Validate(s, commits); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestWorkloadsConcurrent(t *testing.T) {
	for mode, mk := range modes(t) {
		for _, w := range All(1) {
			w := w
			t.Run(mode+"/"+w.Name(), func(t *testing.T) {
				s := mk(w.Words())
				w.Setup(s)
				const workers = 4
				const per = 80
				var wg sync.WaitGroup
				errs := make(chan error, workers)
				for g := 0; g < workers; g++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						for i := 0; i < per; i++ {
							if err := w.Txn(s, rng); err != nil {
								errs <- err
								return
							}
						}
					}(int64(g + 1))
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				commits, _ := s.Stats()
				if commits != workers*per {
					t.Fatalf("commits = %d, want %d", commits, workers*per)
				}
				if err := w.Validate(s, commits); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	// Validate must actually detect broken invariants.
	km := NewKmeans(4, 2)
	s := tl2.New(tl2.Logical, nil, km.Words())
	km.Setup(s)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		if err := km.Txn(s, rng); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt a center count directly.
	s.WriteDirect(2, s.ReadDirect(2)+5)
	commits, _ := s.Stats()
	if err := km.Validate(s, commits); err == nil {
		t.Fatal("Validate accepted corrupted kmeans state")
	}
}

func TestLabyrinthPathsStayInGrid(t *testing.T) {
	lb := NewLabyrinth(8)
	s := tl2.New(tl2.Logical, nil, lb.Words())
	lb.Setup(s)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		if err := lb.Txn(s, rng); err != nil {
			t.Fatal(err)
		}
	}
	commits, _ := s.Stats()
	if err := lb.Validate(s, commits); err != nil {
		t.Fatal(err)
	}
}

func TestVacationNeverOversells(t *testing.T) {
	vc := NewVacation(4)
	s := tl2.New(tl2.Logical, nil, vc.Words())
	vc.Setup(s)
	// Shrink capacity to force sell-outs.
	for r := 0; r < 4; r++ {
		s.WriteDirect(r*2, 3)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		if err := vc.Txn(s, rng); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 4; r++ {
		if got := s.ReadDirect(r*2 + 1); got > 3 {
			t.Fatalf("resource %d oversold: %d > 3", r, got)
		}
	}
}

func TestWorkloadsWithTimestampExtension(t *testing.T) {
	// The §4.3 extension must preserve every workload invariant.
	for _, w := range All(1) {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			s := tl2.New(tl2.Logical, nil, w.Words())
			s.SetTimestampExtension(true)
			w.Setup(s)
			const workers = 4
			const per = 60
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < per; i++ {
						if err := w.Txn(s, rng); err != nil {
							t.Errorf("txn: %v", err)
							return
						}
					}
				}(int64(g + 1))
			}
			wg.Wait()
			commits, _ := s.Stats()
			if err := w.Validate(s, commits); err != nil {
				t.Fatal(err)
			}
		})
	}
}
