// Package client is a failover-aware ordod client: one logical connection
// that survives leader death. It chases NOT_LEADER redirects, rotates
// across the configured endpoints with capped exponential backoff and
// jitter, keeps a per-endpoint circuit breaker so a dead node is not
// re-dialed in a tight loop, and can hedge GET_AT reads across replicas
// when the primary is slow.
//
// A Client is owned by one goroutine: Do, GetAt, Stats and Close must not
// be called concurrently. Run one Client per worker goroutine; they are
// cheap (one socket plus scratch buffers).
package client

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"ordo/internal/wire"
)

// Defaults for the zero-value knobs of Config.
const (
	DefaultOpTimeout  = 2 * time.Second
	DefaultRetryFor   = 15 * time.Second
	DefaultRetryEvery = 25 * time.Millisecond
	DefaultRetryMax   = 500 * time.Millisecond

	// DefaultBreakerFailures consecutive endpoint failures open its
	// breaker for DefaultBreakerCooldown.
	DefaultBreakerFailures = 3
	DefaultBreakerCooldown = time.Second
)

// Config parameterizes a Client. Endpoints is required; everything else
// defaults sensibly for a LAN cluster.
type Config struct {
	// Endpoints are the client-facing addresses of every cluster node, in
	// any order; the client discovers the leader by probing and by
	// following NOT_LEADER redirects.
	Endpoints []string
	// OpTimeout bounds each dial and each single I/O on the wire; ≤ 0
	// means DefaultOpTimeout.
	OpTimeout time.Duration
	// RetryFor is the total budget for retrying one op across redirects,
	// reconnects and backoff before giving up; ≤ 0 means DefaultRetryFor.
	// It must comfortably exceed the cluster's failover time.
	RetryFor time.Duration
	// RetryEvery is the initial retry backoff, doubling per consecutive
	// failure up to RetryMax, with ±25% jitter. ≤ 0 means the defaults.
	RetryEvery time.Duration
	RetryMax   time.Duration
	// HedgeAfter, when positive, hedges a GetAt that has not answered
	// within this delay by racing a second leg on another endpoint.
	HedgeAfter time.Duration
	// BreakerFailures consecutive failures open an endpoint's breaker for
	// BreakerCooldown; ≤ 0 means the defaults. An open breaker deprioritizes
	// the endpoint but never makes the client give up: when every breaker
	// is open the client dials anyway (availability beats politeness).
	BreakerFailures int
	BreakerCooldown time.Duration
	// Logf receives operational messages (reconnects, redirects). Optional.
	Logf func(format string, args ...any)
}

// Stats counts the client's resilience events. Read it via Client.Stats
// from the owning goroutine.
type Stats struct {
	// NotLeaderRetries counts ops answered NOT_LEADER and re-sent.
	NotLeaderRetries uint64
	// Redirects counts NOT_LEADER answers that carried a usable redirect
	// address (a subset of NotLeaderRetries).
	Redirects uint64
	// Reconnects counts socket (re-)establishments after the first.
	Reconnects uint64
	// Hedges counts GetAt calls that fired a second leg.
	Hedges uint64
	// Uncertain counts writes answered UNCERTAIN (durable on the leader,
	// replication unconfirmed) and re-sent until definitive.
	Uncertain uint64
}

// breaker is a per-endpoint consecutive-failure circuit breaker.
type breaker struct {
	fails     int
	openUntil time.Time
}

// Client is one failover-aware logical connection. Not safe for
// concurrent use.
type Client struct {
	cfg    Config
	conn   *wire.Conn
	nc     net.Conn
	addr   string // endpoint the live socket is dialed to
	leader string // believed leader endpoint ("" = unknown)
	next   int    // rotation cursor over Endpoints
	dialed bool   // a socket has been established at least once

	breakers map[string]*breaker
	stats    Stats
	rng      *rand.Rand
}

// New builds a Client. No connection is made until the first op.
func New(cfg Config) (*Client, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("client: at least one endpoint required")
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = DefaultOpTimeout
	}
	if cfg.RetryFor <= 0 {
		cfg.RetryFor = DefaultRetryFor
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = DefaultRetryEvery
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.BreakerFailures <= 0 {
		cfg.BreakerFailures = DefaultBreakerFailures
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Client{cfg: cfg, breakers: make(map[string]*breaker, len(cfg.Endpoints))}
	for _, e := range cfg.Endpoints {
		c.breakers[e] = &breaker{}
	}
	// Deterministic per-client jitter stream; the seed only decorrelates
	// clients created in the same nanosecond batch, so address identity
	// is enough entropy.
	c.rng = rand.New(rand.NewSource(int64(len(cfg.Endpoints))<<32 ^ time.Now().UnixNano()))
	return c, nil
}

// Do executes one request, retrying across NOT_LEADER redirects, BUSY
// shedding, UNCERTAIN write outcomes, reconnects and endpoint rotation
// until it gets a definitive answer or the RetryFor budget runs out.
// Definitive answers — OK, NOT_FOUND, DUPLICATE, CONFLICT, NOT_YET, ERR —
// are returned to the caller; leadership, availability and ambiguity
// failures are retried.
func (c *Client) Do(req *wire.Request) (wire.Response, error) {
	deadline := time.Now().Add(c.cfg.RetryFor)
	delay := c.cfg.RetryEvery
	var lastErr error
	for {
		resp, err, retry := c.attempt(req)
		if !retry {
			return resp, err
		}
		lastErr = err
		if time.Now().After(deadline) {
			return wire.Response{}, fmt.Errorf("client: giving up after %v: %w", c.cfg.RetryFor, lastErr)
		}
		c.sleep(&delay)
	}
}

// attempt runs one try of req on the current (or a fresh) socket. retry
// reports whether the outcome is worth another attempt.
func (c *Client) attempt(req *wire.Request) (resp wire.Response, err error, retry bool) {
	if err := c.ensureConn(); err != nil {
		return wire.Response{}, err, true
	}
	resp, err = c.conn.Do(req)
	if err != nil {
		c.fail(c.addr)
		c.cfg.Logf("client: %s: %v; reconnecting", c.addr, err)
		c.dropConn()
		return wire.Response{}, err, true
	}
	c.breaker(c.addr).fails = 0
	switch resp.Status {
	case wire.StatusNotLeader:
		c.stats.NotLeaderRetries++
		if resp.Redirect != "" && resp.Redirect != c.addr {
			c.stats.Redirects++
			c.cfg.Logf("client: %s redirected writes to %s", c.addr, resp.Redirect)
			c.leader = resp.Redirect
		} else {
			// No usable hint: forget the stale leader and rotate.
			c.leader = ""
		}
		c.dropConn()
		return resp, wire.ErrNotLeader, true
	case wire.StatusBusy:
		return resp, wire.ErrBusy, true
	case wire.StatusUncertain:
		// The write is durable on the leader but its replication was not
		// confirmed in time. Re-issue until a definitive answer arrives:
		// PUT and DELETE are idempotent and a landed INSERT comes back
		// DUPLICATE, so a blind retry cannot double-apply.
		c.stats.Uncertain++
		return resp, wire.ErrUncertain, true
	}
	return resp, nil, false
}

// GetAt reads key with the given freshness requirement, hedging a slow
// primary across another endpoint when configured. The hedge leg runs on
// a short-lived connection, so the pipelined primary socket stays clean —
// unless the hedge wins, in which case the primary is abandoned (its
// socket has an unconsumed response) and redialed lazily.
func (c *Client) GetAt(table uint32, key, minTS uint64) (wire.Response, error) {
	req := wire.Request{Op: wire.OpGetAt, Table: table, Key: key, MinTS: minTS}
	if c.cfg.HedgeAfter <= 0 || len(c.cfg.Endpoints) < 2 {
		return c.Do(&req)
	}
	if err := c.ensureConn(); err != nil {
		return c.Do(&req)
	}
	type answer struct {
		resp wire.Response
		err  error
	}
	prim := make(chan answer, 1)
	pc, pnc, paddr := c.conn, c.nc, c.addr
	go func() {
		r, err := pc.Do(&req)
		prim <- answer{r, err}
	}()
	select {
	case a := <-prim:
		return c.settleGetAt(a.resp, a.err, &req)
	case <-time.After(c.cfg.HedgeAfter):
	}

	c.stats.Hedges++
	hed := make(chan answer, 1)
	go func() {
		r, err := c.hedgeOnce(&req, paddr)
		hed <- answer{r, err}
	}()
	for prim != nil || hed != nil {
		select {
		case a := <-prim:
			prim = nil
			if a.err == nil && a.resp.Status != wire.StatusNotYet && a.resp.Status != wire.StatusNotLeader {
				return a.resp, nil
			}
		case a := <-hed:
			hed = nil
			if a.err == nil && a.resp.Status != wire.StatusNotYet && a.resp.Status != wire.StatusNotLeader {
				// The primary socket still owes a response; abandon it.
				if c.nc == pnc {
					pnc.Close()
					c.conn, c.nc, c.addr = nil, nil, ""
				}
				return a.resp, nil
			}
		}
	}
	// Both legs failed or answered NOT_YET/NOT_LEADER: fall back to the
	// full retry loop, which chases the leader.
	if c.nc == pnc {
		pnc.Close()
		c.conn, c.nc, c.addr = nil, nil, ""
	}
	return c.Do(&req)
}

// settleGetAt resolves an unhedged primary answer: transport errors and
// leadership refusals go through the retry loop, everything else is the
// answer.
func (c *Client) settleGetAt(resp wire.Response, err error, req *wire.Request) (wire.Response, error) {
	if err != nil {
		c.fail(c.addr)
		c.dropConn()
		return c.Do(req)
	}
	if resp.Status == wire.StatusNotLeader {
		c.dropConn()
		return c.Do(req)
	}
	return resp, nil
}

// hedgeOnce runs one GET_AT on a short-lived connection to an endpoint
// other than avoid.
func (c *Client) hedgeOnce(req *wire.Request, avoid string) (wire.Response, error) {
	var target string
	now := time.Now()
	for _, e := range c.cfg.Endpoints {
		if e == avoid {
			continue
		}
		if b := c.breakers[e]; now.Before(b.openUntil) {
			continue
		}
		target = e
		break
	}
	if target == "" {
		return wire.Response{}, fmt.Errorf("client: no hedge target")
	}
	nc, err := net.DialTimeout("tcp", target, c.cfg.OpTimeout)
	if err != nil {
		return wire.Response{}, err
	}
	defer nc.Close()
	return wire.NewConn(deadlineConn{nc, c.cfg.OpTimeout}).Do(req)
}

// ServerStats fetches the current node's STATS snapshot.
func (c *Client) ServerStats() (*wire.Stats, error) {
	resp, err := c.Do(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("client: STATS answered %v without a snapshot", resp.Status)
	}
	return resp.Stats, nil
}

// Stats returns the resilience tallies so far.
func (c *Client) Stats() Stats { return c.stats }

// Close releases the socket. The Client may be used again afterwards; it
// will redial.
func (c *Client) Close() {
	c.dropConn()
}

// ensureConn makes sure a live socket exists, preferring the believed
// leader, then rotating over endpoints whose breaker is closed, then —
// if every breaker is open — rotating over all of them anyway.
func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	now := time.Now()
	var candidates []string
	if c.leader != "" {
		candidates = append(candidates, c.leader)
	}
	for range c.cfg.Endpoints {
		e := c.cfg.Endpoints[c.next%len(c.cfg.Endpoints)]
		c.next++
		if e == c.leader {
			continue
		}
		if b := c.breakers[e]; now.Before(b.openUntil) {
			continue
		}
		candidates = append(candidates, e)
	}
	if len(candidates) == 0 {
		// Every breaker open: try them all; one may be back.
		candidates = append(candidates, c.cfg.Endpoints...)
	}
	var lastErr error
	for _, e := range candidates {
		nc, err := net.DialTimeout("tcp", e, c.cfg.OpTimeout)
		if err != nil {
			c.fail(e)
			lastErr = err
			continue
		}
		if c.dialed {
			c.stats.Reconnects++
		}
		c.dialed = true
		c.nc = nc
		c.conn = wire.NewConn(deadlineConn{nc, c.cfg.OpTimeout})
		c.addr = e
		return nil
	}
	return fmt.Errorf("client: no endpoint reachable: %w", lastErr)
}

// dropConn closes and forgets the current socket.
func (c *Client) dropConn() {
	if c.nc != nil {
		c.nc.Close()
	}
	c.conn, c.nc, c.addr = nil, nil, ""
}

// breaker returns the endpoint's breaker, creating one on first use: the
// live socket can point at a NOT_LEADER redirect target outside the
// configured endpoint set (a hostname/IP spelling mismatch between -peers
// client addrs and client endpoints is enough), and such learned addresses
// deserve the same failure accounting as configured ones.
func (c *Client) breaker(addr string) *breaker {
	b := c.breakers[addr]
	if b == nil {
		b = &breaker{}
		c.breakers[addr] = b
	}
	return b
}

// fail records one failure against an endpoint, opening its breaker after
// the configured consecutive count.
func (c *Client) fail(addr string) {
	b := c.breaker(addr)
	b.fails++
	if b.fails >= c.cfg.BreakerFailures {
		b.openUntil = time.Now().Add(c.cfg.BreakerCooldown)
		b.fails = 0
	}
}

// sleep applies one capped, jittered backoff step and doubles the delay.
func (c *Client) sleep(delay *time.Duration) {
	d := *delay
	jittered := d*3/4 + time.Duration(c.rng.Int63n(int64(d)/2))
	time.Sleep(jittered)
	if *delay *= 2; *delay > c.cfg.RetryMax {
		*delay = c.cfg.RetryMax
	}
}

// deadlineConn arms a fresh deadline before every Read and Write, making
// OpTimeout a per-I/O bound rather than a whole-connection one.
type deadlineConn struct {
	net.Conn
	d time.Duration
}

func (c deadlineConn) Read(p []byte) (int, error) {
	if c.d > 0 {
		c.Conn.SetReadDeadline(time.Now().Add(c.d))
	}
	return c.Conn.Read(p)
}

func (c deadlineConn) Write(p []byte) (int, error) {
	if c.d > 0 {
		c.Conn.SetWriteDeadline(time.Now().Add(c.d))
	}
	return c.Conn.Write(p)
}
