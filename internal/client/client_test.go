package client

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ordo/internal/wire"
)

// fakeNode is a minimal ordod stand-in: every accepted connection is
// served by handler, one request at a time.
type fakeNode struct {
	ln       net.Listener
	requests atomic.Uint64
}

func startFakeNode(t *testing.T, handler func(*wire.Request) wire.Response) *fakeNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &fakeNode{ln: ln}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				conn := wire.NewConn(nc)
				for {
					req, err := conn.ReadRequest()
					if err != nil {
						return
					}
					n.requests.Add(1)
					resp := handler(&req)
					if conn.WriteResponse(&resp) != nil || conn.Flush() != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return n
}

func (n *fakeNode) addr() string { return n.ln.Addr().String() }

func newTestClient(t *testing.T, endpoints ...string) *Client {
	t.Helper()
	c, err := New(Config{
		Endpoints:  endpoints,
		OpTimeout:  2 * time.Second,
		RetryFor:   5 * time.Second,
		RetryEvery: time.Millisecond,
		RetryMax:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestRedirectChasing(t *testing.T) {
	leader := startFakeNode(t, func(req *wire.Request) wire.Response {
		return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusOK, TS: 42}
	})
	var follower *fakeNode
	follower = startFakeNode(t, func(req *wire.Request) wire.Response {
		return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusNotLeader, Redirect: leader.addr()}
	})
	// The follower is listed first, so the cold client dials it, gets
	// refused with a redirect, and must chase it to the leader.
	c := newTestClient(t, follower.addr(), leader.addr())
	resp, err := c.Do(&wire.Request{Op: wire.OpPut, Key: 1, Vals: []uint64{7}})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("Do after redirect: %v, %v", resp.Status, err)
	}
	if s := c.Stats(); s.NotLeaderRetries != 1 || s.Redirects != 1 {
		t.Fatalf("stats after one redirect: %+v", s)
	}
	// The believed leader sticks: the next op must go straight there.
	before := follower.requests.Load()
	if _, err := c.Do(&wire.Request{Op: wire.OpPut, Key: 2, Vals: []uint64{8}}); err != nil {
		t.Fatal(err)
	}
	if got := follower.requests.Load(); got != before {
		t.Fatalf("second op touched the follower (%d requests, was %d)", got, before)
	}
}

func TestRedirectOutsideEndpoints(t *testing.T) {
	// The leader's address is NOT in Config.Endpoints (a hostname/IP
	// spelling mismatch between -peers client addrs and the client's
	// endpoint list). Chasing the redirect and then succeeding there used
	// to nil-deref the breaker map on the success path.
	leader := startFakeNode(t, func(req *wire.Request) wire.Response {
		return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusOK, TS: 7}
	})
	follower := startFakeNode(t, func(req *wire.Request) wire.Response {
		return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusNotLeader, Redirect: leader.addr()}
	})
	c := newTestClient(t, follower.addr()) // leader deliberately absent
	resp, err := c.Do(&wire.Request{Op: wire.OpPut, Key: 1, Vals: []uint64{7}})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("Do via learned redirect: %v, %v", resp.Status, err)
	}
	if b := c.breakers[leader.addr()]; b == nil {
		t.Fatal("learned redirect target got no breaker entry")
	}
	// The learned address keeps working for follow-up ops.
	if _, err := c.Do(&wire.Request{Op: wire.OpPut, Key: 2, Vals: []uint64{8}}); err != nil {
		t.Fatal(err)
	}
}

func TestUncertainWriteRetried(t *testing.T) {
	// Two UNCERTAIN answers (replication-ack timeouts) before the write is
	// confirmed: the client must keep re-issuing until definitive.
	var calls atomic.Uint64
	node := startFakeNode(t, func(req *wire.Request) wire.Response {
		if calls.Add(1) <= 2 {
			return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusUncertain}
		}
		return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusOK, TS: 9}
	})
	c := newTestClient(t, node.addr())
	resp, err := c.Do(&wire.Request{Op: wire.OpPut, Key: 1, Vals: []uint64{7}})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("Do through UNCERTAIN answers: %v, %v", resp.Status, err)
	}
	if s := c.Stats(); s.Uncertain != 2 {
		t.Fatalf("stats: %+v, want 2 uncertain retries", s)
	}
}

func TestDefinitiveAnswerNotRetried(t *testing.T) {
	node := startFakeNode(t, func(req *wire.Request) wire.Response {
		return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusNotFound}
	})
	c := newTestClient(t, node.addr())
	resp, err := c.Do(&wire.Request{Op: wire.OpPut, Key: 1, Vals: []uint64{7}})
	if err != nil || resp.Status != wire.StatusNotFound {
		t.Fatalf("Do: %v, %v; want NOT_FOUND with nil error", resp.Status, err)
	}
	if n := node.requests.Load(); n != 1 {
		t.Fatalf("NOT_FOUND was retried: %d requests", n)
	}
}

func TestRotationPastDeadEndpoint(t *testing.T) {
	// Reserve an address that refuses connections by closing its listener.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	live := startFakeNode(t, func(req *wire.Request) wire.Response {
		return wire.Response{Kind: wire.RespEmpty, Status: wire.StatusOK}
	})
	c := newTestClient(t, deadAddr, live.addr())
	resp, err := c.Do(&wire.Request{Op: wire.OpGet, Key: 1})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("Do past dead endpoint: %v, %v", resp.Status, err)
	}
	if b := c.breakers[deadAddr]; b.fails == 0 && !time.Now().Before(b.openUntil) {
		t.Fatal("dead endpoint's failure was not recorded")
	}
}

func TestBreakerOpensButNeverStrands(t *testing.T) {
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	c, err := New(Config{
		Endpoints:       []string{deadAddr},
		OpTimeout:       200 * time.Millisecond,
		RetryFor:        250 * time.Millisecond,
		RetryEvery:      time.Millisecond,
		RetryMax:        5 * time.Millisecond,
		BreakerFailures: 1,
		BreakerCooldown: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(&wire.Request{Op: wire.OpGet, Key: 1}); err == nil {
		t.Fatal("Do against a dead cluster returned nil error")
	}
	if b := c.breakers[deadAddr]; !time.Now().Before(b.openUntil) {
		t.Fatal("breaker did not open after consecutive failures")
	}
	// The endpoint comes back while its breaker is still open: the client
	// must dial it anyway (all breakers open → try everything).
	revived, err := net.Listen("tcp", deadAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", deadAddr, err)
	}
	node := &fakeNode{ln: revived}
	go func() {
		for {
			nc, err := revived.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				conn := wire.NewConn(nc)
				for {
					if _, err := conn.ReadRequest(); err != nil {
						return
					}
					node.requests.Add(1)
					resp := wire.Response{Kind: wire.RespEmpty, Status: wire.StatusOK}
					if conn.WriteResponse(&resp) != nil || conn.Flush() != nil {
						return
					}
				}
			}()
		}
	}()
	defer revived.Close()
	resp, err := c.Do(&wire.Request{Op: wire.OpGet, Key: 1})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("Do after revival with open breaker: %v, %v", resp.Status, err)
	}
}

func TestHedgedGetAt(t *testing.T) {
	slow := startFakeNode(t, func(req *wire.Request) wire.Response {
		time.Sleep(500 * time.Millisecond)
		return wire.Response{Kind: wire.RespRow, Status: wire.StatusOK, Row: []uint64{1}}
	})
	fast := startFakeNode(t, func(req *wire.Request) wire.Response {
		return wire.Response{Kind: wire.RespRow, Status: wire.StatusOK, Row: []uint64{2}}
	})
	c, err := New(Config{
		Endpoints:  []string{slow.addr(), fast.addr()},
		OpTimeout:  2 * time.Second,
		RetryFor:   5 * time.Second,
		RetryEvery: time.Millisecond,
		HedgeAfter: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	resp, err := c.GetAt(0, 1, 0)
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("hedged GetAt: %v, %v", resp.Status, err)
	}
	if len(resp.Row) != 1 || resp.Row[0] != 2 {
		t.Fatalf("hedged GetAt row = %v, want the fast replica's", resp.Row)
	}
	if d := time.Since(start); d >= 500*time.Millisecond {
		t.Fatalf("hedge did not beat the slow primary (%v)", d)
	}
	if s := c.Stats(); s.Hedges != 1 {
		t.Fatalf("stats: %+v, want 1 hedge", s)
	}
	// The abandoned primary socket must have been dropped: the next op
	// redials rather than reading the stale in-flight response.
	if c.conn != nil {
		t.Fatal("primary socket kept after losing the hedge race")
	}
}
