// Package intset provides the concurrent integer-set data structures the
// paper benchmarks RLU with (§6.4): a hash table of per-bucket linked
// lists and a "citrus"-style internal binary search tree, both built on
// the RLU synchronization mechanism so that they run unchanged over the
// original logical clock or the Ordo primitive.
package intset

// Set is a concurrent integer set. Operations go through per-goroutine
// handles, which carry the RLU thread context.
type Set interface {
	// NewHandle returns a handle for one goroutine's exclusive use.
	NewHandle() Handle
}

// Handle performs set operations on behalf of one goroutine.
type Handle interface {
	// Contains reports whether key is in the set.
	Contains(key int64) bool
	// Add inserts key; it reports false if key was already present.
	Add(key int64) bool
	// Remove deletes key; it reports false if key was absent.
	Remove(key int64) bool
}
