package intset

import (
	"testing"

	"ordo/internal/rlu"
)

func benchSet(b *testing.B, mk func(*rlu.Domain) Set) {
	d := rlu.NewDomain(rlu.Logical, nil)
	s := mk(d)
	h := s.NewHandle()
	for k := int64(0); k < 1000; k += 2 {
		h.Add(k)
	}
	b.ResetTimer()
	b.Run("contains", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Contains(int64(i) % 1000)
		}
	})
	b.Run("addremove", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := int64(i)%1000 | 1 // odd keys: not pre-filled
			h.Add(k)
			h.Remove(k)
		}
	})
}

func BenchmarkHashSet(b *testing.B) {
	benchSet(b, func(d *rlu.Domain) Set { return NewHashSet(d, 64) })
}

func BenchmarkCitrus(b *testing.B) {
	benchSet(b, func(d *rlu.Domain) Set { return NewCitrus(d) })
}
