package intset

import (
	"ordo/internal/rlu"
)

// lnode is one sorted-linked-list node. The node value (key and successor
// pointer) is the RLU-protected unit: writers lock the predecessor node to
// splice.
type lnode struct {
	key  int64
	next *rlu.Object[lnode]
}

// HashSet is the paper's RLU hash table: fixed buckets, one sorted linked
// list per bucket, keys hashed by modulus. It matches the benchmark
// configuration of §6.4 (e.g. 1,000 buckets × 100 nodes).
type HashSet struct {
	d       *rlu.Domain
	buckets []*rlu.Object[lnode] // sentinel heads (key = MinInt64)
}

// NewHashSet creates a hash set with the given bucket count over an RLU
// domain.
func NewHashSet(d *rlu.Domain, buckets int) *HashSet {
	if buckets < 1 {
		buckets = 1
	}
	h := &HashSet{d: d, buckets: make([]*rlu.Object[lnode], buckets)}
	for i := range h.buckets {
		h.buckets[i] = rlu.NewObject(lnode{key: minKey})
	}
	return h
}

const minKey = -1 << 63

// NewHandle implements Set.
func (h *HashSet) NewHandle() Handle {
	return &hashHandle{set: h, th: h.d.RegisterThread()}
}

type hashHandle struct {
	set *HashSet
	th  *rlu.Thread
}

func (h *hashHandle) bucket(key int64) *rlu.Object[lnode] {
	b := h.set.buckets
	idx := int(uint64(key) % uint64(len(b)))
	return b[idx]
}

// Contains implements Handle with a pure read-side traversal.
func (h *hashHandle) Contains(key int64) bool {
	th := h.th
	th.ReaderLock()
	defer th.ReaderUnlock()
	cur := h.bucket(key)
	for cur != nil {
		n := rlu.Dereference(th, cur)
		if n.key == key {
			return true
		}
		if n.key > key {
			return false
		}
		cur = n.next
	}
	return false
}

// Add implements Handle: it locks the predecessor and splices a new node.
func (h *hashHandle) Add(key int64) bool {
	th := h.th
	for {
		th.ReaderLock()
		prev := h.bucket(key)
		pn := rlu.Dereference(th, prev)
		cur := pn.next
		for cur != nil {
			cn := rlu.Dereference(th, cur)
			if cn.key >= key {
				break
			}
			prev, pn = cur, cn
			cur = cn.next
		}
		if cur != nil {
			if cn := rlu.Dereference(th, cur); cn.key == key {
				th.ReaderUnlock()
				return false
			}
		}
		p, ok := rlu.TryLock(th, prev)
		if !ok {
			th.Abort()
			continue
		}
		if p.next != cur {
			// A writer committed between our traversal and the lock;
			// splicing against the stale successor would drop its update.
			th.Abort()
			continue
		}
		p.next = rlu.NewObject(lnode{key: key, next: cur})
		th.ReaderUnlock()
		return true
	}
}

// Remove implements Handle: it locks the predecessor and the victim.
func (h *hashHandle) Remove(key int64) bool {
	th := h.th
	for {
		th.ReaderLock()
		prev := h.bucket(key)
		pn := rlu.Dereference(th, prev)
		cur := pn.next
		for cur != nil {
			cn := rlu.Dereference(th, cur)
			if cn.key >= key {
				break
			}
			prev, pn = cur, cn
			cur = cn.next
		}
		if cur == nil {
			th.ReaderUnlock()
			return false
		}
		cn := rlu.Dereference(th, cur)
		if cn.key != key {
			th.ReaderUnlock()
			return false
		}
		p, ok := rlu.TryLock(th, prev)
		if !ok {
			th.Abort()
			continue
		}
		if p.next != cur {
			th.Abort()
			continue
		}
		c, ok := rlu.TryLock(th, cur)
		if !ok {
			th.Abort()
			continue
		}
		p.next = c.next
		th.ReaderUnlock()
		return true
	}
}

// Len counts elements (single-threaded helper for tests/examples).
func (h *HashSet) Len() int {
	th := h.d.RegisterThread()
	th.ReaderLock()
	defer th.ReaderUnlock()
	n := 0
	for _, b := range h.buckets {
		cur := rlu.Dereference(th, b).next
		for cur != nil {
			n++
			cur = rlu.Dereference(th, cur).next
		}
	}
	return n
}
