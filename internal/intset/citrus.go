package intset

import (
	"math"

	"ordo/internal/rlu"
)

// tnode is an internal binary-search-tree node protected by RLU; writers
// lock every node they modify and the commit publishes the whole mutation
// atomically, so readers traversing under their snapshot never observe a
// torn rotation or relocation.
type tnode struct {
	key         int64
	left, right *rlu.Object[tnode]
}

// Citrus is a citrus-style internal BST over RLU (the "citrus tree
// benchmark" of §6.4, with its complex multi-node update operations).
type Citrus struct {
	d    *rlu.Domain
	root *rlu.Object[tnode] // sentinel, key = +inf, tree hangs off left
}

// NewCitrus creates an empty tree over an RLU domain.
func NewCitrus(d *rlu.Domain) *Citrus {
	return &Citrus{d: d, root: rlu.NewObject(tnode{key: math.MaxInt64})}
}

// NewHandle implements Set.
func (c *Citrus) NewHandle() Handle {
	return &citrusHandle{set: c, th: c.d.RegisterThread()}
}

type citrusHandle struct {
	set *Citrus
	th  *rlu.Thread
}

// Contains implements Handle.
func (h *citrusHandle) Contains(key int64) bool {
	th := h.th
	th.ReaderLock()
	defer th.ReaderUnlock()
	cur := h.set.root
	for cur != nil {
		n := rlu.Dereference(th, cur)
		switch {
		case key == n.key:
			return true
		case key < n.key:
			cur = n.left
		default:
			cur = n.right
		}
	}
	return false
}

// Add implements Handle.
func (h *citrusHandle) Add(key int64) bool {
	th := h.th
	for {
		th.ReaderLock()
		prev := h.set.root
		pn := rlu.Dereference(th, prev)
		wentLeft := true
		cur := pn.left
		for cur != nil {
			cn := rlu.Dereference(th, cur)
			if cn.key == key {
				th.ReaderUnlock()
				return false
			}
			prev, pn = cur, cn
			if key < cn.key {
				cur, wentLeft = cn.left, true
			} else {
				cur, wentLeft = cn.right, false
			}
		}
		p, ok := rlu.TryLock(th, prev)
		if !ok {
			th.Abort()
			continue
		}
		// Validate: the slot we chose must still be empty and the key must
		// still belong under it (a concurrent relocation can change p.key).
		if p.key != pn.key || childOf(p, wentLeft) != nil {
			th.Abort()
			continue
		}
		setChild(p, wentLeft, rlu.NewObject(tnode{key: key}))
		th.ReaderUnlock()
		return true
	}
}

func childOf(n *tnode, left bool) *rlu.Object[tnode] {
	if left {
		return n.left
	}
	return n.right
}

func setChild(n *tnode, left bool, c *rlu.Object[tnode]) {
	if left {
		n.left = c
	} else {
		n.right = c
	}
}

// Remove implements Handle, covering the leaf, one-child and two-child
// (successor relocation) cases — the "complex update operations" the paper
// cites for the citrus benchmark.
func (h *citrusHandle) Remove(key int64) bool {
	th := h.th
	for {
		th.ReaderLock()
		prev := h.set.root
		pn := rlu.Dereference(th, prev)
		wentLeft := true
		cur := pn.left
		var cn *tnode
		for cur != nil {
			cn = rlu.Dereference(th, cur)
			if cn.key == key {
				break
			}
			prev, pn = cur, cn
			if key < cn.key {
				cur, wentLeft = cn.left, true
			} else {
				cur, wentLeft = cn.right, false
			}
		}
		if cur == nil {
			th.ReaderUnlock()
			return false
		}

		switch {
		case cn.left == nil || cn.right == nil:
			// Leaf or single child: splice cur out of prev.
			p, ok := rlu.TryLock(th, prev)
			if !ok {
				th.Abort()
				continue
			}
			if p.key != pn.key || childOf(p, wentLeft) != cur {
				th.Abort()
				continue
			}
			c, ok := rlu.TryLock(th, cur)
			if !ok {
				th.Abort()
				continue
			}
			if c.key != key {
				th.Abort() // relocated under us
				continue
			}
			repl := c.left
			if repl == nil {
				repl = c.right
			}
			setChild(p, wentLeft, repl)
			th.ReaderUnlock()
			return true

		default:
			// Two children: relocate the successor's key into cur, then
			// splice the successor out.
			c, ok := rlu.TryLock(th, cur)
			if !ok {
				th.Abort()
				continue
			}
			if c.key != key || c.left == nil || c.right == nil {
				th.Abort()
				continue
			}
			// Find successor: leftmost node of the right subtree, reading
			// through the locked copy so the path starts from current data.
			sparent := cur
			sparentLeft := false
			succ := c.right
			sn := rlu.Dereference(th, succ)
			for sn.left != nil {
				sparent, sparentLeft = succ, true
				succ = sn.left
				sn = rlu.Dereference(th, succ)
			}
			s, ok := rlu.TryLock(th, succ)
			if !ok {
				th.Abort()
				continue
			}
			if s.left != nil {
				th.Abort() // a smaller key slid in below the successor
				continue
			}
			if sparent == cur {
				// Successor is cur's direct right child: validate through
				// the already-locked copy and splice on it.
				if c.right != succ {
					th.Abort()
					continue
				}
				c.key = s.key
				c.right = s.right
			} else {
				sp, ok := rlu.TryLock(th, sparent)
				if !ok {
					th.Abort()
					continue
				}
				if childOf(sp, sparentLeft) != succ {
					th.Abort()
					continue
				}
				c.key = s.key
				setChild(sp, sparentLeft, s.right)
			}
			th.ReaderUnlock()
			return true
		}
	}
}

// Len counts elements (single-threaded helper for tests/examples).
func (c *Citrus) Len() int {
	th := c.d.RegisterThread()
	th.ReaderLock()
	defer th.ReaderUnlock()
	var count func(o *rlu.Object[tnode]) int
	count = func(o *rlu.Object[tnode]) int {
		if o == nil {
			return 0
		}
		n := rlu.Dereference(th, o)
		return 1 + count(n.left) + count(n.right)
	}
	root := rlu.Dereference(th, c.root)
	return count(root.left)
}
