package intset

import (
	"math/rand"
	"sync"
	"testing"

	"ordo/internal/core"
	"ordo/internal/rlu"
)

// sets builds each data structure over each RLU mode.
func sets(t *testing.T) map[string]Set {
	t.Helper()
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	return map[string]Set{
		"hash/logical":   NewHashSet(rlu.NewDomain(rlu.Logical, nil), 64),
		"hash/ordo":      NewHashSet(rlu.NewDomain(rlu.Ordo, o), 64),
		"citrus/logical": NewCitrus(rlu.NewDomain(rlu.Logical, nil)),
		"citrus/ordo":    NewCitrus(rlu.NewDomain(rlu.Ordo, o)),
	}
}

func TestBasicOps(t *testing.T) {
	for name, s := range sets(t) {
		t.Run(name, func(t *testing.T) {
			h := s.NewHandle()
			if h.Contains(5) {
				t.Fatal("empty set contains 5")
			}
			if !h.Add(5) {
				t.Fatal("Add(5) on empty set returned false")
			}
			if h.Add(5) {
				t.Fatal("duplicate Add(5) returned true")
			}
			if !h.Contains(5) {
				t.Fatal("set does not contain 5 after Add")
			}
			if h.Contains(6) {
				t.Fatal("set contains 6, never added")
			}
			if !h.Remove(5) {
				t.Fatal("Remove(5) returned false")
			}
			if h.Remove(5) {
				t.Fatal("second Remove(5) returned true")
			}
			if h.Contains(5) {
				t.Fatal("set contains 5 after Remove")
			}
		})
	}
}

func TestMatchesReferenceModel(t *testing.T) {
	for name, s := range sets(t) {
		t.Run(name, func(t *testing.T) {
			h := s.NewHandle()
			ref := map[int64]bool{}
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 4000; i++ {
				k := int64(rng.Intn(200))
				switch rng.Intn(3) {
				case 0:
					want := !ref[k]
					if got := h.Add(k); got != want {
						t.Fatalf("step %d: Add(%d) = %v, want %v", i, k, got, want)
					}
					ref[k] = true
				case 1:
					want := ref[k]
					if got := h.Remove(k); got != want {
						t.Fatalf("step %d: Remove(%d) = %v, want %v", i, k, got, want)
					}
					delete(ref, k)
				default:
					if got := h.Contains(k); got != ref[k] {
						t.Fatalf("step %d: Contains(%d) = %v, want %v", i, k, got, ref[k])
					}
				}
			}
		})
	}
}

func TestNegativeAndBoundaryKeys(t *testing.T) {
	for name, s := range sets(t) {
		t.Run(name, func(t *testing.T) {
			h := s.NewHandle()
			keys := []int64{-1, 0, 1, -1 << 40, 1 << 40, 1<<63 - 1}
			for _, k := range keys {
				if !h.Add(k) {
					t.Fatalf("Add(%d) failed", k)
				}
			}
			for _, k := range keys {
				if !h.Contains(k) {
					t.Fatalf("Contains(%d) = false", k)
				}
			}
			for _, k := range keys {
				if !h.Remove(k) {
					t.Fatalf("Remove(%d) failed", k)
				}
			}
		})
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	for name, s := range sets(t) {
		t.Run(name, func(t *testing.T) {
			const workers = 4
			const perWorker = 150
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				h := s.NewHandle()
				wg.Add(1)
				go func(base int64) {
					defer wg.Done()
					for i := int64(0); i < perWorker; i++ {
						if !h.Add(base + i) {
							t.Errorf("Add(%d) failed", base+i)
							return
						}
					}
				}(int64(w) * 10000)
			}
			wg.Wait()
			h := s.NewHandle()
			for w := 0; w < workers; w++ {
				for i := int64(0); i < perWorker; i++ {
					k := int64(w)*10000 + i
					if !h.Contains(k) {
						t.Fatalf("key %d missing after concurrent inserts", k)
					}
				}
			}
		})
	}
}

func TestConcurrentMixedWorkloadLinearizable(t *testing.T) {
	// Contending workers toggle membership of a small key range; afterwards
	// every key's final membership must match the parity of successful
	// adds minus removes.
	for name, s := range sets(t) {
		t.Run(name, func(t *testing.T) {
			const workers = 4
			const iters = 300
			const keyRange = 16
			adds := make([][]int64, workers)
			rems := make([][]int64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				adds[w] = make([]int64, keyRange)
				rems[w] = make([]int64, keyRange)
				h := s.NewHandle()
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < iters; i++ {
						k := int64(rng.Intn(keyRange))
						if rng.Intn(2) == 0 {
							if h.Add(k) {
								adds[w][k]++
							}
						} else {
							if h.Remove(k) {
								rems[w][k]++
							}
						}
					}
				}(w)
			}
			wg.Wait()
			h := s.NewHandle()
			for k := int64(0); k < keyRange; k++ {
				var a, r int64
				for w := 0; w < workers; w++ {
					a += adds[w][k]
					r += rems[w][k]
				}
				present := h.Contains(k)
				// Every successful Add flips absent→present and every
				// successful Remove flips present→absent, so:
				wantPresent := a == r+1
				if a != r && a != r+1 {
					t.Fatalf("key %d: %d adds vs %d removes — impossible history", k, a, r)
				}
				if present != wantPresent {
					t.Fatalf("key %d: present=%v but adds=%d removes=%d", k, present, a, r)
				}
			}
		})
	}
}

func TestCitrusTwoChildDelete(t *testing.T) {
	d := rlu.NewDomain(rlu.Logical, nil)
	c := NewCitrus(d)
	h := c.NewHandle()
	// Build:        50
	//             /    \
	//           30      70
	//          /  \    /  \
	//        20   40  60   80
	for _, k := range []int64{50, 30, 70, 20, 40, 60, 80} {
		h.Add(k)
	}
	if !h.Remove(50) { // root with two children: successor 60 relocates
		t.Fatal("Remove(50) failed")
	}
	if h.Contains(50) {
		t.Fatal("50 still present")
	}
	for _, k := range []int64{20, 30, 40, 60, 70, 80} {
		if !h.Contains(k) {
			t.Fatalf("key %d lost by two-child delete", k)
		}
	}
	if got := c.Len(); got != 6 {
		t.Fatalf("Len() = %d, want 6", got)
	}
	// Remove a node whose successor is its direct right child.
	if !h.Remove(70) {
		t.Fatal("Remove(70) failed")
	}
	for _, k := range []int64{20, 30, 40, 60, 80} {
		if !h.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestHashSetLen(t *testing.T) {
	d := rlu.NewDomain(rlu.Logical, nil)
	s := NewHashSet(d, 8)
	h := s.NewHandle()
	for i := int64(0); i < 100; i++ {
		h.Add(i)
	}
	if got := s.Len(); got != 100 {
		t.Fatalf("Len() = %d, want 100", got)
	}
}
