package bench

import (
	"fmt"
	"io"

	"ordo/internal/core"
	"ordo/internal/machine"
	"ordo/internal/topology"
)

// runAblations prints the DESIGN.md §5 design-choice ablations:
//
//  1. Ordo's min/max estimator vs the NTP-style RTT/2 estimator — the
//     latter under-estimates the skew whenever one-way software paths are
//     asymmetric, which would break ordering soundness;
//  2. the global ORDO_BOUNDARY vs a per-pair table (§7): smaller windows
//     for close pairs, paid for with O(n²) resident memory and a pinning
//     requirement. (Ablation 3, boundary scaling, is Figure 16.)
func runAblations(w io.Writer, q Quality) {
	runs := 100
	if q == Quick {
		runs = 25
	}

	fmt.Fprintln(w, "[1] Boundary estimator soundness: Ordo (min-of-runs, max-of-pairs) vs NTP (RTT/2)")
	fmt.Fprintln(w, "Machine          physical-skew(ns)  ordo(ns)  ntp(ns)  ordo>=skew  ntp>=skew")
	for _, t := range topology.All() {
		s := &machine.Sampler{Topo: t, Seed: 42}
		stride := 1
		if t.Threads() > 32 {
			stride = t.Threads() / 32
		}
		opts := core.CalibrationOptions{Runs: runs, Stride: stride}
		ob, err := core.ComputeBoundary(s, opts)
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", t.Name, err)
			continue
		}
		nb, err := core.NTPBoundary(s, opts)
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", t.Name, err)
			continue
		}
		phys := t.MaxSkewDiffNS()
		fmt.Fprintf(w, "%-16s %17.0f %9d %8d %11v %10v\n",
			t.Name, phys, ob.Global, nb.Global,
			float64(ob.Global) >= phys, float64(nb.Global) >= phys)
	}

	fmt.Fprintln(w, "\n[2] Global boundary vs per-pair table (AMD, 32 CPUs — full pair walk)")
	t := topology.AMD()
	s := &machine.Sampler{Topo: t, Seed: 42}
	pt, err := core.ComputePairTable(s, core.CalibrationOptions{Runs: runs})
	if err != nil {
		fmt.Fprintf(w, "pair table: %v\n", err)
		return
	}
	fmt.Fprintf(w, "global boundary: %d ns   table: %d pairs, %d bytes resident\n",
		pt.Global(), pt.CPUs()*(pt.CPUs()-1)/2, pt.Bytes())
	fmt.Fprintln(w, "gap(ns)  uncertain: global  per-pair")
	for _, gap := range []core.Time{50, 100, 150, 200, 250} {
		g, pp := pt.UncertainFraction(gap)
		fmt.Fprintf(w, "%-8d %17.2f %9.2f\n", gap, g, pp)
	}
	fmt.Fprintln(w, "(per-pair comparison requires pinned threads — §7's reason for the global default)")
}
