// Package bench is the evaluation harness: one runner per table and
// figure of the paper, each regenerating its rows/series on the simulated
// machines (and, where meaningful, on the host hardware) and printing a
// paper-style ASCII table.
//
// The harness backs cmd/ordo-bench, the repository's bench_test.go
// benchmarks, and the numbers recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sort"

	"ordo/internal/sim"
)

// Quality selects the fidelity/runtime trade-off.
type Quality int

const (
	// Quick uses fewer sweep points and shorter virtual durations; used by
	// tests and testing.B benchmarks.
	Quick Quality = iota
	// Full reproduces every point of the paper's figures.
	Full
)

func (q Quality) steps() int {
	if q == Quick {
		return 4
	}
	return 8
}

// Experiment is one table or figure reproduction.
type Experiment struct {
	ID    string // e.g. "table1", "fig13"
	Title string // the paper's caption, abridged
	Run   func(w io.Writer, q Quality)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Machine configurations and measured clock offsets", runTable1},
		{"fig1", "RLU vs RLU_ORDO hash table, 98% reads, Xeon Phi", runFig1},
		{"fig8a", "Hardware timestamp cost vs threads", runFig8a},
		{"fig8b", "Timestamp generation: atomic vs Ordo new_time", runFig8b},
		{"fig9", "Pairwise clock-offset heatmaps", runFig9},
		{"fig10", "Exim throughput: Vanilla vs Oplog vs Oplog_ORDO", runFig10},
		{"fig11", "RLU hash table, 2% and 40% updates, four machines", runFig11},
		{"fig12", "Deferred RLU vs RLU_ORDO, 40% updates, Xeon", runFig12},
		{"fig13", "YCSB read-only: six CC protocols", runFig13},
		{"fig14", "TPC-C, 60 warehouses: throughput and abort rate", runFig14},
		{"fig15", "STAMP speedups: TL2 vs TL2_ORDO", runFig15},
		{"fig16", "ORDO_BOUNDARY sensitivity, 1/8x-8x", runFig16},
		{"ablations", "Design-choice ablations (estimator soundness, pair table)", runAblations},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists every experiment id.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// printSeries renders series as an aligned table with one row per thread
// count found in any series.
func printSeries(w io.Writer, xlabel, format string, series ...sim.Series) {
	threads := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			threads[p.Threads] = true
		}
	}
	var xs []int
	for t := range threads {
		xs = append(xs, t)
	}
	sort.Ints(xs)

	fmt.Fprintf(w, "%-8s", xlabel)
	for _, s := range series {
		fmt.Fprintf(w, " %14s", s.Name)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%-8d", x)
		for _, s := range series {
			if v, ok := s.At(x); ok {
				fmt.Fprintf(w, " %14s", fmt.Sprintf(format, v))
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// printSeriesAux renders Value(Aux) pairs, for figures with two panels.
func printSeriesAux(w io.Writer, xlabel, format string, series ...sim.Series) {
	threads := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			threads[p.Threads] = true
		}
	}
	var xs []int
	for t := range threads {
		xs = append(xs, t)
	}
	sort.Ints(xs)

	fmt.Fprintf(w, "%-8s", xlabel)
	for _, s := range series {
		fmt.Fprintf(w, " %20s", s.Name)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%-8d", x)
		for _, s := range series {
			found := false
			for _, p := range s.Points {
				if p.Threads == x {
					fmt.Fprintf(w, " %20s", fmt.Sprintf(format+" (ab %.2f)", p.Value, p.Aux))
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(w, " %20s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}
