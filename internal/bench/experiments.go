package bench

import (
	"fmt"
	"io"

	"ordo/internal/core"
	"ordo/internal/db"
	"ordo/internal/machine"
	"ordo/internal/sim"
	"ordo/internal/topology"
)

// paperTable1 records the paper's measured offsets for side-by-side
// comparison.
var paperTable1 = map[string][2]float64{
	"Intel Xeon":     {70, 276},
	"Intel Xeon Phi": {90, 270},
	"AMD":            {93, 203},
	"ARM":            {100, 1100},
}

func runTable1(w io.Writer, _ Quality) {
	fmt.Fprintln(w, "Machine          Cores SMT  GHz Sockets | min(ns) max=BOUNDARY(ns) | paper min/max")
	for _, t := range topology.All() {
		b := sim.Boundary(t)
		min := sim.BoundaryMin(t)
		p := paperTable1[t.Name]
		fmt.Fprintf(w, "%-16s %5d %3d %4.1f %7d | %7.0f %17.0f | %.0f / %.0f\n",
			t.Name, t.PhysicalCores(), t.SMT, t.GHz, t.Sockets, min, b, p[0], p[1])
	}
	fmt.Fprintln(w, "\nHost hardware (this machine, via the one-way-delay protocol):")
	o, hb, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 50, MaxPairs: 64})
	if err != nil {
		fmt.Fprintf(w, "  calibration failed: %v\n", err)
		return
	}
	fmt.Fprintf(w, "  cpus=%d pairs=%d min=%d ticks boundary=%d ticks (%s)\n",
		hb.CPUs, hb.Pairs, hb.Min, hb.Global, o)
}

func runFig1(w io.Writer, q Quality) {
	p := topology.Phi()
	rlu := sim.RLUSweep(sim.RLUConfig{Topo: p, UpdateRatio: 0.02}, q.steps())
	ordo := sim.RLUSweep(sim.RLUConfig{Topo: p, UpdateRatio: 0.02, Ordo: true}, q.steps())
	fmt.Fprintln(w, "Hash table, 1000 buckets x 100 nodes, 98% reads / 2% writes, Intel Xeon Phi")
	fmt.Fprintln(w, "(ops/usec; paper Figure 1 reports the same benchmark in ops/sec)")
	printSeries(w, "#thread", "%.1f", rlu, ordo)
}

func runFig8a(w io.Writer, q Quality) {
	fmt.Fprintln(w, "Cost of one hardware timestamp read (ns) vs concurrent threads")
	var series []sim.Series
	for _, t := range topology.All() {
		series = append(series, sim.TimestampCostSweep(t, q.steps()))
	}
	printSeries(w, "#thread", "%.1f", series...)
}

func runFig8b(w io.Writer, q Quality) {
	fmt.Fprintln(w, "Per-core timestamps generated per usec: atomic increments (A) vs new_time (O)")
	var series []sim.Series
	for _, t := range topology.All() {
		a, o := sim.TimestampGenerationSweep(t, q.steps())
		series = append(series, a, o)
	}
	printSeries(w, "#thread", "%.2f", series...)
}

func runFig9(w io.Writer, q Quality) {
	for _, t := range topology.All() {
		s := &machine.Sampler{Topo: t, Seed: 42}
		runs := 40
		if q == Quick {
			runs = 10
		}
		m, err := s.OffsetMatrix(runs)
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", t.Name, err)
			continue
		}
		fmt.Fprintf(w, "%s: socket-to-socket mean measured offset (ns), writer socket rows -> reader socket columns\n", t.Name)
		printSocketMeans(w, t, m)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(per-core heatmaps: run cmd/ordo-heatmap)")
}

// printSocketMeans condenses a per-core offset matrix into per-socket
// means, the structure visible in the paper's heatmaps.
func printSocketMeans(w io.Writer, t *topology.Machine, m [][]int64) {
	n := t.Sockets
	sums := make([][]float64, n)
	counts := make([][]int, n)
	for i := range sums {
		sums[i] = make([]float64, n)
		counts[i] = make([]int, n)
	}
	for i := range m {
		for j := range m[i] {
			if i == j {
				continue
			}
			si, sj := i/t.CoresPerSocket, j/t.CoresPerSocket
			sums[si][sj] += float64(m[i][j])
			counts[si][sj]++
		}
	}
	fmt.Fprintf(w, "%6s", "")
	for j := 0; j < n; j++ {
		fmt.Fprintf(w, " %6s", fmt.Sprintf("s%d", j))
	}
	fmt.Fprintln(w)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%6s", fmt.Sprintf("s%d", i))
		for j := 0; j < n; j++ {
			if counts[i][j] == 0 {
				fmt.Fprintf(w, " %6s", "-")
				continue
			}
			fmt.Fprintf(w, " %6.0f", sums[i][j]/float64(counts[i][j]))
		}
		fmt.Fprintln(w)
	}
}

func runFig10(w io.Writer, q Quality) {
	x := topology.Xeon()
	fmt.Fprintln(w, "Exim mail-server messages/sec on the 240-thread Xeon")
	var series []sim.Series
	for _, v := range []sim.OplogVariant{sim.Vanilla, sim.Oplog, sim.OplogOrdo} {
		series = append(series, sim.OplogSweep(sim.OplogConfig{Topo: x, Variant: v}, q.steps()))
	}
	printSeries(w, "#thread", "%.0f", series...)
}

func runFig11(w io.Writer, q Quality) {
	for _, t := range topology.All() {
		fmt.Fprintf(w, "%s (ops/usec)\n", t.Name)
		var series []sim.Series
		for _, upd := range []float64{0.02, 0.40} {
			for _, ordo := range []bool{false, true} {
				s := sim.RLUSweep(sim.RLUConfig{Topo: t, UpdateRatio: upd, Ordo: ordo}, q.steps())
				s.Name = fmt.Sprintf("%s %.0f%%", s.Name, upd*100)
				series = append(series, s)
			}
		}
		printSeries(w, "#thread", "%.1f", series...)
		fmt.Fprintln(w)
	}
}

func runFig12(w io.Writer, q Quality) {
	x := topology.Xeon()
	fmt.Fprintln(w, "Deferred RLU, hash table 40% updates, Xeon (ops/usec)")
	l := sim.RLUSweep(sim.RLUConfig{Topo: x, UpdateRatio: 0.40, DeferN: 8}, q.steps())
	o := sim.RLUSweep(sim.RLUConfig{Topo: x, UpdateRatio: 0.40, DeferN: 8, Ordo: true}, q.steps())
	printSeries(w, "#thread", "%.1f", l, o)
}

func runFig13(w io.Writer, q Quality) {
	machines := topology.All()
	if q == Quick {
		machines = machines[:1]
	}
	for _, t := range machines {
		fmt.Fprintf(w, "%s: YCSB read-only (txns/usec)\n", t.Name)
		var series []sim.Series
		for _, p := range db.AllProtocols() {
			series = append(series, sim.YCSBSweep(sim.YCSBConfig{Topo: t, Protocol: p}, q.steps()))
		}
		printSeries(w, "#thread", "%.1f", series...)
		fmt.Fprintln(w)
	}
}

func runFig14(w io.Writer, q Quality) {
	x := topology.Xeon()
	fmt.Fprintln(w, "TPC-C, 60 warehouses, NewOrder 50% / Payment 50%, Xeon: txns/usec (abort rate)")
	var series []sim.Series
	for _, p := range db.AllProtocols() {
		series = append(series, sim.TPCCSweep(sim.TPCCConfig{Topo: x, Protocol: p}, q.steps()))
	}
	printSeriesAux(w, "#thread", "%.1f", series...)
}

func runFig15(w io.Writer, q Quality) {
	x := topology.Xeon()
	for _, prof := range sim.STAMPProfiles() {
		fmt.Fprintf(w, "%s: speedup over sequential (abort rate)\n", prof.Name)
		l := sim.TL2Sweep(sim.TL2Config{Topo: x, Profile: prof}, q.steps())
		o := sim.TL2Sweep(sim.TL2Config{Topo: x, Profile: prof, Ordo: true}, q.steps())
		printSeriesAux(w, "#thread", "%.2f", l, o)
		fmt.Fprintln(w)
	}
}

func runFig16(w io.Writer, _ Quality) {
	x := topology.Xeon()
	fmt.Fprintln(w, "RLU_ORDO normalized throughput vs ORDO_BOUNDARY scale (98% reads, Xeon)")
	fmt.Fprintf(w, "%-10s %8s %10s %10s\n", "scale", "1-core", "1-socket", "8-socket")
	base := map[int]float64{}
	for _, threads := range []int{1, 30, 240} {
		base[threads] = sim.RunRLUAt(sim.RLUConfig{Topo: x, UpdateRatio: 0.02, Ordo: true}, threads).OpsPerUSec()
	}
	for _, scale := range []float64{0.125, 0.25, 0.5, 1, 2, 4, 8} {
		fmt.Fprintf(w, "%-10.3f", scale)
		for _, threads := range []int{1, 30, 240} {
			v := sim.RunRLUAt(sim.RLUConfig{Topo: x, UpdateRatio: 0.02, Ordo: true,
				BoundaryScale: scale}, threads).OpsPerUSec()
			fmt.Fprintf(w, " %9.3f", v/base[threads])
		}
		fmt.Fprintln(w)
	}
}
