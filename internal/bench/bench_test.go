package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsPresent(t *testing.T) {
	want := []string{"table1", "fig1", "fig8a", "fig8b", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "ablations"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("have %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("ByID(fig99) succeeded")
	}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			e.Run(&buf, Quick)
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("experiment %s produced almost no output: %q", e.ID, out)
			}
			if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
				t.Fatalf("experiment %s produced NaN/Inf:\n%s", e.ID, out)
			}
		})
	}
}

func TestTable1MentionsAllMachines(t *testing.T) {
	var buf bytes.Buffer
	runTable1(&buf, Quick)
	out := buf.String()
	for _, name := range []string{"Intel Xeon", "Intel Xeon Phi", "AMD", "ARM"} {
		if !strings.Contains(out, name) {
			t.Errorf("table1 output missing %q", name)
		}
	}
	if !strings.Contains(out, "Host hardware") {
		t.Error("table1 output missing host calibration")
	}
}

func TestFig13ListsAllProtocols(t *testing.T) {
	var buf bytes.Buffer
	runFig13(&buf, Quick)
	out := buf.String()
	for _, p := range []string{"SILO", "TICTOC", "OCC", "OCC_ORDO", "HEKATON", "HEKATON_ORDO"} {
		if !strings.Contains(out, p) {
			t.Errorf("fig13 output missing protocol %s", p)
		}
	}
}

func TestFig15ListsAllWorkloads(t *testing.T) {
	var buf bytes.Buffer
	runFig15(&buf, Quick)
	out := buf.String()
	for _, wl := range []string{"genome", "intruder", "kmeans", "labyrinth", "ssca2", "vacation"} {
		if !strings.Contains(out, wl) {
			t.Errorf("fig15 output missing workload %s", wl)
		}
	}
}
