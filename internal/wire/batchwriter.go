package wire

import (
	"encoding/binary"
	"io"
)

// DefaultFlushThreshold is the buffered-byte level past which BatchWriter
// flushes on its own.
const DefaultFlushThreshold = 64 << 10

// BatchWriter coalesces framed messages into one contiguous buffer so a
// pipelined window of responses reaches the socket as a single Write — the
// server's answer to a client's pipelined flush. Unlike bufio.Writer it
// never splits a frame across two syscalls mid-stream on its own: bytes
// accumulate until Flush (or the threshold trips at a frame boundary), then
// leave in one Write.
//
// Encoding reuses one scratch buffer, so steady-state writes allocate
// nothing. A write error is sticky: a partial socket write leaves the
// stream mid-frame, and emitting anything further would desynchronize the
// peer. Not safe for concurrent use.
type BatchWriter struct {
	w       io.Writer
	buf     []byte // framed messages since the last flush
	scratch []byte // payload encode scratch, reused across messages
	thresh  int
	err     error // sticky stream error
}

// NewBatchWriter wraps w with the default flush threshold.
func NewBatchWriter(w io.Writer) *BatchWriter {
	return &BatchWriter{w: w, thresh: DefaultFlushThreshold}
}

// append frames one encoded payload into the buffer and flushes past the
// threshold.
func (b *BatchWriter) append(payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooBig
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(len(payload)))
	b.buf = append(b.buf, payload...)
	if len(b.buf) >= b.thresh {
		return b.Flush()
	}
	return nil
}

// WriteResponse encodes and frames r into the buffer. An encoding error
// leaves the stream intact (nothing was buffered); only transport errors
// from a threshold flush are sticky.
func (b *BatchWriter) WriteResponse(r *Response) error {
	if b.err != nil {
		return b.err
	}
	payload, err := AppendResponse(b.scratch[:0], r)
	if err != nil {
		return err
	}
	b.scratch = payload[:0]
	return b.append(payload)
}

// WriteRequest encodes and frames r into the buffer, for clients batching
// a pipeline window.
func (b *BatchWriter) WriteRequest(r *Request) error {
	if b.err != nil {
		return b.err
	}
	payload, err := AppendRequest(b.scratch[:0], r)
	if err != nil {
		return err
	}
	b.scratch = payload[:0]
	return b.append(payload)
}

// Flush writes everything buffered in one Write and resets the buffer.
func (b *BatchWriter) Flush() error {
	if b.err != nil {
		return b.err
	}
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.w.Write(b.buf)
	b.buf = b.buf[:0]
	if err != nil {
		b.err = err
	}
	return err
}

// Buffered returns the bytes accumulated since the last flush.
func (b *BatchWriter) Buffered() int { return len(b.buf) }
