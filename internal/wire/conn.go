package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// Conn frames and codes protocol messages over one byte stream. It is the
// single I/O type both ends use: a client calls WriteRequest/Flush and
// ReadResponse, a server calls ReadRequest and WriteResponse/Flush.
//
// Writes are buffered; nothing reaches the stream until Flush (or the
// buffer fills), which is what makes client-side pipelining one syscall per
// window instead of one per op. Reads reuse one payload buffer, so decoded
// messages never alias it (the codec allocates fresh slices).
//
// Conn is not safe for concurrent use of the same direction; one goroutine
// may read while another writes.
type Conn struct {
	br   *bufio.Reader
	bw   *bufio.Writer
	rbuf []byte // frame payload scratch, reused across reads
	wbuf []byte // encode scratch, reused across writes
	// rerr poisons the read side after a frame-level failure that leaves
	// the stream desynchronized (an oversize length prefix whose payload
	// was never consumed): any further read would misparse payload bytes
	// as frame headers, so it returns the original error instead.
	rerr error
}

// NewConn wraps rw.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{
		br: bufio.NewReaderSize(rw, 64<<10),
		bw: bufio.NewWriterSize(rw, 64<<10),
	}
}

// WriteRequest encodes and frames r into the write buffer.
func (c *Conn) WriteRequest(r *Request) error {
	payload, err := AppendRequest(c.wbuf[:0], r)
	if err != nil {
		return err
	}
	c.wbuf = payload[:0]
	return WriteFrame(c.bw, payload)
}

// WriteResponse encodes and frames r into the write buffer.
func (c *Conn) WriteResponse(r *Response) error {
	payload, err := AppendResponse(c.wbuf[:0], r)
	if err != nil {
		return err
	}
	c.wbuf = payload[:0]
	return WriteFrame(c.bw, payload)
}

// Flush pushes buffered frames to the underlying stream.
func (c *Conn) Flush() error { return c.bw.Flush() }

// readFrame reads one frame, enforcing the desync poison: after
// ErrFrameTooBig the length varint has been consumed but the payload has
// not, so the next byte on the stream is payload, not a frame header —
// every subsequent read repeats the error rather than misparse it.
func (c *Conn) readFrame() ([]byte, error) {
	if c.rerr != nil {
		return nil, c.rerr
	}
	buf, err := ReadFrame(c.br, c.rbuf)
	c.rbuf = buf
	if errors.Is(err, ErrFrameTooBig) {
		c.rerr = err
	}
	return buf, err
}

// ReadRequest reads and decodes one request frame.
func (c *Conn) ReadRequest() (Request, error) {
	buf, err := c.readFrame()
	if err != nil {
		return Request{}, err
	}
	return DecodeRequest(buf)
}

// ReadResponse reads and decodes one response frame.
func (c *Conn) ReadResponse() (Response, error) {
	buf, err := c.readFrame()
	if err != nil {
		return Response{}, err
	}
	return DecodeResponse(buf)
}

// Do writes r, flushes, and reads the single response — the unpipelined
// convenience path for tools and tests. Every failure carries wire context
// naming the phase, so callers can attribute a broken exchange to the
// request write, the flush, or the response read.
func (c *Conn) Do(r *Request) (Response, error) {
	if err := c.WriteRequest(r); err != nil {
		return Response{}, fmt.Errorf("wire: writing request: %w", err)
	}
	if err := c.Flush(); err != nil {
		return Response{}, fmt.Errorf("wire: flushing request: %w", err)
	}
	resp, err := c.ReadResponse()
	if err != nil {
		return Response{}, fmt.Errorf("wire: reading response: %w", err)
	}
	return resp, nil
}
