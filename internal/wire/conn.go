package wire

import (
	"bufio"
	"fmt"
	"io"
)

// Conn frames and codes protocol messages over one byte stream. It is the
// single I/O type both ends use: a client calls WriteRequest/Flush and
// ReadResponse, a server calls ReadRequest and WriteResponse/Flush.
//
// Writes are buffered; nothing reaches the stream until Flush (or the
// buffer fills), which is what makes client-side pipelining one syscall per
// window instead of one per op. Reads reuse one payload buffer, so decoded
// messages never alias it (the codec allocates fresh slices).
//
// Conn is not safe for concurrent use of the same direction; one goroutine
// may read while another writes.
type Conn struct {
	br   *bufio.Reader
	bw   *bufio.Writer
	rbuf []byte // frame payload scratch, reused across reads
	wbuf []byte // encode scratch, reused across writes
}

// NewConn wraps rw.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{
		br: bufio.NewReaderSize(rw, 64<<10),
		bw: bufio.NewWriterSize(rw, 64<<10),
	}
}

// WriteRequest encodes and frames r into the write buffer.
func (c *Conn) WriteRequest(r *Request) error {
	payload, err := AppendRequest(c.wbuf[:0], r)
	if err != nil {
		return err
	}
	c.wbuf = payload[:0]
	return WriteFrame(c.bw, payload)
}

// WriteResponse encodes and frames r into the write buffer.
func (c *Conn) WriteResponse(r *Response) error {
	payload, err := AppendResponse(c.wbuf[:0], r)
	if err != nil {
		return err
	}
	c.wbuf = payload[:0]
	return WriteFrame(c.bw, payload)
}

// Flush pushes buffered frames to the underlying stream.
func (c *Conn) Flush() error { return c.bw.Flush() }

// ReadRequest reads and decodes one request frame.
func (c *Conn) ReadRequest() (Request, error) {
	buf, err := ReadFrame(c.br, c.rbuf)
	c.rbuf = buf
	if err != nil {
		return Request{}, err
	}
	return DecodeRequest(buf)
}

// ReadResponse reads and decodes one response frame.
func (c *Conn) ReadResponse() (Response, error) {
	buf, err := ReadFrame(c.br, c.rbuf)
	c.rbuf = buf
	if err != nil {
		return Response{}, err
	}
	return DecodeResponse(buf)
}

// Do writes r, flushes, and reads the single response — the unpipelined
// convenience path for tools and tests.
func (c *Conn) Do(r *Request) (Response, error) {
	if err := c.WriteRequest(r); err != nil {
		return Response{}, err
	}
	if err := c.Flush(); err != nil {
		return Response{}, err
	}
	resp, err := c.ReadResponse()
	if err != nil {
		return Response{}, fmt.Errorf("wire: reading response: %w", err)
	}
	return resp, nil
}
