package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestRegenSeedCorpus rewrites the checked-in seed corpus from
// seedPayloads when WIRE_WRITE_CORPUS=1 is set; otherwise it is a no-op.
// Run it after changing the codec or the seed set:
//
//	WIRE_WRITE_CORPUS=1 go test ./internal/wire -run TestRegenSeedCorpus
func TestRegenSeedCorpus(t *testing.T) {
	if os.Getenv("WIRE_WRITE_CORPUS") != "1" {
		t.Skip("set WIRE_WRITE_CORPUS=1 to rewrite the seed corpus")
	}
	write := func(sub string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", sub)
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, p := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(p)))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzDecodeFrame", seedPayloads(t))
	write("FuzzDecodeRepl", seedReplPayloads(t))
}

// corpusEntries parses every Go fuzz corpus file in dir ("go test fuzz v1"
// format, one []byte literal per line) into raw payloads.
func corpusEntries(dir string) ([][]byte, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no corpus files in %s", dir)
	}
	var out [][]byte
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		lines := strings.Split(string(data), "\n")
		if len(lines) == 0 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
			return nil, fmt.Errorf("%s: not a go fuzz corpus file", name)
		}
		for _, line := range lines[1:] {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			quoted := strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")")
			s, err := strconv.Unquote(quoted)
			if err != nil {
				return nil, fmt.Errorf("%s: %q: %w", name, line, err)
			}
			out = append(out, []byte(s))
		}
	}
	return out, nil
}
