package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Replication frames. The leader's repl.Source and a follower speak a
// four-message protocol over a dedicated connection, framed exactly like the
// client protocol (uvarint length prefix + payload) but with a larger frame
// bound because one WALBATCH can carry a full redo record (wal.MaxRecordData
// is 16 MiB).
//
// Stream positions are (incarnation, seq): the WAL device incarnation the
// records were written under, and the dense per-incarnation record sequence
// (the LSN the leader's live log assigned, which equals the record's index
// in the verified per-incarnation recovery order — DESIGN.md §13). A
// follower resumes by sending the last position it applied; resending at or
// before that position is always safe because replay is an ordered
// idempotent upsert, so the leader may round its resume point down.

// MaxReplFrame is the largest accepted replication frame payload. It must
// exceed wal.MaxRecordData plus framing overhead so any single redo record
// fits in one WALBATCH.
const MaxReplFrame = 1<<24 + 1<<16

// MaxReplBatch bounds the records of one WALBATCH frame.
const MaxReplBatch = 1 << 12

// ErrReplFrameTooBig rejects replication frames beyond MaxReplFrame.
var ErrReplFrameTooBig = fmt.Errorf("wire: repl frame exceeds %d bytes", MaxReplFrame)

// ReplKind identifies a replication message.
type ReplKind byte

// Replication message kinds.
const (
	replInvalid ReplKind = iota
	// ReplSubscribe is the follower's hello: resume streaming strictly
	// after position (Inc, Seq). (0, 0) asks for the full history.
	ReplSubscribe
	// ReplBatch carries a run of redo records in stream order, all from
	// incarnation Inc; each record carries its own Seq.
	ReplBatch
	// ReplAck is the follower's durable-apply cursor: it has appended
	// through (Inc, Seq) to its local WAL and replayed it.
	ReplAck
	// ReplWatermark is the leader's periodic heartbeat: its stream tail is
	// (Inc, Seq), its durable horizon timestamp is HorizonTS, and its
	// current Ordo uncertainty window is BoundaryTicks. Followers use the
	// tail for lag accounting and take the max of the leader's and their
	// own boundary when computing the safe-read watermark.
	ReplWatermark
	// ReplStatus is a node's leadership self-description. A leader sends
	// one immediately after accepting a SUBSCRIBE (so the follower adopts
	// the epoch before any batch), and any failover node answers a
	// status-query hello with one: Epoch and Role describe the regime it
	// believes in, (Inc, Seq) its own WAL incarnation and stream tail, and
	// (PrevInc, PrevSeq) its durable cursor into the previous regime's
	// stream — the truncation point a fenced ex-leader must roll back to
	// before resubscribing. Addr is its advertised repl address.
	ReplStatus
	// ReplReject fences a stale peer: the epochs disagree, so the
	// connection is refused. The frame carries the rejecting node's view
	// (same fields as ReplStatus, with Addr naming the leader it believes
	// in, if any) so the rejected side can re-bootstrap instead of
	// retrying blindly.
	ReplReject
)

// String returns the kind's wire-level name.
func (k ReplKind) String() string {
	switch k {
	case ReplSubscribe:
		return "SUBSCRIBE"
	case ReplBatch:
		return "WALBATCH"
	case ReplAck:
		return "WALACK"
	case ReplWatermark:
		return "WATERMARK"
	case ReplStatus:
		return "STATUS"
	case ReplReject:
		return "REJECT"
	}
	return fmt.Sprintf("ReplKind(%d)", byte(k))
}

// ReplRecord is one redo record inside a WALBATCH: the leader WAL record's
// per-incarnation sequence, commit timestamp, originating handle identity
// (carried for observability; followers re-key records under their own
// handles), and the opaque redo payload server.Replay understands.
type ReplRecord struct {
	Seq  uint64
	TS   uint64
	H    uint32
	HSeq uint64
	// Trace is the trace ID of the client request that produced this
	// record (0 for unsampled requests and backfilled history): it lets a
	// follower's apply span join the leader's trace.
	Trace uint64
	Data  []byte
}

// ReplMsg is one decoded replication frame. Inc and Seq are the position
// fields; their meaning per kind is documented on the kind constants. Recs
// is non-nil only for WALBATCH; HorizonTS and BoundaryTicks are meaningful
// only for WATERMARK; Role, PrevInc, PrevSeq and Addr only for
// STATUS/REJECT.
type ReplMsg struct {
	Kind ReplKind
	Inc  uint64
	Seq  uint64
	// Epoch is the fencing epoch the sender believes in. Every kind
	// carries it: a SUBSCRIBE with a stale epoch is rejected by the
	// leader, and a WALBATCH from a stale regime is rejected by the
	// follower. Zero means pre-failover traffic (legacy replication mode),
	// which is always accepted.
	Epoch uint64
	Recs  []ReplRecord
	// HorizonTS is the leader's durable horizon: the largest commit
	// timestamp in any flushed record.
	HorizonTS uint64
	// BoundaryTicks is the leader's Ordo uncertainty window in clock ticks.
	BoundaryTicks uint64
	// Role is the sender's numeric server.ReplRole (STATUS/REJECT only).
	Role uint64
	// PrevInc, PrevSeq are the sender's durable cursor into the previous
	// regime's stream (STATUS/REJECT only).
	PrevInc uint64
	PrevSeq uint64
	// Addr is an advertised repl address (STATUS: the sender's own;
	// REJECT: the leader the sender believes in, empty if unknown).
	Addr string
}

// AppendReplMsg appends m's payload encoding to dst.
func AppendReplMsg(dst []byte, m *ReplMsg) ([]byte, error) {
	dst = append(dst, byte(m.Kind))
	dst = binary.AppendUvarint(dst, m.Inc)
	dst = binary.AppendUvarint(dst, m.Seq)
	dst = binary.AppendUvarint(dst, m.Epoch)
	switch m.Kind {
	case ReplSubscribe, ReplAck:
		// Position and epoch only.
	case ReplBatch:
		if len(m.Recs) > MaxReplBatch {
			return nil, fmt.Errorf("wire: WALBATCH has %d records, limit %d", len(m.Recs), MaxReplBatch)
		}
		dst = binary.AppendUvarint(dst, uint64(len(m.Recs)))
		for i := range m.Recs {
			rec := &m.Recs[i]
			dst = binary.AppendUvarint(dst, rec.Seq)
			dst = binary.AppendUvarint(dst, rec.TS)
			dst = binary.AppendUvarint(dst, uint64(rec.H))
			dst = binary.AppendUvarint(dst, rec.HSeq)
			dst = binary.AppendUvarint(dst, rec.Trace)
			dst = binary.AppendUvarint(dst, uint64(len(rec.Data)))
			dst = append(dst, rec.Data...)
		}
	case ReplWatermark:
		dst = binary.AppendUvarint(dst, m.HorizonTS)
		dst = binary.AppendUvarint(dst, m.BoundaryTicks)
	case ReplStatus, ReplReject:
		if len(m.Addr) > MaxAddr {
			return nil, fmt.Errorf("wire: %v addr %d bytes, limit %d", m.Kind, len(m.Addr), MaxAddr)
		}
		dst = binary.AppendUvarint(dst, m.Role)
		dst = binary.AppendUvarint(dst, m.PrevInc)
		dst = binary.AppendUvarint(dst, m.PrevSeq)
		dst = binary.AppendUvarint(dst, uint64(len(m.Addr)))
		dst = append(dst, m.Addr...)
	default:
		return nil, fmt.Errorf("wire: cannot encode %v", m.Kind)
	}
	return dst, nil
}

// DecodeReplMsg decodes one replication payload; the whole payload must be
// consumed. Record Data slices alias b and are only valid while b is.
func DecodeReplMsg(b []byte) (ReplMsg, error) {
	var m ReplMsg
	if len(b) == 0 {
		return m, fmt.Errorf("repl kind: %w", ErrTruncated)
	}
	m.Kind = ReplKind(b[0])
	b = b[1:]
	var err error
	if m.Inc, b, err = uvarint(b); err != nil {
		return m, fmt.Errorf("repl inc: %w", err)
	}
	if m.Seq, b, err = uvarint(b); err != nil {
		return m, fmt.Errorf("repl seq: %w", err)
	}
	if m.Epoch, b, err = uvarint(b); err != nil {
		return m, fmt.Errorf("repl epoch: %w", err)
	}
	switch m.Kind {
	case ReplSubscribe, ReplAck:
		// Position and epoch only.
	case ReplBatch:
		var n int
		if n, b, err = count(b, MaxReplBatch, "WALBATCH record"); err != nil {
			return m, err
		}
		m.Recs = make([]ReplRecord, n)
		for i := range m.Recs {
			rec := &m.Recs[i]
			if rec.Seq, b, err = uvarint(b); err != nil {
				return m, fmt.Errorf("record %d seq: %w", i, err)
			}
			if rec.TS, b, err = uvarint(b); err != nil {
				return m, fmt.Errorf("record %d ts: %w", i, err)
			}
			var h uint64
			if h, b, err = uvarint(b); err != nil {
				return m, fmt.Errorf("record %d handle: %w", i, err)
			}
			if h > 1<<32-1 {
				return m, fmt.Errorf("wire: record %d handle id %d out of range", i, h)
			}
			rec.H = uint32(h)
			if rec.HSeq, b, err = uvarint(b); err != nil {
				return m, fmt.Errorf("record %d handle seq: %w", i, err)
			}
			if rec.Trace, b, err = uvarint(b); err != nil {
				return m, fmt.Errorf("record %d trace: %w", i, err)
			}
			var sz uint64
			if sz, b, err = uvarint(b); err != nil {
				return m, fmt.Errorf("record %d data len: %w", i, err)
			}
			if sz > uint64(len(b)) {
				return m, fmt.Errorf("record %d data %d bytes beyond payload: %w", i, sz, ErrTruncated)
			}
			rec.Data = b[:sz:sz]
			b = b[sz:]
		}
	case ReplWatermark:
		if m.HorizonTS, b, err = uvarint(b); err != nil {
			return m, fmt.Errorf("watermark horizon: %w", err)
		}
		if m.BoundaryTicks, b, err = uvarint(b); err != nil {
			return m, fmt.Errorf("watermark boundary: %w", err)
		}
	case ReplStatus, ReplReject:
		if m.Role, b, err = uvarint(b); err != nil {
			return m, fmt.Errorf("status role: %w", err)
		}
		if m.PrevInc, b, err = uvarint(b); err != nil {
			return m, fmt.Errorf("status prev inc: %w", err)
		}
		if m.PrevSeq, b, err = uvarint(b); err != nil {
			return m, fmt.Errorf("status prev seq: %w", err)
		}
		var sz uint64
		if sz, b, err = uvarint(b); err != nil {
			return m, fmt.Errorf("status addr len: %w", err)
		}
		if sz > MaxAddr {
			return m, fmt.Errorf("wire: %v addr %d bytes, limit %d", m.Kind, sz, MaxAddr)
		}
		if sz > uint64(len(b)) {
			return m, fmt.Errorf("status addr %d bytes beyond payload: %w", sz, ErrTruncated)
		}
		m.Addr = string(b[:sz])
		b = b[sz:]
	default:
		return m, fmt.Errorf("wire: unknown repl kind %d", byte(m.Kind))
	}
	if len(b) != 0 {
		return m, fmt.Errorf("wire: %d trailing bytes after %v", len(b), m.Kind)
	}
	return m, nil
}

// WriteReplFrame writes one length-prefixed replication frame to w.
func WriteReplFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxReplFrame {
		return ErrReplFrameTooBig
	}
	var hdr [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadReplFrame reads one length-prefixed replication frame from r into buf
// (grown as needed); the payload is only valid until the next call with the
// same buf.
func ReadReplFrame(r FrameReader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return buf, err
	}
	if n > MaxReplFrame {
		return buf, ErrReplFrameTooBig
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	return buf, nil
}

// errReplHello distinguishes a malformed subscription from transport errors.
var errReplHello = errors.New("wire: expected SUBSCRIBE")

// ReadSubscribe reads and validates a follower's SUBSCRIBE hello, returning
// the full decoded message (resume position Inc/Seq plus the subscriber's
// epoch).
func ReadSubscribe(r FrameReader, buf []byte) (ReplMsg, []byte, error) {
	m, buf, err := ReadReplHello(r, buf)
	if err != nil {
		return m, buf, err
	}
	if m.Kind != ReplSubscribe {
		return m, buf, fmt.Errorf("%w, got %v", errReplHello, m.Kind)
	}
	return m, buf, nil
}

// ReadReplHello reads and decodes one replication frame — the first frame
// of a connection, which a failover node demuxes by kind (SUBSCRIBE starts
// a streaming session, STATUS asks for a one-shot leadership answer).
func ReadReplHello(r FrameReader, buf []byte) (ReplMsg, []byte, error) {
	buf, err := ReadReplFrame(r, buf)
	if err != nil {
		return ReplMsg{}, buf, err
	}
	m, err := DecodeReplMsg(buf)
	if err != nil {
		return m, buf, err
	}
	return m, buf, nil
}
