package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// seedPayloads returns one valid encoding of every frame shape, used both
// as the in-code fuzz seeds and by TestSeedCorpus to keep the checked-in
// corpus honest.
func seedPayloads(t interface{ Fatal(...any) }) [][]byte {
	reqs := []Request{
		{Op: OpGet, Table: 0, Key: 1},
		{Op: OpPut, Table: 2, Key: 3, Vals: []uint64{4, 5, 6}},
		{Op: OpInsert, Table: 0, Key: 7, Vals: []uint64{}},
		{Op: OpDelete, Table: 1, Key: 8},
		{Op: OpStats},
		{Op: OpTxn, Ops: []Request{
			{Op: OpGet, Table: 0, Key: 1},
			{Op: OpPut, Table: 0, Key: 2, Vals: []uint64{9}},
		}},
		{Op: OpGetAt, Table: 1, Key: 9, MinTS: 1 << 40},
		{Op: OpPut, Table: 2, Key: 3, Vals: []uint64{4, 5, 6}, Trace: 0xdeadbeef},
		{Op: OpGet, Table: 0, Key: 1, Trace: 1},
		{Op: OpTxn, Trace: 1 << 60, Ops: []Request{
			{Op: OpGet, Table: 0, Key: 1},
			{Op: OpPut, Table: 0, Key: 2, Vals: []uint64{9}},
		}},
	}
	resps := []Response{
		{Kind: RespEmpty, Status: StatusOK},
		{Kind: RespEmpty, Status: StatusBusy},
		{Kind: RespEmpty, Status: StatusOK, TS: 1 << 50},
		{Kind: RespEmpty, Status: StatusNotYet, TS: 77},
		{Kind: RespEmpty, Status: StatusNotLeader, TS: 0, Redirect: "127.0.0.1:7001"},
		{Kind: RespEmpty, Status: StatusNotLeader},
		{Kind: RespEmpty, Status: StatusUncertain},
		{Kind: RespRow, Status: StatusOK, Row: []uint64{1, 2}},
		{Kind: RespRow, Status: StatusOK, Row: []uint64{}},
		{Kind: RespBatch, Status: StatusOK, Batch: []Response{
			{Kind: RespRow, Status: StatusOK, Row: []uint64{3}},
			{Kind: RespEmpty, Status: StatusNotFound},
		}},
		{Kind: RespStats, Status: StatusOK, Stats: &Stats{
			Protocol: "OCC_ORDO", Commits: 10, Aborts: 1, Batches: 4,
			BatchedOps: 20, Busy: 2, Degraded: 3, ClockCmps: 30, ClockUncertain: 1,
			WALFlushes: 5, WALRecords: 12, WALSyncNsP99: 40000, WALDeviceErrors: 1,
			WALUnackedWrites: 2, RecoveredRecords: 7, TruncatedBytes: 128,
			ReplFollowers: 2, ReplLagRecords: 15, ReplWatermarkNS: 1 << 33,
			ReplEpoch: 3, ReplRoleCode: 1, Promotions: 1, Fencings: 2,
			ReplReconnects: 4,
		}},
	}
	var out [][]byte
	for i := range reqs {
		p, err := AppendRequest(nil, &reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	for i := range resps {
		p, err := AppendResponse(nil, &resps[i])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// FuzzDecodeFrame feeds arbitrary bytes through both payload decoders. The
// invariants: decoding never panics or over-allocates (the codec's length
// validation), and anything that decodes successfully re-encodes to a
// payload that decodes to the same value (round-trip stability).
func FuzzDecodeFrame(f *testing.F) {
	for _, p := range seedPayloads(f) {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// The arena decode path must be observationally identical to the
		// allocating one: same error outcome, same decoded value — including
		// across a Reset-and-reuse cycle, which is how the server uses it.
		var arena Arena
		for pass := 0; pass < 2; pass++ {
			areq, aerr := DecodeRequestArena(data, &arena)
			req, err := DecodeRequest(data)
			if (err == nil) != (aerr == nil) {
				t.Fatalf("pass %d: arena decode error mismatch: %v vs %v", pass, aerr, err)
			}
			if err == nil && !reflect.DeepEqual(normalizeReq(req), normalizeReq(areq)) {
				t.Fatalf("pass %d: arena decode mismatch:\n plain %+v\n arena %+v", pass, req, areq)
			}
			arena.Reset()
		}
		if req, err := DecodeRequest(data); err == nil {
			enc, err := AppendRequest(nil, &req)
			if err != nil {
				t.Fatalf("decoded request %+v does not re-encode: %v", req, err)
			}
			again, err := DecodeRequest(enc)
			if err != nil {
				t.Fatalf("re-encoded request does not decode: %v", err)
			}
			if !reflect.DeepEqual(normalizeReq(req), normalizeReq(again)) {
				t.Fatalf("request round-trip unstable:\n first %+v\n again %+v", req, again)
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			enc, err := AppendResponse(nil, &resp)
			if err != nil {
				t.Fatalf("decoded response %+v does not re-encode: %v", resp, err)
			}
			again, err := DecodeResponse(enc)
			if err != nil {
				t.Fatalf("re-encoded response does not decode: %v", err)
			}
			if !reflect.DeepEqual(normalizeResp(resp), normalizeResp(again)) {
				t.Fatalf("response round-trip unstable:\n first %+v\n again %+v", resp, again)
			}
		}
	})
}

// seedReplPayloads returns one valid encoding of every replication frame
// shape, mirroring seedPayloads for the repl codec.
func seedReplPayloads(t interface{ Fatal(...any) }) [][]byte {
	msgs := []ReplMsg{
		{Kind: ReplSubscribe},
		{Kind: ReplSubscribe, Inc: 3, Seq: 127},
		{Kind: ReplAck, Inc: 4, Seq: 1 << 20},
		{Kind: ReplWatermark, Inc: 4, Seq: 500, HorizonTS: 1 << 44, BoundaryTicks: 300},
		{Kind: ReplBatch, Inc: 2, Seq: 10, Recs: []ReplRecord{
			{Seq: 9, TS: 1000, H: 1, HSeq: 3, Data: []byte("redo")},
			{Seq: 10, TS: 1001, H: 2, HSeq: 1, Data: []byte{}},
		}},
		{Kind: ReplBatch},
		{Kind: ReplSubscribe, Inc: 3, Seq: 127, Epoch: 2},
		{Kind: ReplBatch, Inc: 5, Seq: 11, Epoch: 2, Recs: []ReplRecord{
			{Seq: 11, TS: 1002, H: 1, HSeq: 4, Data: []byte("redo2")},
		}},
		{Kind: ReplBatch, Inc: 6, Seq: 12, Epoch: 2, Recs: []ReplRecord{
			{Seq: 12, TS: 1003, H: 1, HSeq: 5, Trace: 0xabcdef0123, Data: []byte("redo3")},
		}},
		{Kind: ReplStatus, Inc: 6, Seq: 900, Epoch: 3, Role: 1,
			PrevInc: 4, PrevSeq: 880, Addr: "127.0.0.1:7101"},
		{Kind: ReplReject, Epoch: 3, Role: 2, Addr: "127.0.0.1:7102"},
		{Kind: ReplReject},
	}
	var out [][]byte
	for i := range msgs {
		p, err := AppendReplMsg(nil, &msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// normalizeReplMsg maps nil and empty slices to a canonical form: the wire
// cannot distinguish a nil record list or data payload from an empty one.
func normalizeReplMsg(m ReplMsg) ReplMsg {
	if len(m.Recs) == 0 {
		m.Recs = nil
	} else {
		recs := make([]ReplRecord, len(m.Recs))
		copy(recs, m.Recs)
		for i := range recs {
			if len(recs[i].Data) == 0 {
				recs[i].Data = nil
			}
		}
		m.Recs = recs
	}
	return m
}

// FuzzDecodeRepl is FuzzDecodeFrame for the replication codec: decoding
// arbitrary bytes never panics, and anything that decodes re-encodes to a
// payload that decodes to the same value.
func FuzzDecodeRepl(f *testing.F) {
	for _, p := range seedReplPayloads(f) {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeReplMsg(data)
		if err != nil {
			return
		}
		enc, err := AppendReplMsg(nil, &m)
		if err != nil {
			t.Fatalf("decoded repl msg %+v does not re-encode: %v", m, err)
		}
		again, err := DecodeReplMsg(enc)
		if err != nil {
			t.Fatalf("re-encoded repl msg does not decode: %v", err)
		}
		if !reflect.DeepEqual(normalizeReplMsg(m), normalizeReplMsg(again)) {
			t.Fatalf("repl round-trip unstable:\n first %+v\n again %+v", m, again)
		}
	})
}

// TestSeedCorpus keeps the checked-in seed corpora under testdata/fuzz in
// sync with the codecs: every seed payload must appear in some corpus file,
// so `go test -fuzz` starts from valid frames of every shape even before
// its first mutation.
func TestSeedCorpus(t *testing.T) {
	check := func(dir string, seeds [][]byte) {
		files, err := corpusEntries(dir)
		if err != nil {
			t.Fatalf("reading seed corpus: %v", err)
		}
		for i, p := range seeds {
			found := false
			for _, c := range files {
				if bytes.Equal(c, p) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: seed payload %d (%x) missing from checked-in corpus", dir, i, p)
			}
		}
	}
	check("testdata/fuzz/FuzzDecodeFrame", seedPayloads(t))
	check("testdata/fuzz/FuzzDecodeRepl", seedReplPayloads(t))
}
