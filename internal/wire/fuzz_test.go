package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// seedPayloads returns one valid encoding of every frame shape, used both
// as the in-code fuzz seeds and by TestSeedCorpus to keep the checked-in
// corpus honest.
func seedPayloads(t interface{ Fatal(...any) }) [][]byte {
	reqs := []Request{
		{Op: OpGet, Table: 0, Key: 1},
		{Op: OpPut, Table: 2, Key: 3, Vals: []uint64{4, 5, 6}},
		{Op: OpInsert, Table: 0, Key: 7, Vals: []uint64{}},
		{Op: OpDelete, Table: 1, Key: 8},
		{Op: OpStats},
		{Op: OpTxn, Ops: []Request{
			{Op: OpGet, Table: 0, Key: 1},
			{Op: OpPut, Table: 0, Key: 2, Vals: []uint64{9}},
		}},
	}
	resps := []Response{
		{Kind: RespEmpty, Status: StatusOK},
		{Kind: RespEmpty, Status: StatusBusy},
		{Kind: RespRow, Status: StatusOK, Row: []uint64{1, 2}},
		{Kind: RespRow, Status: StatusOK, Row: []uint64{}},
		{Kind: RespBatch, Status: StatusOK, Batch: []Response{
			{Kind: RespRow, Status: StatusOK, Row: []uint64{3}},
			{Kind: RespEmpty, Status: StatusNotFound},
		}},
		{Kind: RespStats, Status: StatusOK, Stats: &Stats{
			Protocol: "OCC_ORDO", Commits: 10, Aborts: 1, Batches: 4,
			BatchedOps: 20, Busy: 2, Degraded: 3, ClockCmps: 30, ClockUncertain: 1,
			WALFlushes: 5, WALRecords: 12, WALSyncNsP99: 40000, WALDeviceErrors: 1,
			WALUnackedWrites: 2, RecoveredRecords: 7, TruncatedBytes: 128,
		}},
	}
	var out [][]byte
	for i := range reqs {
		p, err := AppendRequest(nil, &reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	for i := range resps {
		p, err := AppendResponse(nil, &resps[i])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// FuzzDecodeFrame feeds arbitrary bytes through both payload decoders. The
// invariants: decoding never panics or over-allocates (the codec's length
// validation), and anything that decodes successfully re-encodes to a
// payload that decodes to the same value (round-trip stability).
func FuzzDecodeFrame(f *testing.F) {
	for _, p := range seedPayloads(f) {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// The arena decode path must be observationally identical to the
		// allocating one: same error outcome, same decoded value — including
		// across a Reset-and-reuse cycle, which is how the server uses it.
		var arena Arena
		for pass := 0; pass < 2; pass++ {
			areq, aerr := DecodeRequestArena(data, &arena)
			req, err := DecodeRequest(data)
			if (err == nil) != (aerr == nil) {
				t.Fatalf("pass %d: arena decode error mismatch: %v vs %v", pass, aerr, err)
			}
			if err == nil && !reflect.DeepEqual(normalizeReq(req), normalizeReq(areq)) {
				t.Fatalf("pass %d: arena decode mismatch:\n plain %+v\n arena %+v", pass, req, areq)
			}
			arena.Reset()
		}
		if req, err := DecodeRequest(data); err == nil {
			enc, err := AppendRequest(nil, &req)
			if err != nil {
				t.Fatalf("decoded request %+v does not re-encode: %v", req, err)
			}
			again, err := DecodeRequest(enc)
			if err != nil {
				t.Fatalf("re-encoded request does not decode: %v", err)
			}
			if !reflect.DeepEqual(normalizeReq(req), normalizeReq(again)) {
				t.Fatalf("request round-trip unstable:\n first %+v\n again %+v", req, again)
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			enc, err := AppendResponse(nil, &resp)
			if err != nil {
				t.Fatalf("decoded response %+v does not re-encode: %v", resp, err)
			}
			again, err := DecodeResponse(enc)
			if err != nil {
				t.Fatalf("re-encoded response does not decode: %v", err)
			}
			if !reflect.DeepEqual(normalizeResp(resp), normalizeResp(again)) {
				t.Fatalf("response round-trip unstable:\n first %+v\n again %+v", resp, again)
			}
		}
	})
}

// TestSeedCorpus keeps the checked-in seed corpus under
// testdata/fuzz/FuzzDecodeFrame in sync with the codec: every seed payload
// must appear in some corpus file, so `go test -fuzz` starts from valid
// frames of every shape even before its first mutation.
func TestSeedCorpus(t *testing.T) {
	files, err := corpusEntries("testdata/fuzz/FuzzDecodeFrame")
	if err != nil {
		t.Fatalf("reading seed corpus: %v", err)
	}
	for i, p := range seedPayloads(t) {
		found := false
		for _, c := range files {
			if bytes.Equal(c, p) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("seed payload %d (%x) missing from checked-in corpus", i, p)
		}
	}
}
