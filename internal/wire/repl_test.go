package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

func TestReplMsgRoundTrip(t *testing.T) {
	cases := []ReplMsg{
		{Kind: ReplSubscribe},
		{Kind: ReplSubscribe, Inc: math.MaxUint64, Seq: math.MaxUint64},
		{Kind: ReplAck, Inc: 7, Seq: 42},
		{Kind: ReplWatermark, Inc: 7, Seq: 42, HorizonTS: 1 << 50, BoundaryTicks: 275},
		{Kind: ReplBatch, Inc: 1, Seq: 3, Recs: []ReplRecord{
			{Seq: 1, TS: 10, H: 1, HSeq: 1, Data: []byte("a")},
			{Seq: 2, TS: 11, H: math.MaxUint32, HSeq: math.MaxUint64, Data: nil},
			{Seq: 3, TS: 11, H: 2, HSeq: 2, Data: bytes.Repeat([]byte{0xCD}, 4096)},
		}},
		{Kind: ReplBatch, Recs: []ReplRecord{}},
		{Kind: ReplSubscribe, Inc: 2, Seq: 17, Epoch: math.MaxUint64},
		{Kind: ReplAck, Inc: 7, Seq: 42, Epoch: 3},
		{Kind: ReplBatch, Inc: 1, Seq: 1, Epoch: 9, Recs: []ReplRecord{
			{Seq: 1, TS: 10, H: 1, HSeq: 1, Data: []byte("a")},
		}},
		{Kind: ReplStatus, Inc: 5, Seq: 600, Epoch: 4, Role: 1,
			PrevInc: 3, PrevSeq: 590, Addr: "127.0.0.1:7100"},
		{Kind: ReplStatus},
		{Kind: ReplReject, Epoch: 7, Role: 2, PrevInc: 1, PrevSeq: 2,
			Addr: "leader.example:7000"},
		{Kind: ReplReject},
	}
	for _, m := range cases {
		payload, err := AppendReplMsg(nil, &m)
		if err != nil {
			t.Fatalf("encode %v: %v", m.Kind, err)
		}
		got, err := DecodeReplMsg(payload)
		if err != nil {
			t.Fatalf("decode %v: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(normalizeReplMsg(m), normalizeReplMsg(got)) {
			t.Fatalf("round trip %v:\n sent %+v\n got  %+v", m.Kind, m, got)
		}
	}
}

func TestReplDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"unknown kind", []byte{0xEE, 0, 0}},
		{"truncated position", []byte{byte(ReplSubscribe), 3}},
		{"truncated epoch", []byte{byte(ReplSubscribe), 3, 4}},
		{"trailing bytes", []byte{byte(ReplAck), 0, 0, 0, 9}},
		{"huge record count", []byte{byte(ReplBatch), 0, 0, 0, 0xFF, 0xFF, 0x7F}},
		{"record data beyond payload", []byte{byte(ReplBatch), 0, 0, 0, 1, 1, 1, 1, 1, 0x20}},
		{"truncated watermark", []byte{byte(ReplWatermark), 0, 0, 0, 5}},
		{"truncated status addr", []byte{byte(ReplStatus), 0, 0, 0, 1, 0, 0, 9, 'a'}},
		{"huge status addr", append([]byte{byte(ReplReject), 0, 0, 0, 1, 0, 0, 0x82, 0x04}, bytes.Repeat([]byte{'x'}, 514)...)},
	}
	for _, tc := range cases {
		if _, err := DecodeReplMsg(tc.b); err == nil {
			t.Errorf("%s: decode accepted %x", tc.name, tc.b)
		}
	}
}

func TestReplFrameIO(t *testing.T) {
	var buf bytes.Buffer
	// A frame bigger than the client protocol's MaxFrame must pass: one
	// WALBATCH can carry a redo record of up to wal.MaxRecordData bytes.
	big := bytes.Repeat([]byte{0xAB}, MaxFrame+1)
	payloads := [][]byte{{}, {1, 2, 3}, big}
	for _, p := range payloads {
		if err := WriteReplFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	var scratch []byte
	for i, want := range payloads {
		got, err := ReadReplFrame(r, scratch)
		scratch = got
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadReplFrame(r, scratch); err != io.EOF {
		t.Fatalf("EOF expected, got %v", err)
	}
	if err := WriteReplFrame(io.Discard, make([]byte, MaxReplFrame+1)); !errors.Is(err, ErrReplFrameTooBig) {
		t.Fatalf("oversized write: got %v", err)
	}
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := ReadReplFrame(bytes.NewReader(huge), nil); !errors.Is(err, ErrReplFrameTooBig) {
		t.Fatalf("oversized frame: got %v", err)
	}
}

func TestReadSubscribe(t *testing.T) {
	var buf bytes.Buffer
	p, err := AppendReplMsg(nil, &ReplMsg{Kind: ReplSubscribe, Inc: 2, Seq: 17, Epoch: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteReplFrame(&buf, p); err != nil {
		t.Fatal(err)
	}
	m, _, err := ReadSubscribe(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Inc != 2 || m.Seq != 17 || m.Epoch != 5 {
		t.Fatalf("got position (%d, %d) epoch %d, want (2, 17) epoch 5", m.Inc, m.Seq, m.Epoch)
	}

	buf.Reset()
	p, _ = AppendReplMsg(nil, &ReplMsg{Kind: ReplAck, Inc: 2, Seq: 17})
	_ = WriteReplFrame(&buf, p)
	if _, _, err := ReadSubscribe(bytes.NewReader(buf.Bytes()), nil); err == nil {
		t.Fatal("non-SUBSCRIBE hello accepted")
	}
	// ReadReplHello accepts any kind: a failover node demuxes on it.
	buf.Reset()
	p, _ = AppendReplMsg(nil, &ReplMsg{Kind: ReplStatus, Epoch: 3, Role: 2})
	_ = WriteReplFrame(&buf, p)
	hello, _, err := ReadReplHello(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if hello.Kind != ReplStatus || hello.Epoch != 3 || hello.Role != 2 {
		t.Fatalf("hello decoded as %+v", hello)
	}
}
