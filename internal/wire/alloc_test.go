package wire

import (
	"io"
	"testing"
)

// The allocation gates: the serving hot path — request/response encode,
// server-path decode, batched response framing — must not allocate per op
// in steady state, so the zero-alloc work cannot silently regress. The
// benchmark harness (cmd/ordo-benchrun) reports the same numbers into
// BENCH_*.json; these tests are the CI teeth.

// benchRequest is a representative PUT: one 10-column row, the YCSB shape
// the loadgen drives.
func benchRequest() Request {
	return Request{Op: OpPut, Table: 0, Key: 123456, Vals: []uint64{
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
	}}
}

func benchResponse() Response {
	return Response{Kind: RespRow, Status: StatusOK, Row: []uint64{
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
	}}
}

func TestZeroAllocEncodeRequest(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	req := benchRequest()
	var buf []byte
	allocs := testing.AllocsPerRun(1000, func() {
		p, err := AppendRequest(buf[:0], &req)
		if err != nil {
			t.Fatal(err)
		}
		buf = p
	})
	if allocs != 0 {
		t.Fatalf("request encode: %v allocs/op, want 0", allocs)
	}
}

func TestZeroAllocEncodeResponse(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	resp := benchResponse()
	var buf []byte
	allocs := testing.AllocsPerRun(1000, func() {
		p, err := AppendResponse(buf[:0], &resp)
		if err != nil {
			t.Fatal(err)
		}
		buf = p
	})
	if allocs != 0 {
		t.Fatalf("response encode: %v allocs/op, want 0", allocs)
	}
}

func TestZeroAllocDecodeRequestArena(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	req := benchRequest()
	payload, err := AppendRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	var arena Arena
	allocs := testing.AllocsPerRun(1000, func() {
		arena.Reset()
		if _, err := DecodeRequestArena(payload, &arena); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("arena decode: %v allocs/op, want 0", allocs)
	}

	// The TXN shape carves both request and value blocks.
	txn := Request{Op: OpTxn, Ops: []Request{
		{Op: OpGet, Key: 1},
		benchRequest(),
		{Op: OpDelete, Key: 2},
	}}
	payload, err = AppendRequest(nil, &txn)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		arena.Reset()
		if _, err := DecodeRequestArena(payload, &arena); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("arena TXN decode: %v allocs/op, want 0", allocs)
	}
}

func TestZeroAllocBatchWriter(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	bw := NewBatchWriter(io.Discard)
	resp := benchResponse()
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 32; i++ {
			if err := bw.WriteResponse(&resp); err != nil {
				t.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batch writer window: %v allocs, want 0", allocs)
	}
}
