// Package wire is ordod's client/server protocol: a compact length-prefixed
// binary framing with varint-encoded payloads, designed so a pipelining
// client and a batching server agree on exactly one thing — frames arrive
// and are answered in order on each connection.
//
// A frame is a uvarint byte length followed by that many payload bytes.
// Request payloads start with an opcode byte; response payloads with a kind
// byte and a status byte. All integers are unsigned varints
// (encoding/binary's Uvarint). The protocol is deliberately free of
// connection state: any frame can be decoded in isolation, which is what
// makes the codec property-testable and fuzzable.
//
// Status codes are typed and round-trip the engine's error taxonomy:
// db.ErrConflict, db.ErrNotFound and db.ErrDuplicate each have a code, plus
// BUSY for server load-shedding and ERR for everything else. StatusOf and
// Status.Err convert in both directions.
package wire

import (
	"errors"
	"fmt"

	"ordo/internal/db"
)

// MaxFrame is the largest accepted frame payload in bytes. Frames beyond it
// are a protocol error: the bound is what lets a reader pre-validate the
// length prefix before allocating.
const MaxFrame = 1 << 20

// Limits on repeated elements inside one frame. They exist to reject
// hostile length prefixes early; all are far above what the engines serve.
const (
	// MaxCols bounds the columns of one row.
	MaxCols = 1 << 12
	// MaxTxnOps bounds the sub-operations of one TXN frame.
	MaxTxnOps = 1 << 14
	// MaxProtoName bounds the protocol-name string in a STATS response.
	MaxProtoName = 64
	// MaxAddr bounds the redirect/leader address strings carried by
	// NOT_LEADER responses and replication status frames.
	MaxAddr = 256
)

// Op identifies a request operation.
type Op byte

// TraceFlag is the opcode-byte bit marking a request that carries a
// trace-ID uvarint immediately after the opcode. Requests without a
// trace encode exactly as before the flag existed, so old clients and
// old captures stay byte-identical. Anything peeking at a raw payload's
// first byte must mask with PeekOp rather than reading it directly.
const TraceFlag byte = 0x80

// PeekOp classifies a raw request payload by its first byte, masking the
// trace flag — the reader-side run classification that must not decode.
func PeekOp(payload []byte) Op {
	if len(payload) == 0 {
		return opInvalid
	}
	return Op(payload[0] &^ TraceFlag)
}

// Request opcodes.
const (
	opInvalid Op = iota
	// OpGet reads one row: table, key → status + row.
	OpGet
	// OpPut replaces one existing row: table, key, row → status.
	OpPut
	// OpInsert creates one row: table, key, row → status.
	OpInsert
	// OpDelete removes one row: table, key → status.
	OpDelete
	// OpTxn executes a batch of simple ops as one atomic transaction.
	OpTxn
	// OpStats asks the server for its counter snapshot.
	OpStats
	// OpGetAt reads one row with a freshness requirement: table, key,
	// min-timestamp → status + row. A read replica serves it only when its
	// safe-read watermark covers MinTS; otherwise it answers NOT_YET with
	// the watermark so the client can retry or fall back to the leader. A
	// leader serves it exactly like GET (its state is authoritative).
	OpGetAt
)

// String returns the opcode's wire-level name.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpInsert:
		return "INSERT"
	case OpDelete:
		return "DELETE"
	case OpTxn:
		return "TXN"
	case OpStats:
		return "STATS"
	case OpGetAt:
		return "GET_AT"
	}
	return fmt.Sprintf("Op(%d)", byte(o))
}

// Status is a response's typed outcome code.
type Status byte

// Response status codes.
const (
	// StatusOK reports success.
	StatusOK Status = iota
	// StatusNotFound maps db.ErrNotFound.
	StatusNotFound
	// StatusDuplicate maps db.ErrDuplicate.
	StatusDuplicate
	// StatusConflict maps db.ErrConflict: the operation lost a concurrency
	// conflict even after the server's capped retries and may be re-issued.
	StatusConflict
	// StatusBusy reports load shedding: the connection's pipeline exceeded
	// the server's bounded queue and the op was rejected without running.
	StatusBusy
	// StatusErr is any other server-side failure.
	StatusErr
	// StatusNotYet reports that a read replica's safe-read watermark has
	// not reached the GET_AT's MinTS: the replica cannot prove it has
	// applied every leader write at or below that timestamp. The response's
	// TS field carries the current watermark so the client can retry after
	// it advances or fall back to the leader.
	StatusNotYet
	// StatusNotLeader rejects a write sent to a node that is not the
	// current epoch's leader. The response's Redirect field, when
	// non-empty, names the client-facing address of the node the sender
	// believes is the leader, so a resilient client can chase leadership
	// without rescanning every endpoint.
	StatusNotLeader
	// StatusUncertain reports an ambiguous write outcome: the write is
	// durably committed on this node but the replication-ack gate timed
	// out before a follower confirmed it. The write usually survives
	// failover (it replicates as soon as a follower reconnects), but the
	// server cannot promise that yet. Clients should retry until they get
	// a definitive answer; the data-path ops are safe to re-issue (PUT and
	// DELETE are idempotent, a landed INSERT answers DUPLICATE).
	StatusUncertain
)

// String returns the status code's wire-level name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusDuplicate:
		return "DUPLICATE"
	case StatusConflict:
		return "CONFLICT"
	case StatusBusy:
		return "BUSY"
	case StatusErr:
		return "ERR"
	case StatusNotYet:
		return "NOT_YET"
	case StatusNotLeader:
		return "NOT_LEADER"
	case StatusUncertain:
		return "UNCERTAIN"
	}
	return fmt.Sprintf("Status(%d)", byte(s))
}

// Errors a Status maps back to when it does not correspond to a db error.
var (
	// ErrBusy is the client-side view of StatusBusy.
	ErrBusy = errors.New("wire: server busy, op shed")
	// ErrServer is the client-side view of StatusErr.
	ErrServer = errors.New("wire: server error")
	// ErrNotYet is the client-side view of StatusNotYet: the replica's
	// watermark has not covered the requested read timestamp.
	ErrNotYet = errors.New("wire: replica watermark below requested read timestamp")
	// ErrNotLeader is the client-side view of StatusNotLeader: the write
	// was sent to a node that is not the current epoch's leader.
	ErrNotLeader = errors.New("wire: not the leader")
	// ErrUncertain is the client-side view of StatusUncertain: the write
	// is durable locally but its replication was not confirmed in time,
	// so the outcome is ambiguous until a retry gets a definitive answer.
	ErrUncertain = errors.New("wire: write outcome uncertain (durable locally, replication unconfirmed)")
)

// StatusOf maps an engine error to its wire status. nil maps to StatusOK;
// unrecognized errors map to StatusErr.
func StatusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, db.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, db.ErrDuplicate):
		return StatusDuplicate
	case errors.Is(err, db.ErrConflict):
		return StatusConflict
	case errors.Is(err, ErrBusy):
		return StatusBusy
	case errors.Is(err, ErrNotYet):
		return StatusNotYet
	case errors.Is(err, ErrNotLeader):
		return StatusNotLeader
	case errors.Is(err, ErrUncertain):
		return StatusUncertain
	}
	return StatusErr
}

// Err maps a status back to an error; StatusOK maps to nil. The db statuses
// return the db sentinel errors, so StatusOf(s.Err()) == s for every code.
func (s Status) Err() error {
	switch s {
	case StatusOK:
		return nil
	case StatusNotFound:
		return db.ErrNotFound
	case StatusDuplicate:
		return db.ErrDuplicate
	case StatusConflict:
		return db.ErrConflict
	case StatusBusy:
		return ErrBusy
	case StatusNotYet:
		return ErrNotYet
	case StatusNotLeader:
		return ErrNotLeader
	case StatusUncertain:
		return ErrUncertain
	}
	return ErrServer
}

// RespKind identifies a response payload's shape.
type RespKind byte

// Response kinds.
const (
	// RespEmpty carries only a status (PUT/INSERT/DELETE, shed ops).
	RespEmpty RespKind = iota
	// RespRow carries a status and one row (GET).
	RespRow
	// RespBatch carries an overall status and per-op responses (TXN).
	RespBatch
	// RespStats carries a server counter snapshot (STATS).
	RespStats
)

// String returns the kind's wire-level name.
func (k RespKind) String() string {
	switch k {
	case RespEmpty:
		return "EMPTY"
	case RespRow:
		return "ROW"
	case RespBatch:
		return "BATCH"
	case RespStats:
		return "STATS"
	}
	return fmt.Sprintf("RespKind(%d)", byte(k))
}

// Request is one decoded request frame.
type Request struct {
	Op    Op
	Table uint32
	Key   uint64
	// Vals is the row payload for PUT/INSERT.
	Vals []uint64
	// Ops holds a TXN frame's sub-operations; each must be a simple op
	// (GET/PUT/INSERT/DELETE — no nesting).
	Ops []Request
	// MinTS is GET_AT's freshness requirement: the read must reflect every
	// write with commit timestamp ≤ MinTS. Zero means "any watermark",
	// which a replica always serves. Ignored by every other op.
	MinTS uint64
	// Trace is the request's 64-bit trace ID; nonzero requests head-sample
	// themselves into the server's span rings. Carried on the wire via
	// TraceFlag on the opcode byte; zero adds no bytes. Only top-level
	// requests carry it — TXN sub-ops inherit the frame's trace.
	Trace uint64
}

// Response is one decoded response frame.
type Response struct {
	Kind   RespKind
	Status Status
	// Row is the row read by a GET; Kind RespRow distinguishes a present
	// zero-column row from no row at all.
	Row []uint64
	// Batch holds a TXN's per-op responses when the batch committed.
	Batch []Response
	// Stats is the STATS snapshot.
	Stats *Stats
	// TS is the timestamp carried by RespEmpty responses. On a durable
	// write ack it is the commit timestamp of the redo record that made the
	// write durable — the token a client hands to GET_AT for
	// read-your-writes on a replica. On NOT_YET it is the replica's current
	// safe-read watermark. Zero otherwise (non-durable servers, errors).
	TS uint64
	// Redirect is the client-facing address of the believed leader,
	// carried only by RespEmpty responses with StatusNotLeader. Empty when
	// the rejecting node does not know who leads the current epoch.
	Redirect string
}

// Stats is the server counter snapshot carried by a STATS response. Fields
// mirror server metrics; clock counters are the engine sessions' timestamp
// comparisons and how many fell inside the Ordo uncertainty window.
// Degraded counts runs that failed as one batched transaction and fell
// back to per-op transactions for status attribution. The WAL fields are
// zero on a server running without durability; RecoveredRecords and
// TruncatedBytes describe the startup recovery that seeded the engine.
type Stats struct {
	Protocol         string `json:"protocol"`
	Commits          uint64 `json:"commits"`
	Aborts           uint64 `json:"aborts"`
	Batches          uint64 `json:"batches"`
	BatchedOps       uint64 `json:"batched_ops"`
	Busy             uint64 `json:"busy_shed"`
	Degraded         uint64 `json:"degraded"`
	ClockCmps        uint64 `json:"clock_cmps"`
	ClockUncertain   uint64 `json:"clock_uncertain"`
	WALFlushes       uint64 `json:"wal_flushes"`
	WALRecords       uint64 `json:"wal_records"`
	WALSyncNsP99     uint64 `json:"wal_sync_ns_p99"`
	WALDeviceErrors  uint64 `json:"wal_device_errors"`
	WALUnackedWrites uint64 `json:"wal_unacked_writes"`
	RecoveredRecords uint64 `json:"recovered_records"`
	TruncatedBytes   uint64 `json:"truncated_bytes"`
	// Replication fields. On a leader, ReplFollowers is the number of
	// subscribed followers and ReplLagRecords the worst follower's
	// acknowledged lag; on a follower, ReplLagRecords is its own apply lag
	// behind the leader's advertised tail and ReplWatermarkNS the safe-read
	// watermark converted to nanoseconds. Zero on an unreplicated server.
	ReplFollowers   uint64 `json:"repl_followers"`
	ReplLagRecords  uint64 `json:"repl_lag_records"`
	ReplWatermarkNS uint64 `json:"repl_watermark_ns"`
	// Failover fields. ReplEpoch is the fencing epoch the node is serving
	// under (zero before any promotion); ReplRoleCode is the numeric
	// server.ReplRole (0 none, 1 leader, 2 follower); Promotions and
	// Fencings count leadership transitions this process performed or
	// rejected; ReplReconnects counts follower reconnect attempts.
	ReplEpoch      uint64 `json:"repl_epoch"`
	ReplRoleCode   uint64 `json:"repl_role"`
	Promotions     uint64 `json:"promotions"`
	Fencings       uint64 `json:"fencings"`
	ReplReconnects uint64 `json:"repl_reconnects"`
}

// Simple reports whether the op is a valid simple (non-composite)
// operation — executable inside a TXN batch.
func (o Op) Simple() bool {
	switch o {
	case OpGet, OpPut, OpInsert, OpDelete:
		return true
	}
	return false
}
