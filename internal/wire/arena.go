package wire

// Arena is a scratch allocator for decoded request payloads: row value
// slices and TXN sub-op slices are carved out of reusable blocks instead of
// being freshly allocated per decode. It exists for the server's hot path,
// where decoded requests do not outlive the batch they execute in — the
// owner decodes a run with DecodeRequestArena, executes it, writes the
// responses, and calls Reset, after which every slice handed out since the
// previous Reset is invalid.
//
// Growing a block never invalidates slices already carved: when the current
// block is too small a fresh, larger block is allocated and earlier carvings
// keep referencing the old one (which the next Reset abandons to the
// collector). In steady state the blocks are big enough for a whole run and
// decode performs zero allocations.
//
// An Arena is not safe for concurrent use; the zero value is ready.
type Arena struct {
	vals []uint64
	voff int
	reqs []Request
	roff int
}

// arenaMinBlock sizes the first block of each kind; past it blocks double.
const arenaMinBlock = 64

// Reset invalidates everything carved since the previous Reset and makes
// the arena's current blocks reusable.
func (a *Arena) Reset() {
	a.voff, a.roff = 0, 0
}

// vals64 carves an n-value slice. The result is non-nil even for n == 0 (a
// decoded zero-column row must stay distinguishable from "no row") and has
// its capacity clipped so appends cannot clobber a neighboring carving.
func (a *Arena) vals64(n int) []uint64 {
	// len(a.vals) == 0 must also grow: carving [0:0:0] out of a nil block
	// would produce a nil slice and break the non-nil empty-row contract.
	if a.voff+n > len(a.vals) || len(a.vals) == 0 {
		size := 2 * len(a.vals)
		if size < n {
			size = n
		}
		if size < arenaMinBlock {
			size = arenaMinBlock
		}
		a.vals = make([]uint64, size)
		a.voff = 0
	}
	s := a.vals[a.voff : a.voff+n : a.voff+n]
	a.voff += n
	return s
}

// requests carves an n-request slice, capacity-clipped like vals64.
func (a *Arena) requests(n int) []Request {
	if a.roff+n > len(a.reqs) || len(a.reqs) == 0 {
		size := 2 * len(a.reqs)
		if size < n {
			size = n
		}
		if size < arenaMinBlock {
			size = arenaMinBlock
		}
		a.reqs = make([]Request, size)
		a.roff = 0
	}
	s := a.reqs[a.roff : a.roff+n : a.roff+n]
	a.roff += n
	return s
}
