package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ordo/internal/db"
)

// reqRoundTrip encodes, decodes and compares one request.
func reqRoundTrip(t *testing.T, r Request) {
	t.Helper()
	payload, err := AppendRequest(nil, &r)
	if err != nil {
		t.Fatalf("encode %v: %v", r.Op, err)
	}
	got, err := DecodeRequest(payload)
	if err != nil {
		t.Fatalf("decode %v: %v", r.Op, err)
	}
	if !reflect.DeepEqual(normalizeReq(r), normalizeReq(got)) {
		t.Fatalf("round trip %v:\n sent %+v\n got  %+v", r.Op, r, got)
	}
}

// normalizeReq maps nil and empty slices to a canonical form for comparison:
// the wire cannot distinguish a nil Vals from an empty one on ops that
// always carry a row, but PUT/INSERT with nil Vals legitimately decode to
// an empty row.
func normalizeReq(r Request) Request {
	if len(r.Vals) == 0 {
		r.Vals = nil
	}
	if len(r.Ops) == 0 {
		r.Ops = nil
	} else {
		ops := make([]Request, len(r.Ops))
		for i := range r.Ops {
			ops[i] = normalizeReq(r.Ops[i])
		}
		r.Ops = ops
	}
	return r
}

func normalizeResp(r Response) Response {
	if len(r.Row) == 0 && r.Kind != RespRow {
		r.Row = nil
	}
	if len(r.Batch) == 0 {
		r.Batch = nil
	} else {
		b := make([]Response, len(r.Batch))
		for i := range r.Batch {
			b[i] = normalizeResp(r.Batch[i])
		}
		r.Batch = b
	}
	return r
}

func TestRequestRoundTrip(t *testing.T) {
	maxRow := make([]uint64, MaxCols)
	for i := range maxRow {
		maxRow[i] = rand.Uint64()
	}
	cases := []Request{
		{Op: OpGet, Table: 0, Key: 0},
		{Op: OpGet, Table: 7, Key: math.MaxUint64},
		{Op: OpDelete, Table: 1 << 31, Key: 42},
		{Op: OpPut, Table: 3, Key: 9, Vals: []uint64{1, 0, math.MaxUint64}},
		{Op: OpPut, Table: 0, Key: 1, Vals: []uint64{}}, // zero-column row
		{Op: OpInsert, Table: 0, Key: 5, Vals: maxRow},  // max-length payload
		{Op: OpStats},
		{Op: OpGetAt, Table: 2, Key: 11, MinTS: math.MaxUint64},
		{Op: OpGetAt}, // zero MinTS: "any watermark"
		{Op: OpTxn},   // empty batch
		{Op: OpTxn, Ops: []Request{
			{Op: OpGet, Table: 0, Key: 1},
			{Op: OpPut, Table: 0, Key: 2, Vals: []uint64{10, 20}},
			{Op: OpInsert, Table: 1, Key: 3, Vals: []uint64{}},
			{Op: OpDelete, Table: 0, Key: 4},
		}},
	}
	for _, r := range cases {
		reqRoundTrip(t, r)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	maxRow := make([]uint64, MaxCols)
	for i := range maxRow {
		maxRow[i] = rand.Uint64()
	}
	cases := []Response{
		{Kind: RespEmpty, Status: StatusOK},
		{Kind: RespEmpty, Status: StatusBusy},
		{Kind: RespEmpty, Status: StatusErr},
		{Kind: RespEmpty, Status: StatusOK, TS: math.MaxUint64},
		{Kind: RespEmpty, Status: StatusNotYet, TS: 12345},
		{Kind: RespRow, Status: StatusOK, Row: []uint64{1, 2, 3}},
		{Kind: RespRow, Status: StatusOK, Row: []uint64{}}, // zero-column row
		{Kind: RespRow, Status: StatusOK, Row: maxRow},     // max-length payload
		{Kind: RespBatch, Status: StatusConflict},
		{Kind: RespBatch, Status: StatusOK, Batch: []Response{
			{Kind: RespRow, Status: StatusOK, Row: []uint64{9}},
			{Kind: RespEmpty, Status: StatusNotFound},
			{Kind: RespEmpty, Status: StatusOK},
		}},
		{Kind: RespStats, Status: StatusOK, Stats: &Stats{
			Protocol: "OCC_ORDO", Commits: 12, Aborts: 3, Batches: 5,
			BatchedOps: 40, Busy: 1, Degraded: 4, ClockCmps: 99, ClockUncertain: 2,
			WALUnackedWrites: 6,
			ReplFollowers:    3, ReplLagRecords: 42, ReplWatermarkNS: 1 << 60,
		}},
		{Kind: RespStats, Status: StatusOK, Stats: &Stats{}},
	}
	for _, r := range cases {
		payload, err := AppendResponse(nil, &r)
		if err != nil {
			t.Fatalf("encode %v: %v", r.Kind, err)
		}
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("decode %v: %v", r.Kind, err)
		}
		if !reflect.DeepEqual(normalizeResp(r), normalizeResp(got)) {
			t.Fatalf("round trip %v:\n sent %+v\n got  %+v", r.Kind, r, got)
		}
	}
}

// TestRequestRoundTripRandom is the codec property test: every randomly
// generated valid request survives encode→decode unchanged.
func TestRequestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	simple := func() Request {
		r := Request{
			Op:    []Op{OpGet, OpPut, OpInsert, OpDelete}[rng.Intn(4)],
			Table: uint32(rng.Intn(8)),
			Key:   rng.Uint64(),
		}
		if r.Op == OpPut || r.Op == OpInsert {
			r.Vals = make([]uint64, rng.Intn(12))
			for i := range r.Vals {
				r.Vals[i] = rng.Uint64()
			}
		}
		return r
	}
	for i := 0; i < 2000; i++ {
		var r Request
		switch rng.Intn(4) {
		case 0:
			r = Request{Op: OpStats}
		case 1:
			r = Request{Op: OpTxn, Ops: make([]Request, rng.Intn(10))}
			for i := range r.Ops {
				r.Ops[i] = simple()
			}
		default:
			r = simple()
		}
		reqRoundTrip(t, r)
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"unknown op", []byte{0xEE, 0, 0}},
		{"truncated get", []byte{byte(OpGet), 5}},
		{"huge column count", []byte{byte(OpPut), 0, 0, 0xFF, 0xFF, 0xFF, 0x7F}},
		{"nested txn", append([]byte{byte(OpTxn), 1}, byte(OpTxn), 0)},
		{"stats op in txn", []byte{byte(OpTxn), 1, byte(OpStats)}},
		{"get_at in txn", []byte{byte(OpTxn), 1, byte(OpGetAt), 0, 0, 0}},
		{"truncated get_at", []byte{byte(OpGetAt), 0, 5}},
		{"trailing bytes", []byte{byte(OpStats), 0}},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.b); err == nil {
			t.Errorf("%s: decode accepted %x", tc.name, tc.b)
		}
	}
	respCases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"header only", []byte{byte(RespRow)}},
		{"unknown kind", []byte{0xEE, 0}},
		{"unknown status", []byte{byte(RespEmpty), 0xEE}},
		{"nested batch", []byte{byte(RespBatch), 0, 1, byte(RespBatch), 0, 0, 0}},
		{"stats without body", []byte{byte(RespStats), 0}},
		{"empty without ts", []byte{byte(RespEmpty), 0}},
		{"trailing bytes", []byte{byte(RespEmpty), 0, 0, 0}},
	}
	for _, tc := range respCases {
		if _, err := DecodeResponse(tc.b); err == nil {
			t.Errorf("%s: decode accepted %x", tc.name, tc.b)
		}
	}
}

// TestStatusRoundTrip checks both directions of the error mapping: every
// status survives Err→StatusOf, and every engine error maps to its code.
func TestStatusRoundTrip(t *testing.T) {
	for s := StatusOK; s <= StatusUncertain; s++ {
		if got := StatusOf(s.Err()); got != s {
			t.Errorf("StatusOf(%v.Err()) = %v", s, got)
		}
	}
	if StatusOf(db.ErrNotFound) != StatusNotFound ||
		StatusOf(db.ErrDuplicate) != StatusDuplicate ||
		StatusOf(db.ErrConflict) != StatusConflict ||
		StatusOf(nil) != StatusOK {
		t.Error("engine error mapping broken")
	}
	if StatusOf(errors.New("anything else")) != StatusErr {
		t.Error("unknown errors must map to StatusErr")
	}
	if !errors.Is(StatusNotFound.Err(), db.ErrNotFound) {
		t.Error("StatusNotFound must map back to db.ErrNotFound")
	}
}

func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xAB}, 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	var scratch []byte
	for i, want := range payloads {
		got, err := ReadFrame(r, scratch)
		scratch = got
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(r, scratch); err != io.EOF {
		t.Fatalf("EOF expected, got %v", err)
	}

	// Oversized length prefix must be rejected before any allocation.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := ReadFrame(bytes.NewReader(huge), nil); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized frame: got %v", err)
	}
	// Truncated payload must fail loudly, not return short.
	var tr bytes.Buffer
	_ = WriteFrame(&tr, []byte{1, 2, 3, 4})
	if _, err := ReadFrame(bytes.NewReader(tr.Bytes()[:3]), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: got %v", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized write: got %v", err)
	}
}

func TestConnPipelining(t *testing.T) {
	// A client Conn and server Conn over an in-memory duplex pipe.
	cr, sw := io.Pipe()
	sr, cw := io.Pipe()
	client := NewConn(struct {
		io.Reader
		io.Writer
	}{cr, cw})
	server := NewConn(struct {
		io.Reader
		io.Writer
	}{sr, sw})

	const n = 100
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			req, err := server.ReadRequest()
			if err != nil {
				done <- err
				return
			}
			resp := Response{Kind: RespRow, Status: StatusOK, Row: []uint64{req.Key * 2}}
			if err := server.WriteResponse(&resp); err != nil {
				done <- err
				return
			}
		}
		done <- server.Flush()
	}()

	for i := 0; i < n; i++ {
		if err := client.WriteRequest(&Request{Op: OpGet, Table: 0, Key: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		resp, err := client.ReadResponse()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if resp.Status != StatusOK || len(resp.Row) != 1 || resp.Row[0] != uint64(i*2) {
			t.Fatalf("response %d: %+v", i, resp)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
