package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// TestConnReadPoisonedAfterOversizeFrame: an oversize length prefix leaves
// the stream desynchronized (varint consumed, payload not). If the reader
// kept going, the payload bytes — attacker-controlled — would be parsed as
// fresh frame headers. The Conn must instead repeat ErrFrameTooBig on every
// subsequent read, even though a perfectly valid frame follows in the
// buffer.
func TestConnReadPoisonedAfterOversizeFrame(t *testing.T) {
	var stream bytes.Buffer

	// One valid frame first, to prove reads work before the poison.
	good, err := AppendResponse(nil, &Response{Kind: RespEmpty, Status: StatusOK})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&stream, good); err != nil {
		t.Fatal(err)
	}

	// Oversize header: length > MaxFrame, no payload behind it.
	var hdr [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(MaxFrame)+1)
	stream.Write(hdr[:n])

	// Followed by bytes that would decode as a valid frame if the reader
	// desynchronized and treated them as a new header.
	if err := WriteFrame(&stream, good); err != nil {
		t.Fatal(err)
	}

	c := NewConn(&readWriter{r: &stream})
	if _, err := c.ReadResponse(); err != nil {
		t.Fatalf("first read: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.ReadResponse(); !errors.Is(err, ErrFrameTooBig) {
			t.Fatalf("read %d after oversize frame: err=%v, want ErrFrameTooBig", i, err)
		}
	}
}

// readWriter glues a reader and a discard writer into an io.ReadWriter for
// NewConn.
type readWriter struct{ r *bytes.Buffer }

func (rw *readWriter) Read(p []byte) (int, error)  { return rw.r.Read(p) }
func (rw *readWriter) Write(p []byte) (int, error) { return len(p), nil }
