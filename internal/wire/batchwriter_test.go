package wire

import (
	"bufio"
	"bytes"
	"errors"
	"testing"
)

// TestBatchWriterStreamEquivalence: a window of responses written through
// BatchWriter produces byte-for-byte the same stream as per-frame
// WriteFrame, arrives in one Write, and decodes back in order.
func TestBatchWriterStreamEquivalence(t *testing.T) {
	resps := []Response{
		{Kind: RespEmpty, Status: StatusOK},
		{Kind: RespRow, Status: StatusOK, Row: []uint64{7, 8, 9}},
		{Kind: RespEmpty, Status: StatusBusy},
		{Kind: RespRow, Status: StatusOK, Row: []uint64{}},
		{Kind: RespBatch, Status: StatusOK, Batch: []Response{
			{Kind: RespEmpty, Status: StatusNotFound},
		}},
	}

	var want bytes.Buffer
	for i := range resps {
		p, err := AppendResponse(nil, &resps[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&want, p); err != nil {
			t.Fatal(err)
		}
	}

	sink := &countingWriter{}
	bw := NewBatchWriter(sink)
	for i := range resps {
		if err := bw.WriteResponse(&resps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if sink.writes != 0 {
		t.Fatalf("writer hit the stream before Flush: %d writes", sink.writes)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.writes != 1 {
		t.Fatalf("window flushed in %d writes, want 1", sink.writes)
	}
	if !bytes.Equal(sink.buf.Bytes(), want.Bytes()) {
		t.Fatalf("batched stream differs from per-frame stream:\n got %x\nwant %x",
			sink.buf.Bytes(), want.Bytes())
	}
	if bw.Buffered() != 0 {
		t.Fatalf("Buffered()=%d after flush", bw.Buffered())
	}
}

type countingWriter struct {
	buf    bytes.Buffer
	writes int
	err    error
}

func (w *countingWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	w.writes++
	return w.buf.Write(p)
}

// TestBatchWriterThreshold: crossing the threshold flushes on its own, at a
// frame boundary.
func TestBatchWriterThreshold(t *testing.T) {
	sink := &countingWriter{}
	bw := NewBatchWriter(sink)
	bw.thresh = 64
	resp := Response{Kind: RespRow, Status: StatusOK, Row: []uint64{1, 2, 3, 4, 5}}
	for i := 0; i < 20; i++ {
		if err := bw.WriteResponse(&resp); err != nil {
			t.Fatal(err)
		}
	}
	if sink.writes == 0 {
		t.Fatal("threshold never triggered a flush")
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Whatever the write segmentation, the byte stream must still decode to
	// the 20 responses in order.
	br := bufio.NewReader(bytes.NewReader(sink.buf.Bytes()))
	for i := 0; i < 20; i++ {
		payload, err := ReadFrame(br, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Status != StatusOK || len(got.Row) != 5 {
			t.Fatalf("frame %d decoded wrong: %+v", i, got)
		}
	}
}

// TestBatchWriterStickyError: once the underlying writer fails, every
// subsequent call repeats the error instead of emitting a mid-frame stream.
func TestBatchWriterStickyError(t *testing.T) {
	sink := &countingWriter{}
	bw := NewBatchWriter(sink)
	resp := Response{Kind: RespEmpty, Status: StatusOK}
	if err := bw.WriteResponse(&resp); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("boom")
	sink.err = injected
	if err := bw.Flush(); !errors.Is(err, injected) {
		t.Fatalf("flush error = %v, want %v", err, injected)
	}
	if err := bw.WriteResponse(&resp); !errors.Is(err, injected) {
		t.Fatalf("write after failure = %v, want sticky %v", err, injected)
	}
	if err := bw.Flush(); !errors.Is(err, injected) {
		t.Fatalf("flush after failure = %v, want sticky %v", err, injected)
	}
}
