package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Codec errors. Decoders return ErrTruncated for payloads that end inside a
// field, ErrFrameTooBig for hostile length prefixes, and wrap both in enough
// context to name the offending field.
var (
	ErrTruncated   = errors.New("wire: truncated payload")
	ErrFrameTooBig = fmt.Errorf("wire: frame exceeds %d bytes", MaxFrame)
)

// uvarint decodes one unsigned varint from b, returning the value and the
// remaining bytes.
func uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, b[n:], nil
}

// count decodes a repeated-element count and validates it against both the
// protocol limit and the bytes actually remaining (each element takes at
// least one byte), so a hostile prefix cannot force a huge allocation.
func count(b []byte, limit int, what string) (int, []byte, error) {
	v, rest, err := uvarint(b)
	if err != nil {
		return 0, nil, fmt.Errorf("%s count: %w", what, err)
	}
	if v > uint64(limit) {
		return 0, nil, fmt.Errorf("wire: %s count %d exceeds limit %d", what, v, limit)
	}
	if v > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("%s count %d beyond payload: %w", what, v, ErrTruncated)
	}
	return int(v), rest, nil
}

// appendRow appends a row as ncols followed by each column.
func appendRow(dst []byte, vals []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.AppendUvarint(dst, v)
	}
	return dst
}

// row decodes a column-count-prefixed row. The returned slice never aliases
// b, so frame buffers can be reused: it is freshly allocated when a is nil,
// or carved from the arena (valid until its Reset) otherwise. A zero-column
// row decodes to a non-nil empty slice to stay distinguishable from
// "no row".
func row(b []byte, a *Arena) ([]uint64, []byte, error) {
	n, rest, err := count(b, MaxCols, "column")
	if err != nil {
		return nil, nil, err
	}
	var vals []uint64
	if a != nil {
		vals = a.vals64(n)
	} else {
		vals = make([]uint64, n)
	}
	for i := range vals {
		vals[i], rest, err = uvarint(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("column %d: %w", i, err)
		}
	}
	return vals, rest, nil
}

// AppendRequest appends r's payload encoding to dst and returns the
// extended slice. It validates structure: unknown opcodes and nested
// composite ops are errors, so every encodable request is decodable.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	op := byte(r.Op)
	if op&TraceFlag != 0 {
		return nil, fmt.Errorf("wire: cannot encode %v", r.Op)
	}
	if r.Trace != 0 {
		dst = append(dst, op|TraceFlag)
		dst = binary.AppendUvarint(dst, r.Trace)
	} else {
		dst = append(dst, op)
	}
	switch r.Op {
	case OpGet, OpDelete:
		dst = binary.AppendUvarint(dst, uint64(r.Table))
		dst = binary.AppendUvarint(dst, r.Key)
	case OpPut, OpInsert:
		dst = binary.AppendUvarint(dst, uint64(r.Table))
		dst = binary.AppendUvarint(dst, r.Key)
		if len(r.Vals) > MaxCols {
			return nil, fmt.Errorf("wire: %v row has %d columns, limit %d", r.Op, len(r.Vals), MaxCols)
		}
		dst = appendRow(dst, r.Vals)
	case OpTxn:
		if len(r.Ops) > MaxTxnOps {
			return nil, fmt.Errorf("wire: TXN has %d ops, limit %d", len(r.Ops), MaxTxnOps)
		}
		dst = binary.AppendUvarint(dst, uint64(len(r.Ops)))
		for i := range r.Ops {
			if !r.Ops[i].Op.Simple() {
				return nil, fmt.Errorf("wire: TXN op %d: %v is not a simple op", i, r.Ops[i].Op)
			}
			var err error
			dst, err = AppendRequest(dst, &r.Ops[i])
			if err != nil {
				return nil, err
			}
		}
	case OpStats:
		// No body.
	case OpGetAt:
		dst = binary.AppendUvarint(dst, uint64(r.Table))
		dst = binary.AppendUvarint(dst, r.Key)
		dst = binary.AppendUvarint(dst, r.MinTS)
	default:
		return nil, fmt.Errorf("wire: cannot encode %v", r.Op)
	}
	return dst, nil
}

// DecodeRequest decodes one request payload. The whole payload must be
// consumed; trailing bytes are a protocol error. Decoded slices never alias
// b.
func DecodeRequest(b []byte) (Request, error) {
	return DecodeRequestArena(b, nil)
}

// DecodeRequestArena is DecodeRequest with the decoded row and sub-op
// slices carved from a (freshly allocated when a is nil): the zero-alloc
// decode path for a server worker that owns the requests only until the
// batch finishes. The decoded request is valid until a.Reset; it still
// never aliases b.
func DecodeRequestArena(b []byte, a *Arena) (Request, error) {
	r, rest, err := decodeRequest(b, false, a)
	if err != nil {
		return Request{}, err
	}
	if len(rest) != 0 {
		return Request{}, fmt.Errorf("wire: %d trailing bytes after %v request", len(rest), r.Op)
	}
	return r, nil
}

func decodeRequest(b []byte, inTxn bool, a *Arena) (Request, []byte, error) {
	var r Request
	if len(b) == 0 {
		return r, nil, fmt.Errorf("request opcode: %w", ErrTruncated)
	}
	r.Op = Op(b[0] &^ TraceFlag)
	traced := b[0]&TraceFlag != 0
	b = b[1:]
	if traced {
		if inTxn {
			return r, nil, errors.New("wire: trace flag on TXN sub-op")
		}
		var err error
		r.Trace, b, err = uvarint(b)
		if err != nil {
			return r, nil, fmt.Errorf("%v trace: %w", r.Op, err)
		}
		if r.Trace == 0 {
			return r, nil, fmt.Errorf("wire: %v trace flag with zero trace ID", r.Op)
		}
	}
	switch r.Op {
	case OpGet, OpPut, OpInsert, OpDelete:
		table, rest, err := uvarint(b)
		if err != nil {
			return r, nil, fmt.Errorf("%v table: %w", r.Op, err)
		}
		if table > 1<<31 {
			return r, nil, fmt.Errorf("wire: %v table id %d out of range", r.Op, table)
		}
		r.Table = uint32(table)
		r.Key, rest, err = uvarint(rest)
		if err != nil {
			return r, nil, fmt.Errorf("%v key: %w", r.Op, err)
		}
		if r.Op == OpPut || r.Op == OpInsert {
			r.Vals, rest, err = row(rest, a)
			if err != nil {
				return r, nil, fmt.Errorf("%v row: %w", r.Op, err)
			}
		}
		return r, rest, nil
	case OpTxn:
		if inTxn {
			return r, nil, errors.New("wire: nested TXN")
		}
		n, rest, err := count(b, MaxTxnOps, "TXN op")
		if err != nil {
			return r, nil, err
		}
		if a != nil {
			r.Ops = a.requests(n)
		} else {
			r.Ops = make([]Request, n)
		}
		for i := range r.Ops {
			r.Ops[i], rest, err = decodeRequest(rest, true, a)
			if err != nil {
				return r, nil, fmt.Errorf("TXN op %d: %w", i, err)
			}
			if !r.Ops[i].Op.Simple() {
				return r, nil, fmt.Errorf("wire: TXN op %d: %v is not a simple op", i, r.Ops[i].Op)
			}
		}
		return r, rest, nil
	case OpStats:
		return r, b, nil
	case OpGetAt:
		if inTxn {
			return r, nil, errors.New("wire: GET_AT inside TXN")
		}
		table, rest, err := uvarint(b)
		if err != nil {
			return r, nil, fmt.Errorf("%v table: %w", r.Op, err)
		}
		if table > 1<<31 {
			return r, nil, fmt.Errorf("wire: %v table id %d out of range", r.Op, table)
		}
		r.Table = uint32(table)
		r.Key, rest, err = uvarint(rest)
		if err != nil {
			return r, nil, fmt.Errorf("%v key: %w", r.Op, err)
		}
		r.MinTS, rest, err = uvarint(rest)
		if err != nil {
			return r, nil, fmt.Errorf("%v min_ts: %w", r.Op, err)
		}
		return r, rest, nil
	}
	return r, nil, fmt.Errorf("wire: unknown opcode %d", byte(r.Op))
}

// AppendResponse appends r's payload encoding to dst.
func AppendResponse(dst []byte, r *Response) ([]byte, error) {
	dst = append(dst, byte(r.Kind), byte(r.Status))
	switch r.Kind {
	case RespEmpty:
		dst = binary.AppendUvarint(dst, r.TS)
		// NOT_LEADER is the only status that carries a redirect address;
		// gating on it keeps every other RespEmpty encoding byte-identical
		// to the pre-failover protocol.
		if r.Status == StatusNotLeader {
			if len(r.Redirect) > MaxAddr {
				return nil, fmt.Errorf("wire: redirect %d bytes, limit %d", len(r.Redirect), MaxAddr)
			}
			dst = binary.AppendUvarint(dst, uint64(len(r.Redirect)))
			dst = append(dst, r.Redirect...)
		}
	case RespRow:
		if len(r.Row) > MaxCols {
			return nil, fmt.Errorf("wire: response row has %d columns, limit %d", len(r.Row), MaxCols)
		}
		dst = appendRow(dst, r.Row)
	case RespBatch:
		if len(r.Batch) > MaxTxnOps {
			return nil, fmt.Errorf("wire: response batch has %d entries, limit %d", len(r.Batch), MaxTxnOps)
		}
		dst = binary.AppendUvarint(dst, uint64(len(r.Batch)))
		for i := range r.Batch {
			if k := r.Batch[i].Kind; k != RespEmpty && k != RespRow {
				return nil, fmt.Errorf("wire: batch entry %d: %v cannot nest", i, k)
			}
			var err error
			dst, err = AppendResponse(dst, &r.Batch[i])
			if err != nil {
				return nil, err
			}
		}
	case RespStats:
		if r.Stats == nil {
			return nil, errors.New("wire: STATS response without stats body")
		}
		s := r.Stats
		if len(s.Protocol) > MaxProtoName {
			return nil, fmt.Errorf("wire: protocol name %d bytes, limit %d", len(s.Protocol), MaxProtoName)
		}
		dst = binary.AppendUvarint(dst, uint64(len(s.Protocol)))
		dst = append(dst, s.Protocol...)
		for _, v := range [...]uint64{
			s.Commits, s.Aborts, s.Batches, s.BatchedOps,
			s.Busy, s.Degraded, s.ClockCmps, s.ClockUncertain,
			s.WALFlushes, s.WALRecords, s.WALSyncNsP99, s.WALDeviceErrors,
			s.WALUnackedWrites, s.RecoveredRecords, s.TruncatedBytes,
			s.ReplFollowers, s.ReplLagRecords, s.ReplWatermarkNS,
			s.ReplEpoch, s.ReplRoleCode, s.Promotions, s.Fencings,
			s.ReplReconnects,
		} {
			dst = binary.AppendUvarint(dst, v)
		}
	default:
		return nil, fmt.Errorf("wire: cannot encode %v", r.Kind)
	}
	return dst, nil
}

// DecodeResponse decodes one response payload; the whole payload must be
// consumed.
func DecodeResponse(b []byte) (Response, error) {
	r, rest, err := decodeResponse(b, false)
	if err != nil {
		return Response{}, err
	}
	if len(rest) != 0 {
		return Response{}, fmt.Errorf("wire: %d trailing bytes after %v response", len(rest), r.Kind)
	}
	return r, nil
}

func decodeResponse(b []byte, inBatch bool) (Response, []byte, error) {
	var r Response
	if len(b) < 2 {
		return r, nil, fmt.Errorf("response header: %w", ErrTruncated)
	}
	r.Kind, r.Status = RespKind(b[0]), Status(b[1])
	if r.Status > StatusUncertain {
		return r, nil, fmt.Errorf("wire: unknown status %d", byte(r.Status))
	}
	b = b[2:]
	switch r.Kind {
	case RespEmpty:
		var err error
		r.TS, b, err = uvarint(b)
		if err != nil {
			return r, nil, fmt.Errorf("response ts: %w", err)
		}
		if r.Status == StatusNotLeader {
			var sz uint64
			if sz, b, err = uvarint(b); err != nil {
				return r, nil, fmt.Errorf("redirect len: %w", err)
			}
			if sz > MaxAddr {
				return r, nil, fmt.Errorf("wire: redirect %d bytes, limit %d", sz, MaxAddr)
			}
			if sz > uint64(len(b)) {
				return r, nil, fmt.Errorf("redirect %d bytes beyond payload: %w", sz, ErrTruncated)
			}
			r.Redirect = string(b[:sz])
			b = b[sz:]
		}
		return r, b, nil
	case RespRow:
		var err error
		r.Row, b, err = row(b, nil)
		if err != nil {
			return r, nil, fmt.Errorf("response row: %w", err)
		}
		return r, b, nil
	case RespBatch:
		if inBatch {
			return r, nil, errors.New("wire: nested response batch")
		}
		n, rest, err := count(b, MaxTxnOps, "batch entry")
		if err != nil {
			return r, nil, err
		}
		r.Batch = make([]Response, n)
		for i := range r.Batch {
			r.Batch[i], rest, err = decodeResponse(rest, true)
			if err != nil {
				return r, nil, fmt.Errorf("batch entry %d: %w", i, err)
			}
			if k := r.Batch[i].Kind; k != RespEmpty && k != RespRow {
				return r, nil, fmt.Errorf("wire: batch entry %d: %v cannot nest", i, k)
			}
		}
		return r, rest, nil
	case RespStats:
		n, rest, err := count(b, MaxProtoName, "protocol name byte")
		if err != nil {
			return r, nil, err
		}
		s := &Stats{Protocol: string(rest[:n])}
		rest = rest[n:]
		for _, field := range [...]*uint64{
			&s.Commits, &s.Aborts, &s.Batches, &s.BatchedOps,
			&s.Busy, &s.Degraded, &s.ClockCmps, &s.ClockUncertain,
			&s.WALFlushes, &s.WALRecords, &s.WALSyncNsP99, &s.WALDeviceErrors,
			&s.WALUnackedWrites, &s.RecoveredRecords, &s.TruncatedBytes,
			&s.ReplFollowers, &s.ReplLagRecords, &s.ReplWatermarkNS,
			&s.ReplEpoch, &s.ReplRoleCode, &s.Promotions, &s.Fencings,
			&s.ReplReconnects,
		} {
			*field, rest, err = uvarint(rest)
			if err != nil {
				return r, nil, fmt.Errorf("stats field: %w", err)
			}
		}
		r.Stats = s
		return r, rest, nil
	}
	return r, nil, fmt.Errorf("wire: unknown response kind %d", byte(r.Kind))
}

// WriteFrame writes one length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooBig
	}
	var hdr [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// FrameReader is the reader a frame is parsed from; a *bufio.Reader
// satisfies it.
type FrameReader interface {
	io.Reader
	io.ByteReader
}

// ReadFrame reads one length-prefixed frame from r into buf (grown as
// needed) and returns the payload slice, which is only valid until the next
// call with the same buf.
func ReadFrame(r FrameReader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return buf, err
	}
	if n > MaxFrame {
		return buf, ErrFrameTooBig
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	return buf, nil
}
