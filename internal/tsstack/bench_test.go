package tsstack

import (
	"testing"

	"ordo/internal/oplog"
)

func BenchmarkPushPop(b *testing.B) {
	s := New[int](oplog.RawTSC{})
	h := s.NewHandle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(i)
		if _, ok := h.Pop(); !ok {
			b.Fatal("empty after push")
		}
	}
}

func BenchmarkPushPopParallel(b *testing.B) {
	s := New[int](oplog.RawTSC{})
	b.RunParallel(func(pb *testing.PB) {
		h := s.NewHandle()
		for pb.Next() {
			h.Push(1)
			h.Pop()
		}
	})
}
