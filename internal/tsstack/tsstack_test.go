package tsstack

import (
	"sync"
	"testing"

	"ordo/internal/core"
	"ordo/internal/oplog"
)

func stamps(t *testing.T) map[string]oplog.Timestamper {
	t.Helper()
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]oplog.Timestamper{
		"raw":  oplog.RawTSC{},
		"ordo": OrdoStamp(o),
	}
}

func TestSequentialLIFO(t *testing.T) {
	for name, st := range stamps(t) {
		t.Run(name, func(t *testing.T) {
			s := New[int](st)
			h := s.NewHandle()
			for i := 1; i <= 50; i++ {
				h.Push(i)
			}
			for want := 50; want >= 1; want-- {
				got, ok := h.Pop()
				if !ok {
					t.Fatalf("Pop() empty at %d", want)
				}
				if got != want {
					t.Fatalf("Pop() = %d, want %d (LIFO)", got, want)
				}
			}
			if _, ok := h.Pop(); ok {
				t.Fatal("Pop() on empty stack returned ok")
			}
		})
	}
}

func TestPopEmpty(t *testing.T) {
	s := New[string](nil)
	h := s.NewHandle()
	if v, ok := h.Pop(); ok || v != "" {
		t.Fatalf("Pop() on fresh stack = %q, %v", v, ok)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	s := New[int](oplog.RawTSC{})
	h := s.NewHandle()
	h.Push(1)
	h.Push(2)
	if v, _ := h.Pop(); v != 2 {
		t.Fatalf("got %d, want 2", v)
	}
	h.Push(3)
	if v, _ := h.Pop(); v != 3 {
		t.Fatalf("got %d, want 3", v)
	}
	if v, _ := h.Pop(); v != 1 {
		t.Fatalf("got %d, want 1", v)
	}
}

func TestCrossHandleNewestWins(t *testing.T) {
	for name, st := range stamps(t) {
		t.Run(name, func(t *testing.T) {
			s := New[int](st)
			h1, h2 := s.NewHandle(), s.NewHandle()
			h1.Push(1) // oldest
			h2.Push(2)
			h1.Push(3) // newest
			if v, _ := h2.Pop(); v != 3 {
				t.Fatalf("pop = %d, want 3 (globally newest)", v)
			}
			if v, _ := h2.Pop(); v != 2 {
				t.Fatalf("pop = %d, want 2", v)
			}
			if v, _ := h1.Pop(); v != 1 {
				t.Fatalf("pop = %d, want 1", v)
			}
		})
	}
}

func TestConcurrentNoLossNoDup(t *testing.T) {
	for name, st := range stamps(t) {
		t.Run(name, func(t *testing.T) {
			s := New[int](st)
			const producers = 3
			const consumers = 3
			const perProducer = 400
			total := producers * perProducer

			var wg sync.WaitGroup
			seen := make(chan int, total)
			for p := 0; p < producers; p++ {
				h := s.NewHandle()
				wg.Add(1)
				go func(base int) {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						h.Push(base + i)
					}
				}(p * 10000)
			}
			var popped sync.WaitGroup
			var remaining = make(chan struct{})
			for c := 0; c < consumers; c++ {
				h := s.NewHandle()
				popped.Add(1)
				go func() {
					defer popped.Done()
					for {
						select {
						case <-remaining:
							return
						default:
						}
						if v, ok := h.Pop(); ok {
							seen <- v
						}
					}
				}()
			}
			wg.Wait() // all pushes done
			// Drain what's left single-threaded after stopping consumers.
			close(remaining)
			popped.Wait()
			h := s.NewHandle()
			for {
				v, ok := h.Pop()
				if !ok {
					break
				}
				seen <- v
			}
			close(seen)

			got := map[int]int{}
			for v := range seen {
				got[v]++
			}
			if len(got) != total {
				t.Fatalf("popped %d distinct values, want %d", len(got), total)
			}
			for v, n := range got {
				if n != 1 {
					t.Fatalf("value %d popped %d times", v, n)
				}
			}
			if s.Len() != 0 {
				t.Fatalf("Len() = %d after full drain", s.Len())
			}
		})
	}
}

func TestPerHandleOrderRespected(t *testing.T) {
	// Pops must never return an OLDER element of a pool while a NEWER
	// un-taken one exists (per-pool LIFO): push k values on one handle,
	// pop them from another, and require strictly descending values.
	s := New[int](oplog.RawTSC{})
	producer := s.NewHandle()
	for i := 1; i <= 100; i++ {
		producer.Push(i)
	}
	consumer := s.NewHandle()
	prev := 101
	for i := 0; i < 100; i++ {
		v, ok := consumer.Pop()
		if !ok {
			t.Fatal("ran dry early")
		}
		if v >= prev {
			t.Fatalf("pop order violated per-pool LIFO: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestLenCounts(t *testing.T) {
	s := New[int](nil)
	h := s.NewHandle()
	for i := 0; i < 5; i++ {
		h.Push(i)
	}
	if s.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", s.Len())
	}
	h.Pop()
	if s.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", s.Len())
	}
}
