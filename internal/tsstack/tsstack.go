// Package tsstack implements a timestamped stack in the style of Dodds,
// Haas and Kirsch (POPL'15) — the physical-timestamping data structure
// the paper cites as assuming synchronized hardware clocks (§2.1) and
// names as an Ordo client (§2.1, §7).
//
// Each thread pushes into its own single-producer pool and stamps the
// element with a timestamp taken AFTER insertion (the "delayed timestamp"
// trick: an element is visible before its timestamp settles, so
// concurrent pushes may be popped in either order). Pop scans the pools
// and removes the element with the newest timestamp.
//
// LIFO correctness requires that timestamps of non-concurrent pushes
// order correctly across threads, which raw unsynchronized TSCs do not
// guarantee. The Ordo timestamper restores the guarantee: timestamps are
// drawn with new_time, and two elements whose stamps fall within one
// ORDO_BOUNDARY are treated as concurrent — popping either is
// linearizable, exactly the paper's treatment of uncertainty in Oplog's
// merge.
package tsstack

import (
	"sync"
	"sync/atomic"

	"ordo/internal/core"
	"ordo/internal/oplog"
)

// tsPending marks an element whose timestamp has not settled yet; it
// compares as newer than everything (a concurrent push may be taken by
// any pop).
const tsPending = ^uint64(0)

// node is one stack element inside a thread's pool.
type node[T any] struct {
	ts    atomic.Uint64
	taken atomic.Bool
	value T
	next  *node[T] // older elements of the same pool
}

// pool is one thread's single-producer element list.
type pool[T any] struct {
	head atomic.Pointer[node[T]]
}

// Stack is a concurrent timestamped stack. Operations go through
// per-goroutine handles (the push pool is single-producer).
type Stack[T any] struct {
	stamp oplog.Timestamper

	mu    sync.Mutex
	pools []*pool[T]
	// poolsView is an immutable snapshot for lock-free pop scans.
	poolsView atomic.Pointer[[]*pool[T]]
}

// New creates a stack whose elements are stamped by the given
// timestamper (oplog.OrdoStamp for correctness on unsynchronized clocks;
// oplog.RawTSC reproduces the original's assumption).
func New[T any](stamp oplog.Timestamper) *Stack[T] {
	if stamp == nil {
		stamp = oplog.RawTSC{}
	}
	s := &Stack[T]{stamp: stamp}
	empty := []*pool[T]{}
	s.poolsView.Store(&empty)
	return s
}

// Handle is one goroutine's access point.
type Handle[T any] struct {
	s      *Stack[T]
	p      *pool[T]
	lastTS uint64
}

// NewHandle registers a new per-goroutine pool.
func (s *Stack[T]) NewHandle() *Handle[T] {
	h := &Handle[T]{s: s, p: &pool[T]{}}
	s.mu.Lock()
	s.pools = append(s.pools, h.p)
	snap := make([]*pool[T], len(s.pools))
	copy(snap, s.pools)
	s.poolsView.Store(&snap)
	s.mu.Unlock()
	return h
}

// Push adds v to the stack. The element becomes visible immediately with
// a pending timestamp and is stamped afterwards — the delayed-timestamp
// linearization of the original algorithm.
func (h *Handle[T]) Push(v T) {
	n := &node[T]{value: v}
	n.ts.Store(tsPending)
	for {
		old := h.p.head.Load()
		n.next = old
		if h.p.head.CompareAndSwap(old, n) {
			break
		}
	}
	h.lastTS = h.s.stamp.Next(h.lastTS)
	n.ts.Store(h.lastTS)
}

// Pop removes and returns the youngest element it can claim; ok reports
// whether the stack had any element. Elements whose timestamps cannot be
// ordered (pending, or within one boundary under an Ordo timestamper)
// count as concurrent, and claiming any of them is linearizable.
func (h *Handle[T]) Pop() (v T, ok bool) {
	for {
		pools := *h.s.poolsView.Load()
		var best *node[T]
		var bestTS uint64
		empty := true
		for _, p := range pools {
			for n := p.head.Load(); n != nil; n = n.next {
				if n.taken.Load() {
					continue
				}
				empty = false
				ts := n.ts.Load()
				if ts == tsPending {
					// A concurrent push: newest by definition.
					best, bestTS = n, tsPending
					break
				}
				if best == nil || ts > bestTS {
					best, bestTS = n, ts
				}
				// Only the youngest un-taken element of a pool can be the
				// pool's candidate (per-pool LIFO), so stop descending.
				break
			}
			if bestTS == tsPending {
				break
			}
		}
		if empty {
			return v, false
		}
		if best != nil && best.taken.CompareAndSwap(false, true) {
			// Opportunistically trim taken prefixes so scans stay short.
			for _, p := range pools {
				trim(p)
			}
			return best.value, true
		}
		// Lost the race; rescan.
	}
}

// trim unlinks taken nodes from the head of a pool. Only heads are
// trimmed (interior nodes unlink when they become heads), which is enough
// to keep scans amortized O(pools).
func trim[T any](p *pool[T]) {
	for {
		head := p.head.Load()
		if head == nil || !head.taken.Load() {
			return
		}
		p.head.CompareAndSwap(head, head.next)
	}
}

// Len counts un-taken elements (diagnostics; O(n)).
func (s *Stack[T]) Len() int {
	pools := *s.poolsView.Load()
	total := 0
	for _, p := range pools {
		for n := p.head.Load(); n != nil; n = n.next {
			if !n.taken.Load() {
				total++
			}
		}
	}
	return total
}

// OrdoStamp is a convenience constructor for the Ordo timestamper.
func OrdoStamp(o *core.Ordo) oplog.Timestamper { return oplog.OrdoStamp{O: o} }
