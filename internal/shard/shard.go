// Package shard implements single-writer partition lanes: the serving
// core's answer to the paper's §6.5 observation that timestamp allocation,
// not data access, is the multicore scalability wall. The keyspace is hash-
// partitioned across N lanes; each lane is one goroutine that owns one
// engine session, so every write to a partition is issued by exactly one
// writer and the engine's concurrency control never arbitrates two lanes
// racing for the same row. Connection workers hand decoded work to lanes
// through bounded SPSC rings and wait for completion, so the wire-side
// request order is preserved per connection while lanes batch across
// connections.
//
// The package is deliberately mechanism-only: a Batch carries request and
// response pointers plus a few out-parameters, and an Exec callback —
// supplied by the server — interprets them. Lanes know how to queue, park,
// publish commit timestamps, and count; they do not know what a GET is.
//
// Cross-shard ordering rides on the published commit timestamps: a lane
// publishes the commit timestamp of everything it has executed BEFORE the
// submitting worker is released (publication-before-ack), so any reader
// that snapshots the publication boards after observing an acked write is
// guaranteed to see that write's timestamp. The server's cross-shard read
// path builds on exactly that invariant (DESIGN.md §14).
package shard

import (
	"errors"
	"sync"
	"sync/atomic"

	"ordo/internal/wire"
)

// ErrClosed is returned by Submit once the lane set has shut down.
var ErrClosed = errors.New("shard: lane set closed")

// Kind classifies a batch for the Exec callback.
type Kind uint8

const (
	// Ops is a run of simple ops: Reqs[i]'s result lands in *Resps[i].
	Ops Kind = iota
	// Txn is an atomic transaction whose keys all route to this lane:
	// Reqs[0] is the TXN frame, *Resps[0] receives the batch response.
	Txn
	// TxnRead is one lane's slice of a cross-shard read-only transaction:
	// executed as a single read-only engine transaction, no WAL, and not
	// counted as a batch (the coordinator owns the transaction accounting).
	TxnRead
	// Hold parks the lane: it closes Parked, waits for Release, and only
	// then continues. The cross-shard write path uses it as a barrier —
	// while every involved lane is parked, nothing can commit into the
	// partitions a multi-key transaction spans.
	Hold
)

// Batch is one unit of work handed from a connection worker to a lane.
// Reqs and Resps are parallel: the lane writes result i through Resps[i],
// which points into the worker's response scratch, so completion hands the
// results back with no copying. The worker must not touch Reqs/Resps
// between Submit and Wait.
type Batch struct {
	Kind  Kind
	Reqs  []*wire.Request
	Resps []*wire.Response

	// Seq is the highest group-commit durability sequence the lane
	// appended for this batch (0 when nothing was logged). The worker —
	// not the lane — waits on it, so a lane never blocks on fsync.
	Seq uint64
	// WalWrites is how many acked writes ride the appended redo record;
	// the worker flips exactly these to ERR if the durability wait fails.
	WalWrites int
	// Trace is the sampled trace ID for the request this batch serves
	// (0 when unsampled). The lane stamps it on redo records and on the
	// lane/commit/wal_append spans it emits.
	Trace uint64
	// Err is the batch-level failure for kinds that fail atomically
	// (TxnRead); Ops batches always answer per-op through Resps.
	Err error
	// Panicked reports that executing this batch panicked the engine. The
	// lane recovered (it must keep serving other connections' partitions),
	// answered ERR, and replaced its session; the submitting worker tears
	// down its own connection — the same containment boundary the flat
	// design had.
	Panicked bool

	// Hold rendezvous: the lane closes Parked once it is idle at the
	// barrier, then blocks until the coordinator closes Release.
	Parked  chan struct{}
	Release chan struct{}

	// done is buffered so completion never blocks the lane; one token per
	// Submit/Wait round lets the Batch be reused run after run.
	done chan struct{}
}

// NewBatch returns a reusable batch: Submit then Wait, any number of times.
func NewBatch() *Batch { return &Batch{done: make(chan struct{}, 1)} }

// NewHold returns a one-shot barrier batch.
func NewHold() *Batch {
	return &Batch{
		Kind:    Hold,
		Parked:  make(chan struct{}),
		Release: make(chan struct{}),
		done:    make(chan struct{}, 1),
	}
}

func (b *Batch) complete() { b.done <- struct{}{} }

// Wait blocks until the lane finishes the batch. Results are in the
// response slots the worker provided; Seq/WalWrites/Err are valid after.
func (b *Batch) Wait() { <-b.done }

// Exec executes one non-Hold batch on lane `lane` and returns the engine
// commit timestamp the lane should publish (0 when nothing committed or
// the engine has no commit-timestamp notion). It runs on the lane
// goroutine, which is the single writer for the lane's session.
type Exec func(lane int, b *Batch) (publishTS uint64)

// ringSize bounds each connection→lane ring. A worker has at most one
// outstanding batch per lane (it waits out each run before popping the
// next), so a handful of slots is depth to spare; power of two so the
// index math stays mask-free with wrapping uint64 positions.
const ringSize = 8

// ring is a bounded single-producer/single-consumer queue: the owning
// connection worker pushes, the lane pops. head and tail are free-running
// positions; the atomics order the buf writes against the position
// publication, which is all SPSC needs.
type ring struct {
	buf  [ringSize]*Batch
	head atomic.Uint64 // consumer position (lane)
	tail atomic.Uint64 // producer position (conn worker)
}

func (r *ring) tryPush(b *Batch) bool {
	t := r.tail.Load()
	if t-r.head.Load() == ringSize {
		return false
	}
	r.buf[t%ringSize] = b
	r.tail.Store(t + 1)
	return true
}

func (r *ring) tryPop() *Batch {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil
	}
	b := r.buf[h%ringSize]
	r.buf[h%ringSize] = nil
	r.head.Store(h + 1)
	return b
}

func (r *ring) len() int { return int(r.tail.Load() - r.head.Load()) }

// Lane is one single-writer partition: a goroutine draining its
// subscribers' rings in round-robin order and executing each batch through
// the server's Exec callback.
type Lane struct {
	id   int
	exec Exec

	// rings is copy-on-write under mu so the drain loop can scan lock-free
	// while connections register and unregister.
	rings atomic.Pointer[[]*ring]
	rr    int // round-robin scan start, lane-goroutine-owned

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	sleeping atomic.Bool // lane is (about to be) parked on cond
	waiters  atomic.Int32

	// published is the lane's ordering board: the highest engine commit
	// timestamp this lane has made client-visible. Monotone via CAS-max,
	// advanced before the committing batch completes.
	published atomic.Uint64

	batches atomic.Uint64
	ops     atomic.Uint64
	holds   atomic.Uint64
}

// ID returns the lane's index in its Set.
func (l *Lane) ID() int { return l.id }

// Published returns the lane's current publication-board timestamp.
func (l *Lane) Published() uint64 { return l.published.Load() }

// Publish advances the publication board to ts (CAS-max; never regresses).
// The cross-shard coordinator calls it for multi-lane commits; lanes call
// it for their own.
func (l *Lane) Publish(ts uint64) {
	for {
		cur := l.published.Load()
		if ts <= cur || l.published.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// Batches returns how many batches the lane has executed.
func (l *Lane) Batches() uint64 { return l.batches.Load() }

// Ops returns how many wire requests the lane has executed.
func (l *Lane) Ops() uint64 { return l.ops.Load() }

// Holds returns how many barrier parks the lane has served.
func (l *Lane) Holds() uint64 { return l.holds.Load() }

// Queued returns the approximate number of batches waiting in the lane's
// rings — a racy read, fine for an imbalance gauge.
func (l *Lane) Queued() int {
	n := 0
	if rs := l.rings.Load(); rs != nil {
		for _, r := range *rs {
			n += r.len()
		}
	}
	return n
}

func (l *Lane) register(r *ring) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var rs []*ring
	if cur := l.rings.Load(); cur != nil {
		rs = append(rs, *cur...)
	}
	rs = append(rs, r)
	l.rings.Store(&rs)
}

func (l *Lane) unregister(r *ring) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.rings.Load()
	if cur == nil {
		return
	}
	rs := make([]*ring, 0, len(*cur))
	for _, x := range *cur {
		if x != r {
			rs = append(rs, x)
		}
	}
	l.rings.Store(&rs)
}

// wake nudges the lane if it is parked. The sleeping flag is set before
// the lane's final under-lock scan and the producer's push is an atomic
// store, so either the scan sees the new batch or this wake sees sleeping.
func (l *Lane) wake() {
	if !l.sleeping.Load() {
		return
	}
	l.mu.Lock()
	l.cond.Broadcast()
	l.mu.Unlock()
}

// scan pops the next queued batch round-robin across subscriber rings.
func (l *Lane) scan() *Batch {
	rs := l.rings.Load()
	if rs == nil || len(*rs) == 0 {
		return nil
	}
	n := len(*rs)
	for i := 0; i < n; i++ {
		if b := (*rs)[(l.rr+i)%n].tryPop(); b != nil {
			l.rr = (l.rr + i + 1) % n
			return b
		}
	}
	return nil
}

// next returns the next batch, parking the goroutine when every ring is
// empty; nil means the lane set closed and everything queued was drained.
func (l *Lane) next() *Batch {
	if b := l.scan(); b != nil {
		return b
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		l.sleeping.Store(true)
		if b := l.scan(); b != nil {
			l.sleeping.Store(false)
			return b
		}
		if l.closed {
			l.sleeping.Store(false)
			return nil
		}
		l.cond.Wait()
		l.sleeping.Store(false)
	}
}

func (l *Lane) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		b := l.next()
		if b == nil {
			return
		}
		l.serve(b)
	}
}

func (l *Lane) serve(b *Batch) {
	if b.Kind == Hold {
		l.holds.Add(1)
		close(b.Parked)
		<-b.Release
		b.complete()
		return
	}
	// Publication-before-ack: the board advances before complete() lets
	// the submitting worker write responses, so a client that has seen an
	// ack can never find the board behind its write.
	if ts := l.exec(l.id, b); ts != 0 {
		l.Publish(ts)
	}
	l.batches.Add(1)
	l.ops.Add(uint64(len(b.Reqs)))
	b.complete()
	if l.waiters.Load() > 0 {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// Set is a fixed group of lanes plus the hash router over them.
type Set struct {
	lanes []*Lane
	wg    sync.WaitGroup
}

// NewSet builds and starts n lanes (n ≥ 1) executing through exec.
func NewSet(n int, exec Exec) *Set {
	if n < 1 {
		n = 1
	}
	s := &Set{lanes: make([]*Lane, n)}
	for i := range s.lanes {
		l := &Lane{id: i, exec: exec}
		l.cond = sync.NewCond(&l.mu)
		s.lanes[i] = l
	}
	s.wg.Add(n)
	for _, l := range s.lanes {
		go l.run(&s.wg)
	}
	return s
}

// N returns the lane count.
func (s *Set) N() int { return len(s.lanes) }

// Lane returns lane i.
func (s *Set) Lane(i int) *Lane { return s.lanes[i] }

// Route maps a key to its owning lane. The mixer (splitmix64 finalizer)
// decorrelates the lane choice from low key bits, so sequential keyspaces
// spread evenly instead of striping.
func (s *Set) Route(key uint64) int {
	if len(s.lanes) == 1 {
		return 0
	}
	return int(mix(key) % uint64(len(s.lanes)))
}

// Published snapshots every lane's publication board into dst (resized as
// needed) and returns it.
func (s *Set) Published(dst []uint64) []uint64 {
	if cap(dst) < len(s.lanes) {
		dst = make([]uint64, len(s.lanes))
	}
	dst = dst[:len(s.lanes)]
	for i, l := range s.lanes {
		dst[i] = l.Published()
	}
	return dst
}

// Close stops every lane after it drains what is queued, and joins the
// goroutines. Callers must ensure no worker will Submit again (the server
// closes lanes only after every connection worker has exited).
func (s *Set) Close() {
	for _, l := range s.lanes {
		l.mu.Lock()
		l.closed = true
		l.cond.Broadcast()
		l.mu.Unlock()
	}
	s.wg.Wait()
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Ports is one connection's submission side: a dedicated SPSC ring per
// lane. Only the connection's worker goroutine may call Submit.
type Ports struct {
	set   *Set
	rings []*ring
}

// NewPorts subscribes a connection to every lane.
func (s *Set) NewPorts() *Ports {
	p := &Ports{set: s, rings: make([]*ring, len(s.lanes))}
	for i, l := range s.lanes {
		r := &ring{}
		p.rings[i] = r
		l.register(r)
	}
	return p
}

// Submit queues b on lane's ring, blocking while the ring is full. The
// caller must Wait on b before reusing it or touching its Reqs/Resps.
func (p *Ports) Submit(lane int, b *Batch) error {
	l := p.set.lanes[lane]
	r := p.rings[lane]
	if r.tryPush(b) {
		l.wake()
		return nil
	}
	l.waiters.Add(1)
	l.mu.Lock()
	for !r.tryPush(b) {
		if l.closed {
			l.mu.Unlock()
			l.waiters.Add(-1)
			return ErrClosed
		}
		l.cond.Wait()
	}
	l.mu.Unlock()
	l.waiters.Add(-1)
	l.wake()
	return nil
}

// Close unsubscribes the connection's rings. The worker must have waited
// out every submitted batch first (rings must be empty).
func (p *Ports) Close() {
	for i, r := range p.rings {
		p.set.lanes[i].unregister(r)
	}
}
