package shard

import (
	"sync"
	"sync/atomic"
	"testing"

	"ordo/internal/wire"
)

// TestRouteCoversLanesEvenly: the splitmix64 mixer must spread a sequential
// keyspace across lanes without striping or starving any lane.
func TestRouteCoversLanesEvenly(t *testing.T) {
	s := NewSet(4, func(int, *Batch) uint64 { return 0 })
	defer s.Close()
	var counts [4]int
	const keys = 4096
	for k := uint64(0); k < keys; k++ {
		ln := s.Route(k)
		if ln < 0 || ln >= 4 {
			t.Fatalf("Route(%d) = %d, out of range", k, ln)
		}
		counts[ln]++
	}
	for ln, n := range counts {
		// A fair hash puts ~1024 keys per lane; 2x skew would mean the
		// mixer is broken, not merely unlucky.
		if n < keys/8 || n > keys/2 {
			t.Fatalf("lane %d got %d of %d keys", ln, n, keys)
		}
	}
	// Determinism: routing is a pure function of the key.
	for k := uint64(0); k < 64; k++ {
		if s.Route(k) != s.Route(k) {
			t.Fatalf("Route(%d) unstable", k)
		}
	}
}

// TestSubmitWaitRoundTrip: batches execute on the right lane, results land
// in the caller's response slots, and the batch is reusable.
func TestSubmitWaitRoundTrip(t *testing.T) {
	s := NewSet(2, func(lane int, b *Batch) uint64 {
		for i := range b.Reqs {
			*b.Resps[i] = wire.Response{Status: wire.StatusOK, TS: uint64(lane + 1)}
		}
		return uint64(lane + 1)
	})
	defer s.Close()
	p := s.NewPorts()
	defer p.Close()

	b := NewBatch()
	req := wire.Request{Op: wire.OpGet, Key: 7}
	var resp wire.Response
	for round := 0; round < 3; round++ {
		b.Kind = Ops
		b.Reqs = []*wire.Request{&req}
		b.Resps = []*wire.Response{&resp}
		resp = wire.Response{}
		if err := p.Submit(1, b); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		b.Wait()
		if resp.Status != wire.StatusOK || resp.TS != 2 {
			t.Fatalf("round %d: resp = %+v", round, resp)
		}
	}
	if got := s.Lane(1).Batches(); got != 3 {
		t.Fatalf("lane 1 batches = %d, want 3", got)
	}
	if got := s.Lane(1).Published(); got != 2 {
		t.Fatalf("lane 1 published = %d, want 2", got)
	}
	if got := s.Lane(0).Batches(); got != 0 {
		t.Fatalf("lane 0 batches = %d, want 0", got)
	}
}

// TestPublicationBeforeAck: when Wait returns, the lane's board must already
// carry the commit timestamp exec returned — the invariant the cross-shard
// read stability check is built on.
func TestPublicationBeforeAck(t *testing.T) {
	var ts atomic.Uint64
	s := NewSet(1, func(_ int, b *Batch) uint64 { return ts.Add(1) })
	defer s.Close()

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := s.NewPorts()
			defer p.Close()
			b := NewBatch()
			for i := 0; i < 200; i++ {
				if err := p.Submit(0, b); err != nil {
					t.Error(err)
					return
				}
				b.Wait()
				// The board may have advanced past our batch, but it can
				// never lag a completed one.
				if got := s.Lane(0).Published(); got == 0 {
					t.Error("board empty after completed batch")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Lane(0).Batches(); got != workers*200 {
		t.Fatalf("batches = %d, want %d", got, workers*200)
	}
}

// TestPublishNeverRegresses: Publish is CAS-max.
func TestPublishNeverRegresses(t *testing.T) {
	s := NewSet(1, func(int, *Batch) uint64 { return 0 })
	defer s.Close()
	l := s.Lane(0)
	l.Publish(10)
	l.Publish(5)
	if got := l.Published(); got != 10 {
		t.Fatalf("published = %d, want 10", got)
	}
}

// TestHoldBarrier: while a lane is parked on a Hold, batches submitted
// behind the hold do not execute; they run after Release.
func TestHoldBarrier(t *testing.T) {
	var execed atomic.Int32
	s := NewSet(1, func(int, *Batch) uint64 {
		execed.Add(1)
		return 0
	})
	defer s.Close()
	p := s.NewPorts()
	defer p.Close()

	h := NewHold()
	if err := p.Submit(0, h); err != nil {
		t.Fatal(err)
	}
	<-h.Parked

	// Queue a batch behind the barrier from another subscriber.
	p2 := s.NewPorts()
	defer p2.Close()
	b := NewBatch()
	done := make(chan struct{})
	go func() {
		if err := p2.Submit(0, b); err != nil {
			t.Error(err)
		}
		b.Wait()
		close(done)
	}()

	select {
	case <-done:
		t.Fatal("batch executed while lane was parked")
	default:
	}
	if n := execed.Load(); n != 0 {
		t.Fatalf("execed = %d while parked", n)
	}
	close(h.Release)
	h.Wait()
	<-done
	if n := execed.Load(); n != 1 {
		t.Fatalf("execed = %d after release, want 1", n)
	}
	if got := s.Lane(0).Holds(); got != 1 {
		t.Fatalf("holds = %d, want 1", got)
	}
}

// TestCloseDrainsQueued: batches already queued when Close is called are
// executed, not dropped, and Submit after close reports ErrClosed.
func TestCloseDrainsQueued(t *testing.T) {
	block := make(chan struct{})
	var execed atomic.Int32
	s := NewSet(1, func(_ int, b *Batch) uint64 {
		if b.Kind == Hold {
			return 0
		}
		<-block
		execed.Add(1)
		return 0
	})
	p := s.NewPorts()

	const queued = 3
	bs := make([]*Batch, queued)
	for i := range bs {
		bs[i] = NewBatch()
		if err := p.Submit(0, bs[i]); err != nil {
			t.Fatal(err)
		}
	}
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	close(block)
	for _, b := range bs {
		b.Wait()
	}
	<-closed
	if n := execed.Load(); n != queued {
		t.Fatalf("execed = %d, want %d", n, queued)
	}
	if err := p.Submit(0, NewBatch()); err == nil {
		// The fast-path push can still land in the ring after close; only
		// the blocking path detects it. Either outcome is acceptable for
		// the server (lanes close only after all workers exit), so just
		// exercise the slow path by filling the ring.
		for i := 0; i < ringSize+1; i++ {
			if err := p.Submit(0, NewBatch()); err != nil {
				return
			}
		}
		t.Fatal("Submit never reported ErrClosed on a closed, full lane")
	}
	p.Close()
}

// TestManyProducersOneLane: concurrent workers hammering one lane through
// separate rings all complete, with per-ring FIFO preserved.
func TestManyProducersOneLane(t *testing.T) {
	type mark struct {
		worker int
		seq    int
	}
	var mu sync.Mutex
	var order []mark
	s := NewSet(1, func(_ int, b *Batch) uint64 {
		mu.Lock()
		order = append(order, mark{int(b.Reqs[0].Key >> 32), int(uint32(b.Reqs[0].Key))})
		mu.Unlock()
		return 0
	})
	defer s.Close()

	const workers, rounds = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := s.NewPorts()
			defer p.Close()
			b := NewBatch()
			req := wire.Request{}
			var resp wire.Response
			for i := 0; i < rounds; i++ {
				req.Key = uint64(w)<<32 | uint64(i)
				b.Kind = Ops
				b.Reqs = []*wire.Request{&req}
				b.Resps = []*wire.Response{&resp}
				if err := p.Submit(0, b); err != nil {
					t.Error(err)
					return
				}
				b.Wait()
			}
		}(w)
	}
	wg.Wait()
	if len(order) != workers*rounds {
		t.Fatalf("executed %d batches, want %d", len(order), workers*rounds)
	}
	last := map[int]int{}
	for _, m := range order {
		if prev, ok := last[m.worker]; ok && m.seq != prev+1 {
			t.Fatalf("worker %d: seq %d after %d (per-ring FIFO broken)", m.worker, m.seq, prev)
		}
		last[m.worker] = m.seq
	}
}
