// Package telemetry is the serving stack's metrics layer: a small,
// dependency-free registry of counters, gauges, and sharded latency
// histograms, exported in Prometheus text format (v0.0.4), plus a bounded
// ring-buffer event tracer (trace.go).
//
// The design follows the same contention philosophy as the rest of the
// repo: the hot path must never share a cache line with the scrape path.
// Counters are single atomics (cheap enough for per-op increments);
// distributions use one hist.H shard per worker, each guarded by a lock
// only its owner ever contends on, merged under the registry's view only
// when a scrape happens — the Oplog pattern applied to metrics. Gauges are
// pull-only (a func evaluated at scrape), so publishing a gauge costs
// nothing between scrapes.
//
// Counter monotonicity survives worker churn: closing a shard folds its
// counts into the parent histogram's retired accumulator, so a scrape
// after a connection dies never sees a histogram count go backwards.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ordo/internal/hist"
)

// metricKind is the Prometheus TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one exported time series: a collect function plus its rendered
// label set ("" or `op="get"` form, braces not included).
type series struct {
	labels string
	// collect appends the series' sample lines for family name to b.
	collect func(b *strings.Builder, name, labels string)
}

// family groups every series sharing one metric name under a single
// HELP/TYPE block, as the exposition format requires.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds registered metrics and renders them. Registration is
// expected at setup time (it panics on a name reused with a different
// type or help, which is a programming error); scraping is safe at any
// time and never blocks a hot-path writer for longer than one shard merge.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds one series to its family, creating the family on first
// use.
func (r *Registry) register(name, help string, kind metricKind, s *series) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as both %v and %v", name, f.kind, kind))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("telemetry: duplicate series %s{%s}", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Counter registers and returns a counter. Labels (optional) become the
// series' constant label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{
		labels: renderLabels(labels),
		collect: func(b *strings.Builder, name, lbl string) {
			sample(b, name, lbl, formatUint(c.v.Load()))
		},
	})
	return c
}

// CounterFunc registers a counter whose value is pulled from fn at scrape
// time — the bridge for counters that already live elsewhere as atomics.
// fn must be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, kindCounter, &series{
		labels: renderLabels(labels),
		collect: func(b *strings.Builder, name, lbl string) {
			sample(b, name, lbl, formatUint(fn()))
		},
	})
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float gauge (atomic float64 bits).
type Gauge struct {
	bits atomic.Uint64
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{
		labels: renderLabels(labels),
		collect: func(b *strings.Builder, name, lbl string) {
			sample(b, name, lbl, formatFloat(g.Value()))
		},
	})
	return g
}

// GaugeFunc registers a gauge whose value is pulled from fn at scrape
// time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &series{
		labels: renderLabels(labels),
		collect: func(b *strings.Builder, name, lbl string) {
			sample(b, name, lbl, formatFloat(fn()))
		},
	})
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a goroutine-safe distribution built from per-worker
// hist.H shards. Workers call NewShard once and Observe on their own
// shard — an uncontended lock each — and the scrape path merges live
// shards with the retired accumulator on demand. Scale divides exported
// bounds and sums (1e9 turns recorded nanoseconds into exported seconds,
// the Prometheus base unit); recorded values stay integral internally so
// hist.H's error bounds hold.
type Histogram struct {
	scale float64

	mu      sync.Mutex
	shards  []*HistShard
	retired hist.H

	// Exemplar state: the trace ID of the largest-valued observation that
	// carried one, so a scrape can jump from a latency spike straight to
	// its distributed trace. Guarded by its own lock — the exemplar update
	// is off the shard's uncontended fast path unless a trace rides along.
	exMu    sync.Mutex
	exVal   uint64
	exTrace uint64
}

// Histogram registers and returns a sharded histogram. scale ≤ 0 means 1
// (export raw recorded values).
func (r *Registry) Histogram(name, help string, scale float64, labels ...Label) *Histogram {
	if scale <= 0 {
		scale = 1
	}
	h := &Histogram{scale: scale}
	r.register(name, help, kindHistogram, &series{
		labels: renderLabels(labels),
		collect: func(b *strings.Builder, name, lbl string) {
			h.collect(b, name, lbl)
		},
	})
	return h
}

// HistShard is one worker's private recording buffer. Not for sharing:
// each recording goroutine takes its own and Closes it at teardown so the
// counts retire into the parent.
type HistShard struct {
	parent *Histogram
	mu     sync.Mutex
	h      hist.H
	closed bool
}

// NewShard registers a fresh shard for one worker.
func (h *Histogram) NewShard() *HistShard {
	s := &HistShard{parent: h}
	h.mu.Lock()
	h.shards = append(h.shards, s)
	h.mu.Unlock()
	return s
}

// Observe records one value into the worker's shard.
func (s *HistShard) Observe(v uint64) {
	s.mu.Lock()
	s.h.Record(v)
	s.mu.Unlock()
}

// ObserveDuration records one duration in nanoseconds.
func (s *HistShard) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.Observe(uint64(d))
}

// ObserveExemplar records one value and, when trace is nonzero, offers it
// as the family's exemplar: the largest-valued traced observation wins, so
// the exported exemplar points at the worst traced request seen.
func (s *HistShard) ObserveExemplar(v uint64, trace uint64) {
	s.Observe(v)
	if trace == 0 {
		return
	}
	p := s.parent
	p.exMu.Lock()
	if p.exTrace == 0 || v >= p.exVal {
		p.exVal, p.exTrace = v, trace
	}
	p.exMu.Unlock()
}

// Exemplar returns the current exemplar observation and its trace ID;
// trace is 0 when no traced observation has been recorded.
func (h *Histogram) Exemplar() (v uint64, trace uint64) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	return h.exVal, h.exTrace
}

// Close retires the shard: its counts merge into the parent's retired
// accumulator (so scraped totals stay monotonic across worker churn) and
// the shard drops out of the live set. Close is idempotent; Observe after
// Close still works but records into an orphan the scraper no longer sees
// — callers must stop observing first.
func (s *HistShard) Close() {
	p := s.parent
	p.mu.Lock()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		p.retired.Merge(&s.h)
		for i, live := range p.shards {
			if live == s {
				p.shards = append(p.shards[:i], p.shards[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	p.mu.Unlock()
}

// Merged returns the histogram's current total view: retired counts plus
// every live shard. The copy is independent of later observations.
func (h *Histogram) Merged() *hist.H {
	h.mu.Lock()
	out := h.retired.Snapshot()
	for _, s := range h.shards {
		s.mu.Lock()
		out.Merge(&s.h)
		s.mu.Unlock()
	}
	h.mu.Unlock()
	return out
}

// collect renders the cumulative _bucket/_sum/_count series.
func (h *Histogram) collect(b *strings.Builder, name, labels string) {
	m := h.Merged()
	for _, bk := range m.Buckets() {
		le := formatFloat(float64(bk.UpperBound) / h.scale)
		sample(b, name+"_bucket", joinLabels(labels, `le="`+le+`"`), formatUint(bk.CumCount))
	}
	sample(b, name+"_bucket", joinLabels(labels, `le="+Inf"`), formatUint(m.Count()))
	sample(b, name+"_sum", labels, formatFloat(float64(m.Sum())/h.scale))
	sample(b, name+"_count", labels, formatUint(m.Count()))
	// Exemplar as a comment line: the text exposition format has no
	// exemplar syntax, and parsers ignore non-HELP/TYPE comments, so this
	// is both human-greppable and harmless to scrapers.
	if ev, et := h.Exemplar(); et != 0 {
		b.WriteString("# EXEMPLAR ")
		b.WriteString(name)
		if labels != "" {
			b.WriteByte('{')
			b.WriteString(labels)
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(formatFloat(float64(ev) / h.scale))
		b.WriteString(` trace_id="`)
		b.WriteString(fmt.Sprintf("%016x", et))
		b.WriteString("\"\n")
	}
}

// Label is one constant name="value" pair attached to a series.
type Label struct {
	Name, Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// renderLabels renders a label set in sorted-name order, values escaped
// per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// joinLabels concatenates two rendered label fragments.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "," + b
}

// sample emits one exposition line: name{labels} value.
func sample(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// WritePrometheus renders every registered family in text exposition
// format v0.0.4: a HELP and TYPE line per family, then its series in
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Snapshot the family list under the lock, then collect without it:
	// collect functions take shard and caller locks of their own, and
	// registration during a scrape only affects the next scrape.
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range f.series {
			s.collect(&b, f.name, s.labels)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ContentType is the HTTP Content-Type of WritePrometheus output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash, quote, and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
