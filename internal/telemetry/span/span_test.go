package span

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestCompareDisjointAndOverlap pins the interval semantics: disjoint
// intervals order, touching or overlapping intervals are concurrent.
func TestCompareDisjointAndOverlap(t *testing.T) {
	cases := []struct {
		name string
		a, b Span
		want int
	}{
		{"disjoint", Span{TS: 100, Unc: 10}, Span{TS: 200, Unc: 10}, -1},
		{"disjoint reversed", Span{TS: 200, Unc: 10}, Span{TS: 100, Unc: 10}, 1},
		{"touching endpoints overlap", Span{TS: 100, Unc: 10}, Span{TS: 120, Unc: 10}, 0},
		{"nested", Span{TS: 100, Unc: 50}, Span{TS: 110, Unc: 5}, 0},
		{"identical", Span{TS: 100, Unc: 0}, Span{TS: 100, Unc: 0}, 0},
		{"zero-unc ordered", Span{TS: 100}, Span{TS: 101}, -1},
		{"unc larger than ts saturates", Span{TS: 5, Unc: 50}, Span{TS: 10, Unc: 0}, 0},
		{"huge unc saturates high", Span{TS: ^uint64(0) - 1, Unc: 100}, Span{TS: 50, Unc: 0}, 1},
	}
	for _, c := range cases {
		if got := Compare(&c.a, &c.b); got != c.want {
			t.Errorf("%s: Compare=%d, want %d", c.name, got, c.want)
		}
	}
}

// TestMergeAgreesWithSubmissionOrder is the ordering property: when
// uncertainty intervals are pairwise disjoint, the merged timeline must
// reproduce the known submission order exactly — for any shuffle of the
// input and any node assignment.
func TestMergeAgreesWithSubmissionOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		spans := make([]Span, n)
		ts := uint64(1000)
		for i := range spans {
			unc := uint64(rng.Intn(50))
			// Advance past the previous interval's end plus this one's
			// half-width so intervals stay pairwise disjoint.
			ts += unc + uint64(1+rng.Intn(100))
			spans[i] = Span{
				Trace: 7,
				Stage: Stage(i % int(nStages)),
				TS:    ts,
				Unc:   unc,
				Node:  []string{"a", "b", "c"}[rng.Intn(3)],
			}
			ts += unc
		}
		shuffled := make([]Span, n)
		copy(shuffled, spans)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		merged := Merge(shuffled)
		if len(merged) != n {
			t.Fatalf("trial %d: merged %d spans, want %d", trial, len(merged), n)
		}
		for i := range merged {
			if merged[i].TS != spans[i].TS || merged[i].Stage != spans[i].Stage {
				t.Fatalf("trial %d: position %d got (ts=%d stage=%v), want (ts=%d stage=%v)",
					trial, i, merged[i].TS, merged[i].Stage, spans[i].TS, spans[i].Stage)
			}
			if merged[i].Concurrent {
				t.Fatalf("trial %d: position %d flagged concurrent with disjoint intervals", trial, i)
			}
		}
	}
}

// TestMergeFlagsOverlapConcurrent is the honesty property: overlapping
// intervals must be reported concurrent — the merger never claims an
// order between them, whichever way it happens to render them.
func TestMergeFlagsOverlapConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		spans := make([]Span, n)
		for i := range spans {
			// Wide intervals around a common point: every pair overlaps.
			spans[i] = Span{
				Trace: 9,
				Stage: Stage(rng.Intn(int(nStages))),
				TS:    10_000 + uint64(rng.Intn(200)),
				Unc:   500 + uint64(rng.Intn(100)),
				Node:  []string{"x", "y"}[rng.Intn(2)],
			}
		}
		merged := Merge(spans)
		for i := 1; i < len(merged); i++ {
			if !merged[i].Concurrent {
				t.Fatalf("trial %d: adjacency %d not flagged concurrent despite overlap:\n prev %+v\n cur  %+v",
					trial, i, merged[i-1].Span, merged[i].Span)
			}
		}
	}
}

// TestMergeMixed checks the boundary between the two properties: a chain
// of disjoint groups with internal overlap orders the groups and flags
// only the intra-group adjacencies.
func TestMergeMixed(t *testing.T) {
	spans := []Span{
		{TS: 5000, Unc: 10, Stage: StageApply, Node: "f"},  // group 2
		{TS: 1000, Unc: 10, Stage: StageDecode, Node: "l"}, // group 1
		{TS: 4990, Unc: 10, Stage: StageShip, Node: "l"},   // group 2 (overlaps apply)
		{TS: 1015, Unc: 10, Stage: StageQueue, Node: "l"},  // group 1 (overlaps decode)
	}
	merged := Merge(spans)
	wantStages := []Stage{StageDecode, StageQueue, StageShip, StageApply}
	wantConc := []bool{false, true, false, true}
	for i := range merged {
		if merged[i].Stage != wantStages[i] || merged[i].Concurrent != wantConc[i] {
			t.Fatalf("position %d: got (stage=%v concurrent=%v), want (stage=%v concurrent=%v)",
				i, merged[i].Stage, merged[i].Concurrent, wantStages[i], wantConc[i])
		}
	}
}

// TestSamplerRate sanity-checks the head-sampling threshold and that
// minted IDs are nonzero and distinct.
func TestSamplerRate(t *testing.T) {
	s := NewSampler(0, 1)
	for i := 0; i < 1000; i++ {
		if _, ok := s.Sample(); ok {
			t.Fatal("rate 0 sampled")
		}
	}
	s = NewSampler(1, 2)
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id, ok := s.Sample()
		if !ok || id == 0 {
			t.Fatal("rate 1 must always sample with a nonzero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %v", id)
		}
		seen[id] = true
	}
	s = NewSampler(0.01, 3)
	hits := 0
	for i := 0; i < 100_000; i++ {
		if _, ok := s.Sample(); ok {
			hits++
		}
	}
	if hits < 500 || hits > 2000 {
		t.Fatalf("1%% sampling hit %d/100000, want ~1000", hits)
	}
}

// TestRingWrapAndDump checks the bounded ring: overflow drops oldest,
// Dump reports totals and honors trace/limit filters.
func TestRingWrapAndDump(t *testing.T) {
	epoch := uint64(3)
	r := NewRing(RingConfig{Node: "n1", Size: 4, Epoch: func() uint64 { return epoch }})
	for i := 1; i <= 6; i++ {
		r.Record(Span{Trace: TraceID(i), Stage: StageAck, TS: uint64(i * 100), Lane: -1})
	}
	spans := r.Spans()
	if len(spans) != 4 || spans[0].Trace != 3 || spans[3].Trace != 6 {
		t.Fatalf("ring contents wrong: %+v", spans)
	}
	for _, sp := range spans {
		if sp.Node != "n1" || sp.Epoch != 3 {
			t.Fatalf("span not stamped: %+v", sp)
		}
	}
	d := r.Dump(0, 0)
	if d.Total != 6 || d.Dropped != 2 || d.Node != "n1" {
		t.Fatalf("dump totals wrong: %+v", d)
	}
	d = r.Dump(TraceID(5), 0)
	if len(d.Spans) != 1 || d.Spans[0].Trace != 5 {
		t.Fatalf("trace filter wrong: %+v", d.Spans)
	}
	d = r.Dump(0, 2)
	if len(d.Spans) != 2 || d.Spans[0].Trace != 5 {
		t.Fatalf("limit filter wrong: %+v", d.Spans)
	}
}

// TestNilRingSafe: every Ring method must be a no-op on nil, since the
// serve path compiles span capture in unconditionally.
func TestNilRingSafe(t *testing.T) {
	var r *Ring
	r.Record(Span{Trace: 1})
	r.RecordAll([]Span{{Trace: 1}})
	if got := r.Spans(); got != nil {
		t.Fatalf("nil ring Spans = %v", got)
	}
	if ts, unc := r.Now(); ts != 0 || unc != 0 {
		t.Fatal("nil ring Now must be zero")
	}
	if r.ConvTicks(5) != 0 || r.Node() != "" {
		t.Fatal("nil ring accessors must be zero")
	}
}

// TestJSONRoundTrip: the /spans document round-trips, with trace IDs as
// hex strings and stages as names.
func TestJSONRoundTrip(t *testing.T) {
	r := NewRing(RingConfig{Node: "l", Size: 8})
	r.Record(Span{Trace: 0xdeadbeefcafe, Stage: StageFsync, TS: 123, Unc: 4, Dur: 9, Lane: 2})
	b, err := r.DumpJSON(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) != 1 {
		t.Fatalf("got %d spans", len(d.Spans))
	}
	sp := d.Spans[0]
	if sp.Trace != 0xdeadbeefcafe || sp.Stage != StageFsync || sp.TS != 123 ||
		sp.Unc != 4 || sp.Dur != 9 || sp.Lane != 2 || sp.Node != "l" {
		t.Fatalf("round-trip mismatch: %+v", sp)
	}
	if want := `"0000deadbeefcafe"`; !json.Valid(b) || !containsStr(string(b), want) {
		t.Fatalf("trace not rendered as hex string: %s", b)
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestRecordZeroAlloc gates the capture path itself: recording into the
// ring must not allocate — the serve path publishes worker scratch here.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRing(RingConfig{Node: "n", Size: 64, Epoch: func() uint64 { return 1 }})
	scratch := make([]Span, 6)
	for i := range scratch {
		scratch[i] = Span{Trace: 42, Stage: Stage(i), TS: uint64(i), Lane: -1}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.RecordAll(scratch)
	})
	if allocs != 0 {
		t.Fatalf("RecordAll: %v allocs/op, want 0", allocs)
	}
	s := NewSampler(0.5, 7)
	allocs = testing.AllocsPerRun(1000, func() {
		s.Sample()
	})
	if allocs != 0 {
		t.Fatalf("Sample: %v allocs/op, want 0", allocs)
	}
}
