// Package span is request-scoped distributed tracing ordered by the Ordo
// primitive itself. A sampled request carries a 64-bit trace ID through
// every write-path stage — decode, queue wait, lane execute, engine
// commit, WAL append, group-commit fsync, replication ship, follower
// apply, ack — and each stage point is stamped with an Ordo-derived
// timestamp *interval* `(ts_ns, unc_ns)` plus the node and fencing epoch
// that produced it.
//
// The interval is the whole point. Two spans from different nodes (or
// different cores) are totally ordered exactly when their uncertainty
// intervals do not overlap: a ends before b begins means a happened
// before b under any clock assignment consistent with the measured
// boundaries. When the intervals overlap the spans are *concurrent* —
// the merger reports that, and never invents an order, mirroring how
// the paper's cmp_time refuses to order timestamps inside the
// uncertainty window.
//
// Recording is allocation-free: spans accumulate in caller-owned scratch
// and publish into a fixed-size per-node Ring, so the sampling-off serve
// path stays zero-alloc (gate-tested in internal/server).
package span

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Stage identifies one write-path stage point.
type Stage uint8

const (
	// StageDecode is request decode into the worker arena.
	StageDecode Stage = iota
	// StageQueue is the time a request spent in the connection's pending
	// queue before a worker picked its run up.
	StageQueue
	// StageLane is a shard lane executing the batch (Lane holds the id).
	StageLane
	// StageCommit is the engine commit; TS is the commit timestamp when
	// the node can convert engine ticks to nanoseconds.
	StageCommit
	// StageWALAppend is the redo record landing in a WAL append buffer.
	StageWALAppend
	// StageFsync is the group-commit flush that made the record durable.
	StageFsync
	// StageShip is the leader handing the record to a replication
	// subscriber.
	StageShip
	// StageApply is a follower applying the shipped record to its engine.
	StageApply
	// StageAck is the worker releasing the client response.
	StageAck

	nStages
)

var stageNames = [nStages]string{
	"decode", "queue", "lane", "commit", "wal_append",
	"fsync", "ship", "apply", "ack",
}

// StageNames lists every stage name in pipeline order, for breakdown
// tables that want a stable row order.
func StageNames() []string {
	out := make([]string, nStages)
	copy(out, stageNames[:])
	return out
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage(" + strconv.Itoa(int(s)) + ")"
}

// ParseStage maps a stage name back to its Stage.
func ParseStage(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// MarshalJSON renders the stage as its name.
func (s Stage) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, s.String()), nil
}

// UnmarshalJSON parses a stage name.
func (s *Stage) UnmarshalJSON(b []byte) error {
	name, err := strconv.Unquote(string(b))
	if err != nil {
		return err
	}
	st, ok := ParseStage(name)
	if !ok {
		return fmt.Errorf("span: unknown stage %q", name)
	}
	*s = st
	return nil
}

// TraceID is a 64-bit trace identifier, rendered as 16 hex digits in
// JSON so consumers never round it through a float.
type TraceID uint64

func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// MarshalJSON renders the ID as a quoted hex string.
func (t TraceID) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, t.String()), nil
}

// UnmarshalJSON parses the quoted hex form.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return err
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return err
	}
	*t = TraceID(v)
	return nil
}

// Span is one stage point of one traced request.
type Span struct {
	Trace TraceID `json:"trace"`
	Stage Stage   `json:"stage"`
	// TS is the stage's Ordo-derived timestamp in nanoseconds; Unc is the
	// clock's uncertainty half-width at that moment. The interval
	// [TS-Unc, TS+Unc] is what the merger compares.
	TS  uint64 `json:"ts_ns"`
	Unc uint64 `json:"unc_ns"`
	// Dur is how long the stage took, when the stage has an extent.
	Dur uint64 `json:"dur_ns"`
	// Node and Epoch identify who stamped the span; the Ring fills them.
	Node  string `json:"node,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
	// Lane is the shard lane for lane-scoped stages, -1 otherwise.
	Lane int32 `json:"lane"`
}

// Clock reports a timestamp and the clock's uncertainty half-width, both
// in nanoseconds. Ordo-backed servers derive it from GetTime/Boundary;
// WallClock is the logical-clock fallback.
type Clock func() (nowNS, uncNS uint64)

// WallClock is the fallback Clock: the OS wall clock with zero claimed
// uncertainty. Sound for ordering only within one timebase (one host).
func WallClock() (uint64, uint64) {
	return uint64(time.Now().UnixNano()), 0
}

// interval endpoints, saturating so a huge uncertainty never wraps.
func intervalLo(s *Span) uint64 {
	if s.Unc > s.TS {
		return 0
	}
	return s.TS - s.Unc
}

func intervalHi(s *Span) uint64 {
	h := s.TS + s.Unc
	if h < s.TS {
		return ^uint64(0)
	}
	return h
}

// Compare orders two spans by their Ordo intervals: -1 when a certainly
// precedes b (a's interval ends before b's begins), +1 for the reverse,
// and 0 when the intervals overlap — the spans are concurrent and no
// order may be claimed. This is cmp_time lifted to cross-node spans:
// disjoint intervals are ordered under every clock assignment consistent
// with the measured uncertainty, overlapping ones under none in
// particular.
func Compare(a, b *Span) int {
	switch {
	case intervalHi(a) < intervalLo(b):
		return -1
	case intervalHi(b) < intervalLo(a):
		return 1
	}
	return 0
}

// MergedSpan is one entry of a causally merged timeline.
type MergedSpan struct {
	Span
	// Concurrent reports that this span's interval overlaps the previous
	// merged span's: the rendered adjacency is presentation order, not a
	// causal claim.
	Concurrent bool `json:"concurrent,omitempty"`
}

// Merge builds one trace's merged timeline from spans collected across
// nodes: sorted by interval midpoint (ties broken deterministically by
// stage pipeline order, then node), with every adjacency whose intervals
// overlap flagged Concurrent. Spans with disjoint intervals appear in
// their true causal order; overlapping ones are flagged, never silently
// sequenced.
func Merge(spans []Span) []MergedSpan {
	out := make([]MergedSpan, len(spans))
	for i, s := range spans {
		out[i] = MergedSpan{Span: s}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i].Span, &out[j].Span
		if c := Compare(a, b); c != 0 {
			return c < 0
		}
		// Overlapping intervals: a deterministic presentation order so
		// repeated merges render identically. Pipeline stage order is the
		// natural reading order for one request's spans.
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Node < b.Node
	})
	for i := 1; i < len(out); i++ {
		if Compare(&out[i-1].Span, &out[i].Span) == 0 {
			out[i].Concurrent = true
		}
	}
	return out
}

// Sampler makes head-based sampling decisions and mints trace IDs from a
// splitmix64 stream. The zero value never samples and cannot mint IDs;
// build one with NewSampler. Not goroutine-safe — each connection worker
// owns its own.
type Sampler struct {
	state     uint64
	threshold uint64
	always    bool
}

// NewSampler returns a sampler that samples each request with the given
// probability (clamped to [0,1]). seed differentiates workers so their
// decisions and IDs do not correlate.
func NewSampler(rate float64, seed uint64) Sampler {
	s := Sampler{state: seed ^ 0x9e3779b97f4a7c15}
	switch {
	case rate >= 1:
		s.always = true
	case rate > 0:
		s.threshold = uint64(rate * float64(1<<63) * 2)
	}
	return s
}

// next advances the splitmix64 stream.
func (s *Sampler) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sample decides one request: a fresh nonzero trace ID and true when the
// request is sampled, zero and false otherwise.
func (s *Sampler) Sample() (TraceID, bool) {
	if !s.always {
		if s.threshold == 0 || s.next() >= s.threshold {
			return 0, false
		}
	}
	return s.ForceID(), true
}

// ForceID mints a nonzero trace ID regardless of the sampling rate — the
// forced-sampling path (slow ops, ERR/UNCERTAIN outcomes, cross-shard
// transactions).
func (s *Sampler) ForceID() TraceID {
	for {
		if id := s.next(); id != 0 {
			return TraceID(id)
		}
	}
}

// DefaultRingSpans is the default Ring capacity.
const DefaultRingSpans = 4096

// RingConfig parameterizes a Ring.
type RingConfig struct {
	// Node names this ring's process in every span it stamps (typically
	// the serving address).
	Node string
	// Size is the span capacity; DefaultRingSpans when zero or negative.
	Size int
	// Clock stamps spans recorded without an explicit timestamp and
	// answers Now; WallClock when nil.
	Clock Clock
	// Epoch reports the node's fencing epoch at record time. Optional.
	Epoch func() uint64
	// ConvTicks converts an engine commit timestamp (Ordo ticks) to the
	// Clock's nanosecond scale, so commit spans sit at the commit
	// timestamp itself. Optional; zero return means "unavailable".
	ConvTicks func(ticks uint64) uint64
}

// Ring is one node's bounded span buffer. All methods are nil-safe so
// span capture can be compiled into the serve path and gated on a single
// pointer. Concurrent recorders are serialized by one mutex — only
// sampled runs ever reach it.
type Ring struct {
	node  string
	clock Clock
	epoch func() uint64
	conv  func(uint64) uint64

	mu   sync.Mutex
	buf  []Span
	next uint64 // total spans ever recorded; buf[next%len] is the oldest slot
}

// NewRing builds a Ring.
func NewRing(cfg RingConfig) *Ring {
	if cfg.Size <= 0 {
		cfg.Size = DefaultRingSpans
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock
	}
	return &Ring{
		node:  cfg.Node,
		clock: cfg.Clock,
		epoch: cfg.Epoch,
		conv:  cfg.ConvTicks,
		buf:   make([]Span, cfg.Size),
	}
}

// Node returns the ring's node name ("" on a nil ring).
func (r *Ring) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// Now reads the ring's clock: (timestamp, uncertainty) in nanoseconds.
// (0, 0) on a nil ring.
func (r *Ring) Now() (uint64, uint64) {
	if r == nil {
		return 0, 0
	}
	return r.clock()
}

// ConvTicks converts engine ticks to the ring clock's nanosecond scale;
// 0 when no converter is configured (callers fall back to Now).
func (r *Ring) ConvTicks(ticks uint64) uint64 {
	if r == nil || r.conv == nil {
		return 0
	}
	return r.conv(ticks)
}

// stamp fills the ring-owned span fields.
func (r *Ring) stamp(sp *Span) {
	sp.Node = r.node
	if r.epoch != nil {
		sp.Epoch = r.epoch()
	}
}

// Record appends one span, stamping Node and Epoch. No-op on nil.
func (r *Ring) Record(sp Span) {
	if r == nil {
		return
	}
	r.stamp(&sp)
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = sp
	r.next++
	r.mu.Unlock()
}

// RecordAll appends a batch of spans under one lock acquisition — the
// end-of-run publish of a worker's span scratch. No-op on nil.
func (r *Ring) RecordAll(sps []Span) {
	if r == nil || len(sps) == 0 {
		return
	}
	r.mu.Lock()
	for i := range sps {
		sp := sps[i]
		r.stamp(&sp)
		r.buf[r.next%uint64(len(r.buf))] = sp
		r.next++
	}
	r.mu.Unlock()
}

// Spans returns the buffered spans, oldest first.
func (r *Ring) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := uint64(len(r.buf))
	n := r.next
	if n > size {
		n = size
	}
	out := make([]Span, 0, n)
	start := r.next - n
	for i := uint64(0); i < n; i++ {
		out = append(out, r.buf[(start+i)%size])
	}
	return out
}

// Dump is the /spans document: the node's identity, its clock's view of
// now (so scrapers can relate span timestamps to their own), and the
// buffered spans oldest-first.
type Dump struct {
	Node    string `json:"node"`
	NowNS   uint64 `json:"now_ns"`
	UncNS   uint64 `json:"unc_ns"`
	Total   uint64 `json:"total"`
	Dropped uint64 `json:"dropped"`
	Spans   []Span `json:"spans"`
}

// Dump snapshots the ring, keeping only spans that pass the filters:
// trace (0 = all) and limit (<=0 = all; otherwise the newest limit).
func (r *Ring) Dump(trace TraceID, limit int) Dump {
	spans := r.Spans()
	if trace != 0 {
		kept := spans[:0]
		for _, sp := range spans {
			if sp.Trace == trace {
				kept = append(kept, sp)
			}
		}
		spans = kept
	}
	if limit > 0 && len(spans) > limit {
		spans = spans[len(spans)-limit:]
	}
	d := Dump{Node: r.Node(), Spans: spans}
	d.NowNS, d.UncNS = r.Now()
	if r != nil {
		r.mu.Lock()
		d.Total = r.next
		if d.Total > uint64(len(r.buf)) {
			d.Dropped = d.Total - uint64(len(r.buf))
		}
		r.mu.Unlock()
	}
	return d
}

// DumpJSON renders Dump as indented JSON.
func (r *Ring) DumpJSON(trace TraceID, limit int) ([]byte, error) {
	d := r.Dump(trace, limit)
	return json.MarshalIndent(&d, "", "  ")
}
