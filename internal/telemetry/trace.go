package telemetry

import (
	"encoding/json"
	"sync"
	"time"
)

// Event is one traced occurrence: a slow op, a WAL flush or fsync, a
// device error, a monitor recalibration, an eviction, a contained panic.
// Kind is a stable small vocabulary so dumps are greppable; Detail is
// free-form context.
type Event struct {
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	DurNS  int64     `json:"dur_ns,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Tracer is a bounded ring buffer of Events: recording is O(1) under one
// short lock, old events are overwritten, and the whole ring dumps as
// JSON for the admin /trace endpoint. A nil *Tracer is valid and records
// nothing, so instrumented code paths need no nil checks.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	next  int    // slot the next event lands in
	total uint64 // events ever recorded
}

// DefaultTraceEvents is the ring capacity NewTracer uses for size ≤ 0.
const DefaultTraceEvents = 1024

// NewTracer returns a tracer retaining the newest size events.
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = DefaultTraceEvents
	}
	return &Tracer{ring: make([]Event, size)}
}

// Record adds one event with the current time. dur ≤ 0 means the event
// has no duration (omitted from the dump).
func (t *Tracer) Record(kind, detail string, dur time.Duration) {
	if t == nil {
		return
	}
	ev := Event{Time: time.Now(), Kind: kind, Detail: detail}
	if dur > 0 {
		ev.DurNS = int64(dur)
	}
	t.mu.Lock()
	t.ring[t.next] = ev
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := int(t.total)
	if uint64(len(t.ring)) < t.total {
		n = len(t.ring)
	}
	out := make([]Event, 0, n)
	start := t.next - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Dump is the JSON document /trace serves: total recorded, how many the
// ring has dropped, the retained events oldest-first, and NowNS — the
// tracer's clock at dump time, which a poller passes back as since_ns to
// receive only events recorded after its previous dump.
type Dump struct {
	Total   uint64  `json:"total_events"`
	Dropped uint64  `json:"dropped_events"`
	NowNS   int64   `json:"now_ns"`
	Events  []Event `json:"events"`
}

// DumpJSON marshals the tracer's current state. A nil tracer dumps an
// empty document.
func (t *Tracer) DumpJSON() ([]byte, error) {
	return t.FilteredDumpJSON("", 0, 0)
}

// FilteredDumpJSON is DumpJSON with server-side filters: kind keeps only
// events of that kind ("" keeps all), sinceNS keeps only events recorded
// strictly after that UnixNano cursor (0 keeps all), and limit keeps only
// the newest limit survivors (<= 0 keeps all). Total/Dropped still
// describe the whole ring, so a poller can tell filtering from overflow.
func (t *Tracer) FilteredDumpJSON(kind string, sinceNS int64, limit int) ([]byte, error) {
	d := Dump{Events: []Event{}, NowNS: time.Now().UnixNano()}
	if t != nil {
		evs := t.Events()
		kept := evs[:0]
		for _, ev := range evs {
			if kind != "" && ev.Kind != kind {
				continue
			}
			if sinceNS != 0 && ev.Time.UnixNano() <= sinceNS {
				continue
			}
			kept = append(kept, ev)
		}
		if limit > 0 && len(kept) > limit {
			kept = kept[len(kept)-limit:]
		}
		d.Events = kept
		t.mu.Lock()
		d.Total = t.total
		nRing := uint64(len(t.ring))
		t.mu.Unlock()
		if d.Total > nRing {
			d.Dropped = d.Total - nRing
		}
	}
	return json.MarshalIndent(d, "", "  ")
}
