package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// parseExposition is a strict-enough text-format parser for tests: it
// checks HELP/TYPE ordering, sample line shape, and returns samples as
// name{labels} → value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	var lastFamily string
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
			lastFamily = parts[0]
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			if parts[0] != lastFamily {
				t.Fatalf("line %d: TYPE %s does not follow its HELP (%s)", i+1, parts[0], lastFamily)
			}
			if _, dup := typed[parts[0]]; dup {
				t.Fatalf("line %d: family %s typed twice", i+1, parts[0])
			}
			typed[parts[0]] = parts[1]
		default:
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("line %d: malformed sample: %q", i+1, line)
			}
			key, valStr := line[:sp], line[sp+1:]
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", i+1, valStr, err)
			}
			name := key
			if b := strings.IndexByte(key, '{'); b >= 0 {
				if !strings.HasSuffix(key, "}") {
					t.Fatalf("line %d: unterminated labels: %q", i+1, line)
				}
				name = key[:b]
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
				"_bucket"), "_sum"), "_count")
			if _, ok := typed[base]; !ok {
				if _, ok := typed[name]; !ok {
					t.Fatalf("line %d: sample %s has no TYPE", i+1, name)
				}
			}
			if _, dup := samples[key]; dup {
				t.Fatalf("line %d: duplicate sample %s", i+1, key)
			}
			samples[key] = v
		}
	}
	return samples
}

func scrape(t *testing.T, r *Registry) map[string]float64 {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, b.String())
}

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops served", L("op", "get"))
	c2 := r.Counter("test_ops_total", "ops served", L("op", "put"))
	r.CounterFunc("test_pull_total", "pulled counter", func() uint64 { return 42 })
	g := r.Gauge("test_depth", "queue depth")
	r.GaugeFunc("test_boundary_ns", "boundary", func() float64 { return 212.5 })

	c.Add(3)
	c2.Inc()
	g.Set(-7.5)

	s := scrape(t, r)
	for key, want := range map[string]float64{
		`test_ops_total{op="get"}`: 3,
		`test_ops_total{op="put"}`: 1,
		"test_pull_total":          42,
		"test_depth":               -7.5,
		"test_boundary_ns":         212.5,
	} {
		if got := s[key]; got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "op latency", 1e9, L("op", "get"))
	sh := h.NewShard()
	for _, ns := range []uint64{1000, 1000, 2_000_000, 3_000_000_000} {
		sh.Observe(ns)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	s := parseExposition(t, text)

	if got := s[`test_latency_seconds_count{op="get"}`]; got != 4 {
		t.Fatalf("count = %v, want 4", got)
	}
	wantSum := (1000.0 + 1000 + 2e6 + 3e9) / 1e9
	if got := s[`test_latency_seconds_sum{op="get"}`]; got < wantSum*0.999 || got > wantSum*1.001 {
		t.Fatalf("sum = %v, want ~%v", got, wantSum)
	}

	// Bucket series: cumulative, le ascending, +Inf last and equal to count.
	type bk struct {
		le  float64
		cum float64
	}
	var bks []bk
	inf := -1.0
	for key, v := range s {
		if !strings.HasPrefix(key, "test_latency_seconds_bucket{") {
			continue
		}
		leStr := key[strings.Index(key, `le="`)+4:]
		leStr = leStr[:strings.IndexByte(leStr, '"')]
		if leStr == "+Inf" {
			inf = v
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("bad le %q: %v", leStr, err)
		}
		bks = append(bks, bk{le, v})
	}
	if inf != 4 {
		t.Fatalf("+Inf bucket = %v, want 4", inf)
	}
	sort.Slice(bks, func(i, j int) bool { return bks[i].le < bks[j].le })
	prev := 0.0
	for _, b := range bks {
		if b.cum < prev {
			t.Fatalf("bucket counts not cumulative: %v after %v", b.cum, prev)
		}
		prev = b.cum
	}
	if prev != 4 {
		t.Fatalf("last finite bucket = %v, want 4 (max value must be covered)", prev)
	}
	// The two 1µs samples must be counted at or below a ~1µs bound.
	found := false
	for _, b := range bks {
		if b.le <= 2e-6 && b.cum >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("1µs samples not visible in low buckets: %v", bks)
	}
}

// TestShardRetirement checks counter monotonicity across worker churn:
// counts recorded by a shard survive its Close.
func TestShardRetirement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_churn_seconds", "latency", 1e9)
	for i := 0; i < 10; i++ {
		sh := h.NewShard()
		sh.Observe(uint64(i + 1))
		sh.Close()
		sh.Close() // idempotent
	}
	live := h.NewShard()
	live.Observe(100)
	m := h.Merged()
	if m.Count() != 11 {
		t.Fatalf("merged count %d, want 11 (retired counts lost?)", m.Count())
	}
	s := scrape(t, r)
	if got := s["test_churn_seconds_count"]; got != 11 {
		t.Fatalf("scraped count %v, want 11", got)
	}
}

// TestScrapeUnderConcurrentObserve hammers shards from many goroutines
// while scraping; run under -race this is the contention-correctness test
// for the merge-at-scrape design.
func TestScrapeUnderConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "latency", 1e9)
	c := r.Counter("test_conc_total", "ops")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sh := h.NewShard()
				for j := 0; j < 100; j++ {
					sh.Observe(uint64(w*1000 + j))
					c.Inc()
				}
				sh.Close()
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	var last float64
	for time.Now().Before(deadline) {
		s := scrape(t, r)
		cnt := s["test_conc_seconds_count"]
		if cnt < last {
			t.Fatalf("histogram count went backwards: %v after %v", cnt, last)
		}
		last = cnt
	}
	close(stop)
	wg.Wait()
	final := scrape(t, r)
	if got, want := final["test_conc_seconds_count"], final["test_conc_total"]; got != want {
		t.Fatalf("final histogram count %v != counter %v", got, want)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	for name, f := range map[string]func(){
		"same series":   func() { r.Counter("dup_total", "x") },
		"kind mismatch": func() { r.Gauge("dup_total", "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
	// Same family, fresh labels: allowed.
	r.Counter("dup_total", "x", L("op", "get"))
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record("slow_op", fmt.Sprintf("op %d", i), time.Duration(i)*time.Millisecond)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("op %d", 6+i); ev.Detail != want {
			t.Fatalf("event %d = %q, want %q (oldest-first, newest kept)", i, ev.Detail, want)
		}
	}
	buf, err := tr.DumpJSON()
	if err != nil {
		t.Fatal(err)
	}
	dump := string(buf)
	for _, want := range []string{`"total_events": 10`, `"dropped_events": 6`, `"slow_op"`, `"op 9"`} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}

	// A nil tracer records nothing and dumps an empty document.
	var nilTr *Tracer
	nilTr.Record("x", "y", 0)
	if evs := nilTr.Events(); evs != nil {
		t.Fatalf("nil tracer returned events: %v", evs)
	}
	if _, err := nilTr.DumpJSON(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(100)
	tr.Record("eviction", "idle", 0)
	tr.Record("panic", "boom", 0)
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Kind != "eviction" || evs[1].Kind != "panic" {
		t.Fatalf("partial ring: %+v", evs)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("esc_total", "with \"quotes\" and \\slashes\\\nnewline",
		func() uint64 { return 1 }, L("k", "a\"b\\c\nd"))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `k="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", text)
	}
	// HELP must escape the newline: a raw newline there would corrupt the
	// line-oriented format.
	if strings.Contains(text, "\nnewline") {
		t.Fatalf("HELP newline not escaped:\n%s", text)
	}
}
