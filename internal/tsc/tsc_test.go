package tsc

import (
	"testing"
	"time"
)

func TestReadMonotonicOnSingleThread(t *testing.T) {
	prev := Read()
	for i := 0; i < 100000; i++ {
		cur := Read()
		if cur < prev {
			t.Fatalf("counter went backwards on one thread: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

func TestReadAdvances(t *testing.T) {
	c0 := Read()
	time.Sleep(time.Millisecond)
	c1 := Read()
	if c1 <= c0 {
		t.Fatalf("counter did not advance across 1ms sleep: %d -> %d", c0, c1)
	}
}

func TestFrequencyPlausible(t *testing.T) {
	f := Frequency()
	// Anything between 1 MHz and 10 GHz is plausible for a TSC or a
	// nanosecond fallback clock.
	if f < 1e6 || f > 1e10 {
		t.Fatalf("implausible counter frequency: %d Hz", f)
	}
}

func TestToFromDurationRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{0, time.Nanosecond, time.Microsecond, time.Millisecond, time.Second, 3 * time.Second} {
		ticks := FromDuration(d)
		back := ToDuration(ticks)
		// Allow 1% relative error plus 2ns absolute from integer rounding.
		diff := back - d
		if diff < 0 {
			diff = -diff
		}
		if diff > d/100+2 {
			t.Errorf("round trip %v -> %d ticks -> %v (diff %v)", d, ticks, back, diff)
		}
	}
}

func TestToDurationMeasuresRealTime(t *testing.T) {
	c0 := Read()
	time.Sleep(20 * time.Millisecond)
	c1 := Read()
	el := ToDuration(c1 - c0)
	if el < 10*time.Millisecond || el > 500*time.Millisecond {
		t.Fatalf("20ms sleep measured as %v via counter", el)
	}
}

func BenchmarkRead(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Read()
	}
	_ = sink
}
