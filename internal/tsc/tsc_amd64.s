//go:build amd64

#include "textflag.h"

// func rdtscp() uint64
TEXT ·rdtscp(SB), NOSPLIT, $0-8
	RDTSCP
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET

// func rdtscFenced() uint64
TEXT ·rdtscFenced(SB), NOSPLIT, $0-8
	LFENCE
	RDTSC
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET

// func hasRDTSCP() bool
TEXT ·hasRDTSCP(SB), NOSPLIT, $0-1
	MOVL $0x80000000, AX
	CPUID
	CMPL AX, $0x80000001
	JB   no
	MOVL $0x80000001, AX
	CPUID
	BTL  $27, DX
	JNC  no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET
