// Package tsc provides access to the hardware timestamp counter.
//
// On amd64 it issues RDTSCP (or LFENCE;RDTSC when RDTSCP is unavailable),
// which reads the processor's invariant time-stamp counter: a counter that
// modern x86 parts guarantee increases at a constant rate regardless of
// frequency scaling and sleep states. On other architectures it falls back
// to the runtime's monotonic clock expressed in nanoseconds, which is also
// invariant but carries vDSO overhead.
//
// The counter value is NOT guaranteed to be synchronized across cores or
// sockets — that is the entire premise of the Ordo primitive built on top
// of this package (see internal/core).
package tsc

import (
	"sync"
	"time"
)

// Read returns the current value of the invariant hardware counter.
//
// The read is ordered: earlier loads complete before the counter is read,
// so a value written by another core and observed by this one was produced
// before Read returns. Values from different cores may only be compared
// using a calibrated uncertainty window (see internal/core).
func Read() uint64 { return readCounter() }

// Frequency returns the counter frequency in ticks per second, measured
// once by comparing the counter against the OS monotonic clock over a
// short interval. The result is cached.
func Frequency() uint64 {
	freqOnce.Do(measureFrequency)
	return freq
}

// ToDuration converts a tick delta to a time.Duration using the measured
// frequency.
func ToDuration(ticks uint64) time.Duration {
	f := Frequency()
	if f == 0 {
		return 0
	}
	// Split to avoid overflow for large tick counts.
	sec := ticks / f
	rem := ticks % f
	return time.Duration(sec)*time.Second + time.Duration(rem*uint64(time.Second)/f)
}

// FromDuration converts a duration to counter ticks.
func FromDuration(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	f := Frequency()
	return uint64(d) * f / uint64(time.Second)
}

// Supported reports whether a true hardware cycle counter backs Read on
// this platform (as opposed to the monotonic-clock fallback).
func Supported() bool { return counterIsHardware }

var (
	freqOnce sync.Once
	freq     uint64
)

func measureFrequency() {
	// Three short windows; keep the one with the shortest elapsed time.
	// Elapsed beyond the 2ms target is overshoot — preemption or a slow
	// time.Since path inside the window — so the shortest window carries
	// the smallest wall-clock error. The loop's own final time.Since
	// reading is reused as the divisor so no extra call lands between the
	// wall-clock read and the counter read it is paired with.
	best := uint64(0)
	bestEl := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		c0 := readCounter()
		// Busy-spin a short, bounded window: sleeping would let the OS
		// migrate or descale us on some systems.
		var el time.Duration
		for el < 2*time.Millisecond {
			el = time.Since(t0)
		}
		c1 := readCounter()
		if el <= 0 || c1 <= c0 {
			continue
		}
		if el < bestEl {
			bestEl = el
			best = uint64(float64(c1-c0) / el.Seconds())
		}
	}
	if best == 0 {
		best = uint64(time.Second) // fallback pretends 1 tick == 1ns
	}
	freq = best
}
