//go:build !amd64

package tsc

import "time"

const counterIsHardware = false

var base = time.Now()

// readCounter falls back to the OS monotonic clock in nanoseconds. It is
// invariant (constant rate, never steps backwards) but slower than a raw
// cycle-counter read.
func readCounter() uint64 { return uint64(time.Since(base)) }
