//go:build amd64

package tsc

const counterIsHardware = true

// rdtscp reads the time-stamp counter with RDTSCP, which waits for all
// earlier instructions to execute before reading the counter.
func rdtscp() uint64

// rdtscFenced reads the counter with LFENCE;RDTSC for CPUs without RDTSCP.
func rdtscFenced() uint64

// hasRDTSCP reports CPUID.80000001H:EDX[27].
func hasRDTSCP() bool

var useRDTSCP = hasRDTSCP()

func readCounter() uint64 {
	if useRDTSCP {
		return rdtscp()
	}
	return rdtscFenced()
}
