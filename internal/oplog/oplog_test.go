package oplog

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"ordo/internal/core"
)

type counter struct{ n int }

func stampers(t *testing.T) map[string]Timestamper {
	t.Helper()
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	return map[string]Timestamper{
		"raw":  RawTSC{},
		"ordo": OrdoStamp{O: o},
	}
}

func TestAppendSynchronizeApplies(t *testing.T) {
	for name, st := range stampers(t) {
		t.Run(name, func(t *testing.T) {
			obj := NewObject(&counter{}, st)
			h := obj.NewHandle()
			for i := 0; i < 10; i++ {
				h.Append(func(c *counter) { c.n++ })
			}
			if p := h.Pending(); p != 10 {
				t.Fatalf("Pending() = %d, want 10", p)
			}
			v := obj.Synchronize()
			if v.n != 10 {
				t.Fatalf("after sync n = %d, want 10", v.n)
			}
			if p := h.Pending(); p != 0 {
				t.Fatalf("Pending() after sync = %d, want 0", p)
			}
			if a := obj.Applied(); a != 10 {
				t.Fatalf("Applied() = %d, want 10", a)
			}
		})
	}
}

func TestTimestampOrderWithinHandle(t *testing.T) {
	// Non-commutative ops from one handle must apply in append order.
	for name, st := range stampers(t) {
		t.Run(name, func(t *testing.T) {
			obj := NewObject(&counter{}, st)
			h := obj.NewHandle()
			h.Append(func(c *counter) { c.n = 5 })
			h.Append(func(c *counter) { c.n *= 3 })
			h.Append(func(c *counter) { c.n -= 1 })
			if v := obj.Synchronize(); v.n != 14 {
				t.Fatalf("sequential ops applied out of order: n = %d, want 14", v.n)
			}
		})
	}
}

func TestCrossHandleCausalOrder(t *testing.T) {
	// An op appended after another handle's sync-visible op (with real-time
	// separation enforced by synchronizing in between) must apply after it.
	for name, st := range stampers(t) {
		t.Run(name, func(t *testing.T) {
			obj := NewObject(&counter{}, st)
			h1 := obj.NewHandle()
			h2 := obj.NewHandle()
			h1.Append(func(c *counter) { c.n = 1 })
			obj.Synchronize()
			h2.Append(func(c *counter) { c.n = 2 })
			if v := obj.Synchronize(); v.n != 2 {
				t.Fatalf("n = %d, want 2", v.n)
			}
		})
	}
}

func TestConcurrentAppendsAllApplied(t *testing.T) {
	for name, st := range stampers(t) {
		t.Run(name, func(t *testing.T) {
			obj := NewObject(&counter{}, st)
			const workers = 4
			const per = 500
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				h := obj.NewHandle()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						h.Append(func(c *counter) { c.n++ })
					}
				}()
			}
			wg.Wait()
			if v := obj.Synchronize(); v.n != workers*per {
				t.Fatalf("n = %d, want %d (lost ops)", v.n, workers*per)
			}
		})
	}
}

func TestConcurrentSyncAndAppend(t *testing.T) {
	for name, st := range stampers(t) {
		t.Run(name, func(t *testing.T) {
			obj := NewObject(&counter{}, st)
			var wg sync.WaitGroup
			const per = 300
			h := obj.NewHandle()
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					h.Append(func(c *counter) { c.n++ })
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					obj.Synchronize()
				}
			}()
			wg.Wait()
			if v := obj.Synchronize(); v.n != per {
				t.Fatalf("n = %d, want %d", v.n, per)
			}
		})
	}
}

func TestReadSeesStableState(t *testing.T) {
	obj := NewObject(&counter{}, RawTSC{})
	h := obj.NewHandle()
	h.Append(func(c *counter) { c.n = 9 })
	var seen int
	obj.Read(func(c *counter) { seen = c.n })
	if seen != 9 {
		t.Fatalf("Read saw %d, want 9", seen)
	}
}

func TestOrdoStampMonotonePerHandle(t *testing.T) {
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := OrdoStamp{O: o}
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		ts := st.Next(prev)
		if prev != 0 && ts <= prev+uint64(o.Boundary()) {
			t.Fatalf("timestamp %d not boundary-separated from %d", ts, prev)
		}
		prev = ts
	}
}

func TestRmapAddWalkRemove(t *testing.T) {
	for name, st := range stampers(t) {
		t.Run(name, func(t *testing.T) {
			r := NewRmap(st)
			h := r.NewHandle()
			h.AddMapping(100, Mapping{Proc: 1, VA: 0x1000})
			h.AddMapping(100, Mapping{Proc: 2, VA: 0x2000})
			h.AddMapping(200, Mapping{Proc: 1, VA: 0x3000})

			if got := r.Walk(100); len(got) != 2 {
				t.Fatalf("Walk(100) = %v, want 2 mappings", got)
			}
			if got := r.Pages(); got != 2 {
				t.Fatalf("Pages() = %d, want 2", got)
			}

			h.RemoveProc(1)
			if got := r.Walk(100); len(got) != 1 || got[0].Proc != 2 {
				t.Fatalf("Walk(100) after RemoveProc(1) = %v", got)
			}
			if got := r.Walk(200); len(got) != 0 {
				t.Fatalf("Walk(200) after RemoveProc(1) = %v, want empty", got)
			}

			h.RemoveMapping(100, Mapping{Proc: 2, VA: 0x2000})
			if got := r.Pages(); got != 0 {
				t.Fatalf("Pages() = %d, want 0", got)
			}
		})
	}
}

func TestRmapConcurrentForkExit(t *testing.T) {
	r := NewRmap(RawTSC{})
	const workers = 4
	const procsPer = 40
	const pagesPerProc = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		h := r.NewHandle()
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for p := uint64(0); p < procsPer; p++ {
				proc := base + p
				for pg := uint64(0); pg < pagesPerProc; pg++ {
					h.AddMapping(pg, Mapping{Proc: proc, VA: pg << 12})
				}
				if p%2 == 1 {
					h.RemoveProc(proc) // half the processes exit
				}
			}
		}(uint64(w) * 1000)
	}
	wg.Wait()
	// Every page is mapped by the surviving (even-index) processes only.
	for pg := uint64(0); pg < pagesPerProc; pg++ {
		ms := r.Walk(pg)
		want := workers * procsPer / 2
		if len(ms) != want {
			t.Fatalf("page %d has %d mappings, want %d", pg, len(ms), want)
		}
		for _, m := range ms {
			if m.Proc%2 != 0 {
				t.Fatalf("page %d still mapped by exited proc %d", pg, m.Proc)
			}
		}
	}
}

func TestLockedRmapBaseline(t *testing.T) {
	r := NewLockedRmap()
	r.AddMapping(1, Mapping{Proc: 7, VA: 0x7000})
	r.AddMapping(1, Mapping{Proc: 8, VA: 0x8000})
	if got := r.Walk(1); len(got) != 2 {
		t.Fatalf("Walk = %v", got)
	}
	r.RemoveProc(7)
	if got := r.Walk(1); len(got) != 1 || got[0].Proc != 8 {
		t.Fatalf("Walk after RemoveProc = %v", got)
	}
}

func TestNilStamperDefaultsToRaw(t *testing.T) {
	obj := NewObject(&counter{}, nil)
	h := obj.NewHandle()
	h.Append(func(c *counter) { c.n = 3 })
	if v := obj.Synchronize(); v.n != 3 {
		t.Fatalf("n = %d, want 3", v.n)
	}
}

func TestMergeOrderProperty(t *testing.T) {
	// Property: for any interleaving of appends across handles, the merged
	// application order is sorted by (timestamp, handle, seq) — per-handle
	// order is always preserved and cross-handle order follows timestamps.
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		type stamped struct{ ts, handle, seq int }
		var applied []stamped
		obj := NewObject(&[]stamped{}, RawTSC{})
		handles := []*Handle[[]stamped]{obj.NewHandle(), obj.NewHandle(), obj.NewHandle()}
		seqs := make([]int, len(handles))
		for i := 0; i < int(nOps)%64+8; i++ {
			h := rng.Intn(len(handles))
			seq := seqs[h]
			seqs[h]++
			handles[h].Append(func(s *[]stamped) {
				*s = append(*s, stamped{handle: h, seq: seq})
			})
		}
		obj.Read(func(s *[]stamped) { applied = append(applied, *s...) })
		// Per-handle sequence numbers must appear in order.
		last := map[int]int{}
		for _, e := range applied {
			if prev, ok := last[e.handle]; ok && e.seq <= prev {
				return false
			}
			last[e.handle] = e.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
