package oplog

import (
	"testing"

	"ordo/internal/core"
)

func BenchmarkAppendRaw(b *testing.B) {
	obj := NewObject(&counter{}, RawTSC{})
	h := obj.NewHandle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Append(func(c *counter) { c.n++ })
	}
}

func BenchmarkAppendOrdo(b *testing.B) {
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		b.Fatal(err)
	}
	obj := NewObject(&counter{}, OrdoStamp{O: o})
	h := obj.NewHandle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Append(func(c *counter) { c.n++ })
	}
}

func BenchmarkSynchronize1k(b *testing.B) {
	obj := NewObject(&counter{}, RawTSC{})
	h := obj.NewHandle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 1000; j++ {
			h.Append(func(c *counter) { c.n++ })
		}
		b.StartTimer()
		obj.Synchronize()
	}
}

func BenchmarkRmapAddMapping(b *testing.B) {
	r := NewRmap(RawTSC{})
	h := r.NewHandle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AddMapping(uint64(i&1023), Mapping{Proc: uint64(i), VA: uint64(i) << 12})
	}
}

func BenchmarkLockedRmapAddMapping(b *testing.B) {
	r := NewLockedRmap()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.AddMapping(uint64(i&1023), Mapping{Proc: uint64(i), VA: uint64(i) << 12})
	}
}
