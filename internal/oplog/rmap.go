package oplog

import "sync"

// This file carries the paper's OpLog application (§6.3): the Linux
// reverse map (rmap), which records, for every physical page, the virtual
// mappings that reference it. fork(), exit(), mmap() and mremap() update
// it constantly — an update-heavy structure with rare reads (page
// reclaim/truncation walks), the OpLog sweet spot.

// Mapping is one virtual mapping of a physical page.
type Mapping struct {
	Proc uint64 // process ID
	VA   uint64 // virtual address
}

// RmapState is the central reverse-map structure: page → mappings.
type RmapState struct {
	pages map[uint64][]Mapping
}

// Rmap is an OpLog-protected reverse map.
type Rmap struct {
	obj *Object[RmapState]
}

// NewRmap builds a reverse map whose updates are timestamped by stamp.
func NewRmap(stamp Timestamper) *Rmap {
	return &Rmap{obj: NewObject(&RmapState{pages: make(map[uint64][]Mapping)}, stamp)}
}

// RmapHandle is a per-thread handle (one per forking "CPU").
type RmapHandle struct {
	h *Handle[RmapState]
}

// NewHandle registers a per-thread log.
func (r *Rmap) NewHandle() *RmapHandle { return &RmapHandle{h: r.obj.NewHandle()} }

// AddMapping logs "page gains mapping (proc, va)" — the fork()/mmap() path.
func (h *RmapHandle) AddMapping(page uint64, m Mapping) {
	h.h.Append(func(s *RmapState) {
		s.pages[page] = append(s.pages[page], m)
	})
}

// RemoveMapping logs removal of one mapping — the munmap() path.
func (h *RmapHandle) RemoveMapping(page uint64, m Mapping) {
	h.h.Append(func(s *RmapState) {
		l := s.pages[page]
		for i, x := range l {
			if x == m {
				l[i] = l[len(l)-1]
				s.pages[page] = l[:len(l)-1]
				break
			}
		}
		if len(s.pages[page]) == 0 {
			delete(s.pages, page)
		}
	})
}

// RemoveProc logs removal of every mapping owned by proc — the exit() path.
func (h *RmapHandle) RemoveProc(proc uint64) {
	h.h.Append(func(s *RmapState) {
		for page, l := range s.pages {
			out := l[:0]
			for _, x := range l {
				if x.Proc != proc {
					out = append(out, x)
				}
			}
			if len(out) == 0 {
				delete(s.pages, page)
			} else {
				s.pages[page] = out
			}
		}
	})
}

// Walk synchronizes and returns a copy of the mappings of one page — the
// page-reclaim read path.
func (r *Rmap) Walk(page uint64) []Mapping {
	var out []Mapping
	r.obj.Read(func(s *RmapState) {
		out = append(out, s.pages[page]...)
	})
	return out
}

// Pages synchronizes and returns the number of mapped pages.
func (r *Rmap) Pages() int {
	var n int
	r.obj.Read(func(s *RmapState) { n = len(s.pages) })
	return n
}

// LockedRmap is the "Vanilla" baseline: the same reverse map protected by
// a single lock, updated in place — the stock-kernel behaviour whose
// contention Figure 10 shows.
type LockedRmap struct {
	mu    sync.Mutex
	state RmapState
}

// NewLockedRmap builds the lock-based baseline.
func NewLockedRmap() *LockedRmap {
	return &LockedRmap{state: RmapState{pages: make(map[uint64][]Mapping)}}
}

// AddMapping inserts under the global lock.
func (r *LockedRmap) AddMapping(page uint64, m Mapping) {
	r.mu.Lock()
	r.state.pages[page] = append(r.state.pages[page], m)
	r.mu.Unlock()
}

// RemoveProc removes a process's mappings under the global lock.
func (r *LockedRmap) RemoveProc(proc uint64) {
	r.mu.Lock()
	for page, l := range r.state.pages {
		out := l[:0]
		for _, x := range l {
			if x.Proc != proc {
				out = append(out, x)
			}
		}
		if len(out) == 0 {
			delete(r.state.pages, page)
		} else {
			r.state.pages[page] = out
		}
	}
	r.mu.Unlock()
}

// Walk returns a copy of one page's mappings under the global lock.
func (r *LockedRmap) Walk(page uint64) []Mapping {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Mapping(nil), r.state.pages[page]...)
}
