// Package oplog implements OpLog (Boyd-Wickizer et al.), the update-heavy
// data-structure library the paper extends with Ordo in §4.4.
//
// OpLog absorbs updates into per-thread logs — each append records the
// operation with a hardware timestamp — and defers applying them until a
// reader needs the authoritative state, at which point all logs are merged
// in timestamp order and applied. Updates therefore never contend on the
// central structure.
//
// Correctness hinges on timestamps being comparable across threads. The
// original OpLog assumes the machine's TSCs are synchronized, which no
// vendor guarantees (§2.2); the Ordo variant draws timestamps from
// NewTime, giving a monotonically increasing machine-wide clock, and
// treats appends whose timestamps fall within one ORDO_BOUNDARY as
// concurrent, applying them in handle-ID order exactly as the original
// design orders same-timestamp entries by core ID.
package oplog

import (
	"sort"
	"sync"

	"ordo/internal/core"
	"ordo/internal/tsc"
)

// Timestamper produces the timestamps appended to log entries.
type Timestamper interface {
	// Next returns a timestamp for the next entry of one handle; prev is
	// that handle's previous timestamp (0 for the first).
	Next(prev uint64) uint64
}

// RawTSC timestamps entries straight from the hardware counter — the
// original OpLog design, which silently assumes synchronized clocks.
type RawTSC struct{}

// Next implements Timestamper.
func (RawTSC) Next(uint64) uint64 { return tsc.Read() }

// OrdoStamp timestamps entries with the Ordo primitive: each handle's
// timestamps are separated by at least one boundary from its previous
// entry, making cross-handle comparison meaningful on unsynchronized
// clocks.
type OrdoStamp struct{ O *core.Ordo }

// Next implements Timestamper.
func (s OrdoStamp) Next(prev uint64) uint64 {
	if prev == 0 {
		return uint64(s.O.GetTime())
	}
	return uint64(s.O.NewTime(core.Time(prev)))
}

// Op mutates the central state of type T when the log is applied.
type Op[T any] func(*T)

// entry is one logged operation.
type entry[T any] struct {
	ts     uint64
	handle int
	seq    uint64
	op     Op[T]
}

// Object is an OpLog-protected value of type T.
type Object[T any] struct {
	stamp Timestamper

	mu      sync.Mutex // guards val and handle registry during merge
	val     *T
	handles []*Handle[T]
	applied uint64 // total ops applied (stats)
}

// NewObject wraps v under OpLog with the given timestamper.
func NewObject[T any](v *T, stamp Timestamper) *Object[T] {
	if stamp == nil {
		stamp = RawTSC{}
	}
	return &Object[T]{stamp: stamp, val: v}
}

// Handle is one thread's private log. Handles must not be shared between
// concurrently running goroutines.
type Handle[T any] struct {
	obj    *Object[T]
	id     int
	mu     sync.Mutex // append vs. merge
	log    []entry[T]
	lastTS uint64
	seq    uint64
}

// NewHandle registers a new per-thread log.
func (o *Object[T]) NewHandle() *Handle[T] {
	o.mu.Lock()
	defer o.mu.Unlock()
	h := &Handle[T]{obj: o, id: len(o.handles)}
	o.handles = append(o.handles, h)
	return h
}

// Append logs an update without touching the central structure: one
// timestamp read and a local append.
func (h *Handle[T]) Append(op Op[T]) {
	ts := h.obj.stamp.Next(h.lastTS)
	h.lastTS = ts
	h.mu.Lock()
	h.log = append(h.log, entry[T]{ts: ts, handle: h.id, seq: h.seq, op: op})
	h.seq++
	h.mu.Unlock()
}

// Pending reports the handle's unapplied entry count.
func (h *Handle[T]) Pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.log)
}

// Synchronize drains every handle's log, applies the operations in global
// timestamp order (handle ID breaks ties and orders entries the clocks
// cannot), and returns the up-to-date value. The returned pointer is only
// safe to read until the next Append is synchronized; callers needing a
// stable view should copy under Read.
func (o *Object[T]) Synchronize() *T {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.synchronizeLocked()
}

func (o *Object[T]) synchronizeLocked() *T {
	var merged []entry[T]
	for _, h := range o.handles {
		h.mu.Lock()
		if len(h.log) > 0 {
			merged = append(merged, h.log...)
			h.log = h.log[:0]
		}
		h.mu.Unlock()
	}
	if len(merged) == 0 {
		return o.val
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.handle != b.handle {
			return a.handle < b.handle
		}
		return a.seq < b.seq
	})
	for _, e := range merged {
		e.op(o.val)
	}
	o.applied += uint64(len(merged))
	return o.val
}

// Read synchronizes and then calls fn with the authoritative value while
// holding the object lock, so fn observes a stable state.
func (o *Object[T]) Read(fn func(*T)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	fn(o.synchronizeLocked())
}

// Applied returns the total number of operations merged so far.
func (o *Object[T]) Applied() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.applied
}
