package hist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestExactSmallValues(t *testing.T) {
	var h H
	for v := uint64(0); v < 1<<mantBits; v++ {
		h.Record(v)
	}
	// Small values land in their own exact bucket.
	for v := uint64(0); v < 1<<mantBits; v++ {
		if got := value(bucket(v)); got != v {
			t.Fatalf("value(bucket(%d)) = %d", v, got)
		}
	}
}

func TestBucketMonotonicAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 20, 1 << 40, 1<<64 - 1} {
		b := bucket(v)
		if b < 0 || b >= nBuckets {
			t.Fatalf("bucket(%d) = %d out of range", v, b)
		}
		if b < prev {
			t.Fatalf("bucket not monotonic at %d", v)
		}
		prev = b
		// The representative value must not exceed the recorded value
		// (lower-bound convention) and must be within one sub-bucket.
		if rep := value(b); rep > v {
			t.Fatalf("value(bucket(%d)) = %d > input", v, rep)
		}
	}
}

func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h H
	samples := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, like a latency distribution tail.
		v := uint64(1) << uint(rng.Intn(30))
		v += uint64(rng.Int63n(int64(v)))
		h.Record(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := exactQuantile(samples, q)
		got := h.Quantile(q)
		// Nearest-rank upper-bound semantics: never below the exact sample
		// quantile, and at most one bucket width above it.
		if got < exact {
			t.Fatalf("q%v: got %d below exact sample quantile %d", q, got, exact)
		}
		if hi := float64(exact) * (1 + 2.0/(1<<mantBits)); float64(got) > hi {
			t.Fatalf("q%v: got %d, exact %d (allowed up to %.0f)", q, got, exact, hi)
		}
	}
	if h.Quantile(1) != samples[len(samples)-1] {
		t.Fatalf("Quantile(1) = %d, want exact max %d", h.Quantile(1), samples[len(samples)-1])
	}
}

func TestMerge(t *testing.T) {
	var a, b, whole H
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Int63n(1 << 20))
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merge mismatch: %v vs %v", a.String(), whole.String())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%v: merged %d, whole %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestEmpty(t *testing.T) {
	var h H
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.Buckets() != nil {
		t.Fatal("empty histogram must export no buckets")
	}
}

// TestBucketsProperty cross-checks Buckets() against Quantile() on random
// sample sets: recomputing any quantile from the cumulative bucket counts
// must select the bucket Quantile() answers from — i.e. the estimate falls
// in (prevUpper, upper] of the first bucket whose cumulative count exceeds
// the rank. Also checks the cumulative invariants the Prometheus export
// depends on: ascending upper bounds, non-decreasing counts, final count
// equal to Count().
func TestBucketsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		var h H
		n := 1 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			var v uint64
			switch rng.Intn(3) {
			case 0: // small exact values
				v = uint64(rng.Intn(1 << (mantBits + 2)))
			case 1: // mid-range
				v = uint64(rng.Int63n(1 << 30))
			default: // heavy tail across many octaves
				v = uint64(1) << uint(rng.Intn(60))
				v += uint64(rng.Int63n(int64(v)))
			}
			h.Record(v)
		}
		bs := h.Buckets()
		if len(bs) == 0 {
			t.Fatalf("trial %d: no buckets for %d samples", trial, n)
		}
		for i := range bs {
			if i > 0 {
				if bs[i].UpperBound <= bs[i-1].UpperBound {
					t.Fatalf("trial %d: upper bounds not ascending at %d", trial, i)
				}
				if bs[i].CumCount <= bs[i-1].CumCount {
					t.Fatalf("trial %d: cumulative counts not increasing at %d (empty buckets must be dropped)", trial, i)
				}
			}
		}
		if last := bs[len(bs)-1].CumCount; last != h.Count() {
			t.Fatalf("trial %d: final cumulative count %d != Count() %d", trial, last, h.Count())
		}
		if max := h.Max(); max > bs[len(bs)-1].UpperBound {
			t.Fatalf("trial %d: max %d above last bucket bound %d", trial, max, bs[len(bs)-1].UpperBound)
		}
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
			// Recompute the quantile's bucket from the cumulative counts,
			// mirroring Quantile's nearest-rank (ceil) rule.
			rank := nearestRank(q, h.Count())
			idx := sort.Search(len(bs), func(i int) bool { return bs[i].CumCount >= rank })
			got := h.Quantile(q)
			if got > bs[idx].UpperBound {
				t.Fatalf("trial %d q%v: Quantile()=%d above recomputed bucket bound %d", trial, q, got, bs[idx].UpperBound)
			}
			if idx > 0 && got <= bs[idx-1].UpperBound {
				t.Fatalf("trial %d q%v: Quantile()=%d at or below previous bound %d", trial, q, got, bs[idx-1].UpperBound)
			}
		}
	}
}

// nearestRank is the ceil nearest-rank rule Quantile implements, clamped
// to [1, n].
func nearestRank(q float64, n uint64) uint64 {
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank
}

// exactQuantile is the nearest-rank quantile of a sorted sample set.
func exactQuantile(sorted []uint64, q float64) uint64 {
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[nearestRank(q, uint64(len(sorted)))-1]
}

// TestQuantileNeverUnderReports is the property the loadgen and benchmark
// reports rely on: for any recorded sample set, the reported quantile is at
// least the exact nearest-rank sample quantile and at most one bucket width
// above it. The old lower-bound convention failed the first half — p99/p999
// quoted latencies better than what the tail actually saw.
func TestQuantileNeverUnderReports(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 100; trial++ {
		var h H
		n := 1 + rng.Intn(3000)
		samples := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			var v uint64
			switch rng.Intn(4) {
			case 0: // exact small values
				v = uint64(rng.Intn(1 << (mantBits + 1)))
			case 1: // one octave, exercises sub-bucket rounding
				v = uint64(1<<20 + rng.Int63n(1<<20))
			case 2: // mid-range uniform
				v = uint64(rng.Int63n(1 << 34))
			default: // heavy tail
				v = uint64(1) << uint(rng.Intn(50))
				v += uint64(rng.Int63n(int64(v)))
			}
			h.Record(v)
			samples = append(samples, v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			exact := exactQuantile(samples, q)
			got := h.Quantile(q)
			if got < exact {
				t.Fatalf("trial %d q%v: reported %d under-reports exact sample quantile %d",
					trial, q, got, exact)
			}
			// Within one bucket width: the estimate is the upper bound of the
			// exact sample's own bucket (or the exact max, whichever is
			// smaller), never a later bucket's.
			if ub := upperBound(bucket(exact)); got > ub {
				t.Fatalf("trial %d q%v: reported %d beyond exact quantile %d's bucket bound %d",
					trial, q, got, exact, ub)
			}
			if got > h.Max() {
				t.Fatalf("trial %d q%v: reported %d above recorded max %d", trial, q, got, h.Max())
			}
		}
	}
}

// TestSnapshotIndependent checks Snapshot returns a copy that later
// records do not mutate.
func TestSnapshotIndependent(t *testing.T) {
	var h H
	h.Record(10)
	snap := h.Snapshot()
	h.Record(1 << 30)
	if snap.Count() != 1 || snap.Max() != 10 {
		t.Fatalf("snapshot mutated: n=%d max=%d", snap.Count(), snap.Max())
	}
	if h.Count() != 2 {
		t.Fatalf("live histogram lost a record: n=%d", h.Count())
	}
}
