package hist

import (
	"math/rand"
	"sort"
	"testing"
)

func TestExactSmallValues(t *testing.T) {
	var h H
	for v := uint64(0); v < 1<<mantBits; v++ {
		h.Record(v)
	}
	// Small values land in their own exact bucket.
	for v := uint64(0); v < 1<<mantBits; v++ {
		if got := value(bucket(v)); got != v {
			t.Fatalf("value(bucket(%d)) = %d", v, got)
		}
	}
}

func TestBucketMonotonicAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 20, 1 << 40, 1<<64 - 1} {
		b := bucket(v)
		if b < 0 || b >= nBuckets {
			t.Fatalf("bucket(%d) = %d out of range", v, b)
		}
		if b < prev {
			t.Fatalf("bucket not monotonic at %d", v)
		}
		prev = b
		// The representative value must not exceed the recorded value
		// (lower-bound convention) and must be within one sub-bucket.
		if rep := value(b); rep > v {
			t.Fatalf("value(bucket(%d)) = %d > input", v, rep)
		}
	}
}

func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h H
	samples := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, like a latency distribution tail.
		v := uint64(1) << uint(rng.Intn(30))
		v += uint64(rng.Int63n(int64(v)))
		h.Record(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))]
		got := h.Quantile(q)
		// Log-linear bound: relative error ≤ 2^-mantBits on the bucket
		// lower bound, so allow one bucket width each way.
		lo := float64(exact) * (1 - 2.0/(1<<mantBits))
		hi := float64(exact) * (1 + 2.0/(1<<mantBits))
		if float64(got) < lo || float64(got) > hi {
			t.Fatalf("q%v: got %d, exact %d (allowed [%.0f, %.0f])", q, got, exact, lo, hi)
		}
	}
	if h.Quantile(1) != samples[len(samples)-1] {
		t.Fatalf("Quantile(1) = %d, want exact max %d", h.Quantile(1), samples[len(samples)-1])
	}
}

func TestMerge(t *testing.T) {
	var a, b, whole H
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Int63n(1 << 20))
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merge mismatch: %v vs %v", a.String(), whole.String())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%v: merged %d, whole %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestEmpty(t *testing.T) {
	var h H
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.Buckets() != nil {
		t.Fatal("empty histogram must export no buckets")
	}
}

// TestBucketsProperty cross-checks Buckets() against Quantile() on random
// sample sets: recomputing any quantile from the cumulative bucket counts
// must select the bucket Quantile() answers from — i.e. the estimate falls
// in (prevUpper, upper] of the first bucket whose cumulative count exceeds
// the rank. Also checks the cumulative invariants the Prometheus export
// depends on: ascending upper bounds, non-decreasing counts, final count
// equal to Count().
func TestBucketsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		var h H
		n := 1 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			var v uint64
			switch rng.Intn(3) {
			case 0: // small exact values
				v = uint64(rng.Intn(1 << (mantBits + 2)))
			case 1: // mid-range
				v = uint64(rng.Int63n(1 << 30))
			default: // heavy tail across many octaves
				v = uint64(1) << uint(rng.Intn(60))
				v += uint64(rng.Int63n(int64(v)))
			}
			h.Record(v)
		}
		bs := h.Buckets()
		if len(bs) == 0 {
			t.Fatalf("trial %d: no buckets for %d samples", trial, n)
		}
		for i := range bs {
			if i > 0 {
				if bs[i].UpperBound <= bs[i-1].UpperBound {
					t.Fatalf("trial %d: upper bounds not ascending at %d", trial, i)
				}
				if bs[i].CumCount <= bs[i-1].CumCount {
					t.Fatalf("trial %d: cumulative counts not increasing at %d (empty buckets must be dropped)", trial, i)
				}
			}
		}
		if last := bs[len(bs)-1].CumCount; last != h.Count() {
			t.Fatalf("trial %d: final cumulative count %d != Count() %d", trial, last, h.Count())
		}
		if max := h.Max(); max > bs[len(bs)-1].UpperBound {
			t.Fatalf("trial %d: max %d above last bucket bound %d", trial, max, bs[len(bs)-1].UpperBound)
		}
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
			// Recompute the quantile's bucket from the cumulative counts,
			// mirroring Quantile's rank rule.
			rank := uint64(q * float64(h.Count()))
			if rank >= h.Count() {
				rank = h.Count() - 1
			}
			idx := sort.Search(len(bs), func(i int) bool { return bs[i].CumCount > rank })
			got := h.Quantile(q)
			if got > bs[idx].UpperBound {
				t.Fatalf("trial %d q%v: Quantile()=%d above recomputed bucket bound %d", trial, q, got, bs[idx].UpperBound)
			}
			if idx > 0 && got <= bs[idx-1].UpperBound {
				t.Fatalf("trial %d q%v: Quantile()=%d at or below previous bound %d", trial, q, got, bs[idx-1].UpperBound)
			}
		}
	}
}

// TestSnapshotIndependent checks Snapshot returns a copy that later
// records do not mutate.
func TestSnapshotIndependent(t *testing.T) {
	var h H
	h.Record(10)
	snap := h.Snapshot()
	h.Record(1 << 30)
	if snap.Count() != 1 || snap.Max() != 10 {
		t.Fatalf("snapshot mutated: n=%d max=%d", snap.Count(), snap.Max())
	}
	if h.Count() != 2 {
		t.Fatalf("live histogram lost a record: n=%d", h.Count())
	}
}
