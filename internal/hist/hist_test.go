package hist

import (
	"math/rand"
	"sort"
	"testing"
)

func TestExactSmallValues(t *testing.T) {
	var h H
	for v := uint64(0); v < 1<<mantBits; v++ {
		h.Record(v)
	}
	// Small values land in their own exact bucket.
	for v := uint64(0); v < 1<<mantBits; v++ {
		if got := value(bucket(v)); got != v {
			t.Fatalf("value(bucket(%d)) = %d", v, got)
		}
	}
}

func TestBucketMonotonicAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 20, 1 << 40, 1<<64 - 1} {
		b := bucket(v)
		if b < 0 || b >= nBuckets {
			t.Fatalf("bucket(%d) = %d out of range", v, b)
		}
		if b < prev {
			t.Fatalf("bucket not monotonic at %d", v)
		}
		prev = b
		// The representative value must not exceed the recorded value
		// (lower-bound convention) and must be within one sub-bucket.
		if rep := value(b); rep > v {
			t.Fatalf("value(bucket(%d)) = %d > input", v, rep)
		}
	}
}

func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h H
	samples := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, like a latency distribution tail.
		v := uint64(1) << uint(rng.Intn(30))
		v += uint64(rng.Int63n(int64(v)))
		h.Record(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))]
		got := h.Quantile(q)
		// Log-linear bound: relative error ≤ 2^-mantBits on the bucket
		// lower bound, so allow one bucket width each way.
		lo := float64(exact) * (1 - 2.0/(1<<mantBits))
		hi := float64(exact) * (1 + 2.0/(1<<mantBits))
		if float64(got) < lo || float64(got) > hi {
			t.Fatalf("q%v: got %d, exact %d (allowed [%.0f, %.0f])", q, got, exact, lo, hi)
		}
	}
	if h.Quantile(1) != samples[len(samples)-1] {
		t.Fatalf("Quantile(1) = %d, want exact max %d", h.Quantile(1), samples[len(samples)-1])
	}
}

func TestMerge(t *testing.T) {
	var a, b, whole H
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Int63n(1 << 20))
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merge mismatch: %v vs %v", a.String(), whole.String())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%v: merged %d, whole %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestEmpty(t *testing.T) {
	var h H
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}
