// Package hist is a fixed-size log-linear latency histogram: constant-time
// recording, bounded memory, mergeable across workers, and quantile
// estimates with bounded relative error — what a load generator needs to
// report p50/p99/p999 without keeping every sample.
//
// Values bucket by their power-of-two octave split into 2^mantBits linear
// sub-buckets, so the relative quantile error is at most 1/2^mantBits
// (~3%). This is the same shape HdrHistogram popularized, reduced to the
// uint64-nanoseconds case.
package hist

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"time"
)

// mantBits is the number of linear sub-bucket bits per octave.
const mantBits = 5

// nBuckets covers the full uint64 range: 64 octaves of 2^mantBits buckets
// (the first two rows are the exact values 0..2^(mantBits+1)).
const nBuckets = (64 - mantBits + 1) << mantBits

// H is one histogram. The zero value is ready to use. Not goroutine-safe;
// give each worker its own and Merge.
type H struct {
	counts [nBuckets]uint64
	n      uint64
	sum    uint64
	max    uint64
}

// bucket maps a value to its bucket index.
func bucket(v uint64) int {
	if v < 1<<mantBits {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	shift := exp - mantBits
	return int(uint64(shift+1)<<mantBits | (v>>shift)&(1<<mantBits-1))
}

// value returns a bucket's representative value (its lower bound; exact for
// the linear rows).
func value(i int) uint64 {
	row := i >> mantBits
	if row == 0 {
		return uint64(i)
	}
	mant := uint64(i&(1<<mantBits-1)) | 1<<mantBits
	return mant << (row - 1)
}

// Record adds one value.
func (h *H) Record(v uint64) {
	h.counts[bucket(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// RecordDuration adds one duration in nanoseconds.
func (h *H) RecordDuration(d time.Duration) { h.Record(uint64(d)) }

// Merge folds other into h.
func (h *H) Merge(other *H) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded values.
func (h *H) Count() uint64 { return h.n }

// Sum returns the exact sum of recorded values.
func (h *H) Sum() uint64 { return h.sum }

// Snapshot returns an independent copy of the histogram, so an exporter
// can merge, iterate, or compute quantiles without holding whatever lock
// protects the live histogram for longer than the copy.
func (h *H) Snapshot() *H {
	c := *h
	return &c
}

// Bucket is one non-empty histogram bucket in cumulative form — the shape
// Prometheus histogram exposition wants. UpperBound is the bucket's
// inclusive upper edge: every recorded value v ≤ UpperBound is counted in
// CumCount (values are integers, so an inclusive integer edge is an exact
// `le` bound).
type Bucket struct {
	UpperBound uint64
	CumCount   uint64
}

// upperBound returns bucket i's inclusive upper edge: one below the next
// bucket's lower bound, and the full range for the last bucket.
func upperBound(i int) uint64 {
	if i >= nBuckets-1 {
		return ^uint64(0)
	}
	return value(i+1) - 1
}

// Buckets returns the non-empty buckets with cumulative counts, upper
// bounds ascending. The last entry's CumCount equals Count(). The slice is
// freshly allocated; an empty histogram returns nil.
func (h *H) Buckets() []Bucket {
	var out []Bucket
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, Bucket{UpperBound: upperBound(i), CumCount: cum})
	}
	return out
}

// Mean returns the exact mean of recorded values (sums are kept exactly).
func (h *H) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest recorded value, exactly.
func (h *H) Max() uint64 { return h.max }

// Quantile returns an estimate of the q-quantile (q in [0,1]) using
// nearest-rank (ceil) semantics: the k-th smallest recorded value with
// k = ceil(q·n). The estimate is the inclusive upper bound of that value's
// bucket (capped at the exact max), so it never under-reports — it is ≥ the
// exact sample quantile and within one bucket width (relative error
// ≤ 1/2^mantBits) above it. Quantile(1) returns the exact max.
//
// Returning the bucket's lower bound here would systematically under-report
// tail latencies by up to the bucket width: every sample in the bucket is
// ≥ the lower bound, so p99/p999 would quote a latency better than what at
// least 1% of requests actually saw.
func (h *H) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			ub := upperBound(i)
			// The max lives in the highest non-empty bucket; its upper bound
			// may overshoot the largest value actually recorded.
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// String renders count, mean and the standard latency quantiles, reading
// values as nanoseconds.
func (h *H) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50=%v p99=%v p999=%v max=%v",
		h.n, time.Duration(h.Mean()),
		time.Duration(h.Quantile(0.50)),
		time.Duration(h.Quantile(0.99)),
		time.Duration(h.Quantile(0.999)),
		time.Duration(h.max))
	return b.String()
}
