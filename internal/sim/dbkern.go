package sim

import (
	"ordo/internal/db"
	"ordo/internal/machine"
	"ordo/internal/topology"
)

// Database kernels for Figures 13 and 14. Each protocol differs only in
// where its timestamps come from and what its validation does, exactly
// mirroring internal/db:
//
//	OCC/Hekaton:       fetch-and-add on one global clock line per
//	                   timestamp (twice per transaction)
//	OCC_ORDO/H._ORDO:  local invariant-clock reads
//	Silo:              a load of a rarely-advanced epoch line
//	TicToc:            no clock at all; validation traverses tuple
//	                   metadata (+7% validation time, §6.5)

// dbCost bundles the per-protocol per-transaction clock/validation costs.
type dbCost struct {
	beginFAA, commitFAA bool // logical clock allocations
	beginTSC, commitTSC bool // Ordo clock reads
	epochLoad           bool // Silo's epoch read
	mvcc                bool // version-chain overhead on every access
	validateFactor      float64
	// validatePerItemNS is TicToc's data-driven commit-timestamp
	// computation: it traverses the read and write set per commit, so its
	// cost scales with the transaction footprint (§6.5: TicToc spends ~7%
	// more time in validation under TPC-C, costing it 1.24× against
	// OCC_ORDO and 9% extra aborts from the longer window).
	validatePerItemNS float64
}

func costOf(p db.Protocol) dbCost {
	switch p {
	case db.OCC:
		return dbCost{beginFAA: true, commitFAA: true, validateFactor: 1}
	case db.OCCOrdo:
		return dbCost{beginTSC: true, commitTSC: true, validateFactor: 1}
	case db.Silo:
		return dbCost{epochLoad: true, validateFactor: 1}
	case db.TicToc:
		// Data-driven timestamp computation traverses the read/write set
		// to find the commit timestamp (§6.5 measures ~7%).
		return dbCost{validateFactor: 1.07, validatePerItemNS: 40}
	case db.Hekaton:
		return dbCost{beginFAA: true, commitFAA: true, mvcc: true, validateFactor: 1}
	case db.HekatonOrdo:
		return dbCost{beginTSC: true, commitTSC: true, mvcc: true, validateFactor: 1}
	}
	return dbCost{validateFactor: 1}
}

// YCSBConfig parameterizes Figure 13's read-only YCSB sweep.
type YCSBConfig struct {
	Topo       *topology.Machine
	Protocol   db.Protocol
	ReadsPerTx int     // paper: 2
	DurationNS float64 // default 300µs
	Seed       int64
}

func (c *YCSBConfig) defaults() {
	if c.ReadsPerTx == 0 {
		c.ReadsPerTx = 2
	}
	if c.DurationNS == 0 {
		c.DurationNS = 300_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Per-access costs (reference cycles; scaled by core speed).
const (
	ycsbIndexNS    = 180.0 // hash-index probe
	ycsbTupleLines = 2.0   // 10-column tuple copy
	ycsbSetupNS    = 150.0 // transaction bookkeeping
	mvccExtraLines = 1.0   // version-chain hop per access
	validateNS     = 120.0 // read-set validation base
)

// RunYCSBAt simulates the read-only YCSB workload at a thread count.
func RunYCSBAt(cfg YCSBConfig, threads int) machine.RunStats {
	cfg.defaults()
	t := cfg.Topo
	s := machine.New(t, cfg.Seed)
	scale := cpuScale(t)
	cost := costOf(cfg.Protocol)
	boundary := Boundary(t)

	clockLine := s.NewLine()
	epochLine := s.NewLine()

	mk := func(id int) machine.Kernel {
		var lastTS uint64
		return machine.KernelFunc(func(c *machine.Core) {
			// Clock traffic first (engine causality rule).
			switch {
			case cost.beginFAA:
				c.FetchAdd(clockLine, 1)
			case cost.beginTSC:
				// new_time chained from the worker's previous timestamp:
				// normal transaction lengths absorb the boundary (§4.2).
				lastTS = c.WaitClockPast(lastTS + uint64(boundary))
			case cost.epochLoad:
				c.Load(epochLine)
			}
			if cost.commitFAA {
				c.FetchAdd(clockLine, 1)
			}
			if cost.commitTSC {
				c.ReadTSC()
			}
			// Reads: index probe + tuple copy (+ version-chain hop).
			lines := ycsbTupleLines
			if cost.mvcc {
				lines += mvccExtraLines
			}
			for r := 0; r < cfg.ReadsPerTx; r++ {
				c.Compute(ycsbIndexNS * scale)
				c.MemoryAccess(lines)
			}
			c.Compute((ycsbSetupNS + validateNS*cost.validateFactor) * scale)
			c.Done(1)
		})
	}
	return s.Run(threads, cfg.DurationNS, mk)
}

// YCSBSweep produces one Figure 13 curve: txns/µs versus threads.
func YCSBSweep(cfg YCSBConfig, steps int) Series {
	cfg.defaults()
	se := Series{Name: cfg.Protocol.String()}
	for _, n := range ThreadGrid(cfg.Topo, steps) {
		st := RunYCSBAt(cfg, n)
		se.Points = append(se.Points, Point{Threads: n, Value: st.OpsPerUSec()})
	}
	return se
}

// TPCCConfig parameterizes Figure 14's TPC-C sweep (NewOrder 50% /
// Payment 50%).
type TPCCConfig struct {
	Topo       *topology.Machine
	Protocol   db.Protocol
	Warehouses int     // paper: 60
	DurationNS float64 // default 400µs
	Seed       int64
}

func (c *TPCCConfig) defaults() {
	if c.Warehouses == 0 {
		c.Warehouses = 60
	}
	if c.DurationNS == 0 {
		c.DurationNS = 400_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// TPC-C kernel costs (reference cycles).
const (
	newOrderWorkNS    = 2400.0 // item/stock/customer processing
	newOrderLines     = 12.0
	newOrderFootprint = 24 // read+write set entries
	paymentWorkNS     = 900.0
	paymentLines      = 4.0
	paymentFootprint  = 8
	commitWriteNS     = 180.0
)

// TPCCResult carries Figure 14's two panels.
type TPCCResult struct {
	machine.RunStats
	Aborts uint64
}

// AbortRate returns aborts / (commits + aborts).
func (r TPCCResult) AbortRate() float64 {
	total := r.Ops + r.Aborts
	if total == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(total)
}

// RunTPCCAt simulates the TPC-C mix at a thread count. Conflicts emerge
// from the warehouse and district rows: a transaction records the row
// version it read and aborts at commit when the fetch-and-add that
// publishes its update reveals an intervening writer — the OCC
// first-updater-wins rule realized on the simulated cache lines.
func RunTPCCAt(cfg TPCCConfig, threads int) TPCCResult {
	cfg.defaults()
	t := cfg.Topo
	s := machine.New(t, cfg.Seed)
	scale := cpuScale(t)
	cost := costOf(cfg.Protocol)
	boundary := Boundary(t)

	clockLine := s.NewLine()
	epochLine := s.NewLine()
	// Hekaton's commit-time dependency tracking registers each committed
	// write transaction in shared dependency state — the "heavyweight
	// dependency-tracking mechanism" §6.5 blames for Hekaton_ORDO trailing
	// the OCC family.
	depLines := []*machine.Line{s.NewLine(), s.NewLine()}
	warehouses := make([]*machine.Line, cfg.Warehouses)
	districts := make([]*machine.Line, cfg.Warehouses*10)
	for i := range warehouses {
		warehouses[i] = s.NewLine()
	}
	for i := range districts {
		districts[i] = s.NewLine()
	}

	var aborts uint64
	mk := func(id int) machine.Kernel {
		var lastTS uint64
		// Pending transaction state across the two phases.
		var inCommit bool
		var isNewOrder bool
		var wh, dist int
		var v0w, v0d uint64
		return machine.KernelFunc(func(c *machine.Core) {
			rng := c.Rand()
			if !inCommit {
				// Phase 0: begin + execute.
				switch {
				case cost.beginFAA:
					c.FetchAdd(clockLine, 1)
				case cost.beginTSC:
					lastTS = c.WaitClockPast(lastTS + uint64(boundary))
				case cost.epochLoad:
					c.Load(epochLine)
				}
				isNewOrder = rng.Intn(2) == 0
				wh = rng.Intn(cfg.Warehouses)
				dist = wh*10 + rng.Intn(10)
				// Record the contended rows' versions (the read phase).
				v0d = districts[dist].Value()
				c.Load(districts[dist])
				if !isNewOrder {
					v0w = warehouses[wh].Value()
					c.Load(warehouses[wh])
				}
				if isNewOrder {
					if cost.mvcc {
						c.MemoryAccess(newOrderLines + 4)
					} else {
						c.MemoryAccess(newOrderLines)
					}
					c.Compute(newOrderWorkNS * scale)
				} else {
					if cost.mvcc {
						c.MemoryAccess(paymentLines + 2)
					} else {
						c.MemoryAccess(paymentLines)
					}
					c.Compute(paymentWorkNS * scale)
				}
				inCommit = true
				return
			}
			// Phase 1: validate + commit.
			inCommit = false
			if cost.commitFAA {
				c.FetchAdd(clockLine, 1)
			}
			if cost.commitTSC {
				c.ReadTSC()
			}
			if cost.mvcc {
				c.Acquire(depLines[rng.Intn(len(depLines))], 150*scale)
			}
			footprint := paymentFootprint
			if isNewOrder {
				footprint = newOrderFootprint
			}
			c.Compute((validateNS*cost.validateFactor + cost.validatePerItemNS*float64(footprint)) * scale)
			// Validate the contended rows: an intervening version means a
			// conflicting writer committed during our window (first-
			// updater-wins); only a validated transaction publishes.
			conflicted := districts[dist].Value() != v0d
			if !isNewOrder && warehouses[wh].Value() != v0w {
				conflicted = true
			}
			if cost.mvcc {
				// MVCC installs its version before commit and loses only
				// write-write races within the shorter install→commit
				// window: forgive conflicts with even probability.
				if conflicted && c.Rand().Intn(2) == 0 {
					conflicted = false
				}
			}
			if conflicted {
				aborts++
				return // retry: next step starts the transaction over
			}
			c.FetchAdd(districts[dist], 1)
			if !isNewOrder {
				c.FetchAdd(warehouses[wh], 1)
			}
			c.Compute(commitWriteNS * scale)
			c.Done(1)
		})
	}
	st := s.Run(threads, cfg.DurationNS, mk)
	return TPCCResult{RunStats: st, Aborts: aborts}
}

// TPCCSweep produces a Figure 14 curve: txns/µs (Value) and abort rate
// (Aux) versus threads.
func TPCCSweep(cfg TPCCConfig, steps int) Series {
	cfg.defaults()
	se := Series{Name: cfg.Protocol.String()}
	for _, n := range ThreadGrid(cfg.Topo, steps) {
		r := RunTPCCAt(cfg, n)
		se.Points = append(se.Points, Point{Threads: n, Value: r.OpsPerUSec(), Aux: r.AbortRate()})
	}
	return se
}
