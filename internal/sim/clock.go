package sim

import (
	"ordo/internal/machine"
	"ordo/internal/topology"
)

// TimestampCost reproduces Figure 8a: the latency of one hardware
// timestamp instruction while `threads` threads issue timestamps in
// parallel. It stays flat up to the physical core count and rises once
// SMT siblings contend for the timestamp port.
func TimestampCost(t *topology.Machine, threads int) float64 {
	s := machine.New(t, 1)
	const dur = 50_000 // 50µs virtual
	st := s.Run(threads, dur, func(int) machine.Kernel {
		return machine.KernelFunc(func(c *machine.Core) {
			c.ReadTSC()
			c.Done(1)
		})
	})
	if st.Ops == 0 {
		return 0
	}
	// Average per-op latency across threads.
	return dur * float64(st.Threads) / float64(st.Ops)
}

// TimestampCostSweep runs Figure 8a's sweep for one machine.
func TimestampCostSweep(t *topology.Machine, steps int) Series {
	se := Series{Name: t.Name}
	for _, n := range ThreadGrid(t, steps) {
		se.Points = append(se.Points, Point{Threads: n, Value: TimestampCost(t, n)})
	}
	return se
}

// TimestampGeneration reproduces Figure 8b: per-core timestamps generated
// per microsecond, for the atomic-increment design (A) versus Ordo's
// new_time (O).
func TimestampGeneration(t *topology.Machine, threads int, ordo bool) float64 {
	s := machine.New(t, 1)
	boundary := Boundary(t)
	const dur = 200_000 // 200µs virtual
	var mk func(int) machine.Kernel
	if ordo {
		mk = func(int) machine.Kernel {
			var last uint64
			return machine.KernelFunc(func(c *machine.Core) {
				// new_time: a fresh timestamp one boundary past the
				// previous one; back-to-back generation pays the window.
				last = c.WaitClockPast(last + uint64(boundary))
				c.Done(1)
			})
		}
	} else {
		line := s.NewLine()
		mk = func(int) machine.Kernel {
			return machine.KernelFunc(func(c *machine.Core) {
				c.FetchAdd(line, 1)
				c.Done(1)
			})
		}
	}
	st := s.Run(threads, dur, mk)
	perCorePerUS := float64(st.Ops) / float64(st.Threads) / (dur / 1000)
	return perCorePerUS
}

// TimestampGenerationSweep runs Figure 8b's two curves for one machine.
func TimestampGenerationSweep(t *topology.Machine, steps int) (atomic, ordo Series) {
	atomic = Series{Name: t.Name + " (A)"}
	ordo = Series{Name: t.Name + " (O)"}
	for _, n := range ThreadGrid(t, steps) {
		atomic.Points = append(atomic.Points, Point{Threads: n, Value: TimestampGeneration(t, n, false)})
		ordo.Points = append(ordo.Points, Point{Threads: n, Value: TimestampGeneration(t, n, true)})
	}
	return atomic, ordo
}
