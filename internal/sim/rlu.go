package sim

import (
	"ordo/internal/machine"
	"ordo/internal/topology"
)

// RLUConfig parameterizes the RLU hash-table kernel (the benchmark of
// Figures 1, 11, 12 and 16: a fixed-bucket hash table of linked lists).
type RLUConfig struct {
	Topo        *topology.Machine
	UpdateRatio float64 // fraction of operations that write (0.02, 0.40)
	Buckets     int     // default 1000
	Nodes       int     // nodes per bucket, default 100
	Ordo        bool    // RLU_ORDO instead of the logical-clock original

	// BoundaryScale multiplies the calibrated ORDO_BOUNDARY (Figure 16's
	// sensitivity sweep); 0 means 1.
	BoundaryScale float64

	// DeferN batches that many writer commits before a synchronize
	// (Figure 12's defer-based RLU); 0 disables deferral.
	DeferN int

	// LocksPerWrite is how many objects a writer locks and copies (1 for
	// the hash table; the citrus tree's relocating deletes lock several —
	// §6.4's "complex update operations").
	LocksPerWrite int

	DurationNS float64 // virtual run length; 0 means 400µs
	Seed       int64
}

// CitrusConfig returns the citrus-tree benchmark configuration of §6.4: a
// large internal BST, whose traversals walk ~log(n) nodes and whose
// updates lock and copy several nodes (successor relocation). The paper
// reports RLU_ORDO "almost 2×" over RLU on it across architectures.
func CitrusConfig(t *topology.Machine, updateRatio float64, ordo bool) RLUConfig {
	return RLUConfig{
		Topo:          t,
		UpdateRatio:   updateRatio,
		Ordo:          ordo,
		Buckets:       100_000, // tree nodes (lock pool)
		Nodes:         36,      // 2×depth: traversal walks ~18 pointer hops
		LocksPerWrite: 3,       // node + parent + successor parent
	}
}

func (c *RLUConfig) defaults() {
	if c.Buckets == 0 {
		c.Buckets = 1000
	}
	if c.Nodes == 0 {
		c.Nodes = 100
	}
	if c.BoundaryScale == 0 {
		c.BoundaryScale = 1
	}
	if c.LocksPerWrite == 0 {
		c.LocksPerWrite = 1
	}
	if c.DurationNS == 0 {
		c.DurationNS = 400_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Kernel cost constants (ns of work at the reference 2.4 GHz clock; the
// machine's GHz rescales them).
const (
	rluPerNodeNS    = 28.0 // traverse one list node (pointer-chasing)
	rluSectionNS    = 25.0 // reader lock/unlock bookkeeping
	rluCopyLines    = 2.0  // object copy at write
	rluScanPerThd   = 12.0 // quiescence scan cost per registered thread
	rluLockCheckPct = 0.08 // Ordo dereference re-checks locks (§6.4: ~8%)
)

// cpuScale converts reference-cycle work to this machine's core speed.
func cpuScale(t *topology.Machine) float64 { return 2.4 / t.GHz }

// RunRLUAt simulates the hash-table benchmark at a given thread count.
//
// The kernel follows the RLU section structure: mark the per-thread
// context line, record the clock (a load of the contended global line in
// the original; a local TSC read under Ordo), traverse the bucket, and for
// writes lock the object, copy it, advance the clock (fetch-and-add vs.
// new_time with the extra snapshot boundary of §4.1), quiesce readers and
// write back.
func RunRLUAt(cfg RLUConfig, threads int) machine.RunStats {
	cfg.defaults()
	t := cfg.Topo
	s := machine.New(t, cfg.Seed)
	scale := cpuScale(t)

	globalClock := s.NewLine()
	bucketLocks := make([]*machine.Line, cfg.Buckets)
	for i := range bucketLocks {
		bucketLocks[i] = s.NewLine()
	}
	ctx := make([]*machine.Line, t.Threads())
	for i := range ctx {
		ctx[i] = s.NewLine()
	}

	boundary := Boundary(t) * cfg.BoundaryScale
	traverse := float64(cfg.Nodes) / 2 * rluPerNodeNS * scale
	if cfg.Ordo {
		traverse *= 1 + rluLockCheckPct
	}

	mk := func(id int) machine.Kernel {
		var pendingDefer int
		var writing bool    // phase 1 pending: commit the write
		var retryWrite bool // aborted on a writer-writer conflict
		var bucket int
		var sectionClock uint64 // local clock recorded at reader_lock
		lockTargets := make([]int, 0, cfg.LocksPerWrite)
		return machine.KernelFunc(func(c *machine.Core) {
			rng := c.Rand()
			if !writing {
				// Phase 0: begin the section and traverse.
				c.Store(ctx[id], uint64(id))
				if cfg.Ordo {
					sectionClock = c.ReadTSC()
				} else {
					c.Load(globalClock)
				}
				if !retryWrite {
					bucket = rng.Intn(cfg.Buckets)
				}
				if retryWrite || rng.Float64() < cfg.UpdateRatio {
					writing = true
					retryWrite = false
				}
				c.Compute(rluSectionNS*scale + traverse)
				if !writing {
					c.Store(ctx[id], uint64(id)) // reader_unlock
					c.Done(1)
				}
				return
			}
			// Phase 1: writer commit. Shared-line and clock operations
			// lead the step (engine causality rule).
			writing = false
			lockTargets = lockTargets[:0]
			for k := 0; k < cfg.LocksPerWrite; k++ {
				target := bucket
				if k > 0 {
					// Additional locked objects (parent/successor nodes)
					// cluster near the primary one.
					target = (bucket + 1 + rng.Intn(8)) % cfg.Buckets
				}
				if !c.CompareAndSwap(bucketLocks[target], 0, uint64(id)+1) {
					// Writer-writer conflict: RLU forbids it — abort the
					// section (unlock what we took) and retry.
					for _, u := range lockTargets {
						c.Store(bucketLocks[u], 0)
					}
					retryWrite = true
					c.Store(ctx[id], uint64(id))
					return
				}
				lockTargets = append(lockTargets, target)
			}

			commit := cfg.DeferN == 0
			if cfg.DeferN > 0 {
				pendingDefer++
				if pendingDefer >= cfg.DeferN {
					pendingDefer = 0
					commit = true
				}
			}
			if commit {
				if cfg.Ordo {
					// new_time(localClock + boundary): the extra boundary
					// guards the single-version snapshot (§4.1). The wait
					// runs from the clock recorded at reader_lock, so the
					// section's own work absorbs most of the window —
					// new_time is not a backoff (§6.7).
					c.WaitClockPast(sectionClock + uint64(2*boundary))
				} else {
					c.FetchAdd(globalClock, 1)
				}
				// Quiescence: scan every context (sampled loads model the
				// ctx-line ping-pong, the rest is linear work), then wait
				// out the average in-flight reader.
				samples := 8
				if samples > threads {
					samples = threads
				}
				for k := 0; k < samples; k++ {
					c.Load(ctx[rng.Intn(threads)])
				}
				c.Compute(float64(threads-samples)*rluScanPerThd*scale + traverse/2)
			}
			// Copy, write back, unlock, end the section.
			c.MemoryAccess((rluCopyLines + 1) * float64(cfg.LocksPerWrite))
			for _, u := range lockTargets {
				c.Store(bucketLocks[u], 0)
			}
			c.Store(ctx[id], uint64(id))
			c.Done(1)
		})
	}
	return s.Run(threads, cfg.DurationNS, mk)
}

// RLUSweep produces one Figure 11-style curve: ops/µs versus threads.
func RLUSweep(cfg RLUConfig, steps int) Series {
	cfg.defaults()
	name := "RLU"
	if cfg.Ordo {
		name = "RLU_ORDO"
	}
	se := Series{Name: name}
	for _, n := range ThreadGrid(cfg.Topo, steps) {
		st := RunRLUAt(cfg, n)
		se.Points = append(se.Points, Point{Threads: n, Value: st.OpsPerUSec()})
	}
	return se
}
