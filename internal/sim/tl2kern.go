package sim

import (
	"ordo/internal/machine"
	"ordo/internal/topology"
)

// STAMPProfile captures the transaction shape of one STAMP benchmark —
// the properties §6.6 says determine clock sensitivity: transaction
// length, write intensity, footprint, and conflict locality.
type STAMPProfile struct {
	Name     string
	TxnNS    float64 // STM-instrumented transaction work (reference cycles)
	Lines    float64 // memory lines touched per transaction
	ReadOnly float64 // fraction of transactions that commit read-only
	Pool     int     // contended-object pool size
	Touch    int     // contended objects accessed per transaction
	SeqNS    float64 // uninstrumented sequential cost (speedup baseline)
	SerialNS float64 // inherently serial per-txn work (shared queue pop,
	// barrier arbitration); 0 for workloads without one
}

// STAMPProfiles returns the six benchmarks. Short-transaction workloads
// (kmeans, ssca2) hammer the version clock hardest; labyrinth's very long
// transactions suffer most from the abort amplification the contended
// clock causes; genome is read-dominated and large.
func STAMPProfiles() []STAMPProfile {
	return []STAMPProfile{
		{Name: "genome", TxnNS: 4000, Lines: 30, ReadOnly: 0.95, Pool: 8192, Touch: 4, SeqNS: 1800},
		{Name: "intruder", TxnNS: 330, Lines: 8, ReadOnly: 0.2, Pool: 256, Touch: 3, SeqNS: 150, SerialNS: 350},
		{Name: "kmeans", TxnNS: 2200, Lines: 8, ReadOnly: 0, Pool: 40, Touch: 1, SeqNS: 1000},
		{Name: "labyrinth", TxnNS: 12000, Lines: 120, ReadOnly: 0, Pool: 448, Touch: 6, SeqNS: 6000},
		{Name: "ssca2", TxnNS: 200, Lines: 4, ReadOnly: 0, Pool: 2048, Touch: 2, SeqNS: 90, SerialNS: 40},
		{Name: "vacation", TxnNS: 3800, Lines: 16, ReadOnly: 0.1, Pool: 512, Touch: 8, SeqNS: 1700},
	}
}

// TL2Config parameterizes one Figure 15 cell.
type TL2Config struct {
	Topo       *topology.Machine
	Profile    STAMPProfile
	Ordo       bool
	DurationNS float64 // default 400µs
	Seed       int64
}

func (c *TL2Config) defaults() {
	if c.DurationNS == 0 {
		c.DurationNS = 400_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// TL2Result reports throughput, speedup over sequential, and aborts.
type TL2Result struct {
	machine.RunStats
	Aborts  uint64
	Speedup float64
}

// AbortRate returns aborts / (commits + aborts).
func (r TL2Result) AbortRate() float64 {
	total := r.Ops + r.Aborts
	if total == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(total)
}

// RunTL2At simulates a STAMP workload over TL2 at a thread count.
//
// The kernel follows TL2's structure: begin reads the version clock (a
// load of the contended clock line, or a local TSC read), the body does
// the instrumented work, and commit fetch-and-adds the clock (or waits
// out new_time), validates, and aborts on conflict. Conflicts emerge from
// the profile's contended-object pool exactly as in the TPC-C kernel; the
// Ordo variant additionally aborts when a validated version falls inside
// the uncertainty window of the commit timestamp (§4.3's conservative
// rule), which is what costs it ~10% extra aborts on intruder past 60
// cores while slashing labyrinth's clock-amplified aborts.
func RunTL2At(cfg TL2Config, threads int) TL2Result {
	cfg.defaults()
	t := cfg.Topo
	s := machine.New(t, cfg.Seed)
	scale := cpuScale(t)
	boundary := Boundary(t)
	prof := cfg.Profile

	clockLine := s.NewLine()
	// Two shards for the serial resource: coarse app-level queues are
	// typically a little less serial than one global lock.
	serialLines := []*machine.Line{s.NewLine(), s.NewLine()}
	pool := make([]*machine.Line, prof.Pool)
	for i := range pool {
		pool[i] = s.NewLine()
	}

	var aborts uint64
	mk := func(id int) machine.Kernel {
		var inCommit bool
		var readOnly bool
		var startClock uint64
		var startVT float64
		touched := make([]int, prof.Touch)
		v0 := make([]uint64, prof.Touch)
		return machine.KernelFunc(func(c *machine.Core) {
			rng := c.Rand()
			if !inCommit {
				// Inherently serial work first (e.g. intruder's shared
				// packet queue), then begin: read the version clock.
				if prof.SerialNS > 0 {
					c.Acquire(serialLines[rng.Intn(2)], prof.SerialNS*scale)
				}
				if cfg.Ordo {
					startClock = c.ReadTSC()
				} else {
					c.Load(clockLine)
				}
				startVT = c.VTime()
				readOnly = rng.Float64() < prof.ReadOnly
				for i := range touched {
					touched[i] = rng.Intn(prof.Pool)
					v0[i] = pool[touched[i]].Value()
					c.Load(pool[touched[i]])
				}
				c.MemoryAccess(prof.Lines)
				c.Compute(prof.TxnNS * scale)
				inCommit = true
				return
			}
			// Commit.
			inCommit = false
			var commitTS float64
			if readOnly {
				// TL2 read-only transactions skip the write-version
				// allocation entirely.
				c.Done(1)
				return
			}
			if cfg.Ordo {
				c.WaitClockPast(startClock + uint64(boundary))
				commitTS = c.VTime()
			} else {
				c.FetchAdd(clockLine, 1)
				commitTS = c.VTime()
			}
			// Validate the read set: a version written since we began
			// conflicts; under Ordo, a version inside the uncertainty
			// window of the commit timestamp aborts conservatively.
			conflicted := false
			for i := range touched {
				l := pool[touched[i]]
				if l.Value() != v0[i] {
					conflicted = true
					break
				}
				if cfg.Ordo && l.LastWriteAt() > commitTS-boundary && l.LastWriteAt() <= startVT {
					conflicted = true
					break
				}
			}
			if conflicted {
				aborts++
				return // retry from begin
			}
			for i := range touched {
				c.FetchAdd(pool[touched[i]], 1) // write back + version bump
			}
			c.Done(1)
		})
	}
	st := s.Run(threads, cfg.DurationNS, mk)
	r := TL2Result{RunStats: st, Aborts: aborts}
	r.Speedup = st.OpsPerSec() / 1e9 * prof.SeqNS * cpuScale(t)
	return r
}

// TL2Sweep produces one Figure 15 curve: speedup over sequential (Value)
// and abort rate (Aux) versus threads.
func TL2Sweep(cfg TL2Config, steps int) Series {
	cfg.defaults()
	name := "TL2"
	if cfg.Ordo {
		name = "TL2_ORDO"
	}
	se := Series{Name: name}
	for _, n := range ThreadGrid(cfg.Topo, steps) {
		r := RunTL2At(cfg, n)
		se.Points = append(se.Points, Point{Threads: n, Value: r.Speedup, Aux: r.AbortRate()})
	}
	return se
}
