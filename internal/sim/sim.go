// Package sim reproduces the paper's evaluation figures by running
// algorithm kernels on the simulated multicore machines of
// internal/machine. Each kernel expresses an algorithm's synchronization
// skeleton — which cache lines it touches, which clocks it reads, how much
// local work an operation does — and the machine model turns that into
// throughput-versus-core-count curves whose shapes reproduce the paper's:
// logical clocks collapse with cache-line contention, Ordo clocks do not.
//
// One kernel exists per experiment family:
//
//	clock.go   Figure 8a/8b  timestamp cost and generation throughput
//	rlu.go     Figures 1, 11, 12, 16  RLU hash-table benchmark
//	oplogk.go  Figure 10     Exim over the rmap (Vanilla/Oplog/Oplog_ORDO)
//	dbkern.go  Figures 13, 14  YCSB and TPC-C over six CC protocols
//	tl2kern.go Figure 15     STAMP speedups over sequential
package sim

import (
	"fmt"

	"ordo/internal/core"
	"ordo/internal/machine"
	"ordo/internal/topology"
)

// Point is one measurement of a sweep.
type Point struct {
	Threads int
	Value   float64
	// Aux carries a second metric where a figure reports one (e.g. abort
	// rate alongside throughput in Figure 14).
	Aux float64
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// At returns the value at the given thread count, or NaN-free zero.
func (s Series) At(threads int) (float64, bool) {
	for _, p := range s.Points {
		if p.Threads == threads {
			return p.Value, true
		}
	}
	return 0, false
}

// Last returns the final point's value (highest thread count measured).
func (s Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Value
}

// ThreadGrid returns the sweep points for a machine: 1, then roughly
// even steps up to the maximum hardware thread count, mirroring the
// paper's x-axes.
func ThreadGrid(t *topology.Machine, steps int) []int {
	max := t.Threads()
	if steps < 2 {
		steps = 2
	}
	grid := []int{1}
	for i := 1; i <= steps; i++ {
		n := max * i / steps
		if n > grid[len(grid)-1] {
			grid = append(grid, n)
		}
	}
	return grid
}

// Boundary calibrates the ORDO_BOUNDARY of a simulated machine in ns,
// using the same ComputeBoundary code path as real hardware. Results are
// cached per topology name.
func Boundary(t *topology.Machine) float64 {
	if b, ok := boundaryCache[t.Name]; ok {
		return b
	}
	s := &machine.Sampler{Topo: t, Seed: 42}
	stride := 1
	if t.Threads() > 64 {
		stride = t.Threads() / 64
	}
	b, err := core.ComputeBoundary(s, core.CalibrationOptions{Runs: 100, Stride: stride})
	if err != nil {
		panic(fmt.Sprintf("sim: calibrating %s: %v", t.Name, err))
	}
	boundaryCache[t.Name] = float64(b.Global)
	boundaryMinCache[t.Name] = float64(b.Min)
	return float64(b.Global)
}

// BoundaryMin returns the smallest pairwise offset (Table 1's min column).
func BoundaryMin(t *topology.Machine) float64 {
	Boundary(t)
	return boundaryMinCache[t.Name]
}

var (
	boundaryCache    = map[string]float64{}
	boundaryMinCache = map[string]float64{}
)
