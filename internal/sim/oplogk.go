package sim

import (
	"ordo/internal/machine"
	"ordo/internal/topology"
)

// OplogVariant selects the reverse-map implementation under the Exim-like
// workload of Figure 10.
type OplogVariant int

const (
	// Vanilla is the stock kernel: rmap updates lock shared anon_vma
	// chains in place.
	Vanilla OplogVariant = iota
	// Oplog appends to per-core logs stamped with raw (unsynchronized)
	// hardware timestamps.
	Oplog
	// OplogOrdo stamps appends with new_time (§4.4).
	OplogOrdo
)

// String names the variant as in Figure 10's legend.
func (v OplogVariant) String() string {
	switch v {
	case Vanilla:
		return "Vanilla"
	case Oplog:
		return "Oplog"
	case OplogOrdo:
		return "Oplog_ORDO"
	}
	return "?"
}

// OplogConfig parameterizes the Exim kernel.
type OplogConfig struct {
	Topo    *topology.Machine
	Variant OplogVariant

	// MessageWorkNS is the non-rmap cost of delivering one message (the
	// forks' page-table work, the filesystem writes, process teardown —
	// everything Figure 10's caption attributes to the rest of the
	// kernel). Default 1.6 ms, calibrated to Exim's ~480 msg/s/core.
	MessageWorkNS float64

	// RmapOpsPerMessage is how many reverse-map updates one message
	// triggers (forks insert, exits remove). Default 24 in 3 bursts.
	RmapOpsPerMessage int

	// RmapHoldNS is how long the Vanilla rmap holds the parent process's
	// anon_vma chain lock per fork/exit burst. Exim forks every worker
	// from one master process, so every burst serializes on this one
	// chain, whose length (hundreds of VMAs) sets the hold time. Default
	// 5.4µs, which caps Vanilla near the paper's ~60k msg/s plateau.
	RmapHoldNS float64

	// FSHoldNS is the per-burst hold on the filesystem/page-zeroing
	// bottleneck that caps Exim itself regardless of the rmap (§6.3 cites
	// fs ops and page zeroing past 105 cores). Default 2.7µs (~115k
	// msg/s), so the Oplog variants flatten where the paper's do.
	FSHoldNS float64

	DurationNS float64 // default 50 ms
	Seed       int64
}

func (c *OplogConfig) defaults() {
	if c.MessageWorkNS == 0 {
		c.MessageWorkNS = 1_600_000
	}
	if c.RmapOpsPerMessage == 0 {
		c.RmapOpsPerMessage = 24
	}
	if c.RmapHoldNS == 0 {
		c.RmapHoldNS = 5400
	}
	if c.FSHoldNS == 0 {
		c.FSHoldNS = 2700
	}
	if c.DurationNS == 0 {
		c.DurationNS = 50_000_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunOplogAt simulates Exim message delivery at a thread count; the
// returned stats count messages.
func RunOplogAt(cfg OplogConfig, threads int) machine.RunStats {
	cfg.defaults()
	t := cfg.Topo
	s := machine.New(t, cfg.Seed)
	scale := cpuScale(t)
	boundary := Boundary(t)

	rmapChain := s.NewLine() // the master process's anon_vma chain lock
	fsLock := s.NewLine()    // filesystem / page-zeroing serialization

	work := cfg.MessageWorkNS * scale
	bursts := 3
	perBurst := cfg.RmapOpsPerMessage / bursts

	mk := func(id int) machine.Kernel {
		var lastTS uint64
		var burst int
		return machine.KernelFunc(func(c *machine.Core) {
			// One step per fork/exit event: shared-lock and log traffic
			// first (sync ops lead the step per the engine's causality
			// rule), then that slice of the message's local work.
			switch cfg.Variant {
			case Vanilla:
				// Every fork/exit walks and updates the master process's
				// anon_vma chain in place under its lock.
				c.Acquire(rmapChain, cfg.RmapHoldNS*scale)
			case Oplog:
				// Per-core log appends with raw timestamps.
				for op := 0; op < perBurst; op++ {
					c.ReadTSC()
					c.Compute(25 * scale)
				}
			case OplogOrdo:
				// new_time per append: back-to-back appends inside a burst
				// pay the boundary; across bursts the message work
				// amortizes it (§6.3's explanation of the ~4% gap).
				for op := 0; op < perBurst; op++ {
					lastTS = c.WaitClockPast(lastTS + uint64(boundary))
					c.Compute(25 * scale)
				}
			}
			// Filesystem writes and page zeroing serialize independently
			// of the rmap and cap Exim itself.
			c.Acquire(fsLock, cfg.FSHoldNS*scale)
			c.Compute(work / float64(bursts))
			if burst++; burst == bursts {
				burst = 0
				c.Done(1) // message delivered
			}
		})
	}
	return s.Run(threads, cfg.DurationNS, mk)
}

// OplogSweep produces one Figure 10 curve: messages/sec versus threads.
func OplogSweep(cfg OplogConfig, steps int) Series {
	cfg.defaults()
	se := Series{Name: cfg.Variant.String()}
	for _, n := range ThreadGrid(cfg.Topo, steps) {
		st := RunOplogAt(cfg, n)
		se.Points = append(se.Points, Point{Threads: n, Value: st.OpsPerSec()})
	}
	return se
}
