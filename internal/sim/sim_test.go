package sim

import (
	"testing"

	"ordo/internal/db"
	"ordo/internal/topology"
)

// These tests pin the *shapes* of the paper's figures: who wins, roughly
// by how much, and where curves saturate. Absolute values are recorded in
// EXPERIMENTS.md; the assertions here use generous bands so models can be
// retuned without breaking the suite, while still failing if a change
// destroys a headline result.

func TestBoundaryMatchesTable1(t *testing.T) {
	want := map[string][2]float64{
		"Intel Xeon":     {70, 276},
		"Intel Xeon Phi": {90, 270},
		"AMD":            {93, 203},
		"ARM":            {100, 1100},
	}
	for _, topo := range topology.All() {
		b := Boundary(topo)
		min := BoundaryMin(topo)
		w := want[topo.Name]
		if min < w[0]*0.75 || min > w[0]*1.3 {
			t.Errorf("%s: min offset %.0f, want ~%.0f", topo.Name, min, w[0])
		}
		if b < w[1]*0.85 || b > w[1]*1.15 {
			t.Errorf("%s: ORDO_BOUNDARY %.0f, want ~%.0f", topo.Name, b, w[1])
		}
	}
}

func TestFigure8aTimestampCostShape(t *testing.T) {
	x := topology.Xeon()
	c1 := TimestampCost(x, 1)
	cPhys := TimestampCost(x, x.PhysicalCores())
	cAll := TimestampCost(x, x.Threads())
	if c1 < 5 || c1 > 20 {
		t.Errorf("1-thread TSC cost %.1f ns, want ~10 (paper: 10.3)", c1)
	}
	if diff := cPhys - c1; diff < -1 || diff > 1 {
		t.Errorf("TSC cost rose from %.1f to %.1f within physical cores; paper: constant", c1, cPhys)
	}
	if cAll <= cPhys*1.2 {
		t.Errorf("TSC cost %.1f with SMT vs %.1f without; paper: rises with hyperthreads", cAll, cPhys)
	}
	// Phi: ~3x at full 4-way SMT.
	p := topology.Phi()
	r := TimestampCost(p, p.Threads()) / TimestampCost(p, p.PhysicalCores())
	if r < 2 || r > 4 {
		t.Errorf("Phi SMT timestamp penalty %.1fx, paper ~3x", r)
	}
}

func TestFigure8bGenerationShape(t *testing.T) {
	x := topology.Xeon()
	n := x.Threads()
	atomic1 := TimestampGeneration(x, 1, false)
	atomicN := TimestampGeneration(x, n, false)
	ordo1 := TimestampGeneration(x, 1, true)
	ordoN := TimestampGeneration(x, n, true)
	// Ordo stays constant per core; atomic collapses.
	if ordoN < ordo1*0.9 {
		t.Errorf("Ordo generation fell from %.2f to %.2f per core; paper: almost constant", ordo1, ordoN)
	}
	if atomicN > atomic1/50 {
		t.Errorf("atomic generation only fell from %.2f to %.2f per core; paper: collapse", atomic1, atomicN)
	}
	// Paper: Ordo is 17.4–285.5x faster at the highest core count.
	ratio := ordoN / atomicN
	if ratio < 17 || ratio > 300 {
		t.Errorf("Ordo/atomic generation ratio %.1fx at %d threads, paper range 17.4–285.5x", ratio, n)
	}
}

func TestFigure1RLUPhiShape(t *testing.T) {
	p := topology.Phi()
	logical := RLUConfig{Topo: p, UpdateRatio: 0.02}
	ordo := RLUConfig{Topo: p, UpdateRatio: 0.02, Ordo: true}
	// RLU saturates well before max threads...
	lHalf := RunRLUAt(logical, 64).OpsPerUSec()
	lFull := RunRLUAt(logical, 256).OpsPerUSec()
	if lFull > lHalf*1.3 {
		t.Errorf("RLU kept scaling 64→256 (%.1f→%.1f); paper: saturates early", lHalf, lFull)
	}
	// ...while RLU_ORDO keeps scaling and wins big at 256.
	oHalf := RunRLUAt(ordo, 64).OpsPerUSec()
	oFull := RunRLUAt(ordo, 256).OpsPerUSec()
	if oFull < oHalf*1.5 {
		t.Errorf("RLU_ORDO stopped scaling 64→256 (%.1f→%.1f)", oHalf, oFull)
	}
	if oFull < lFull*2 {
		t.Errorf("RLU_ORDO %.1f vs RLU %.1f at 256; paper: several-fold win", oFull, lFull)
	}
}

func TestFigure11UpdateRatios(t *testing.T) {
	x := topology.Xeon()
	for _, upd := range []float64{0.02, 0.40} {
		l := RunRLUAt(RLUConfig{Topo: x, UpdateRatio: upd}, 240).OpsPerUSec()
		o := RunRLUAt(RLUConfig{Topo: x, UpdateRatio: upd, Ordo: true}, 240).OpsPerUSec()
		if o < l*1.5 {
			t.Errorf("update ratio %.0f%%: RLU_ORDO %.1f vs RLU %.1f; paper: ~2x+ win",
				upd*100, o, l)
		}
	}
	// Low core counts: the original RLU is competitive (paper: slightly
	// better because Ordo pays lock re-checks).
	l1 := RunRLUAt(RLUConfig{Topo: x, UpdateRatio: 0.02}, 8).OpsPerUSec()
	o1 := RunRLUAt(RLUConfig{Topo: x, UpdateRatio: 0.02, Ordo: true}, 8).OpsPerUSec()
	if o1 > l1*1.2 {
		t.Errorf("at 8 cores RLU_ORDO %.1f ≫ RLU %.1f; paper: roughly equal or slightly behind", o1, l1)
	}
}

func TestFigure12DeferredStillClockBound(t *testing.T) {
	x := topology.Xeon()
	l := RunRLUAt(RLUConfig{Topo: x, UpdateRatio: 0.40, DeferN: 8}, 240).OpsPerUSec()
	o := RunRLUAt(RLUConfig{Topo: x, UpdateRatio: 0.40, DeferN: 8, Ordo: true}, 240).OpsPerUSec()
	if o < l*1.3 {
		t.Errorf("deferred RLU_ORDO %.1f vs deferred RLU %.1f; paper: clock cost still visible", o, l)
	}
	// Deferral helps the logical version too (vs. no deferral).
	nl := RunRLUAt(RLUConfig{Topo: x, UpdateRatio: 0.40}, 240).OpsPerUSec()
	if l < nl {
		t.Errorf("deferral hurt the logical RLU: %.1f vs %.1f", l, nl)
	}
}

func TestFigure10EximShape(t *testing.T) {
	x := topology.Xeon()
	van240 := RunOplogAt(OplogConfig{Topo: x, Variant: Vanilla}, 240).OpsPerSec()
	van120 := RunOplogAt(OplogConfig{Topo: x, Variant: Vanilla}, 120).OpsPerSec()
	op240 := RunOplogAt(OplogConfig{Topo: x, Variant: Oplog}, 240).OpsPerSec()
	ordo240 := RunOplogAt(OplogConfig{Topo: x, Variant: OplogOrdo}, 240).OpsPerSec()
	// Vanilla flattens past ~120 threads.
	if van240 > van120*1.2 {
		t.Errorf("Vanilla kept scaling 120→240 (%.0f→%.0f)", van120, van240)
	}
	// Paper: Oplog ~1.9x over Vanilla at 240.
	if r := op240 / van240; r < 1.5 || r > 2.6 {
		t.Errorf("Oplog/Vanilla at 240 = %.2fx, paper ~1.9x", r)
	}
	// Paper: Oplog is merely ~4% faster than Oplog_ORDO.
	if r := op240 / ordo240; r < 0.98 || r > 1.12 {
		t.Errorf("Oplog/Oplog_ORDO = %.3fx, paper ~1.04x", r)
	}
}

func TestFigure13YCSBShape(t *testing.T) {
	x := topology.Xeon()
	at := func(p db.Protocol) float64 {
		return RunYCSBAt(YCSBConfig{Topo: x, Protocol: p}, 240).OpsPerUSec()
	}
	occ, occOrdo := at(db.OCC), at(db.OCCOrdo)
	hek, hekOrdo := at(db.Hekaton), at(db.HekatonOrdo)
	silo, tictoc := at(db.Silo), at(db.TicToc)

	// Paper: OCC_ORDO beats OCC 5.6–39.7x; Hekaton_ORDO beats Hekaton
	// 4.1–31.1x (per-arch; allow the union with slack).
	if r := occOrdo / occ; r < 5 || r > 60 {
		t.Errorf("OCC_ORDO/OCC = %.1fx, paper range 5.6–39.7x", r)
	}
	if r := hekOrdo / hek; r < 4 || r > 50 {
		t.Errorf("HEKATON_ORDO/HEKATON = %.1fx, paper range 4.1–31.1x", r)
	}
	// Ordo variants reach the state-of-the-art software bypasses.
	if occOrdo < silo*0.8 || occOrdo < tictoc*0.8 {
		t.Errorf("OCC_ORDO %.1f below Silo %.1f / TicToc %.1f; paper: comparable", occOrdo, silo, tictoc)
	}
	// Hekaton_ORDO trails the single-version protocols (paper: 1.2–1.3x
	// slower) but not by much.
	if r := occOrdo / hekOrdo; r < 1.05 || r > 1.6 {
		t.Errorf("OCC_ORDO/HEKATON_ORDO = %.2fx, paper 1.2–1.3x", r)
	}
}

func TestFigure14TPCCShape(t *testing.T) {
	x := topology.Xeon()
	at := func(p db.Protocol) TPCCResult {
		return RunTPCCAt(TPCCConfig{Topo: x, Protocol: p}, 240)
	}
	occOrdo, tictoc := at(db.OCCOrdo), at(db.TicToc)
	hek, hekOrdo := at(db.Hekaton), at(db.HekatonOrdo)
	// Paper: OCC_ORDO 1.24x faster than TicToc.
	if r := occOrdo.OpsPerUSec() / tictoc.OpsPerUSec(); r < 1.05 || r > 1.5 {
		t.Errorf("OCC_ORDO/TicToc = %.2fx, paper 1.24x", r)
	}
	// Paper: Hekaton_ORDO ~1.95x over Hekaton, with lower aborts.
	if r := hekOrdo.OpsPerUSec() / hek.OpsPerUSec(); r < 1.5 || r > 3.5 {
		t.Errorf("HEKATON_ORDO/HEKATON = %.2fx, paper 1.95x", r)
	}
	if hekOrdo.AbortRate() >= occOrdo.AbortRate() {
		t.Errorf("Hekaton_ORDO abort rate %.2f >= OCC_ORDO %.2f; paper: MVCC aborts less",
			hekOrdo.AbortRate(), occOrdo.AbortRate())
	}
	// Abort rates land in the paper's 0–0.6 band and grow with threads.
	small := RunTPCCAt(TPCCConfig{Topo: x, Protocol: db.OCCOrdo}, 60)
	if occOrdo.AbortRate() > 0.6 || occOrdo.AbortRate() < small.AbortRate() {
		t.Errorf("abort rates out of shape: 60=%.2f 240=%.2f", small.AbortRate(), occOrdo.AbortRate())
	}
}

func TestFigure15STAMPShape(t *testing.T) {
	x := topology.Xeon()
	run := func(p STAMPProfile, ordo bool) TL2Result {
		return RunTL2At(TL2Config{Topo: x, Profile: p, Ordo: ordo}, 240)
	}
	for _, prof := range STAMPProfiles() {
		tl2 := run(prof, false)
		ordo := run(prof, true)
		r := ordo.Speedup / tl2.Speedup
		switch prof.Name {
		case "kmeans", "vacation":
			// Short / txn-intensive: big wins.
			if r < 2 {
				t.Errorf("%s: TL2_ORDO/TL2 = %.2fx, want strong win", prof.Name, r)
			}
		case "labyrinth":
			// Paper: 2–3.8x with far fewer aborts; accept ≥1.4x.
			if r < 1.4 {
				t.Errorf("labyrinth: ratio %.2fx, paper 2–3.8x", r)
			}
		case "genome", "ssca2":
			if r < 1.2 {
				t.Errorf("%s: ratio %.2fx, want a visible win", prof.Name, r)
			}
		case "intruder":
			// Near-parity at full scale (paper: Ordo loses ~10% past 60).
			if r < 0.7 || r > 1.6 {
				t.Errorf("intruder: ratio %.2fx, want near parity", r)
			}
		}
		// Single-thread: STM overhead puts speedup below 1 everywhere.
		one := run(prof, false)
		_ = one
		s1 := RunTL2At(TL2Config{Topo: x, Profile: prof}, 1).Speedup
		if s1 >= 1 {
			t.Errorf("%s: 1-thread speedup %.2f >= 1; STM overhead must show", prof.Name, s1)
		}
	}
}

func TestFigure16BoundarySensitivity(t *testing.T) {
	x := topology.Xeon()
	base := RunRLUAt(RLUConfig{Topo: x, UpdateRatio: 0.02, Ordo: true}, 240).OpsPerUSec()
	for _, scale := range []float64{0.125, 0.25, 0.5, 2, 4, 8} {
		v := RunRLUAt(RLUConfig{Topo: x, UpdateRatio: 0.02, Ordo: true, BoundaryScale: scale}, 240).OpsPerUSec()
		if rel := (v - base) / base; rel < -0.05 || rel > 0.05 {
			t.Errorf("boundary x%.3f: throughput changed %.1f%%; paper: ±3%%", scale, rel*100)
		}
	}
}

func TestThreadGridShape(t *testing.T) {
	x := topology.Xeon()
	g := ThreadGrid(x, 8)
	if g[0] != 1 {
		t.Fatalf("grid must start at 1, got %v", g)
	}
	if g[len(g)-1] != 240 {
		t.Fatalf("grid must end at max threads, got %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not increasing: %v", g)
		}
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Name: "x", Points: []Point{{Threads: 1, Value: 2}, {Threads: 8, Value: 16}}}
	if v, ok := s.At(8); !ok || v != 16 {
		t.Errorf("At(8) = %v, %v", v, ok)
	}
	if _, ok := s.At(4); ok {
		t.Error("At(4) found a missing point")
	}
	if s.Last() != 16 {
		t.Errorf("Last() = %v", s.Last())
	}
	if (Series{}).Last() != 0 {
		t.Error("empty Series Last() != 0")
	}
}

func TestDeterministicRuns(t *testing.T) {
	x := topology.Xeon()
	a := RunRLUAt(RLUConfig{Topo: x, UpdateRatio: 0.02, Ordo: true}, 60)
	b := RunRLUAt(RLUConfig{Topo: x, UpdateRatio: 0.02, Ordo: true}, 60)
	if a.Ops != b.Ops {
		t.Fatalf("identical sim configs produced %d vs %d ops", a.Ops, b.Ops)
	}
}

func TestCitrusTreeAlmostTwoX(t *testing.T) {
	// §6.4: "we observe the same improvement with RLU_ORDO (almost 2×) for
	// the citrus tree benchmark, involving complex update operations,
	// across the architectures."
	for _, topo := range []*topology.Machine{topology.Xeon(), topology.ARM()} {
		n := topo.Threads()
		l := RunRLUAt(CitrusConfig(topo, 0.10, false), n).OpsPerUSec()
		o := RunRLUAt(CitrusConfig(topo, 0.10, true), n).OpsPerUSec()
		if r := o / l; r < 1.5 {
			t.Errorf("%s citrus: RLU_ORDO/RLU = %.2fx, want ~2x", topo.Name, r)
		}
	}
}
