package core

import (
	"errors"
	"math/rand"
	"testing"
)

// rttSampler models a machine with asymmetric one-way software paths, the
// condition under which NTP-style estimation breaks.
type rttSampler struct {
	skewSampler
	asym float64 // forward leg cheaper by asym/2, backward dearer
}

func (s *rttSampler) MeasureRTT(a, b, runs int) (int64, int64, error) {
	lat := float64(s.delay[a][b])
	skew := float64(s.skew[b] - s.skew[a])
	bestRTT := int64(1<<62 - 1)
	var bestTheta int64
	for i := 0; i < runs; i++ {
		var nf, nb float64
		if s.noise > 0 {
			nf = float64(s.rng.Int63n(s.noise + 1))
			nb = float64(s.rng.Int63n(s.noise + 1))
		}
		fwd := lat - s.asym/2 + nf
		back := lat + s.asym/2 + nb
		if rt := int64(fwd + back); rt < bestRTT {
			bestRTT = rt
			bestTheta = int64(fwd + skew)
		}
	}
	return bestTheta, bestRTT, nil
}

// TestNTPEstimatorUnderestimatesSkew is the DESIGN.md §5 ablation: with
// asymmetric one-way delays, the RTT/2 correction eats part of the true
// offset, so the NTP-derived window can be SMALLER than the physical
// skew — an unsound ordering window — while Ordo's estimator stays sound.
func TestNTPEstimatorUnderestimatesSkew(t *testing.T) {
	skew := []int64{0, 300} // 300 ns physical skew
	s := &rttSampler{
		skewSampler: *newSkewSampler(skew, 150, 0, 1),
		asym:        80, // forward path 80 ns cheaper than backward
	}
	s.rng = rand.New(rand.NewSource(7))

	ntp, err := NTPBoundary(s, CalibrationOptions{Runs: 50})
	if err != nil {
		t.Fatal(err)
	}
	ord, err := ComputeBoundary(&s.skewSampler, CalibrationOptions{Runs: 50})
	if err != nil {
		t.Fatal(err)
	}
	phys := maxAbsSkewDiff(skew)
	// The ablation's point: NTP lands BELOW the physical skew...
	if int64(ntp.Global) >= phys {
		t.Fatalf("NTP boundary %d >= physical skew %d; asymmetry should break it",
			ntp.Global, phys)
	}
	// ...while Ordo's estimator never does.
	if int64(ord.Global) < phys {
		t.Fatalf("Ordo boundary %d < physical skew %d — soundness broken", ord.Global, phys)
	}
}

func TestNTPBoundaryWithSymmetricPathsIsTight(t *testing.T) {
	// With perfectly symmetric delays and no noise, NTP recovers the skew
	// exactly — the case hardware cannot promise but the estimator's
	// advertised behaviour.
	skew := []int64{0, 120}
	s := &rttSampler{skewSampler: *newSkewSampler(skew, 200, 0, 1)}
	s.rng = rand.New(rand.NewSource(3))
	b, err := NTPBoundary(s, CalibrationOptions{Runs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if int64(b.Global) != 120 {
		t.Fatalf("symmetric NTP boundary = %d, want exactly 120", b.Global)
	}
}

func TestNTPBoundaryNoCPUs(t *testing.T) {
	s := &rttSampler{}
	if _, err := NTPBoundary(s, CalibrationOptions{}); !errors.Is(err, ErrNoCPUs) {
		t.Fatalf("err = %v, want ErrNoCPUs", err)
	}
}
