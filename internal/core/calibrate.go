package core

import (
	"errors"
	"fmt"

	"ordo/internal/topology"
)

// PairSampler measures clock offsets between pairs of CPUs using the
// one-way-delay protocol of the paper's Figure 4: the writer CPU publishes
// its clock value through a shared cache line and the reader CPU subtracts
// that value from its own clock upon observing the write. The measurement
// therefore equals (one-way message delay) + (reader skew − writer skew),
// which is strictly greater than the physical skew in at least one of the
// two directions — the property the boundary computation relies on.
type PairSampler interface {
	// NumCPUs returns the number of distinct clock domains (hardware
	// threads) to calibrate across.
	NumCPUs() int

	// MeasureOffset runs the one-way protocol `runs` times with the writer
	// on CPU `writer` and the reader on CPU `reader`, returning the minimum
	// observed (reader clock − written writer clock) in ticks. The minimum
	// over many runs strips scheduling noise, interrupts and coherence
	// variance, leaving delay + skew.
	MeasureOffset(writer, reader, runs int) (int64, error)
}

// CalibrationOptions tunes ComputeBoundary.
type CalibrationOptions struct {
	// Runs is the number of protocol iterations per direction per pair;
	// the minimum across runs is kept. Defaults to 1000.
	Runs int

	// Stride subsamples CPUs (every Stride-th CPU participates) to bound
	// the O(N²) pair walk on very large machines. Defaults to 1 (all
	// CPUs). The boundary stays correct as long as the sampled set covers
	// every clock-reset domain (in practice, every socket).
	Stride int

	// MaxPairs, if positive, caps the number of unordered {i,j} CPU pairs
	// measured after striding; each pair costs two ordered measurements
	// (one per direction), so Boundary.Pairs ≤ 2*MaxPairs. When Topology
	// is set, pairs are visited so that every (socket_i, socket_j)
	// combination is covered before any combination repeats, keeping
	// cross-socket skew visible under a tight cap; without topology, pairs
	// are visited in index order and a cap may miss distant sockets. Zero
	// means unlimited.
	MaxPairs int

	// Topology, if non-nil, describes the socket layout of the sampled
	// CPUs (CPU index → socket via Topology.Socket). It only affects the
	// order pairs are visited in, which matters when MaxPairs truncates
	// the walk.
	Topology *topology.Machine
}

func (o *CalibrationOptions) defaults() {
	if o.Runs <= 0 {
		o.Runs = 1000
	}
	if o.Stride <= 0 {
		o.Stride = 1
	}
}

// Boundary is the result of a calibration pass.
type Boundary struct {
	// Global is the ORDO_BOUNDARY: the maximum over all sampled pairs of
	// max(δij, δji), guaranteed ≥ the largest physical clock offset.
	Global Time

	// Min is the smallest pairwise measured offset seen — reported for
	// diagnostics (Table 1 of the paper reports both min and max).
	Min Time

	// Pairs is the number of ordered (writer, reader) measurements taken:
	// two per unordered {i,j} pair visited, so a calibration capped at
	// CalibrationOptions.MaxPairs reports Pairs ≤ 2*MaxPairs.
	Pairs int

	// CPUs is the number of clock domains sampled.
	CPUs int
}

// ErrNoCPUs is returned when the sampler exposes fewer than one CPU.
var ErrNoCPUs = errors.New("ordo: sampler exposes no CPUs")

// ComputeBoundary runs the paper's Figure 4 algorithm: for every unordered
// CPU pair {i, j} it measures the one-way offset in both directions, takes
// the per-pair maximum (at least one direction always over-approximates the
// physical skew), and returns the global maximum as the ORDO_BOUNDARY.
//
// With a single CPU there are no pairs; the boundary is 0 and every
// comparison is exact, which is trivially correct.
func ComputeBoundary(s PairSampler, opts CalibrationOptions) (Boundary, error) {
	opts.defaults()
	n := s.NumCPUs()
	if n < 1 {
		return Boundary{}, ErrNoCPUs
	}
	cpus := make([]int, 0, (n+opts.Stride-1)/opts.Stride)
	for c := 0; c < n; c += opts.Stride {
		cpus = append(cpus, c)
	}
	b := Boundary{CPUs: len(cpus)}
	pairs := orderPairs(cpus, opts.Topology)
	if opts.MaxPairs > 0 && len(pairs) > opts.MaxPairs {
		pairs = pairs[:opts.MaxPairs]
	}
	var (
		globalMax int64
		globalMin int64
		haveAny   bool
	)
	for _, p := range pairs {
		i, j := p[0], p[1]
		dij, err := s.MeasureOffset(i, j, opts.Runs)
		if err != nil {
			return Boundary{}, fmt.Errorf("ordo: measuring offset %d->%d: %w", i, j, err)
		}
		dji, err := s.MeasureOffset(j, i, opts.Runs)
		if err != nil {
			return Boundary{}, fmt.Errorf("ordo: measuring offset %d->%d: %w", j, i, err)
		}
		b.Pairs += 2
		pair := dij
		if dji > pair {
			pair = dji
		}
		if pair > globalMax {
			globalMax = pair
		}
		low := dij
		if dji < low {
			low = dji
		}
		if !haveAny || low < globalMin {
			globalMin = low
			haveAny = true
		}
	}
	if globalMax < 0 {
		// Cannot happen with real delays (δij + δji = round trip ≥ 0 so the
		// max of the two is ≥ 0), but a hostile sampler could produce it;
		// clamp so the boundary type stays meaningful.
		globalMax = 0
	}
	if globalMin < 0 {
		globalMin = 0
	}
	b.Global = Time(globalMax)
	b.Min = Time(globalMin)
	return b, nil
}

// orderPairs returns every unordered {i,j} pair of cpus as (CPU id, CPU id)
// tuples. With a topology, pairs are emitted round-robin across the socket
// combinations they belong to — the k-th pair of every (si,sj) combination
// comes before the (k+1)-th pair of any — so a MaxPairs prefix covers all
// socket combinations before revisiting any of them. The largest clock
// offsets are between sockets (RESET arrives per socket), which is what
// makes a capped walk sound on multi-socket machines.
func orderPairs(cpus []int, topo *topology.Machine) [][2]int {
	n := len(cpus)
	all := make([][2]int, 0, n*(n-1)/2)
	for ii := 0; ii < n; ii++ {
		for jj := ii + 1; jj < n; jj++ {
			all = append(all, [2]int{cpus[ii], cpus[jj]})
		}
	}
	if topo == nil || len(all) == 0 {
		return all
	}
	type combo struct{ a, b int }
	var order []combo // first-appearance order keeps the walk deterministic
	buckets := make(map[combo][][2]int)
	for _, p := range all {
		si, sj := topo.Socket(p[0]), topo.Socket(p[1])
		if si > sj {
			si, sj = sj, si
		}
		k := combo{si, sj}
		if _, ok := buckets[k]; !ok {
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], p)
	}
	out := make([][2]int, 0, len(all))
	for round := 0; len(out) < len(all); round++ {
		for _, k := range order {
			if round < len(buckets[k]) {
				out = append(out, buckets[k][round])
			}
		}
	}
	return out
}
