package core

import (
	"errors"
	"fmt"
)

// PairSampler measures clock offsets between pairs of CPUs using the
// one-way-delay protocol of the paper's Figure 4: the writer CPU publishes
// its clock value through a shared cache line and the reader CPU subtracts
// that value from its own clock upon observing the write. The measurement
// therefore equals (one-way message delay) + (reader skew − writer skew),
// which is strictly greater than the physical skew in at least one of the
// two directions — the property the boundary computation relies on.
type PairSampler interface {
	// NumCPUs returns the number of distinct clock domains (hardware
	// threads) to calibrate across.
	NumCPUs() int

	// MeasureOffset runs the one-way protocol `runs` times with the writer
	// on CPU `writer` and the reader on CPU `reader`, returning the minimum
	// observed (reader clock − written writer clock) in ticks. The minimum
	// over many runs strips scheduling noise, interrupts and coherence
	// variance, leaving delay + skew.
	MeasureOffset(writer, reader, runs int) (int64, error)
}

// CalibrationOptions tunes ComputeBoundary.
type CalibrationOptions struct {
	// Runs is the number of protocol iterations per direction per pair;
	// the minimum across runs is kept. Defaults to 1000.
	Runs int

	// Stride subsamples CPUs (every Stride-th CPU participates) to bound
	// the O(N²) pair walk on very large machines. Defaults to 1 (all
	// CPUs). The boundary stays correct as long as the sampled set covers
	// every clock-reset domain (in practice, every socket).
	Stride int

	// MaxPairs, if positive, caps the number of (i,j) pairs visited after
	// striding; pairs are then chosen to still cover all (si,sj) socket
	// combinations first. Zero means unlimited.
	MaxPairs int
}

func (o *CalibrationOptions) defaults() {
	if o.Runs <= 0 {
		o.Runs = 1000
	}
	if o.Stride <= 0 {
		o.Stride = 1
	}
}

// Boundary is the result of a calibration pass.
type Boundary struct {
	// Global is the ORDO_BOUNDARY: the maximum over all sampled pairs of
	// max(δij, δji), guaranteed ≥ the largest physical clock offset.
	Global Time

	// Min is the smallest pairwise measured offset seen — reported for
	// diagnostics (Table 1 of the paper reports both min and max).
	Min Time

	// Pairs is the number of ordered (writer, reader) measurements taken.
	Pairs int

	// CPUs is the number of clock domains sampled.
	CPUs int
}

// ErrNoCPUs is returned when the sampler exposes fewer than one CPU.
var ErrNoCPUs = errors.New("ordo: sampler exposes no CPUs")

// ComputeBoundary runs the paper's Figure 4 algorithm: for every unordered
// CPU pair {i, j} it measures the one-way offset in both directions, takes
// the per-pair maximum (at least one direction always over-approximates the
// physical skew), and returns the global maximum as the ORDO_BOUNDARY.
//
// With a single CPU there are no pairs; the boundary is 0 and every
// comparison is exact, which is trivially correct.
func ComputeBoundary(s PairSampler, opts CalibrationOptions) (Boundary, error) {
	opts.defaults()
	n := s.NumCPUs()
	if n < 1 {
		return Boundary{}, ErrNoCPUs
	}
	cpus := make([]int, 0, (n+opts.Stride-1)/opts.Stride)
	for c := 0; c < n; c += opts.Stride {
		cpus = append(cpus, c)
	}
	b := Boundary{CPUs: len(cpus)}
	var (
		globalMax int64
		globalMin int64
		haveAny   bool
	)
	for ii := 0; ii < len(cpus); ii++ {
		for jj := ii + 1; jj < len(cpus); jj++ {
			if opts.MaxPairs > 0 && b.Pairs/2 >= opts.MaxPairs {
				break
			}
			i, j := cpus[ii], cpus[jj]
			dij, err := s.MeasureOffset(i, j, opts.Runs)
			if err != nil {
				return Boundary{}, fmt.Errorf("ordo: measuring offset %d->%d: %w", i, j, err)
			}
			dji, err := s.MeasureOffset(j, i, opts.Runs)
			if err != nil {
				return Boundary{}, fmt.Errorf("ordo: measuring offset %d->%d: %w", j, i, err)
			}
			b.Pairs += 2
			pair := dij
			if dji > pair {
				pair = dji
			}
			if pair > globalMax {
				globalMax = pair
			}
			low := dij
			if dji < low {
				low = dji
			}
			if !haveAny || low < globalMin {
				globalMin = low
				haveAny = true
			}
		}
	}
	if globalMax < 0 {
		// Cannot happen with real delays (δij + δji = round trip ≥ 0 so the
		// max of the two is ≥ 0), but a hostile sampler could produce it;
		// clamp so the boundary type stays meaningful.
		globalMax = 0
	}
	if globalMin < 0 {
		globalMin = 0
	}
	b.Global = Time(globalMax)
	b.Min = Time(globalMin)
	return b, nil
}
