package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ordo/internal/affinity"
	"ordo/internal/tsc"
)

// Hardware is the invariant hardware clock of the machine the process is
// running on (RDTSCP on amd64, monotonic-clock fallback elsewhere).
var Hardware Clock = ClockFunc(func() Time { return Time(tsc.Read()) })

// line is the shared cache line through which the writer CPU publishes its
// clock value to the reader CPU. Padding keeps the two fields the only
// occupants of their line so the measurement includes exactly one
// cache-line transfer, the fastest message delivery the machine offers.
type line struct {
	clock atomic.Uint64
	_     [56]byte
	round atomic.Uint64
	_     [56]byte
}

// HardwareSampler implements PairSampler over the real machine: for each
// measurement it pins one OS thread to the writer CPU and one to the reader
// CPU and runs the Figure 4 one-way-delay protocol across a shared cache
// line.
type HardwareSampler struct {
	// CPUs is the number of hardware threads to calibrate across;
	// zero means runtime.NumCPU().
	CPUs int

	// AllowUnpinned lets calibration proceed with OS-thread locking only
	// when sched_setaffinity is unavailable. Scheduling noise then inflates
	// the measured offsets, which keeps the boundary conservative (larger),
	// never incorrect.
	AllowUnpinned bool
}

// NumCPUs implements PairSampler.
func (h *HardwareSampler) NumCPUs() int {
	if h.CPUs > 0 {
		return h.CPUs
	}
	return runtime.NumCPU()
}

// MeasureOffset implements PairSampler: minimum over `runs` of
// (reader clock at observation − writer clock at publication).
func (h *HardwareSampler) MeasureOffset(writer, reader, runs int) (int64, error) {
	if runs <= 0 {
		runs = 1
	}
	var (
		sh      line
		minD    = int64(1<<63 - 1)
		wg      sync.WaitGroup
		werr    error
		rerr    error
		spinCap = 1 << 14 // Gosched interval: keeps single-CPU hosts live
	)
	wg.Add(2)

	// Writer: waits for the reader to open round r, then publishes its clock.
	go func() {
		defer wg.Done()
		restore, err := pinOrLock(writer, h.AllowUnpinned)
		if err != nil {
			werr = err
			// Unblock the reader by publishing garbage rounds.
			for r := 1; r <= runs; r++ {
				for sh.round.Load() != uint64(r) {
					runtime.Gosched()
				}
				sh.clock.Store(^uint64(0))
			}
			return
		}
		defer restore()
		for r := 1; r <= runs; r++ {
			spins := 0
			for sh.round.Load() != uint64(r) {
				if spins++; spins%spinCap == 0 {
					runtime.Gosched()
				}
			}
			ts := tsc.Read()
			if ts == 0 {
				ts = 1
			}
			sh.clock.Store(ts)
		}
	}()

	// Reader: opens the round, spins for the publication, subtracts.
	go func() {
		defer wg.Done()
		restore, err := pinOrLock(reader, h.AllowUnpinned)
		if err != nil {
			rerr = err
			restore = func() {}
		}
		defer restore()
		for r := 1; r <= runs; r++ {
			sh.clock.Store(0)
			sh.round.Store(uint64(r))
			spins := 0
			var v uint64
			for {
				if v = sh.clock.Load(); v != 0 {
					break
				}
				if spins++; spins%spinCap == 0 {
					runtime.Gosched()
				}
			}
			d := int64(tsc.Read()) - int64(v)
			if rerr == nil && werr == nil && d < minD {
				minD = d
			}
		}
	}()

	wg.Wait()
	if werr != nil {
		return 0, fmt.Errorf("writer cpu %d: %w", writer, werr)
	}
	if rerr != nil {
		return 0, fmt.Errorf("reader cpu %d: %w", reader, rerr)
	}
	return minD, nil
}

func pinOrLock(cpu int, allowUnpinned bool) (func(), error) {
	restore, err := affinity.Pin(cpu)
	if err == nil {
		return restore, nil
	}
	if !allowUnpinned {
		return func() {}, err
	}
	runtime.LockOSThread()
	return runtime.UnlockOSThread, nil
}

// CalibrateHardware measures the ORDO_BOUNDARY of the host machine and
// returns an Ordo primitive over the hardware clock. It is the one-call
// entry point for real deployments:
//
//	o, _, err := core.CalibrateHardware(core.CalibrationOptions{})
func CalibrateHardware(opts CalibrationOptions) (*Ordo, Boundary, error) {
	s := &HardwareSampler{AllowUnpinned: true}
	b, err := ComputeBoundary(s, opts)
	if err != nil {
		return nil, Boundary{}, err
	}
	return New(Hardware, b.Global), b, nil
}
