package core

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"ordo/internal/affinity"
	"ordo/internal/tsc"
)

// Hardware is the invariant hardware clock of the machine the process is
// running on (RDTSCP on amd64, monotonic-clock fallback elsewhere).
var Hardware Clock = ClockFunc(func() Time { return Time(tsc.Read()) })

// line is the shared cache line through which the writer CPU publishes its
// clock value to the reader CPU. Padding keeps the two fields the only
// occupants of their line so the measurement includes exactly one
// cache-line transfer, the fastest message delivery the machine offers.
type line struct {
	clock atomic.Uint64
	_     [56]byte
	round atomic.Uint64
	_     [56]byte
}

// HardwareSampler implements PairSampler over the real machine: for each
// measurement it pins one OS thread to the writer CPU and one to the reader
// CPU and runs the Figure 4 one-way-delay protocol across a shared cache
// line.
type HardwareSampler struct {
	// CPUs is the number of hardware threads to calibrate across;
	// zero means runtime.NumCPU().
	CPUs int

	// AllowUnpinned lets calibration proceed with OS-thread locking only
	// when sched_setaffinity is unavailable. Scheduling noise then inflates
	// the measured offsets, which keeps the boundary conservative (larger),
	// never incorrect.
	AllowUnpinned bool

	// pin overrides thread pinning in tests; nil means pinOrLock.
	pin func(cpu int, allowUnpinned bool) (func(), error)
}

func (h *HardwareSampler) pinFunc() func(int, bool) (func(), error) {
	if h.pin != nil {
		return h.pin
	}
	return pinOrLock
}

// NumCPUs implements PairSampler.
func (h *HardwareSampler) NumCPUs() int {
	if h.CPUs > 0 {
		return h.CPUs
	}
	return runtime.NumCPU()
}

// skipSample is the sentinel a writer that failed to pin publishes instead
// of a clock value: the protocol must still complete every round (the peer
// is spinning), but the reader must discard the sample. A real counter
// cannot reach this value within the uptime of any machine.
const skipSample = ^uint64(0)

// MeasureOffset implements PairSampler: minimum over `runs` of
// (reader clock at observation − writer clock at publication).
//
// Each side communicates its pinning error back over a channel so the two
// goroutines share nothing but the measurement cache line — the protocol
// itself is the only cross-goroutine traffic, and the error/result paths
// are race-free by construction (go test -race covers the failing-pinner
// paths in hardware_test.go).
func (h *HardwareSampler) MeasureOffset(writer, reader, runs int) (int64, error) {
	if runs <= 0 {
		runs = 1
	}
	const spinCap = 1 << 14 // Gosched interval: keeps single-CPU hosts live
	pin := h.pinFunc()
	var sh line
	werrCh := make(chan error, 1)
	type readerResult struct {
		min int64
		err error
	}
	resCh := make(chan readerResult, 1)

	// Writer: waits for the reader to open round r, then publishes its
	// clock — or the skip sentinel if it could not pin, so the reader both
	// terminates and knows to discard the round.
	go func() {
		restore, err := pin(writer, h.AllowUnpinned)
		if err != nil {
			for r := 1; r <= runs; r++ {
				for sh.round.Load() != uint64(r) {
					runtime.Gosched()
				}
				sh.clock.Store(skipSample)
			}
			werrCh <- err
			return
		}
		for r := 1; r <= runs; r++ {
			spins := 0
			for sh.round.Load() != uint64(r) {
				if spins++; spins%spinCap == 0 {
					runtime.Gosched()
				}
			}
			ts := tsc.Read()
			if ts == 0 || ts == skipSample {
				ts = 1
			}
			sh.clock.Store(ts)
		}
		restore()
		werrCh <- nil
	}()

	// Reader: opens the round, spins for the publication, subtracts. A
	// reader that failed to pin still runs the full protocol (the writer is
	// spinning on our round openings) and reports its error afterwards.
	go func() {
		restore, err := pin(reader, h.AllowUnpinned)
		if err != nil {
			restore = func() {}
		}
		minD := int64(1<<63 - 1)
		for r := 1; r <= runs; r++ {
			sh.clock.Store(0)
			sh.round.Store(uint64(r))
			spins := 0
			var v uint64
			for {
				if v = sh.clock.Load(); v != 0 {
					break
				}
				if spins++; spins%spinCap == 0 {
					runtime.Gosched()
				}
			}
			if v == skipSample {
				continue // writer could not pin; sample explicitly skipped
			}
			if d := int64(tsc.Read()) - int64(v); d < minD {
				minD = d
			}
		}
		restore()
		resCh <- readerResult{min: minD, err: err}
	}()

	werr := <-werrCh
	res := <-resCh
	if werr != nil {
		return 0, fmt.Errorf("writer cpu %d: %w", writer, werr)
	}
	if res.err != nil {
		return 0, fmt.Errorf("reader cpu %d: %w", reader, res.err)
	}
	return res.min, nil
}

func pinOrLock(cpu int, allowUnpinned bool) (func(), error) {
	restore, err := affinity.Pin(cpu)
	if err == nil {
		return restore, nil
	}
	if !allowUnpinned {
		return func() {}, err
	}
	runtime.LockOSThread()
	return runtime.UnlockOSThread, nil
}

// CalibrateHardware measures the ORDO_BOUNDARY of the host machine and
// returns an Ordo primitive over the hardware clock. It is the one-call
// entry point for real deployments:
//
//	o, _, err := core.CalibrateHardware(core.CalibrationOptions{})
func CalibrateHardware(opts CalibrationOptions) (*Ordo, Boundary, error) {
	s := &HardwareSampler{AllowUnpinned: true}
	b, err := ComputeBoundary(s, opts)
	if err != nil {
		return nil, Boundary{}, err
	}
	return New(Hardware, b.Global), b, nil
}
