package core

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

// fakeClock is a manually advanced clock for deterministic API tests.
type fakeClock struct{ t atomic.Uint64 }

func (f *fakeClock) Now() Time        { return Time(f.t.Load()) }
func (f *fakeClock) advance(d uint64) { f.t.Add(d) }

// tickingClock advances by `step` on every read, like a running counter.
type tickingClock struct {
	t    atomic.Uint64
	step uint64
}

func (c *tickingClock) Now() Time { return Time(c.t.Add(c.step)) }

func TestNewPanicsOnNilClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil, 0) did not panic")
		}
	}()
	New(nil, 0)
}

func TestSetBoundaryVisibleToComparisons(t *testing.T) {
	o := New(&fakeClock{}, 100)
	if o.CmpTime(200, 0) != After {
		t.Fatal("200 vs 0 under boundary 100 should be After")
	}
	o.SetBoundary(300)
	if o.Boundary() != 300 {
		t.Fatalf("Boundary() = %d after SetBoundary(300)", o.Boundary())
	}
	if o.CmpTime(200, 0) != Uncertain {
		t.Fatal("200 vs 0 under widened boundary 300 should be Uncertain")
	}
}

// TestSetBoundaryConcurrentWithHotPath: widening must never interrupt or
// corrupt concurrent CmpTime/NewTime callers (run under -race).
func TestSetBoundaryConcurrentWithHotPath(t *testing.T) {
	clk := &tickingClock{step: 50}
	o := New(clk, 100)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var prev Time
		for {
			select {
			case <-stop:
				return
			default:
			}
			prev = o.NewTime(prev)
			o.CmpTime(prev, o.GetTime())
		}
	}()
	for b := Time(100); b <= 5000; b += 100 {
		o.SetBoundary(b)
	}
	close(stop)
	<-done
	if o.Boundary() != 5000 {
		t.Fatalf("Boundary() = %d, want 5000", o.Boundary())
	}
}

func TestCmpTimeCertainty(t *testing.T) {
	o := New(&fakeClock{}, 100)
	tests := []struct {
		t1, t2 Time
		want   int
	}{
		{0, 0, Uncertain},
		{50, 0, Uncertain},   // within boundary
		{100, 0, Uncertain},  // exactly boundary: still uncertain
		{101, 0, After},      // strictly past boundary
		{0, 100, Uncertain},  // symmetric
		{0, 101, Before},     //
		{1000, 2000, Before}, //
		{2000, 1000, After},  //
		{1000, 1100, Uncertain},
		{1000, 1101, Before},
	}
	for _, tc := range tests {
		if got := o.CmpTime(tc.t1, tc.t2); got != tc.want {
			t.Errorf("CmpTime(%d, %d) = %d, want %d", tc.t1, tc.t2, got, tc.want)
		}
	}
}

func TestCmpTimeZeroBoundaryIsExact(t *testing.T) {
	o := New(&fakeClock{}, 0)
	if got := o.CmpTime(5, 4); got != After {
		t.Errorf("CmpTime(5,4) = %d, want After", got)
	}
	if got := o.CmpTime(4, 5); got != Before {
		t.Errorf("CmpTime(4,5) = %d, want Before", got)
	}
	if got := o.CmpTime(4, 4); got != Uncertain {
		t.Errorf("CmpTime(4,4) = %d, want Uncertain (equal values are never ordered)", got)
	}
}

func TestCmpTimeAntisymmetry(t *testing.T) {
	// Property: CmpTime(a, b) == -CmpTime(b, a) for all a, b, boundary.
	f := func(a, b uint64, boundary uint32) bool {
		o := New(&fakeClock{}, Time(boundary))
		// Keep values away from wraparound; the API documents that wrap
		// handling is the embedding algorithm's job.
		a %= 1 << 62
		b %= 1 << 62
		return o.CmpTime(Time(a), Time(b)) == -o.CmpTime(Time(b), Time(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpTimeCertainImpliesSeparation(t *testing.T) {
	// Property: a certain result implies |a-b| > boundary.
	f := func(a, b uint64, boundary uint32) bool {
		a %= 1 << 62
		b %= 1 << 62
		o := New(&fakeClock{}, Time(boundary))
		r := o.CmpTime(Time(a), Time(b))
		if r == Uncertain {
			return true
		}
		var diff uint64
		if a > b {
			diff = a - b
		} else {
			diff = b - a
		}
		return diff > uint64(boundary)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewTimeExceedsBoundary(t *testing.T) {
	c := &tickingClock{step: 7}
	o := New(c, 100)
	base := o.GetTime()
	nt := o.NewTime(base)
	if nt <= base+100 {
		t.Fatalf("NewTime(%d) = %d, want > %d", base, nt, base+100)
	}
	if o.CmpTime(nt, base) != After {
		t.Fatalf("NewTime result %d not certainly After base %d", nt, base)
	}
}

func TestNewTimeSpinsUntilClockPasses(t *testing.T) {
	c := &tickingClock{step: 1}
	o := New(c, 50)
	start := Time(c.t.Load())
	nt := o.NewTime(start)
	// step=1 per read: the spin must have issued > 50 reads.
	if nt <= start+50 {
		t.Fatalf("NewTime returned %d, not past boundary from %d", nt, start)
	}
}

func TestNewTimeChainMonotonic(t *testing.T) {
	c := &tickingClock{step: 3}
	o := New(c, 64)
	prev := o.GetTime()
	for i := 0; i < 100; i++ {
		next := o.NewTime(prev)
		if o.CmpTime(next, prev) != After {
			t.Fatalf("chain step %d: NewTime(%d) = %d not certainly after", i, prev, next)
		}
		prev = next
	}
}

func TestGetTimeUsesClock(t *testing.T) {
	fc := &fakeClock{}
	fc.t.Store(42)
	o := New(fc, 10)
	if got := o.GetTime(); got != 42 {
		t.Fatalf("GetTime() = %d, want 42", got)
	}
	fc.advance(8)
	if got := o.GetTime(); got != 50 {
		t.Fatalf("GetTime() = %d, want 50", got)
	}
}

func TestStringMentionsBoundary(t *testing.T) {
	o := New(&fakeClock{}, 276)
	if s := o.String(); s != "ordo{boundary=276 ticks}" {
		t.Fatalf("String() = %q", s)
	}
}
