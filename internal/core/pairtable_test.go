package core

import (
	"errors"
	"testing"
)

func pairTableFixture(t *testing.T) (*PairTable, []int64) {
	t.Helper()
	// Two "sockets": CPUs 0,1 tightly coupled (delay 60), CPUs 2,3 too;
	// cross pairs slow (delay 200). CPU 3 has a big skew.
	skew := []int64{0, 5, -10, 180}
	s := newSkewSampler(skew, 0, 0, 1)
	for i := range s.delay {
		for j := range s.delay[i] {
			if i == j {
				continue
			}
			if (i < 2) == (j < 2) {
				s.delay[i][j] = 60
			} else {
				s.delay[i][j] = 200
			}
		}
	}
	p, err := ComputePairTable(s, CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	return p, skew
}

func TestPairTableGlobalMatchesComputeBoundary(t *testing.T) {
	p, skew := pairTableFixture(t)
	s := newSkewSampler(skew, 0, 0, 1)
	for i := range s.delay {
		for j := range s.delay[i] {
			if i == j {
				continue
			}
			if (i < 2) == (j < 2) {
				s.delay[i][j] = 60
			} else {
				s.delay[i][j] = 200
			}
		}
	}
	b, err := ComputeBoundary(s, CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if p.Global() != b.Global {
		t.Fatalf("pair table global %d != boundary %d", p.Global(), b.Global)
	}
}

func TestPairTableTighterForClosePairs(t *testing.T) {
	p, _ := pairTableFixture(t)
	close := p.BoundaryBetween(0, 1)
	far := p.BoundaryBetween(0, 3)
	if close >= far {
		t.Fatalf("intra-socket window %d not tighter than cross %d", close, far)
	}
	if p.Global() != far {
		t.Fatalf("global %d should equal the worst pair %d", p.Global(), far)
	}
}

func TestPairTableSymmetricAndZeroDiagonal(t *testing.T) {
	p, _ := pairTableFixture(t)
	for i := 0; i < p.CPUs(); i++ {
		if p.BoundaryBetween(i, i) != 0 {
			t.Fatalf("diagonal (%d,%d) = %d", i, i, p.BoundaryBetween(i, i))
		}
		for j := 0; j < p.CPUs(); j++ {
			if p.BoundaryBetween(i, j) != p.BoundaryBetween(j, i) {
				t.Fatalf("table not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestCmpTimeAtOrdersInsideGlobalWindow(t *testing.T) {
	p, _ := pairTableFixture(t)
	// A gap certain for the tight pair but uncertain globally.
	gap := p.BoundaryBetween(0, 1) + 1
	if gap > p.Global() {
		t.Skip("fixture did not produce a usable gap")
	}
	if got := p.CmpTimeAt(1000+gap, 0, 1000, 1); got != After {
		t.Fatalf("CmpTimeAt tight pair = %d, want After", got)
	}
	// The same gap across the worst pair stays uncertain.
	if got := p.CmpTimeAt(1000+gap, 0, 1000, 3); got != Uncertain {
		t.Fatalf("CmpTimeAt worst pair = %d, want Uncertain", got)
	}
	// And the global primitive cannot order it either.
	o := New(ClockFunc(func() Time { return 0 }), p.Global())
	if got := o.CmpTime(1000+gap, 1000); got != Uncertain {
		t.Fatalf("global CmpTime = %d, want Uncertain", got)
	}
}

func TestPairTableSoundPerPair(t *testing.T) {
	p, skew := pairTableFixture(t)
	for i := range skew {
		for j := range skew {
			if i == j {
				continue
			}
			d := skew[i] - skew[j]
			if d < 0 {
				d = -d
			}
			if int64(p.BoundaryBetween(i, j)) < d {
				t.Fatalf("pair (%d,%d) window %d < physical skew %d",
					i, j, p.BoundaryBetween(i, j), d)
			}
		}
	}
}

func TestUncertainFraction(t *testing.T) {
	p, _ := pairTableFixture(t)
	// Gap below every pair window: both fully uncertain.
	g, pp := p.UncertainFraction(1)
	if g != 1 || pp != 1 {
		t.Fatalf("tiny gap: global=%f perPair=%f, want 1/1", g, pp)
	}
	// Gap above the global window: both fully certain.
	g, pp = p.UncertainFraction(p.Global() + 1)
	if g != 0 || pp != 0 {
		t.Fatalf("huge gap: global=%f perPair=%f, want 0/0", g, pp)
	}
	// Gap between the tight and the loose windows: per-pair wins.
	mid := p.BoundaryBetween(0, 1) + 1
	g, pp = p.UncertainFraction(mid)
	if g != 1 {
		t.Fatalf("mid gap: global=%f, want 1", g)
	}
	if pp >= 1 {
		t.Fatalf("mid gap: perPair=%f, want < 1 (some pairs certain)", pp)
	}
}

func TestPairTableBytes(t *testing.T) {
	p, _ := pairTableFixture(t)
	if p.Bytes() != 4*4*8 {
		t.Fatalf("Bytes() = %d, want 128", p.Bytes())
	}
}

func TestComputePairTableErrors(t *testing.T) {
	if _, err := ComputePairTable(&skewSampler{}, CalibrationOptions{}); !errors.Is(err, ErrNoCPUs) {
		t.Fatalf("err = %v, want ErrNoCPUs", err)
	}
	e := &errSampler{*newSkewSampler([]int64{0, 1}, 10, 0, 1)}
	if _, err := ComputePairTable(e, CalibrationOptions{}); err == nil {
		t.Fatal("expected error from failing sampler")
	}
}
