// Package core implements the Ordo primitive: a scalable ordering primitive
// for multicore machines built on invariant per-core hardware clocks
// (Kashyap et al., EuroSys'18).
//
// Invariant clocks increase monotonically at a constant rate but are not
// guaranteed to be synchronized across cores or sockets: each core may have
// received its RESET at a different instant, so two clocks differ by an
// unknown constant physical offset. Ordo measures a system-wide uncertainty
// window — the ORDO_BOUNDARY — that is guaranteed to be at least as large as
// the largest physical offset between any two clocks, and exposes exactly
// three operations:
//
//   - GetTime: read the local invariant clock (ordered, no memory reorder),
//   - CmpTime: order two timestamps, returning "uncertain" when they are
//     within one boundary of each other,
//   - NewTime: produce a timestamp strictly greater (boundary-separated)
//     than a given one, observable as new by every core.
//
// Any timestamp-based concurrent algorithm (STM, MVCC/OCC databases, RLU,
// per-core operation logs) can replace its contended global logical clock
// with these three methods, provided it handles the uncertain case —
// typically by conservatively aborting or deferring.
package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Time is a timestamp drawn from an invariant clock domain, in clock ticks.
// Timestamps from different cores of the same machine are comparable only
// through an Ordo instance carrying that machine's calibrated boundary.
//
// The counter wraps after 2^64 ticks (decades at multi-GHz rates); as in
// the paper, wrap handling is left to the embedding algorithm.
type Time uint64

// Clock is a source of invariant timestamps. Now returns the clock of the
// CPU the calling thread happens to run on; implementations must guarantee
// a constant tick rate and monotonicity per CPU, and must order the read
// after preceding loads (RDTSCP / LFENCE;RDTSC semantics).
type Clock interface {
	Now() Time
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() Time

// Now implements Clock.
func (f ClockFunc) Now() Time { return f() }

// Cmp result values, mirroring the paper's cmp_time.
const (
	// Before means t1 < t2 with certainty (separated by more than one boundary).
	Before = -1
	// Uncertain means t1 and t2 are within one boundary of each other; the
	// clocks cannot order them and the caller must defer, retry, or abort.
	Uncertain = 0
	// After means t1 > t2 with certainty.
	After = 1
)

// Ordo exposes the paper's three-method API over a Clock and a calibrated
// uncertainty boundary. The zero value is unusable; construct with New.
//
// Ordo is safe for concurrent use by any number of goroutines without
// synchronization. The boundary lives in an atomic holder so a background
// recalibrator (internal/health.Monitor) can widen it while CmpTime and
// NewTime callers proceed uninterrupted; each call reads the boundary once
// and uses that value consistently.
type Ordo struct {
	clock    Clock
	boundary atomic.Uint64
}

// New builds an Ordo primitive from a clock and a calibrated boundary
// (obtained from ComputeBoundary or chosen by the embedding system).
func New(clock Clock, boundary Time) *Ordo {
	if clock == nil {
		panic("ordo: nil clock")
	}
	o := &Ordo{clock: clock}
	o.boundary.Store(uint64(boundary))
	return o
}

// Boundary returns the uncertainty window in clock ticks.
func (o *Ordo) Boundary() Time { return Time(o.boundary.Load()) }

// SetBoundary atomically publishes a new uncertainty window. Widening is
// always safe — a larger window only turns some certain comparisons into
// uncertain ones, which callers already handle conservatively. Shrinking is
// safe only if the new value still upper-bounds the physical clock skew;
// health.Monitor therefore only ever widens unless explicitly configured
// otherwise. Calls concurrent with CmpTime/NewTime are fine: in-flight
// calls use whichever value they loaded, later calls see the new one.
func (o *Ordo) SetBoundary(b Time) { o.boundary.Store(uint64(b)) }

// GetTime returns the current timestamp of the local invariant clock.
func (o *Ordo) GetTime() Time { return o.clock.Now() }

// CmpTime orders two timestamps under the uncertainty window:
//
//	After     if t1 >  t2 + boundary
//	Before    if t1 + boundary < t2
//	Uncertain otherwise
//
// An Uncertain result means the physical clocks cannot distinguish the two
// events; timestamp-based algorithms must treat it conservatively.
func (o *Ordo) CmpTime(t1, t2 Time) int {
	b := Time(o.boundary.Load())
	switch {
	case t1 > t2+b:
		return After
	case t1+b < t2:
		return Before
	default:
		return Uncertain
	}
}

// NewTime returns a fresh timestamp that is certainly greater than t: it
// spins reading the local clock until the value exceeds t by more than one
// boundary. Once NewTime returns, every core in the machine reading its own
// clock obtains a value it can only order after t (or as uncertain against
// the returned value, never before t with certainty).
func (o *Ordo) NewTime(t Time) Time {
	for i := 0; ; i++ {
		now := o.clock.Now()
		if now > t+Time(o.boundary.Load()) {
			return now
		}
		if i%64 == 63 {
			// Boundary windows are hundreds of nanoseconds; let the
			// runtime breathe if we are somehow descheduled mid-wait.
			runtime.Gosched()
		}
	}
}

// String describes the primitive for diagnostics.
func (o *Ordo) String() string {
	return fmt.Sprintf("ordo{boundary=%d ticks}", o.boundary.Load())
}
