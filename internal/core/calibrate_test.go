package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ordo/internal/topology"
)

// skewSampler models a machine with per-CPU physical skews and a delay
// matrix: MeasureOffset(w, r) = delay[w][r] + skew[r] - skew[w] + noise,
// minimized over runs (noise ≥ 0, so min-of-runs approaches the true value).
type skewSampler struct {
	skew  []int64 // per-CPU physical clock offset, ticks
	delay [][]int64
	noise int64 // max per-run positive noise
	rng   *rand.Rand
}

func (s *skewSampler) NumCPUs() int { return len(s.skew) }

func (s *skewSampler) MeasureOffset(w, r, runs int) (int64, error) {
	best := int64(1<<63 - 1)
	for i := 0; i < runs; i++ {
		var n int64
		if s.noise > 0 {
			n = s.rng.Int63n(s.noise + 1)
		}
		d := s.delay[w][r] + s.skew[r] - s.skew[w] + n
		if d < best {
			best = d
		}
	}
	return best, nil
}

func newSkewSampler(skew []int64, delayBase int64, noise int64, seed int64) *skewSampler {
	n := len(skew)
	d := make([][]int64, n)
	for i := range d {
		d[i] = make([]int64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = delayBase
			}
		}
	}
	return &skewSampler{skew: skew, delay: d, noise: noise, rng: rand.New(rand.NewSource(seed))}
}

func maxAbsSkewDiff(skew []int64) int64 {
	var max int64
	for i := range skew {
		for j := range skew {
			d := skew[i] - skew[j]
			if d < 0 {
				d = -d
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

func TestComputeBoundaryUpperBoundsPhysicalSkew(t *testing.T) {
	skew := []int64{0, 30, -45, 110, 7}
	s := newSkewSampler(skew, 150, 40, 1)
	b, err := ComputeBoundary(s, CalibrationOptions{Runs: 200})
	if err != nil {
		t.Fatal(err)
	}
	if int64(b.Global) < maxAbsSkewDiff(skew) {
		t.Fatalf("boundary %d < max physical skew %d: ordering would be unsound",
			b.Global, maxAbsSkewDiff(skew))
	}
	// With delay 150 and worst skew diff 155, the boundary should also be
	// reasonably tight: delay + skewdiff + noise.
	if int64(b.Global) > 150+155+40 {
		t.Fatalf("boundary %d looser than delay+skew+noise", b.Global)
	}
}

func TestComputeBoundaryPropertySoundness(t *testing.T) {
	// Property (the paper's Theorem): for any skews and any positive delays,
	// the computed global boundary ≥ the max physical offset between any
	// two clocks.
	f := func(rawSkews []int16, delaySeed uint8) bool {
		if len(rawSkews) < 2 {
			return true
		}
		if len(rawSkews) > 8 {
			rawSkews = rawSkews[:8]
		}
		skew := make([]int64, len(rawSkews))
		for i, v := range rawSkews {
			skew[i] = int64(v)
		}
		// Delays must exceed the skew magnitudes is NOT required for
		// soundness — only positivity of delays is. Use a modest base.
		delay := int64(delaySeed) + 1
		s := newSkewSampler(skew, delay, 0, 42)
		b, err := ComputeBoundary(s, CalibrationOptions{Runs: 3})
		if err != nil {
			return false
		}
		return int64(b.Global) >= maxAbsSkewDiff(skew)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestComputeBoundarySingleCPU(t *testing.T) {
	s := newSkewSampler([]int64{0}, 100, 0, 1)
	b, err := ComputeBoundary(s, CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Global != 0 || b.Pairs != 0 || b.CPUs != 1 {
		t.Fatalf("single-CPU boundary = %+v, want zero boundary, zero pairs", b)
	}
}

func TestComputeBoundaryNoCPUs(t *testing.T) {
	s := &skewSampler{}
	if _, err := ComputeBoundary(s, CalibrationOptions{}); !errors.Is(err, ErrNoCPUs) {
		t.Fatalf("err = %v, want ErrNoCPUs", err)
	}
}

func TestComputeBoundaryMinReported(t *testing.T) {
	skew := []int64{0, 100}
	s := newSkewSampler(skew, 150, 0, 1)
	b, err := ComputeBoundary(s, CalibrationOptions{Runs: 10})
	if err != nil {
		t.Fatal(err)
	}
	// δ(0→1) = 150 + 100 = 250; δ(1→0) = 150 − 100 = 50.
	if b.Global != 250 {
		t.Errorf("Global = %d, want 250", b.Global)
	}
	if b.Min != 50 {
		t.Errorf("Min = %d, want 50", b.Min)
	}
}

func TestComputeBoundaryStride(t *testing.T) {
	skew := make([]int64, 16)
	for i := range skew {
		skew[i] = int64(i * 10)
	}
	s := newSkewSampler(skew, 500, 0, 1)
	full, err := ComputeBoundary(s, CalibrationOptions{Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	strided, err := ComputeBoundary(s, CalibrationOptions{Runs: 2, Stride: 5})
	if err != nil {
		t.Fatal(err)
	}
	if strided.CPUs != 4 { // CPUs 0, 5, 10, 15
		t.Fatalf("strided CPUs = %d, want 4", strided.CPUs)
	}
	// CPU 0 and 15 (the extreme skews) are both sampled, so the strided
	// boundary must equal the full one here.
	if strided.Global != full.Global {
		t.Fatalf("strided boundary %d != full %d", strided.Global, full.Global)
	}
}

func TestComputeBoundaryMaxPairs(t *testing.T) {
	skew := make([]int64, 32)
	s := newSkewSampler(skew, 100, 0, 1)
	b, err := ComputeBoundary(s, CalibrationOptions{Runs: 1, MaxPairs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if b.Pairs > 20 {
		t.Fatalf("Pairs = %d, want <= 20 (10 unordered pairs)", b.Pairs)
	}
}

// countingSampler wraps a sampler, counting MeasureOffset calls.
type countingSampler struct {
	inner PairSampler
	calls int
}

func (c *countingSampler) NumCPUs() int { return c.inner.NumCPUs() }
func (c *countingSampler) MeasureOffset(w, r, runs int) (int64, error) {
	c.calls++
	return c.inner.MeasureOffset(w, r, runs)
}

// TestComputeBoundaryMaxPairsExact is the regression test for the broken
// cap: the old guard used a bare break that only exited the inner loop, so
// a 32-CPU walk capped at 10 pairs still measured hundreds of pairs.
func TestComputeBoundaryMaxPairsExact(t *testing.T) {
	for _, maxPairs := range []int{1, 3, 10, 496, 1000} {
		s := &countingSampler{inner: newSkewSampler(make([]int64, 32), 100, 0, 1)}
		b, err := ComputeBoundary(s, CalibrationOptions{Runs: 1, MaxPairs: maxPairs})
		if err != nil {
			t.Fatal(err)
		}
		wantPairs := maxPairs
		if total := 32 * 31 / 2; wantPairs > total {
			wantPairs = total
		}
		if s.calls != 2*wantPairs {
			t.Errorf("MaxPairs=%d: %d MeasureOffset calls, want %d",
				maxPairs, s.calls, 2*wantPairs)
		}
		if b.Pairs != 2*wantPairs {
			t.Errorf("MaxPairs=%d: Boundary.Pairs = %d, want %d (ordered measurements)",
				maxPairs, b.Pairs, 2*wantPairs)
		}
	}
}

// TestComputeBoundarySocketCoverageFirst: with a topology, a capped walk
// must still measure at least one pair from every socket combination, so
// cross-socket skew cannot hide behind a tight MaxPairs.
func TestComputeBoundarySocketCoverageFirst(t *testing.T) {
	topo := &topology.Machine{
		Name:           "test-2x4",
		Sockets:        2,
		CoresPerSocket: 4,
		SMT:            1,
		SocketSkewNS:   []float64{0, 0},
	}
	// CPUs 0-3 are socket 0, CPUs 4-7 socket 1; only cross-socket pairs
	// see the big skew.
	skew := []int64{0, 0, 0, 0, 500, 500, 500, 500}
	s := newSkewSampler(skew, 100, 0, 1)

	// 3 socket combos exist: (0,0), (0,1), (1,1). A cap of 3 with the
	// topology must include a cross-socket pair and find the 500-tick skew.
	b, err := ComputeBoundary(s, CalibrationOptions{Runs: 1, MaxPairs: 3, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if int64(b.Global) < 500 {
		t.Fatalf("capped topology-ordered boundary = %d, want >= 500 (cross-socket skew)", b.Global)
	}

	// Without the topology, index order measures (0,1),(0,2),(0,3) — all
	// same-socket — demonstrating why the ordering matters.
	b, err = ComputeBoundary(s, CalibrationOptions{Runs: 1, MaxPairs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if int64(b.Global) >= 500 {
		t.Fatalf("flat-ordered capped boundary = %d; expected it to miss the cross-socket skew", b.Global)
	}
}

// TestOrderPairsRoundRobinAcrossCombos pins the ordering contract: the k-th
// pair of every socket combination is emitted before the (k+1)-th of any,
// and all pairs appear exactly once.
func TestOrderPairsRoundRobinAcrossCombos(t *testing.T) {
	topo := &topology.Machine{
		Name:           "test-2x2",
		Sockets:        2,
		CoresPerSocket: 2,
		SMT:            1,
		SocketSkewNS:   []float64{0, 0},
	}
	cpus := []int{0, 1, 2, 3}
	pairs := orderPairs(cpus, topo)
	if len(pairs) != 6 {
		t.Fatalf("got %d pairs, want 6", len(pairs))
	}
	combo := func(p [2]int) [2]int {
		a, b := topo.Socket(p[0]), topo.Socket(p[1])
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	// First three pairs must cover all three combos.
	seen := map[[2]int]bool{}
	for _, p := range pairs[:3] {
		seen[combo(p)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("first 3 pairs cover %d combos, want 3: %v", len(seen), pairs[:3])
	}
	uniq := map[[2]int]bool{}
	for _, p := range pairs {
		uniq[p] = true
	}
	if len(uniq) != 6 {
		t.Fatalf("pairs not unique: %v", pairs)
	}
}

type errSampler struct{ skewSampler }

func (e *errSampler) MeasureOffset(w, r, runs int) (int64, error) {
	return 0, errors.New("boom")
}

func TestComputeBoundaryPropagatesError(t *testing.T) {
	e := &errSampler{*newSkewSampler([]int64{0, 1}, 10, 0, 1)}
	if _, err := ComputeBoundary(e, CalibrationOptions{}); err == nil {
		t.Fatal("expected error from failing sampler")
	}
}

func TestOrderingSoundEndToEnd(t *testing.T) {
	// End-to-end: calibrate a simulated machine, then check that events
	// ordered via CmpTime with the calibrated boundary are never mis-ordered
	// relative to real (simulated global) time.
	skew := []int64{0, 80, -60, 200}
	s := newSkewSampler(skew, 300, 25, 7)
	b, err := ComputeBoundary(s, CalibrationOptions{Runs: 100})
	if err != nil {
		t.Fatal(err)
	}
	o := New(ClockFunc(func() Time { return 0 }), b.Global)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10000; i++ {
		// Two events at true times ta, tb read clocks on CPUs ca, cb.
		ca, cb := rng.Intn(len(skew)), rng.Intn(len(skew))
		ta, tb := rng.Int63n(1<<40), rng.Int63n(1<<40)
		sa := Time(ta + skew[ca])
		sb := Time(tb + skew[cb])
		switch o.CmpTime(sa, sb) {
		case After:
			if ta <= tb {
				t.Fatalf("CmpTime said After but true order %d <= %d (cpus %d,%d)", ta, tb, ca, cb)
			}
		case Before:
			if ta >= tb {
				t.Fatalf("CmpTime said Before but true order %d >= %d (cpus %d,%d)", ta, tb, ca, cb)
			}
		}
	}
}
