package core

import (
	"runtime"
	"testing"
	"time"

	"ordo/internal/tsc"
)

func TestHardwareClockAdvances(t *testing.T) {
	t0 := Hardware.Now()
	time.Sleep(time.Millisecond)
	t1 := Hardware.Now()
	if t1 <= t0 {
		t.Fatalf("hardware clock did not advance: %d -> %d", t0, t1)
	}
}

func TestHardwareSamplerProducesOffset(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := &HardwareSampler{AllowUnpinned: true}
	n := s.NumCPUs()
	if n < 1 {
		t.Fatalf("NumCPUs() = %d", n)
	}
	if n == 1 {
		// Single CPU: measure 0<->0; the protocol still terminates because
		// the spin loops yield, and the offset is pure software delay.
		d, err := s.MeasureOffset(0, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 {
			t.Fatalf("same-CPU one-way offset negative: %d", d)
		}
		return
	}
	d, err := s.MeasureOffset(0, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	// One-way delay across a cache line: must be positive and below 10ms
	// worth of ticks even on a noisy box.
	if d <= 0 {
		t.Fatalf("offset 0->1 = %d, want > 0", d)
	}
	if tsc.ToDuration(uint64(d)) > 10*time.Millisecond {
		t.Fatalf("offset 0->1 = %v, implausibly large", tsc.ToDuration(uint64(d)))
	}
}

func TestCalibrateHardwareEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := CalibrationOptions{Runs: 20}
	if runtime.NumCPU() > 8 {
		opts.Stride = runtime.NumCPU() / 8
	}
	o, b, err := CalibrateHardware(opts)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("nil Ordo")
	}
	if b.CPUs < 1 {
		t.Fatalf("calibration sampled %d CPUs", b.CPUs)
	}
	// The primitive must be usable: NewTime terminates and orders.
	t0 := o.GetTime()
	t1 := o.NewTime(t0)
	if o.CmpTime(t1, t0) != After {
		t.Fatalf("NewTime(%d) = %d not certainly after", t0, t1)
	}
}

func TestPinOrLockFallback(t *testing.T) {
	restore, err := pinOrLock(0, true)
	if err != nil {
		t.Fatalf("pinOrLock(0, true): %v", err)
	}
	restore()
}
