package core

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ordo/internal/tsc"
)

func TestHardwareClockAdvances(t *testing.T) {
	t0 := Hardware.Now()
	time.Sleep(time.Millisecond)
	t1 := Hardware.Now()
	if t1 <= t0 {
		t.Fatalf("hardware clock did not advance: %d -> %d", t0, t1)
	}
}

func TestHardwareSamplerProducesOffset(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := &HardwareSampler{AllowUnpinned: true}
	n := s.NumCPUs()
	if n < 1 {
		t.Fatalf("NumCPUs() = %d", n)
	}
	if n == 1 {
		// Single CPU: measure 0<->0; the protocol still terminates because
		// the spin loops yield, and the offset is pure software delay.
		d, err := s.MeasureOffset(0, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 {
			t.Fatalf("same-CPU one-way offset negative: %d", d)
		}
		return
	}
	d, err := s.MeasureOffset(0, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	// One-way delay across a cache line: must be positive and below 10ms
	// worth of ticks even on a noisy box.
	if d <= 0 {
		t.Fatalf("offset 0->1 = %d, want > 0", d)
	}
	if tsc.ToDuration(uint64(d)) > 10*time.Millisecond {
		t.Fatalf("offset 0->1 = %v, implausibly large", tsc.ToDuration(uint64(d)))
	}
}

func TestCalibrateHardwareEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := CalibrationOptions{Runs: 20}
	if runtime.NumCPU() > 8 {
		opts.Stride = runtime.NumCPU() / 8
	}
	o, b, err := CalibrateHardware(opts)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("nil Ordo")
	}
	if b.CPUs < 1 {
		t.Fatalf("calibration sampled %d CPUs", b.CPUs)
	}
	// The primitive must be usable: NewTime terminates and orders.
	t0 := o.GetTime()
	t1 := o.NewTime(t0)
	if o.CmpTime(t1, t0) != After {
		t.Fatalf("NewTime(%d) = %d not certainly after", t0, t1)
	}
}

func TestPinOrLockFallback(t *testing.T) {
	restore, err := pinOrLock(0, true)
	if err != nil {
		t.Fatalf("pinOrLock(0, true): %v", err)
	}
	restore()
}

// failPin builds a pin function that fails for the given CPUs. The restore
// func is a no-op; the error path must never require calling it.
func failPin(failing ...int) func(int, bool) (func(), error) {
	bad := map[int]bool{}
	for _, c := range failing {
		bad[c] = true
	}
	return func(cpu int, _ bool) (func(), error) {
		if bad[cpu] {
			return nil, errors.New("pin refused")
		}
		return func() {}, nil
	}
}

// TestMeasureOffsetWriterPinFailure is the regression test for the
// werr/rerr data race: before the fix, the reader goroutine's measurement
// loop read the writer's error variable while the writer goroutine wrote
// it, which go test -race flags on exactly this path.
func TestMeasureOffsetWriterPinFailure(t *testing.T) {
	s := &HardwareSampler{CPUs: 2, pin: failPin(0)}
	if _, err := s.MeasureOffset(0, 1, 20); err == nil {
		t.Fatal("expected error from failing writer pin")
	} else if !strings.Contains(err.Error(), "writer cpu 0") {
		t.Fatalf("error %q does not name the writer", err)
	}
}

func TestMeasureOffsetReaderPinFailure(t *testing.T) {
	s := &HardwareSampler{CPUs: 2, pin: failPin(1)}
	if _, err := s.MeasureOffset(0, 1, 20); err == nil {
		t.Fatal("expected error from failing reader pin")
	} else if !strings.Contains(err.Error(), "reader cpu 1") {
		t.Fatalf("error %q does not name the reader", err)
	}
}

func TestMeasureOffsetBothPinsFail(t *testing.T) {
	s := &HardwareSampler{CPUs: 2, pin: failPin(0, 1)}
	if _, err := s.MeasureOffset(0, 1, 20); err == nil {
		t.Fatal("expected error when both pins fail")
	}
}

// TestMeasureOffsetHammerMixedPinners drives many concurrent measurements
// whose pinners succeed or fail per-CPU, exercising every combination of
// the writer/reader error paths under the race detector.
func TestMeasureOffsetHammerMixedPinners(t *testing.T) {
	s := &HardwareSampler{CPUs: 4, pin: failPin(1, 3)}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				w := (g + i) % 4
				r := (g + i + 1 + i%3) % 4
				if w == r {
					r = (r + 1) % 4
				}
				d, err := s.MeasureOffset(w, r, 5)
				wantErr := w == 1 || w == 3 || r == 1 || r == 3
				if wantErr && err == nil {
					t.Errorf("MeasureOffset(%d,%d) succeeded with failing pinner", w, r)
					return
				}
				if !wantErr {
					if err != nil {
						t.Errorf("MeasureOffset(%d,%d): %v", w, r, err)
						return
					}
					if d == int64(1<<63-1) {
						t.Errorf("MeasureOffset(%d,%d) returned sentinel min", w, r)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
