package core

import "fmt"

// PairTable is the §7 extension the paper discusses but declines for its
// default design: per-CPU-pair uncertainty windows instead of one global
// ORDO_BOUNDARY. Two timestamps taken on known CPUs can then be compared
// under that pair's (usually much smaller) window, shrinking the
// uncertain zone — at the cost the paper calls out:
//
//   - O(n²) memory that must stay cache-resident to be worth anything
//     (Bytes reports it);
//   - callers must know which CPU produced each timestamp, which in
//     practice means pinned threads: a migration between reading the
//     clock and comparing invalidates the pair, so CmpTimeAt must only
//     be used with timestamps from pinned execution. The global window
//     tolerates migration because it dominates every pair.
//
// The zero value is unusable; build one with ComputePairTable.
type PairTable struct {
	n      int
	bounds []Time // n×n: max(δ(i→j), δ(j→i)); diagonal 0
	global Time
}

// ComputePairTable measures every directed pair like ComputeBoundary but
// retains the per-pair maxima. Stride/MaxPairs are not supported: a pair
// table is only meaningful when complete.
func ComputePairTable(s PairSampler, opts CalibrationOptions) (*PairTable, error) {
	opts.defaults()
	n := s.NumCPUs()
	if n < 1 {
		return nil, ErrNoCPUs
	}
	p := &PairTable{n: n, bounds: make([]Time, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dij, err := s.MeasureOffset(i, j, opts.Runs)
			if err != nil {
				return nil, fmt.Errorf("ordo: measuring offset %d->%d: %w", i, j, err)
			}
			dji, err := s.MeasureOffset(j, i, opts.Runs)
			if err != nil {
				return nil, fmt.Errorf("ordo: measuring offset %d->%d: %w", j, i, err)
			}
			pair := dij
			if dji > pair {
				pair = dji
			}
			if pair < 0 {
				pair = 0
			}
			p.bounds[i*n+j] = Time(pair)
			p.bounds[j*n+i] = Time(pair)
			if Time(pair) > p.global {
				p.global = Time(pair)
			}
		}
	}
	return p, nil
}

// CPUs returns the number of clock domains in the table.
func (p *PairTable) CPUs() int { return p.n }

// Global returns the table's maximum — identical to the ORDO_BOUNDARY the
// plain calibration would produce from the same measurements.
func (p *PairTable) Global() Time { return p.global }

// BoundaryBetween returns the uncertainty window between two CPUs' clocks.
func (p *PairTable) BoundaryBetween(cpu1, cpu2 int) Time {
	return p.bounds[cpu1*p.n+cpu2]
}

// Bytes reports the table's memory footprint — the cost §7 weighs against
// the smaller windows.
func (p *PairTable) Bytes() int { return len(p.bounds) * 8 }

// CmpTimeAt orders two timestamps taken on known CPUs using that pair's
// window; semantics otherwise match Ordo.CmpTime. The caller must
// guarantee the timestamps really were read on those CPUs (pinning).
func (p *PairTable) CmpTimeAt(t1 Time, cpu1 int, t2 Time, cpu2 int) int {
	b := p.BoundaryBetween(cpu1, cpu2)
	switch {
	case t1 > t2+b:
		return After
	case t1+b < t2:
		return Before
	default:
		return Uncertain
	}
}

// UncertainFraction estimates how often comparisons of timestamps
// separated by `gap` ticks come out uncertain, under the global window
// versus the pair table, assuming uniformly random CPU pairs. It is the
// quantitative form of §7's trade-off and is used by the ablation bench.
func (p *PairTable) UncertainFraction(gap Time) (global, perPair float64) {
	if gap <= p.global {
		global = 1
	}
	var uncertain, pairs int
	for i := 0; i < p.n; i++ {
		for j := i + 1; j < p.n; j++ {
			pairs++
			if gap <= p.bounds[i*p.n+j] {
				uncertain++
			}
		}
	}
	if pairs == 0 {
		return global, 0
	}
	return global, float64(uncertain) / float64(pairs)
}
