package core

// This file implements the clock-synchronization estimator the paper
// argues AGAINST (§2.2, Figure 2): the NTP-style round-trip scheme that
// estimates the remote clock's offset as θ = (t2 − t1) − RTT/2. It exists
// as an ablation baseline: the repository's tests and benchmarks use it
// to demonstrate that RTT-halving can UNDER-estimate the physical skew —
// producing an unsound ordering window — whenever the one-way delays are
// asymmetric, which no hardware vendor bounds. Ordo's min-over-runs /
// max-over-pairs estimator never under-estimates (see calibrate.go).

// RTTSampler measures round trips for the NTP-style estimator. The
// simulated machines implement it alongside PairSampler.
type RTTSampler interface {
	PairSampler
	// MeasureRTT returns (t2 − t1, RTT) for one exchange between cpu a
	// (local, timestamps t1/t4) and cpu b (remote, timestamps t2/t3),
	// minimized over runs.
	MeasureRTT(a, b, runs int) (theta int64, rtt int64, err error)
}

// NTPBoundary estimates a global uncertainty window the NTP way: for each
// pair it computes |θ| = |(t2−t1) − RTT/2| and takes the maximum. Unlike
// ComputeBoundary, the result is NOT guaranteed to dominate the physical
// skew: with asymmetric one-way delays the RTT/2 correction absorbs part
// of the true offset.
func NTPBoundary(s RTTSampler, opts CalibrationOptions) (Boundary, error) {
	opts.defaults()
	n := s.NumCPUs()
	if n < 1 {
		return Boundary{}, ErrNoCPUs
	}
	b := Boundary{CPUs: 0}
	var globalMax int64
	for i := 0; i < n; i += opts.Stride {
		b.CPUs++
		for j := i + opts.Stride; j < n; j += opts.Stride {
			theta, rtt, err := s.MeasureRTT(i, j, opts.Runs)
			if err != nil {
				return Boundary{}, err
			}
			off := theta - rtt/2
			if off < 0 {
				off = -off
			}
			if off > globalMax {
				globalMax = off
			}
			b.Pairs++
		}
	}
	b.Global = Time(globalMax)
	return b, nil
}
