package topology

import (
	"testing"
	"testing/quick"
)

func TestThreadCounts(t *testing.T) {
	tests := []struct {
		m       *Machine
		threads int
		cores   int
	}{
		{Xeon(), 240, 120},
		{Phi(), 256, 64},
		{AMD(), 32, 32},
		{ARM(), 96, 96},
	}
	for _, tc := range tests {
		if got := tc.m.Threads(); got != tc.threads {
			t.Errorf("%s: Threads() = %d, want %d", tc.m.Name, got, tc.threads)
		}
		if got := tc.m.PhysicalCores(); got != tc.cores {
			t.Errorf("%s: PhysicalCores() = %d, want %d", tc.m.Name, got, tc.cores)
		}
	}
}

func TestSocketNumberingMatchesPaper(t *testing.T) {
	// Paper §6.2: ARM's second socket is cores 48–95; Xeon's eighth socket
	// is cores 105–119.
	arm := ARM()
	if arm.Socket(47) != 0 || arm.Socket(48) != 1 || arm.Socket(95) != 1 {
		t.Errorf("ARM socket boundaries wrong: s(47)=%d s(48)=%d s(95)=%d",
			arm.Socket(47), arm.Socket(48), arm.Socket(95))
	}
	xeon := Xeon()
	if xeon.Socket(104) != 6 || xeon.Socket(105) != 7 || xeon.Socket(119) != 7 {
		t.Errorf("Xeon socket boundaries wrong: s(104)=%d s(105)=%d s(119)=%d",
			xeon.Socket(104), xeon.Socket(105), xeon.Socket(119))
	}
}

func TestSMTSiblingsShareCoreAndClock(t *testing.T) {
	xeon := Xeon()
	// Thread 0 and thread 120 are siblings on physical core 0.
	if xeon.Core(0) != xeon.Core(120) {
		t.Fatalf("threads 0 and 120 not siblings: cores %d, %d", xeon.Core(0), xeon.Core(120))
	}
	if xeon.SMTIndex(0) != 0 || xeon.SMTIndex(120) != 1 {
		t.Fatalf("SMT indexes wrong: %d, %d", xeon.SMTIndex(0), xeon.SMTIndex(120))
	}
	if xeon.SkewNS(0) != xeon.SkewNS(120) {
		t.Fatalf("SMT siblings have different clock skews: %f vs %f",
			xeon.SkewNS(0), xeon.SkewNS(120))
	}
	if got := xeon.OneWayLatencyNS(0, 120); got != xeon.SMTSiblingNS {
		t.Fatalf("sibling latency = %f, want %f", got, xeon.SMTSiblingNS)
	}
}

func TestLatencySymmetricAndPositive(t *testing.T) {
	// The paper verified socket bandwidth is symmetric on both asymmetric-
	// offset machines; asymmetry must come from skew only.
	for _, m := range All() {
		f := func(a, b uint16) bool {
			i := int(a) % m.Threads()
			j := int(b) % m.Threads()
			lij := m.OneWayLatencyNS(i, j)
			lji := m.OneWayLatencyNS(j, i)
			if i == j {
				return lij == 0
			}
			return lij == lji && lij > 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestCrossSocketCostsMoreThanIntra(t *testing.T) {
	for _, m := range All() {
		if m.Sockets == 1 {
			continue
		}
		intra := m.OneWayLatencyNS(0, 1)
		cross := m.OneWayLatencyNS(0, m.CoresPerSocket)
		if cross <= intra {
			t.Errorf("%s: cross-socket %f <= intra-socket %f", m.Name, cross, intra)
		}
	}
}

func TestSkewDeterministic(t *testing.T) {
	a, b := Xeon(), Xeon()
	for i := 0; i < a.Threads(); i++ {
		if a.SkewNS(i) != b.SkewNS(i) {
			t.Fatalf("skew not deterministic at thread %d", i)
		}
	}
}

func TestAsymmetricSockets(t *testing.T) {
	// Xeon's last socket and ARM's second socket must lag/lead enough that
	// measured offsets in one direction are several times the other
	// (paper: 4–8×).
	xeon := Xeon()
	d := xeon.SocketSkewNS[7]
	if d > -50 {
		t.Errorf("Xeon socket 7 skew %f, want strongly negative", d)
	}
	arm := ARM()
	if arm.SocketSkewNS[1] < 300 {
		t.Errorf("ARM socket 1 skew %f, want >= 300", arm.SocketSkewNS[1])
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"xeon", "phi", "amd", "arm"} {
		m, err := ByName(name)
		if err != nil || m == nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("sparc"); err == nil {
		t.Error("ByName(sparc) succeeded, want error")
	}
}

func TestMaxSkewDiffPositive(t *testing.T) {
	for _, m := range All() {
		if m.MaxSkewDiffNS() <= 0 {
			t.Errorf("%s: MaxSkewDiffNS() = %f, want > 0 (clocks are not synchronized)",
				m.Name, m.MaxSkewDiffNS())
		}
	}
}

func TestStringContainsName(t *testing.T) {
	m := Phi()
	if s := m.String(); len(s) == 0 || s[:5] != "Intel" {
		t.Errorf("String() = %q", s)
	}
}
