// Package topology describes multicore machine models: socket/core/SMT
// layout, one-way cache-line transfer latencies, and per-core invariant
// clock skews (the residue of RESET signals arriving at different times).
//
// The four models mirror the paper's evaluation machines (Table 1):
//
//	Intel Xeon     120 cores × 2 SMT, 8 sockets, 2.4 GHz — offsets  70–276 ns
//	Intel Xeon Phi  64 cores × 4 SMT, 1 socket,  1.3 GHz — offsets  90–270 ns
//	AMD             32 cores,         8 sockets, 2.8 GHz — offsets  93–203 ns
//	ARM             96 cores,         2 sockets, 2.0 GHz — offsets 100–1100 ns
//
// Latencies and skews are calibrated so that running the Ordo boundary
// algorithm against the simulated machine reproduces the paper's measured
// offsets, including the asymmetric socket on Xeon and ARM (one socket's
// clock lags by ~100 ns / ~500 ns, making offsets 4–8× higher in one
// direction — §6.2, Figure 9).
//
// All simulated clocks tick in nanoseconds: one tick == 1 ns of virtual
// time, so boundary values are directly comparable with Table 1.
package topology

import "fmt"

// Machine is a multicore machine model. All latency fields are one-way
// cache-line transfer costs in nanoseconds as observed by software (they
// include the instruction overhead of the measuring loop, which is why the
// smallest values match the paper's measured minima rather than raw
// interconnect numbers).
type Machine struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	SMT            int     // hardware threads per core
	GHz            float64 // core clock (Table 1)

	// TimestampCostNS is the latency of one hardware timestamp read
	// (RDTSC/cntvct) on an otherwise idle physical core (Figure 8a).
	TimestampCostNS float64

	// SMTTimestampPenalty scales timestamp cost when several hardware
	// threads of one core issue timestamps concurrently: cost grows by
	// this fraction per extra active sibling (Figure 8a's rise past the
	// physical core count; ~3× at 4 siblings on Phi).
	SMTTimestampPenalty float64

	// AtomicBaseNS is the cost of an uncontended atomic RMW whose line is
	// already owned locally.
	AtomicBaseNS float64

	// SMTSiblingNS is the one-way transfer between SMT siblings of the
	// same physical core.
	SMTSiblingNS float64

	// IntraSocketNS is the minimum one-way transfer between two cores of
	// the same socket; IntraSocketSpreadNS is added proportionally to the
	// normalized core distance (ring/mesh position) within the socket.
	IntraSocketNS       float64
	IntraSocketSpreadNS float64

	// CrossSocketNS is the one-way transfer between distinct sockets.
	// (All the paper machines show essentially symmetric socket bandwidth,
	// so a single scalar suffices; asymmetry in measured *offsets* comes
	// from clock skew, not from the interconnect.)
	CrossSocketNS float64

	// SocketSkewNS is each socket's clock offset relative to socket 0
	// (positive = that socket's counter reads ahead). This models sockets
	// receiving RESET at different instants.
	SocketSkewNS []float64

	// CoreJitterNS bounds a deterministic per-core skew jitter within a
	// socket (cores of one socket start within this many ns of each other).
	CoreJitterNS float64

	// MemoryNS is the cost of a cache-missing data access (used by
	// workload kernels for object copies etc.).
	MemoryNS float64

	// ReadServiceNS is the occupancy at a dirty line's holder for
	// servicing one remote read miss: misses to a hot, frequently written
	// line serialize at its owner's cache, which is what saturates a
	// global clock line even for its readers.
	ReadServiceNS float64

	// MemServiceNS is the occupancy per cache line at a socket's memory
	// controller: cache-missing data accesses queue here, bounding each
	// socket's memory bandwidth (64B / MemServiceNS per second). The Phi's
	// MCDRAM gives it several times the per-socket bandwidth of the
	// others, which §6.4 credits for its saturation-without-collapse.
	MemServiceNS float64
}

// Threads returns the total number of hardware threads.
func (m *Machine) Threads() int { return m.Sockets * m.CoresPerSocket * m.SMT }

// PhysicalCores returns the number of physical cores.
func (m *Machine) PhysicalCores() int { return m.Sockets * m.CoresPerSocket }

// Core returns the physical core index of a hardware thread. Threads are
// numbered Linux-style: thread t addresses physical core t mod PhysicalCores
// (all first siblings, then all second siblings, …), and physical cores are
// numbered socket-major, matching the paper's heatmap axes (e.g. ARM cores
// 48–95 are the second socket).
func (m *Machine) Core(thread int) int { return thread % m.PhysicalCores() }

// Socket returns the socket index of a hardware thread.
func (m *Machine) Socket(thread int) int { return m.Core(thread) / m.CoresPerSocket }

// SMTIndex returns which hardware thread of its physical core this is.
func (m *Machine) SMTIndex(thread int) int { return thread / m.PhysicalCores() }

// OneWayLatencyNS returns the one-way cache-line transfer latency between
// two hardware threads as seen by the measuring software.
func (m *Machine) OneWayLatencyNS(from, to int) float64 {
	cf, ct := m.Core(from), m.Core(to)
	if cf == ct {
		if from == to {
			return 0
		}
		return m.SMTSiblingNS
	}
	sf, st := cf/m.CoresPerSocket, ct/m.CoresPerSocket
	if sf == st {
		// Position on the socket's ring/mesh: farther apart costs more.
		dist := cf - ct
		if dist < 0 {
			dist = -dist
		}
		frac := float64(dist) / float64(m.CoresPerSocket)
		return m.IntraSocketNS + m.IntraSocketSpreadNS*frac
	}
	return m.CrossSocketNS
}

// SkewNS returns the invariant-clock offset of a hardware thread's clock
// relative to true time, in nanoseconds: socket skew plus a deterministic
// per-core jitter. SMT siblings share their core's clock.
func (m *Machine) SkewNS(thread int) float64 {
	c := m.Core(thread)
	s := c / m.CoresPerSocket
	skew := m.SocketSkewNS[s]
	if m.CoreJitterNS > 0 {
		skew += m.CoreJitterNS * jitter01(c)
	}
	return skew
}

// jitter01 is a deterministic hash of the core id into [0, 1).
func jitter01(core int) float64 {
	x := uint64(core)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return float64(x%1000) / 1000
}

// MaxSkewDiffNS returns the largest physical clock offset between any two
// hardware threads — the quantity the Ordo boundary must upper-bound.
func (m *Machine) MaxSkewDiffNS() float64 {
	lo, hi := m.SkewNS(0), m.SkewNS(0)
	for t := 1; t < m.Threads(); t++ {
		s := m.SkewNS(t)
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return hi - lo
}

func (m *Machine) String() string {
	return fmt.Sprintf("%s (%d sockets × %d cores × %d SMT = %d threads, %.1f GHz)",
		m.Name, m.Sockets, m.CoresPerSocket, m.SMT, m.Threads(), m.GHz)
}

// Xeon models the paper's 120-core, 8-socket, 2-way-SMT Intel Xeon.
// The eighth socket's clock lags ~102 ns: offsets measured into it reach
// 276 ns while the reverse direction reads ~72 ns (Figure 9a).
func Xeon() *Machine {
	return &Machine{
		Name:                "Intel Xeon",
		Sockets:             8,
		CoresPerSocket:      15,
		SMT:                 2,
		GHz:                 2.4,
		TimestampCostNS:     10.3,
		SMTTimestampPenalty: 0.8,
		AtomicBaseNS:        18,
		SMTSiblingNS:        70,
		IntraSocketNS:       78,
		IntraSocketSpreadNS: 14,
		CrossSocketNS:       174,
		SocketSkewNS:        []float64{0, 4, -6, 8, -3, 6, 2, -102},
		CoreJitterNS:        5,
		MemoryNS:            90,
		ReadServiceNS:       44,
		MemServiceNS:        3.0,
	}
}

// Phi models the 64-core, 4-way-SMT, single-socket Intel Xeon Phi: a slow
// mesh where adjacent cores have the smallest offsets and most pairs fall
// inside a 200 ns window (Figure 9b), with higher memory bandwidth and a
// slower core clock than Xeon.
func Phi() *Machine {
	return &Machine{
		Name:                "Intel Xeon Phi",
		Sockets:             1,
		CoresPerSocket:      64,
		SMT:                 4,
		GHz:                 1.3,
		TimestampCostNS:     32,
		SMTTimestampPenalty: 0.65,
		AtomicBaseNS:        35,
		SMTSiblingNS:        90,
		IntraSocketNS:       92,
		IntraSocketSpreadNS: 155,
		CrossSocketNS:       0, // single socket
		SocketSkewNS:        []float64{0},
		CoreJitterNS:        22,
		MemoryNS:            60,  // high-bandwidth MCDRAM
		ReadServiceNS:       60,  // slow uncore
		MemServiceNS:        0.7, // MCDRAM bandwidth
	}
}

// AMD models the 32-core, 8-socket AMD machine (4 cores per socket).
func AMD() *Machine {
	return &Machine{
		Name:                "AMD",
		Sockets:             8,
		CoresPerSocket:      4,
		SMT:                 1,
		GHz:                 2.8,
		TimestampCostNS:     9.0,
		SMTTimestampPenalty: 0,
		AtomicBaseNS:        16,
		SMTSiblingNS:        0,
		IntraSocketNS:       93,
		IntraSocketSpreadNS: 7,
		CrossSocketNS:       155,
		SocketSkewNS:        []float64{0, 3, -8, 6, -40, 5, -4, 8},
		CoreJitterNS:        4,
		MemoryNS:            95,
		ReadServiceNS:       44,
		MemServiceNS:        3.2,
	}
}

// ARM models the 96-core, 2-socket ARM machine with its generic timer.
// The second socket's clock runs ~500 ns ahead: cross-socket offsets are
// 1100 ns in one direction but only 100 ns in the other (§6.2, Figure 9d).
func ARM() *Machine {
	return &Machine{
		Name:                "ARM",
		Sockets:             2,
		CoresPerSocket:      48,
		SMT:                 1,
		GHz:                 2.0,
		TimestampCostNS:     11.5,
		SMTTimestampPenalty: 0,
		AtomicBaseNS:        22,
		SMTSiblingNS:        0,
		IntraSocketNS:       100,
		IntraSocketSpreadNS: 28,
		CrossSocketNS:       600,
		SocketSkewNS:        []float64{0, 500},
		CoreJitterNS:        8,
		MemoryNS:            110,
		ReadServiceNS:       50,
		MemServiceNS:        3.0,
	}
}

// All returns the four paper machines in presentation order.
func All() []*Machine {
	return []*Machine{Xeon(), Phi(), AMD(), ARM()}
}

// ByName returns the machine model with the given name (case-sensitive
// short names: "xeon", "phi", "amd", "arm").
func ByName(name string) (*Machine, error) {
	switch name {
	case "xeon":
		return Xeon(), nil
	case "phi":
		return Phi(), nil
	case "amd":
		return AMD(), nil
	case "arm":
		return ARM(), nil
	}
	return nil, fmt.Errorf("topology: unknown machine %q (want xeon|phi|amd|arm)", name)
}
