// Package faultnet wraps net.Listener/net.Conn with seeded, deterministic
// fault injection: added latency, long stalls, chunked ("partial") writes,
// and hard connection resets. It exists to drive ordod's serving path
// through the failure modes a production network actually produces —
// stalled peers, half-written frames, RSTs mid-pipeline — inside ordinary
// Go tests, repeatably.
//
// Determinism: every accepted connection derives its own pair of splitmix64
// streams (one per direction) from Config.Seed and the connection's accept
// index, so the *decision sequence* — which I/O gets which fault — is a
// pure function of the seed and per-connection I/O counts. Wall-clock
// effects (how goroutines interleave around an injected sleep) naturally
// still vary; what reproduces is which writes are chopped and which
// connections die, which is what a regression needs.
//
// The wrapper injects faults, it never corrupts: bytes that are delivered
// are delivered intact and in order. A reset truncates the stream — the
// peer sees a prefix of valid frames and then a connection error, exactly
// the contract the wire protocol must survive.
package faultnet

import (
	"fmt"
	"math"
	"net"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is returned by a Read or Write whose connection the
// injector chose to reset. The underlying socket is closed (with SO_LINGER
// zeroed when the transport supports it, so TCP peers see an RST rather
// than a graceful FIN). It wraps net.ErrClosed — the socket really is
// closed — so error classification on the injected side matches a genuine
// local hangup.
var ErrInjectedReset = fmt.Errorf("faultnet: injected connection reset: %w", net.ErrClosed)

// Config sets fault probabilities and magnitudes. Probabilities are per
// I/O call in [0,1]; zero values inject nothing, so Config{} is a
// transparent wrapper.
type Config struct {
	// Seed roots the per-connection decision streams.
	Seed int64

	// LatencyProb is the chance an I/O is delayed by a uniform duration in
	// [0, MaxLatency).
	LatencyProb float64
	MaxLatency  time.Duration

	// StallProb is the chance an I/O stalls for Stall before proceeding —
	// long enough, by construction, to trip a peer's idle/write deadline.
	StallProb float64
	Stall     time.Duration

	// PartialProb is the chance a Write is delivered in two chunks with a
	// ChunkDelay pause between them, exposing every frame boundary
	// assumption in the peer's reader.
	PartialProb float64
	ChunkDelay  time.Duration

	// ResetProb is the chance an I/O hard-closes the connection instead of
	// completing. When it strikes a chunked write the first chunk is
	// delivered and the rest never is: the peer reads a truncated frame.
	ResetProb float64
}

// InjectedStats reports how many faults a Listener's connections have
// actually applied, so a chaos harness can assert its run really exercised
// each fault class instead of passing vacuously.
type InjectedStats struct {
	Delays   uint64 // latency injections applied
	Stalls   uint64 // long stalls applied
	Partials uint64 // writes delivered in two chunks
	Resets   uint64 // connections hard-closed
}

// stats is the shared atomic backing for InjectedStats.
type stats struct {
	delays, stalls, partials, resets atomic.Uint64
}

// Listener wraps an accept loop; every accepted conn is wrapped with a
// deterministic per-connection fault stream.
type Listener struct {
	net.Listener
	cfg     Config
	accepts atomic.Uint64
	stats   stats
}

// Stats snapshots the faults injected so far across all accepted conns.
func (l *Listener) Stats() InjectedStats {
	return InjectedStats{
		Delays:   l.stats.delays.Load(),
		Stalls:   l.stats.stalls.Load(),
		Partials: l.stats.partials.Load(),
		Resets:   l.stats.resets.Load(),
	}
}

// Wrap returns ln with fault injection applied to every accepted conn.
func Wrap(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Accept accepts from the underlying listener and wraps the conn.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	id := l.accepts.Add(1)
	c := WrapConn(nc, l.cfg, id)
	c.stats = &l.stats
	return c, nil
}

// Conn is one fault-injected connection. Reads and writes may be used
// concurrently (one goroutine per direction, like net.Conn); each
// direction owns an independent decision stream.
type Conn struct {
	net.Conn
	cfg   Config
	rrng  rng    // read-direction decisions
	wrng  rng    // write-direction decisions
	stats *stats // shared with the Listener; nil for bare WrapConn
	reset atomic.Bool
}

// WrapConn wraps one conn; id differentiates connections under one seed
// (the Listener passes its accept index).
func WrapConn(nc net.Conn, cfg Config, id uint64) *Conn {
	base := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + id
	return &Conn{
		Conn: nc,
		cfg:  cfg,
		rrng: rng{state: base ^ 0x5265616452656164}, // "ReadRead"
		wrng: rng{state: base ^ 0x5772697465577269}, // "WriteWri"
	}
}

// fault is one I/O's drawn decision.
type fault struct {
	delay   time.Duration
	delayed bool // latency fired (vs. delay==0 draw)
	stalled bool // long stall fired, overrides latency
	partial bool
	reset   bool
	cutFrac float64 // where a partial write splits, in (0,1)
}

// draw consumes a fixed number of rng steps per call (six), so the
// decision stream depends only on how many I/Os ran in each direction,
// not on which faults earlier I/Os happened to take.
func (c *Conn) draw(r *rng, isWrite bool) fault {
	var f fault
	pLat, pStall, pReset := r.float(), r.float(), r.float()
	latFrac := r.float()
	pPartial := r.float()
	f.cutFrac = r.float()
	if c.cfg.LatencyProb > 0 && pLat < c.cfg.LatencyProb {
		f.delay = time.Duration(latFrac * float64(c.cfg.MaxLatency))
		f.delayed = true
	}
	if c.cfg.StallProb > 0 && pStall < c.cfg.StallProb {
		f.delay = c.cfg.Stall
		f.stalled = true
	}
	if isWrite && c.cfg.PartialProb > 0 && pPartial < c.cfg.PartialProb {
		f.partial = true
	}
	if c.cfg.ResetProb > 0 && pReset < c.cfg.ResetProb {
		f.reset = true
	}
	if c.stats != nil {
		if f.stalled {
			c.stats.stalls.Add(1)
		} else if f.delayed {
			c.stats.delays.Add(1)
		}
		if f.reset {
			c.stats.resets.Add(1)
		}
	}
	return f
}

// Read injects read-direction faults, then reads from the wrapped conn.
func (c *Conn) Read(p []byte) (int, error) {
	if c.reset.Load() {
		return 0, ErrInjectedReset
	}
	f := c.draw(&c.rrng, false)
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.reset {
		c.hardClose()
		return 0, ErrInjectedReset
	}
	return c.Conn.Read(p)
}

// Write injects write-direction faults, then writes to the wrapped conn.
// A partial fault splits p into two chunks with a pause between them; a
// reset fault combined with it delivers only the first chunk.
func (c *Conn) Write(p []byte) (int, error) {
	if c.reset.Load() {
		return 0, ErrInjectedReset
	}
	f := c.draw(&c.wrng, true)
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.reset && !f.partial {
		c.hardClose()
		return 0, ErrInjectedReset
	}
	if f.partial && len(p) > 1 {
		if c.stats != nil {
			c.stats.partials.Add(1)
		}
		cut := 1 + int(f.cutFrac*float64(len(p)-1))
		n, err := c.Conn.Write(p[:cut])
		if err != nil {
			return n, err
		}
		if c.cfg.ChunkDelay > 0 {
			time.Sleep(c.cfg.ChunkDelay)
		}
		if f.reset {
			// The nastiest case: a frame chopped mid-payload, then RST.
			c.hardClose()
			return n, ErrInjectedReset
		}
		m, err := c.Conn.Write(p[cut:])
		return n + m, err
	}
	if f.reset {
		c.hardClose()
		return 0, ErrInjectedReset
	}
	return c.Conn.Write(p)
}

// hardClose abandons the connection abruptly: SO_LINGER is zeroed when the
// transport supports it so the peer sees an RST, then the socket closes.
func (c *Conn) hardClose() {
	if c.reset.Swap(true) {
		return
	}
	type lingerer interface{ SetLinger(int) error }
	if tc, ok := c.Conn.(lingerer); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
}

// rng is splitmix64: tiny, seedable, and stateful per direction so the
// fault sequence is reproducible without any global locking.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(math.MaxUint64>>11+1)
}
