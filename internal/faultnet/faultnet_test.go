package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// chattyCfg exercises every fault kind with magnitudes small enough for a
// unit test.
var chattyCfg = Config{
	Seed:        7,
	LatencyProb: 0.2,
	MaxLatency:  time.Millisecond,
	StallProb:   0.05,
	Stall:       5 * time.Millisecond,
	PartialProb: 0.5,
	ChunkDelay:  time.Millisecond,
	ResetProb:   0.1,
}

// TestDecisionsDeterministic: the same seed and connection id produce the
// same fault sequence, a different id produces a different one.
func TestDecisionsDeterministic(t *testing.T) {
	draws := func(id uint64) []fault {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		c := WrapConn(a, chattyCfg, id)
		out := make([]fault, 0, 200)
		for i := 0; i < 100; i++ {
			out = append(out, c.draw(&c.wrng, true))
			out = append(out, c.draw(&c.rrng, false))
		}
		return out
	}
	first, again := draws(1), draws(1)
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("draw %d differs across identical configs: %+v vs %+v", i, first[i], again[i])
		}
	}
	other := draws(2)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("connection ids 1 and 2 produced identical fault sequences")
	}
}

// TestTransparentWhenZero: Config{} must not alter the byte stream or
// inject any error.
func TestTransparentWhenZero(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := Wrap(ln, Config{})
	defer fln.Close()

	msg := bytes.Repeat([]byte("ordo"), 1024)
	go func() {
		nc, err := fln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		io.Copy(nc, nc)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(nc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("zero config altered the byte stream")
	}
}

// TestDeliveredBytesIntact: with latency and partial writes (but no
// resets) every byte still arrives intact and in order — the injector
// delays and chops, it never corrupts.
func TestDeliveredBytesIntact(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seed:        3,
		LatencyProb: 0.3, MaxLatency: time.Millisecond,
		PartialProb: 0.8, ChunkDelay: time.Millisecond,
	}
	fln := Wrap(ln, cfg)
	defer fln.Close()
	go func() {
		nc, err := fln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		io.Copy(nc, nc)
	}()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))

	var msg []byte
	for i := 0; i < 2048; i++ {
		msg = append(msg, byte(i), byte(i>>8))
	}
	done := make(chan error, 1)
	go func() {
		_, err := nc.Write(msg)
		done <- err
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(nc, got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("faulted stream delivered corrupted bytes")
	}
}

// TestResetSurfacesCleanly: a reset-heavy config must fail I/O with
// ErrInjectedReset on the wrapped side (a net.ErrClosed underneath) and a
// hard connection error — never a hang — on the peer.
func TestResetSurfacesCleanly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := Wrap(ln, Config{Seed: 9, ResetProb: 1})
	defer fln.Close()

	// Dial and write before the server touches the conn, so the injected
	// RST cannot race the TCP handshake.
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}

	srvErr := make(chan error, 1)
	go func() {
		nc, err := fln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer nc.Close()
		buf := make([]byte, 16)
		_, err = nc.Read(buf)
		srvErr <- err
	}()

	if err := <-srvErr; !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("wrapped read error = %v, want ErrInjectedReset", err)
	}
	if !errors.Is(ErrInjectedReset, net.ErrClosed) {
		t.Fatal("ErrInjectedReset must wrap net.ErrClosed")
	}
	// The peer sees the connection die (reset or EOF) within its deadline,
	// never a hang or a clean read.
	buf := make([]byte, 16)
	if n, err := nc.Read(buf); err == nil {
		t.Fatalf("peer read %d bytes from a reset connection", n)
	}
}
