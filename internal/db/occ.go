package db

import (
	"sort"
	"sync/atomic"
)

// occDB is timestamp-ordered optimistic concurrency control: transactions
// allocate a begin timestamp, run against a footprint of optimistic reads
// and buffered writes, then lock the write set, allocate a commit
// timestamp, validate the read set against it, and write back (Figure 6).
//
// With the logical allocator both timestamp allocations are fetch-and-adds
// on one cache line — the collapse Figure 13 shows. With the Ordo
// allocator they are local clock reads; validation conservatively aborts
// when a read version and the commit timestamp fall inside the uncertainty
// window (§4.2).
type occDB struct {
	store    *svStore
	alloc    tsAllocator
	proto    Protocol
	sessions atomic.Uint64
}

func newOCC(schema Schema, alloc tsAllocator, proto Protocol) *occDB {
	return &occDB{store: newSVStore(schema), alloc: alloc, proto: proto}
}

// Protocol implements DB.
func (d *occDB) Protocol() Protocol { return d.proto }

// NewSession implements DB.
func (d *occDB) NewSession() Session {
	id := d.sessions.Add(1)
	return &occSession{db: d, token: id, clock: d.alloc()}
}

type occSession struct {
	db    *occDB
	token uint64 // nonzero row-lock owner token
	clock sessionClock

	commits uint64
	aborts  uint64
	lastCTS uint64

	tx occTx // reused across attempts
}

func (s *occSession) Stats() (uint64, uint64) { return s.commits, s.aborts }

// LastCommitTS implements CommitTS: the commit timestamp the session's
// latest successful Run allocated while its write locks were held.
func (s *occSession) LastCommitTS() uint64 { return s.lastCTS }

// ClockStats implements ClockHealth: validation-time timestamp comparisons
// and how many were uncertain (zero for the logical-clock variant).
func (s *occSession) ClockStats() (cmps, uncertain uint64) { return s.clock.stats() }

type occTx struct {
	s     *occSession
	ts    uint64
	acc   []access
	wmap  map[uint64]int // (table<<56|key-ish) → access index; small, rebuilt per txn
	valid bool
}

// key for wmap; tables are small integers so this cannot collide for
// realistic key spaces (keys < 2^56).
func fpKey(table int, key uint64) uint64 { return uint64(table)<<56 ^ key }

// Run implements Session.
func (s *occSession) Run(fn func(tx Tx) error) error {
	tx := &s.tx
	tx.s = s
	tx.ts = s.clock.next() // begin-timestamp allocation
	tx.acc = tx.acc[:0]
	if tx.wmap == nil {
		tx.wmap = make(map[uint64]int, 8)
	}
	clear(tx.wmap)
	tx.valid = true

	if err := fn(tx); err != nil {
		s.aborts++
		return err
	}
	if !tx.valid {
		s.aborts++
		return ErrConflict
	}
	if err := tx.commit(); err != nil {
		s.aborts++
		return err
	}
	s.commits++
	return nil
}

// Read implements Tx.
func (t *occTx) Read(table int, key uint64) ([]uint64, error) {
	if i, ok := t.wmap[fpKey(table, key)]; ok {
		if k := t.acc[i].kind; k == accessDelete || k == accessNone {
			return nil, ErrNotFound
		}
		return append([]uint64(nil), t.acc[i].vals...), nil
	}
	ix, ok := t.s.db.store.table(table)
	if !ok {
		return nil, ErrNotFound
	}
	r, ok := ix.get(key)
	if !ok {
		return nil, ErrNotFound
	}
	vals, wts, ok := r.readConsistent(nil)
	if !ok {
		t.valid = false
		return nil, ErrConflict
	}
	t.acc = append(t.acc, access{kind: accessRead, table: table, key: key, r: r, wts: wts, vals: vals})
	return append([]uint64(nil), vals...), nil
}

// Update implements Tx.
func (t *occTx) Update(table int, key uint64, vals []uint64) error {
	if i, ok := t.wmap[fpKey(table, key)]; ok && t.acc[i].kind != accessRead {
		if k := t.acc[i].kind; k == accessDelete || k == accessNone {
			return ErrNotFound
		}
		t.acc[i].vals = append(t.acc[i].vals[:0], vals...)
		return nil
	}
	ix, ok := t.s.db.store.table(table)
	if !ok {
		return ErrNotFound
	}
	r, ok := ix.get(key)
	if !ok {
		return ErrNotFound
	}
	t.wmap[fpKey(table, key)] = len(t.acc)
	t.acc = append(t.acc, access{kind: accessWrite, table: table, key: key, r: r,
		vals: append([]uint64(nil), vals...)})
	return nil
}

// Insert implements Tx.
func (t *occTx) Insert(table int, key uint64, vals []uint64) error {
	if _, ok := t.s.db.store.table(table); !ok {
		return ErrNotFound
	}
	t.wmap[fpKey(table, key)] = len(t.acc)
	t.acc = append(t.acc, access{kind: accessInsert, table: table, key: key,
		vals: append([]uint64(nil), vals...)})
	return nil
}

// commit runs OCC's lock → timestamp → validate → write sequence.
func (t *occTx) commit() error {
	s := t.s
	// Gather and sort the write set for deadlock-free locking.
	var writes []int
	for i := range t.acc {
		if k := t.acc[i].kind; k != accessRead && k != accessNone {
			writes = append(writes, i)
		}
	}
	if len(writes) == 0 {
		// Read-only: still validated against the commit timestamp below —
		// the paper's OCC allocates it regardless, which is exactly the
		// Figure 13 read-only bottleneck.
		cts := s.clock.next()
		for i := range t.acc {
			a := &t.acc[i]
			if a.kind != accessRead {
				continue // e.g. a cancelled insert
			}
			if a.r.wts.Load() != a.wts || !s.clock.certainlyBefore(a.wts, cts) {
				return ErrConflict
			}
		}
		s.lastCTS = cts
		return nil
	}
	sort.Slice(writes, func(i, j int) bool {
		a, b := &t.acc[writes[i]], &t.acc[writes[j]]
		if a.table != b.table {
			return a.table < b.table
		}
		return a.key < b.key
	})

	locked := make([]*row, 0, len(writes))
	unlockAll := func() {
		for _, r := range locked {
			r.unlock()
		}
	}
	// 1. Lock the write set; materialize inserts as locked rows.
	var inserted []access
	rollbackInserts := func() {
		for _, a := range inserted {
			ix, _ := s.db.store.table(a.table)
			ix.remove(a.key)
		}
	}
	for _, i := range writes {
		a := &t.acc[i]
		switch a.kind {
		case accessWrite, accessDelete:
			if !a.r.tryLock(s.token) {
				unlockAll()
				rollbackInserts()
				return ErrConflict
			}
			locked = append(locked, a.r)
		case accessInsert:
			r := newRow(a.vals)
			if !r.tryLock(s.token) {
				panic("db: fresh row lock failed")
			}
			ix, _ := s.db.store.table(a.table)
			if !ix.insert(a.key, r) {
				unlockAll()
				rollbackInserts()
				return ErrDuplicate
			}
			a.r = r
			locked = append(locked, r)
			inserted = append(inserted, *a)
		}
	}
	// 2. Commit timestamp.
	cts := s.clock.next()
	// 3. Validate the read set.
	for i := range t.acc {
		a := &t.acc[i]
		if a.kind != accessRead {
			continue
		}
		if owner := a.r.lock.Load(); owner != 0 && owner != s.token {
			unlockAll()
			rollbackInserts()
			return ErrConflict
		}
		if a.r.wts.Load() != a.wts || !s.clock.certainlyBefore(a.wts, cts) {
			unlockAll()
			rollbackInserts()
			return ErrConflict
		}
	}
	// 4. Write phase. Deletes unlink the row before its version bump so a
	// fresh lookup either misses or sees the new version.
	for _, i := range writes {
		a := &t.acc[i]
		switch a.kind {
		case accessWrite:
			a.r.writeData(a.vals)
		case accessDelete:
			ix, _ := s.db.store.table(a.table)
			ix.remove(a.key)
		}
		a.r.wts.Store(cts)
	}
	unlockAll()
	s.lastCTS = cts
	return nil
}

// Delete implements Tx: the victim row is locked like a write at commit,
// removed from the index, and its version bumped so concurrent readers'
// validation catches the removal.
func (t *occTx) Delete(table int, key uint64) error {
	if i, ok := t.wmap[fpKey(table, key)]; ok {
		switch t.acc[i].kind {
		case accessInsert:
			t.acc[i].kind = accessNone // deleting our own pending insert
			return nil
		case accessDelete, accessNone:
			return ErrNotFound
		case accessWrite:
			t.acc[i].kind = accessDelete
			return nil
		}
	}
	ix, ok := t.s.db.store.table(table)
	if !ok {
		return ErrNotFound
	}
	r, ok := ix.get(key)
	if !ok {
		return ErrNotFound
	}
	t.wmap[fpKey(table, key)] = len(t.acc)
	t.acc = append(t.acc, access{kind: accessDelete, table: table, key: key, r: r})
	return nil
}
