package db

import (
	"errors"
	"sync"
	"testing"
)

func TestDeleteBasic(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			seed(t, d, 0, map[uint64][]uint64{1: {10, 0}})
			s := d.NewSession()
			retry(t, s, func(tx Tx) error { return tx.Delete(0, 1) })
			err := s.Run(func(tx Tx) error {
				_, err := tx.Read(0, 1)
				return err
			})
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("read after delete: err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestDeleteMissingKey(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			s := d.NewSession()
			err := s.Run(func(tx Tx) error { return tx.Delete(0, 777) })
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("delete missing: err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			seed(t, d, 0, map[uint64][]uint64{2: {20, 0}})
			s := d.NewSession()
			retry(t, s, func(tx Tx) error { return tx.Delete(0, 2) })
			retry(t, s, func(tx Tx) error { return tx.Insert(0, 2, []uint64{21, 0}) })
			retry(t, s, func(tx Tx) error {
				v, err := tx.Read(0, 2)
				if err != nil {
					return err
				}
				if v[0] != 21 {
					t.Errorf("reincarnated row = %d, want 21", v[0])
				}
				return nil
			})
		})
	}
}

func TestReadOwnDelete(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			seed(t, d, 0, map[uint64][]uint64{3: {30, 0}})
			s := d.NewSession()
			retry(t, s, func(tx Tx) error {
				if err := tx.Delete(0, 3); err != nil {
					return err
				}
				if _, err := tx.Read(0, 3); !errors.Is(err, ErrNotFound) {
					t.Errorf("read-own-delete: err = %v, want ErrNotFound", err)
				}
				if err := tx.Update(0, 3, []uint64{1, 1}); !errors.Is(err, ErrNotFound) {
					t.Errorf("update-own-delete: err = %v, want ErrNotFound", err)
				}
				if err := tx.Delete(0, 3); !errors.Is(err, ErrNotFound) {
					t.Errorf("double delete: err = %v, want ErrNotFound", err)
				}
				return nil
			})
		})
	}
}

func TestDeleteOwnPendingInsertCancels(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			s := d.NewSession()
			retry(t, s, func(tx Tx) error {
				if err := tx.Insert(0, 4, []uint64{40, 0}); err != nil {
					return err
				}
				return tx.Delete(0, 4)
			})
			err := s.Run(func(tx Tx) error {
				_, err := tx.Read(0, 4)
				return err
			})
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("insert+delete in one txn left a row: err = %v", err)
			}
		})
	}
}

func TestUpdateThenDeleteInOneTxn(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			seed(t, d, 0, map[uint64][]uint64{5: {50, 0}})
			s := d.NewSession()
			retry(t, s, func(tx Tx) error {
				if err := tx.Update(0, 5, []uint64{51, 0}); err != nil {
					return err
				}
				return tx.Delete(0, 5)
			})
			err := s.Run(func(tx Tx) error {
				_, err := tx.Read(0, 5)
				return err
			})
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("update+delete left a row: err = %v", err)
			}
		})
	}
}

func TestAbortedDeleteKeepsRow(t *testing.T) {
	boom := errors.New("boom")
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			seed(t, d, 0, map[uint64][]uint64{6: {60, 0}})
			s := d.NewSession()
			err := s.Run(func(tx Tx) error {
				if err := tx.Delete(0, 6); err != nil {
					return err
				}
				return boom
			})
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v", err)
			}
			retry(t, s, func(tx Tx) error {
				v, err := tx.Read(0, 6)
				if err != nil {
					return err
				}
				if v[0] != 60 {
					t.Errorf("row mutated by aborted delete: %d", v[0])
				}
				return nil
			})
		})
	}
}

func TestConcurrentDeleteRace(t *testing.T) {
	// Two sessions race to delete the same key; exactly one must win and
	// the other must see ErrNotFound or ErrConflict, never both deleting.
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			seed(t, d, 0, map[uint64][]uint64{9: {90, 0}})
			var wins int64
			var mu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				s := d.NewSession()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						err := s.Run(func(tx Tx) error { return tx.Delete(0, 9) })
						switch {
						case err == nil:
							mu.Lock()
							wins++
							mu.Unlock()
							return
						case errors.Is(err, ErrNotFound):
							return
						case errors.Is(err, ErrConflict):
							continue
						default:
							t.Errorf("unexpected: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if wins != 1 {
				t.Fatalf("%d sessions deleted the row, want exactly 1", wins)
			}
		})
	}
}

func TestDeleteInvalidatesConcurrentReaders(t *testing.T) {
	// A transaction that read the row before a concurrent delete commits
	// must fail validation (single-version engines bump the version).
	for name, d := range engines(t) {
		if name == "HEKATON" || name == "HEKATON_ORDO" {
			continue // MVCC readers legitimately keep their snapshot
		}
		if name == "TICTOC" {
			// TicToc legitimately commits: its data-driven timestamps
			// serialize the reader BEFORE the delete (time traveling).
			continue
		}
		t.Run(name, func(t *testing.T) {
			seed(t, d, 0, map[uint64][]uint64{11: {1, 0}})
			s1 := d.NewSession()
			s2 := d.NewSession()
			err := s1.Run(func(tx Tx) error {
				if _, err := tx.Read(0, 11); err != nil {
					return err
				}
				// Concurrent delete commits inside our window.
				if err := s2.Run(func(tx2 Tx) error { return tx2.Delete(0, 11) }); err != nil {
					return err
				}
				// Force a write so validation runs with a write set too.
				return tx.Insert(1, 99, []uint64{1})
			})
			if !errors.Is(err, ErrConflict) {
				t.Fatalf("reader across a delete committed: err = %v, want ErrConflict", err)
			}
		})
	}
}
