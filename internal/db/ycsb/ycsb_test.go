package ycsb

import (
	"sync"
	"testing"

	"ordo/internal/core"
	"ordo/internal/db"
)

func allEngines(t *testing.T) map[string]db.DB {
	t.Helper()
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]db.DB)
	for _, p := range db.AllProtocols() {
		out[p.String()] = db.MustNew(p, Schema(), o)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	d := db.MustNew(db.Silo, Schema(), nil)
	if _, err := New(d, Config{Records: 0}); err == nil {
		t.Error("Records=0 accepted")
	}
	if _, err := New(d, Config{Records: 10, ReadRatio: 1.5}); err == nil {
		t.Error("ReadRatio=1.5 accepted")
	}
	w, err := New(d, Config{Records: 10})
	if err != nil {
		t.Fatal(err)
	}
	if w.cfg.OpsPerTxn != 2 {
		t.Errorf("default OpsPerTxn = %d, want 2", w.cfg.OpsPerTxn)
	}
}

func TestLoadAndReadOnly(t *testing.T) {
	for name, d := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			w, err := New(d, Config{Records: 200, OpsPerTxn: 2, ReadRatio: 1.0})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Load(); err != nil {
				t.Fatal(err)
			}
			wk := w.NewWorker(1)
			for i := 0; i < 200; i++ {
				if err := wk.RunOne(); err != nil {
					t.Fatalf("txn %d: %v", i, err)
				}
			}
			if wk.Txns != 200 {
				t.Fatalf("Txns = %d, want 200", wk.Txns)
			}
		})
	}
}

func TestMixedWorkloadConcurrent(t *testing.T) {
	for name, d := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			w, err := New(d, Config{Records: 64, OpsPerTxn: 2, ReadRatio: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Load(); err != nil {
				t.Fatal(err)
			}
			const workers = 4
			const per = 100
			var wg sync.WaitGroup
			wks := make([]*Worker, workers)
			for i := 0; i < workers; i++ {
				wks[i] = w.NewWorker(int64(i + 1))
				wg.Add(1)
				go func(wk *Worker) {
					defer wg.Done()
					for j := 0; j < per; j++ {
						if err := wk.RunOne(); err != nil {
							t.Errorf("txn failed: %v", err)
							return
						}
					}
				}(wks[i])
			}
			wg.Wait()
			var txns uint64
			for _, wk := range wks {
				txns += wk.Txns
			}
			if txns != workers*per {
				t.Fatalf("completed %d txns, want %d", txns, workers*per)
			}
		})
	}
}

func TestZipfWorkerSkewsKeys(t *testing.T) {
	d := db.MustNew(db.Silo, Schema(), nil)
	w, err := New(d, Config{Records: 1000, Theta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	wk := w.NewWorker(7)
	lowKeys := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		if wk.gen.Key() < 100 {
			lowKeys++
		}
	}
	// With theta=0.9 far more than the uniform 10% of draws land in the
	// first 10% of keys.
	if lowKeys < draws/4 {
		t.Fatalf("zipf draws in low range = %d/%d, want skew", lowKeys, draws)
	}
}

func TestUpdatesPersist(t *testing.T) {
	d := db.MustNew(db.TicToc, Schema(), nil)
	w, err := New(d, Config{Records: 16, OpsPerTxn: 1, ReadRatio: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Load(); err != nil {
		t.Fatal(err)
	}
	wk := w.NewWorker(3)
	for i := 0; i < 50; i++ {
		if err := wk.RunOne(); err != nil {
			t.Fatal(err)
		}
	}
	// 50 write txns of 1 op each bumped column 0 of various keys by one
	// each: the sum over all rows of (col0 - initial) must be 50.
	s := d.NewSession()
	var bumps uint64
	err = s.Run(func(tx db.Tx) error {
		bumps = 0
		for k := 0; k < 16; k++ {
			v, err := tx.Read(Table, uint64(k))
			if err != nil {
				return err
			}
			bumps += v[0] - uint64(k*Cols)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bumps != 50 {
		t.Fatalf("total bumps = %d, want 50", bumps)
	}
}
