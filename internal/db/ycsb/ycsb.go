// Package ycsb generates YCSB-style key-value transactions against the db
// engine, matching the paper's §6.5 configuration: two queries per
// transaction over a uniform random key distribution, with a configurable
// read ratio (Figure 13 uses 100% reads).
package ycsb

import (
	"fmt"
	"math/rand"

	"ordo/internal/db"
)

// Table is the single YCSB table's id in the schema.
const Table = 0

// Cols is the row width (YCSB's usertable has 10 fields; numeric columns
// here since the engine stores uint64 columns).
const Cols = 10

// Config parameterizes the workload.
type Config struct {
	// Records is the table size (paper-scale runs use millions; tests use
	// less).
	Records int
	// OpsPerTxn is the number of queries per transaction (paper: 2).
	OpsPerTxn int
	// ReadRatio is the fraction of queries that are reads (paper Fig. 13:
	// 1.0).
	ReadRatio float64
	// Theta is the Zipfian skew (0 = uniform, the paper's setting).
	Theta float64
}

// Schema returns the engine schema for this workload.
func Schema() db.Schema {
	return db.Schema{Tables: []db.TableDef{{Name: "usertable", Cols: Cols}}}
}

// Gen produces the workload's access pattern detached from any engine, so
// network clients (cmd/ordo-loadgen) draw the exact key distribution and
// read/write mix the in-process benchmark uses. Not goroutine-safe; give
// each worker its own seed.
type Gen struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewGen validates cfg and returns a deterministic generator.
func NewGen(cfg Config, seed int64) (*Gen, error) {
	if cfg.Records <= 0 {
		return nil, fmt.Errorf("ycsb: Records must be positive, got %d", cfg.Records)
	}
	if cfg.ReadRatio < 0 || cfg.ReadRatio > 1 {
		return nil, fmt.Errorf("ycsb: ReadRatio %f out of [0,1]", cfg.ReadRatio)
	}
	g := &Gen{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if cfg.Theta > 0 {
		g.zipf = rand.NewZipf(g.rng, 1+cfg.Theta, 1, uint64(cfg.Records-1))
	}
	return g, nil
}

// Key draws the next key.
func (g *Gen) Key() uint64 {
	if g.zipf != nil {
		return g.zipf.Uint64()
	}
	return uint64(g.rng.Intn(g.cfg.Records))
}

// IsRead draws whether the next query is a read.
func (g *Gen) IsRead() bool { return g.rng.Float64() < g.cfg.ReadRatio }

// Workload drives one engine instance.
type Workload struct {
	cfg Config
	d   db.DB
}

// New validates cfg and binds it to an engine.
func New(d db.DB, cfg Config) (*Workload, error) {
	if cfg.Records <= 0 {
		return nil, fmt.Errorf("ycsb: Records must be positive, got %d", cfg.Records)
	}
	if cfg.OpsPerTxn <= 0 {
		cfg.OpsPerTxn = 2
	}
	if cfg.ReadRatio < 0 || cfg.ReadRatio > 1 {
		return nil, fmt.Errorf("ycsb: ReadRatio %f out of [0,1]", cfg.ReadRatio)
	}
	return &Workload{cfg: cfg, d: d}, nil
}

// Load populates the table.
func (w *Workload) Load() error {
	s := w.d.NewSession()
	const batch = 64
	for base := 0; base < w.cfg.Records; base += batch {
		end := base + batch
		if end > w.cfg.Records {
			end = w.cfg.Records
		}
		err := db.RunWithRetry(s, maxRetries, func(tx db.Tx) error {
			for k := base; k < end; k++ {
				vals := make([]uint64, Cols)
				for c := range vals {
					vals[c] = uint64(k*Cols + c)
				}
				if err := tx.Insert(Table, uint64(k), vals); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("ycsb: load batch at %d: %w", base, err)
		}
	}
	return nil
}

// maxRetries caps a transaction's conflict retries; far above any abort
// chain a correct engine produces, so hitting it surfaces the conflict
// instead of spinning forever.
const maxRetries = 1 << 20

// Worker is one benchmark thread.
type Worker struct {
	w   *Workload
	s   db.Session
	gen *Gen

	// Txns and Aborts count completed transactions and aborted attempts.
	Txns   uint64
	Aborts uint64
}

// NewWorker creates a deterministic per-thread driver.
func (w *Workload) NewWorker(seed int64) *Worker {
	gen, err := NewGen(w.cfg, seed)
	if err != nil {
		// New already validated cfg; this cannot fail.
		panic(err)
	}
	return &Worker{w: w, s: w.d.NewSession(), gen: gen}
}

// RunOne executes one transaction to completion, retrying aborted attempts
// with capped backoff (db.RunWithRetry), and records stats from the
// session's own counters.
func (wk *Worker) RunOne() error {
	cfg := wk.w.cfg
	// Pre-draw the access pattern so retries replay the same transaction.
	keys := make([]uint64, cfg.OpsPerTxn)
	reads := make([]bool, cfg.OpsPerTxn)
	for i := range keys {
		keys[i] = wk.gen.Key()
		reads[i] = wk.gen.IsRead()
	}
	_, abortsBefore := wk.s.Stats()
	err := db.RunWithRetry(wk.s, maxRetries, func(tx db.Tx) error {
		for i := range keys {
			if reads[i] {
				if _, err := tx.Read(Table, keys[i]); err != nil {
					return err
				}
				continue
			}
			vals, err := tx.Read(Table, keys[i])
			if err != nil {
				return err
			}
			vals[0]++
			if err := tx.Update(Table, keys[i], vals); err != nil {
				return err
			}
		}
		return nil
	})
	_, abortsAfter := wk.s.Stats()
	wk.Aborts += abortsAfter - abortsBefore
	if err != nil {
		return err
	}
	wk.Txns++
	return nil
}
