// Package db is a DBx1000-style in-memory transactional engine built to
// compare concurrency-control protocols over identical storage, exactly as
// the paper's §6.5 evaluation does. Six protocols are provided:
//
//	OCC          timestamp-ordered optimistic CC with a global logical clock
//	OCCOrdo      the paper's redesign: timestamps from the Ordo primitive
//	Silo         epoch-based OCC (no per-transaction global timestamps)
//	TicToc       data-driven timestamping (no global clock at all)
//	Hekaton      serializable multi-version CC with a global logical clock
//	HekatonOrdo  Hekaton over the Ordo primitive
//
// Workload drivers (internal/db/ycsb, internal/db/tpcc) run unmodified over
// any protocol through the DB/Session/Tx interfaces.
package db

import (
	"errors"
	"fmt"
	"strings"

	"ordo/internal/core"
)

// Protocol identifies a concurrency-control scheme.
type Protocol int

const (
	// OCC is timestamp-based optimistic concurrency control with a global
	// logical clock (Kung & Robinson's scheme as realized in DBx1000).
	OCC Protocol = iota
	// OCCOrdo is OCC with Ordo timestamps (§4.2).
	OCCOrdo
	// Silo is epoch-based OCC (Tu et al., SOSP'13).
	Silo
	// TicToc computes commit timestamps from data-item metadata (Yu et
	// al., SIGMOD'16).
	TicToc
	// Hekaton is serializable optimistic MVCC (Larson et al., VLDB'12).
	Hekaton
	// HekatonOrdo is Hekaton with Ordo timestamps (§4.2).
	HekatonOrdo
)

// String returns the protocol's conventional name.
func (p Protocol) String() string {
	switch p {
	case OCC:
		return "OCC"
	case OCCOrdo:
		return "OCC_ORDO"
	case Silo:
		return "SILO"
	case TicToc:
		return "TICTOC"
	case Hekaton:
		return "HEKATON"
	case HekatonOrdo:
		return "HEKATON_ORDO"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Errors returned by transaction operations.
var (
	// ErrConflict aborts the attempt; the caller should retry the
	// transaction (its effects are discarded).
	ErrConflict = errors.New("db: transaction conflict")
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("db: key not found")
	// ErrDuplicate reports an insert over an existing key.
	ErrDuplicate = errors.New("db: duplicate key")
)

// TableDef declares one table.
type TableDef struct {
	Name string
	Cols int // fixed row width in uint64 columns
}

// Schema is the set of tables an engine serves.
type Schema struct {
	Tables []TableDef
}

// Tx is one transaction attempt. Reads observe a consistent snapshot or
// the attempt fails with ErrConflict at some point (possibly at Commit).
// All writes are buffered until commit.
type Tx interface {
	// Read returns the row's column values. The returned slice is a
	// private copy the caller may retain.
	Read(table int, key uint64) ([]uint64, error)
	// Update buffers a full-row write (the row must exist; pair with Read
	// for read-modify-write).
	Update(table int, key uint64, vals []uint64) error
	// Insert buffers a new row.
	Insert(table int, key uint64, vals []uint64) error
	// Delete buffers removal of the row (the row must exist).
	Delete(table int, key uint64) error
}

// Session is one worker's handle to the engine; not safe for concurrent
// use by multiple goroutines.
type Session interface {
	// Run executes one attempt of fn and tries to commit. ErrConflict
	// means the attempt aborted and may be retried; any other non-nil
	// error is fn's own and also aborts.
	Run(fn func(tx Tx) error) error
	// Stats returns the session's cumulative commit/abort counters.
	Stats() (commits, aborts uint64)
}

// CommitTS is an optional Session extension for engines that allocate an
// explicit per-transaction commit timestamp (OCC and Hekaton variants; the
// epoch/data-driven protocols have no machine-wide commit point to expose).
// Durable serving needs it: a committed batch's redo record is stamped with
// the engine's own commit timestamp so log replay order matches commit
// order machine-wide.
type CommitTS interface {
	// LastCommitTS returns the commit timestamp of the session's most
	// recent successful Run. Valid only between a successful Run and the
	// next Run on the same session (sessions are single-goroutine).
	LastCommitTS() uint64
}

// DB is a protocol instance over a schema.
type DB interface {
	NewSession() Session
	Protocol() Protocol
}

// New creates an engine running the given protocol. Ordo-based protocols
// require the calibrated primitive; others ignore it.
func New(p Protocol, schema Schema, o *core.Ordo) (DB, error) {
	switch p {
	case OCC:
		return newOCC(schema, logicalAllocator(), OCC), nil
	case OCCOrdo:
		if o == nil {
			return nil, fmt.Errorf("db: %v requires a calibrated Ordo primitive", p)
		}
		return newOCC(schema, ordoAllocator(o), OCCOrdo), nil
	case Silo:
		return newSilo(schema), nil
	case TicToc:
		return newTicToc(schema), nil
	case Hekaton:
		return newHekaton(schema, logicalAllocator(), nil), nil
	case HekatonOrdo:
		if o == nil {
			return nil, fmt.Errorf("db: %v requires a calibrated Ordo primitive", p)
		}
		return newHekaton(schema, ordoAllocator(o), o), nil
	}
	return nil, fmt.Errorf("db: unknown protocol %v", p)
}

// MustNew is New for static configurations (tests, examples).
func MustNew(p Protocol, schema Schema, o *core.Ordo) DB {
	d, err := New(p, schema, o)
	if err != nil {
		panic(err)
	}
	return d
}

// AllProtocols lists every protocol in the paper's presentation order
// (Figure 13's legend).
func AllProtocols() []Protocol {
	return []Protocol{Silo, TicToc, OCC, OCCOrdo, Hekaton, HekatonOrdo}
}

// ParseProtocol maps a protocol's conventional name (as printed by
// Protocol.String, e.g. "OCC_ORDO") back to the Protocol, ignoring case.
// Command-line -protocol flags parse through here so every binary accepts
// exactly the names every binary prints.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range AllProtocols() {
		if strings.EqualFold(s, p.String()) {
			return p, nil
		}
	}
	names := make([]string, 0, len(AllProtocols()))
	for _, p := range AllProtocols() {
		names = append(names, p.String())
	}
	return 0, fmt.Errorf("db: unknown protocol %q (known: %s)", s, strings.Join(names, ", "))
}
