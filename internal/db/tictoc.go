package db

import (
	"sort"
	"sync/atomic"
)

// tictocDB implements TicToc (Yu et al., SIGMOD'16): commit timestamps are
// computed from per-tuple write/read timestamps instead of a global clock.
// Reads can be "extended" (their rts advanced) at validation, which avoids
// many aborts but makes the validation phase traverse and CAS tuple
// metadata — the extra validation cost §6.5 measures at ~7% under TPC-C,
// where OCC_ORDO's ready-made global time wins by 1.24×.
type tictocDB struct {
	store    *svStore
	sessions atomic.Uint64
}

func newTicToc(schema Schema) *tictocDB {
	return &tictocDB{store: newSVStore(schema)}
}

// Protocol implements DB.
func (d *tictocDB) Protocol() Protocol { return TicToc }

// NewSession implements DB.
func (d *tictocDB) NewSession() Session {
	return &tictocSession{db: d, token: d.sessions.Add(1)}
}

type tictocSession struct {
	db    *tictocDB
	token uint64

	commits uint64
	aborts  uint64

	tx tictocTx
}

func (s *tictocSession) Stats() (uint64, uint64) { return s.commits, s.aborts }

type tictocTx struct {
	s     *tictocSession
	acc   []access
	wmap  map[uint64]int
	valid bool
}

// Run implements Session.
func (s *tictocSession) Run(fn func(tx Tx) error) error {
	tx := &s.tx
	tx.s = s
	tx.acc = tx.acc[:0]
	if tx.wmap == nil {
		tx.wmap = make(map[uint64]int, 8)
	}
	clear(tx.wmap)
	tx.valid = true

	if err := fn(tx); err != nil {
		s.aborts++
		return err
	}
	if !tx.valid {
		s.aborts++
		return ErrConflict
	}
	if err := tx.commit(); err != nil {
		s.aborts++
		return err
	}
	s.commits++
	return nil
}

// readTuple obtains a consistent (data, wts, rts) triple.
func readTuple(r *row, buf []uint64) (vals []uint64, wts, rts uint64, ok bool) {
	for attempt := 0; attempt < 8; attempt++ {
		w1 := r.wts.Load()
		t1 := r.rts.Load()
		if r.lock.Load() != 0 {
			continue
		}
		if cap(buf) < len(r.data) {
			buf = make([]uint64, len(r.data))
		}
		buf = buf[:len(r.data)]
		for i := range r.data {
			buf[i] = r.data[i].Load()
		}
		if r.lock.Load() == 0 && r.wts.Load() == w1 && r.rts.Load() >= t1 {
			return buf, w1, t1, true
		}
	}
	return nil, 0, 0, false
}

// Read implements Tx.
func (t *tictocTx) Read(table int, key uint64) ([]uint64, error) {
	if i, ok := t.wmap[fpKey(table, key)]; ok {
		if k := t.acc[i].kind; k == accessDelete || k == accessNone {
			return nil, ErrNotFound
		}
		return append([]uint64(nil), t.acc[i].vals...), nil
	}
	ix, ok := t.s.db.store.table(table)
	if !ok {
		return nil, ErrNotFound
	}
	r, ok := ix.get(key)
	if !ok {
		return nil, ErrNotFound
	}
	vals, wts, rts, ok := readTuple(r, nil)
	if !ok {
		t.valid = false
		return nil, ErrConflict
	}
	t.acc = append(t.acc, access{kind: accessRead, table: table, key: key, r: r,
		wts: wts, rts: rts, vals: vals})
	return append([]uint64(nil), vals...), nil
}

// Update implements Tx.
func (t *tictocTx) Update(table int, key uint64, vals []uint64) error {
	if i, ok := t.wmap[fpKey(table, key)]; ok && t.acc[i].kind != accessRead {
		if k := t.acc[i].kind; k == accessDelete || k == accessNone {
			return ErrNotFound
		}
		t.acc[i].vals = append(t.acc[i].vals[:0], vals...)
		return nil
	}
	ix, ok := t.s.db.store.table(table)
	if !ok {
		return ErrNotFound
	}
	r, ok := ix.get(key)
	if !ok {
		return ErrNotFound
	}
	t.wmap[fpKey(table, key)] = len(t.acc)
	t.acc = append(t.acc, access{kind: accessWrite, table: table, key: key, r: r,
		vals: append([]uint64(nil), vals...)})
	return nil
}

// Insert implements Tx.
func (t *tictocTx) Insert(table int, key uint64, vals []uint64) error {
	if _, ok := t.s.db.store.table(table); !ok {
		return ErrNotFound
	}
	t.wmap[fpKey(table, key)] = len(t.acc)
	t.acc = append(t.acc, access{kind: accessInsert, table: table, key: key,
		vals: append([]uint64(nil), vals...)})
	return nil
}

// commit implements TicToc's lock → compute-ts → validate/extend → write.
func (t *tictocTx) commit() error {
	s := t.s
	var writes []int
	for i := range t.acc {
		if k := t.acc[i].kind; k != accessRead && k != accessNone {
			writes = append(writes, i)
		}
	}
	sort.Slice(writes, func(i, j int) bool {
		a, b := &t.acc[writes[i]], &t.acc[writes[j]]
		if a.table != b.table {
			return a.table < b.table
		}
		return a.key < b.key
	})

	locked := make([]*row, 0, len(writes))
	var inserted []access
	fail := func(err error) error {
		for _, r := range locked {
			r.unlock()
		}
		for _, a := range inserted {
			ix, _ := s.db.store.table(a.table)
			ix.remove(a.key)
		}
		return err
	}

	// 1. Lock the write set; the commit timestamp must exceed each locked
	// tuple's rts (someone may have read the version we are replacing).
	var cts uint64
	for _, i := range writes {
		a := &t.acc[i]
		switch a.kind {
		case accessWrite, accessDelete:
			if !a.r.tryLock(s.token) {
				return fail(ErrConflict)
			}
			locked = append(locked, a.r)
			if v := a.r.rts.Load() + 1; v > cts {
				cts = v
			}
			if v := a.r.wts.Load() + 1; v > cts {
				cts = v
			}
		case accessInsert:
			r := newRow(a.vals)
			if !r.tryLock(s.token) {
				panic("db: fresh row lock failed")
			}
			ix, _ := s.db.store.table(a.table)
			if !ix.insert(a.key, r) {
				return fail(ErrDuplicate)
			}
			a.r = r
			locked = append(locked, r)
			inserted = append(inserted, *a)
		}
	}
	// Reads require cts ≥ observed wts (we read that version, so our
	// serialization point is at or after it).
	for i := range t.acc {
		a := &t.acc[i]
		if a.kind == accessRead && a.wts > cts {
			cts = a.wts
		}
	}

	// 2. Validate the read set at cts, extending rts where possible. This
	// per-tuple traversal is TicToc's data-driven timestamp computation.
	for i := range t.acc {
		a := &t.acc[i]
		if a.kind != accessRead {
			continue
		}
		if a.rts >= cts {
			continue // already readable at cts
		}
		// Need to extend: only valid if the version is unchanged and not
		// locked by another writer.
		if a.r.wts.Load() != a.wts {
			return fail(ErrConflict)
		}
		if owner := a.r.lock.Load(); owner != 0 && owner != s.token {
			return fail(ErrConflict)
		}
		for {
			cur := a.r.rts.Load()
			if cur >= cts {
				break
			}
			if a.r.rts.CompareAndSwap(cur, cts) {
				break
			}
		}
		// Re-check the version did not change under the extension.
		if a.r.wts.Load() != a.wts {
			return fail(ErrConflict)
		}
	}

	// 3. Write phase: publish data at wts = rts = cts; deletes unlink.
	for _, i := range writes {
		a := &t.acc[i]
		switch a.kind {
		case accessWrite:
			a.r.writeData(a.vals)
		case accessDelete:
			ix, _ := s.db.store.table(a.table)
			ix.remove(a.key)
		}
		a.r.wts.Store(cts)
		a.r.rts.Store(cts)
	}
	for _, r := range locked {
		r.unlock()
	}
	return nil
}

// Delete implements Tx: the victim row is locked like a write at commit,
// removed from the index, and its version bumped so concurrent readers'
// validation catches the removal.
func (t *tictocTx) Delete(table int, key uint64) error {
	if i, ok := t.wmap[fpKey(table, key)]; ok {
		switch t.acc[i].kind {
		case accessInsert:
			t.acc[i].kind = accessNone // deleting our own pending insert
			return nil
		case accessDelete, accessNone:
			return ErrNotFound
		case accessWrite:
			t.acc[i].kind = accessDelete
			return nil
		}
	}
	ix, ok := t.s.db.store.table(table)
	if !ok {
		return ErrNotFound
	}
	r, ok := ix.get(key)
	if !ok {
		return ErrNotFound
	}
	t.wmap[fpKey(table, key)] = len(t.acc)
	t.acc = append(t.acc, access{kind: accessDelete, table: table, key: key, r: r})
	return nil
}
