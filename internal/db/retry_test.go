package db

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// fakeSession scripts Run outcomes: it pops errors from script until the
// script is exhausted, then succeeds.
type fakeSession struct {
	script []error
	runs   int
}

func (f *fakeSession) Run(fn func(tx Tx) error) error {
	f.runs++
	if len(f.script) == 0 {
		return nil
	}
	err := f.script[0]
	f.script = f.script[1:]
	return err
}

func (f *fakeSession) Stats() (uint64, uint64) { return 0, 0 }

// conflictForever always conflicts.
type conflictForever struct{ runs int }

func (c *conflictForever) Run(func(tx Tx) error) error { c.runs++; return ErrConflict }
func (c *conflictForever) Stats() (uint64, uint64)     { return 0, 0 }

func TestRunWithRetryExhaustsThenSurfacesConflict(t *testing.T) {
	for _, max := range []int{0, 1, 3, 10} {
		s := &conflictForever{}
		err := RunWithRetry(s, max, func(Tx) error { return nil })
		if !errors.Is(err, ErrConflict) {
			t.Fatalf("max=%d: want ErrConflict, got %v", max, err)
		}
		// The first attempt plus exactly max retries.
		if want := max + 1; s.runs != want {
			t.Fatalf("max=%d: %d attempts, want %d", max, s.runs, want)
		}
	}
}

func TestRunWithRetrySucceedsAfterConflicts(t *testing.T) {
	s := &fakeSession{script: []error{ErrConflict, ErrConflict}}
	if err := RunWithRetry(s, 5, func(Tx) error { return nil }); err != nil {
		t.Fatalf("want success, got %v", err)
	}
	if s.runs != 3 {
		t.Fatalf("%d attempts, want 3", s.runs)
	}
}

func TestRunWithRetryDoesNotRetryOtherErrors(t *testing.T) {
	mine := fmt.Errorf("application says no")
	for _, e := range []error{mine, ErrNotFound, ErrDuplicate} {
		s := &fakeSession{script: []error{e, ErrConflict}}
		if err := RunWithRetry(s, 5, func(Tx) error { return nil }); !errors.Is(err, e) {
			t.Fatalf("want %v surfaced, got %v", e, err)
		}
		if s.runs != 1 {
			t.Fatalf("%v: %d attempts, want 1 (no retry)", e, s.runs)
		}
	}
	// Wrapped conflicts still count as conflicts.
	s := &fakeSession{script: []error{fmt.Errorf("attempt: %w", ErrConflict)}}
	if err := RunWithRetry(s, 5, func(Tx) error { return nil }); err != nil {
		t.Fatalf("wrapped conflict must retry; got %v", err)
	}
	if s.runs != 2 {
		t.Fatalf("wrapped conflict: %d attempts, want 2", s.runs)
	}
}

func TestParseProtocolRoundTrip(t *testing.T) {
	for _, p := range AllProtocols() {
		got, err := ParseProtocol(p.String())
		if err != nil {
			t.Fatalf("ParseProtocol(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParseProtocol(%q) = %v, want %v", p.String(), got, p)
		}
		// Case-insensitive: flags are typed by humans.
		lower, err := ParseProtocol(strings.ToLower(p.String()))
		if err != nil || lower != p {
			t.Fatalf("ParseProtocol(%q) = %v, %v; want %v", strings.ToLower(p.String()), lower, err, p)
		}
	}
	if _, err := ParseProtocol("MYSQL"); err == nil {
		t.Fatal("ParseProtocol must reject unknown names")
	}
	if _, err := ParseProtocol(""); err == nil {
		t.Fatal("ParseProtocol must reject the empty string")
	}
}
