package db

import (
	"sync/atomic"

	"ordo/internal/core"
)

// tsAllocator hands out transaction timestamps. The logical variant is the
// contended fetch-and-add the paper identifies as the bottleneck (62–80% of
// execution time under OCC/Hekaton at scale, §6.5); the Ordo variant reads
// the local invariant clock.
//
// Allocators are per-engine; sessions obtain a per-worker handle so the
// Ordo variant can chain NewTime from the worker's previous timestamp.
type tsAllocator func() sessionClock

// sessionClock is one worker's timestamp source.
type sessionClock interface {
	// next returns a fresh timestamp, strictly greater (machine-wide) than
	// any timestamp this worker obtained before.
	next() uint64
	// read returns a current timestamp without the strictly-greater
	// guarantee (begin timestamps).
	read() uint64
	// certainlyBefore reports a < b with certainty; uncertain pairs must
	// be treated as conflicts by callers.
	certainlyBefore(a, b uint64) bool
	// certainlyAtOrBefore reports that a ≤ b is safe to assume. For the
	// logical clock this is exact; for Ordo it requires certainty.
	certainlyAtOrBefore(a, b uint64) bool
	// stats returns cumulative comparison counters: total comparisons and
	// how many fell inside the uncertainty window. Exact clocks report
	// zero uncertain.
	stats() (cmps, uncertain uint64)
}

// ClockHealth is implemented by sessions whose timestamp comparisons can
// come out uncertain — the Ordo-based protocols. ClockStats reports how
// many clock comparisons the session performed and how many fell inside
// the uncertainty window (each of which forced a conservative abort or
// restart); the ratio is the session's Uncertain rate, the figure a
// health.Monitor snapshot reports machine-wide.
type ClockHealth interface {
	ClockStats() (cmps, uncertain uint64)
}

// logicalAllocator: one shared atomic counter.
func logicalAllocator() tsAllocator {
	var shared struct {
		_     [8]uint64
		clock atomic.Uint64
		_     [8]uint64
	}
	return func() sessionClock { return (*logicalSessionClock)(&shared.clock) }
}

type logicalSessionClock atomic.Uint64

func (c *logicalSessionClock) next() uint64                         { return (*atomic.Uint64)(c).Add(1) }
func (c *logicalSessionClock) read() uint64                         { return (*atomic.Uint64)(c).Load() }
func (c *logicalSessionClock) certainlyBefore(a, b uint64) bool     { return a < b }
func (c *logicalSessionClock) certainlyAtOrBefore(a, b uint64) bool { return a <= b }

// stats: a logical clock is exact — no comparison is ever uncertain, and
// the handle is shared across sessions, so per-session counting is neither
// meaningful nor race-free. Report nothing.
func (c *logicalSessionClock) stats() (uint64, uint64) { return 0, 0 }

// ordoAllocator: per-worker invariant-clock reads.
func ordoAllocator(o *core.Ordo) tsAllocator {
	return func() sessionClock { return &ordoSessionClock{o: o} }
}

type ordoSessionClock struct {
	o    *core.Ordo
	prev uint64

	// Comparison counters: sessions are single-goroutine, so plain fields
	// suffice (same discipline as the sessions' commit/abort counters).
	cmps      uint64
	uncertain uint64
}

func (c *ordoSessionClock) next() uint64 {
	c.prev = uint64(c.o.NewTime(core.Time(c.prev)))
	return c.prev
}

func (c *ordoSessionClock) read() uint64 { return uint64(c.o.GetTime()) }

func (c *ordoSessionClock) cmp(a, b uint64) int {
	r := c.o.CmpTime(core.Time(a), core.Time(b))
	c.cmps++
	if r == core.Uncertain {
		c.uncertain++
	}
	return r
}

func (c *ordoSessionClock) certainlyBefore(a, b uint64) bool {
	return c.cmp(a, b) == core.Before
}

func (c *ordoSessionClock) certainlyAtOrBefore(a, b uint64) bool {
	// Conservative: within the uncertainty window the relation cannot be
	// assumed; callers abort (§4.2's later-conflict rule).
	return c.cmp(a, b) == core.Before
}

func (c *ordoSessionClock) stats() (uint64, uint64) { return c.cmps, c.uncertain }
