package db

import (
	"errors"
	"sync/atomic"
	"testing"

	"ordo/internal/core"
)

// tickClock advances a fixed step on every read, so NewTime always
// terminates and tests can force timestamp pairs into (or out of) the
// uncertainty window by choosing step and boundary.
type tickClock struct {
	t    atomic.Uint64
	step uint64
}

func (c *tickClock) Now() core.Time { return core.Time(c.t.Add(c.step)) }

func TestHekatonOrdoUncertaintyRestarts(t *testing.T) {
	// A session's own NewTime chaining always separates its timestamps;
	// uncertainty arises ACROSS sessions: a fresh session whose begin
	// timestamp lands within one boundary of another session's commit
	// cannot place the new version and must restart (ErrConflict).
	const boundary = 1_000_000
	clock := &tickClock{step: 200}
	clock.t.Store(2 * boundary) // first NewTime(0) returns immediately
	o := core.New(clock, boundary)
	d := newHekaton(Schema{Tables: []TableDef{{Name: "t", Cols: 1}}}, ordoAllocator(o), o)

	s1 := d.NewSession()
	if err := s1.Run(func(tx Tx) error { return tx.Insert(0, 1, []uint64{7}) }); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// s2's begin timestamp is only a few ticks past the insert's commit:
	// the version is neither certainly visible nor certainly newer.
	s2 := d.NewSession()
	err := s2.Run(func(tx Tx) error {
		_, err := tx.Read(0, 1)
		return err
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("read inside uncertainty window: err = %v, want ErrConflict", err)
	}
	// A session beginning certainly later sees the row.
	clock.t.Add(4 * boundary)
	s3 := d.NewSession()
	err = s3.Run(func(tx Tx) error {
		v, err := tx.Read(0, 1)
		if err != nil {
			return err
		}
		if v[0] != 7 {
			t.Errorf("read %d, want 7", v[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("read after window: %v", err)
	}
}

func TestOCCOrdoUncertaintyAborts(t *testing.T) {
	// §4.2's conservative rule: a transaction whose read version falls
	// within one boundary of its commit timestamp aborts. Construct it by
	// having another session commit the row INSIDE this transaction's
	// window, right before the read.
	const boundary = 1_000_000
	clock := &tickClock{step: 200}
	clock.t.Store(2 * boundary)
	o := core.New(clock, boundary)
	d := newOCC(Schema{Tables: []TableDef{{Name: "t", Cols: 1}}}, ordoAllocator(o), OCCOrdo)

	s1 := d.NewSession()
	s2 := d.NewSession()
	err := s2.Run(func(tx Tx) error {
		// A concurrent writer commits now; its commit timestamp is only a
		// few ticks before ours will be.
		if err := s1.Run(func(tx1 Tx) error { return tx1.Insert(0, 1, []uint64{1}) }); err != nil {
			return err
		}
		_, err := tx.Read(0, 1)
		return err
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict (uncertain read-set validation)", err)
	}
	// The same read far outside the window commits fine.
	clock.t.Add(4 * boundary)
	s3 := d.NewSession()
	err = s3.Run(func(tx Tx) error {
		_, err := tx.Read(0, 1)
		return err
	})
	if err != nil {
		t.Fatalf("read after window: %v", err)
	}
}

func TestSiloEpochAdvances(t *testing.T) {
	d := newSilo(Schema{Tables: []TableDef{{Name: "t", Cols: 1}}})
	s := d.NewSession()
	if err := s.Run(func(tx Tx) error { return tx.Insert(0, 1, []uint64{0}) }); err != nil {
		t.Fatal(err)
	}
	before := d.epoch.Load()
	for i := 0; i < epochEvery+8; i++ {
		err := s.Run(func(tx Tx) error {
			v, err := tx.Read(0, 1)
			if err != nil {
				return err
			}
			v[0]++
			return tx.Update(0, 1, v)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if after := d.epoch.Load(); after <= before {
		t.Fatalf("epoch did not advance after %d commits: %d -> %d", epochEvery+8, before, after)
	}
}

func TestSiloTIDMonotonePerRow(t *testing.T) {
	d := newSilo(Schema{Tables: []TableDef{{Name: "t", Cols: 1}}})
	s := d.NewSession()
	if err := s.Run(func(tx Tx) error { return tx.Insert(0, 1, []uint64{0}) }); err != nil {
		t.Fatal(err)
	}
	ix, _ := d.store.table(0)
	r, _ := ix.get(1)
	prev := r.wts.Load()
	for i := 0; i < 50; i++ {
		if err := s.Run(func(tx Tx) error { return tx.Update(0, 1, []uint64{uint64(i)}) }); err != nil {
			t.Fatal(err)
		}
		cur := r.wts.Load()
		if cur <= prev {
			t.Fatalf("TID not monotone: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

func TestRowSeqlockDetectsWriter(t *testing.T) {
	r := newRow([]uint64{1, 2})
	// A held lock forces readConsistent to give up.
	if !r.tryLock(7) {
		t.Fatal("tryLock failed on fresh row")
	}
	if _, _, ok := r.readConsistent(nil); ok {
		t.Fatal("readConsistent succeeded under a held lock")
	}
	r.unlock()
	vals, wts, ok := r.readConsistent(nil)
	if !ok || vals[0] != 1 || vals[1] != 2 || wts != 0 {
		t.Fatalf("readConsistent = %v, %d, %v", vals, wts, ok)
	}
}

func TestRowLockExclusive(t *testing.T) {
	r := newRow([]uint64{0})
	if !r.tryLock(1) {
		t.Fatal("first lock failed")
	}
	if r.tryLock(2) {
		t.Fatal("second lock succeeded while held")
	}
	r.unlock()
	if !r.tryLock(2) {
		t.Fatal("lock after unlock failed")
	}
}

func TestIndexShardingAndRemove(t *testing.T) {
	ix := newIndex[int]()
	for k := uint64(0); k < 1000; k++ {
		if !ix.insert(k, int(k)) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if ix.insert(5, 99) {
		t.Fatal("duplicate insert succeeded")
	}
	for k := uint64(0); k < 1000; k++ {
		v, ok := ix.get(k)
		if !ok || v != int(k) {
			t.Fatalf("get(%d) = %d, %v", k, v, ok)
		}
	}
	ix.remove(500)
	if _, ok := ix.get(500); ok {
		t.Fatal("get after remove succeeded")
	}
	// Remove of a missing key is a no-op.
	ix.remove(500)
}

func TestUpdateMissingKey(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			s := d.NewSession()
			err := s.Run(func(tx Tx) error {
				return tx.Update(0, 424242, []uint64{1, 2})
			})
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("update missing key: err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestFpKeyInjectiveForRealisticKeys(t *testing.T) {
	seen := map[uint64]bool{}
	for table := 0; table < 8; table++ {
		for key := uint64(0); key < 1000; key += 13 {
			k := fpKey(table, key)
			if seen[k] {
				t.Fatalf("fpKey collision at table %d key %d", table, key)
			}
			seen[k] = true
		}
	}
}

func TestHekatonGC(t *testing.T) {
	clock := &tickClock{step: 50}
	o := core.New(clock, 100)
	d := newHekaton(Schema{Tables: []TableDef{{Name: "t", Cols: 1}}}, ordoAllocator(o), o)
	s := d.NewSession()
	if err := s.Run(func(tx Tx) error { return tx.Insert(0, 1, []uint64{0}) }); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 9; i++ {
		i := i
		if err := s.Run(func(tx Tx) error { return tx.Update(0, 1, []uint64{i}) }); err != nil {
			t.Fatal(err)
		}
	}
	chainLen := func() int {
		ix := d.tables[0]
		r, _ := ix.get(1)
		n := 0
		for cur := r.latest.Load(); cur != nil; cur = cur.next.Load() {
			n++
		}
		return n
	}
	if got := chainLen(); got != 10 {
		t.Fatalf("chain length = %d, want 10 before GC", got)
	}
	// Watermark before every version: nothing reclaimable.
	if freed := d.GC(1); freed != 0 {
		t.Fatalf("GC(old watermark) freed %d, want 0", freed)
	}
	// Watermark certainly after the newest version: only the head survives.
	clock.t.Add(10_000)
	watermark := uint64(clock.Now())
	if freed := d.GC(watermark); freed != 9 {
		t.Fatalf("GC freed %d versions, want 9", freed)
	}
	if got := chainLen(); got != 1 {
		t.Fatalf("chain length = %d after GC, want 1", got)
	}
	// The surviving version is the latest value and still readable.
	s2 := d.NewSession()
	if err := s2.Run(func(tx Tx) error {
		v, err := tx.Read(0, 1)
		if err != nil {
			return err
		}
		if v[0] != 9 {
			t.Errorf("read %d after GC, want 9", v[0])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// LastBegin exposes the session watermark source.
	if s2.(*hekSession).LastBegin() == 0 {
		t.Error("LastBegin() = 0 after a transaction")
	}
}

func TestHekatonGCKeepsPendingAndMidChain(t *testing.T) {
	clock := &tickClock{step: 50}
	o := core.New(clock, 100)
	d := newHekaton(Schema{Tables: []TableDef{{Name: "t", Cols: 1}}}, ordoAllocator(o), o)
	s := d.NewSession()
	if err := s.Run(func(tx Tx) error { return tx.Insert(0, 1, []uint64{0}) }); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		i := i
		if err := s.Run(func(tx Tx) error { return tx.Update(0, 1, []uint64{i}) }); err != nil {
			t.Fatal(err)
		}
	}
	// A watermark between versions keeps the visible-at-watermark version
	// and everything newer.
	ix := d.tables[0]
	r, _ := ix.get(1)
	// Find the middle version's begin as watermark.
	mid := r.latest.Load().next.Load().next.Load()
	// Certainly after mid's begin (boundary 100 < 150) but still certainly
	// before the next-newer version's begin (commits are NewTime-chained,
	// hundreds of ticks apart).
	watermark := mid.begin.Load() + 150
	freed := d.GC(watermark)
	if freed != 2 {
		t.Fatalf("GC freed %d, want the 2 oldest versions", freed)
	}
}
