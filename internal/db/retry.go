package db

import (
	"errors"
	"runtime"
	"time"
)

// Retry backoff schedule: the first few conflicts only yield the processor
// (an immediate retry usually wins — the conflicting transaction has
// already committed), then sleeps double from retryBaseSleep up to
// retryMaxSleep. The cap keeps worst-case added latency proportional to
// the retry count instead of exponential in it.
const (
	retrySpinAttempts = 4
	retryBaseSleep    = time.Microsecond
	retryMaxSleep     = 256 * time.Microsecond
)

// RunWithRetry runs fn in a transaction on s, retrying attempts that abort
// with ErrConflict up to max more times (max+1 attempts in total) with
// capped exponential backoff between attempts. The final conflict — or any
// error that is not a conflict, including fn's own — is returned as-is.
//
// This is the one conflict-retry loop in the tree: the server's batch
// executor, the YCSB driver and the examples all funnel through it, so the
// backoff policy is tuned in exactly one place.
func RunWithRetry(s Session, max int, fn func(Tx) error) error {
	for attempt := 0; ; attempt++ {
		err := s.Run(fn)
		if err == nil || !errors.Is(err, ErrConflict) || attempt >= max {
			return err
		}
		backoff(attempt)
	}
}

// backoff delays the (attempt+1)-th retry.
func backoff(attempt int) {
	if attempt < retrySpinAttempts {
		runtime.Gosched()
		return
	}
	d := retryBaseSleep << (attempt - retrySpinAttempts)
	if d <= 0 || d > retryMaxSleep {
		d = retryMaxSleep
	}
	time.Sleep(d)
}
