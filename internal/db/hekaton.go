package db

import (
	"math"
	"sync/atomic"

	"ordo/internal/core"
)

// hekatonDB is serializable optimistic multi-version concurrency control in
// the style of Hekaton (Larson et al., VLDB'12): every update appends a new
// version stamped with [begin, end) validity timestamps; readers choose the
// version visible at their begin timestamp; commit validates that every
// version read is still visible at the commit timestamp.
//
// Both the begin and the commit timestamp come from the engine's allocator:
// a global fetch-and-add in the original (which collapses even for
// read-only workloads — Figure 13), or the Ordo primitive (§4.2), where
// visibility comparisons go through cmp_time and transactions restart when
// a timestamp pair falls inside the uncertainty window.
type hekatonDB struct {
	schema   Schema
	tables   []*index[*vrow]
	alloc    tsAllocator
	ordo     *core.Ordo // nil for the logical variant
	sessions atomic.Uint64
}

const (
	infTS     = math.MaxUint64
	markerBit = uint64(1) << 63
)

func marker(token uint64) uint64   { return markerBit | token }
func isMarker(ts uint64) bool      { return ts&markerBit != 0 }
func markerToken(ts uint64) uint64 { return ts &^ markerBit }

// version is one immutable row version plus its validity interval.
type version struct {
	begin atomic.Uint64 // commit ts, or marker(token) while pending
	end   atomic.Uint64 // infTS, commit ts, or marker(token) = write lock
	// next points to the older version; atomic because GC truncates
	// chains concurrently with readers walking them.
	next atomic.Pointer[version]
	data []uint64
}

// vrow is a versioned row: a chain ordered newest first.
type vrow struct {
	latest atomic.Pointer[version]
}

func newHekaton(schema Schema, alloc tsAllocator, o *core.Ordo) *hekatonDB {
	d := &hekatonDB{schema: schema, alloc: alloc, ordo: o}
	d.tables = make([]*index[*vrow], len(schema.Tables))
	for i := range d.tables {
		d.tables[i] = newIndex[*vrow]()
	}
	return d
}

// Protocol implements DB.
func (d *hekatonDB) Protocol() Protocol {
	if d.ordo != nil {
		return HekatonOrdo
	}
	return Hekaton
}

// NewSession implements DB.
func (d *hekatonDB) NewSession() Session {
	return &hekSession{db: d, token: d.sessions.Add(1), clock: d.alloc()}
}

type hekSession struct {
	db    *hekatonDB
	token uint64
	clock sessionClock

	commits uint64
	aborts  uint64
	lastCTS uint64

	tx hekTx
}

func (s *hekSession) Stats() (uint64, uint64) { return s.commits, s.aborts }

// LastCommitTS implements CommitTS: the commit timestamp the session's
// latest successful Run published its versions under.
func (s *hekSession) LastCommitTS() uint64 { return s.lastCTS }

// ClockStats implements ClockHealth: visibility/validation timestamp
// comparisons and how many were uncertain (zero for the logical variant).
func (s *hekSession) ClockStats() (cmps, uncertain uint64) { return s.clock.stats() }

// hekRead is a read-set entry: the version observed.
type hekRead struct{ v *version }

// hekWrite is a write-set entry: old version (write-locked via its end
// marker) and the pending new head version. old == nil for inserts.
type hekWrite struct {
	table int
	key   uint64
	r     *vrow
	old   *version
	neu   *version
}

type hekTx struct {
	s      *hekSession
	bts    uint64
	reads  []hekRead
	writes []hekWrite
	wmap   map[uint64]int
	valid  bool
}

// LastBegin returns the session's most recent begin timestamp; the
// minimum across sessions is a safe GC watermark.
func (s *hekSession) LastBegin() uint64 { return s.tx.bts }

// Run implements Session.
func (s *hekSession) Run(fn func(tx Tx) error) error {
	tx := &s.tx
	tx.s = s
	tx.bts = s.clock.next() // begin-timestamp allocation (the MVCC bottleneck)
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	if tx.wmap == nil {
		tx.wmap = make(map[uint64]int, 8)
	}
	clear(tx.wmap)
	tx.valid = true

	err := fn(tx)
	if err == nil && !tx.valid {
		err = ErrConflict
	}
	if err != nil {
		tx.rollback()
		s.aborts++
		return err
	}
	if err := tx.commit(); err != nil {
		s.aborts++
		return err
	}
	s.commits++
	return nil
}

// visible walks the chain for the version visible at bts. It reports
// conflict=true when a committed version had to be skipped only because of
// timestamp uncertainty (restart the transaction).
func (t *hekTx) visible(r *vrow) (v *version, conflict bool) {
	clock := t.s.clock
	sawCommitted := false
	for cur := r.latest.Load(); cur != nil; cur = cur.next.Load() {
		b := cur.begin.Load()
		if isMarker(b) {
			if markerToken(b) == t.s.token {
				return cur, false // our own pending write
			}
			continue // someone else's uncommitted version
		}
		sawCommitted = true
		if !clock.certainlyAtOrBefore(b, t.bts) {
			continue // began after us (or uncertain): older version needed
		}
		e := cur.end.Load()
		if e == infTS || isMarker(e) {
			// Current version (possibly write-locked by a concurrent
			// transaction; reading it is allowed, validation decides).
			return cur, false
		}
		if clock.certainlyBefore(t.bts, e) {
			return cur, false // ended after our begin
		}
		if clock.certainlyAtOrBefore(e, t.bts) {
			// The newest version that began before us also ended before
			// us with no successor: the row is deleted at our snapshot.
			return nil, false
		}
		// Inside the uncertainty window: restart.
		return nil, sawCommitted
	}
	return nil, sawCommitted
}

// Read implements Tx.
func (t *hekTx) Read(table int, key uint64) ([]uint64, error) {
	if i, ok := t.wmap[fpKey(table, key)]; ok {
		if t.writes[i].neu == nil {
			return nil, ErrNotFound // deleted (or cancelled) in this txn
		}
		return append([]uint64(nil), t.writes[i].neu.data...), nil
	}
	if table < 0 || table >= len(t.s.db.tables) {
		return nil, ErrNotFound
	}
	r, ok := t.s.db.tables[table].get(key)
	if !ok {
		return nil, ErrNotFound
	}
	v, conflict := t.visible(r)
	if v == nil {
		if conflict {
			t.valid = false
			return nil, ErrConflict
		}
		return nil, ErrNotFound
	}
	if isMarker(v.begin.Load()) {
		// Our own pending version reached through the chain.
		return append([]uint64(nil), v.data...), nil
	}
	t.reads = append(t.reads, hekRead{v: v})
	return append([]uint64(nil), v.data...), nil
}

// Update implements Tx.
func (t *hekTx) Update(table int, key uint64, vals []uint64) error {
	if i, ok := t.wmap[fpKey(table, key)]; ok {
		if t.writes[i].neu == nil {
			return ErrNotFound // deleted (or cancelled) in this txn
		}
		t.writes[i].neu.data = append(t.writes[i].neu.data[:0], vals...)
		return nil
	}
	if table < 0 || table >= len(t.s.db.tables) {
		return ErrNotFound
	}
	r, ok := t.s.db.tables[table].get(key)
	if !ok {
		return ErrNotFound
	}
	old, conflict := t.visible(r)
	if old == nil || isMarker(old.begin.Load()) {
		if conflict {
			t.valid = false
			return ErrConflict
		}
		return ErrNotFound
	}
	// Write-lock the old version by installing our marker in its end.
	if !old.end.CompareAndSwap(infTS, marker(t.s.token)) {
		t.valid = false
		return ErrConflict
	}
	neu := &version{data: append([]uint64(nil), vals...)}
	neu.next.Store(old)
	neu.begin.Store(marker(t.s.token))
	neu.end.Store(infTS)
	if !r.latest.CompareAndSwap(old, neu) {
		// Head moved: a concurrent writer installed a pending version it
		// could only have built by locking old.end — impossible, since we
		// hold it. A head of someone's aborted-and-restored chain is the
		// only racer; treat as conflict.
		old.end.Store(infTS)
		t.valid = false
		return ErrConflict
	}
	t.wmap[fpKey(table, key)] = len(t.writes)
	t.writes = append(t.writes, hekWrite{table: table, key: key, r: r, old: old, neu: neu})
	return nil
}

// Insert implements Tx. Inserting over a fully deleted chain (no visible
// version) appends a new head version, the MVCC reincarnation path.
func (t *hekTx) Insert(table int, key uint64, vals []uint64) error {
	if table < 0 || table >= len(t.s.db.tables) {
		return ErrNotFound
	}
	neu := &version{data: append([]uint64(nil), vals...)}
	neu.begin.Store(marker(t.s.token))
	neu.end.Store(infTS)
	r := &vrow{}
	r.latest.Store(neu)
	if !t.s.db.tables[table].insert(key, r) {
		// Key exists: allowed only when no version is visible (deleted).
		existing, ok := t.s.db.tables[table].get(key)
		if !ok {
			return ErrConflict // removed under us; retry
		}
		if v, conflict := t.visible(existing); v != nil || conflict {
			if conflict {
				t.valid = false
				return ErrConflict
			}
			return ErrDuplicate
		}
		head := existing.latest.Load()
		neu.next.Store(head)
		if !existing.latest.CompareAndSwap(head, neu) {
			t.valid = false
			return ErrConflict // racing reincarnation
		}
		t.wmap[fpKey(table, key)] = len(t.writes)
		t.writes = append(t.writes, hekWrite{table: table, key: key, r: existing, old: nil, neu: neu})
		return nil
	}
	t.wmap[fpKey(table, key)] = len(t.writes)
	t.writes = append(t.writes, hekWrite{table: table, key: key, r: r, old: nil, neu: neu})
	return nil
}

// Delete implements Tx: the visible version is write-locked through its
// end field and finalized with the commit timestamp, with no successor —
// readers beginning certainly later see no visible version.
func (t *hekTx) Delete(table int, key uint64) error {
	if i, ok := t.wmap[fpKey(table, key)]; ok {
		w := &t.writes[i]
		if w.neu == nil {
			return ErrNotFound // already deleted in this transaction
		}
		if w.old == nil {
			// Deleting our own pending insert: unwind it entirely.
			if w.r.latest.Load() == w.neu {
				if next := w.neu.next.Load(); next == nil {
					t.s.db.tables[table].remove(key)
				} else {
					w.r.latest.CompareAndSwap(w.neu, next)
				}
			}
			w.neu = nil
			w.r = nil
			return nil
		}
		// Convert our pending update into a delete: pop the pending
		// version; old stays end-marked by us.
		w.r.latest.CompareAndSwap(w.neu, w.old)
		w.neu = nil
		return nil
	}
	if table < 0 || table >= len(t.s.db.tables) {
		return ErrNotFound
	}
	r, ok := t.s.db.tables[table].get(key)
	if !ok {
		return ErrNotFound
	}
	old, conflict := t.visible(r)
	if old == nil || isMarker(old.begin.Load()) {
		if conflict {
			t.valid = false
			return ErrConflict
		}
		return ErrNotFound
	}
	if !old.end.CompareAndSwap(infTS, marker(t.s.token)) {
		t.valid = false
		return ErrConflict
	}
	t.wmap[fpKey(table, key)] = len(t.writes)
	t.writes = append(t.writes, hekWrite{table: table, key: key, r: r, old: old, neu: nil})
	return nil
}

// GC truncates version chains: for every row it keeps the newest
// committed version visible at the watermark (plus everything newer and
// anything pending) and unlinks the older tail for the collector. The
// watermark must be at or below every active transaction's begin
// timestamp — the min of LastBegin across sessions, or a clock reading
// taken when no transaction was in flight. Returns versions unlinked.
//
// This is the paper's §1 quiescence use-case applied to the MVCC store:
// with Ordo, the watermark is one local clock read, not an epoch scheme.
func (d *hekatonDB) GC(watermark uint64) int {
	clock := d.alloc()
	freed := 0
	for _, table := range d.tables {
		for sh := range table.shards {
			s := &table.shards[sh]
			s.mu.RLock()
			for _, r := range s.m {
				for cur := r.latest.Load(); cur != nil; cur = cur.next.Load() {
					b := cur.begin.Load()
					if isMarker(b) {
						continue // pending: must keep, and keep walking
					}
					if clock.certainlyAtOrBefore(b, watermark) {
						// cur is the visible version for the oldest
						// possible reader; everything older is garbage.
						for tail := cur.next.Load(); tail != nil; tail = tail.next.Load() {
							freed++
						}
						cur.next.Store(nil)
						break
					}
				}
			}
			s.mu.RUnlock()
		}
	}
	return freed
}

// rollback undoes pending writes after an execution-time failure.
func (t *hekTx) rollback() {
	for i := len(t.writes) - 1; i >= 0; i-- {
		w := t.writes[i]
		if w.r == nil {
			continue // cancelled (insert deleted within the transaction)
		}
		if w.old == nil {
			// Pending insert: a fresh row leaves the index; a
			// reincarnation pops the pending head.
			if next := (*version)(nil); w.neu != nil {
				next = w.neu.next.Load()
				if next != nil {
					w.r.latest.CompareAndSwap(w.neu, next)
					continue
				}
			}
			t.s.db.tables[w.table].remove(w.key)
			continue
		}
		if w.neu != nil {
			w.r.latest.CompareAndSwap(w.neu, w.old)
		}
		w.old.end.Store(infTS)
	}
	t.writes = t.writes[:0]
}

// commit validates the read set at the commit timestamp and finalizes the
// pending versions.
func (t *hekTx) commit() error {
	s := t.s
	cts := s.clock.next()
	for _, rd := range t.reads {
		e := rd.v.end.Load()
		switch {
		case e == infTS:
			// Still current: fine.
		case isMarker(e):
			if markerToken(e) != s.token {
				// Another transaction is replacing what we read and may
				// commit before us: conservative abort.
				t.rollback()
				return ErrConflict
			}
		default:
			// Ended at e: our serialization point cts must precede it.
			if !s.clock.certainlyBefore(cts, e) {
				t.rollback()
				return ErrConflict
			}
		}
	}
	// Finalize: publish begin/end timestamps. A delete has no new version;
	// a cancelled entry has nothing at all.
	for _, w := range t.writes {
		if w.r == nil {
			continue
		}
		if w.neu != nil {
			w.neu.begin.Store(cts)
		}
		if w.old != nil {
			w.old.end.Store(cts)
		}
	}
	s.lastCTS = cts
	return nil
}
