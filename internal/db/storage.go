package db

import (
	"sync"
	"sync/atomic"
)

// indexShards must be a power of two.
const indexShards = 64

// index is a sharded hash index from key to row pointer. Index operations
// themselves are latched (as in DBx1000); transactional consistency of row
// contents is the CC protocol's job.
type index[R any] struct {
	shards [indexShards]struct {
		mu sync.RWMutex
		m  map[uint64]R
	}
}

func newIndex[R any]() *index[R] {
	ix := &index[R]{}
	for i := range ix.shards {
		ix.shards[i].m = make(map[uint64]R)
	}
	return ix
}

func (ix *index[R]) shard(key uint64) *struct {
	mu sync.RWMutex
	m  map[uint64]R
} {
	// Multiplicative hash spreads sequential keys across shards.
	h := key * 0x9E3779B97F4A7C15
	return &ix.shards[h>>58&(indexShards-1)]
}

func (ix *index[R]) get(key uint64) (R, bool) {
	s := ix.shard(key)
	s.mu.RLock()
	r, ok := s.m[key]
	s.mu.RUnlock()
	return r, ok
}

// remove deletes key (insert rollback on abort).
func (ix *index[R]) remove(key uint64) {
	s := ix.shard(key)
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
}

// insert stores r under key; it reports false if key already exists.
func (ix *index[R]) insert(key uint64, r R) bool {
	s := ix.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[key]; dup {
		return false
	}
	s.m[key] = r
	return true
}

// row is a single-version row shared by the OCC, Silo and TicToc engines.
// The metadata words carry protocol-specific meaning:
//
//	OCC:    wts = last commit timestamp
//	Silo:   wts = TID word (epoch | sequence)
//	TicToc: wts = write timestamp, rts = read timestamp
//
// Row data is read optimistically seqlock-style: load wts, check the lock,
// copy columns, re-check — a torn read is detected and retried or aborted.
type row struct {
	lock atomic.Uint64 // 0 = free, else owner token
	wts  atomic.Uint64
	rts  atomic.Uint64
	data []atomic.Uint64
}

func newRow(vals []uint64) *row {
	r := &row{data: make([]atomic.Uint64, len(vals))}
	for i, v := range vals {
		r.data[i].Store(v)
	}
	return r
}

// tryLock acquires the row's write lock with the given owner token.
func (r *row) tryLock(owner uint64) bool {
	return r.lock.CompareAndSwap(0, owner)
}

func (r *row) unlock() { r.lock.Store(0) }

// readConsistent copies the row's columns along with the wts observed,
// retrying a bounded number of times around concurrent writers. ok=false
// means a stable snapshot could not be obtained (treat as conflict).
func (r *row) readConsistent(buf []uint64) (vals []uint64, wts uint64, ok bool) {
	for attempt := 0; attempt < 8; attempt++ {
		v1 := r.wts.Load()
		if r.lock.Load() != 0 {
			continue
		}
		if cap(buf) < len(r.data) {
			buf = make([]uint64, len(r.data))
		}
		buf = buf[:len(r.data)]
		for i := range r.data {
			buf[i] = r.data[i].Load()
		}
		if r.lock.Load() == 0 && r.wts.Load() == v1 {
			return buf, v1, true
		}
	}
	return nil, 0, false
}

// writeData stores the columns; the caller must hold the row lock.
func (r *row) writeData(vals []uint64) {
	for i := range vals {
		r.data[i].Store(vals[i])
	}
}

// svStore is the storage layer shared by the single-version engines.
type svStore struct {
	schema Schema
	tables []*index[*row]
}

func newSVStore(schema Schema) *svStore {
	s := &svStore{schema: schema, tables: make([]*index[*row], len(schema.Tables))}
	for i := range s.tables {
		s.tables[i] = newIndex[*row]()
	}
	return s
}

func (s *svStore) table(t int) (*index[*row], bool) {
	if t < 0 || t >= len(s.tables) {
		return nil, false
	}
	return s.tables[t], true
}

// accessKind distinguishes read-set and write-set entries.
type accessKind uint8

const (
	accessRead accessKind = iota
	accessWrite
	accessInsert
	accessDelete
	// accessNone marks a cancelled entry (e.g. a pending insert that was
	// deleted in the same transaction); commit skips it.
	accessNone
)

// access is one read/write/insert footprint entry of a transaction.
type access struct {
	kind  accessKind
	table int
	key   uint64
	r     *row     // nil for inserts until commit
	wts   uint64   // version observed at read
	rts   uint64   // TicToc: read timestamp observed
	vals  []uint64 // buffered write / insert values; read snapshot
}
