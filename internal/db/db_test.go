package db

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ordo/internal/core"
)

var testSchema = Schema{Tables: []TableDef{
	{Name: "main", Cols: 2},
	{Name: "aux", Cols: 1},
}}

func engines(t *testing.T) map[string]DB {
	t.Helper()
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	out := make(map[string]DB)
	for _, p := range AllProtocols() {
		d, err := New(p, testSchema, o)
		if err != nil {
			t.Fatalf("New(%v): %v", p, err)
		}
		out[p.String()] = d
	}
	return out
}

// seed inserts key→vals rows through a transaction, retrying conflicts.
func seed(t *testing.T, d DB, table int, rows map[uint64][]uint64) {
	t.Helper()
	s := d.NewSession()
	for k, v := range rows {
		k, v := k, v
		retry(t, s, func(tx Tx) error { return tx.Insert(table, k, v) })
	}
}

func retry(t *testing.T, s Session, fn func(tx Tx) error) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		err := s.Run(fn)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrConflict) {
			t.Fatalf("txn failed: %v", err)
		}
	}
	t.Fatal("txn did not commit after 10000 attempts")
}

func TestProtocolNames(t *testing.T) {
	want := map[Protocol]string{
		OCC: "OCC", OCCOrdo: "OCC_ORDO", Silo: "SILO",
		TicToc: "TICTOC", Hekaton: "HEKATON", HekatonOrdo: "HEKATON_ORDO",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), name)
		}
	}
}

func TestOrdoProtocolsRequirePrimitive(t *testing.T) {
	for _, p := range []Protocol{OCCOrdo, HekatonOrdo} {
		if _, err := New(p, testSchema, nil); err == nil {
			t.Errorf("New(%v, nil ordo) succeeded", p)
		}
	}
}

func TestInsertReadUpdate(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			s := d.NewSession()
			retry(t, s, func(tx Tx) error {
				return tx.Insert(0, 1, []uint64{10, 20})
			})
			retry(t, s, func(tx Tx) error {
				v, err := tx.Read(0, 1)
				if err != nil {
					return err
				}
				if v[0] != 10 || v[1] != 20 {
					t.Errorf("read %v, want [10 20]", v)
				}
				return nil
			})
			retry(t, s, func(tx Tx) error {
				return tx.Update(0, 1, []uint64{11, 21})
			})
			retry(t, s, func(tx Tx) error {
				v, err := tx.Read(0, 1)
				if err != nil {
					return err
				}
				if v[0] != 11 || v[1] != 21 {
					t.Errorf("read after update %v, want [11 21]", v)
				}
				return nil
			})
		})
	}
}

func TestReadNotFound(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			s := d.NewSession()
			err := s.Run(func(tx Tx) error {
				_, err := tx.Read(0, 999)
				return err
			})
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestDuplicateInsert(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			seed(t, d, 0, map[uint64][]uint64{5: {1, 1}})
			s := d.NewSession()
			var sawDup bool
			for i := 0; i < 100; i++ {
				err := s.Run(func(tx Tx) error { return tx.Insert(0, 5, []uint64{2, 2}) })
				if errors.Is(err, ErrDuplicate) {
					sawDup = true
					break
				}
				if err == nil {
					t.Fatal("duplicate insert committed")
				}
			}
			if !sawDup {
				t.Fatal("never observed ErrDuplicate")
			}
		})
	}
}

func TestReadOwnWrites(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			seed(t, d, 0, map[uint64][]uint64{7: {100, 0}})
			s := d.NewSession()
			retry(t, s, func(tx Tx) error {
				if err := tx.Update(0, 7, []uint64{200, 0}); err != nil {
					return err
				}
				v, err := tx.Read(0, 7)
				if err != nil {
					return err
				}
				if v[0] != 200 {
					t.Errorf("read-own-write = %d, want 200", v[0])
				}
				return nil
			})
		})
	}
}

func TestAbortedTxnLeavesNoTrace(t *testing.T) {
	boom := errors.New("boom")
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			seed(t, d, 0, map[uint64][]uint64{3: {30, 0}})
			s := d.NewSession()
			err := s.Run(func(tx Tx) error {
				if err := tx.Update(0, 3, []uint64{999, 0}); err != nil {
					return err
				}
				if err := tx.Insert(0, 4, []uint64{40, 0}); err != nil {
					return err
				}
				return boom
			})
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want boom", err)
			}
			retry(t, s, func(tx Tx) error {
				v, err := tx.Read(0, 3)
				if err != nil {
					return err
				}
				if v[0] != 30 {
					t.Errorf("aborted update leaked: %d", v[0])
				}
				if _, err := tx.Read(0, 4); !errors.Is(err, ErrNotFound) {
					t.Errorf("aborted insert leaked: err = %v", err)
				}
				return nil
			})
		})
	}
}

func TestConcurrentCounterNoLostUpdates(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			seed(t, d, 0, map[uint64][]uint64{1: {0, 0}})
			const workers = 4
			const per = 150
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				s := d.NewSession()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						for {
							err := s.Run(func(tx Tx) error {
								v, err := tx.Read(0, 1)
								if err != nil {
									return err
								}
								return tx.Update(0, 1, []uint64{v[0] + 1, v[1]})
							})
							if err == nil {
								break
							}
							if !errors.Is(err, ErrConflict) && !errors.Is(err, ErrDuplicate) {
								t.Errorf("unexpected error: %v", err)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			s := d.NewSession()
			retry(t, s, func(tx Tx) error {
				v, err := tx.Read(0, 1)
				if err != nil {
					return err
				}
				if v[0] != workers*per {
					t.Errorf("counter = %d, want %d", v[0], workers*per)
				}
				return nil
			})
		})
	}
}

func TestTransferInvariantSerializable(t *testing.T) {
	// Bank transfers between 8 accounts with concurrent full-scan audits:
	// every committed audit must observe the exact total.
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			const accounts = 8
			const total = accounts * 100
			rows := make(map[uint64][]uint64)
			for i := uint64(0); i < accounts; i++ {
				rows[i] = []uint64{100, 0}
			}
			seed(t, d, 0, rows)

			var wg sync.WaitGroup
			var torn int64
			var mu sync.Mutex
			for w := 0; w < 2; w++ {
				s := d.NewSession()
				wg.Add(1)
				go func(seedv int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seedv))
					for i := 0; i < 150; i++ {
						from, to := uint64(rng.Intn(accounts)), uint64(rng.Intn(accounts))
						if from == to {
							continue
						}
						for {
							err := s.Run(func(tx Tx) error {
								fv, err := tx.Read(0, from)
								if err != nil {
									return err
								}
								if fv[0] == 0 {
									return nil
								}
								tv, err := tx.Read(0, to)
								if err != nil {
									return err
								}
								if err := tx.Update(0, from, []uint64{fv[0] - 1, fv[1]}); err != nil {
									return err
								}
								return tx.Update(0, to, []uint64{tv[0] + 1, tv[1]})
							})
							if err == nil {
								break
							}
							if !errors.Is(err, ErrConflict) {
								t.Errorf("transfer error: %v", err)
								return
							}
						}
					}
				}(int64(w + 1))
			}
			s := d.NewSession()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					var sum uint64
					err := s.Run(func(tx Tx) error {
						sum = 0
						for a := uint64(0); a < accounts; a++ {
							v, err := tx.Read(0, a)
							if err != nil {
								return err
							}
							sum += v[0]
						}
						return nil
					})
					if err == nil && sum != total {
						mu.Lock()
						torn++
						mu.Unlock()
					}
				}
			}()
			wg.Wait()
			if torn != 0 {
				t.Fatalf("%d audits observed a torn total (serializability violation)", torn)
			}
		})
	}
}

func TestSessionStats(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			s := d.NewSession()
			retry(t, s, func(tx Tx) error { return tx.Insert(1, 1, []uint64{1}) })
			commits, _ := s.Stats()
			if commits < 1 {
				t.Fatalf("commits = %d, want >= 1", commits)
			}
			// A failing body counts as an abort.
			_ = s.Run(func(tx Tx) error { return errors.New("x") })
			_, aborts := s.Stats()
			if aborts < 1 {
				t.Fatalf("aborts = %d, want >= 1", aborts)
			}
		})
	}
}

func TestOrdoSessionClockCountsUncertain(t *testing.T) {
	var now atomic.Uint64
	o := core.New(core.ClockFunc(func() core.Time { return core.Time(now.Add(50)) }), 100)
	c := &ordoSessionClock{o: o}
	if c.certainlyBefore(50, 120) { // gap 70 ≤ boundary: uncertain
		t.Fatal("within-window pair reported certainly before")
	}
	if !c.certainlyBefore(50, 500) { // certain
		t.Fatal("beyond-window pair not certainly before")
	}
	if c.certainlyAtOrBefore(400, 450) { // uncertain → must refuse
		t.Fatal("within-window certainlyAtOrBefore must be false")
	}
	cmps, uncertain := c.stats()
	if cmps != 3 || uncertain != 2 {
		t.Fatalf("stats() = %d,%d, want 3,2", cmps, uncertain)
	}
}

func TestClockStatsSurfacedThroughSessions(t *testing.T) {
	// Every engine's sessions implement ClockHealth; the Ordo variants
	// surface their session clock's counters, the others report zero.
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			s := d.NewSession()
			retry(t, s, func(tx Tx) error { return tx.Insert(1, 7, []uint64{1}) })
			retry(t, s, func(tx Tx) error { _, err := tx.Read(1, 7); return err })
			ch, ok := s.(ClockHealth)
			if !ok {
				t.Skipf("%s session has no clock-health reporting", name)
			}
			cmps, uncertain := ch.ClockStats()
			if uncertain > cmps {
				t.Fatalf("ClockStats() = %d,%d: uncertain exceeds total", cmps, uncertain)
			}
			switch d.Protocol() {
			case OCCOrdo, HekatonOrdo:
				if cmps == 0 {
					t.Fatal("Ordo session performed no counted clock comparisons")
				}
			case OCC, Hekaton:
				if cmps != 0 || uncertain != 0 {
					t.Fatalf("logical session ClockStats() = %d,%d, want 0,0", cmps, uncertain)
				}
			}
		})
	}
}

func TestMultiTableIsolation(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			seed(t, d, 0, map[uint64][]uint64{1: {1, 0}})
			seed(t, d, 1, map[uint64][]uint64{1: {2}})
			s := d.NewSession()
			retry(t, s, func(tx Tx) error {
				a, err := tx.Read(0, 1)
				if err != nil {
					return err
				}
				b, err := tx.Read(1, 1)
				if err != nil {
					return err
				}
				if a[0] != 1 || b[0] != 2 {
					t.Errorf("cross-table reads %v %v", a, b)
				}
				return nil
			})
		})
	}
}

func TestHekatonVersionChainVisibility(t *testing.T) {
	// Multi-version specific: after several updates, a fresh reader sees
	// the latest committed version.
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Protocol{Hekaton, HekatonOrdo} {
		t.Run(p.String(), func(t *testing.T) {
			d := MustNew(p, testSchema, o)
			s := d.NewSession()
			retry(t, s, func(tx Tx) error { return tx.Insert(0, 1, []uint64{1, 0}) })
			for v := uint64(2); v <= 10; v++ {
				v := v
				retry(t, s, func(tx Tx) error { return tx.Update(0, 1, []uint64{v, 0}) })
			}
			s2 := d.NewSession()
			retry(t, s2, func(tx Tx) error {
				got, err := tx.Read(0, 1)
				if err != nil {
					return err
				}
				if got[0] != 10 {
					t.Errorf("fresh reader sees %d, want 10", got[0])
				}
				return nil
			})
		})
	}
}

func TestInvalidTable(t *testing.T) {
	for name, d := range engines(t) {
		t.Run(name, func(t *testing.T) {
			s := d.NewSession()
			err := s.Run(func(tx Tx) error {
				_, err := tx.Read(99, 1)
				return err
			})
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("read from invalid table: %v", err)
			}
		})
	}
}
