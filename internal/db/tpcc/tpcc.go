// Package tpcc implements the TPC-C subset the paper evaluates (§6.5,
// Figure 14): NewOrder (50%) and Payment (50%) transactions over hash
// indexes, with the warehouse count as the contention knob (the paper runs
// 60 warehouses on 240 threads).
//
// The schema keeps TPC-C's structure — warehouse, district, customer,
// item, stock, order, order-line, new-order, history — with numeric
// columns (the engine stores uint64 columns; money is in cents).
package tpcc

import (
	"errors"
	"fmt"
	"math/rand"

	"ordo/internal/db"
)

// Table ids.
const (
	TWarehouse = iota
	TDistrict
	TCustomer
	TItem
	TStock
	TOrder
	TOrderLine
	TNewOrder
	THistory
	numTables
)

// TPC-C scale constants (full spec values; Items is configurable for
// test-sized runs).
const (
	DistrictsPerWarehouse = 10
	CustomersPerDistrict  = 3000
	defaultItems          = 100000
)

// Column layouts (indices into row values).
const (
	// warehouse: [ytd, tax]
	WYtd = iota
	WTax
	wCols
)
const (
	// district: [next_o_id, ytd, tax]
	DNextOID = iota
	DYtd
	DTax
	dCols
)
const (
	// customer: [balance, ytd_payment, payment_cnt, delivery_cnt]
	CBalance = iota
	CYtdPayment
	CPaymentCnt
	CDeliveryCnt
	cCols
)
const (
	// item: [price]
	IPrice = iota
	iCols
)
const (
	// stock: [quantity, ytd, order_cnt]
	SQuantity = iota
	SYtd
	SOrderCnt
	sCols
)
const (
	// order: [c_id, ol_cnt, entry_d]
	OCID = iota
	OOlCnt
	OEntryD
	oCols
)
const (
	// order_line: [i_id, qty, amount]
	OLIID = iota
	OLQty
	OLAmount
	olCols
)
const noCols = 1 // new_order: [o_id]
const hCols = 2  // history: [amount, c_key]

// Config parameterizes the benchmark.
type Config struct {
	Warehouses int
	Items      int     // 0 = spec default (100,000)
	CustPerDis int     // 0 = spec default (3,000); tests shrink it
	RemoteProb float64 // probability a NewOrder line hits a remote warehouse (spec: 0.01)
}

func (c *Config) defaults() {
	if c.Items == 0 {
		c.Items = defaultItems
	}
	if c.CustPerDis == 0 {
		c.CustPerDis = CustomersPerDistrict
	}
	if c.RemoteProb == 0 {
		c.RemoteProb = 0.01
	}
}

// Schema returns the engine schema.
func Schema() db.Schema {
	defs := make([]db.TableDef, numTables)
	defs[TWarehouse] = db.TableDef{Name: "warehouse", Cols: wCols}
	defs[TDistrict] = db.TableDef{Name: "district", Cols: dCols}
	defs[TCustomer] = db.TableDef{Name: "customer", Cols: cCols}
	defs[TItem] = db.TableDef{Name: "item", Cols: iCols}
	defs[TStock] = db.TableDef{Name: "stock", Cols: sCols}
	defs[TOrder] = db.TableDef{Name: "order", Cols: oCols}
	defs[TOrderLine] = db.TableDef{Name: "order_line", Cols: olCols}
	defs[TNewOrder] = db.TableDef{Name: "new_order", Cols: noCols}
	defs[THistory] = db.TableDef{Name: "history", Cols: hCols}
	return db.Schema{Tables: defs}
}

// Key packing. Warehouses are 1-based as in the spec.
func warehouseKey(w int) uint64 { return uint64(w) }
func districtKey(w, d int) uint64 {
	return uint64(w)*DistrictsPerWarehouse + uint64(d)
}
func (c *Config) customerKey(w, d, cu int) uint64 {
	return districtKey(w, d)*uint64(c.CustPerDis+1) + uint64(cu)
}
func itemKey(i int) uint64 { return uint64(i) }
func (c *Config) stockKey(w, i int) uint64 {
	return uint64(w)*uint64(c.Items+1) + uint64(i)
}
func orderKey(w, d, o int) uint64 {
	return districtKey(w, d)<<28 | uint64(o)
}
func orderLineKey(w, d, o, line int) uint64 {
	return orderKey(w, d, o)<<4 | uint64(line)
}

// Workload binds a config to an engine.
type Workload struct {
	cfg Config
	d   db.DB
}

// New validates the config.
func New(d db.DB, cfg Config) (*Workload, error) {
	if cfg.Warehouses <= 0 {
		return nil, fmt.Errorf("tpcc: Warehouses must be positive, got %d", cfg.Warehouses)
	}
	cfg.defaults()
	return &Workload{cfg: cfg, d: d}, nil
}

// Load populates warehouses, districts, customers, items and stock.
func (w *Workload) Load() error {
	s := w.d.NewSession()
	ins := func(table int, key uint64, vals []uint64) error {
		return runRetry(s, func(tx db.Tx) error { return tx.Insert(table, key, vals) })
	}
	for i := 1; i <= w.cfg.Items; i++ {
		if err := ins(TItem, itemKey(i), []uint64{uint64(100 + i%9900)}); err != nil {
			return fmt.Errorf("tpcc: load item %d: %w", i, err)
		}
	}
	for wh := 1; wh <= w.cfg.Warehouses; wh++ {
		if err := ins(TWarehouse, warehouseKey(wh), []uint64{0, 10}); err != nil {
			return fmt.Errorf("tpcc: load warehouse %d: %w", wh, err)
		}
		for d := 1; d <= DistrictsPerWarehouse; d++ {
			if err := ins(TDistrict, districtKey(wh, d), []uint64{3001, 0, 15}); err != nil {
				return fmt.Errorf("tpcc: load district %d/%d: %w", wh, d, err)
			}
			for cu := 1; cu <= w.cfg.CustPerDis; cu++ {
				if err := ins(TCustomer, w.cfg.customerKey(wh, d, cu),
					[]uint64{1000, 0, 0, 0}); err != nil {
					return fmt.Errorf("tpcc: load customer: %w", err)
				}
			}
		}
		for i := 1; i <= w.cfg.Items; i++ {
			if err := ins(TStock, w.cfg.stockKey(wh, i), []uint64{100, 0, 0}); err != nil {
				return fmt.Errorf("tpcc: load stock: %w", err)
			}
		}
	}
	return nil
}

// Worker is one benchmark thread.
type Worker struct {
	w    *Workload
	id   int
	s    db.Session
	rng  *rand.Rand
	hseq uint64

	// Stats.
	NewOrders uint64
	Payments  uint64
	Aborts    uint64
}

// NewWorker creates a per-thread driver; id must be unique per worker.
func (w *Workload) NewWorker(id int, seed int64) *Worker {
	return &Worker{w: w, id: id, s: w.d.NewSession(), rng: rand.New(rand.NewSource(seed))}
}

// RunOne executes one transaction (NewOrder or Payment with equal
// probability), retrying aborts, and returns the first non-conflict error.
func (wk *Worker) RunOne() error {
	if wk.rng.Intn(2) == 0 {
		return wk.newOrder()
	}
	return wk.payment()
}

// newOrder implements TPC-C NewOrder: allocate the district's next order
// id, check stock for 5–15 lines, insert order, order lines and new-order
// entry.
func (wk *Worker) newOrder() error {
	cfg := &wk.w.cfg
	wh := 1 + wk.rng.Intn(cfg.Warehouses)
	d := 1 + wk.rng.Intn(DistrictsPerWarehouse)
	cu := 1 + wk.rng.Intn(cfg.CustPerDis)
	nLines := 5 + wk.rng.Intn(11)
	type line struct {
		item, supplyW, qty int
	}
	lines := make([]line, nLines)
	for i := range lines {
		supply := wh
		if cfg.Warehouses > 1 && wk.rng.Float64() < cfg.RemoteProb {
			for supply == wh {
				supply = 1 + wk.rng.Intn(cfg.Warehouses)
			}
		}
		lines[i] = line{item: 1 + wk.rng.Intn(cfg.Items), supplyW: supply, qty: 1 + wk.rng.Intn(10)}
	}

	for {
		err := wk.s.Run(func(tx db.Tx) error {
			wrow, err := tx.Read(TWarehouse, warehouseKey(wh))
			if err != nil {
				return err
			}
			_ = wrow[WTax]
			drow, err := tx.Read(TDistrict, districtKey(wh, d))
			if err != nil {
				return err
			}
			oid := int(drow[DNextOID])
			drow[DNextOID]++
			if err := tx.Update(TDistrict, districtKey(wh, d), drow); err != nil {
				return err
			}
			if _, err := tx.Read(TCustomer, cfg.customerKey(wh, d, cu)); err != nil {
				return err
			}
			var total uint64
			for li, l := range lines {
				irow, err := tx.Read(TItem, itemKey(l.item))
				if err != nil {
					return err
				}
				srow, err := tx.Read(TStock, cfg.stockKey(l.supplyW, l.item))
				if err != nil {
					return err
				}
				if srow[SQuantity] >= uint64(l.qty)+10 {
					srow[SQuantity] -= uint64(l.qty)
				} else {
					srow[SQuantity] = srow[SQuantity] + 91 - uint64(l.qty)
				}
				srow[SYtd] += uint64(l.qty)
				srow[SOrderCnt]++
				if err := tx.Update(TStock, cfg.stockKey(l.supplyW, l.item), srow); err != nil {
					return err
				}
				amount := uint64(l.qty) * irow[IPrice]
				total += amount
				if err := tx.Insert(TOrderLine, orderLineKey(wh, d, oid, li),
					[]uint64{uint64(l.item), uint64(l.qty), amount}); err != nil {
					return err
				}
			}
			if err := tx.Insert(TOrder, orderKey(wh, d, oid),
				[]uint64{uint64(cu), uint64(nLines), 0}); err != nil {
				return err
			}
			return tx.Insert(TNewOrder, orderKey(wh, d, oid), []uint64{uint64(oid)})
		})
		if err == nil {
			wk.NewOrders++
			return nil
		}
		if errors.Is(err, db.ErrConflict) || errors.Is(err, db.ErrDuplicate) {
			// Duplicate order keys arise when a conflicting transaction won
			// the same next_o_id; retry re-reads the district row.
			wk.Aborts++
			continue
		}
		return err
	}
}

// payment implements TPC-C Payment: update warehouse and district YTD,
// credit the customer, record history.
func (wk *Worker) payment() error {
	cfg := &wk.w.cfg
	wh := 1 + wk.rng.Intn(cfg.Warehouses)
	d := 1 + wk.rng.Intn(DistrictsPerWarehouse)
	// 15% of payments come through a remote customer warehouse (spec).
	cwh := wh
	if cfg.Warehouses > 1 && wk.rng.Float64() < 0.15 {
		for cwh == wh {
			cwh = 1 + wk.rng.Intn(cfg.Warehouses)
		}
	}
	cu := 1 + wk.rng.Intn(cfg.CustPerDis)
	amount := uint64(100 + wk.rng.Intn(500000)) // 1.00–5000.00 in cents

	for {
		err := wk.s.Run(func(tx db.Tx) error {
			wrow, err := tx.Read(TWarehouse, warehouseKey(wh))
			if err != nil {
				return err
			}
			wrow[WYtd] += amount
			if err := tx.Update(TWarehouse, warehouseKey(wh), wrow); err != nil {
				return err
			}
			drow, err := tx.Read(TDistrict, districtKey(wh, d))
			if err != nil {
				return err
			}
			drow[DYtd] += amount
			if err := tx.Update(TDistrict, districtKey(wh, d), drow); err != nil {
				return err
			}
			ckey := cfg.customerKey(cwh, d, cu)
			crow, err := tx.Read(TCustomer, ckey)
			if err != nil {
				return err
			}
			crow[CBalance] -= amount
			crow[CYtdPayment] += amount
			crow[CPaymentCnt]++
			if err := tx.Update(TCustomer, ckey, crow); err != nil {
				return err
			}
			hkey := uint64(wk.id)<<40 | wk.hseq
			return tx.Insert(THistory, hkey, []uint64{amount, ckey})
		})
		if err == nil {
			wk.hseq++
			wk.Payments++
			return nil
		}
		if errors.Is(err, db.ErrConflict) || errors.Is(err, db.ErrDuplicate) {
			wk.Aborts++
			continue
		}
		return err
	}
}

func runRetry(s db.Session, fn func(tx db.Tx) error) error {
	for i := 0; ; i++ {
		err := s.Run(fn)
		if err == nil {
			return nil
		}
		if !errors.Is(err, db.ErrConflict) || i > 100000 {
			return err
		}
	}
}
