package tpcc

import (
	"sync"
	"testing"

	"ordo/internal/core"
	"ordo/internal/db"
)

// testCfg is a shrunken TPC-C (full loading takes too long for unit tests).
var testCfg = Config{Warehouses: 2, Items: 50, CustPerDis: 20}

func allEngines(t *testing.T) map[string]db.DB {
	t.Helper()
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]db.DB)
	for _, p := range db.AllProtocols() {
		out[p.String()] = db.MustNew(p, Schema(), o)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	d := db.MustNew(db.Silo, Schema(), nil)
	if _, err := New(d, Config{}); err == nil {
		t.Error("Warehouses=0 accepted")
	}
	w, err := New(d, Config{Warehouses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.cfg.Items != defaultItems || w.cfg.CustPerDis != CustomersPerDistrict {
		t.Errorf("defaults not applied: %+v", w.cfg)
	}
}

func TestKeyPackingUnique(t *testing.T) {
	cfg := Config{Warehouses: 60}
	cfg.defaults()
	seen := map[uint64]bool{}
	for w := 1; w <= 60; w++ {
		for d := 1; d <= DistrictsPerWarehouse; d++ {
			k := districtKey(w, d)
			if seen[k] {
				t.Fatalf("district key collision at w=%d d=%d", w, d)
			}
			seen[k] = true
		}
	}
	// Order-line keys must stay under the engine's 2^56 key ceiling.
	k := orderLineKey(60, 10, 1<<27, 15)
	if k >= 1<<56 {
		t.Fatalf("order line key %d exceeds 2^56", k)
	}
}

func TestNewOrderAndPayment(t *testing.T) {
	for name, d := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			w, err := New(d, testCfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Load(); err != nil {
				t.Fatal(err)
			}
			wk := w.NewWorker(0, 1)
			for i := 0; i < 60; i++ {
				if err := wk.RunOne(); err != nil {
					t.Fatalf("txn %d: %v", i, err)
				}
			}
			if wk.NewOrders+wk.Payments != 60 {
				t.Fatalf("completed %d txns, want 60", wk.NewOrders+wk.Payments)
			}
			if wk.NewOrders == 0 || wk.Payments == 0 {
				t.Fatalf("mix degenerate: %d new-orders, %d payments", wk.NewOrders, wk.Payments)
			}
		})
	}
}

func TestOrderIDsMonotonicPerDistrict(t *testing.T) {
	d := db.MustNew(db.Silo, Schema(), nil)
	w, err := New(d, Config{Warehouses: 1, Items: 20, CustPerDis: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Load(); err != nil {
		t.Fatal(err)
	}
	wk := w.NewWorker(0, 2)
	for i := 0; i < 40; i++ {
		if err := wk.newOrder(); err != nil {
			t.Fatal(err)
		}
	}
	// Sum of (next_o_id - 3001) across districts equals orders created.
	s := d.NewSession()
	var created uint64
	err = s.Run(func(tx db.Tx) error {
		created = 0
		for dd := 1; dd <= DistrictsPerWarehouse; dd++ {
			row, err := tx.Read(TDistrict, districtKey(1, dd))
			if err != nil {
				return err
			}
			created += row[DNextOID] - 3001
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if created != 40 {
		t.Fatalf("districts record %d orders, want 40", created)
	}
}

func TestPaymentMovesMoney(t *testing.T) {
	d := db.MustNew(db.TicToc, Schema(), nil)
	w, err := New(d, Config{Warehouses: 1, Items: 10, CustPerDis: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Load(); err != nil {
		t.Fatal(err)
	}
	wk := w.NewWorker(0, 3)
	for i := 0; i < 20; i++ {
		if err := wk.payment(); err != nil {
			t.Fatal(err)
		}
	}
	// Warehouse + district YTD totals must match.
	s := d.NewSession()
	var wytd, dytd uint64
	err = s.Run(func(tx db.Tx) error {
		row, err := tx.Read(TWarehouse, warehouseKey(1))
		if err != nil {
			return err
		}
		wytd = row[WYtd]
		dytd = 0
		for dd := 1; dd <= DistrictsPerWarehouse; dd++ {
			drow, err := tx.Read(TDistrict, districtKey(1, dd))
			if err != nil {
				return err
			}
			dytd += drow[DYtd]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if wytd == 0 || wytd != dytd {
		t.Fatalf("warehouse ytd %d != district ytd sum %d", wytd, dytd)
	}
}

func TestConcurrentWorkersConsistent(t *testing.T) {
	for name, d := range allEngines(t) {
		t.Run(name, func(t *testing.T) {
			w, err := New(d, testCfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Load(); err != nil {
				t.Fatal(err)
			}
			const workers = 4
			const per = 30
			var wg sync.WaitGroup
			wks := make([]*Worker, workers)
			for i := range wks {
				wks[i] = w.NewWorker(i, int64(i+10))
				wg.Add(1)
				go func(wk *Worker) {
					defer wg.Done()
					for j := 0; j < per; j++ {
						if err := wk.RunOne(); err != nil {
							t.Errorf("txn failed: %v", err)
							return
						}
					}
				}(wks[i])
			}
			wg.Wait()
			var newOrders uint64
			for _, wk := range wks {
				newOrders += wk.NewOrders
			}
			// Cross-check NewOrder count against the districts' counters.
			s := d.NewSession()
			var created uint64
			err = s.Run(func(tx db.Tx) error {
				created = 0
				for wh := 1; wh <= testCfg.Warehouses; wh++ {
					for dd := 1; dd <= DistrictsPerWarehouse; dd++ {
						row, err := tx.Read(TDistrict, districtKey(wh, dd))
						if err != nil {
							return err
						}
						created += row[DNextOID] - 3001
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if created != newOrders {
				t.Fatalf("district counters say %d orders, workers committed %d",
					created, newOrders)
			}
		})
	}
}
