package db

import (
	"testing"

	"ordo/internal/core"
)

func benchEngine(b *testing.B, p Protocol) DB {
	b.Helper()
	var o *core.Ordo
	if p == OCCOrdo || p == HekatonOrdo {
		var err error
		o, _, err = core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	d, err := New(p, testSchema, o)
	if err != nil {
		b.Fatal(err)
	}
	s := d.NewSession()
	for k := uint64(0); k < 1024; k++ {
		k := k
		if err := s.Run(func(tx Tx) error { return tx.Insert(0, k, []uint64{k, 0}) }); err != nil {
			b.Fatal(err)
		}
	}
	return d
}

func benchReadTxn(b *testing.B, p Protocol) {
	d := benchEngine(b, p)
	s := d.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := s.Run(func(tx Tx) error {
			if _, err := tx.Read(0, uint64(i)&1023); err != nil {
				return err
			}
			_, err := tx.Read(0, uint64(i+7)&1023)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchUpdateTxn(b *testing.B, p Protocol) {
	d := benchEngine(b, p)
	s := d.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := s.Run(func(tx Tx) error {
			k := uint64(i) & 1023
			v, err := tx.Read(0, k)
			if err != nil {
				return err
			}
			v[0]++
			return tx.Update(0, k, v)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadTxnOCC(b *testing.B)         { benchReadTxn(b, OCC) }
func BenchmarkReadTxnOCCOrdo(b *testing.B)     { benchReadTxn(b, OCCOrdo) }
func BenchmarkReadTxnSilo(b *testing.B)        { benchReadTxn(b, Silo) }
func BenchmarkReadTxnTicToc(b *testing.B)      { benchReadTxn(b, TicToc) }
func BenchmarkReadTxnHekaton(b *testing.B)     { benchReadTxn(b, Hekaton) }
func BenchmarkReadTxnHekatonOrdo(b *testing.B) { benchReadTxn(b, HekatonOrdo) }
func BenchmarkUpdateTxnOCC(b *testing.B)       { benchUpdateTxn(b, OCC) }
func BenchmarkUpdateTxnSilo(b *testing.B)      { benchUpdateTxn(b, Silo) }
func BenchmarkUpdateTxnTicToc(b *testing.B)    { benchUpdateTxn(b, TicToc) }
func BenchmarkUpdateTxnHekaton(b *testing.B)   { benchUpdateTxn(b, Hekaton) }
