package db

import (
	"sort"
	"sync/atomic"
)

// siloDB is epoch-based optimistic concurrency control (Tu et al.,
// SOSP'13): no transaction ever touches a global timestamp counter.
// Commit identifiers (TIDs) are computed per transaction from the TIDs it
// observed, tagged with a coarse global epoch that advances rarely — the
// "software bypass" Figure 13 shows scaling alongside the Ordo variants.
type siloDB struct {
	store    *svStore
	epoch    atomic.Uint64
	sessions atomic.Uint64
}

// epochEvery is how many commits a session contributes between epoch-bump
// attempts. Silo advances epochs on a 40 ms timer; an opportunistic
// commit-count bump keeps the engine free of background goroutines while
// preserving the protocol (epoch granularity only affects durability).
const epochEvery = 4096

// epochShift positions the epoch in the TID word's high bits.
const epochShift = 40

func newSilo(schema Schema) *siloDB {
	d := &siloDB{store: newSVStore(schema)}
	d.epoch.Store(1)
	return d
}

// Protocol implements DB.
func (d *siloDB) Protocol() Protocol { return Silo }

// NewSession implements DB.
func (d *siloDB) NewSession() Session {
	return &siloSession{db: d, token: d.sessions.Add(1)}
}

type siloSession struct {
	db      *siloDB
	token   uint64
	lastTID uint64

	commits uint64
	aborts  uint64

	tx siloTx
}

func (s *siloSession) Stats() (uint64, uint64) { return s.commits, s.aborts }

type siloTx struct {
	s     *siloSession
	acc   []access
	wmap  map[uint64]int
	valid bool
}

// Run implements Session.
func (s *siloSession) Run(fn func(tx Tx) error) error {
	tx := &s.tx
	tx.s = s
	tx.acc = tx.acc[:0]
	if tx.wmap == nil {
		tx.wmap = make(map[uint64]int, 8)
	}
	clear(tx.wmap)
	tx.valid = true

	if err := fn(tx); err != nil {
		s.aborts++
		return err
	}
	if !tx.valid {
		s.aborts++
		return ErrConflict
	}
	if err := tx.commit(); err != nil {
		s.aborts++
		return err
	}
	s.commits++
	if s.commits%epochEvery == 0 {
		e := s.db.epoch.Load()
		s.db.epoch.CompareAndSwap(e, e+1)
	}
	return nil
}

// Read implements Tx.
func (t *siloTx) Read(table int, key uint64) ([]uint64, error) {
	if i, ok := t.wmap[fpKey(table, key)]; ok {
		if k := t.acc[i].kind; k == accessDelete || k == accessNone {
			return nil, ErrNotFound
		}
		return append([]uint64(nil), t.acc[i].vals...), nil
	}
	ix, ok := t.s.db.store.table(table)
	if !ok {
		return nil, ErrNotFound
	}
	r, ok := ix.get(key)
	if !ok {
		return nil, ErrNotFound
	}
	vals, tid, ok := r.readConsistent(nil)
	if !ok {
		t.valid = false
		return nil, ErrConflict
	}
	t.acc = append(t.acc, access{kind: accessRead, table: table, key: key, r: r, wts: tid, vals: vals})
	return append([]uint64(nil), vals...), nil
}

// Update implements Tx.
func (t *siloTx) Update(table int, key uint64, vals []uint64) error {
	if i, ok := t.wmap[fpKey(table, key)]; ok && t.acc[i].kind != accessRead {
		if k := t.acc[i].kind; k == accessDelete || k == accessNone {
			return ErrNotFound
		}
		t.acc[i].vals = append(t.acc[i].vals[:0], vals...)
		return nil
	}
	ix, ok := t.s.db.store.table(table)
	if !ok {
		return ErrNotFound
	}
	r, ok := ix.get(key)
	if !ok {
		return ErrNotFound
	}
	t.wmap[fpKey(table, key)] = len(t.acc)
	t.acc = append(t.acc, access{kind: accessWrite, table: table, key: key, r: r,
		vals: append([]uint64(nil), vals...)})
	return nil
}

// Insert implements Tx.
func (t *siloTx) Insert(table int, key uint64, vals []uint64) error {
	if _, ok := t.s.db.store.table(table); !ok {
		return ErrNotFound
	}
	t.wmap[fpKey(table, key)] = len(t.acc)
	t.acc = append(t.acc, access{kind: accessInsert, table: table, key: key,
		vals: append([]uint64(nil), vals...)})
	return nil
}

// commit implements Silo's three-phase commit: lock writes in global
// order, read the epoch, validate reads, derive the TID, write back.
func (t *siloTx) commit() error {
	s := t.s
	var writes []int
	for i := range t.acc {
		if k := t.acc[i].kind; k != accessRead && k != accessNone {
			writes = append(writes, i)
		}
	}
	if len(writes) == 0 {
		// Phase 2 only: reads validate against unchanged TIDs; no global
		// counter is touched, so read-only transactions scale.
		for i := range t.acc {
			a := &t.acc[i]
			if a.kind != accessRead {
				continue // e.g. a cancelled insert
			}
			if a.r.lock.Load() != 0 || a.r.wts.Load() != a.wts {
				return ErrConflict
			}
		}
		return nil
	}
	sort.Slice(writes, func(i, j int) bool {
		a, b := &t.acc[writes[i]], &t.acc[writes[j]]
		if a.table != b.table {
			return a.table < b.table
		}
		return a.key < b.key
	})

	locked := make([]*row, 0, len(writes))
	var inserted []access
	fail := func() error {
		for _, r := range locked {
			r.unlock()
		}
		for _, a := range inserted {
			ix, _ := s.db.store.table(a.table)
			ix.remove(a.key)
		}
		return ErrConflict
	}
	maxTID := s.lastTID
	for _, i := range writes {
		a := &t.acc[i]
		switch a.kind {
		case accessWrite, accessDelete:
			if !a.r.tryLock(s.token) {
				return fail()
			}
			locked = append(locked, a.r)
			if tid := a.r.wts.Load(); tid > maxTID {
				maxTID = tid
			}
		case accessInsert:
			r := newRow(a.vals)
			if !r.tryLock(s.token) {
				panic("db: fresh row lock failed")
			}
			ix, _ := s.db.store.table(a.table)
			if !ix.insert(a.key, r) {
				for _, lr := range locked {
					lr.unlock()
				}
				for _, ia := range inserted {
					ix2, _ := s.db.store.table(ia.table)
					ix2.remove(ia.key)
				}
				return ErrDuplicate
			}
			a.r = r
			locked = append(locked, r)
			inserted = append(inserted, *a)
		}
	}
	epoch := s.db.epoch.Load()
	for i := range t.acc {
		a := &t.acc[i]
		if a.kind != accessRead {
			continue
		}
		if owner := a.r.lock.Load(); owner != 0 && owner != s.token {
			return fail()
		}
		if a.r.wts.Load() != a.wts {
			return fail()
		}
		if a.wts > maxTID {
			maxTID = a.wts
		}
	}
	// TID: strictly greater than everything observed, tagged with the
	// current epoch.
	seq := maxTID&(1<<epochShift-1) + 1
	tid := epoch<<epochShift | seq
	if tid <= maxTID {
		tid = maxTID + 1
	}
	s.lastTID = tid
	for _, i := range writes {
		a := &t.acc[i]
		switch a.kind {
		case accessWrite:
			a.r.writeData(a.vals)
		case accessDelete:
			ix, _ := s.db.store.table(a.table)
			ix.remove(a.key)
		}
		a.r.wts.Store(tid)
	}
	for _, r := range locked {
		r.unlock()
	}
	return nil
}

// Delete implements Tx: the victim row is locked like a write at commit,
// removed from the index, and its version bumped so concurrent readers'
// validation catches the removal.
func (t *siloTx) Delete(table int, key uint64) error {
	if i, ok := t.wmap[fpKey(table, key)]; ok {
		switch t.acc[i].kind {
		case accessInsert:
			t.acc[i].kind = accessNone // deleting our own pending insert
			return nil
		case accessDelete, accessNone:
			return ErrNotFound
		case accessWrite:
			t.acc[i].kind = accessDelete
			return nil
		}
	}
	ix, ok := t.s.db.store.table(table)
	if !ok {
		return ErrNotFound
	}
	r, ok := ix.get(key)
	if !ok {
		return ErrNotFound
	}
	t.wmap[fpKey(table, key)] = len(t.acc)
	t.acc = append(t.acc, access{kind: accessDelete, table: table, key: key, r: r})
	return nil
}
