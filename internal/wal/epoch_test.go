package wal

import (
	"encoding/binary"
	"os"
	"testing"

	"ordo/internal/oplog"
)

// appendN appends n single-byte records starting at payload base and
// flushes them.
func appendN(t *testing.T, l *Log, h *Handle, base, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		h.Append([]byte{byte(base + i)})
	}
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestEpochPersistsAcrossBumpAndReopen(t *testing.T) {
	dir := t.TempDir()
	d := openTestDevice(t, dir, FileConfig{})
	if d.Epoch() != 0 {
		t.Fatalf("fresh device epoch %d, want 0", d.Epoch())
	}
	l := New(d, oplog.RawTSC{})
	h := l.NewHandle()
	appendN(t, l, h, 0, 5)
	if err := d.SetEpoch(2); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, h, 5, 5)
	if err := d.SetEpoch(2); err != nil {
		t.Fatalf("re-setting the current epoch: %v", err)
	}
	if err := d.SetEpoch(1); err == nil {
		t.Fatal("lowering the epoch was accepted")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery sees every record from both sides of the bump and reports
	// the max epoch; the standalone header scan agrees.
	recs, info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 10 || info.MaxEpoch != 2 {
		t.Fatalf("info = %+v, want 10 records at max epoch 2", info)
	}
	for i, r := range recs {
		if r.Data[0] != byte(i) {
			t.Fatalf("record %d carries payload %d", i, r.Data[0])
		}
	}
	if e, err := MaxEpoch(dir); err != nil || e != 2 {
		t.Fatalf("MaxEpoch = (%d, %v), want 2", e, err)
	}

	// A reopened device adopts the on-disk epoch even when the config
	// says less, and a higher configured epoch wins.
	d2 := openTestDevice(t, dir, FileConfig{})
	if d2.Epoch() != 2 {
		t.Fatalf("reopened epoch %d, want 2 from disk", d2.Epoch())
	}
	d2.Close()
	d3 := openTestDevice(t, dir, FileConfig{Epoch: 7})
	if d3.Epoch() != 7 {
		t.Fatalf("reopened epoch %d, want configured 7", d3.Epoch())
	}
	d3.Close()
}

// TestV1SegmentReadsAsEpochZero keeps the upgrade path honest: a
// pre-epoch (version 1) segment written by an older build must recover
// unchanged, as epoch 0.
func TestV1SegmentReadsAsEpochZero(t *testing.T) {
	dir := t.TempDir()
	buf := make([]byte, segHeaderV1Len)
	copy(buf[:8], segMagic)
	binary.LittleEndian.PutUint32(buf[8:12], segVersion1)
	binary.LittleEndian.PutUint64(buf[12:20], 1) // incarnation
	binary.LittleEndian.PutUint64(buf[20:28], 1) // segment seq
	for i := 0; i < 3; i++ {
		buf = appendFrame(buf, &Record{TS: uint64(10 + i), H: 1, Seq: uint64(i + 1), LSN: uint64(i + 1), Data: []byte{byte(i)}})
	}
	if err := os.WriteFile(segPath(dir, 1), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 3 || info.MaxEpoch != 0 {
		t.Fatalf("info = %+v, want 3 records at epoch 0", info)
	}
	for i, r := range recs {
		if r.Data[0] != byte(i) {
			t.Fatalf("record %d carries payload %d", i, r.Data[0])
		}
	}
	// A new writer on top of the v1 history bumps to v2 headers without
	// disturbing the old records.
	d := openTestDevice(t, dir, FileConfig{Epoch: 3})
	l := New(d, oplog.RawTSC{})
	h := l.NewHandle()
	appendN(t, l, h, 3, 2)
	d.Close()
	recs, info, err = Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 5 || info.MaxEpoch != 3 {
		t.Fatalf("after v2 append: info = %+v, want 5 records at epoch 3", info)
	}
}

// TestTruncateAfterEpochBump is the fenced-rejoin scenario: a leader
// wrote records across two incarnations, the new leader's cursor covers
// only a prefix, and the old tail must be cut without touching anything
// at or before the cursor — idempotently, because a crash mid-truncation
// re-runs it.
func TestTruncateAfterEpochBump(t *testing.T) {
	dir := t.TempDir()

	// Incarnation 1: 6 records, under epoch 1 after a mid-stream bump.
	d := openTestDevice(t, dir, FileConfig{})
	inc1 := d.Incarnation()
	l := New(d, oplog.RawTSC{})
	h := l.NewHandle()
	appendN(t, l, h, 0, 3)
	if err := d.SetEpoch(1); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, h, 3, 3)
	d.Close()

	// Incarnation 2: 4 more records — the unshipped suffix regime.
	d = openTestDevice(t, dir, FileConfig{})
	if d.Incarnation() != inc1+1 {
		t.Fatalf("second open incarnation %d, want %d", d.Incarnation(), inc1+1)
	}
	l = New(d, oplog.RawTSC{})
	h = l.NewHandle()
	appendN(t, l, h, 6, 4)
	d.Close()

	// The new leader acknowledged through (inc1, 4): drop record 5-6 of
	// incarnation 1 and all of incarnation 2.
	dropped, err := TruncateAfter(dir, inc1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 6 {
		t.Fatalf("dropped %d records, want 6", dropped)
	}
	recs, info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 4 || info.Incarnations != 1 {
		t.Fatalf("info = %+v, want 4 records in 1 incarnation", info)
	}
	for i, r := range recs {
		if r.Data[0] != byte(i) {
			t.Fatalf("kept record %d carries payload %d — an acked record was dropped or reordered", i, r.Data[0])
		}
	}
	if info.MaxEpoch != 1 {
		t.Fatalf("truncation regressed the on-disk epoch to %d", info.MaxEpoch)
	}

	// Idempotence: re-running at the same position changes nothing.
	dropped, err = TruncateAfter(dir, inc1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("second truncation dropped %d records", dropped)
	}
	recs2, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(recs) {
		t.Fatalf("second truncation changed the record count: %d vs %d", len(recs2), len(recs))
	}

	// Backfill over the truncated directory serves exactly the kept
	// prefix in (inc, seq) coordinates.
	stream, err := Backfill(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != 4 {
		t.Fatalf("backfill yields %d records, want 4", len(stream))
	}
	for i, sr := range stream {
		if sr.Inc != inc1 || sr.Rec.LSN != uint64(i+1) {
			t.Fatalf("backfill record %d at (%d, %d), want (%d, %d)", i, sr.Inc, sr.Rec.LSN, inc1, i+1)
		}
	}

	// Truncating beyond the tail is a no-op.
	if dropped, err = TruncateAfter(dir, inc1+5, 99); err != nil || dropped != 0 {
		t.Fatalf("beyond-tail truncation: dropped=%d err=%v", dropped, err)
	}
}
