package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildReplicatedDir writes a multi-incarnation, multi-segment log directory
// shaped like everything recovery must cope with: tiny segments (rotation),
// duplicate (H, Seq) pairs from prefix-persisted-then-retried flushes, and
// a torn tail appended to the last segment. Records go through the real
// FileDevice so headers, CRCs and rotation match production bytes.
func buildReplicatedDir(t *testing.T, dir string, rng *rand.Rand, incs int) {
	t.Helper()
	var ts uint64
	for inc := 0; inc < incs; inc++ {
		dev, err := OpenFile(dir, FileConfig{SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		var prev []Record
		batches := 2 + rng.Intn(4)
		var seq [3]uint64
		var lsn uint64
		for b := 0; b < batches; b++ {
			n := 1 + rng.Intn(5)
			recs := make([]Record, n)
			for i := range recs {
				// Strictly increasing timestamps with occasional ties broken
				// by handle id, matching the live merge order.
				if i == 0 || rng.Intn(4) > 0 {
					ts++
				}
				h := rng.Intn(len(seq))
				data := make([]byte, rng.Intn(40))
				rng.Read(data)
				lsn++
				recs[i] = Record{LSN: lsn, TS: ts, H: h, Seq: seq[h], Data: data}
				seq[h]++
			}
			// Records must arrive in (TS, H, Seq) order within the batch,
			// as the live flush merge guarantees.
			for i := 1; i < len(recs); i++ {
				if recs[i].TS == recs[i-1].TS && recs[i].H < recs[i-1].H {
					recs[i], recs[i-1] = recs[i-1], recs[i]
					recs[i].LSN, recs[i-1].LSN = recs[i-1].LSN, recs[i].LSN
				}
			}
			if err := dev.Write(recs); err != nil {
				t.Fatal(err)
			}
			// Sometimes rewrite the previous batch too: a failed flush whose
			// prefix persisted leaves exactly this duplicate pattern.
			if prev != nil && rng.Intn(3) == 0 {
				if err := dev.Write(prev); err != nil {
					t.Fatal(err)
				}
			}
			prev = recs
		}
		if err := dev.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the tail: a partial frame at the end of the last segment.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listing segments: %v (%d segs)", err, len(segs))
	}
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, recHeaderLen+7)
	rng.Read(torn)
	if _, err := f.Write(torn[:recHeaderLen-3]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// copyDir clones a log directory so Recover's physical truncation cannot
// disturb the original.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func dirSizes(t *testing.T, dir string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = fi.Size()
	}
	return out
}

// TestBackfillMatchesRecover is the replication backfill property test: a
// backfill started at an arbitrary (incarnation, seq) position over a
// rotating, torn-tailed directory yields exactly the verified suffix that
// wal.Recover produces — same records, same order — while leaving the
// directory bytes untouched.
func TestBackfillMatchesRecover(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		const incs = 4
		buildReplicatedDir(t, dir, rng, incs)
		before := dirSizes(t, dir)

		// Ground truth: Recover on a copy (it truncates the torn tail).
		recovered, info, err := Recover(copyDir(t, dir))
		if err != nil {
			t.Fatalf("seed %d: recover: %v", seed, err)
		}
		if info.TruncatedBytes == 0 {
			t.Fatalf("seed %d: expected a torn tail to be truncated", seed)
		}
		if info.Incarnations != incs {
			t.Fatalf("seed %d: recovered %d incarnations, want %d", seed, info.Incarnations, incs)
		}

		full, err := Backfill(dir, 0, 0)
		if err != nil {
			t.Fatalf("seed %d: backfill: %v", seed, err)
		}
		if len(full) != len(recovered) {
			t.Fatalf("seed %d: backfill yields %d records, recover %d", seed, len(full), len(recovered))
		}
		perInc := map[uint64]uint64{}
		for i, sr := range full {
			want := recovered[i]
			if sr.Rec.TS != want.TS || sr.Rec.H != want.H || sr.Rec.Seq != want.Seq ||
				!reflect.DeepEqual(sr.Rec.Data, want.Data) {
				t.Fatalf("seed %d: record %d differs:\n backfill %+v\n recover  %+v", seed, i, sr.Rec, want)
			}
			perInc[sr.Inc]++
			if sr.Rec.LSN != perInc[sr.Inc] {
				t.Fatalf("seed %d: record %d of incarnation %d has seq %d, want dense %d",
					seed, i, sr.Inc, sr.Rec.LSN, perInc[sr.Inc])
			}
		}

		// expectedSuffix computes the cut independently of Backfill's own
		// logic: drop everything up to and including position (inc, seq),
		// where an absent incarnation means "resend everything".
		expectedSuffix := func(inc, seq uint64) []StreamRecord {
			if inc == 0 || perInc[inc] == 0 {
				return full
			}
			start := len(full)
			seen := false
			for i, sr := range full {
				if sr.Inc == inc && !seen {
					seen = true
					start = i
				}
				if sr.Inc == inc && sr.Rec.LSN <= seq {
					start = i + 1
				}
			}
			return full[start:]
		}

		var positions []struct{ inc, seq uint64 }
		positions = append(positions, struct{ inc, seq uint64 }{0, 0})
		positions = append(positions, struct{ inc, seq uint64 }{incs + 7, 3}) // absent incarnation
		for inc := uint64(1); inc <= incs; inc++ {
			n := perInc[inc]
			for _, seq := range []uint64{0, 1, n / 2, n, n + 5} {
				positions = append(positions, struct{ inc, seq uint64 }{inc, seq})
			}
			positions = append(positions, struct{ inc, seq uint64 }{inc, uint64(rng.Intn(int(n) + 1))})
		}
		for _, p := range positions {
			got, err := Backfill(dir, p.inc, p.seq)
			if err != nil {
				t.Fatalf("seed %d: backfill(%d, %d): %v", seed, p.inc, p.seq, err)
			}
			want := expectedSuffix(p.inc, p.seq)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: backfill(%d, %d) yields %d records, want suffix of %d",
					seed, p.inc, p.seq, len(got), len(want))
			}
		}

		if after := dirSizes(t, dir); !reflect.DeepEqual(before, after) {
			t.Fatalf("seed %d: backfill modified the directory: %v -> %v", seed, before, after)
		}
	}
}
