package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// On-disk layout. A log directory holds segments named seg-%08d.wal. Each
// segment starts with a fixed header:
//
//	v1: magic "ORDOWAL1" (8) | version u32 | incarnation u64 | segment seq u64
//	v2: v1 header | epoch u64
//
// followed by record frames:
//
//	crc32c u32 | dataLen u32 | TS u64 | H u32 | Seq u64 | LSN u64 | data
//
// The CRC (Castagnoli) covers everything after itself: header fields and
// payload. All integers are little-endian. `incarnation` increments each
// time the directory is opened for writing; it scopes the (H, Seq) dedupe
// key and the timestamp order, both of which restart with the process.
// `epoch` is the failover fencing epoch the segment was written under; v1
// segments (pre-failover) read as epoch 0. The writer always emits v2.
const (
	segMagic       = "ORDOWAL1"
	segVersion1    = 1
	segVersion2    = 2
	segVersion     = segVersion2
	segHeaderV1Len = 8 + 4 + 8 + 8
	segHeaderLen   = segHeaderV1Len + 8
	recHeaderLen   = 4 + 4 + 8 + 4 + 8 + 8

	// MaxRecordData bounds one record's payload; a recovered length field
	// beyond it is corruption, not an allocation request.
	MaxRecordData = 1 << 24

	// DefaultSegmentBytes is the rotation threshold.
	DefaultSegmentBytes = 64 << 20

	// DefaultSyncEvery is the SyncBatched fsync cadence.
	DefaultSyncEvery = 2 * time.Millisecond
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when a FileDevice fsyncs.
type SyncPolicy int

const (
	// SyncEachWrite fsyncs inside every Write: when Flush returns, the
	// flushed records are on stable storage — the full group-commit
	// guarantee, one fsync amortized across every record in the batch.
	SyncEachWrite SyncPolicy = iota

	// SyncBatched fsyncs from a background timer instead: Write returns
	// once the OS has the bytes, and the ack horizon may run ahead of
	// stable storage by up to SyncEvery. Survives process crashes (the
	// page cache persists), not power loss inside the window.
	SyncBatched
)

// FileConfig configures OpenFile.
type FileConfig struct {
	SegmentBytes int64         // rotation threshold (default 64 MiB)
	Sync         SyncPolicy    // default SyncEachWrite
	SyncEvery    time.Duration // SyncBatched cadence (default 2ms)
	Chaos        *Chaos        // fault injection; nil in production

	// Epoch is the failover fencing epoch stamped into every segment
	// header this device writes. The device opens at the max of this and
	// the highest epoch already recorded on disk, so a restart can never
	// regress the regime. Zero outside failover mode.
	Epoch uint64

	// SyncObserver, when set, receives every attempted fsync's duration
	// and outcome — the telemetry series that shows fsync stalls, which a
	// flush-level view blurs together with the write. Called with the
	// device lock held; must be quick and must not call back into the
	// device.
	SyncObserver func(d time.Duration, err error)
}

// FileDevice is a production Device over segmented log files. Call
// Recover on the directory first — it repairs any torn tail a crash left
// behind; OpenFile then starts a fresh segment under a new incarnation.
type FileDevice struct {
	dir string
	cfg FileConfig

	mu          sync.Mutex
	f           *os.File
	segSeq      uint64
	incarnation uint64
	epoch       uint64
	size        int64 // bytes written to the current segment, torn tail included
	good        int64 // prefix of size that is whole, valid frames
	dirty       bool  // bytes written since the last successful fsync
	failed      error // sticky: set on the first sync failure
	stopc       chan struct{}
	done        chan struct{}
}

// OpenFile opens dir for appending, creating it if needed. It starts a
// new segment numbered after the highest existing one, under an
// incarnation one above the highest recorded in any segment header.
func OpenFile(dir string, cfg FileConfig) (*FileDevice, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = DefaultSyncEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	var maxSeq, maxInc, maxEpoch uint64
	for _, s := range segs {
		if s.seq > maxSeq {
			maxSeq = s.seq
		}
		if hdr, err := readSegHeader(s.path); err == nil {
			if hdr.incarnation > maxInc {
				maxInc = hdr.incarnation
			}
			if hdr.epoch > maxEpoch {
				maxEpoch = hdr.epoch
			}
		}
	}
	if cfg.Epoch > maxEpoch {
		maxEpoch = cfg.Epoch
	}
	d := &FileDevice{dir: dir, cfg: cfg, segSeq: maxSeq, incarnation: maxInc + 1, epoch: maxEpoch}
	if err := d.openSegmentLocked(); err != nil {
		return nil, err
	}
	if cfg.Sync == SyncBatched {
		d.stopc = make(chan struct{})
		d.done = make(chan struct{})
		go d.syncLoop()
	}
	return d, nil
}

// Incarnation returns the device's incarnation number.
func (d *FileDevice) Incarnation() uint64 { return d.incarnation }

// Epoch returns the fencing epoch the device is writing under.
func (d *FileDevice) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// SetEpoch raises the device's fencing epoch and rotates to a fresh
// segment so the new epoch is durable in a segment header before any
// record is written under it — the promotion barrier: once SetEpoch
// returns, a restart of this process can never come back up believing in
// a lower epoch. Lowering the epoch is refused; setting the current epoch
// is a no-op.
func (d *FileDevice) SetEpoch(e uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return d.failed
	}
	if e == d.epoch {
		return nil
	}
	if e < d.epoch {
		return fmt.Errorf("wal: cannot lower epoch %d to %d", d.epoch, e)
	}
	if err := d.syncLocked(); err != nil {
		return err
	}
	if err := d.f.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", d.f.Name(), err)
	}
	d.epoch = e
	return d.openSegmentLocked()
}

// Write implements Device. On error the segment may hold a prefix of the
// batch (whole frames) or a torn frame; the torn bytes are truncated away
// before the next write, so a retry appends after the last valid frame.
func (d *FileDevice) Write(recs []Record) error {
	for i := range recs {
		if len(recs[i].Data) > MaxRecordData {
			return fmt.Errorf("wal: record %d payload %d exceeds %d bytes", i, len(recs[i].Data), MaxRecordData)
		}
		if recs[i].H < 0 {
			return fmt.Errorf("wal: record %d has negative handle %d", i, recs[i].H)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return d.failed
	}
	if d.size > d.good {
		// A previous write failed partway; drop the torn tail so the
		// retry lands where recovery will look for it.
		if err := d.f.Truncate(d.good); err != nil {
			return fmt.Errorf("wal: truncate torn tail of %s: %w", d.f.Name(), err)
		}
		d.size = d.good
	}
	if d.good >= d.cfg.SegmentBytes {
		if err := d.syncLocked(); err != nil {
			return err
		}
		if err := d.f.Close(); err != nil {
			return fmt.Errorf("wal: close %s: %w", d.f.Name(), err)
		}
		if err := d.openSegmentLocked(); err != nil {
			return err
		}
	}
	payload := make([]byte, 0, len(recs)*recHeaderLen)
	boundaries := make([]int, 0, len(recs))
	for i := range recs {
		payload = appendFrame(payload, &recs[i])
		boundaries = append(boundaries, len(payload))
	}
	attempt := payload
	var werr error
	if c := d.cfg.Chaos; c != nil {
		if cut, fault, ferr := c.drawWrite(boundaries, len(payload)); fault {
			attempt, werr = payload[:cut], ferr
		}
	}
	start := d.size
	var written int
	if len(attempt) > 0 {
		n, err := d.f.Write(attempt)
		written = n
		if err != nil && werr == nil {
			werr = err
		}
	}
	d.size = start + int64(written)
	if written > 0 {
		d.dirty = true
	}
	// Whole frames that reached the file stay: the caller re-queues and
	// rewrites the full batch after them (duplicates recovery dedupes by
	// (H, Seq)); only a trailing partial frame is truncated before the
	// retry.
	for _, b := range boundaries {
		if int64(b) > int64(written) {
			break
		}
		d.good = start + int64(b)
	}
	if werr != nil {
		return fmt.Errorf("wal: write %s: %w", d.f.Name(), werr)
	}
	if d.cfg.Sync == SyncEachWrite {
		return d.syncLocked()
	}
	return nil
}

// Sync forces an fsync of the current segment.
func (d *FileDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return d.failed
	}
	return d.syncLocked()
}

// syncLocked fsyncs the current segment. A sync failure is sticky: after
// a failed fsync the kernel may have dropped the dirty pages while later
// appends would still land beyond the hole, so acknowledging anything
// past a failed sync could resurrect a gap as acknowledged data. The
// device refuses all further writes instead and the server degrades.
func (d *FileDevice) syncLocked() error {
	if !d.dirty {
		return nil
	}
	var start time.Time
	if d.cfg.SyncObserver != nil {
		start = time.Now()
	}
	err := d.syncOnceLocked()
	if d.cfg.SyncObserver != nil {
		d.cfg.SyncObserver(time.Since(start), err)
	}
	return err
}

// syncOnceLocked performs the fsync (or its injected stand-in) and makes
// any failure sticky.
func (d *FileDevice) syncOnceLocked() error {
	if c := d.cfg.Chaos; c != nil {
		delay, fail := c.drawSync()
		if delay > 0 {
			time.Sleep(delay)
		}
		if fail {
			d.failed = fmt.Errorf("wal: sync %s: %w", d.f.Name(), ErrInjectedFault)
			return d.failed
		}
	}
	if err := d.f.Sync(); err != nil {
		d.failed = fmt.Errorf("wal: sync %s: %w", d.f.Name(), err)
		return d.failed
	}
	d.dirty = false
	return nil
}

func (d *FileDevice) syncLoop() {
	defer close(d.done)
	t := time.NewTicker(d.cfg.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-d.stopc:
			return
		case <-t.C:
			d.mu.Lock()
			if d.failed == nil {
				d.syncLocked()
			}
			d.mu.Unlock()
		}
	}
}

// Close stops the background sync (if any), fsyncs and closes the
// current segment.
func (d *FileDevice) Close() error {
	if d.stopc != nil {
		close(d.stopc)
		<-d.done
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var err error
	if d.failed == nil {
		err = d.syncLocked()
	}
	if cerr := d.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

func (d *FileDevice) openSegmentLocked() error {
	d.segSeq++
	path := segPath(d.dir, d.segSeq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], segVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], d.incarnation)
	binary.LittleEndian.PutUint64(hdr[20:28], d.segSeq)
	binary.LittleEndian.PutUint64(hdr[28:36], d.epoch)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	// Header and directory entry must be durable before any record is:
	// recovery treats a segment with a torn header as an empty tail.
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync segment header: %w", err)
	}
	if err := syncDir(d.dir); err != nil {
		f.Close()
		return err
	}
	d.f = f
	d.size, d.good, d.dirty = segHeaderLen, segHeaderLen, false
	return nil
}

// appendFrame encodes one record frame onto dst.
func appendFrame(dst []byte, r *Record) []byte {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Data)))
	dst = binary.LittleEndian.AppendUint64(dst, r.TS)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.H))
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, r.LSN)
	dst = append(dst, r.Data...)
	binary.LittleEndian.PutUint32(dst[off:off+4], crc32.Checksum(dst[off+4:], crcTable))
	return dst
}

// RecoveryInfo summarizes what Recover found and repaired.
type RecoveryInfo struct {
	Records        int    // records returned after dedupe
	Duplicates     int    // (H, Seq) duplicates dropped (retried flushes)
	TruncatedBytes int64  // torn-tail bytes truncated from the last segment
	Segments       int    // segment files scanned
	Incarnations   int    // distinct writer incarnations seen
	MaxEpoch       uint64 // highest fencing epoch in any segment header
}

// Recover scans a log directory and returns the replayable record
// sequence: frames are CRC-checked, a torn tail (short or corrupt frame)
// is physically truncated — it may exist only in the last segment, and is
// at most one flush deep because the writer repairs earlier tears before
// appending — duplicates from prefix-persisted-then-retried flushes are
// dropped by (H, Seq) within each incarnation, records are ordered by
// (TS, H, Seq) within each incarnation (incarnations concatenate in
// first-appearance order), LSNs are renumbered densely, and every
// incarnation's sequence must pass Verify. A missing or empty directory
// recovers to nothing.
func Recover(dir string) ([]Record, RecoveryInfo, error) {
	var info RecoveryInfo
	segs, err := listSegments(dir)
	if os.IsNotExist(err) {
		return nil, info, nil
	}
	if err != nil {
		return nil, info, err
	}
	info.Segments = len(segs)

	type group struct {
		inc  uint64
		recs []Record
	}
	var groups []*group
	byInc := make(map[uint64]*group)
	for i, s := range segs {
		last := i == len(segs)-1
		recs, hdr, keep, valid, err := readSegment(s.path, s.seq, last)
		if err != nil {
			return nil, info, err
		}
		if fi, err := os.Stat(s.path); err == nil && fi.Size() > keep {
			info.TruncatedBytes += fi.Size() - keep
			if err := os.Truncate(s.path, keep); err != nil {
				return nil, info, fmt.Errorf("wal: truncate torn tail of %s: %w", s.path, err)
			}
		}
		if !valid {
			continue
		}
		if hdr.epoch > info.MaxEpoch {
			info.MaxEpoch = hdr.epoch
		}
		g := byInc[hdr.incarnation]
		if g == nil {
			g = &group{inc: hdr.incarnation}
			byInc[hdr.incarnation] = g
			groups = append(groups, g)
		}
		g.recs = append(g.recs, recs...)
	}

	var out []Record
	for _, g := range groups {
		recs, dups := Compact(g.recs)
		info.Duplicates += dups
		if err := Verify(recs); err != nil {
			return nil, info, fmt.Errorf("wal: recover incarnation %d: %w", g.inc, err)
		}
		out = append(out, recs...)
	}
	for i := range out {
		out[i].LSN = uint64(i + 1)
	}
	info.Records = len(out)
	info.Incarnations = len(groups)
	return out, info, nil
}

// readSegment parses one segment. keep is the byte length of the valid
// prefix (anything beyond it is a torn tail); valid is false for a
// segment with no usable header (empty, or torn inside the header). A
// torn tail or torn header is only legal in the directory's last segment:
// the writer repairs tears before appending, so an interior one means
// corruption no crash can explain.
func readSegment(path string, wantSeq uint64, last bool) (recs []Record, hdr segHeader, keep int64, valid bool, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, hdr, 0, false, err
	}
	if len(buf) < segHeaderV1Len || string(buf[:8]) != segMagic {
		if len(buf) == 0 {
			return nil, hdr, 0, false, nil // truncated to nothing by an earlier recovery
		}
		if last {
			return nil, hdr, 0, false, nil // torn header: caller truncates to zero
		}
		return nil, hdr, 0, false, fmt.Errorf("wal: %s: bad segment header", path)
	}
	var hdrLen int
	switch v := binary.LittleEndian.Uint32(buf[8:12]); v {
	case segVersion1:
		hdrLen = segHeaderV1Len
	case segVersion2:
		hdrLen = segHeaderLen
		if len(buf) < hdrLen {
			if last {
				return nil, hdr, 0, false, nil // torn header: caller truncates to zero
			}
			return nil, hdr, 0, false, fmt.Errorf("wal: %s: bad segment header", path)
		}
		hdr.epoch = binary.LittleEndian.Uint64(buf[28:36])
	default:
		return nil, hdr, 0, false, fmt.Errorf("wal: %s: unsupported segment version %d", path, v)
	}
	hdr.incarnation = binary.LittleEndian.Uint64(buf[12:20])
	hdr.seq = binary.LittleEndian.Uint64(buf[20:28])
	if hdr.seq != wantSeq {
		return nil, hdr, 0, false, fmt.Errorf("wal: %s: header seq %d does not match filename", path, hdr.seq)
	}
	off := hdrLen
	for off < len(buf) {
		if off+recHeaderLen > len(buf) {
			break // short frame header
		}
		dataLen := binary.LittleEndian.Uint32(buf[off+4 : off+8])
		if dataLen > MaxRecordData {
			break // corrupt length
		}
		end := off + recHeaderLen + int(dataLen)
		if end > len(buf) {
			break // short payload
		}
		if binary.LittleEndian.Uint32(buf[off:off+4]) != crc32.Checksum(buf[off+4:end], crcTable) {
			break // bad checksum
		}
		recs = append(recs, Record{
			TS:   binary.LittleEndian.Uint64(buf[off+8 : off+16]),
			H:    int(binary.LittleEndian.Uint32(buf[off+16 : off+20])),
			Seq:  binary.LittleEndian.Uint64(buf[off+20 : off+28]),
			LSN:  binary.LittleEndian.Uint64(buf[off+28 : off+36]),
			Data: append([]byte(nil), buf[off+recHeaderLen:end]...),
		})
		off = end
	}
	if off < len(buf) && !last {
		return nil, hdr, 0, false, fmt.Errorf("wal: %s: torn frame at offset %d in a non-final segment", path, off)
	}
	return recs, hdr, int64(off), true, nil
}

type segFile struct {
	path string
	seq  uint64
}

// listSegments returns the directory's segments sorted by sequence.
func listSegments(dir string) ([]segFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segFile
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segFile{path: filepath.Join(dir, name), seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.wal", seq))
}

type segHeader struct {
	incarnation uint64
	seq         uint64
	epoch       uint64
}

func readSegHeader(path string) (segHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return segHeader{}, err
	}
	defer f.Close()
	// io.ReadFull, not f.Read: a bare Read may legally return fewer bytes
	// without error, and misparsing a partial header here could skip the
	// true max incarnation in OpenFile's scan — letting a new writer reuse
	// an incarnation number and weakening the (H, Seq) dedupe scope. The
	// buffer is the max header size; a v1 segment may legally be shorter,
	// so read the version-independent prefix first.
	var buf [segHeaderLen]byte
	if _, err := io.ReadFull(f, buf[:segHeaderV1Len]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return segHeader{}, fmt.Errorf("wal: %s: short segment header", path)
		}
		return segHeader{}, err
	}
	if string(buf[:8]) != segMagic {
		return segHeader{}, fmt.Errorf("wal: %s: bad magic", path)
	}
	hdr := segHeader{
		incarnation: binary.LittleEndian.Uint64(buf[12:20]),
		seq:         binary.LittleEndian.Uint64(buf[20:28]),
	}
	if binary.LittleEndian.Uint32(buf[8:12]) == segVersion2 {
		if _, err := io.ReadFull(f, buf[segHeaderV1Len:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return segHeader{}, fmt.Errorf("wal: %s: short segment header", path)
			}
			return segHeader{}, err
		}
		hdr.epoch = binary.LittleEndian.Uint64(buf[28:36])
	}
	return hdr, nil
}

// MaxEpoch scans a log directory's segment headers and returns the
// highest fencing epoch recorded, without replaying anything. A missing
// directory is epoch 0. Unreadable headers (the torn last segment a crash
// can leave) are skipped — a torn header means no record was ever written
// under it, so it cannot hide a higher epoch that mattered.
func MaxEpoch(dir string) (uint64, error) {
	segs, err := listSegments(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var max uint64
	for _, s := range segs {
		hdr, err := readSegHeader(s.path)
		if err != nil {
			continue
		}
		if hdr.epoch > max {
			max = hdr.epoch
		}
	}
	return max, nil
}

// syncDir fsyncs a directory so a freshly created segment's entry is
// durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}
