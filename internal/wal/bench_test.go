package wal

import (
	"testing"

	"ordo/internal/oplog"
)

func BenchmarkAppend(b *testing.B) {
	l := New(&MemDevice{}, oplog.RawTSC{})
	h := l.NewHandle()
	payload := []byte("0123456789abcdef")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Append(payload)
		if i%4096 == 4095 {
			b.StopTimer()
			if _, err := l.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

func BenchmarkFlush4k(b *testing.B) {
	l := New(&MemDevice{}, oplog.RawTSC{})
	h := l.NewHandle()
	payload := []byte("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 4096; j++ {
			h.Append(payload)
		}
		b.StartTimer()
		if _, err := l.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}
