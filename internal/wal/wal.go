// Package wal is a scalable write-ahead log built on the Ordo primitive —
// one of the §7 opportunities the paper names (ARIES-style logging, F2FS,
// Aether): the classic centralized log, where every append bumps a global
// LSN with an atomic, serializes exactly like a logical clock.
//
// Here appends go to per-thread buffers and carry invariant-clock
// timestamps (new_time per handle, so each handle's records are strictly
// ordered machine-wide); a flush merges all buffers in timestamp order —
// handle id breaks ties inside the uncertainty window, as in OpLog's
// merge — writes them to the device, and only then assigns dense LSNs.
// The hot path touches no shared cache line.
//
// Durability contract (group commit): every Append that returned before a
// Flush began is on the device when that Flush returns. Records appended
// concurrently with a flush survive in their buffers to the next flush.
package wal

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ordo/internal/oplog"
)

// Record is one durable log entry.
type Record struct {
	LSN  uint64 // dense, assigned at flush
	TS   uint64 // invariant-clock timestamp taken at append
	H    int    // handle that appended it
	Seq  uint64 // per-handle sequence number
	Data []byte
}

// Device receives flushed records in order. Implementations must be safe
// for use by one flusher at a time.
type Device interface {
	// Write persists records; records arrive LSN-ordered.
	Write(recs []Record) error
}

// MemDevice is an in-memory Device for tests and examples.
type MemDevice struct {
	mu   sync.Mutex
	recs []Record
}

// Write implements Device.
func (d *MemDevice) Write(recs []Record) error {
	d.mu.Lock()
	d.recs = append(d.recs, recs...)
	d.mu.Unlock()
	return nil
}

// Records returns a snapshot of everything persisted.
func (d *MemDevice) Records() []Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Record(nil), d.recs...)
}

// FailingDevice wraps a Device and fails after N successful writes
// (failure injection for tests).
type FailingDevice struct {
	Inner Device
	OK    int
	calls int
}

// ErrDeviceFailed is returned by FailingDevice once its budget is spent.
var ErrDeviceFailed = errors.New("wal: injected device failure")

// Write implements Device.
func (d *FailingDevice) Write(recs []Record) error {
	d.calls++
	if d.calls > d.OK {
		return ErrDeviceFailed
	}
	return d.Inner.Write(recs)
}

// Log is a write-ahead log instance.
type Log struct {
	stamp oplog.Timestamper
	dev   Device

	mu      sync.Mutex // guards flush and the handle registry
	handles []*Handle
	nextLSN uint64
	horizon uint64 // highest timestamp guaranteed durable
}

// New creates a log over a device with the given timestamper
// (oplog.OrdoStamp in production; oplog.RawTSC reproduces the
// synchronized-clocks assumption).
func New(dev Device, stamp oplog.Timestamper) *Log {
	if stamp == nil {
		stamp = oplog.RawTSC{}
	}
	return &Log{stamp: stamp, dev: dev, nextLSN: 1}
}

// Handle is one thread's append buffer; not safe for concurrent use by
// multiple goroutines.
type Handle struct {
	log    *Log
	id     int
	mu     sync.Mutex // append vs. flush drain
	buf    []Record
	lastTS uint64
	seq    uint64
}

// NewHandle registers a per-thread buffer.
func (l *Log) NewHandle() *Handle {
	l.mu.Lock()
	defer l.mu.Unlock()
	h := &Handle{log: l, id: len(l.handles)}
	l.handles = append(l.handles, h)
	return h
}

// Append buffers a record and returns its timestamp: the only
// synchronization is the handle's own lock (uncontended in the
// one-goroutine-per-handle discipline).
func (h *Handle) Append(data []byte) uint64 {
	ts := h.log.stamp.Next(h.lastTS)
	h.lastTS = ts
	h.mu.Lock()
	h.buf = append(h.buf, Record{TS: ts, H: h.id, Seq: h.seq,
		Data: append([]byte(nil), data...)})
	h.seq++
	h.mu.Unlock()
	return ts
}

// Pending reports the handle's unflushed record count.
func (h *Handle) Pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.buf)
}

// Flush drains every handle, merges by (timestamp, handle, seq), assigns
// LSNs and writes to the device.
//
// Durability contract: every Append that returned before Flush was called
// is persisted when Flush returns (group commit). The returned horizon is
// the highest persisted timestamp. On device failure the drained records
// are NOT lost — they are re-queued for the next flush and the error is
// returned.
func (l *Log) Flush() (horizon uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	var merged []Record
	for _, h := range l.handles {
		h.mu.Lock()
		if len(h.buf) > 0 {
			merged = append(merged, h.buf...)
			h.buf = h.buf[:0]
		}
		h.mu.Unlock()
	}
	if len(merged) == 0 {
		return l.horizon, nil
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.H != b.H {
			return a.H < b.H
		}
		return a.Seq < b.Seq
	})
	for i := range merged {
		merged[i].LSN = l.nextLSN + uint64(i)
	}
	if err := l.dev.Write(merged); err != nil {
		// Re-queue under each owner so nothing is lost.
		for _, r := range merged {
			h := l.handles[r.H]
			h.mu.Lock()
			r.LSN = 0
			h.buf = append(h.buf, r)
			h.mu.Unlock()
		}
		return l.horizon, fmt.Errorf("wal: flush: %w", err)
	}
	l.nextLSN += uint64(len(merged))
	if hz := merged[len(merged)-1].TS; hz > l.horizon {
		l.horizon = hz
	}
	return l.horizon, nil
}

// Horizon returns the current durability horizon without flushing.
func (l *Log) Horizon() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.horizon
}

// Verify checks a recovered record sequence: dense LSNs from 1, and
// timestamps non-decreasing up to per-pair tie-breaking (the order the
// merge guarantees). It is the recovery-time invariant check.
func Verify(recs []Record) error {
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			return fmt.Errorf("wal: record %d has LSN %d, want %d", i, r.LSN, i+1)
		}
		if i > 0 {
			prev := recs[i-1]
			if r.TS < prev.TS {
				return fmt.Errorf("wal: record %d timestamp %d precedes %d", i, r.TS, prev.TS)
			}
			if r.TS == prev.TS && (r.H < prev.H || (r.H == prev.H && r.Seq < prev.Seq)) {
				return fmt.Errorf("wal: record %d breaks the tie order", i)
			}
		}
	}
	return nil
}
