// Package wal is a scalable write-ahead log built on the Ordo primitive —
// one of the §7 opportunities the paper names (ARIES-style logging, F2FS,
// Aether): the classic centralized log, where every append bumps a global
// LSN with an atomic, serializes exactly like a logical clock.
//
// Here appends go to per-thread buffers and carry invariant-clock
// timestamps (new_time per handle, so each handle's records are strictly
// ordered machine-wide); a flush merges all buffers in timestamp order —
// handle id breaks ties inside the uncertainty window, as in OpLog's
// merge — writes them to the device, and only then assigns dense LSNs.
// The hot path touches no shared cache line.
//
// Durability contract (group commit): every Append that returned before a
// Flush began is on the device when that Flush returns. Records appended
// concurrently with a flush survive in their buffers to the next flush.
//
// Devices may persist a prefix of a failed write (a real disk dies
// mid-batch); the re-queue path then rewrites the whole batch, so the
// device can legitimately hold duplicate (H, Seq) pairs. Recovery dedupes
// on that key — see Compact and FileDevice's Recover.
package wal

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ordo/internal/oplog"
)

// Record is one durable log entry.
type Record struct {
	LSN   uint64 // dense, assigned at flush
	TS    uint64 // invariant-clock timestamp taken at append
	H     int    // handle that appended it
	Seq   uint64 // per-handle sequence number
	Trace uint64 // sampled trace ID; in-memory only, not persisted (recovery yields 0)
	Data  []byte
}

// Device receives flushed records in order. Implementations must be safe
// for use by one flusher at a time.
type Device interface {
	// Write persists records; records arrive LSN-ordered. On error the
	// device may have persisted any prefix of recs — callers re-queue and
	// rewrite the full batch, and recovery dedupes by (H, Seq).
	Write(recs []Record) error
}

// MemDevice is an in-memory Device for tests and examples.
type MemDevice struct {
	mu   sync.Mutex
	recs []Record
}

// Write implements Device.
func (d *MemDevice) Write(recs []Record) error {
	d.mu.Lock()
	d.recs = append(d.recs, recs...)
	d.mu.Unlock()
	return nil
}

// Records returns a snapshot of everything persisted.
func (d *MemDevice) Records() []Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Record(nil), d.recs...)
}

// FailingDevice wraps a Device and fails after N successful writes
// (failure injection for tests). PersistFirst models a real device dying
// mid-batch: on each failing call the first PersistFirst records still
// reach the inner device before the error — the prefix-persisted case
// that forces recovery to dedupe.
type FailingDevice struct {
	Inner        Device
	OK           int
	PersistFirst int
	calls        int
}

// ErrDeviceFailed is returned by FailingDevice once its budget is spent.
var ErrDeviceFailed = errors.New("wal: injected device failure")

// Write implements Device.
func (d *FailingDevice) Write(recs []Record) error {
	d.calls++
	if d.calls > d.OK {
		if n := d.PersistFirst; n > 0 {
			if n > len(recs) {
				n = len(recs)
			}
			if err := d.Inner.Write(recs[:n]); err != nil {
				return err
			}
		}
		return ErrDeviceFailed
	}
	return d.Inner.Write(recs)
}

// FlushObserver receives the outcome of every non-empty Flush: how many
// records the batch carried, how long the merge+device write (including
// any fsync the device's policy performs) took, and the device error if
// the flush failed. It is called with the log's flush lock held, so
// implementations must be quick and must not call back into the Log —
// recording into a metrics shard or a trace ring is the intended shape.
type FlushObserver interface {
	ObserveFlush(records int, d time.Duration, err error)
}

// RecordSink receives every successfully flushed batch, records in LSN
// order, with LSNs assigned — the live feed a replication source streams
// from. It is called with the log's flush lock held, so calls are strictly
// ordered and must be quick (append to a buffer, signal a goroutine); it
// must not call back into the Log. The slice and the records' Data buffers
// are not reused by the log afterwards, so the sink may retain them.
type RecordSink interface {
	DeliverFlushed(recs []Record)
}

// Log is a write-ahead log instance.
type Log struct {
	stamp oplog.Timestamper
	dev   Device

	mu      sync.Mutex // guards flush, the handle registry, free list, orphans
	obs     FlushObserver
	sink    RecordSink
	handles []*Handle
	free    []handleState // closed slots available for reuse
	orphans []Record      // drained from closed handles or a failed flush
	nextLSN uint64
	horizon uint64 // highest timestamp guaranteed durable
	flushed uint64 // total records successfully written
}

// SetObserver installs the flush observer (nil removes it). Set it before
// serving starts; it feeds the telemetry flush-latency series.
func (l *Log) SetObserver(o FlushObserver) {
	l.mu.Lock()
	l.obs = o
	l.mu.Unlock()
}

// SetSink installs the flushed-record sink (nil removes it). Set it before
// serving starts so the sink sees every record the log ever flushes.
func (l *Log) SetSink(s RecordSink) {
	l.mu.Lock()
	l.sink = s
	l.mu.Unlock()
}

// handleState is what survives a Handle's close: the slot id plus the
// (lastTS, seq) watermark, so a reused slot keeps (H, Seq) unique and
// timestamps non-decreasing for the device's whole lifetime — recovery's
// dedupe key and tie order depend on it.
type handleState struct {
	id     int
	lastTS uint64
	seq    uint64
}

// New creates a log over a device with the given timestamper
// (oplog.OrdoStamp in production; oplog.RawTSC reproduces the
// synchronized-clocks assumption).
func New(dev Device, stamp oplog.Timestamper) *Log {
	if stamp == nil {
		stamp = oplog.RawTSC{}
	}
	return &Log{stamp: stamp, dev: dev, nextLSN: 1}
}

// Handle is one thread's append buffer; not safe for concurrent use by
// multiple goroutines.
type Handle struct {
	log    *Log
	id     int
	mu     sync.Mutex // append vs. flush drain
	buf    []Record
	lastTS uint64
	seq    uint64
	closed bool
}

// NewHandle registers a per-thread buffer, reusing a closed slot when one
// is free so a churning caller (one handle per connection) doesn't grow
// the registry forever.
func (l *Log) NewHandle() *Handle {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.free); n > 0 {
		st := l.free[n-1]
		l.free = l.free[:n-1]
		h := &Handle{log: l, id: st.id, lastTS: st.lastTS, seq: st.seq}
		l.handles[st.id] = h
		return h
	}
	h := &Handle{log: l, id: len(l.handles)}
	l.handles = append(l.handles, h)
	return h
}

// Append buffers a record and returns its timestamp: the only
// synchronization is the handle's own lock (uncontended in the
// one-goroutine-per-handle discipline).
func (h *Handle) Append(data []byte) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		panic("wal: Append on closed handle")
	}
	ts := h.log.stamp.Next(h.lastTS)
	h.lastTS = ts
	h.buf = append(h.buf, Record{TS: ts, H: h.id, Seq: h.seq,
		Data: append([]byte(nil), data...)})
	h.seq++
	return ts
}

// AppendAt buffers a record carrying a caller-supplied timestamp — an
// engine commit timestamp, so replay order matches commit order — clamped
// up to the handle's watermark to keep its records non-decreasing. It
// returns the timestamp actually recorded.
func (h *Handle) AppendAt(ts uint64, data []byte) uint64 {
	return h.AppendAtTrace(ts, data, 0)
}

// AppendAtTrace is AppendAt with a sampled trace ID attached to the
// buffered record so downstream consumers (flusher, replication source)
// can emit spans for it. The trace ID is not persisted.
func (h *Handle) AppendAtTrace(ts uint64, data []byte, trace uint64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		panic("wal: AppendAtTrace on closed handle")
	}
	if ts < h.lastTS {
		ts = h.lastTS
	}
	h.lastTS = ts
	h.buf = append(h.buf, Record{TS: ts, H: h.id, Seq: h.seq, Trace: trace,
		Data: append([]byte(nil), data...)})
	h.seq++
	return ts
}

// Pending reports the handle's unflushed record count.
func (h *Handle) Pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.buf)
}

// Close releases the handle's slot for reuse by a future NewHandle. Any
// buffered records drain into the log's next flush, so closing never loses
// an append. Close is idempotent; the handle must not be used afterwards.
func (h *Handle) Close() {
	l := h.log
	l.mu.Lock()
	defer l.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	if len(h.buf) > 0 {
		l.orphans = append(l.orphans, h.buf...)
		h.buf = nil
	}
	l.handles[h.id] = nil
	l.free = append(l.free, handleState{id: h.id, lastTS: h.lastTS, seq: h.seq})
}

// Pending reports the total unflushed record count across live handles,
// closed-handle orphans, and any batch re-queued by a failed flush.
func (l *Log) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.orphans)
	for _, h := range l.handles {
		if h == nil {
			continue
		}
		h.mu.Lock()
		n += len(h.buf)
		h.mu.Unlock()
	}
	return n
}

// Flush drains every handle (plus orphans from closed handles), merges by
// (timestamp, handle, seq), assigns LSNs and writes to the device.
//
// Durability contract: every Append that returned before Flush was called
// is persisted when Flush returns (group commit). The returned horizon is
// the highest persisted timestamp. On device failure the drained records
// are NOT lost — they are re-queued for the next flush and the error is
// returned; since the device may have persisted a prefix, the retry can
// leave duplicate (H, Seq) pairs on it, which recovery dedupes.
func (l *Log) Flush() (horizon uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	merged := l.orphans
	l.orphans = nil
	for _, h := range l.handles {
		if h == nil {
			continue
		}
		h.mu.Lock()
		if len(h.buf) > 0 {
			merged = append(merged, h.buf...)
			h.buf = h.buf[:0]
		}
		h.mu.Unlock()
	}
	if len(merged) == 0 {
		return l.horizon, nil
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.H != b.H {
			return a.H < b.H
		}
		return a.Seq < b.Seq
	})
	for i := range merged {
		merged[i].LSN = l.nextLSN + uint64(i)
	}
	start := time.Time{}
	if l.obs != nil {
		start = time.Now()
	}
	werr := l.dev.Write(merged)
	if l.obs != nil {
		l.obs.ObserveFlush(len(merged), time.Since(start), werr)
	}
	if err := werr; err != nil {
		// Re-queue as orphans so nothing is lost — the owning handle may
		// be closed, or its slot already reused by a fresh handle.
		for i := range merged {
			merged[i].LSN = 0
		}
		l.orphans = merged
		return l.horizon, fmt.Errorf("wal: flush: %w", err)
	}
	l.nextLSN += uint64(len(merged))
	l.flushed += uint64(len(merged))
	if hz := merged[len(merged)-1].TS; hz > l.horizon {
		l.horizon = hz
	}
	if l.sink != nil {
		// merged is not reused after a successful flush (handles drained
		// into fresh buffers), so handing it off is safe.
		l.sink.DeliverFlushed(merged)
	}
	return l.horizon, nil
}

// Horizon returns the current durability horizon without flushing.
func (l *Log) Horizon() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.horizon
}

// Flushed returns the total records successfully written to the device.
func (l *Log) Flushed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// Verify checks a recovered record sequence: dense LSNs from 1, and
// timestamps non-decreasing up to per-pair tie-breaking (the order the
// merge guarantees). It is the recovery-time invariant check.
func Verify(recs []Record) error {
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			return fmt.Errorf("wal: record %d has LSN %d, want %d", i, r.LSN, i+1)
		}
		if i > 0 {
			prev := recs[i-1]
			if r.TS < prev.TS {
				return fmt.Errorf("wal: record %d timestamp %d precedes %d", i, r.TS, prev.TS)
			}
			if r.TS == prev.TS && (r.H < prev.H || (r.H == prev.H && r.Seq < prev.Seq)) {
				return fmt.Errorf("wal: record %d breaks the tie order", i)
			}
		}
	}
	return nil
}

// Compact canonicalizes a raw device record sequence for replay: it drops
// duplicate (H, Seq) pairs — a prefix-persisted-then-retried flush writes
// the same records twice — re-sorts by (TS, H, Seq) (a retried batch can
// interleave with appends newer than the persisted prefix), and renumbers
// LSNs densely from 1. The result satisfies Verify by construction, and
// Verify is still run by recovery as the end-to-end invariant check.
// It returns the compacted sequence and the number of duplicates dropped.
func Compact(recs []Record) ([]Record, int) {
	type key struct {
		h   int
		seq uint64
	}
	seen := make(map[key]struct{}, len(recs))
	out := make([]Record, 0, len(recs))
	dups := 0
	for _, r := range recs {
		k := key{r.H, r.Seq}
		if _, ok := seen[k]; ok {
			dups++
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.H != b.H {
			return a.H < b.H
		}
		return a.Seq < b.Seq
	})
	for i := range out {
		out[i].LSN = uint64(i + 1)
	}
	return out, dups
}
