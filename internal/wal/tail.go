package wal

import (
	"fmt"
	"os"
)

// Read-only WAL tailing for replication. Backfill is Recover's non-invasive
// sibling: it scans a log directory and yields the same verified record
// sequence, but never truncates a torn tail (the directory may belong to a
// live writer) and keeps per-incarnation record numbering instead of
// renumbering globally — the (incarnation, seq) coordinates a replication
// stream is addressed by.
//
// The per-incarnation sequence is well-defined across both views of the
// log: a live Log assigns dense LSNs in (TS, H, Seq) merge order, and
// Compact reproduces exactly that order from the raw device frames (dedupe
// by (H, Seq), sort by (TS, H, Seq), renumber densely). So "record n of
// incarnation i" means the same record whether the leader streams it from
// memory at flush time or a backfill reads it from disk later.

// StreamRecord is one backfill record: the writer incarnation it belongs
// to, and the record with LSN = its dense per-incarnation sequence.
type StreamRecord struct {
	Inc uint64
	Rec Record
}

// Backfill scans dir read-only and returns the verified record stream
// strictly after position (afterInc, afterSeq): every record of later
// incarnations, plus the records of incarnation afterInc with sequence >
// afterSeq. Position (0, 0) yields the full history. If afterInc is not
// present on disk the full history is returned — resending too much is
// always safe because replay is an ordered idempotent upsert, while
// guessing a cut point could skip records.
//
// A torn tail is tolerated (not repaired) in the last segment only, so
// Backfill can run against the directory of a live writer; the caller
// covers records the writer flushes after the scan from the live feed.
func Backfill(dir string, afterInc, afterSeq uint64) ([]StreamRecord, error) {
	segs, err := listSegments(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}

	type group struct {
		inc  uint64
		recs []Record
	}
	var groups []*group
	byInc := make(map[uint64]*group)
	for i, s := range segs {
		last := i == len(segs)-1
		recs, hdr, _, valid, err := readSegment(s.path, s.seq, last)
		if err != nil {
			return nil, err
		}
		if !valid {
			continue
		}
		g := byInc[hdr.incarnation]
		if g == nil {
			g = &group{inc: hdr.incarnation}
			byInc[hdr.incarnation] = g
			groups = append(groups, g)
		}
		g.recs = append(g.recs, recs...)
	}

	start := 0
	if afterInc != 0 {
		if _, ok := byInc[afterInc]; ok {
			for i, g := range groups {
				if g.inc == afterInc {
					start = i
					break
				}
			}
		}
	}

	var out []StreamRecord
	for _, g := range groups[start:] {
		recs, _ := Compact(g.recs)
		if err := Verify(recs); err != nil {
			return nil, fmt.Errorf("wal: backfill incarnation %d: %w", g.inc, err)
		}
		for _, r := range recs {
			if g.inc == afterInc && r.LSN <= afterSeq {
				continue
			}
			out = append(out, StreamRecord{Inc: g.inc, Rec: r})
		}
	}
	return out, nil
}
