package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ordo/internal/core"
	"ordo/internal/oplog"
)

func stamps(t *testing.T) map[string]oplog.Timestamper {
	t.Helper()
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]oplog.Timestamper{
		"raw":  oplog.RawTSC{},
		"ordo": oplog.OrdoStamp{O: o},
	}
}

func TestAppendFlushRecover(t *testing.T) {
	for name, st := range stamps(t) {
		t.Run(name, func(t *testing.T) {
			dev := &MemDevice{}
			l := New(dev, st)
			h := l.NewHandle()
			for i := 0; i < 20; i++ {
				h.Append([]byte{byte(i)})
			}
			hz, err := l.Flush()
			if err != nil {
				t.Fatal(err)
			}
			if hz == 0 {
				t.Fatal("horizon still zero after flush")
			}
			recs := dev.Records()
			if len(recs) != 20 {
				t.Fatalf("device holds %d records, want 20", len(recs))
			}
			if err := Verify(recs); err != nil {
				t.Fatal(err)
			}
			// Single-handle appends must recover in append order.
			for i, r := range recs {
				if r.Data[0] != byte(i) {
					t.Fatalf("record %d carries payload %d", i, r.Data[0])
				}
			}
		})
	}
}

func TestLSNsDenseAcrossFlushes(t *testing.T) {
	dev := &MemDevice{}
	l := New(dev, oplog.RawTSC{})
	h := l.NewHandle()
	for round := 0; round < 5; round++ {
		for i := 0; i < 7; i++ {
			h.Append([]byte("x"))
		}
		if _, err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	recs := dev.Records()
	if len(recs) != 35 {
		t.Fatalf("%d records, want 35", len(recs))
	}
	if err := Verify(recs); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFlushKeepsHorizon(t *testing.T) {
	l := New(&MemDevice{}, oplog.RawTSC{})
	h := l.NewHandle()
	h.Append([]byte("a"))
	hz1, err := l.Flush()
	if err != nil {
		t.Fatal(err)
	}
	hz2, err := l.Flush() // nothing pending
	if err != nil {
		t.Fatal(err)
	}
	if hz2 != hz1 {
		t.Fatalf("empty flush moved horizon %d -> %d", hz1, hz2)
	}
	if l.Horizon() != hz1 {
		t.Fatalf("Horizon() = %d, want %d", l.Horizon(), hz1)
	}
}

func TestGroupCommitContract(t *testing.T) {
	// Every append that returned before Flush must be on the device
	// afterwards, across concurrent appenders.
	for name, st := range stamps(t) {
		t.Run(name, func(t *testing.T) {
			dev := &MemDevice{}
			l := New(dev, st)
			const workers = 4
			const per = 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				h := l.NewHandle()
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						h.Append([]byte(fmt.Sprintf("%d/%d", id, i)))
					}
				}(w)
			}
			wg.Wait()
			if _, err := l.Flush(); err != nil {
				t.Fatal(err)
			}
			recs := dev.Records()
			if len(recs) != workers*per {
				t.Fatalf("device holds %d, want %d", len(recs), workers*per)
			}
			if err := Verify(recs); err != nil {
				t.Fatal(err)
			}
			// Per-handle order must be preserved in the merged stream.
			lastSeq := map[int]uint64{}
			for _, r := range recs {
				if last, ok := lastSeq[r.H]; ok && r.Seq <= last {
					t.Fatalf("handle %d seq went %d -> %d in merge", r.H, last, r.Seq)
				}
				lastSeq[r.H] = r.Seq
			}
		})
	}
}

func TestConcurrentAppendAndFlush(t *testing.T) {
	dev := &MemDevice{}
	l := New(dev, oplog.RawTSC{})
	const per = 500
	h := l.NewHandle()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < per; i++ {
			h.Append([]byte{1})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := l.Flush(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := dev.Records()
	if len(recs) != per {
		t.Fatalf("device holds %d, want %d", len(recs), per)
	}
	if err := Verify(recs); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceFailureLosesNothing(t *testing.T) {
	inner := &MemDevice{}
	dev := &FailingDevice{Inner: inner, OK: 1}
	l := New(dev, oplog.RawTSC{})
	h := l.NewHandle()
	h.Append([]byte("a"))
	if _, err := l.Flush(); err != nil {
		t.Fatalf("first flush should succeed: %v", err)
	}
	h.Append([]byte("b"))
	if _, err := l.Flush(); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("second flush err = %v, want ErrDeviceFailed", err)
	}
	if h.Pending() != 0 || l.Pending() != 1 {
		t.Fatalf("failed flush should re-queue on the log: handle pending = %d, log pending = %d, want 0 and 1",
			h.Pending(), l.Pending())
	}
	// Device recovers: everything lands with dense LSNs.
	dev.OK = 1000
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := inner.Records()
	if len(recs) != 2 {
		t.Fatalf("device holds %d, want 2", len(recs))
	}
	if err := Verify(recs); err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Data) != "a" || string(recs[1].Data) != "b" {
		t.Fatalf("recovered order wrong: %q, %q", recs[0].Data, recs[1].Data)
	}
}

// TestPartialPersistenceDedupes models the real failure the old atomic
// FailingDevice couldn't: the device persists a prefix of the batch, then
// dies. The re-queue path rewrites the whole batch, so the device ends up
// with duplicate (H, Seq) pairs — and Compact must reduce them to exactly
// one copy each, in merge order.
func TestPartialPersistenceDedupes(t *testing.T) {
	inner := &MemDevice{}
	dev := &FailingDevice{Inner: inner, OK: 0, PersistFirst: 3}
	l := New(dev, oplog.RawTSC{})
	h := l.NewHandle()
	for i := 0; i < 5; i++ {
		h.Append([]byte{byte(i)})
	}
	if _, err := l.Flush(); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("flush err = %v, want ErrDeviceFailed", err)
	}
	if got := len(inner.Records()); got != 3 {
		t.Fatalf("device persisted %d records before dying, want 3", got)
	}
	if l.Pending() != 5 {
		t.Fatalf("log re-queued %d records, want all 5", l.Pending())
	}
	// A record appended between the failure and the retry rides along.
	h.Append([]byte{5})
	dev.OK = 1 << 30
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := inner.Records()
	if len(raw) != 3+6 {
		t.Fatalf("device holds %d raw records, want 9 (3 orphaned + 6 retried)", len(raw))
	}
	recs, dups := Compact(raw)
	if dups != 3 {
		t.Fatalf("Compact dropped %d duplicates, want 3", dups)
	}
	if len(recs) != 6 {
		t.Fatalf("Compact kept %d records, want 6", len(recs))
	}
	if err := Verify(recs); err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Data[0] != byte(i) {
			t.Fatalf("record %d carries payload %d after dedupe", i, r.Data[0])
		}
	}
}

// TestHandleCloseDrainsAndReuses: closing a handle must not lose buffered
// records, must free the slot for reuse, and the reused slot must carry
// the old (Seq, lastTS) watermark so (H, Seq) stays unique on the device.
func TestHandleCloseDrainsAndReuses(t *testing.T) {
	dev := &MemDevice{}
	l := New(dev, oplog.RawTSC{})
	a := l.NewHandle()
	b := l.NewHandle()
	a.Append([]byte("a0"))
	a.Append([]byte("a1"))
	a.Close()
	a.Close() // idempotent
	if l.Pending() != 2 {
		t.Fatalf("close lost buffered records: pending = %d, want 2", l.Pending())
	}
	c := l.NewHandle() // must reuse a's slot
	if c == a {
		t.Fatal("NewHandle returned the closed handle itself")
	}
	if len(l.handles) != 2 {
		t.Fatalf("registry grew to %d slots despite a free one", len(l.handles))
	}
	c.Append([]byte("c0"))
	b.Append([]byte("b0"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := dev.Records()
	if len(recs) != 4 {
		t.Fatalf("device holds %d records, want 4", len(recs))
	}
	if err := Verify(recs); err != nil {
		t.Fatal(err)
	}
	// a and c share a handle id; their seqs must not collide.
	seen := map[[2]uint64]bool{}
	for _, r := range recs {
		k := [2]uint64{uint64(r.H), r.Seq}
		if seen[k] {
			t.Fatalf("duplicate (H,Seq) = %v after slot reuse", k)
		}
		seen[k] = true
	}
}

func TestCloseDuringDeviceFailure(t *testing.T) {
	// Records re-queued by a failed flush must survive their handle's
	// close and its slot's reuse.
	inner := &MemDevice{}
	dev := &FailingDevice{Inner: inner, OK: 0}
	l := New(dev, oplog.RawTSC{})
	h := l.NewHandle()
	h.Append([]byte("x"))
	if _, err := l.Flush(); err == nil {
		t.Fatal("flush should have failed")
	}
	h.Close()
	h2 := l.NewHandle()
	h2.Append([]byte("y"))
	dev.OK = 1 << 30
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, dups := Compact(inner.Records())
	if dups != 0 || len(recs) != 2 {
		t.Fatalf("got %d records (%d dups), want 2 and 0", len(recs), dups)
	}
	if err := Verify(recs); err != nil {
		t.Fatal(err)
	}
}

// TestAppendAt: caller-supplied timestamps land on the record, are
// clamped to keep the handle non-decreasing, and order the merge.
func TestAppendAt(t *testing.T) {
	dev := &MemDevice{}
	l := New(dev, oplog.RawTSC{})
	a := l.NewHandle()
	b := l.NewHandle()
	if got := a.AppendAt(100, []byte("a@100")); got != 100 {
		t.Fatalf("AppendAt returned %d, want 100", got)
	}
	if got := a.AppendAt(50, []byte("a@50->100")); got != 100 {
		t.Fatalf("AppendAt should clamp to the watermark: got %d, want 100", got)
	}
	b.AppendAt(75, []byte("b@75"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := dev.Records()
	if err := Verify(recs); err != nil {
		t.Fatal(err)
	}
	want := []string{"b@75", "a@100", "a@50->100"}
	for i, w := range want {
		if string(recs[i].Data) != w {
			t.Fatalf("record %d = %q, want %q", i, recs[i].Data, w)
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	good := []Record{{LSN: 1, TS: 10}, {LSN: 2, TS: 20}}
	if err := Verify(good); err != nil {
		t.Fatal(err)
	}
	if err := Verify([]Record{{LSN: 2, TS: 10}}); err == nil {
		t.Error("Verify accepted a hole at LSN 1")
	}
	if err := Verify([]Record{{LSN: 1, TS: 20}, {LSN: 2, TS: 10}}); err == nil {
		t.Error("Verify accepted decreasing timestamps")
	}
	if err := Verify([]Record{{LSN: 1, TS: 10, H: 2}, {LSN: 2, TS: 10, H: 1}}); err == nil {
		t.Error("Verify accepted broken tie order")
	}
}

// obsRecorder is a FlushObserver capturing every call for assertions.
type obsRecorder struct {
	records []int
	errs    []error
}

func (o *obsRecorder) ObserveFlush(records int, d time.Duration, err error) {
	o.records = append(o.records, records)
	o.errs = append(o.errs, err)
}

// TestFlushObserver checks the telemetry hook: every non-empty flush is
// observed with its record count and outcome, empty flushes are not, and
// a failing device's error reaches the observer.
func TestFlushObserver(t *testing.T) {
	mem := &MemDevice{}
	fd := &FailingDevice{Inner: mem, OK: 1}
	l := New(fd, nil)
	var obs obsRecorder
	l.SetObserver(&obs)

	h := l.NewHandle()
	h.Append([]byte("a"))
	h.Append([]byte("b"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Flush(); err != nil { // empty: not observed
		t.Fatal(err)
	}
	h.Append([]byte("c"))
	if _, err := l.Flush(); err == nil {
		t.Fatal("flush on failed device succeeded")
	}
	if len(obs.records) != 2 {
		t.Fatalf("observed %d flushes, want 2 (empty flush must be skipped): %v", len(obs.records), obs.records)
	}
	if obs.records[0] != 2 || obs.errs[0] != nil {
		t.Fatalf("first flush observed as (%d, %v), want (2, nil)", obs.records[0], obs.errs[0])
	}
	if obs.records[1] != 1 || obs.errs[1] == nil {
		t.Fatalf("failed flush observed as (%d, %v), want (1, error)", obs.records[1], obs.errs[1])
	}
}
