package wal

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Chaos injects storage faults into a FileDevice with the same seeded
// splitmix64 discipline as internal/faultnet: each Write draws a fixed
// number of rng steps and each Sync draws a fixed number, so *which* write
// is cut short and which sync fails is a pure function of Seed and the
// call sequence. Faults only ever drop a suffix of the current write or
// delay/deny a sync — bytes the device has reported synced are never
// touched, matching what a real disk that honors fsync can do to you.
type Chaos struct {
	// Seed roots the decision stream.
	Seed int64

	// ShortWriteProb is the chance a Write persists only a whole-frame
	// prefix of the batch (possibly zero frames) and then fails — the
	// prefix-persisted-then-retried case recovery must dedupe.
	ShortWriteProb float64

	// TornWriteProb is the chance a Write is cut mid-frame and then fails:
	// recovery sees a torn tail and must truncate it.
	TornWriteProb float64

	// SyncFailProb is the chance a Sync reports failure without syncing.
	// The written bytes may still survive (the OS has them), so a retried
	// flush after a sync failure also produces duplicates.
	SyncFailProb float64

	// SyncDelayProb delays a sync by SyncDelay before performing it,
	// widening the window in which a crash catches unsynced bytes.
	SyncDelayProb float64
	SyncDelay     time.Duration

	mu    sync.Mutex
	rng   chaosRNG
	init  bool
	stats ChaosStats
}

// ChaosStats reports how many faults actually fired, so a chaos harness
// can assert its run exercised each class instead of passing vacuously.
type ChaosStats struct {
	ShortWrites uint64
	TornWrites  uint64
	SyncFails   uint64
	SyncDelays  uint64
}

// ErrInjectedFault marks a Chaos-injected device error.
var ErrInjectedFault = errors.New("wal: injected storage fault")

// Stats snapshots the injected-fault counters.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// drawWrite decides one Write's fate. boundaries holds the cumulative
// byte offset after each encoded frame; total is the full payload length.
// It returns how many bytes to persist and whether a fault fires. Three
// rng steps are consumed regardless of outcome.
func (c *Chaos) drawWrite(boundaries []int, total int) (cut int, fault bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seed()
	pShort := c.rng.float()
	pTorn := c.rng.float()
	frac := c.rng.float()
	switch {
	case pShort < c.ShortWriteProb && len(boundaries) > 0:
		// Keep a whole-frame prefix: 0..len(boundaries)-1 frames.
		k := int(frac * float64(len(boundaries)))
		if k >= len(boundaries) {
			k = len(boundaries) - 1
		}
		cut = 0
		if k > 0 {
			cut = boundaries[k-1]
		}
		c.stats.ShortWrites++
		return cut, true, fmt.Errorf("short write (%d of %d bytes): %w", cut, total, ErrInjectedFault)
	case pTorn < c.TornWriteProb && total > 0:
		// Cut mid-frame: strictly inside (0, total) and never on a frame
		// boundary, so recovery sees a torn frame, not a clean prefix.
		cut = 1 + int(frac*float64(total-1))
		for _, b := range boundaries {
			if cut == b {
				cut++
				break
			}
		}
		if cut >= total {
			cut = total - 1
		}
		c.stats.TornWrites++
		return cut, true, fmt.Errorf("torn write (%d of %d bytes): %w", cut, total, ErrInjectedFault)
	}
	return total, false, nil
}

// drawSync decides one Sync's fate: delay (performed before the sync) and
// failure. Two rng steps are consumed regardless of outcome.
func (c *Chaos) drawSync() (delay time.Duration, fail bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seed()
	pFail := c.rng.float()
	pDelay := c.rng.float()
	if pDelay < c.SyncDelayProb {
		delay = c.SyncDelay
		c.stats.SyncDelays++
	}
	if pFail < c.SyncFailProb {
		fail = true
		c.stats.SyncFails++
	}
	return delay, fail
}

func (c *Chaos) seed() {
	if !c.init {
		c.rng.state = uint64(c.Seed)*0x9E3779B97F4A7C15 ^ 0x57414C4368616F73 // "WALChaos"
		c.init = true
	}
}

// chaosRNG is the splitmix64 step shared with internal/faultnet.
type chaosRNG struct{ state uint64 }

func (r *chaosRNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0,1).
func (r *chaosRNG) float() float64 {
	return float64(r.next()>>11) / float64(math.MaxUint64>>11+1)
}
