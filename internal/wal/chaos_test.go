package wal

import (
	"fmt"
	"testing"
	"time"

	"ordo/internal/oplog"
)

// TestChaosRecoverProperty drives random multi-handle append / flush /
// close / crash interleavings against a chaos-injected FileDevice and
// checks the recovery contract after every simulated crash:
//
//   - every payload whose flush was acknowledged is recovered exactly once
//     (no acknowledged write lost, no duplicate application),
//   - an unacknowledged payload appears at most once (a prefix the device
//     kept is legal — it was issued — but never twice),
//   - per-handle payloads recover in issue order within an incarnation,
//   - and the recovered sequence passed Verify inside Recover.
//
// The decision stream is splitmix64-seeded like internal/faultnet, so a
// failing seed replays exactly.
func TestChaosRecoverProperty(t *testing.T) {
	agg := ChaosStats{}
	for seed := int64(1); seed <= 10; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			st := chaosPropertyRun(t, seed)
			agg.ShortWrites += st.ShortWrites
			agg.TornWrites += st.TornWrites
			agg.SyncFails += st.SyncFails
			agg.SyncDelays += st.SyncDelays
		})
	}
	// A property test whose injector never fires passes for the wrong
	// reason: across the seeds every fault class must have struck.
	if agg.ShortWrites == 0 || agg.TornWrites == 0 || agg.SyncFails == 0 || agg.SyncDelays == 0 {
		t.Fatalf("fault classes not all exercised across seeds: %+v", agg)
	}
}

func chaosPropertyRun(t *testing.T, seed int64) ChaosStats {
	dir := t.TempDir()
	rng := chaosRNG{state: uint64(seed) * 0x9E3779B97F4A7C15}
	acked := map[string]bool{}  // payload → flushed-and-acknowledged
	issued := map[string]bool{} // payload → ever appended
	agg := ChaosStats{}
	payloadN := 0

	const generations = 4
	for gen := 0; gen < generations; gen++ {
		recs, _, err := Recover(dir)
		if err != nil {
			t.Fatalf("gen %d: recover: %v", gen, err)
		}
		checkRecovered(t, gen, recs, acked, issued)

		chaos := &Chaos{
			Seed:           seed*generations + int64(gen),
			ShortWriteProb: 0.15,
			TornWriteProb:  0.15,
			SyncFailProb:   0.05,
			SyncDelayProb:  0.10,
			SyncDelay:      100 * time.Microsecond,
		}
		d, err := OpenFile(dir, FileConfig{SegmentBytes: 2048, Chaos: chaos})
		if err != nil {
			t.Fatalf("gen %d: open: %v", gen, err)
		}
		l := New(d, oplog.RawTSC{})
		handles := []*Handle{l.NewHandle(), l.NewHandle(), l.NewHandle()}
		pending := map[string]bool{} // appended, not yet covered by an OK flush

		steps := 60 + int(rng.next()%60)
		for s := 0; s < steps; s++ {
			switch rng.next() % 10 {
			case 0, 1, 2, 3, 4, 5: // append
				h := handles[rng.next()%uint64(len(handles))]
				p := fmt.Sprintf("p%06d", payloadN)
				payloadN++
				h.Append([]byte(p))
				issued[p] = true
				pending[p] = true
			case 6, 7, 8: // flush
				if _, err := l.Flush(); err == nil {
					for p := range pending {
						acked[p] = true
						delete(pending, p)
					}
				}
			case 9: // churn one handle through close/reopen
				i := rng.next() % uint64(len(handles))
				handles[i].Close()
				handles[i] = l.NewHandle()
			}
		}
		// Crash: abandon the log mid-state. Close() only syncs — it never
		// acknowledges anything — so the pending set stays unacknowledged.
		d.Close()
		st := chaos.Stats()
		agg.ShortWrites += st.ShortWrites
		agg.TornWrites += st.TornWrites
		agg.SyncFails += st.SyncFails
		agg.SyncDelays += st.SyncDelays
	}

	recs, info, err := Recover(dir)
	if err != nil {
		t.Fatalf("final recover: %v", err)
	}
	checkRecovered(t, generations, recs, acked, issued)
	if len(acked) == 0 {
		t.Fatal("run acknowledged nothing; chaos too aggressive to test anything")
	}
	t.Logf("seed %d: issued=%d acked=%d recovered=%d dups_dropped=%d torn=%dB over %d segs / %d incs",
		seed, len(issued), len(acked), info.Records, info.Duplicates,
		info.TruncatedBytes, info.Segments, info.Incarnations)
	return agg
}

// checkRecovered asserts the acknowledged-prefix contract on a recovered
// sequence.
func checkRecovered(t *testing.T, gen int, recs []Record, acked, issued map[string]bool) {
	t.Helper()
	count := map[string]int{}
	for _, r := range recs {
		count[string(r.Data)]++
	}
	for p, n := range count {
		if !issued[p] {
			t.Fatalf("gen %d: recovered %q which was never issued", gen, p)
		}
		if n > 1 {
			t.Fatalf("gen %d: payload %q recovered %d times", gen, p, n)
		}
	}
	for p := range acked {
		if count[p] != 1 {
			t.Fatalf("gen %d: acknowledged payload %q recovered %d times, want exactly 1", gen, p, count[p])
		}
	}
}
