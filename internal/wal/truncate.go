package wal

import (
	"encoding/binary"
	"fmt"
	"os"
)

// TruncateAfter removes every record strictly after stream position
// (afterInc, afterSeq) from a log directory: whole segments of later
// incarnations are deleted, and the segments of incarnation afterInc are
// rewritten to keep only records with canonical per-incarnation LSN ≤
// afterSeq. This is the fenced ex-leader's rejoin step — the unshipped
// suffix (records no follower ever acknowledged, and therefore records no
// client ack depended on under replication-gated commits) is rolled back
// to the new leader's cursor before resubscribing, so the rejoiner's replay
// of the new regime's stream starts from a prefix the leader agrees with.
//
// The rewrite is crash-safe and idempotent: kept records are written to a
// temp file that atomically replaces the incarnation's first segment, and
// a crash at any point leaves a directory where re-running TruncateAfter
// with the same position converges to the same state (leftover later
// segments are re-deleted; duplicate records are compacted away by the
// canonical (H, Seq) dedupe). The rewritten segment header carries the
// highest epoch seen anywhere in the directory, so a truncation can never
// regress the on-disk fencing epoch. Calling with a position at or beyond
// the tail is a no-op.
//
// It must only run while no writer has the directory open.
func TruncateAfter(dir string, afterInc, afterSeq uint64) (dropped int, err error) {
	segs, err := listSegments(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}

	var (
		targetSegs []segFile // segments of incarnation afterInc, seq order
		dropSegs   []segFile // segments of later incarnations, or headerless
		targetRecs []Record
		dropRecs   int
		maxEpoch   uint64
	)
	for i, s := range segs {
		last := i == len(segs)-1
		recs, hdr, _, valid, rerr := readSegment(s.path, s.seq, last)
		if rerr != nil {
			return 0, rerr
		}
		if !valid {
			// Headerless (torn or already emptied): nothing recoverable
			// lives here, so it is safe to clear out.
			dropSegs = append(dropSegs, s)
			continue
		}
		if hdr.epoch > maxEpoch {
			maxEpoch = hdr.epoch
		}
		switch {
		case hdr.incarnation < afterInc:
			// Entirely at or before the cut: untouched.
		case hdr.incarnation == afterInc:
			targetSegs = append(targetSegs, s)
			targetRecs = append(targetRecs, recs...)
		default:
			dropSegs = append(dropSegs, s)
			dropRecs += len(recs)
		}
	}

	kept, _ := Compact(targetRecs)
	if err := Verify(kept); err != nil {
		return 0, fmt.Errorf("wal: truncate incarnation %d: %w", afterInc, err)
	}
	cut := len(kept)
	for cut > 0 && kept[cut-1].LSN > afterSeq {
		cut--
	}
	dropped = dropRecs + (len(kept) - cut)
	kept = kept[:cut]

	if len(dropSegs) == 0 && dropRecs == 0 && cut == len(targetRecs) {
		// Nothing beyond the cut and no duplicate compaction to fold in:
		// the directory already ends at or before the position.
		return 0, nil
	}

	if len(targetSegs) > 0 && cut < len(targetRecs) {
		// Rewrite the target incarnation into its first segment slot.
		if err := rewriteSegment(dir, targetSegs[0].seq, afterInc, maxEpoch, kept); err != nil {
			return dropped, err
		}
		for _, s := range targetSegs[1:] {
			if err := os.Remove(s.path); err != nil {
				return dropped, fmt.Errorf("wal: truncate remove %s: %w", s.path, err)
			}
		}
	}
	for _, s := range dropSegs {
		if err := os.Remove(s.path); err != nil {
			return dropped, fmt.Errorf("wal: truncate remove %s: %w", s.path, err)
		}
	}
	if err := syncDir(dir); err != nil {
		return dropped, err
	}
	return dropped, nil
}

// rewriteSegment atomically replaces segment seq with one holding exactly
// recs under the given incarnation and epoch.
func rewriteSegment(dir string, seq, inc, epoch uint64, recs []Record) error {
	tmp, err := os.CreateTemp(dir, "seg-rewrite-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: truncate temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], segVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], inc)
	binary.LittleEndian.PutUint64(hdr[20:28], seq)
	binary.LittleEndian.PutUint64(hdr[28:36], epoch)
	buf := append([]byte(nil), hdr[:]...)
	for i := range recs {
		buf = appendFrame(buf, &recs[i])
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: truncate write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: truncate close: %w", err)
	}
	if err := os.Rename(tmp.Name(), segPath(dir, seq)); err != nil {
		return fmt.Errorf("wal: truncate rename: %w", err)
	}
	return nil
}
