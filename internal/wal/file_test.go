package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ordo/internal/oplog"
)

func openTestDevice(t *testing.T, dir string, cfg FileConfig) *FileDevice {
	t.Helper()
	d, err := OpenFile(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFileDeviceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openTestDevice(t, dir, FileConfig{})
	l := New(d, oplog.RawTSC{})
	h := l.NewHandle()
	for i := 0; i < 40; i++ {
		h.Append([]byte{byte(i)})
		if i%7 == 0 {
			if _, err := l.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	recs, info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 40 || info.Duplicates != 0 || info.TruncatedBytes != 0 {
		t.Fatalf("info = %+v, want 40 records, clean", info)
	}
	for i, r := range recs {
		if r.Data[0] != byte(i) {
			t.Fatalf("record %d carries payload %d", i, r.Data[0])
		}
	}
}

func TestFileDeviceRotation(t *testing.T) {
	dir := t.TempDir()
	d := openTestDevice(t, dir, FileConfig{SegmentBytes: 256})
	l := New(d, oplog.RawTSC{})
	h := l.NewHandle()
	const n = 64
	for i := 0; i < n; i++ {
		h.Append(bytes.Repeat([]byte{byte(i)}, 16))
		if _, err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments after %d oversized flushes, rotation never fired", len(segs), n)
	}
	recs, info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != n {
		t.Fatalf("recovered %d records across segments, want %d", info.Records, n)
	}
	for i, r := range recs {
		if r.Data[0] != byte(i) {
			t.Fatalf("record %d carries payload %d", i, r.Data[0])
		}
	}
}

func TestRecoverMissingAndEmptyDir(t *testing.T) {
	recs, info, err := Recover(filepath.Join(t.TempDir(), "nonexistent"))
	if err != nil || len(recs) != 0 || info.Records != 0 {
		t.Fatalf("missing dir: recs=%d info=%+v err=%v", len(recs), info, err)
	}
	recs, info, err = Recover(t.TempDir())
	if err != nil || len(recs) != 0 || info.Records != 0 {
		t.Fatalf("empty dir: recs=%d info=%+v err=%v", len(recs), info, err)
	}
}

// TestTornTailFixture is the hand-built regression for the torn-tail
// rule: a valid segment with garbage appended — a torn frame followed by
// a frame that would checksum — must recover to the pre-tear prefix, with
// everything from the first bad byte truncated, and a second recovery
// must find nothing left to repair.
func TestTornTailFixture(t *testing.T) {
	dir := t.TempDir()
	d := openTestDevice(t, dir, FileConfig{})
	l := New(d, oplog.RawTSC{})
	h := l.NewHandle()
	h.Append([]byte("keep-0"))
	h.Append([]byte("keep-1"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	// Tear: half a frame header, then a fully valid frame after it. The
	// scan must stop at the tear — a valid frame beyond a torn one is
	// unreachable by contract (nothing after the tear was acknowledged).
	torn := appendFrame(nil, &Record{LSN: 3, TS: 99, H: 0, Seq: 2, Data: []byte("torn")})
	var ghost []byte
	ghost = appendFrame(ghost, &Record{LSN: 4, TS: 100, H: 0, Seq: 3, Data: []byte("ghost")})
	f, err := os.OpenFile(segs[0].path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn[:recHeaderLen/2])
	f.Write(ghost)
	f.Close()
	tearBytes := int64(recHeaderLen/2 + len(ghost))

	recs, info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 2 || info.TruncatedBytes != tearBytes {
		t.Fatalf("info = %+v, want 2 records and %d truncated bytes", info, tearBytes)
	}
	if string(recs[0].Data) != "keep-0" || string(recs[1].Data) != "keep-1" {
		t.Fatalf("recovered %q, %q", recs[0].Data, recs[1].Data)
	}
	// Idempotent: the tail is physically gone.
	_, info2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Records != 2 || info2.TruncatedBytes != 0 {
		t.Fatalf("second recovery not clean: %+v", info2)
	}
}

// TestCorruptionBitFlipTruncates: a flipped payload byte fails the CRC
// and everything from that frame on is torn tail.
func TestCorruptionBitFlipTruncates(t *testing.T) {
	dir := t.TempDir()
	d := openTestDevice(t, dir, FileConfig{})
	l := New(d, oplog.RawTSC{})
	h := l.NewHandle()
	for i := 0; i < 3; i++ {
		h.Append([]byte{byte(i), 0xAA})
	}
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	buf, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	frame := recHeaderLen + 2
	buf[segHeaderLen+frame+recHeaderLen] ^= 0xFF // second record's payload
	if err := os.WriteFile(segs[0].path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Data[0] != 0 {
		t.Fatalf("recovered %d records, want only the one before the flip", len(recs))
	}
	if info.TruncatedBytes != int64(2*frame) {
		t.Fatalf("truncated %d bytes, want %d", info.TruncatedBytes, 2*frame)
	}
}

// TestInteriorCorruptionRejected: a bad frame in a non-final segment is
// not a torn tail — no crash can produce it — so recovery must refuse.
func TestInteriorCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	d := openTestDevice(t, dir, FileConfig{SegmentBytes: 128})
	l := New(d, oplog.RawTSC{})
	h := l.NewHandle()
	for i := 0; i < 16; i++ {
		h.Append(bytes.Repeat([]byte{byte(i)}, 32))
		if _, err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need ≥ 2 segments, got %d", len(segs))
	}
	buf, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(segs[0].path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dir); err == nil {
		t.Fatal("Recover accepted interior corruption")
	}
}

// TestRecoverDedupesRetriedFlush forces a short write through Chaos: the
// device persists a whole-frame prefix and fails, the log re-queues, the
// retry rewrites the batch, and recovery must collapse the duplicates.
func TestRecoverDedupesRetriedFlush(t *testing.T) {
	// The short-write cut point is seed-dependent and may be zero frames;
	// scan for a seed that leaves a non-empty prefix so dedupe is really
	// exercised.
	for seed := int64(1); seed <= 32; seed++ {
		dir := t.TempDir()
		chaos := &Chaos{Seed: seed, ShortWriteProb: 1}
		d := openTestDevice(t, dir, FileConfig{Chaos: chaos})
		l := New(d, oplog.RawTSC{})
		h := l.NewHandle()
		for i := 0; i < 8; i++ {
			h.Append([]byte{byte(i)})
		}
		if _, err := l.Flush(); err == nil {
			t.Fatal("flush should have hit the injected short write")
		}
		if st := chaos.Stats(); st.ShortWrites != 1 {
			t.Fatalf("chaos stats = %+v, want one short write", st)
		}
		persisted := d.good - segHeaderLen // bytes of whole frames the dying write left
		chaos.ShortWriteProb = 0
		if _, err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		recs, info, err := Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		if info.Records != 8 {
			t.Fatalf("recovered %d records, want 8 (info %+v)", info.Records, info)
		}
		for i, r := range recs {
			if r.Data[0] != byte(i) {
				t.Fatalf("record %d carries payload %d", i, r.Data[0])
			}
		}
		if persisted == 0 {
			continue // this seed cut before the first frame; try another
		}
		if info.Duplicates == 0 {
			t.Fatalf("device kept a %d-byte prefix but recovery dropped no duplicates", persisted)
		}
		return
	}
	t.Fatal("no seed in 1..32 produced a non-empty persisted prefix")
}

// TestIncarnationsConcatenate: two open/write/close generations recover
// in order, even though the second generation's handle ids and seqs
// restart at zero — the incarnation in the segment header scopes the
// dedupe key.
func TestIncarnationsConcatenate(t *testing.T) {
	dir := t.TempDir()
	for gen := 0; gen < 2; gen++ {
		if _, _, err := Recover(dir); err != nil {
			t.Fatal(err)
		}
		d := openTestDevice(t, dir, FileConfig{})
		if want := uint64(gen + 1); d.Incarnation() != want {
			t.Fatalf("generation %d got incarnation %d, want %d", gen, d.Incarnation(), want)
		}
		l := New(d, oplog.RawTSC{})
		h := l.NewHandle()
		for i := 0; i < 3; i++ {
			h.Append([]byte{byte(gen), byte(i)})
		}
		if _, err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
	recs, info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 6 || info.Incarnations != 2 || info.Duplicates != 0 {
		t.Fatalf("info = %+v, want 6 records over 2 incarnations", info)
	}
	for i, r := range recs {
		if r.Data[0] != byte(i/3) || r.Data[1] != byte(i%3) {
			t.Fatalf("record %d = %v, incarnations misordered", i, r.Data)
		}
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d after global renumber", i, r.LSN)
		}
	}
}

// TestSegHeaderShortRead pins readSegHeader's short-read handling: a
// truncated header must be an explicit error, never a misparse — OpenFile
// skips unreadable headers in its incarnation scan, and parsing garbage
// there could let a new writer reuse an incarnation number. OpenFile over
// the same directory must still pick the incarnation above every readable
// header's.
func TestSegHeaderShortRead(t *testing.T) {
	dir := t.TempDir()
	d := openTestDevice(t, dir, FileConfig{})
	l := New(d, oplog.RawTSC{})
	l.NewHandle().Append([]byte{1})
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := readSegHeader(segPath(dir, 1)); err != nil {
		t.Fatalf("whole header: %v", err)
	}

	// A header torn mid-way (shorter than segHeaderLen but with intact
	// magic) must error, not parse the missing fields as zeros.
	short := filepath.Join(dir, "seg-00000099.wal")
	if err := os.WriteFile(short, []byte(segMagic+"xx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSegHeader(short); err == nil {
		t.Fatal("short header parsed without error")
	}

	d2, err := OpenFile(dir, FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Incarnation() != 2 {
		t.Fatalf("incarnation %d after a short-header segment, want 2", d2.Incarnation())
	}
}

// TestSyncObserver checks the fsync telemetry hook: SyncEachWrite invokes
// it once per dirty write, skips clean syncs, and reports the sticky
// failure exactly when it happens.
func TestSyncObserver(t *testing.T) {
	dir := t.TempDir()
	var calls int
	var lastErr error
	d := openTestDevice(t, dir, FileConfig{
		SyncObserver: func(dur time.Duration, err error) {
			calls++
			lastErr = err
			if dur < 0 {
				t.Errorf("negative sync duration %v", dur)
			}
		},
	})
	l := New(d, oplog.RawTSC{})
	h := l.NewHandle()
	h.Append([]byte("a"))
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || lastErr != nil {
		t.Fatalf("after one dirty flush: %d observed syncs (err %v), want 1 clean", calls, lastErr)
	}
	// Sync with nothing dirty: no fsync attempted, nothing observed.
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("clean Sync was observed: %d calls", calls)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
