package tl2

import (
	"sync/atomic"
	"testing"

	"ordo/internal/core"
)

// White-box tests of the orec protocol and conflict paths that are hard
// to hit reliably from the public API alone.

func TestOrecEncoding(t *testing.T) {
	if isLocked(pack(42)) {
		t.Fatal("pack left the lock bit set")
	}
	if unpack(pack(42)) != 42 {
		t.Fatalf("unpack(pack(42)) = %d", unpack(pack(42)))
	}
	if !isLocked(pack(42) | lockedBit) {
		t.Fatal("lock bit not detected")
	}
	if unpack(pack(42)|lockedBit) != 42 {
		t.Fatal("version lost under the lock bit")
	}
}

func TestLoadAbortsOnLockedOrec(t *testing.T) {
	s := New(Logical, nil, 4)
	// A committed writer advanced the clock to 9 and now another
	// transaction holds word 2's lock mid-commit.
	for s.ord.(*logicalClock).clock.Load() < 9 {
		s.ord.commitTS(0)
	}
	s.orecs[2].Store(pack(9) | lockedBit)
	attempts := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Atomically(func(tx *Txn) error {
			attempts++
			if attempts == 3 {
				// The other transaction releases at version 9, which is
				// readable because the clock has reached it.
				s.orecs[2].Store(pack(9))
			}
			_ = tx.Load(2)
			return nil
		})
	}()
	<-done
	if attempts < 3 {
		t.Fatalf("transaction retried %d times, want >= 3 (locked orec must abort)", attempts)
	}
}

func TestLoadAbortsOnTooNewVersion(t *testing.T) {
	// A word versioned beyond the transaction's read timestamp must abort
	// the load (TL2's pre-validation). With the logical clock, rv is the
	// clock value at begin; bump a word's version above it afterwards.
	s := New(Logical, nil, 4)
	attempts := 0
	err := s.Atomically(func(tx *Txn) error {
		attempts++
		if attempts == 1 {
			// Fake a commit that happened after our begin.
			s.orecs[1].Store(pack(tx.rv + 5))
			_ = tx.Load(1) // must panic-retry internally
			t.Error("Load returned despite a too-new version")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one abort, one clean)", attempts)
	}
}

func TestCommitAbortsWhenReadSetOverwritten(t *testing.T) {
	s := New(Logical, nil, 4)
	s.WriteDirect(0, 1)
	attempts := 0
	err := s.Atomically(func(tx *Txn) error {
		attempts++
		v := tx.Load(0)
		if attempts == 1 {
			// A concurrent commit overwrites word 0 between our read and
			// our commit: bump its version like a committed writer would.
			wv := s.ord.commitTS(tx.rv)
			atomic.StoreUint64(&s.words[0], 99)
			s.orecs[0].Store(pack(wv))
		}
		tx.Store(1, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (validation must catch the overwrite)", attempts)
	}
	if got := s.ReadDirect(1); got != 99 {
		t.Fatalf("retry read stale data: word1 = %d, want 99", got)
	}
}

func TestOrdoCommitTimestampBoundarySeparated(t *testing.T) {
	var now atomic.Uint64
	now.Store(1 << 30)
	clock := core.ClockFunc(func() core.Time { return core.Time(now.Add(7)) })
	o := core.New(clock, 500)
	s := New(Ordo, o, 2)
	err := s.Atomically(func(tx *Txn) error {
		tx.Store(0, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The committed version must be certainly after the (already consumed)
	// read timestamp: ver > rv + boundary.
	ver := unpack(s.orecs[0].Load())
	if ver <= uint64(1<<30)+500 {
		t.Fatalf("commit version %d not boundary-separated from begin", ver)
	}
}

func TestWriteSetLockedInDeterministicOrder(t *testing.T) {
	// Stores to many words in scrambled order must still commit (the
	// write-set lock pass sorts; with try-locks this is liveness, not
	// correctness, but the insertion order must at least be preserved in
	// worder bookkeeping).
	s := New(Logical, nil, 64)
	err := s.Atomically(func(tx *Txn) error {
		for _, addr := range []int{42, 3, 17, 63, 0, 9} {
			tx.Store(addr, uint64(addr))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []int{42, 3, 17, 63, 0, 9} {
		if got := s.ReadDirect(addr); got != uint64(addr) {
			t.Fatalf("word %d = %d", addr, got)
		}
	}
}

func TestFailedCommitRestoresOrecs(t *testing.T) {
	s := New(Logical, nil, 4)
	s.WriteDirect(0, 5)
	pre := s.orecs[0].Load()
	attempts := 0
	err := s.Atomically(func(tx *Txn) error {
		attempts++
		v := tx.Load(0)
		if attempts == 1 {
			wv := s.ord.commitTS(tx.rv)
			s.orecs[0].Store(pack(wv)) // force validation failure
		}
		tx.Store(2, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = pre
	// After everything settles, no orec may be left locked.
	for i := range s.orecs {
		if isLocked(s.orecs[i].Load()) {
			t.Fatalf("orec %d left locked", i)
		}
	}
}

func TestTimestampExtensionRescuesLoads(t *testing.T) {
	s := New(Logical, nil, 4)
	s.SetTimestampExtension(true)
	s.WriteDirect(0, 5)
	attempts := 0
	err := s.Atomically(func(tx *Txn) error {
		attempts++
		if attempts == 1 {
			// A commit lands after our begin; without extension the load
			// below would abort.
			wv := s.ord.commitTS(0)
			atomic.StoreUint64(&s.words[0], 77)
			s.orecs[0].Store(pack(wv))
		}
		if got := tx.Load(0); got != 77 {
			t.Errorf("extended load = %d, want 77", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (extension avoids the retry)", attempts)
	}
	if s.Extensions() != 1 {
		t.Fatalf("Extensions() = %d, want 1", s.Extensions())
	}
}

func TestTimestampExtensionFailsWhenPriorReadsStale(t *testing.T) {
	s := New(Logical, nil, 4)
	s.SetTimestampExtension(true)
	s.WriteDirect(0, 1)
	s.WriteDirect(1, 2)
	attempts := 0
	err := s.Atomically(func(tx *Txn) error {
		attempts++
		v0 := tx.Load(0)
		if attempts == 1 {
			// Both words move forward: word 0 (already read) is
			// invalidated, so extending for word 1 must fail.
			wv := s.ord.commitTS(0)
			atomic.StoreUint64(&s.words[0], 10)
			s.orecs[0].Store(pack(wv))
			wv2 := s.ord.commitTS(0)
			atomic.StoreUint64(&s.words[1], 20)
			s.orecs[1].Store(pack(wv2))
		}
		v1 := tx.Load(1)
		tx.Store(2, v0+v1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (stale prior read forces abort)", attempts)
	}
	if got := s.ReadDirect(2); got != 30 {
		t.Fatalf("word2 = %d, want 30 (fresh values on retry)", got)
	}
}

func TestExtensionOffByDefault(t *testing.T) {
	s := New(Logical, nil, 2)
	attempts := 0
	_ = s.Atomically(func(tx *Txn) error {
		attempts++
		if attempts == 1 {
			wv := s.ord.commitTS(0)
			s.orecs[0].Store(pack(wv))
			_ = tx.Load(0)
			t.Error("load of a too-new version returned without extension enabled")
		}
		return nil
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if s.Extensions() != 0 {
		t.Fatalf("Extensions() = %d, want 0", s.Extensions())
	}
}
