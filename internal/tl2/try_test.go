package tl2

import (
	"errors"
	"testing"
)

// Try must make exactly one attempt and surface conflicts as ErrConflict
// rather than retrying internally.
func TestTryConflictIsSingleAttempt(t *testing.T) {
	s := New(Logical, nil, 4)
	s.orecs[1].Store(pack(9) | lockedBit) // word 1 is locked by "someone"

	calls := 0
	err := s.Try(func(tx *Txn) error {
		calls++
		tx.Load(1) // hits the locked orec and unwinds
		return nil
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("Try on locked word: %v, want ErrConflict", err)
	}
	if calls != 1 {
		t.Fatalf("Try made %d attempts, want exactly 1", calls)
	}
	if _, aborts := s.Stats(); aborts != 1 {
		t.Fatalf("aborts = %d, want 1", aborts)
	}
}

func TestTryCommitValidationConflict(t *testing.T) {
	s := New(Logical, nil, 4)
	s.WriteDirect(0, 5)
	s.WriteDirect(2, 7)

	err := s.Try(func(tx *Txn) error {
		_ = tx.Load(0)
		// A concurrent writer advances word 0's version past our read
		// timestamp before we commit.
		s.orecs[0].Store(pack(tx.rv + 100))
		tx.Store(2, 8)
		return nil
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("invalidated read set: %v, want ErrConflict", err)
	}
	if v := s.ReadDirect(2); v != 7 {
		t.Fatalf("conflicted Try leaked its write: word 2 = %d", v)
	}
}

func TestTryCommitsAndPropagatesBodyError(t *testing.T) {
	s := New(Logical, nil, 4)
	if err := s.Try(func(tx *Txn) error {
		tx.Store(3, 42)
		return nil
	}); err != nil {
		t.Fatalf("uncontended Try: %v", err)
	}
	if v := s.ReadDirect(3); v != 42 {
		t.Fatalf("committed write lost: word 3 = %d", v)
	}

	boom := errors.New("boom")
	err := s.Try(func(tx *Txn) error {
		tx.Store(3, 99)
		return boom
	})
	if !errors.Is(err, ErrAborted) || !errors.Is(err, boom) {
		t.Fatalf("body error: %v, want ErrAborted wrapping boom", err)
	}
	if v := s.ReadDirect(3); v != 42 {
		t.Fatalf("aborted Try leaked its write: word 3 = %d", v)
	}
}
