// Package tl2 implements the TL2 software transactional memory algorithm
// (Dice, Shalev, Shavit — DISC'06): a word-based, commit-time-locking STM
// whose validation hinges on a global version clock. As in the paper's
// §4.3, the clock comes in two designs:
//
//   - Logical: the original contended fetch-and-add counter;
//   - Ordo: invariant hardware timestamps via the Ordo primitive, with
//     conservative aborts whenever two timestamps fall inside the
//     ORDO_BOUNDARY (a stale read cannot be distinguished from a fresh one
//     inside the uncertainty window, and proceeding could expose torn
//     state to the transaction — "zombie" execution).
//
// Transactional memory is an array of words; every word has a versioned
// ownership record (orec) holding either a writer lock or the timestamp of
// the last commit that touched it.
package tl2

import (
	"errors"
	"runtime"
	"sync/atomic"

	"ordo/internal/core"
)

// Mode selects the version-clock design.
type Mode int

const (
	// Logical is the original TL2 global logical clock.
	Logical Mode = iota
	// Ordo replaces the clock with the Ordo primitive.
	Ordo
)

// ordering abstracts the two clock designs.
type ordering interface {
	// begin returns the transaction's read version (rv).
	begin() uint64
	// commitTS returns the transaction's write version, strictly greater
	// than rv from every core's point of view.
	commitTS(rv uint64) uint64
	// readValid reports that a word whose last-commit version is ver may
	// be read by a transaction with read version rv.
	readValid(ver, rv uint64) bool
	// now returns a current timestamp without advancing any clock (used
	// by the read-timestamp extension).
	now() uint64
}

type logicalClock struct {
	_     [8]uint64
	clock atomic.Uint64
	_     [8]uint64
}

func (l *logicalClock) begin() uint64                 { return l.clock.Load() }
func (l *logicalClock) now() uint64                   { return l.clock.Load() }
func (l *logicalClock) commitTS(uint64) uint64        { return l.clock.Add(1) }
func (l *logicalClock) readValid(ver, rv uint64) bool { return ver <= rv }

type ordoClock struct{ o *core.Ordo }

func (c ordoClock) begin() uint64 { return uint64(c.o.GetTime()) }
func (c ordoClock) now() uint64   { return uint64(c.o.GetTime()) }
func (c ordoClock) commitTS(rv uint64) uint64 {
	return uint64(c.o.NewTime(core.Time(rv)))
}
func (c ordoClock) readValid(ver, rv uint64) bool {
	// Conservative: only a version certainly before our read timestamp is
	// safe; an uncertain pair aborts (§4.3).
	return c.o.CmpTime(core.Time(ver), core.Time(rv)) == core.Before
}

// Versioned-lock encoding: bit 0 = locked, bits 1..63 = version timestamp.
const lockedBit = 1

func pack(ver uint64) uint64 { return ver << 1 }
func unpack(v uint64) uint64 { return v >> 1 }
func isLocked(v uint64) bool { return v&lockedBit != 0 }

// STM is a transactional memory instance over a fixed array of words.
type STM struct {
	mode  Mode
	ord   ordering
	words []uint64
	orecs []atomic.Uint64 // one orec per word

	// extendTimestamps enables the read-timestamp extension §4.3 mentions:
	// when a load pre-validation fails only because the word's version is
	// newer than the transaction's read timestamp, the transaction
	// re-validates its read set at a fresh timestamp and continues instead
	// of aborting. Off by default, matching the paper's choice ("it may
	// not benefit us because of the very small ORDO_BOUNDARY").
	extendTimestamps bool

	commits atomic.Uint64
	aborts  atomic.Uint64
	extends atomic.Uint64
}

// SetTimestampExtension toggles the read-timestamp extension. Must be
// called before transactions start.
func (s *STM) SetTimestampExtension(on bool) { s.extendTimestamps = on }

// Extensions returns how many loads were rescued by timestamp extension.
func (s *STM) Extensions() uint64 { return s.extends.Load() }

// New creates an STM heap with the given number of words. For Ordo mode,
// pass the calibrated primitive.
func New(mode Mode, o *core.Ordo, words int) *STM {
	s := &STM{mode: mode, words: make([]uint64, words), orecs: make([]atomic.Uint64, words)}
	switch mode {
	case Logical:
		s.ord = &logicalClock{}
	case Ordo:
		if o == nil {
			panic("tl2: Ordo mode requires a calibrated *core.Ordo")
		}
		s.ord = ordoClock{o}
	default:
		panic("tl2: unknown mode")
	}
	return s
}

// Mode returns the clock design.
func (s *STM) Mode() Mode { return s.mode }

// Len returns the heap size in words.
func (s *STM) Len() int { return len(s.words) }

// Stats returns cumulative commit and abort counts.
func (s *STM) Stats() (commits, aborts uint64) {
	return s.commits.Load(), s.aborts.Load()
}

// errRetry is the internal conflict signal; Atomically converts it into a
// transparent retry.
var errRetry = errors.New("tl2: conflict, retry")

// ErrAborted is returned by Atomically when the body returns an error: the
// transaction's writes are discarded and the body's error is wrapped.
var ErrAborted = errors.New("tl2: aborted by transaction body")

// Txn is a transaction attempt. It must only be used inside the Atomically
// body that supplied it, on that goroutine.
type Txn struct {
	stm    *STM
	rv     uint64
	reads  []int
	writes map[int]uint64
	worder []int // write-set insertion order (lock acquisition order)
}

// Atomically runs fn transactionally until it commits. Conflicts retry
// transparently; if fn returns a non-nil error the transaction aborts, its
// writes are dropped, and the error is returned wrapped in ErrAborted.
// fn must be pure apart from Txn operations, since it may run many times.
func (s *STM) Atomically(fn func(tx *Txn) error) error {
	tx := &Txn{stm: s, writes: make(map[int]uint64)}
	for attempt := 0; ; attempt++ {
		tx.rv = s.ord.begin()
		tx.reads = tx.reads[:0]
		clear(tx.writes)
		tx.worder = tx.worder[:0]

		err, conflicted := tx.run(fn)
		if conflicted {
			s.aborts.Add(1)
			backoff(attempt)
			continue
		}
		if err != nil {
			s.aborts.Add(1)
			return errors.Join(ErrAborted, err)
		}
		if tx.commit() {
			s.commits.Add(1)
			return nil
		}
		s.aborts.Add(1)
		backoff(attempt)
	}
}

// ErrConflict is returned by Try when its single attempt lost a conflict.
var ErrConflict = errors.New("tl2: conflict")

// Try runs fn as exactly one transaction attempt. A conflict — a locked or
// moved orec at a read, or commit-time validation failure — aborts the
// attempt and returns ErrConflict instead of retrying internally, which
// lets callers own the retry policy (e.g. db.RunWithRetry through an
// adapter). A non-nil error from fn aborts the attempt and is returned
// wrapped in ErrAborted, exactly as Atomically does.
func (s *STM) Try(fn func(tx *Txn) error) error {
	tx := &Txn{stm: s, writes: make(map[int]uint64)}
	tx.rv = s.ord.begin()
	err, conflicted := tx.run(fn)
	if conflicted {
		s.aborts.Add(1)
		return ErrConflict
	}
	if err != nil {
		s.aborts.Add(1)
		return errors.Join(ErrAborted, err)
	}
	if tx.commit() {
		s.commits.Add(1)
		return nil
	}
	s.aborts.Add(1)
	return ErrConflict
}

// run executes the body, converting the internal retry panic into a
// conflict result.
func (tx *Txn) run(fn func(tx *Txn) error) (err error, conflicted bool) {
	defer func() {
		if r := recover(); r != nil {
			if r == errRetry { //nolint:errorlint // sentinel identity
				conflicted = true
				return
			}
			panic(r)
		}
	}()
	return fn(tx), false
}

func backoff(attempt int) {
	if attempt > 3 {
		runtime.Gosched()
	}
}

// abortRetry unwinds the transaction body for a conflict.
func (tx *Txn) abortRetry() { panic(errRetry) }

// Load transactionally reads word addr.
func (tx *Txn) Load(addr int) uint64 {
	if v, ok := tx.writes[addr]; ok {
		return v
	}
	s := tx.stm
	v1 := s.orecs[addr].Load()
	if isLocked(v1) {
		tx.abortRetry()
	}
	if !s.ord.readValid(unpack(v1), tx.rv) {
		if !s.extendTimestamps || !tx.extend() {
			tx.abortRetry()
		}
		// rv advanced past the word's version; re-check.
		if !s.ord.readValid(unpack(v1), tx.rv) {
			tx.abortRetry()
		}
	}
	val := atomic.LoadUint64(&s.words[addr])
	v2 := s.orecs[addr].Load()
	if v1 != v2 {
		tx.abortRetry()
	}
	tx.reads = append(tx.reads, addr)
	return val
}

// extend tries to advance the transaction's read timestamp. Every prior
// read must still validate at the OLD read timestamp — i.e. be unchanged
// since the transaction began; validating against the fresh timestamp
// would admit words overwritten after we read them. Only then does rv
// advance. Reports whether the extension succeeded.
func (tx *Txn) extend() bool {
	s := tx.stm
	fresh := s.ord.now()
	if fresh <= tx.rv {
		return false
	}
	for _, addr := range tx.reads {
		v := s.orecs[addr].Load()
		if isLocked(v) || !s.ord.readValid(unpack(v), tx.rv) {
			return false
		}
	}
	tx.rv = fresh
	s.extends.Add(1)
	return true
}

// Store transactionally writes word addr (buffered until commit).
func (tx *Txn) Store(addr int, v uint64) {
	if _, seen := tx.writes[addr]; !seen {
		tx.worder = append(tx.worder, addr)
	}
	tx.writes[addr] = v
}

// commit performs TL2's lock → timestamp → validate → write-back sequence.
// It reports whether the transaction committed.
func (tx *Txn) commit() bool {
	s := tx.stm
	if len(tx.worder) == 0 {
		return true // read-only transactions commit without validation
	}
	// 1. Lock the write set (try-lock; any failure aborts).
	locked := 0
	for _, addr := range tx.worder {
		v := s.orecs[addr].Load()
		if isLocked(v) || !s.orecs[addr].CompareAndSwap(v, v|lockedBit) {
			tx.unlock(locked, 0)
			return false
		}
		// A locked orec we own must still carry a version our read of it
		// (if any) saw; read-set validation below covers that.
		locked++
	}
	// 2. Obtain the write version.
	wv := s.ord.commitTS(tx.rv)
	// 3. Validate the read set: every read word must still be unlocked (or
	// locked by us) at a version readable at rv.
	for _, addr := range tx.reads {
		v := s.orecs[addr].Load()
		if isLocked(v) {
			if _, ours := tx.writes[addr]; !ours {
				tx.unlock(locked, 0)
				return false
			}
			// Our own lock preserved the pre-lock version in the upper bits.
		}
		if !s.ord.readValid(unpack(v), tx.rv) {
			tx.unlock(locked, 0)
			return false
		}
	}
	// 4. Write back and release, publishing wv.
	for _, addr := range tx.worder {
		atomic.StoreUint64(&s.words[addr], tx.writes[addr])
	}
	tx.unlock(locked, wv)
	return true
}

// unlock releases the first n locked write-set orecs. If wv is nonzero the
// release publishes it as the new version; otherwise the pre-lock version
// is restored.
func (tx *Txn) unlock(n int, wv uint64) {
	s := tx.stm
	for i := 0; i < n; i++ {
		addr := tx.worder[i]
		if wv != 0 {
			s.orecs[addr].Store(pack(wv))
		} else {
			v := s.orecs[addr].Load()
			s.orecs[addr].Store(v &^ lockedBit)
		}
	}
}

// ReadDirect reads a word non-transactionally (initialization/verification
// only; callers must ensure quiescence).
func (s *STM) ReadDirect(addr int) uint64 { return atomic.LoadUint64(&s.words[addr]) }

// WriteDirect writes a word non-transactionally (initialization only).
func (s *STM) WriteDirect(addr int, v uint64) { atomic.StoreUint64(&s.words[addr], v) }
