package tl2

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"ordo/internal/core"
)

func stms(t *testing.T, words int) map[string]*STM {
	t.Helper()
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	return map[string]*STM{
		"logical": New(Logical, nil, words),
		"ordo":    New(Ordo, o, words),
	}
}

func TestNewOrdoRequiresPrimitive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(Ordo, nil, 1) did not panic")
		}
	}()
	New(Ordo, nil, 1)
}

func TestSimpleReadWrite(t *testing.T) {
	for name, s := range stms(t, 8) {
		t.Run(name, func(t *testing.T) {
			err := s.Atomically(func(tx *Txn) error {
				tx.Store(3, 77)
				if got := tx.Load(3); got != 77 {
					t.Errorf("read-own-write = %d, want 77", got)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := s.ReadDirect(3); got != 77 {
				t.Fatalf("committed word = %d, want 77", got)
			}
			err = s.Atomically(func(tx *Txn) error {
				if got := tx.Load(3); got != 77 {
					t.Errorf("second txn read = %d, want 77", got)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBodyErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	for name, s := range stms(t, 4) {
		t.Run(name, func(t *testing.T) {
			err := s.Atomically(func(tx *Txn) error {
				tx.Store(0, 123)
				return boom
			})
			if !errors.Is(err, ErrAborted) || !errors.Is(err, boom) {
				t.Fatalf("err = %v, want ErrAborted wrapping boom", err)
			}
			if got := s.ReadDirect(0); got != 0 {
				t.Fatalf("aborted write leaked: word = %d", got)
			}
		})
	}
}

func TestUserPanicPropagates(t *testing.T) {
	s := New(Logical, nil, 1)
	defer func() {
		if r := recover(); r != "user panic" {
			t.Fatalf("recover = %v, want user panic", r)
		}
	}()
	_ = s.Atomically(func(tx *Txn) error { panic("user panic") })
}

func TestConcurrentCounter(t *testing.T) {
	for name, s := range stms(t, 1) {
		t.Run(name, func(t *testing.T) {
			const workers = 4
			const iters = 250
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						_ = s.Atomically(func(tx *Txn) error {
							tx.Store(0, tx.Load(0)+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			if got := s.ReadDirect(0); got != workers*iters {
				t.Fatalf("counter = %d, want %d (lost updates)", got, workers*iters)
			}
			commits, _ := s.Stats()
			if commits != workers*iters {
				t.Fatalf("commits = %d, want %d", commits, workers*iters)
			}
		})
	}
}

func TestBankTransferInvariant(t *testing.T) {
	// Total balance across accounts must be invariant under concurrent
	// transfers, and concurrent audits must always see the full total.
	const accounts = 16
	const total = accounts * 100
	for name, s := range stms(t, accounts) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < accounts; i++ {
				s.WriteDirect(i, 100)
			}
			const workers = 3
			const iters = 200
			var wg sync.WaitGroup
			var audits, badAudits int64
			var mu sync.Mutex
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						from, to := rng.Intn(accounts), rng.Intn(accounts)
						if from == to {
							continue
						}
						_ = s.Atomically(func(tx *Txn) error {
							b := tx.Load(from)
							if b == 0 {
								return nil
							}
							tx.Store(from, b-1)
							tx.Store(to, tx.Load(to)+1)
							return nil
						})
					}
				}(int64(w))
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					var sum uint64
					_ = s.Atomically(func(tx *Txn) error {
						sum = 0
						for a := 0; a < accounts; a++ {
							sum += tx.Load(a)
						}
						return nil
					})
					mu.Lock()
					audits++
					if sum != total {
						badAudits++
					}
					mu.Unlock()
				}
			}()
			wg.Wait()
			if badAudits != 0 {
				t.Fatalf("%d/%d audits saw a torn total", badAudits, audits)
			}
			var sum uint64
			for a := 0; a < accounts; a++ {
				sum += s.ReadDirect(a)
			}
			if sum != total {
				t.Fatalf("final total = %d, want %d", sum, total)
			}
		})
	}
}

func TestWriteSkewPrevented(t *testing.T) {
	// Classic write-skew: two txns each read both words and write one;
	// serializability forbids both committing from the same snapshot in a
	// way that violates x+y <= 1... TL2 read-set validation prevents the
	// anomaly: run many racing pairs and check the invariant x+y <= 1
	// under "write iff sum==0".
	for name, s := range stms(t, 2) {
		t.Run(name, func(t *testing.T) {
			s.WriteDirect(0, 0)
			s.WriteDirect(1, 0)
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(me int) {
					defer wg.Done()
					for i := 0; i < 100; i++ {
						_ = s.Atomically(func(tx *Txn) error {
							if tx.Load(0)+tx.Load(1) == 0 {
								tx.Store(me, 1)
							}
							return nil
						})
						// Reset cooperatively.
						_ = s.Atomically(func(tx *Txn) error {
							tx.Store(me, 0)
							return nil
						})
					}
				}(w)
			}
			wg.Wait()
			// The invariant check happens inside: if write-skew occurred,
			// both words could be 1 simultaneously; verify with a sampler
			// that raced alongside in the loop above (cheap version: final
			// state must be consistent).
			if s.ReadDirect(0)+s.ReadDirect(1) > 1 {
				t.Fatalf("write skew: both flags set")
			}
		})
	}
}

func TestSingleThreadMatchesReference(t *testing.T) {
	const words = 32
	for name, s := range stms(t, words) {
		t.Run(name, func(t *testing.T) {
			ref := make([]uint64, words)
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 2000; i++ {
				a, b := rng.Intn(words), rng.Intn(words)
				v := rng.Uint64() % 1000
				err := s.Atomically(func(tx *Txn) error {
					x := tx.Load(a)
					tx.Store(b, x+v)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				x := ref[a] // Load happens before Store, even when a == b
				ref[b] = x + v
			}
			for i := range ref {
				if got := s.ReadDirect(i); got != ref[i] {
					t.Fatalf("word %d = %d, want %d", i, got, ref[i])
				}
			}
		})
	}
}

func TestAbortsCountedUnderContention(t *testing.T) {
	s := New(Logical, nil, 1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				_ = s.Atomically(func(tx *Txn) error {
					tx.Store(0, tx.Load(0)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	commits, _ := s.Stats()
	if commits != 1200 {
		t.Fatalf("commits = %d, want 1200", commits)
	}
	// aborts may be zero on a single-CPU box; just ensure counters are sane.
}

func TestReadOnlyTxnNeverAbortsAlone(t *testing.T) {
	for name, s := range stms(t, 4) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 100; i++ {
				if err := s.Atomically(func(tx *Txn) error {
					_ = tx.Load(1)
					_ = tx.Load(2)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			_, aborts := s.Stats()
			if aborts != 0 {
				t.Fatalf("uncontended read-only txns aborted %d times", aborts)
			}
		})
	}
}
