package tl2

import (
	"testing"

	"ordo/internal/core"
)

func benchSTM(b *testing.B, mode Mode, words int) *STM {
	b.Helper()
	if mode == Logical {
		return New(Logical, nil, words)
	}
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		b.Fatal(err)
	}
	return New(Ordo, o, words)
}

func benchRW(b *testing.B, mode Mode) {
	s := benchSTM(b, mode, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomically(func(tx *Txn) error {
			tx.Store(i&63, tx.Load(i&63)+1)
			return nil
		})
	}
}

func benchReadOnly(b *testing.B, mode Mode) {
	s := benchSTM(b, mode, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomically(func(tx *Txn) error {
			_ = tx.Load(i & 63)
			_ = tx.Load((i + 7) & 63)
			return nil
		})
	}
}

func BenchmarkTxnRWLogical(b *testing.B)       { benchRW(b, Logical) }
func BenchmarkTxnRWOrdo(b *testing.B)          { benchRW(b, Ordo) }
func BenchmarkTxnReadOnlyLogical(b *testing.B) { benchReadOnly(b, Logical) }
func BenchmarkTxnReadOnlyOrdo(b *testing.B)    { benchReadOnly(b, Ordo) }

func BenchmarkTxnParallelCounterLogical(b *testing.B) {
	s := benchSTM(b, Logical, 8)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			addr := i & 7 // spread contention
			_ = s.Atomically(func(tx *Txn) error {
				tx.Store(addr, tx.Load(addr)+1)
				return nil
			})
		}
	})
}
