package machine

// Kernel is one hardware thread's workload: Step executes one slice of
// work on the core, advancing its virtual time through the coherence
// primitives, and credits completed operations via Core.Done.
//
// Causality rule: the engine schedules cores in virtual-time order but
// executes a whole Step atomically, so a Step that performs local
// computation and THEN touches shared lines would reserve those lines at
// virtual times other (earlier) cores have not reached yet, serializing
// them behind its future. Kernels must therefore issue shared-line and
// clock operations at the START of a Step, put local computation at the
// END, and split phases longer than ~1µs into separate Steps (keep a
// small phase counter in the kernel closure).
type Kernel interface {
	Step(c *Core)
}

// KernelFunc adapts a function to Kernel.
type KernelFunc func(c *Core)

// Step implements Kernel.
func (f KernelFunc) Step(c *Core) { f(c) }

// RunStats summarizes a simulation run.
type RunStats struct {
	Threads    int
	VirtualNS  float64 // simulated duration
	Ops        uint64  // operations credited by kernels
	PerCoreOps []uint64
}

// OpsPerSec returns throughput in operations per (virtual) second.
func (r RunStats) OpsPerSec() float64 {
	if r.VirtualNS <= 0 {
		return 0
	}
	return float64(r.Ops) / (r.VirtualNS / 1e9)
}

// OpsPerUSec returns throughput in operations per microsecond, the unit
// most of the paper's figures use.
func (r RunStats) OpsPerUSec() float64 { return r.OpsPerSec() / 1e6 }

// Done credits the calling core with n completed operations.
func (c *Core) Done(n int) { c.ops += uint64(n) }

// Run simulates `threads` hardware threads (IDs 0..threads-1; the thread
// numbering puts one thread per physical core before SMT siblings, like an
// OS scatter policy) each executing kernel steps for the given virtual
// duration in ns. Kernels for all threads are produced by mk, which lets
// workloads allocate per-thread state.
//
// Run is deterministic: cores execute in virtual-time order with ties
// broken by core ID.
func (s *Sim) Run(threads int, durationNS float64, mk func(threadID int) Kernel) RunStats {
	if threads > len(s.cores) {
		threads = len(s.cores)
	}
	if threads < 1 {
		threads = 1
	}
	// Reset core state and register SMT activity.
	for i := range s.activeOnCore {
		s.activeOnCore[i] = 0
	}
	for i := 0; i < threads; i++ {
		c := &s.cores[i]
		c.vtime = baseVTime
		c.ops = 0
		s.activeOnCore[s.Topo.Core(i)]++
	}
	kernels := make([]Kernel, threads)
	for i := range kernels {
		kernels[i] = mk(i)
	}

	end := baseVTime + durationNS
	h := newVTimeHeap(s, threads)
	for {
		id, ok := h.popMin(end)
		if !ok {
			break
		}
		c := &s.cores[id]
		kernels[id].Step(c)
		if c.vtime <= h.lastPopped {
			// A kernel must always advance time or the loop livelocks;
			// charge a minimal cycle if it did not.
			c.vtime = h.lastPopped + 0.5
		}
		h.push(id, c.vtime)
	}

	st := RunStats{Threads: threads, VirtualNS: durationNS}
	st.PerCoreOps = make([]uint64, threads)
	for i := 0; i < threads; i++ {
		st.PerCoreOps[i] = s.cores[i].ops
		st.Ops += s.cores[i].ops
	}
	return st
}

// vtimeHeap is a binary min-heap of (vtime, coreID).
type vtimeHeap struct {
	sim        *Sim
	ids        []int
	lastPopped float64
}

func newVTimeHeap(s *Sim, threads int) *vtimeHeap {
	h := &vtimeHeap{sim: s, ids: make([]int, 0, threads)}
	for i := 0; i < threads; i++ {
		h.push(i, s.cores[i].vtime)
	}
	return h
}

func (h *vtimeHeap) less(a, b int) bool {
	ca, cb := &h.sim.cores[h.ids[a]], &h.sim.cores[h.ids[b]]
	if ca.vtime != cb.vtime {
		return ca.vtime < cb.vtime
	}
	return ca.ID < cb.ID
}

func (h *vtimeHeap) push(id int, _ float64) {
	h.ids = append(h.ids, id)
	i := len(h.ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ids[i], h.ids[parent] = h.ids[parent], h.ids[i]
		i = parent
	}
}

// popMin removes and returns the core with the smallest vtime, unless that
// vtime is already past end (then it returns false and the run is over —
// every remaining core is past the horizon too only when popped, so the
// heap drains naturally).
func (h *vtimeHeap) popMin(end float64) (int, bool) {
	for len(h.ids) > 0 {
		id := h.ids[0]
		last := len(h.ids) - 1
		h.ids[0] = h.ids[last]
		h.ids = h.ids[:last]
		// Sift down.
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h.ids) && h.less(l, small) {
				small = l
			}
			if r < len(h.ids) && h.less(r, small) {
				small = r
			}
			if small == i {
				break
			}
			h.ids[i], h.ids[small] = h.ids[small], h.ids[i]
			i = small
		}
		if h.sim.cores[id].vtime >= end {
			continue // this core is done; drop it
		}
		h.lastPopped = h.sim.cores[id].vtime
		return id, true
	}
	return 0, false
}
