package machine

import (
	"fmt"
	"math/rand"

	"ordo/internal/topology"
)

// Sampler implements core.PairSampler against a simulated machine: the
// one-way-delay protocol's measured offset is the transfer latency from
// writer to reader plus the reader/writer clock-skew difference, plus
// per-run software noise that the min-of-runs strips. Calibrating the Ordo
// boundary for the paper's machine models goes through this type.
type Sampler struct {
	Topo *topology.Machine

	// NoiseNS bounds the per-run positive measurement noise (interrupts,
	// store-buffer drain, spin-loop granularity). Defaults to 25 ns.
	NoiseNS float64

	// AsymmetryNS is the systematic difference between the two software
	// paths of a round trip (publish-and-spin vs. observe-and-reply):
	// the forward leg runs that much cheaper than the backward leg. Real
	// protocols always have some; it is what breaks the NTP-style RTT/2
	// estimator (§2.2) while leaving Ordo's one-way minima sound.
	// Defaults to 30 ns.
	AsymmetryNS float64

	// Seed makes the noise deterministic.
	Seed int64
}

// NumCPUs implements core.PairSampler.
func (s *Sampler) NumCPUs() int { return s.Topo.Threads() }

// MeasureOffset implements core.PairSampler.
func (s *Sampler) MeasureOffset(writer, reader, runs int) (int64, error) {
	n := s.Topo.Threads()
	if writer < 0 || writer >= n || reader < 0 || reader >= n {
		return 0, fmt.Errorf("machine: cpu pair (%d,%d) out of range [0,%d)", writer, reader, n)
	}
	if runs < 1 {
		runs = 1
	}
	noise := s.NoiseNS
	if noise == 0 {
		noise = 25
	}
	rng := rand.New(rand.NewSource(s.Seed ^ int64(writer)<<32 ^ int64(reader)))
	base := s.Topo.OneWayLatencyNS(writer, reader) +
		s.Topo.SkewNS(reader) - s.Topo.SkewNS(writer)
	best := base + noise
	for i := 0; i < runs; i++ {
		d := base + noise*rng.Float64()
		if d < best {
			best = d
		}
	}
	return int64(best), nil
}

// MeasureRTT implements core.RTTSampler for the NTP-style ablation: one
// round trip a→b→a, returning θ = t2−t1 and the RTT, minimized over runs.
// The forward software path is systematically cheaper than the backward
// one (AsymmetryNS), as in any real ping protocol.
func (s *Sampler) MeasureRTT(a, b, runs int) (theta, rtt int64, err error) {
	n := s.Topo.Threads()
	if a < 0 || a >= n || b < 0 || b >= n {
		return 0, 0, fmt.Errorf("machine: cpu pair (%d,%d) out of range [0,%d)", a, b, n)
	}
	if runs < 1 {
		runs = 1
	}
	noise := s.NoiseNS
	if noise == 0 {
		noise = 25
	}
	asym := s.AsymmetryNS
	if asym == 0 {
		asym = 30
	}
	lat := s.Topo.OneWayLatencyNS(a, b)
	skew := s.Topo.SkewNS(b) - s.Topo.SkewNS(a)
	rng := rand.New(rand.NewSource(s.Seed ^ 0x5bd1e995 ^ int64(a)<<32 ^ int64(b)))
	bestRTT := int64(1<<62 - 1)
	var bestTheta int64
	for i := 0; i < runs; i++ {
		fwd := lat - asym/2 + noise*rng.Float64()
		back := lat + asym/2 + noise*rng.Float64()
		th := int64(fwd + skew)
		rt := int64(fwd + back)
		// NTP keeps the sample with the smallest RTT.
		if rt < bestRTT {
			bestRTT = rt
			bestTheta = th
		}
	}
	return bestTheta, bestRTT, nil
}

// OffsetMatrix measures the full pairwise offset matrix (Figure 9's
// heatmaps) at physical-core granularity: entry [i][j] is the measured
// offset with writer i and reader j, in ns.
func (s *Sampler) OffsetMatrix(runs int) ([][]int64, error) {
	n := s.Topo.PhysicalCores()
	m := make([][]int64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d, err := s.MeasureOffset(i, j, runs)
			if err != nil {
				return nil, err
			}
			m[i][j] = d
		}
	}
	return m, nil
}
