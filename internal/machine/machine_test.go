package machine

import (
	"testing"

	"ordo/internal/core"
	"ordo/internal/topology"
)

func TestFetchAddSerializes(t *testing.T) {
	s := New(topology.Xeon(), 1)
	l := s.NewLine()
	// Two cores on different sockets hammer the same line; their updates
	// must be spaced by at least the transfer latency.
	c0, c1 := &s.cores[0], &s.cores[15] // socket 0 and socket 1
	c0.FetchAdd(l, 1)
	first := l.writeQ.busy[len(l.writeQ.busy)-1].end
	c1.FetchAdd(l, 1)
	gap := l.writeQ.busy[len(l.writeQ.busy)-1].end - first
	want := s.Topo.OneWayLatencyNS(0, 15)
	if gap < want {
		t.Fatalf("second FAA completed %f ns after first, want >= %f (transfer)", gap, want)
	}
	if l.value != 2 {
		t.Fatalf("value = %d, want 2", l.value)
	}
}

func TestFetchAddLocalIsCheap(t *testing.T) {
	s := New(topology.Xeon(), 1)
	l := s.NewLine()
	c := &s.cores[0]
	c.FetchAdd(l, 1)
	before := c.vtime
	c.FetchAdd(l, 1) // line already owned: no transfer
	if got := c.vtime - before; got > s.Topo.AtomicBaseNS+1 {
		t.Fatalf("owned-line FAA cost %f, want ~%f", got, s.Topo.AtomicBaseNS)
	}
}

func TestLoadCachesUntilInvalidated(t *testing.T) {
	s := New(topology.Xeon(), 1)
	l := s.NewLine()
	c0, c1 := &s.cores[0], &s.cores[15]
	c0.Store(l, 42)
	c1.Load(l) // miss: pays transfer
	before := c1.vtime
	c1.Load(l) // hit
	if hit := c1.vtime - before; hit > 2 {
		t.Fatalf("cached load cost %f, want ~1", hit)
	}
	c0.Store(l, 43) // invalidates c1's copy
	before = c1.vtime
	if v := c1.Load(l); v != 43 {
		t.Fatalf("load after invalidation = %d, want 43", v)
	}
	if miss := c1.vtime - before; miss < s.Topo.OneWayLatencyNS(0, 15) {
		t.Fatalf("post-invalidation load cost %f, want >= transfer %f",
			miss, s.Topo.OneWayLatencyNS(0, 15))
	}
}

func TestCASFailurePaysCoherence(t *testing.T) {
	s := New(topology.Xeon(), 1)
	l := s.NewLine()
	c0, c1 := &s.cores[0], &s.cores[15]
	c0.Store(l, 5)
	before := c1.vtime
	if c1.CompareAndSwap(l, 99, 100) {
		t.Fatal("CAS with wrong expected value succeeded")
	}
	if cost := c1.vtime - before; cost < s.Topo.OneWayLatencyNS(0, 15) {
		t.Fatalf("failed CAS cost %f, want >= transfer", cost)
	}
	if !c1.CompareAndSwap(l, 5, 100) {
		t.Fatal("CAS with correct expected value failed")
	}
	if l.value != 100 {
		t.Fatalf("value = %d, want 100", l.value)
	}
}

func TestReadTSCConstantWithoutSMT(t *testing.T) {
	s := New(topology.AMD(), 1) // SMT=1
	c := &s.cores[0]
	before := c.vtime
	c.ReadTSC()
	if cost := c.vtime - before; cost != s.Topo.TimestampCostNS {
		t.Fatalf("TSC cost %f, want %f", cost, s.Topo.TimestampCostNS)
	}
}

func TestReadTSCSMTPenalty(t *testing.T) {
	topo := topology.Phi()
	s := New(topo, 1)
	// Activate all four siblings of core 0 via Run bookkeeping.
	s.Run(1, 0, func(int) Kernel { return KernelFunc(func(c *Core) { c.Compute(1) }) })
	oneCost := topo.TimestampCostNS

	s.activeOnCore[0] = 4
	c := &s.cores[0]
	before := c.vtime
	c.ReadTSC()
	cost := c.vtime - before
	want := oneCost * (1 + topo.SMTTimestampPenalty*3)
	if diff := cost - want; diff < -0.01 || diff > 0.01 {
		t.Fatalf("4-sibling TSC cost %f, want %f (~3x single)", cost, want)
	}
}

func TestClockSkewAppliedPerSocket(t *testing.T) {
	topo := topology.ARM()
	s := New(topo, 1)
	c0 := &s.cores[0]   // socket 0
	c48 := &s.cores[48] // socket 1, skew +500
	d := float64(c48.Clock()) - float64(c0.Clock())
	if d < 400 || d > 600 {
		t.Fatalf("cross-socket clock difference %f, want ~500 (ARM skew)", d)
	}
}

func TestWaitClockPast(t *testing.T) {
	s := New(topology.Xeon(), 1)
	c := &s.cores[0]
	target := c.Clock() + 1000
	got := c.WaitClockPast(target)
	if got <= target {
		t.Fatalf("WaitClockPast returned %d, want > %d", got, target)
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func(int) Kernel {
		return KernelFunc(func(c *Core) {
			c.Compute(float64(1 + c.Rand().Intn(50)))
			c.Done(1)
		})
	}
	a := New(topology.AMD(), 7).Run(16, 50_000, mk)
	b := New(topology.AMD(), 7).Run(16, 50_000, mk)
	if a.Ops != b.Ops {
		t.Fatalf("two identical runs produced %d vs %d ops", a.Ops, b.Ops)
	}
	for i := range a.PerCoreOps {
		if a.PerCoreOps[i] != b.PerCoreOps[i] {
			t.Fatalf("core %d ops differ: %d vs %d", i, a.PerCoreOps[i], b.PerCoreOps[i])
		}
	}
}

func TestRunThroughputScalesForLocalWork(t *testing.T) {
	// Pure local compute must scale ~linearly with cores.
	mk := func(int) Kernel {
		return KernelFunc(func(c *Core) { c.Compute(100); c.Done(1) })
	}
	one := New(topology.Xeon(), 1).Run(1, 1e6, mk)
	thirty := New(topology.Xeon(), 1).Run(30, 1e6, mk)
	ratio := thirty.OpsPerSec() / one.OpsPerSec()
	if ratio < 28 || ratio > 32 {
		t.Fatalf("30-core speedup for local work = %f, want ~30", ratio)
	}
}

func TestRunAtomicCounterCollapses(t *testing.T) {
	// A shared fetch-add counter must NOT scale: total throughput at 120
	// threads should be within a small factor of 1-thread throughput
	// (cache-line serialization), reproducing the paper's premise.
	mkShared := func(s *Sim) func(int) Kernel {
		l := s.NewLine()
		return func(int) Kernel {
			return KernelFunc(func(c *Core) { c.FetchAdd(l, 1); c.Done(1) })
		}
	}
	s1 := New(topology.Xeon(), 1)
	one := s1.Run(1, 1e6, mkShared(s1))
	s2 := New(topology.Xeon(), 1)
	many := s2.Run(120, 1e6, mkShared(s2))
	ratio := many.OpsPerSec() / one.OpsPerSec()
	if ratio > 3 {
		t.Fatalf("shared atomic counter scaled %fx at 120 threads; expected collapse (<3x)", ratio)
	}
}

func TestRunTSCScales(t *testing.T) {
	// Per-core timestamp reads scale linearly to the physical core count.
	mk := func(int) Kernel {
		return KernelFunc(func(c *Core) { c.ReadTSC(); c.Done(1) })
	}
	s1 := New(topology.Xeon(), 1)
	one := s1.Run(1, 1e5, mk)
	s2 := New(topology.Xeon(), 1)
	many := s2.Run(120, 1e5, mk)
	ratio := many.OpsPerSec() / one.OpsPerSec()
	if ratio < 100 {
		t.Fatalf("TSC reads scaled only %fx at 120 threads, want ~120x", ratio)
	}
}

func TestSamplerOffsetsMatchModel(t *testing.T) {
	topo := topology.ARM()
	s := &Sampler{Topo: topo, Seed: 3}
	// Writer socket 0 → reader socket 1: latency 600 + skew(+500) ≈ 1100.
	d, err := s.MeasureOffset(0, 50, 200)
	if err != nil {
		t.Fatal(err)
	}
	if d < 1050 || d > 1200 {
		t.Fatalf("offset 0->50 = %d, want ~1100 (paper's ARM observation)", d)
	}
	// Reverse direction ≈ 100.
	d, err = s.MeasureOffset(50, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if d < 80 || d > 180 {
		t.Fatalf("offset 50->0 = %d, want ~100", d)
	}
}

func TestSamplerRejectsBadCPU(t *testing.T) {
	s := &Sampler{Topo: topology.AMD()}
	if _, err := s.MeasureOffset(0, 999, 1); err == nil {
		t.Fatal("expected error for out-of-range cpu")
	}
}

// TestTable1 reproduces Table 1: calibrated min/max offsets per machine.
func TestTable1BoundaryMatchesPaper(t *testing.T) {
	want := map[string][2]float64{ // name -> {min, max} ns, ±20% tolerance
		"Intel Xeon":     {70, 276},
		"Intel Xeon Phi": {90, 270},
		"AMD":            {93, 203},
		"ARM":            {100, 1100},
	}
	for _, topo := range topology.All() {
		s := &Sampler{Topo: topo, Seed: 42}
		b, err := core.ComputeBoundary(s, core.CalibrationOptions{Runs: 100, Stride: strideFor(topo)})
		if err != nil {
			t.Fatalf("%s: %v", topo.Name, err)
		}
		w := want[topo.Name]
		if got := float64(b.Min); got < w[0]*0.8 || got > w[0]*1.25 {
			t.Errorf("%s: min offset %f, want ~%f (paper Table 1)", topo.Name, got, w[0])
		}
		if got := float64(b.Global); got < w[1]*0.8 || got > w[1]*1.2 {
			t.Errorf("%s: ORDO_BOUNDARY %f, want ~%f (paper Table 1)", topo.Name, got, w[1])
		}
		// Soundness: boundary must dominate the machine's true max skew.
		if float64(b.Global) < topo.MaxSkewDiffNS() {
			t.Errorf("%s: boundary %d < physical max skew %f — unsound",
				topo.Name, b.Global, topo.MaxSkewDiffNS())
		}
	}
}

func strideFor(m *topology.Machine) int {
	if m.Threads() > 64 {
		return m.Threads() / 64
	}
	return 1
}

func TestOffsetMatrixShape(t *testing.T) {
	topo := topology.AMD()
	s := &Sampler{Topo: topo, Seed: 1}
	m, err := s.OffsetMatrix(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 32 {
		t.Fatalf("matrix rows = %d, want 32", len(m))
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Fatalf("diagonal [%d][%d] = %d, want 0", i, i, m[i][i])
		}
		for j := range m[i] {
			if i != j && m[i][j] <= 0 {
				t.Fatalf("offset [%d][%d] = %d, want positive (paper: never negative)",
					i, j, m[i][j])
			}
		}
	}
}
