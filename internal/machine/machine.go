// Package machine simulates a cache-coherent multicore machine in virtual
// time: hardware threads with invariant (constant-rate, constant-skew)
// clocks, and cache lines whose ownership transfers cost NUMA-dependent
// latency and whose contended atomic updates serialize.
//
// The simulator exists because the paper's evaluation needs 32–256 hardware
// threads across up to 8 sockets, while the reproduction host has one CPU.
// The phenomenon the paper measures — a global logical clock's cache line
// ping-ponging between cores versus constant-cost local clock reads — is a
// property of the coherence protocol, which this package models directly:
//
//   - an atomic read-modify-write must obtain the line exclusively; requests
//     serialize behind one another, each paying the one-way transfer latency
//     from the previous owner (internal/topology supplies the latencies);
//   - a plain load of a remotely-dirtied line pays one transfer and a small
//     service occupancy at the holder, then caches the line until the next
//     remote write invalidates it;
//   - a timestamp read costs a constant local latency, scaled when several
//     SMT siblings of one physical core issue timestamps concurrently.
//
// Workload kernels (internal/sim) drive Cores through these primitives; the
// engine interleaves cores in virtual-time order, so contention, queueing
// and clock skew all emerge from the model rather than being scripted.
package machine

import (
	"math/rand"

	"ordo/internal/topology"
)

// defaultReadServiceNS is the fallback read-miss service occupancy when a
// topology does not specify one.
const defaultReadServiceNS = 40.0

// baseVTime offsets all virtual clocks so that negative skews never
// produce negative clock readings.
const baseVTime = 1e9

// Sim is a simulated machine instance. It is not safe for concurrent use;
// the simulation itself is single-threaded and deterministic.
type Sim struct {
	Topo  *topology.Machine
	cores []Core
	// activeOnCore counts active hardware threads per physical core, for
	// the SMT timestamp penalty.
	activeOnCore []int
	// memCtl is one memory-controller service queue per socket.
	memCtl []svcQueue
	seed   int64
}

// New builds a simulator for the given machine model.
func New(t *topology.Machine, seed int64) *Sim {
	s := &Sim{Topo: t, seed: seed}
	s.cores = make([]Core, t.Threads())
	s.activeOnCore = make([]int, t.PhysicalCores())
	s.memCtl = make([]svcQueue, t.Sockets)
	for i := range s.cores {
		s.cores[i] = Core{
			sim:   s,
			ID:    i,
			vtime: baseVTime,
			skew:  t.SkewNS(i),
			rng:   rand.New(rand.NewSource(seed + int64(i)*7919)),
		}
	}
	return s
}

// Core is one hardware thread of the simulated machine.
type Core struct {
	sim   *Sim
	ID    int
	vtime float64 // ns of virtual time
	skew  float64 // invariant clock offset vs true time, ns
	ops   uint64  // operations credited by the kernel
	rng   *rand.Rand
}

// VTime returns the core's current virtual (true) time in ns.
func (c *Core) VTime() float64 { return c.vtime }

// Rand returns the core's deterministic random source.
func (c *Core) Rand() *rand.Rand { return c.rng }

// Compute advances the core's virtual time by ns of local work.
func (c *Core) Compute(ns float64) { c.vtime += ns }

// MemoryAccess models a cache-missing data access (object copy, tuple
// read): the given number of lines pay the machine's memory latency and
// occupy the core's socket memory controller, so aggregate traffic beyond
// the socket's bandwidth queues.
func (c *Core) MemoryAccess(lines float64) {
	t := c.sim.Topo
	start := c.vtime
	if t.MemServiceNS > 0 {
		q := &c.sim.memCtl[t.Socket(c.ID)]
		start = q.admit(c.vtime, lines*t.MemServiceNS)
	}
	c.vtime = start + t.MemoryNS*lines
}

// ReadTSC reads the core's invariant hardware clock: it costs the
// machine's timestamp latency (scaled under SMT contention) and returns
// the clock value in ticks (1 tick = 1 ns of virtual time, offset by the
// core's constant skew).
func (c *Core) ReadTSC() uint64 {
	t := c.sim.Topo
	cost := t.TimestampCostNS
	if t.SMT > 1 {
		siblings := c.sim.activeOnCore[t.Core(c.ID)]
		if siblings > 1 {
			cost *= 1 + t.SMTTimestampPenalty*float64(siblings-1)
		}
	}
	c.vtime += cost
	return c.Clock()
}

// Clock returns the core's invariant clock value without advancing time
// (the value RDTSC would produce at this instant).
func (c *Core) Clock() uint64 { return uint64(c.vtime + c.skew) }

// WaitClockPast advances the core's virtual time until its own invariant
// clock strictly exceeds target (the spin inside Ordo's new_time). Returns
// the clock value observed.
func (c *Core) WaitClockPast(target uint64) uint64 {
	t := c.sim.Topo
	need := float64(target+1) - c.skew
	if c.vtime < need {
		c.vtime = need
	}
	// One final timestamp read observes the passed value.
	c.vtime += t.TimestampCostNS
	return c.Clock()
}

// svcQueue is a service resource booked in virtual time: each request
// occupies the earliest gap of sufficient length at or after its arrival.
// Because the engine executes whole kernel steps atomically, requests can
// be issued out of virtual-time order; gap-filling keeps the model causal
// (an earlier-time request slots before reservations made "from the
// future") while preserving real queueing when the resource is busy.
type svcQueue struct {
	busy []interval // disjoint, sorted by start, coalesced when touching
}

type interval struct{ start, end float64 }

// pruneHorizonNS bounds how far into the past an out-of-order request can
// land (a few kernel steps); intervals older than this no longer matter.
const pruneHorizonNS = 50_000

// busyUntil returns when the interval covering t (if any) ends.
func (q *svcQueue) busyUntil(t float64) float64 {
	for _, iv := range q.busy {
		if iv.start > t {
			break
		}
		if t < iv.end {
			return iv.end
		}
	}
	return t
}

// admit books `occupancy` ns of service for a request arriving at t and
// returns the start of its service slot.
func (q *svcQueue) admit(t, occupancy float64) float64 {
	// Drop intervals too old to affect any future request.
	for len(q.busy) > 0 && q.busy[0].end < t-pruneHorizonNS {
		q.busy = q.busy[1:]
	}
	cur := t
	pos := len(q.busy)
	for i := 0; i < len(q.busy); i++ {
		iv := q.busy[i]
		if iv.end <= cur {
			continue // already past this interval
		}
		if iv.start >= cur+occupancy {
			pos = i // gap before interval i fits
			break
		}
		if iv.end > cur {
			cur = iv.end // busy through our slot: continue after it
		}
	}
	// Insert [cur, cur+occupancy), coalescing with touching neighbours.
	end := cur + occupancy
	left := pos - 1
	if pos > 0 && q.busy[pos-1].end == cur {
		q.busy[pos-1].end = end
		if pos < len(q.busy) && q.busy[pos].start == end {
			q.busy[pos-1].end = q.busy[pos].end
			q.busy = append(q.busy[:pos], q.busy[pos+1:]...)
		}
		return cur
	}
	_ = left
	if pos < len(q.busy) && q.busy[pos].start == end {
		q.busy[pos].start = cur
		return cur
	}
	q.busy = append(q.busy, interval{})
	copy(q.busy[pos+1:], q.busy[pos:])
	q.busy[pos] = interval{start: cur, end: end}
	return cur
}

// Line is a simulated cache line. Its zero value is an uncontended,
// unwritten line.
//
// Exclusive operations (FetchAdd, CompareAndSwap, Store, Acquire)
// serialize with one another in request-arrival order through the write
// chain, each paying the ownership transfer — the mechanism behind the
// paper's logical-clock collapse. Loads pay a transfer plus a service
// occupancy at the holder through the read chain, so miss storms to a hot
// line queue too. Both chains are causal (see svcQueue).
type Line struct {
	owner       int // thread that last held the line dirty; -1 if clean
	writeQ      svcQueue
	readQ       svcQueue
	version     uint64  // incremented by every write
	lastWriteAt float64 // vtime of the most recent value write
	value       uint64  // payload (e.g. a logical clock)
	seen        []uint64
}

// NewLine allocates a line tracked for all threads of this machine.
func (s *Sim) NewLine() *Line {
	return &Line{owner: -1, seen: make([]uint64, s.Topo.Threads())}
}

// transferCost is the latency for thread c to obtain a line from its
// current holder.
func (s *Sim) transferCost(l *Line, c int) float64 {
	if l.owner < 0 || l.owner == c {
		return 0
	}
	return s.Topo.OneWayLatencyNS(l.owner, c)
}

// exclusive performs the queueing common to all exclusive operations and
// returns the completion time.
func (c *Core) exclusive(l *Line, cost float64) float64 {
	occupancy := cost + c.sim.transferCost(l, c.ID)
	start := l.writeQ.admit(c.vtime, occupancy)
	done := start + occupancy
	l.owner = c.ID
	l.version++
	l.seen[c.ID] = l.version
	c.vtime = done
	return done
}

// FetchAdd performs an atomic fetch-and-add on the line: the request
// queues behind the line's service chain, pays the ownership transfer,
// and leaves the line exclusively owned. Returns the previous value.
// This is the paper's contended logical-clock update.
func (c *Core) FetchAdd(l *Line, delta uint64) uint64 {
	old := l.value
	done := c.exclusive(l, c.sim.Topo.AtomicBaseNS)
	l.value += delta
	l.lastWriteAt = done
	return old
}

// CompareAndSwap attempts an atomic CAS; it pays the same coherence costs
// as FetchAdd whether it succeeds or fails (the line must be obtained
// exclusively either way). Returns whether the swap happened.
func (c *Core) CompareAndSwap(l *Line, old, new uint64) bool {
	ok := l.value == old
	done := c.exclusive(l, c.sim.Topo.AtomicBaseNS)
	if ok {
		l.value = new
		l.lastWriteAt = done
	}
	return ok
}

// Store performs a plain (release) store; coherence-wise it behaves like an
// exclusive acquisition.
func (c *Core) Store(l *Line, v uint64) {
	done := c.exclusive(l, 1)
	l.value = v
	l.lastWriteAt = done
}

// Acquire models a lock-protected critical section on the line: obtain it
// exclusively and hold it for holdNS of work. Contending Acquires
// serialize for the full hold, the behaviour of an in-place update under
// a spinlock.
func (c *Core) Acquire(l *Line, holdNS float64) {
	done := c.exclusive(l, c.sim.Topo.AtomicBaseNS+holdNS)
	l.lastWriteAt = done
	l.value++
}

// Load reads the line. A core that already caches the current version pays
// ~L1 latency; otherwise it pays the transfer from the dirty holder plus a
// service occupancy at the holder, queueing causally behind both the write
// chain and other read misses.
func (c *Core) Load(l *Line) uint64 {
	s := c.sim
	if l.seen[c.ID] == l.version {
		// Cached copy still valid (a never-written line is clean
		// everywhere: version 0 matches the zeroed seen table).
		c.vtime += 1
		return l.value
	}
	service := s.Topo.ReadServiceNS
	if service == 0 {
		service = defaultReadServiceNS
	}
	// An in-flight exclusive operation covering our arrival holds the
	// line; wait it out, then take read service.
	t := l.writeQ.busyUntil(c.vtime)
	start := l.readQ.admit(t, service)
	done := start + service + s.transferCost(l, c.ID)
	l.seen[c.ID] = l.version
	c.vtime = done
	return l.value
}

// Version returns the line's write version without charging time (used by
// kernels for conflict bookkeeping, standing in for values they already
// loaded).
func (l *Line) Version() uint64 { return l.version }

// LastWriteAt returns the vtime of the line's most recent write.
func (l *Line) LastWriteAt() float64 { return l.lastWriteAt }

// Value returns the line's current payload without charging time.
func (l *Line) Value() uint64 { return l.value }
