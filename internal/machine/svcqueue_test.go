package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ordo/internal/topology"
)

// checkInvariants asserts the busy list is sorted, disjoint and coalesced.
func checkInvariants(t *testing.T, q *svcQueue) {
	t.Helper()
	for i, iv := range q.busy {
		if iv.end <= iv.start {
			t.Fatalf("interval %d empty or inverted: %+v", i, iv)
		}
		if i > 0 {
			prev := q.busy[i-1]
			if iv.start < prev.end {
				t.Fatalf("intervals %d/%d overlap: %+v %+v", i-1, i, prev, iv)
			}
			if iv.start == prev.end {
				t.Fatalf("intervals %d/%d not coalesced: %+v %+v", i-1, i, prev, iv)
			}
		}
	}
}

func TestSvcQueueIdleServesImmediately(t *testing.T) {
	var q svcQueue
	if got := q.admit(100, 10); got != 100 {
		t.Fatalf("idle admit = %f, want 100", got)
	}
	checkInvariants(t, &q)
}

func TestSvcQueueBusyQueues(t *testing.T) {
	var q svcQueue
	q.admit(100, 10) // busy [100,110)
	if got := q.admit(105, 10); got != 110 {
		t.Fatalf("busy admit = %f, want 110", got)
	}
	checkInvariants(t, &q)
	// Coalesced into one interval [100,120).
	if len(q.busy) != 1 || q.busy[0].start != 100 || q.busy[0].end != 120 {
		t.Fatalf("busy list = %+v, want [100,120)", q.busy)
	}
}

func TestSvcQueueEarlierRequestFillsGap(t *testing.T) {
	var q svcQueue
	q.admit(1000, 10) // [1000,1010) booked by a core that ran ahead
	// An earlier-time request must NOT wait for the future booking.
	if got := q.admit(100, 10); got != 100 {
		t.Fatalf("earlier request served at %f, want 100", got)
	}
	checkInvariants(t, &q)
	if len(q.busy) != 2 {
		t.Fatalf("busy list = %+v, want two intervals", q.busy)
	}
}

func TestSvcQueueGapTooSmallSkips(t *testing.T) {
	var q svcQueue
	q.admit(100, 10) // [100,110)
	q.admit(115, 10) // [115,125)
	// A 10-wide request at 105: gap [110,115) too small → after 125.
	if got := q.admit(105, 10); got != 125 {
		t.Fatalf("admit = %f, want 125", got)
	}
	checkInvariants(t, &q)
}

func TestSvcQueueExactGapFits(t *testing.T) {
	var q svcQueue
	q.admit(100, 10) // [100,110)
	q.admit(120, 10) // [120,130)
	// Exactly 10 wide gap [110,120).
	if got := q.admit(100, 10); got != 110 {
		t.Fatalf("admit = %f, want 110", got)
	}
	checkInvariants(t, &q)
	if len(q.busy) != 1 || q.busy[0].end != 130 {
		t.Fatalf("expected full coalescing, got %+v", q.busy)
	}
}

func TestSvcQueuePropertyNoOverlapAndCausal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q svcQueue
		type booking struct{ start, end float64 }
		var bookings []booking
		base := 1000.0
		for i := 0; i < 200; i++ {
			t := base + rng.Float64()*5000
			occ := 1 + rng.Float64()*50
			start := q.admit(t, occ)
			// Causality: never served before arrival.
			if start < t {
				return false
			}
			// No overlap with any earlier booking.
			for _, b := range bookings {
				if start < b.end && b.start < start+occ {
					return false
				}
			}
			bookings = append(bookings, booking{start, start + occ})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSvcQueuePruneBoundsMemory(t *testing.T) {
	var q svcQueue
	// Far-apart requests never coalesce; pruning must still bound the list.
	for i := 0; i < 10000; i++ {
		q.admit(float64(i)*1000, 1)
	}
	if len(q.busy) > int(pruneHorizonNS/1000)+4 {
		t.Fatalf("busy list grew to %d entries; pruning broken", len(q.busy))
	}
}

func TestBusyUntil(t *testing.T) {
	var q svcQueue
	q.admit(100, 20) // [100,120)
	if got := q.busyUntil(110); got != 120 {
		t.Fatalf("busyUntil(110) = %f, want 120", got)
	}
	if got := q.busyUntil(120); got != 120 {
		t.Fatalf("busyUntil(120) = %f, want 120 (interval is half-open)", got)
	}
	if got := q.busyUntil(50); got != 50 {
		t.Fatalf("busyUntil(50) = %f, want 50", got)
	}
	if got := q.busyUntil(500); got != 500 {
		t.Fatalf("busyUntil(500) = %f, want 500", got)
	}
}

func TestAcquireSerializesForHold(t *testing.T) {
	s := New(topology.AMD(), 1)
	l := s.NewLine()
	c0, c1 := &s.cores[0], &s.cores[1]
	c0.Acquire(l, 1000)
	before := c1.vtime
	c1.Acquire(l, 1000)
	wait := c1.vtime - before
	// c1 queues behind c0's full hold plus its own hold and transfer.
	if wait < 2000 {
		t.Fatalf("second Acquire took %f, want >= 2000 (serialized holds)", wait)
	}
}

func TestMemoryAccessBandwidthQueues(t *testing.T) {
	topo := topology.Xeon()
	s := New(topo, 1)
	// Saturate one socket's controller: demand far above 1/MemServiceNS.
	st := s.Run(15, 100_000, func(int) Kernel { // 15 threads = socket 0 only
		return KernelFunc(func(c *Core) {
			c.MemoryAccess(40) // 120ns occupancy, 3.6µs latency
			c.Done(1)
		})
	})
	// Per-socket capacity = 1/(40*3ns) = 8.3/µs; latency-only would allow
	// 15/3.6µs = 4.2/µs — below capacity, so near-linear...
	low := st.OpsPerUSec()
	s2 := New(topo, 1)
	st2 := s2.Run(15, 100_000, func(int) Kernel {
		return KernelFunc(func(c *Core) {
			c.MemoryAccess(400) // 1.2µs occupancy each: far above capacity
			c.Done(1)
		})
	})
	high := st2.OpsPerUSec()
	// 10x the traffic must yield well under 1/10th the throughput when
	// the controller saturates.
	if high > low/8 {
		t.Fatalf("bandwidth queue not binding: %.2f vs %.2f ops/us", high, low)
	}
}
