package machine

import (
	"testing"

	"ordo/internal/topology"
)

func TestRunClampsThreads(t *testing.T) {
	s := New(topology.AMD(), 1) // 32 threads
	st := s.Run(1000, 10_000, func(int) Kernel {
		return KernelFunc(func(c *Core) { c.Compute(100); c.Done(1) })
	})
	if st.Threads != 32 {
		t.Fatalf("Threads = %d, want clamped to 32", st.Threads)
	}
	st = s.Run(0, 10_000, func(int) Kernel {
		return KernelFunc(func(c *Core) { c.Compute(100); c.Done(1) })
	})
	if st.Threads != 1 {
		t.Fatalf("Threads = %d, want clamped to 1", st.Threads)
	}
}

func TestRunZeroDuration(t *testing.T) {
	s := New(topology.AMD(), 1)
	st := s.Run(4, 0, func(int) Kernel {
		return KernelFunc(func(c *Core) { c.Compute(1); c.Done(1) })
	})
	if st.Ops != 0 {
		t.Fatalf("zero-duration run completed %d ops", st.Ops)
	}
	if st.OpsPerSec() != 0 {
		t.Fatalf("OpsPerSec on empty run = %f", st.OpsPerSec())
	}
}

func TestRunPerCoreOpsSum(t *testing.T) {
	s := New(topology.AMD(), 1)
	st := s.Run(8, 100_000, func(int) Kernel {
		return KernelFunc(func(c *Core) { c.Compute(50); c.Done(2) })
	})
	var sum uint64
	for _, n := range st.PerCoreOps {
		sum += n
	}
	if sum != st.Ops {
		t.Fatalf("per-core ops sum %d != total %d", sum, st.Ops)
	}
	if st.Ops%2 != 0 {
		t.Fatalf("ops %d not a multiple of the per-step credit", st.Ops)
	}
}

func TestRunKernelThatNeverAdvancesDoesNotLivelock(t *testing.T) {
	s := New(topology.AMD(), 1)
	// A kernel step that does nothing must still be dragged forward by the
	// engine's anti-livelock guard.
	st := s.Run(2, 10_000, func(int) Kernel {
		return KernelFunc(func(c *Core) { c.Done(1) })
	})
	if st.Ops == 0 {
		t.Fatal("no progress")
	}
}

func TestRunResetsBetweenCalls(t *testing.T) {
	s := New(topology.AMD(), 1)
	mk := func(int) Kernel {
		return KernelFunc(func(c *Core) { c.Compute(100); c.Done(1) })
	}
	a := s.Run(4, 50_000, mk)
	b := s.Run(4, 50_000, mk)
	if a.Ops != b.Ops {
		t.Fatalf("back-to-back runs differ: %d vs %d (state leaked)", a.Ops, b.Ops)
	}
}

func TestOpsPerUSec(t *testing.T) {
	st := RunStats{VirtualNS: 1_000_000, Ops: 5_000}
	if got := st.OpsPerUSec(); got != 5 {
		t.Fatalf("OpsPerUSec = %f, want 5", got)
	}
}

func TestSMTThreadsMapToDistinctVirtualCores(t *testing.T) {
	// Threads beyond the physical core count must activate SMT counters.
	topo := topology.Xeon()
	s := New(topo, 1)
	s.Run(topo.PhysicalCores()+1, 0, func(int) Kernel {
		return KernelFunc(func(c *Core) { c.Compute(1) })
	})
	if s.activeOnCore[0] != 2 {
		t.Fatalf("core 0 active threads = %d, want 2 (SMT sibling)", s.activeOnCore[0])
	}
	if s.activeOnCore[1] != 1 {
		t.Fatalf("core 1 active threads = %d, want 1", s.activeOnCore[1])
	}
}
