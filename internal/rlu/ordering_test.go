package rlu

import (
	"testing"
	"testing/quick"

	"ordo/internal/core"
)

// These white-box tests pin the clock-design semantics of §4.1: the
// logical clock's rules, the Ordo rules, and — the DESIGN.md §5 ablation —
// the negative-skew snapshot hazard that the extra commit-time
// ORDO_BOUNDARY plus the conservative steal rule eliminate.

// cb/ca discard the uncertainty flag for tests that only assert certainty.
func cb(o ordering, a, b uint64) bool { r, _ := o.certainlyBefore(a, b); return r }
func ca(o ordering, a, b uint64) bool { r, _ := o.certainlyAfter(a, b); return r }

func TestLogicalOrderingRules(t *testing.T) {
	l := &logicalClock{}
	// Original RLU steal rule: steal iff write_clock <= local_clock, i.e.
	// read the original iff local < write.
	if !cb(l, 4, 5) {
		t.Error("logical certainlyBefore(4,5) = false")
	}
	if cb(l, 5, 5) {
		t.Error("logical certainlyBefore(5,5) = true; equal clocks must steal")
	}
	// Quiescence: a reader that started at or after the commit is safe.
	if !ca(l, 5, 5) {
		t.Error("logical certainlyAfter(5,5) = false")
	}
	if ca(l, 4, 5) {
		t.Error("logical certainlyAfter(4,5) = true")
	}
	// commitClock returns global+1 and advances, in one step.
	if c := l.commitClock(0); c != 1 {
		t.Errorf("first commitClock = %d, want 1", c)
	}
	if c := l.readClock(); c != 1 {
		t.Errorf("readClock after commit = %d, want 1", c)
	}
}

func TestOrdoOrderingRules(t *testing.T) {
	var now uint64 = 1000
	o := core.New(core.ClockFunc(func() core.Time {
		now += 10
		return core.Time(now)
	}), 100)
	c := ordoClock{o}

	// Inactive markers are never stolen from and never "after" anything.
	if !cb(c, 5000, inactive) {
		t.Error("certainlyBefore(x, inactive) must be true (no steal)")
	}
	if ca(c, 5000, inactive) {
		t.Error("certainlyAfter(x, inactive) must be false")
	}
	// Within the boundary: neither certainly before nor after.
	if cb(c, 1000, 1050) || ca(c, 1050, 1000) {
		t.Error("within-boundary pair treated as certain")
	}
	// Outside the boundary: both directions certain.
	if !cb(c, 1000, 1200) || !ca(c, 1200, 1000) {
		t.Error("beyond-boundary pair treated as uncertain")
	}
	// commitClock adds an extra boundary: result > local + 2*boundary.
	wc := c.commitClock(1000)
	if wc <= 1000+200 {
		t.Errorf("commitClock(1000) = %d, want > 1200 (local + 2 boundaries)", wc)
	}
}

// TestNegativeSkewSnapshotHazard is the §4.1 hazard ablation. Setting:
// boundary B bounds the physical skew. A writer commits with
// writeClock = new_time(local + B) > local + 2B. Any reader that begins
// AFTER the commit's real time reads a clock value r >= writeClock - B
// (its clock lags by at most the physical skew <= B, and new_time's
// return was at the commit's real time on the writer's clock).
//
// Hazard: with the naive steal rule "steal iff certainly after", such a
// reader inside the uncertainty window would read the ORIGINAL object
// while the writer writes it back. Our rule — "read the original only if
// certainly BEFORE" — forces every such reader to steal: the property
// below shows no post-commit reader can be certainly-before.
func TestNegativeSkewSnapshotHazard(t *testing.T) {
	const boundary = 276
	o := core.New(core.ClockFunc(func() core.Time { return 0 }), boundary)
	c := ordoClock{o}

	f := func(commitReal uint64, lagSmall uint16) bool {
		commitReal %= 1 << 40
		// Reader's clock lags real time by at most the physical skew,
		// which the boundary dominates.
		lag := uint64(lagSmall) % (boundary + 1)
		writeClock := commitReal            // writer's clock at new_time return (skew 0 WLOG)
		readerLocal := commitReal - lag + 1 // begins just after the commit
		// The reader must NOT be directed to the original object.
		return !cb(c, readerLocal, writeClock)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}

	// And with the naive rule the hazard is real: a lagging reader inside
	// the window is not "certainly after", so naive stealing would read
	// the original mid-writeback.
	writeClock := uint64(1 << 20)
	readerLocal := writeClock - 100 // began after commit, clock lags 100ns
	if ca(c, readerLocal, writeClock) {
		t.Fatal("test setup broken: reader should be inside the window")
	}
	if cb(c, readerLocal, writeClock) {
		t.Fatal("conservative rule failed: lagging post-commit reader sent to original")
	}
}

// TestStealRuleDegeneratesToOriginal checks that for the logical clock
// our generalized rule is EXACTLY the original RLU condition.
func TestStealRuleDegeneratesToOriginal(t *testing.T) {
	l := &logicalClock{}
	f := func(local, write uint64) bool {
		originalSteals := write <= local
		oursReadsOriginal := cb(l, local, write)
		return originalSteals == !oursReadsOriginal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
