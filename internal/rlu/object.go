package rlu

import "sync/atomic"

// Object is an RLU-protected value of type T. Readers access it through
// Dereference inside a critical section; writers lock it with TryLock,
// mutate the returned copy, and let ReaderUnlock commit.
//
// The header (copy pointer) plays the role of the C implementation's
// ws-obj header word: nil means unlocked; otherwise it points at the
// owner's working copy.
type Object[T any] struct {
	hdr  atomic.Pointer[objCopy[T]]
	data T
}

// objCopy is a write-log entry: the owner's private copy of one object.
type objCopy[T any] struct {
	owner *Thread
	obj   *Object[T]
	data  T
}

func (c *objCopy[T]) writeback() { c.obj.data = c.data }
func (c *objCopy[T]) unlock()    { c.obj.hdr.Store(nil) }

// NewObject wraps v as an RLU-protected object.
func NewObject[T any](v T) *Object[T] { return &Object[T]{data: v} }

// Dereference returns the version of o visible to t's current critical
// section: the original object, the thread's own working copy, or a
// committed copy stolen from another writer whose commit t's clock cannot
// place before its own section start.
//
// The returned pointer must not be retained past ReaderUnlock, and must
// not be written through — use TryLock for writes.
func Dereference[T any](t *Thread, o *Object[T]) *T {
	c := o.hdr.Load()
	if c == nil {
		return &o.data
	}
	if c.owner == t {
		return &c.data
	}
	wc := c.owner.writeClock.Load()
	before, unc := t.d.ord.certainlyBefore(t.localClock.Load(), wc)
	t.countCmp(unc)
	if before {
		// Our section certainly predates the owner's commit (or the owner
		// has no commit in flight): read the original snapshot.
		return &o.data
	}
	// Steal: the owner's commit is not certainly after us, so it is either
	// committed before our section or concurrent with it; in both cases
	// its copy is the version we must observe (and the original may be
	// undergoing write-back).
	return &c.data
}

// TryLock locks o for writing within t's current section and returns a
// writable copy. ok == false signals a writer-writer conflict: the caller
// must Abort the section and retry (RLU forbids writer-writer sharing).
func TryLock[T any](t *Thread, o *Object[T]) (ptr *T, ok bool) {
	t.isWriter = true
	if c := o.hdr.Load(); c != nil {
		if c.owner == t {
			return &c.data, true // already ours (same section or deferred)
		}
		c.owner.requestSync()
		return nil, false
	}
	c := &objCopy[T]{owner: t, obj: o}
	if !o.hdr.CompareAndSwap(nil, c) {
		if cur := o.hdr.Load(); cur != nil && cur.owner != t {
			cur.owner.requestSync()
		}
		return nil, false
	}
	// Safe to copy after publishing the header: no other thread reads
	// c.data until t.writeClock is set at commit, which happens after this
	// copy in program order (and with release/acquire ordering through the
	// writeClock atomics).
	c.data = o.data
	t.log = append(t.log, c)
	return &c.data, true
}

// IsLocked reports whether o currently has a writer (diagnostics/tests).
func (o *Object[T]) IsLocked() bool { return o.hdr.Load() != nil }
