package rlu

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ordo/internal/core"
)

func domains(t *testing.T) map[string]*Domain {
	t.Helper()
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	return map[string]*Domain{
		"logical": NewDomain(Logical, nil),
		"ordo":    NewDomain(Ordo, o),
	}
}

func TestNewDomainOrdoRequiresPrimitive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDomain(Ordo, nil) did not panic")
		}
	}()
	NewDomain(Ordo, nil)
}

func TestSingleThreadReadWrite(t *testing.T) {
	for name, d := range domains(t) {
		t.Run(name, func(t *testing.T) {
			th := d.RegisterThread()
			obj := NewObject(10)

			th.ReaderLock()
			if v := *Dereference(th, obj); v != 10 {
				t.Fatalf("initial read = %d, want 10", v)
			}
			th.ReaderUnlock()

			th.ReaderLock()
			p, ok := TryLock(th, obj)
			if !ok {
				t.Fatal("TryLock failed with no contention")
			}
			*p = 42
			// Before commit, the writer sees its own copy...
			if v := *Dereference(th, obj); v != 42 {
				t.Fatalf("writer's own read = %d, want 42", v)
			}
			th.ReaderUnlock()

			// ...and after commit everyone sees the new value.
			th.ReaderLock()
			if v := *Dereference(th, obj); v != 42 {
				t.Fatalf("post-commit read = %d, want 42", v)
			}
			th.ReaderUnlock()
			if obj.IsLocked() {
				t.Fatal("object still locked after commit")
			}
		})
	}
}

func TestWriterWriterConflictAborts(t *testing.T) {
	for name, d := range domains(t) {
		t.Run(name, func(t *testing.T) {
			t1 := d.RegisterThread()
			t2 := d.RegisterThread()
			obj := NewObject(0)

			t1.ReaderLock()
			if _, ok := TryLock(t1, obj); !ok {
				t.Fatal("first TryLock failed")
			}
			t2.ReaderLock()
			if _, ok := TryLock(t2, obj); ok {
				t.Fatal("second TryLock succeeded on a locked object")
			}
			t2.Abort()
			if _, aborts, _ := t2.Stats(); aborts != 1 {
				t.Fatalf("aborts = %d, want 1", aborts)
			}
			t1.ReaderUnlock()

			// After t1's commit, t2 can lock it.
			t2.ReaderLock()
			if _, ok := TryLock(t2, obj); !ok {
				t.Fatal("TryLock after release failed")
			}
			t2.Abort()
		})
	}
}

func TestAbortRestoresOriginal(t *testing.T) {
	for name, d := range domains(t) {
		t.Run(name, func(t *testing.T) {
			th := d.RegisterThread()
			obj := NewObject(7)
			th.ReaderLock()
			p, _ := TryLock(th, obj)
			*p = 999
			th.Abort()
			th.ReaderLock()
			if v := *Dereference(th, obj); v != 7 {
				t.Fatalf("read after abort = %d, want 7", v)
			}
			th.ReaderUnlock()
			if obj.IsLocked() {
				t.Fatal("object locked after abort")
			}
		})
	}
}

func TestMultiObjectCommitIsAtomic(t *testing.T) {
	// Two objects must always satisfy the invariant a+b == 100 from any
	// reader's point of view, across concurrent transfers.
	for name, d := range domains(t) {
		t.Run(name, func(t *testing.T) {
			a, b := NewObject(50), NewObject(50)
			const (
				writers = 2
				readers = 2
				iters   = 300
			)
			var wg sync.WaitGroup
			var violations atomic.Int64
			for w := 0; w < writers; w++ {
				th := d.RegisterThread()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						for {
							th.ReaderLock()
							pa, ok := TryLock(th, a)
							if !ok {
								th.Abort()
								runtime.Gosched()
								continue
							}
							pb, ok := TryLock(th, b)
							if !ok {
								th.Abort()
								runtime.Gosched()
								continue
							}
							*pa++
							*pb--
							th.ReaderUnlock()
							break
						}
					}
				}()
			}
			for r := 0; r < readers; r++ {
				th := d.RegisterThread()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters*4; i++ {
						th.ReaderLock()
						va := *Dereference(th, a)
						vb := *Dereference(th, b)
						th.ReaderUnlock()
						if va+vb != 100 {
							violations.Add(1)
						}
					}
				}()
			}
			wg.Wait()
			if v := violations.Load(); v != 0 {
				t.Fatalf("%d snapshot violations (a+b != 100)", v)
			}
			// Final state: both writers did `iters` increments on a.
			th := d.RegisterThread()
			th.ReaderLock()
			va, vb := *Dereference(th, a), *Dereference(th, b)
			th.ReaderUnlock()
			if va != 50+writers*iters || vb != 50-writers*iters {
				t.Fatalf("final state a=%d b=%d, want %d/%d",
					va, vb, 50+writers*iters, 50-writers*iters)
			}
		})
	}
}

func TestConcurrentCountersSumCorrect(t *testing.T) {
	for name, d := range domains(t) {
		t.Run(name, func(t *testing.T) {
			const n = 4
			const iters = 200
			objs := make([]*Object[int], n)
			for i := range objs {
				objs[i] = NewObject(0)
			}
			var wg sync.WaitGroup
			for w := 0; w < n; w++ {
				th := d.RegisterThread()
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					rng := seed
					for i := 0; i < iters; i++ {
						rng = rng*1103515245 + 12345
						target := objs[(rng>>16&0x7fff)%n]
						for {
							th.ReaderLock()
							p, ok := TryLock(th, target)
							if !ok {
								th.Abort()
								runtime.Gosched()
								continue
							}
							*p++
							th.ReaderUnlock()
							break
						}
					}
				}(w)
			}
			wg.Wait()
			th := d.RegisterThread()
			th.ReaderLock()
			sum := 0
			for _, o := range objs {
				sum += *Dereference(th, o)
			}
			th.ReaderUnlock()
			if sum != n*iters {
				t.Fatalf("sum = %d, want %d (lost updates)", sum, n*iters)
			}
		})
	}
}

func TestDeferredModeFlush(t *testing.T) {
	for name, d := range domains(t) {
		t.Run(name, func(t *testing.T) {
			th := d.RegisterThread()
			th.SetMaxDefer(8)
			objs := make([]*Object[int], 3)
			for i := range objs {
				objs[i] = NewObject(0)
			}
			for _, o := range objs {
				th.ReaderLock()
				p, ok := TryLock(th, o)
				if !ok {
					t.Fatal("TryLock failed while deferring")
				}
				*p = 5
				th.ReaderUnlock() // deferred: no commit yet
			}
			// Objects still locked — commit is pending.
			for i, o := range objs {
				if !o.IsLocked() {
					t.Fatalf("object %d unlocked during deferral", i)
				}
			}
			// The deferring writer still observes its own pending values.
			th.ReaderLock()
			if v := *Dereference(th, objs[0]); v != 5 {
				t.Fatalf("deferring writer reads %d, want its pending 5", v)
			}
			th.ReaderUnlock()
			th.Flush()
			for i, o := range objs {
				if o.IsLocked() {
					t.Fatalf("object %d locked after Flush", i)
				}
			}
			th.ReaderLock()
			for i, o := range objs {
				if v := *Dereference(th, o); v != 5 {
					t.Fatalf("object %d = %d after flush, want 5", i, v)
				}
			}
			th.ReaderUnlock()
			_ = name
		})
	}
}

func TestDeferredConflictForcesFlush(t *testing.T) {
	for name, d := range domains(t) {
		t.Run(name, func(t *testing.T) {
			owner := d.RegisterThread()
			owner.SetMaxDefer(100)
			other := d.RegisterThread()
			obj := NewObject(1)

			owner.ReaderLock()
			p, _ := TryLock(owner, obj)
			*p = 2
			owner.ReaderUnlock() // deferred, still locked

			other.ReaderLock()
			if _, ok := TryLock(other, obj); ok {
				t.Fatal("TryLock succeeded on deferred-locked object")
			}
			other.Abort()

			// The conflict requested a sync; owner's next section boundary
			// must flush.
			owner.ReaderLock()
			owner.isWriter = true // simulate a writer section that triggers commit path
			owner.ReaderUnlock()
			if obj.IsLocked() {
				t.Fatal("deferred log not flushed after sync request")
			}
			other.ReaderLock()
			if v := *Dereference(other, obj); v != 2 {
				t.Fatalf("value after forced flush = %d, want 2", v)
			}
			other.ReaderUnlock()
			_ = name
		})
	}
}

func TestStatsCount(t *testing.T) {
	d := NewDomain(Logical, nil)
	th := d.RegisterThread()
	obj := NewObject(0)
	for i := 0; i < 3; i++ {
		th.ReaderLock()
		p, _ := TryLock(th, obj)
		*p++
		th.ReaderUnlock()
	}
	commits, aborts, syncs := th.Stats()
	if commits != 3 || aborts != 0 || syncs != 3 {
		t.Fatalf("stats = %d/%d/%d, want 3/0/3", commits, aborts, syncs)
	}
}

func TestReadOnlySectionNoCommit(t *testing.T) {
	d := NewDomain(Logical, nil)
	th := d.RegisterThread()
	obj := NewObject(1)
	th.ReaderLock()
	_ = *Dereference(th, obj)
	th.ReaderUnlock()
	commits, _, syncs := th.Stats()
	if commits != 0 || syncs != 0 {
		t.Fatalf("read-only section committed/synchronized: %d/%d", commits, syncs)
	}
}

func TestClockStatsCountComparisons(t *testing.T) {
	// A thread that steals another writer's copy and a writer that waits
	// out a concurrent reader both perform counted clock comparisons; the
	// logical clock must never report an uncertain outcome.
	for name, d := range domains(t) {
		t.Run(name, func(t *testing.T) {
			writer := d.RegisterThread()
			reader := d.RegisterThread()
			obj := NewObject(1)

			writer.ReaderLock()
			if p, ok := TryLock(writer, obj); !ok {
				t.Fatal("TryLock failed with no contention")
			} else {
				*p = 2
			}
			writer.ReaderUnlock() // commit: quiescence scan over reader

			reader.ReaderLock()
			_ = *Dereference(reader, obj) // unlocked: no comparison needed
			reader.ReaderUnlock()

			// A second section overlapping a locked object forces the
			// steal check through the ordering interface.
			writer.ReaderLock()
			if _, ok := TryLock(writer, obj); !ok {
				t.Fatal("relock failed")
			}
			reader.ReaderLock()
			_ = *Dereference(reader, obj)
			rc, ru := reader.ClockStats()
			reader.ReaderUnlock()
			writer.ReaderUnlock()

			if rc == 0 {
				t.Fatal("reader performed no counted clock comparisons")
			}
			if ru > rc {
				t.Fatalf("reader ClockStats() = %d,%d: uncertain exceeds total", rc, ru)
			}
			if name == "logical" && ru != 0 {
				t.Fatalf("logical clock reported %d uncertain comparisons", ru)
			}
		})
	}
}
