// Package rlu implements Read-Log-Update (Matveev et al., SOSP'15), the
// lightweight synchronization mechanism the paper re-designs in §4.1, in
// both its original form — serialized by a global logical clock bumped
// with an atomic fetch-and-add — and the Ordo form, where every clock
// interaction becomes a local invariant-clock read.
//
// RLU gives readers unsynchronized traversals over shared objects while
// writers lock individual objects, copy them into a per-thread write log,
// mutate the copy, and publish the whole log atomically by advancing the
// clock. Readers that began before the writer's commit keep reading the
// original objects; readers that begin afterwards "steal" the writer's
// copies until the writer writes them back.
//
// The Ordo redesign (§4.1) changes exactly three points, mirrored by the
// clock interface here:
//
//   - reader lock records get_time() instead of loading the global clock;
//   - commit obtains new_time(localClock + boundary) instead of
//     fetch_and_add (the extra boundary guards the single-version snapshot
//     against negative skew between the committer and a stealing reader);
//   - the steal check and the quiescence loop compare clocks with
//     cmp_time(), treating "uncertain" conservatively (no steal / keep
//     waiting).
//
// Unlike the C implementation, copies live on the garbage-collected heap,
// so the original's two-generation write-log recycling is unnecessary:
// stealing readers keep copies alive for exactly as long as they need them.
package rlu

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"ordo/internal/core"
)

// inactive marks a thread's writeClock when it has no commit in flight;
// no reader can consider stealing from it.
const inactive = math.MaxUint64

// ordering abstracts the two clock designs. The comparison methods also
// report whether the outcome was uncertain — always false for the exact
// logical clock — so call sites can count how often the Ordo design's
// conservatism actually fires (clock-health observability).
type ordering interface {
	// readClock returns the value a beginning operation records.
	readClock() uint64
	// commitClock returns the writer's publication timestamp, advancing
	// the global clock in the logical design.
	commitClock(localClock uint64) uint64
	// certainlyAfter reports a > b with certainty (quiescence check).
	certainlyAfter(a, b uint64) (after, uncertain bool)
	// certainlyBefore reports a < b with certainty (steal check: a reader
	// reads the original object only when its clock is certainly before
	// the owner's commit; otherwise it steals the committed copy).
	certainlyBefore(a, b uint64) (before, uncertain bool)
}

// logicalClock is the original RLU ordering: one contended cache line.
type logicalClock struct {
	_     [8]uint64 // pad to keep the hot word alone on its line
	clock atomic.Uint64
	_     [8]uint64
}

func (l *logicalClock) readClock() uint64 { return l.clock.Load() }
func (l *logicalClock) commitClock(uint64) uint64 {
	// write_clock = global + 1, then advance: Add returns the new value,
	// which equals the pre-increment global + 1 — exactly the paper's pair
	// of lines, but in one atomic step.
	return l.clock.Add(1)
}
func (l *logicalClock) certainlyAfter(a, b uint64) (bool, bool) { return a >= b, false }

// certainlyBefore(a, b) == a < b makes the steal check "steal unless
// certainly before" identical to the original RLU rule
// "steal iff write_clock <= local_clock".
func (l *logicalClock) certainlyBefore(a, b uint64) (bool, bool) { return a < b, false }

// ordoClock is the Ordo ordering from §4.1.
type ordoClock struct{ o *core.Ordo }

func (c ordoClock) readClock() uint64 { return uint64(c.o.GetTime()) }
func (c ordoClock) commitClock(localClock uint64) uint64 {
	// One extra boundary separates the new snapshot from the old even if
	// the stealing reader's clock lags the committer's by a full skew.
	return uint64(c.o.NewTime(core.Time(localClock) + c.o.Boundary()))
}
func (c ordoClock) certainlyAfter(a, b uint64) (bool, bool) {
	if b == inactive {
		// Nothing can be certainly after an inactive marker; guards the
		// CmpTime arithmetic against wraparound at MaxUint64. Not a clock
		// comparison, so not an uncertain outcome either.
		return false, false
	}
	r := c.o.CmpTime(core.Time(a), core.Time(b))
	return r == core.After, r == core.Uncertain
}

// certainlyBefore treats the uncertain window conservatively on the steal
// side: a reader whose clock falls within one boundary of the commit
// timestamp steals the copy. Such a reader provably began after the
// commit's real time (boundary ≥ max physical skew), so linearizing it
// after the commit is legal, and stealing keeps it away from the original
// object that the writer is about to write back — the hazard the paper's
// extra commit-time ORDO_BOUNDARY addresses (§4.1).
func (c ordoClock) certainlyBefore(a, b uint64) (bool, bool) {
	if b == inactive {
		return true, false // an inactive owner's copy is never stolen
	}
	r := c.o.CmpTime(core.Time(a), core.Time(b))
	return r == core.Before, r == core.Uncertain
}

// Mode selects the clock design for a Domain.
type Mode int

const (
	// Logical is the original RLU global logical clock.
	Logical Mode = iota
	// Ordo replaces the logical clock with the Ordo primitive.
	Ordo
)

// Domain is an RLU instance: a set of participating threads sharing one
// ordering. All objects manipulated under one Domain are one consistency
// domain.
type Domain struct {
	ord  ordering
	mode Mode

	mu      sync.Mutex
	threads []*Thread
	// published snapshot of the registry for lock-free iteration during
	// synchronize.
	registry atomic.Pointer[[]*Thread]
}

// NewDomain creates an RLU domain. For Ordo mode, pass the calibrated
// primitive; for Logical mode, o may be nil.
func NewDomain(mode Mode, o *core.Ordo) *Domain {
	d := &Domain{mode: mode}
	switch mode {
	case Logical:
		d.ord = &logicalClock{}
	case Ordo:
		if o == nil {
			panic("rlu: Ordo mode requires a calibrated *core.Ordo")
		}
		d.ord = ordoClock{o}
	default:
		panic("rlu: unknown mode")
	}
	empty := []*Thread{}
	d.registry.Store(&empty)
	return d
}

// Mode returns the domain's clock design.
func (d *Domain) Mode() Mode { return d.mode }

// Thread is a participant's per-thread context. A Thread must be used by
// one goroutine at a time; concurrent operations require separate Threads.
type Thread struct {
	d *Domain

	runCount    atomic.Uint64 // odd = inside a critical section
	localClock  atomic.Uint64
	writeClock  atomic.Uint64
	syncRequest atomic.Bool // another writer hit one of our deferred locks

	isWriter bool
	log      []logged
	syncWait []uint64 // scratch for synchronize

	// deferral (§6.4, Figure 12): when maxDefer > 0 the thread batches
	// commits and synchronizes only on conflict or when the log fills.
	maxDefer int

	// Stats.
	commits uint64
	aborts  uint64
	syncs   uint64

	// Clock-health stats: comparisons this thread performed (steal checks
	// in Dereference, quiescence checks in synchronize) and how many came
	// out uncertain — always zero under the exact logical clock.
	clockCmps      uint64
	clockUncertain uint64
}

// countCmp tallies one clock comparison outcome for ClockStats.
func (t *Thread) countCmp(uncertain bool) {
	t.clockCmps++
	if uncertain {
		t.clockUncertain++
	}
}

// logged is one write-log entry; the concrete type carries the object.
type logged interface {
	writeback()
	unlock()
}

// RegisterThread adds a new participant to the domain.
func (d *Domain) RegisterThread() *Thread {
	t := &Thread{d: d}
	t.writeClock.Store(inactive)
	d.mu.Lock()
	d.threads = append(d.threads, t)
	snap := make([]*Thread, len(d.threads))
	copy(snap, d.threads)
	d.registry.Store(&snap)
	d.mu.Unlock()
	return t
}

// SetMaxDefer enables deferred commits: up to n writer sections are
// batched before a synchronize, unless a writer-writer conflict forces an
// earlier flush. n == 0 restores immediate commits. Must be called outside
// a critical section.
func (t *Thread) SetMaxDefer(n int) { t.maxDefer = n }

// ReaderLock begins a critical section (readers and writers alike).
func (t *Thread) ReaderLock() {
	t.isWriter = false
	t.runCount.Add(1) // now odd: active
	t.localClock.Store(t.d.ord.readClock())
}

// ReaderUnlock ends the critical section; if the thread wrote, the write
// log is committed (or deferred).
//
// As in the original RLU, the section is marked inactive BEFORE the
// commit runs: a committing writer must not appear active to other
// writers' quiescence loops, or two concurrent committers would wait for
// each other forever.
func (t *Thread) ReaderUnlock() {
	t.runCount.Add(1) // now even: inactive
	if t.isWriter {
		if t.maxDefer > 0 && len(t.log) < t.maxDefer && !t.syncRequest.Load() {
			// Defer: the objects stay locked by us; the log commits at a
			// later section boundary or on a conflicting writer's request.
			return
		}
		t.commitWriteLog()
	}
}

// Abort abandons the current section, unlocking anything locked.
func (t *Thread) Abort() {
	if t.isWriter {
		for _, e := range t.log {
			e.unlock()
		}
		t.log = t.log[:0]
		t.isWriter = false
		t.aborts++
	}
	t.runCount.Add(1) // inactive
}

// Flush forces any deferred write log out (commit + synchronize). Must be
// called outside a critical section.
func (t *Thread) Flush() {
	if len(t.log) == 0 {
		return
	}
	t.localClock.Store(t.d.ord.readClock())
	t.commitWriteLog()
}

// requestSync asks a deferring thread to flush its write log at the next
// section boundary; the requester aborts and retries meanwhile.
func (t *Thread) requestSync() { t.syncRequest.Store(true) }

func (t *Thread) commitWriteLog() {
	t.syncRequest.Store(false)
	if len(t.log) == 0 {
		t.isWriter = false
		return
	}
	t.writeClock.Store(t.d.ord.commitClock(t.localClock.Load()))
	t.synchronize()
	for _, e := range t.log {
		e.writeback()
	}
	for _, e := range t.log {
		e.unlock()
	}
	t.writeClock.Store(inactive)
	t.log = t.log[:0]
	t.isWriter = false
	t.commits++
}

// synchronize waits for every reader that may still observe the old
// snapshot (started before our writeClock) to leave its section.
func (t *Thread) synchronize() {
	t.syncs++
	threads := *t.d.registry.Load()
	if cap(t.syncWait) < len(threads) {
		t.syncWait = make([]uint64, len(threads))
	}
	wait := t.syncWait[:len(threads)]
	for i, other := range threads {
		if other == t {
			wait[i] = 0 // even: skip self
			continue
		}
		wait[i] = other.runCount.Load()
	}
	wc := t.writeClock.Load()
	for i, other := range threads {
		if other == t {
			continue
		}
		for spins := 0; ; spins++ {
			if wait[i]&1 == 0 {
				break // was not in a section
			}
			if other.runCount.Load() != wait[i] {
				break // has since progressed
			}
			after, unc := t.d.ord.certainlyAfter(other.localClock.Load(), wc)
			t.countCmp(unc)
			if after {
				break // started after my commit: reads the new snapshot
			}
			if spins%128 == 127 {
				runtime.Gosched()
			}
		}
	}
}

// Stats reports per-thread counters.
func (t *Thread) Stats() (commits, aborts, syncs uint64) {
	return t.commits, t.aborts, t.syncs
}

// ClockStats reports this thread's clock-comparison counters: how many
// steal/quiescence comparisons it performed and how many fell inside the
// uncertainty window (forcing a conservative steal or a longer quiescence
// wait). The ratio is the thread's Uncertain rate; always 0/cmps under the
// logical clock.
func (t *Thread) ClockStats() (cmps, uncertain uint64) {
	return t.clockCmps, t.clockUncertain
}
