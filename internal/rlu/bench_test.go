package rlu

import (
	"testing"

	"ordo/internal/core"
)

func benchDomain(b *testing.B, mode Mode) *Domain {
	b.Helper()
	if mode == Logical {
		return NewDomain(Logical, nil)
	}
	o, _, err := core.CalibrateHardware(core.CalibrationOptions{Runs: 5})
	if err != nil {
		b.Fatal(err)
	}
	return NewDomain(Ordo, o)
}

func benchReads(b *testing.B, mode Mode) {
	d := benchDomain(b, mode)
	th := d.RegisterThread()
	obj := NewObject(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.ReaderLock()
		_ = *Dereference(th, obj)
		th.ReaderUnlock()
	}
}

func benchWrites(b *testing.B, mode Mode) {
	d := benchDomain(b, mode)
	th := d.RegisterThread()
	obj := NewObject(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.ReaderLock()
		p, ok := TryLock(th, obj)
		if !ok {
			b.Fatal("uncontended TryLock failed")
		}
		*p++
		th.ReaderUnlock()
	}
}

func BenchmarkReadSectionLogical(b *testing.B) { benchReads(b, Logical) }
func BenchmarkReadSectionOrdo(b *testing.B)    { benchReads(b, Ordo) }
func BenchmarkWriteCommitLogical(b *testing.B) { benchWrites(b, Logical) }
func BenchmarkWriteCommitOrdo(b *testing.B)    { benchWrites(b, Ordo) }

func BenchmarkReadSectionParallelOrdo(b *testing.B) {
	d := benchDomain(b, Ordo)
	obj := NewObject(42)
	b.RunParallel(func(pb *testing.PB) {
		th := d.RegisterThread()
		for pb.Next() {
			th.ReaderLock()
			_ = *Dereference(th, obj)
			th.ReaderUnlock()
		}
	})
}
