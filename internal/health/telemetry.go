package health

import (
	"fmt"

	"ordo/internal/telemetry"
)

// Telemetry registers the monitor's clock-health series on reg and routes
// recalibration passes and clock anomalies to tracer (which may be nil).
// Every value is pulled at scrape time from the same state Snapshot reads,
// so the series and the JSON snapshot can never disagree. Call it once per
// registry; a second call panics on duplicate series, matching the
// registry's registration contract.
func (m *Monitor) Telemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	m.mu.Lock()
	m.tracer = tracer
	m.mu.Unlock()

	reg.GaugeFunc("ordo_boundary_ns", "Current ORDO_BOUNDARY in nanoseconds.",
		func() float64 {
			hz := m.tickHz()
			if hz == 0 {
				return 0
			}
			return float64(m.o.Boundary()) / float64(hz) * 1e9
		})
	reg.GaugeFunc("ordo_boundary_ticks", "Current ORDO_BOUNDARY in invariant-counter ticks.",
		func() float64 { return float64(m.o.Boundary()) })
	reg.GaugeFunc("ordo_drift_ppm", "Invariant counter frequency deviation vs the OS clock, parts per million.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return m.driftPPM
		})
	reg.GaugeFunc("ordo_uncertain_rate", "Fraction of timestamp comparisons falling inside the uncertainty window.",
		func() float64 {
			before, unc, after := m.stats.CmpCounts()
			if total := before + unc + after; total > 0 {
				return float64(unc) / float64(total)
			}
			return 0
		})
	reg.CounterFunc("ordo_calibration_passes_total", "Boundary recalibration passes run.",
		func() uint64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return m.passes
		})
	reg.CounterFunc("ordo_boundary_widenings_total", "Passes that published a new boundary.",
		func() uint64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return m.widenings
		})
	reg.CounterFunc("ordo_clock_anomalies_total", "Drift cross-checks that exceeded the threshold.",
		func() uint64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return m.anomalies
		})
	reg.CounterFunc("ordo_cmp_uncertain_total", "Timestamp comparisons answered uncertain.",
		func() uint64 {
			_, unc, _ := m.stats.CmpCounts()
			return unc
		})
}

// traceRecalibration emits one pass into the tracer. Called with m.mu held.
func (m *Monitor) traceRecalibration(p Pass) {
	if m.tracer == nil {
		return
	}
	detail := fmt.Sprintf("boundary=%d ticks applied=%v pairs=%d", p.Boundary, p.Applied, p.Pairs)
	if p.Err != "" {
		detail = "err: " + p.Err
	}
	m.tracer.Record("clock_recalibration", detail, p.Duration)
}
