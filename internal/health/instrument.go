package health

import (
	"runtime"

	"ordo/internal/core"
)

// Instrumented wraps an Ordo primitive with the same three methods,
// recording every CmpTime outcome and NewTime spin into a Stats. It is the
// opt-in path for callers that want observability: the underlying *core.Ordo
// stays unchanged (and can be shared with uninstrumented callers), so the
// uninstrumented hot path pays nothing.
//
// Instrumented is safe for concurrent use.
type Instrumented struct {
	o *core.Ordo
	s *Stats
}

// Instrument wraps o so that its comparisons and waits are counted in s.
// A nil s allocates a fresh Stats.
func Instrument(o *core.Ordo, s *Stats) *Instrumented {
	if s == nil {
		s = NewStats()
	}
	return &Instrumented{o: o, s: s}
}

// Ordo returns the wrapped primitive.
func (i *Instrumented) Ordo() *core.Ordo { return i.o }

// Stats returns the counter sink outcomes are recorded into.
func (i *Instrumented) Stats() *Stats { return i.s }

// Boundary returns the current uncertainty window in ticks.
func (i *Instrumented) Boundary() core.Time { return i.o.Boundary() }

// GetTime returns the current timestamp of the local invariant clock.
func (i *Instrumented) GetTime() core.Time { return i.o.GetTime() }

// CmpTime orders two timestamps like core.Ordo.CmpTime, counting the
// outcome.
func (i *Instrumented) CmpTime(t1, t2 core.Time) int {
	c := i.o.CmpTime(t1, t2)
	i.s.RecordCmp(c)
	return c
}

// NewTime returns a timestamp certainly greater than t like
// core.Ordo.NewTime, recording how many clock reads the wait took and how
// many ticks elapsed from entry to the returned timestamp. It re-reads the
// boundary every iteration, so a Monitor widening it mid-spin lengthens the
// wait correctly.
func (i *Instrumented) NewTime(t core.Time) core.Time {
	start := i.o.GetTime()
	for spins := uint64(1); ; spins++ {
		now := i.o.GetTime()
		if now > t+i.o.Boundary() {
			i.s.RecordNewTime(spins, uint64(now-start))
			return now
		}
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
}

// Probe exercises the primitive once through the instrumented hot paths:
// two back-to-back clock reads compared (at one boundary apart they are
// the canonical Uncertain case), and one NewTime wait. CLIs use it to give
// the counters a live signal when the embedding program has no Ordo
// traffic of its own to observe.
func (i *Instrumented) Probe() {
	t0 := i.GetTime()
	t1 := i.GetTime()
	i.CmpTime(t1, t0)
	i.NewTime(t1)
}
