package health

import (
	"expvar"
	"fmt"
	"sync"
	"time"

	"ordo/internal/core"
	"ordo/internal/telemetry"
	"ordo/internal/tsc"
)

// Options configures a Monitor. The zero value is usable on real hardware:
// it recalibrates through a HardwareSampler every DefaultInterval and
// cross-checks the hardware counter against time.Now.
type Options struct {
	// Sampler measures pairwise clock offsets on recalibration passes.
	// Nil means a HardwareSampler over all CPUs with AllowUnpinned set.
	Sampler core.PairSampler

	// Calibration tunes each recalibration pass. Background passes should
	// be much cheaper than the startup calibration — cap the work with
	// Runs/Stride/MaxPairs; zero values get core's defaults.
	Calibration core.CalibrationOptions

	// Interval is the period between background passes when the Monitor is
	// Started. Zero means DefaultInterval.
	Interval time.Duration

	// Stats is the counter sink shared with Instrumented wrappers so the
	// snapshot can report Uncertain rates alongside calibration state. Nil
	// allocates a fresh one.
	Stats *Stats

	// HistorySize bounds the retained calibration-pass history (newest
	// kept). Zero means 32.
	HistorySize int

	// AllowShrink lets a pass publish a boundary smaller than the current
	// one. Shrinking is only sound when no in-flight comparison depends on
	// the wider window, which the Monitor cannot know, so the default is
	// to only widen (see Ordo.SetBoundary).
	AllowShrink bool

	// DriftThresholdPPM is the frequency cross-check tolerance in parts
	// per million before a pass counts a clock anomaly. Zero means 500.
	DriftThresholdPPM float64

	// TickHz is the expected counter frequency for the drift cross-check.
	// Zero means tsc.Frequency().
	TickHz uint64

	// ReadClock and WallClock supply the tick/wall clock pair for the
	// drift cross-check; tests substitute fakes. Nil means the hardware
	// counter and time.Now.
	ReadClock func() core.Time
	WallClock func() time.Time
}

// DefaultInterval is the background recalibration period when Options does
// not set one.
const DefaultInterval = 10 * time.Second

// Pass records one recalibration pass for the history ring.
type Pass struct {
	When     time.Time     `json:"when"`
	Boundary uint64        `json:"boundary_ticks"` // this pass's measured global
	Min      uint64        `json:"min_ticks"`
	Pairs    int           `json:"pairs"`
	CPUs     int           `json:"cpus"`
	Duration time.Duration `json:"duration_ns"`
	Applied  bool          `json:"applied"` // published via SetBoundary
	Err      string        `json:"err,omitempty"`
}

// Snapshot is the expvar-compatible view of the whole subsystem: current
// boundary, calibration history, drift estimate, and the hot-path counters.
type Snapshot struct {
	BoundaryTicks uint64  `json:"boundary_ticks"`
	BoundaryNS    float64 `json:"boundary_ns,omitempty"`
	TickHz        uint64  `json:"tick_hz,omitempty"`

	Passes    uint64 `json:"calibration_passes"`
	Widenings uint64 `json:"boundary_widenings"`
	Anomalies uint64 `json:"clock_anomalies"`
	History   []Pass `json:"calibration_history"`

	DriftPPM float64 `json:"drift_ppm"`

	CmpBefore     uint64  `json:"cmp_before"`
	CmpUncertain  uint64  `json:"cmp_uncertain"`
	CmpAfter      uint64  `json:"cmp_after"`
	UncertainRate float64 `json:"uncertain_rate"`

	NewTimeCalls uint64 `json:"newtime_calls"`
	NewTimeSpins uint64 `json:"newtime_spins"`
	NewTimeTicks uint64 `json:"newtime_ticks"`
}

// Monitor keeps one Ordo primitive's boundary honest: each pass re-runs the
// boundary calibration and atomically widens the published boundary when
// the measured skew exceeds it, and compares the invariant counter's rate
// against the OS monotonic clock to detect frequency anomalies. Concurrent
// CmpTime/NewTime callers are never interrupted — they observe the boundary
// through its atomic holder.
//
// Monitor is safe for concurrent use; Start/Stop manage the background
// goroutine, RunOnce drives a pass synchronously (used by CLIs and tests).
type Monitor struct {
	o     *core.Ordo
	opt   Options
	stats *Stats

	mu        sync.Mutex // cold state only: history, drift baseline
	history   []Pass
	passes    uint64
	widenings uint64
	anomalies uint64
	driftPPM  float64
	haveBase  bool
	baseTick  core.Time
	baseWall  time.Time
	// tracer receives recalibration and anomaly events when Telemetry
	// wired one; nil otherwise (telemetry.go).
	tracer *telemetry.Tracer

	stop chan struct{}
	done chan struct{}
}

// NewMonitor builds a Monitor for o. The monitor does nothing until Start
// or RunOnce is called.
func NewMonitor(o *core.Ordo, opt Options) *Monitor {
	if o == nil {
		panic("health: nil Ordo")
	}
	if opt.Sampler == nil {
		opt.Sampler = &core.HardwareSampler{AllowUnpinned: true}
	}
	if opt.Interval <= 0 {
		opt.Interval = DefaultInterval
	}
	if opt.HistorySize <= 0 {
		opt.HistorySize = 32
	}
	if opt.DriftThresholdPPM <= 0 {
		opt.DriftThresholdPPM = 500
	}
	if opt.ReadClock == nil {
		opt.ReadClock = core.Hardware.Now
	}
	if opt.WallClock == nil {
		opt.WallClock = time.Now
	}
	s := opt.Stats
	if s == nil {
		s = NewStats()
	}
	return &Monitor{o: o, opt: opt, stats: s}
}

// Stats returns the counter sink; share it with Instrument so hot-path
// outcomes appear in the Monitor's snapshot.
func (m *Monitor) Stats() *Stats { return m.stats }

// Ordo returns the monitored primitive.
func (m *Monitor) Ordo() *core.Ordo { return m.o }

// RunOnce performs one health pass synchronously: the drift cross-check,
// then a full boundary recalibration, publishing a widened boundary if the
// measured skew drifted past the current one. The returned error reflects
// calibration failure; the pass is still recorded in the history.
func (m *Monitor) RunOnce() error {
	m.driftCheck()

	start := m.opt.WallClock()
	b, err := core.ComputeBoundary(m.opt.Sampler, m.opt.Calibration)
	pass := Pass{
		When:     start,
		Duration: m.opt.WallClock().Sub(start),
	}
	if err != nil {
		pass.Err = err.Error()
		m.record(pass)
		return fmt.Errorf("health: recalibration: %w", err)
	}
	pass.Boundary = uint64(b.Global)
	pass.Min = uint64(b.Min)
	pass.Pairs = b.Pairs
	pass.CPUs = b.CPUs

	cur := m.o.Boundary()
	if b.Global > cur || (m.opt.AllowShrink && b.Global < cur) {
		m.o.SetBoundary(b.Global)
		pass.Applied = true
	}
	m.record(pass)
	return nil
}

// driftCheck compares the invariant counter's advance against the OS
// monotonic clock since the previous pass. A deviation beyond the
// threshold means the counter is not running at its calibrated frequency —
// a VM migration, an unstable TSC, or a miscalibrated tick rate — and is
// counted as a clock anomaly. The boundary itself is re-established by the
// calibration pass that follows; the drift figure is observability.
func (m *Monitor) driftCheck() {
	tick := m.opt.ReadClock()
	wall := m.opt.WallClock()

	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.haveBase {
		m.haveBase = true
		m.baseTick, m.baseWall = tick, wall
		return
	}
	dt := wall.Sub(m.baseWall).Seconds()
	dticks := float64(tick - m.baseTick)
	m.baseTick, m.baseWall = tick, wall
	if dt <= 0 || dticks <= 0 {
		return
	}
	hz := m.tickHz()
	if hz == 0 {
		return
	}
	observed := dticks / dt
	m.driftPPM = (observed - float64(hz)) / float64(hz) * 1e6
	if m.driftPPM > m.opt.DriftThresholdPPM || m.driftPPM < -m.opt.DriftThresholdPPM {
		m.anomalies++
		m.tracer.Record("clock_anomaly", fmt.Sprintf("drift %.1f ppm", m.driftPPM), 0)
	}
}

func (m *Monitor) tickHz() uint64 {
	if m.opt.TickHz != 0 {
		return m.opt.TickHz
	}
	return tsc.Frequency()
}

func (m *Monitor) record(p Pass) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.passes++
	if p.Applied {
		m.widenings++
	}
	m.history = append(m.history, p)
	if over := len(m.history) - m.opt.HistorySize; over > 0 {
		m.history = append(m.history[:0], m.history[over:]...)
	}
	m.traceRecalibration(p)
}

// Start launches the background recalibration loop. It panics if the
// Monitor is already running.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		panic("health: Monitor already started")
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	m.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(m.opt.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				// Calibration errors are recorded in the history; the
				// loop keeps going — a transient pinning failure must not
				// kill long-running health monitoring.
				_ = m.RunOnce()
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Stopping a
// never-started or already-stopped Monitor is a no-op.
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Snapshot returns a consistent point-in-time view of the subsystem.
func (m *Monitor) Snapshot() Snapshot {
	before, uncertain, after := m.stats.CmpCounts()
	calls, spins, ticks := m.stats.NewTimeCounts()

	m.mu.Lock()
	snap := Snapshot{
		BoundaryTicks: uint64(m.o.Boundary()),
		Passes:        m.passes,
		Widenings:     m.widenings,
		Anomalies:     m.anomalies,
		DriftPPM:      m.driftPPM,
		History:       append([]Pass(nil), m.history...),
		CmpBefore:     before,
		CmpUncertain:  uncertain,
		CmpAfter:      after,
		NewTimeCalls:  calls,
		NewTimeSpins:  spins,
		NewTimeTicks:  ticks,
	}
	m.mu.Unlock()

	snap.TickHz = m.tickHz()
	if snap.TickHz != 0 {
		snap.BoundaryNS = float64(snap.BoundaryTicks) / float64(snap.TickHz) * 1e9
	}
	if total := before + uncertain + after; total > 0 {
		snap.UncertainRate = float64(uncertain) / float64(total)
	}
	return snap
}

// Expvar adapts the Monitor to the expvar interface; publish it with
// expvar.Publish("ordo.health", m.Expvar()) to expose the snapshot on
// /debug/vars.
func (m *Monitor) Expvar() expvar.Func {
	return expvar.Func(func() any { return m.Snapshot() })
}
