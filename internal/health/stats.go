// Package health is the clock-health observability and continuous
// recalibration subsystem for the Ordo primitive.
//
// Ordo's correctness rests on one inequality: the calibrated ORDO_BOUNDARY
// must stay an upper bound on the physical clock skew between any two
// cores. A single calibration pass at startup establishes it, but nothing
// re-checks it afterwards, and nothing tells an operator whether CmpTime
// comparisons are coming out Uncertain at 0.1% or at 50%. This package
// closes both gaps:
//
//   - Stats is a lock-free sharded counter sink for the hot paths: CmpTime
//     outcome counts (Before / Uncertain / After), NewTime call, spin and
//     tick totals. Sharding by goroutine-stack address keeps concurrent
//     writers off each other's cache lines, which matters because the
//     whole point of Ordo is to avoid contended cache lines.
//   - Instrumented wraps an *core.Ordo with the same three methods,
//     recording every outcome into a Stats.
//   - Monitor periodically re-runs the boundary calibration in the
//     background, atomically widening the published boundary when the
//     measured skew has drifted past it, and cross-checks the invariant
//     counter against the OS monotonic clock to catch frequency anomalies.
//     Snapshot exposes everything as one expvar-compatible JSON value.
package health

import (
	"sync/atomic"
	"unsafe"

	"ordo/internal/core"
)

// shardCount is the number of counter shards; a power of two so the shard
// pick is a mask, sized well past the core counts where sharing would hurt.
const shardCount = 64

// shard is one cache line of counters. 6×8 bytes of counters + 16 bytes of
// padding keeps each shard the sole occupant of its 64-byte line.
type shard struct {
	cmpBefore    atomic.Uint64
	cmpUncertain atomic.Uint64
	cmpAfter     atomic.Uint64
	newTimeCalls atomic.Uint64
	newTimeSpins atomic.Uint64
	newTimeTicks atomic.Uint64
	_            [2]uint64
}

// Stats accumulates hot-path counters without locks: writers atomically add
// to a shard chosen from their goroutine's stack address, readers sum all
// shards. Adds never contend with reads and rarely with each other, and
// totals are exact — a collision only means two goroutines share a line,
// never that a count is lost.
//
// The zero value is ready to use; Stats must not be copied after first use.
type Stats struct {
	shards [shardCount]shard
}

// NewStats returns an empty counter sink.
func NewStats() *Stats { return &Stats{} }

// shard picks this goroutine's counter shard. Goroutine stacks are distinct
// heap allocations, so the address of any stack variable identifies the
// goroutine cheaply; folding the bits above the typical stack-slot range
// spreads goroutines across shards while keeping one goroutine on one shard
// (good locality) between stack moves.
func (s *Stats) shard() *shard {
	var probe byte
	h := uintptr(unsafe.Pointer(&probe)) >> 10 // drop in-stack offset bits
	h ^= h >> 7
	h *= 0x9E3779B9 // odd Fibonacci-hash multiplier, fits 32-bit uintptr
	return &s.shards[h&(shardCount-1)]
}

// RecordCmp counts one CmpTime outcome (core.Before / Uncertain / After).
func (s *Stats) RecordCmp(outcome int) {
	sh := s.shard()
	switch outcome {
	case core.Before:
		sh.cmpBefore.Add(1)
	case core.After:
		sh.cmpAfter.Add(1)
	default:
		sh.cmpUncertain.Add(1)
	}
}

// RecordNewTime counts one NewTime call that spun `spins` times and took
// `ticks` clock ticks from entry to the returned timestamp.
func (s *Stats) RecordNewTime(spins, ticks uint64) {
	sh := s.shard()
	sh.newTimeCalls.Add(1)
	sh.newTimeSpins.Add(spins)
	sh.newTimeTicks.Add(ticks)
}

// CmpCounts returns the totals of each CmpTime outcome.
func (s *Stats) CmpCounts() (before, uncertain, after uint64) {
	for i := range s.shards {
		before += s.shards[i].cmpBefore.Load()
		uncertain += s.shards[i].cmpUncertain.Load()
		after += s.shards[i].cmpAfter.Load()
	}
	return before, uncertain, after
}

// NewTimeCounts returns NewTime call, spin-iteration and tick totals.
func (s *Stats) NewTimeCounts() (calls, spins, ticks uint64) {
	for i := range s.shards {
		calls += s.shards[i].newTimeCalls.Load()
		spins += s.shards[i].newTimeSpins.Load()
		ticks += s.shards[i].newTimeTicks.Load()
	}
	return calls, spins, ticks
}

// UncertainRate returns the fraction of recorded comparisons that came out
// Uncertain, or 0 when nothing has been recorded.
func (s *Stats) UncertainRate() float64 {
	b, u, a := s.CmpCounts()
	total := b + u + a
	if total == 0 {
		return 0
	}
	return float64(u) / float64(total)
}
