package health

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ordo/internal/core"
)

// fakeClock is an invariant clock advancing by a fixed step per read, so
// NewTime always terminates quickly regardless of the boundary.
type fakeClock struct {
	now  atomic.Uint64
	step uint64
}

func (c *fakeClock) Now() core.Time { return core.Time(c.now.Add(c.step)) }

// driftingSampler reports offsets that grow with every calibration pass,
// modelling clocks whose skew is drifting apart after the initial
// calibration (the scenario continuous recalibration exists for).
type driftingSampler struct {
	passes atomic.Uint64 // bumped by the test between passes
	base   int64
	growth int64
	calls  atomic.Uint64
}

func (s *driftingSampler) NumCPUs() int { return 4 }

func (s *driftingSampler) MeasureOffset(w, r, runs int) (int64, error) {
	s.calls.Add(1)
	return s.base + s.growth*int64(s.passes.Load()), nil
}

func TestStatsExactUnderConcurrency(t *testing.T) {
	s := NewStats()
	const workers = 16
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.RecordCmp(core.Before)
				s.RecordCmp(core.Uncertain)
				s.RecordCmp(core.After)
				s.RecordNewTime(3, 10)
			}
		}()
	}
	wg.Wait()
	b, u, a := s.CmpCounts()
	want := uint64(workers * perWorker)
	if b != want || u != want || a != want {
		t.Fatalf("CmpCounts() = %d,%d,%d, want %d each", b, u, a, want)
	}
	calls, spins, ticks := s.NewTimeCounts()
	if calls != want || spins != 3*want || ticks != 10*want {
		t.Fatalf("NewTimeCounts() = %d,%d,%d, want %d,%d,%d",
			calls, spins, ticks, want, 3*want, 10*want)
	}
	if r := s.UncertainRate(); r < 0.33 || r > 0.34 {
		t.Fatalf("UncertainRate() = %v, want ~1/3", r)
	}
}

func TestInstrumentedCountsOutcomes(t *testing.T) {
	o := core.New(&fakeClock{step: 10}, 100)
	i := Instrument(o, nil)
	if got := i.CmpTime(1000, 10); got != core.After {
		t.Fatalf("CmpTime = %d, want After", got)
	}
	if got := i.CmpTime(10, 1000); got != core.Before {
		t.Fatalf("CmpTime = %d, want Before", got)
	}
	if got := i.CmpTime(50, 60); got != core.Uncertain {
		t.Fatalf("CmpTime = %d, want Uncertain", got)
	}
	b, u, a := i.Stats().CmpCounts()
	if b != 1 || u != 1 || a != 1 {
		t.Fatalf("counts = %d,%d,%d, want 1,1,1", b, u, a)
	}

	t0 := i.GetTime()
	t1 := i.NewTime(t0)
	if o.CmpTime(t1, t0) != core.After {
		t.Fatalf("NewTime(%d) = %d not certainly after", t0, t1)
	}
	calls, spins, ticks := i.Stats().NewTimeCounts()
	if calls != 1 || spins == 0 || ticks == 0 {
		t.Fatalf("NewTime counts = %d,%d,%d, want 1,>0,>0", calls, spins, ticks)
	}
}

// TestMonitorWidensUnderDriftWhileHot is the tentpole acceptance test: a
// drifting sampler makes each recalibration measure a larger skew, and the
// published boundary must widen while concurrent CmpTime/NewTime callers
// hammer the primitive uninterrupted (run under -race).
func TestMonitorWidensUnderDriftWhileHot(t *testing.T) {
	clk := &fakeClock{step: 50}
	o := core.New(clk, 100)
	sampler := &driftingSampler{base: 100, growth: 40}
	m := NewMonitor(o, Options{
		Sampler:     sampler,
		Calibration: core.CalibrationOptions{Runs: 1},
		TickHz:      1e9,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev core.Time
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := o.GetTime()
				prev = o.NewTime(prev)
				if o.CmpTime(prev, t0) == core.Before {
					t.Error("NewTime went certainly backwards")
					return
				}
			}
		}()
	}

	start := o.Boundary()
	for pass := 0; pass < 5; pass++ {
		if err := m.RunOnce(); err != nil {
			t.Fatal(err)
		}
		sampler.passes.Add(1)
	}
	close(stop)
	wg.Wait()

	if got := o.Boundary(); got <= start {
		t.Fatalf("boundary did not widen: %d -> %d", start, got)
	}
	// Last applied pass measured base + growth*4 = 260.
	if got := o.Boundary(); got != 260 {
		t.Fatalf("boundary = %d, want 260", got)
	}
	snap := m.Snapshot()
	if snap.Passes != 5 {
		t.Fatalf("Passes = %d, want 5", snap.Passes)
	}
	if snap.Widenings < 2 {
		t.Fatalf("Widenings = %d, want >= 2", snap.Widenings)
	}
	if len(snap.History) != 5 {
		t.Fatalf("history length = %d, want 5", len(snap.History))
	}
}

func TestMonitorWidenOnlyByDefault(t *testing.T) {
	o := core.New(&fakeClock{step: 10}, 1000)
	sampler := &driftingSampler{base: 100}
	m := NewMonitor(o, Options{
		Sampler:     sampler,
		Calibration: core.CalibrationOptions{Runs: 1},
		TickHz:      1e9,
	})
	if err := m.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if got := o.Boundary(); got != 1000 {
		t.Fatalf("boundary shrank to %d; default must only widen", got)
	}

	shrink := NewMonitor(o, Options{
		Sampler:     sampler,
		Calibration: core.CalibrationOptions{Runs: 1},
		AllowShrink: true,
		TickHz:      1e9,
	})
	if err := shrink.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if got := o.Boundary(); got != 100 {
		t.Fatalf("boundary = %d, want 100 with AllowShrink", got)
	}
}

func TestMonitorDriftDetection(t *testing.T) {
	o := core.New(&fakeClock{step: 10}, 100)
	// Fake tick/wall pair: the counter claims 1 GHz but actually advances
	// at 1.002 GHz against the wall clock — a 2000 ppm anomaly.
	var (
		wall = time.Unix(0, 0)
		tick core.Time
	)
	m := NewMonitor(o, Options{
		Sampler:           &driftingSampler{base: 100},
		Calibration:       core.CalibrationOptions{Runs: 1},
		TickHz:            1_000_000_000,
		DriftThresholdPPM: 500,
		ReadClock:         func() core.Time { return tick },
		WallClock:         func() time.Time { return wall },
	})
	if err := m.RunOnce(); err != nil { // establishes the baseline
		t.Fatal(err)
	}
	wall = wall.Add(time.Second)
	tick += 1_002_000_000
	if err := m.RunOnce(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Anomalies != 1 {
		t.Fatalf("Anomalies = %d, want 1", snap.Anomalies)
	}
	if snap.DriftPPM < 1900 || snap.DriftPPM > 2100 {
		t.Fatalf("DriftPPM = %v, want ~2000", snap.DriftPPM)
	}

	// An in-tolerance pass does not add an anomaly but updates the gauge.
	wall = wall.Add(time.Second)
	tick += 1_000_000_100
	if err := m.RunOnce(); err != nil {
		t.Fatal(err)
	}
	snap = m.Snapshot()
	if snap.Anomalies != 1 {
		t.Fatalf("Anomalies = %d after clean pass, want 1", snap.Anomalies)
	}
}

func TestMonitorStartStop(t *testing.T) {
	o := core.New(&fakeClock{step: 10}, 100)
	sampler := &driftingSampler{base: 100, growth: 10}
	m := NewMonitor(o, Options{
		Sampler:     sampler,
		Calibration: core.CalibrationOptions{Runs: 1},
		Interval:    time.Millisecond,
		TickHz:      1e9,
	})
	m.Start()
	deadline := time.After(2 * time.Second)
	for m.Snapshot().Passes < 3 {
		select {
		case <-deadline:
			t.Fatal("background monitor made no progress")
		case <-time.After(time.Millisecond):
		}
	}
	m.Stop()
	m.Stop() // idempotent
	after := m.Snapshot().Passes
	time.Sleep(5 * time.Millisecond)
	if got := m.Snapshot().Passes; got != after {
		t.Fatalf("passes advanced after Stop: %d -> %d", after, got)
	}
	if calls := sampler.calls.Load(); calls == 0 {
		t.Fatal("sampler never called")
	}
}

func TestMonitorHistoryBounded(t *testing.T) {
	o := core.New(&fakeClock{step: 10}, 0)
	m := NewMonitor(o, Options{
		Sampler:     &driftingSampler{base: 10},
		Calibration: core.CalibrationOptions{Runs: 1},
		HistorySize: 3,
		TickHz:      1e9,
	})
	for i := 0; i < 10; i++ {
		if err := m.RunOnce(); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	if len(snap.History) != 3 {
		t.Fatalf("history length = %d, want 3", len(snap.History))
	}
	if snap.Passes != 10 {
		t.Fatalf("Passes = %d, want 10", snap.Passes)
	}
}

func TestSnapshotMarshalsToJSON(t *testing.T) {
	o := core.New(&fakeClock{step: 10}, 100)
	m := NewMonitor(o, Options{
		Sampler:     &driftingSampler{base: 100},
		Calibration: core.CalibrationOptions{Runs: 1},
		TickHz:      2_000_000_000,
	})
	if err := m.RunOnce(); err != nil {
		t.Fatal(err)
	}
	i := Instrument(o, m.Stats())
	i.Probe()

	raw, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"boundary_ticks", "boundary_ns", "calibration_passes",
		"calibration_history", "drift_ppm", "cmp_uncertain", "uncertain_rate", "newtime_calls"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", key, raw)
		}
	}
	// Expvar adapter produces the same JSON value.
	if got := m.Expvar().String(); got == "" {
		t.Fatal("Expvar().String() empty")
	}
}
