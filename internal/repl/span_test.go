package repl_test

import (
	"net"
	"testing"
	"time"

	"ordo/internal/faultnet"
	"ordo/internal/telemetry/span"
	"ordo/internal/wire"
)

// tracedPump writes n client-stamped traced INSERTs (trace IDs base+1..base+n,
// one per key) through a single connection, retrying BUSY/CONFLICT under the
// same trace ID, and returns the trace IDs that were acked.
func tracedPump(t *testing.T, addr string, keyBase, traceBase uint64, n int) []span.TraceID {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	ids := make([]span.TraceID, 0, n)
	for i := 0; i < n; i++ {
		id := traceBase + uint64(i) + 1
		req := wire.Request{
			Op: wire.OpInsert, Key: keyBase + uint64(i),
			Vals:  []uint64{uint64(i), uint64(i) + 1},
			Trace: id,
		}
		for {
			if err := c.WriteRequest(&req); err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			r, err := c.ReadResponse()
			if err != nil {
				t.Fatal(err)
			}
			if r.Status == wire.StatusBusy || r.Status == wire.StatusConflict {
				continue
			}
			if r.Status != wire.StatusOK {
				t.Fatalf("traced insert key %d: %v", req.Key, r.Status)
			}
			break
		}
		ids = append(ids, span.TraceID(id))
	}
	return ids
}

// TestTracedWriteStitchedAcrossChoppedLink is the cross-node half of the
// tracing acceptance: client-stamped writes flow through a leader whose
// replication link is chopped by faultnet (partial writes, delays, injected
// resets), and the trace must still stitch across nodes — a repl_ship span
// in the leader's ring and a repl_apply span in the follower's ring under
// the same trace ID, with the merged interval order never claiming the
// apply certainly preceded the ship.
//
// Records that cross the link via backfill (after an injected reset) lose
// their trace IDs by design — the WAL's disk format does not persist
// traces — so the test requires that *live-fed* traces stitch, not all of
// them.
func TestTracedWriteStitchedAcrossChoppedLink(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	leaderRing := span.NewRing(span.RingConfig{Node: "leader"})
	followerRing := span.NewRing(span.RingConfig{Node: "follower"})
	faults := faultnet.Config{
		Seed:        7,
		LatencyProb: 0.05, MaxLatency: 2 * time.Millisecond,
		PartialProb: 0.3, ChunkDelay: time.Millisecond,
		ResetProb: 0.002,
	}
	leader := startLeader(t, ldir, faults, "127.0.0.1:0", leaderRing)
	defer leader.stop()
	follower := startFollower(t, fdir, leader.replAddr, followerRing)
	defer follower.stop()

	// Prime the link with one untraced write and wait for it to apply, so
	// the follower is known to be on the live feed (which carries trace IDs)
	// before the traced writes go in — a cold subscriber would take them
	// through backfill, which drops traces by design.
	pump(t, leader.addr, 2_000_000, 1)
	waitFor(t, "follower subscription", func() bool { return follower.state.AppliedRecords() >= 1 })

	const nTraced, nPlain = 60, 40
	const traceBase = 0x7ace_0000_0000_0000
	ids := tracedPump(t, leader.addr, 0, traceBase, nTraced)
	plain := pump(t, leader.addr, 1_000_000, nPlain) // untraced control group

	// Pipelined pumps batch many ops into one WAL record, so record counts
	// are not op counts; the applied *timestamp* covering the last acked
	// durability token is what proves every earlier record landed too.
	var maxTok uint64
	for _, w := range plain {
		if w.token > maxTok {
			maxTok = w.token
		}
	}
	waitFor(t, "follower to apply every acked write", func() bool {
		return follower.state.AppliedTS() >= maxTok
	})

	traced := make(map[span.TraceID]bool, len(ids))
	for _, id := range ids {
		traced[id] = true
	}

	// The follower ring must hold apply spans only for our traced writes —
	// the untraced control group must not leak spans.
	fDump := followerRing.Dump(0, 0)
	for i := range fDump.Spans {
		sp := &fDump.Spans[i]
		if !traced[sp.Trace] {
			t.Fatalf("follower ring holds span for unknown trace: %+v", sp)
		}
		if sp.Stage != span.StageApply {
			t.Fatalf("follower ring holds non-apply stage %v", sp.Stage)
		}
		if sp.Node != "follower" {
			t.Fatalf("follower span stamped node %q", sp.Node)
		}
	}

	// Every trace with both a leader ship span and a follower apply span is
	// stitched; the chopped link may have pushed a few through backfill, but
	// a run where nothing stitched means the feature is broken.
	stitched := 0
	for _, id := range ids {
		var ship, apply *span.Span
		lDump := leaderRing.Dump(id, 0)
		for i := range lDump.Spans {
			if lDump.Spans[i].Stage == span.StageShip {
				ship = &lDump.Spans[i]
			}
		}
		aDump := followerRing.Dump(id, 0)
		for i := range aDump.Spans {
			if aDump.Spans[i].Stage == span.StageApply {
				apply = &aDump.Spans[i]
			}
		}
		if ship == nil || apply == nil {
			continue
		}
		stitched++
		// The ship happened before the apply in real time on one host, so
		// the interval order must never claim the opposite with certainty.
		if span.Compare(apply, ship) == -1 {
			t.Fatalf("trace %s: merge claims apply [%d±%d] certainly before ship [%d±%d]",
				id, apply.TS, apply.Unc, ship.TS, ship.Unc)
		}
		// And the causal merge of the cross-node span set keeps the pair in
		// ship→apply (or concurrent) presentation order.
		merged := span.Merge(append(lDump.Spans, aDump.Spans...))
		shipPos, applyPos := -1, -1
		for i := range merged {
			switch merged[i].Stage {
			case span.StageShip:
				shipPos = i
			case span.StageApply:
				applyPos = i
			}
		}
		if shipPos == -1 || applyPos == -1 {
			t.Fatalf("trace %s: merge lost a span (ship=%d apply=%d)", id, shipPos, applyPos)
		}
		if applyPos < shipPos && !merged[applyPos].Concurrent && !merged[shipPos].Concurrent {
			t.Fatalf("trace %s: merge ordered apply (pos %d) before ship (pos %d) with disjoint intervals",
				id, applyPos, shipPos)
		}
	}
	if stitched == 0 {
		t.Fatalf("no trace stitched across the link (%d traced writes acked)", len(ids))
	}
	t.Logf("stitched %d/%d traces across the chopped link", stitched, len(ids))

	// The chaos must not have been vacuous.
	if st := leader.faultLn.Stats(); st.Partials == 0 && st.Delays == 0 {
		t.Fatalf("faultnet injected nothing: %+v", st)
	}
}
