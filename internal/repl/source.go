// Package repl ships a leader's write-ahead log to followers and maintains
// the timestamp watermark that makes a follower's reads consistent
// (DESIGN.md §13).
//
// The stream is addressed by (incarnation, seq): the WAL device incarnation
// a record was written under and its dense per-incarnation sequence. Both
// views of the log agree on these coordinates — a live wal.Log assigns
// dense LSNs in (TS, H, Seq) merge order, and wal.Backfill reproduces
// exactly that order from the segments on disk — so a follower can resume
// from a position it learned from either. Resends at or before a follower's
// position are harmless (server.Replay is an ordered idempotent upsert);
// gaps are the only hazard, and the Source's subscribe path is built so
// none can occur: a subscriber is registered and the stream tail snapshotted
// under one lock, disk backfill covers everything at or below the snapshot,
// and the live feed covers everything above it.
package repl

import (
	"fmt"
	"net"
	"sync"
	"time"

	"ordo/internal/server"
	"ordo/internal/telemetry/span"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// Defaults for SourceConfig's zero values.
const (
	// DefaultSendBuffer is the flushed-batch backlog a follower may
	// accumulate before the leader sheds it.
	DefaultSendBuffer = 256
	// DefaultWatermarkEvery is the WATERMARK heartbeat cadence.
	DefaultWatermarkEvery = 100 * time.Millisecond
	// batchTargetBytes is the soft WALBATCH payload size; records accumulate
	// until the next one would push a frame past it (a single oversized
	// record still ships alone, up to wire.MaxReplFrame).
	batchTargetBytes = 1 << 20
)

// SourceConfig configures a leader-side Source.
type SourceConfig struct {
	// Dir is the WAL directory, read (never written) to backfill a
	// follower that resumes from before this process's incarnation.
	Dir string
	// Log is the live log; the Source installs itself as its RecordSink.
	Log *wal.Log
	// Incarnation is the WAL device incarnation this process appends under.
	Incarnation uint64
	// State is the shared scoreboard; follower counts and worst-follower
	// lag are published into it. Optional.
	State *server.ReplState
	// Boundary reports the leader's current Ordo uncertainty window in
	// clock ticks, shipped on WATERMARK heartbeats. Optional (0).
	Boundary func() uint64
	// Epoch is the fencing epoch this leader serves under. It is stamped
	// on every outgoing frame and matched against each subscriber's hello:
	// a subscriber announcing a different non-zero epoch is refused with a
	// REJECT frame instead of a stream (DESIGN.md §15). Zero-epoch hellos
	// are accepted for fresh followers and pre-epoch builds.
	Epoch uint64
	// PrevInc and PrevSeq are the stream position this leader's regime
	// started from — for a promoted leader, its replication cursor at
	// takeover. REJECT and STATUS frames carry them so a fenced ex-leader
	// knows exactly where to truncate its unshipped suffix before
	// resubscribing.
	PrevInc, PrevSeq uint64
	// Advertise is this leader's client-facing serving address, carried on
	// STATUS and REJECT frames so peers learn where writes go. Optional.
	Advertise string
	// AckAdvance receives the highest current-incarnation LSN some
	// follower has durably acknowledged — the feed for the server's
	// replication-ack gate (server.Server.NoteReplAck). While no follower
	// is subscribed it is called with the flushed tail itself, waiving the
	// gate: under the crash-stop single-failure model there is no copy to
	// wait for, and blocking every write would turn a follower outage into
	// a total one. Optional.
	AckAdvance func(seq uint64)
	// HoldAckGate, when true, suppresses the no-subscriber waiver of
	// AckAdvance until the FIRST follower subscribes. A leader resuming a
	// regime after its own crash cannot tell "my followers have not
	// re-subscribed yet" from "my followers promoted someone else while I
	// was down" — waiving the gate in that window is how a stale resumed
	// leader acks writes the surviving regime never sees. Once one
	// follower has subscribed the normal waiver rules apply for the rest
	// of the Source's lifetime.
	HoldAckGate bool
	// SendBuffer and WatermarkEvery default per the package constants.
	SendBuffer     int
	WatermarkEvery time.Duration
	// Spans, when set, records a repl_ship span for every traced record
	// handed to a subscriber on the live feed. Backfill records come from
	// disk, where trace IDs are not persisted, so they never ship spans.
	// Optional.
	Spans *span.Ring
	// Logf receives operational messages. Optional.
	Logf func(format string, args ...any)
}

// Source streams the WAL to subscribed followers. Create one with
// NewSource before the server starts flushing, Serve it on a dedicated
// listener, Close it at shutdown.
type Source struct {
	cfg SourceConfig

	mu       sync.Mutex
	tailSeq  uint64 // last LSN delivered by the sink (current incarnation)
	subs     map[*subscriber]struct{}
	closed   bool
	holdGate bool // no-subscriber waiver suppressed until first subscribe

	quit chan struct{}
	wg   sync.WaitGroup

	lnMu sync.Mutex
	ln   net.Listener
}

// subscriber is one follower connection's leader-side state.
type subscriber struct {
	ch       chan []wal.Record
	quit     chan struct{}
	quitOnce sync.Once

	mu     sync.Mutex
	ackInc uint64
	ackSeq uint64
}

// kill tears the subscriber down once; safe from any goroutine.
func (sub *subscriber) kill() { sub.quitOnce.Do(func() { close(sub.quit) }) }

func (sub *subscriber) setAck(inc, seq uint64) {
	sub.mu.Lock()
	sub.ackInc, sub.ackSeq = inc, seq
	sub.mu.Unlock()
}

func (sub *subscriber) ack() (inc, seq uint64) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.ackInc, sub.ackSeq
}

// NewSource builds a Source over a live log and installs it as the log's
// record sink. Install happens here — before any serving traffic flushes —
// so the in-memory tail position and the disk contents can never disagree
// about what the live feed covers.
func NewSource(cfg SourceConfig) (*Source, error) {
	if cfg.Log == nil {
		return nil, fmt.Errorf("repl: Source requires a live wal.Log")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("repl: Source requires the WAL directory")
	}
	if cfg.SendBuffer <= 0 {
		cfg.SendBuffer = DefaultSendBuffer
	}
	if cfg.WatermarkEvery <= 0 {
		cfg.WatermarkEvery = DefaultWatermarkEvery
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Source{
		cfg:      cfg,
		subs:     make(map[*subscriber]struct{}),
		quit:     make(chan struct{}),
		holdGate: cfg.HoldAckGate,
	}
	cfg.Log.SetSink(s)
	return s, nil
}

// DeliverFlushed implements wal.RecordSink. It runs under the log's flush
// lock, so it only advances the tail and hands the batch to each
// subscriber's buffered channel — a follower whose buffer is full is shed
// (its connection dies; it reconnects and resumes by position) rather than
// allowed to stall the flush path. The slice is the flusher's merged batch,
// retainable per the sink contract, and is shared read-only by every
// subscriber.
func (s *Source) DeliverFlushed(recs []wal.Record) {
	if len(recs) == 0 {
		return
	}
	s.mu.Lock()
	s.tailSeq = recs[len(recs)-1].LSN
	waive := len(s.subs) == 0 && !s.holdGate
	tail := s.tailSeq
	for sub := range s.subs {
		select {
		case sub.ch <- recs:
		default:
			s.cfg.Logf("repl: shedding slow follower (%d batches behind)", cap(sub.ch))
			sub.kill()
		}
	}
	s.mu.Unlock()
	if waive && s.cfg.AckAdvance != nil {
		// No subscriber holds (or will ever ack) this flush: waive the
		// replication-ack gate so the leader keeps serving alone.
		s.cfg.AckAdvance(tail)
	}
}

// Tail returns the stream tail: the last (incarnation, seq) flushed.
func (s *Source) Tail() (inc, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Incarnation, s.tailSeq
}

// Serve accepts follower subscriptions on ln until Close. It owns ln.
func (s *Source) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closedNow() {
		s.lnMu.Unlock()
		ln.Close()
		return fmt.Errorf("repl: source closed")
	}
	s.ln = ln
	s.lnMu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
		}()
	}
}

func (s *Source) closedNow() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// Close stops accepting, tears down every subscriber, and waits for their
// goroutines.
func (s *Source) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for sub := range s.subs {
		sub.kill()
	}
	s.mu.Unlock()
	close(s.quit)
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()
	s.wg.Wait()
}

// register adds a subscriber and snapshots the stream tail under the same
// lock — the gap-free splice: every record with seq ≤ gate is on disk
// (the sink runs only after a successful device write), and every record
// with seq > gate will arrive on sub.ch.
func (s *Source) register(sub *subscriber) (gate uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The first subscription ends any resume hold on the ack gate: from
	// here on a real follower acks, and an empty subs set again means "the
	// follower died", which the waiver exists for.
	s.holdGate = false
	if s.closed {
		return 0, false
	}
	s.subs[sub] = struct{}{}
	return s.tailSeq, true
}

func (s *Source) unregister(sub *subscriber) {
	s.mu.Lock()
	delete(s.subs, sub)
	last := len(s.subs) == 0
	tail := s.tailSeq
	s.mu.Unlock()
	if last && s.cfg.AckAdvance != nil {
		// The last follower left: waive the gate for whatever it had not
		// yet acknowledged, or writes in flight would hang until timeout.
		s.cfg.AckAdvance(tail)
	}
}

// publishAck feeds the replication-ack gate: the highest LSN of the
// current incarnation that any subscribed follower has durably
// acknowledged (quorum of one).
func (s *Source) publishAck() {
	if s.cfg.AckAdvance == nil {
		return
	}
	s.mu.Lock()
	var best uint64
	for sub := range s.subs {
		if inc, seq := sub.ack(); inc == s.cfg.Incarnation && seq > best {
			best = seq
		}
	}
	s.mu.Unlock()
	if best > 0 {
		s.cfg.AckAdvance(best)
	}
}

// Status describes this leader to a peer probe or a fresh subscriber: the
// stream tail, the regime start position and the serving address. The
// epoch is stamped at write time like every other frame.
func (s *Source) Status() *wire.ReplMsg {
	inc, seq := s.Tail()
	return &wire.ReplMsg{
		Kind:    wire.ReplStatus,
		Inc:     inc,
		Seq:     seq,
		Role:    uint64(server.RoleLeader),
		PrevInc: s.cfg.PrevInc,
		PrevSeq: s.cfg.PrevSeq,
		Addr:    s.cfg.Advertise,
	}
}

// serveConn demuxes one replication connection by its hello frame: a
// SUBSCRIBE starts a follower stream, a STATUS probe is answered with this
// leader's coordinates and closed.
func (s *Source) serveConn(nc net.Conn) {
	defer nc.Close()
	br := newFrameReader(nc)
	m, _, err := wire.ReadReplHello(br, nil)
	if err != nil {
		s.cfg.Logf("repl: %v: bad hello: %v", nc.RemoteAddr(), err)
		return
	}
	switch m.Kind {
	case wire.ReplStatus:
		w := &frameWriter{nc: nc, epoch: s.cfg.Epoch}
		_ = w.writeMsg(s.Status())
	case wire.ReplSubscribe:
		s.ServeSubscriber(nc, br, &m)
	default:
		s.cfg.Logf("repl: %v: unexpected hello %v", nc.RemoteAddr(), m.Kind)
	}
}

// ServeSubscriber runs one follower subscription whose SUBSCRIBE hello m
// was already read from br — the entry point for the failover node's
// listener demux as well as serveConn. It blocks until the subscription
// ends; teardown closes nc (that is what unblocks a stalled write), so a
// caller's own deferred Close is a harmless double-close.
//
// The epoch fence lives here: a subscriber announcing a non-zero epoch
// different from the leader's is answered with one REJECT frame carrying
// the leader's epoch, regime start position and serving address, then
// dropped. A stale ex-leader uses the position to truncate its unshipped
// suffix before trying again; a subscriber from a *newer* regime learns
// from the same frame that this leader is the stale one.
func (s *Source) ServeSubscriber(nc net.Conn, br wire.FrameReader, m *wire.ReplMsg) {
	afterInc, afterSeq := m.Inc, m.Seq
	w := &frameWriter{nc: nc, epoch: s.cfg.Epoch}
	if m.Epoch != 0 && m.Epoch != s.cfg.Epoch {
		if st := s.cfg.State; st != nil {
			st.NoteFencing()
		}
		s.cfg.Logf("repl: %v: fencing subscriber at epoch %d (serving epoch %d)",
			nc.RemoteAddr(), m.Epoch, s.cfg.Epoch)
		rej := s.Status()
		rej.Kind = wire.ReplReject
		_ = w.writeMsg(rej)
		return
	}

	sub := &subscriber{
		ch:   make(chan []wal.Record, s.cfg.SendBuffer),
		quit: make(chan struct{}),
	}
	gate, ok := s.register(sub)
	if !ok {
		return
	}
	defer s.unregister(sub)
	sub.setAck(afterInc, afterSeq)
	if st := s.cfg.State; st != nil {
		st.AddFollowers(1)
		defer st.AddFollowers(-1)
	}
	// A blocked Write does not watch sub.quit; closing the socket is what
	// unblocks it when the subscriber is shed or the Source closes.
	go func() {
		<-sub.quit
		nc.Close()
	}()
	// Ack reader: the follower's apply cursor feeds lag accounting. Any
	// read error kills the subscription (the follower reconnects).
	go func() {
		defer sub.kill()
		var buf []byte
		var err error
		for {
			buf, err = wire.ReadReplFrame(br, buf)
			if err != nil {
				return
			}
			m, err := wire.DecodeReplMsg(buf)
			if err != nil || m.Kind != wire.ReplAck {
				return
			}
			sub.setAck(m.Inc, m.Seq)
			s.publishAck()
		}
	}()

	s.cfg.Logf("repl: %v: subscribed after (%d, %d), tail (%d, %d) epoch %d",
		nc.RemoteAddr(), afterInc, afterSeq, s.cfg.Incarnation, gate, s.cfg.Epoch)

	// The STATUS frame ahead of the stream tells the subscriber the regime
	// it is joining: epoch to adopt, leader serving address, regime start.
	if err := w.writeMsg(s.Status()); err != nil {
		s.cfg.Logf("repl: %v: status: %v", nc.RemoteAddr(), err)
		sub.kill()
		return
	}
	if err := s.sendBackfill(w, afterInc, afterSeq, gate); err != nil {
		s.cfg.Logf("repl: %v: backfill: %v", nc.RemoteAddr(), err)
		sub.kill()
		return
	}

	tick := time.NewTicker(s.cfg.WatermarkEvery)
	defer tick.Stop()
	for {
		select {
		case <-sub.quit:
			return
		case recs := <-sub.ch:
			// Drain greedily so a pipelined burst ships as few frames as
			// the batch-size target allows.
			for {
				if err := s.sendLive(w, recs); err != nil {
					s.cfg.Logf("repl: %v: send: %v", nc.RemoteAddr(), err)
					sub.kill()
					return
				}
				select {
				case recs = <-sub.ch:
				default:
					recs = nil
				}
				if recs == nil {
					break
				}
			}
		case <-tick.C:
			if err := s.sendWatermark(w); err != nil {
				s.cfg.Logf("repl: %v: watermark: %v", nc.RemoteAddr(), err)
				sub.kill()
				return
			}
			s.publishLag()
		}
	}
}

// sendBackfill ships the verified on-disk suffix after (afterInc,
// afterSeq): all prior incarnations past the position, plus the current
// incarnation's records up to the registration gate (everything above the
// gate arrives on the live feed).
func (s *Source) sendBackfill(w *frameWriter, afterInc, afterSeq, gate uint64) error {
	recs, err := wal.Backfill(s.cfg.Dir, afterInc, afterSeq)
	if err != nil {
		return err
	}
	var batch []wire.ReplRecord
	var batchInc uint64
	var bytes int
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := w.writeMsg(&wire.ReplMsg{
			Kind: wire.ReplBatch,
			Inc:  batchInc,
			Seq:  batch[len(batch)-1].Seq,
			Recs: batch,
		})
		batch, bytes = batch[:0], 0
		return err
	}
	for _, sr := range recs {
		// Current-incarnation records above the registration gate are the
		// duplication window of the splice: flushed after register()
		// snapshotted the tail, they are on disk by the time Backfill
		// reads it AND queued on sub.ch (the subscriber was in s.subs
		// before their DeliverFlushed ran — both happen under s.mu). Ship
		// them from the live feed only, never from backfill.
		if sr.Inc == s.cfg.Incarnation && sr.Rec.LSN > gate {
			continue
		}
		if len(batch) > 0 && (sr.Inc != batchInc ||
			len(batch) >= wire.MaxReplBatch || bytes+len(sr.Rec.Data) > batchTargetBytes) {
			if err := flush(); err != nil {
				return err
			}
		}
		batchInc = sr.Inc
		batch = append(batch, wire.ReplRecord{
			Seq:  sr.Rec.LSN,
			TS:   sr.Rec.TS,
			H:    uint32(sr.Rec.H),
			HSeq: sr.Rec.Seq,
			Data: sr.Rec.Data,
		})
		bytes += len(sr.Rec.Data)
	}
	return flush()
}

// sendLive ships one flushed batch from the current incarnation.
func (s *Source) sendLive(w *frameWriter, recs []wal.Record) error {
	var batch []wire.ReplRecord
	var bytes int
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := w.writeMsg(&wire.ReplMsg{
			Kind: wire.ReplBatch,
			Inc:  s.cfg.Incarnation,
			Seq:  batch[len(batch)-1].Seq,
			Recs: batch,
		})
		batch, bytes = batch[:0], 0
		return err
	}
	for i := range recs {
		r := &recs[i]
		if len(batch) >= wire.MaxReplBatch || (len(batch) > 0 && bytes+len(r.Data) > batchTargetBytes) {
			if err := flush(); err != nil {
				return err
			}
		}
		batch = append(batch, wire.ReplRecord{
			Seq:   r.LSN,
			TS:    r.TS,
			H:     uint32(r.H),
			HSeq:  r.Seq,
			Trace: r.Trace,
			Data:  r.Data,
		})
		bytes += len(r.Data)
	}
	if err := flush(); err != nil {
		return err
	}
	// Ship spans are recorded after the frames are on the socket, so the
	// span's timestamp bounds when the bytes actually left this node. One
	// clock read covers the whole delivery.
	if ring := s.cfg.Spans; ring != nil {
		var now, unc uint64
		for i := range recs {
			if recs[i].Trace == 0 {
				continue
			}
			if now == 0 {
				now, unc = ring.Now()
			}
			ring.Record(span.Span{Trace: span.TraceID(recs[i].Trace), Stage: span.StageShip,
				TS: now, Unc: unc, Lane: -1})
		}
	}
	return nil
}

func (s *Source) sendWatermark(w *frameWriter) error {
	var boundary uint64
	if s.cfg.Boundary != nil {
		boundary = s.cfg.Boundary()
	}
	inc, seq := s.Tail()
	return w.writeMsg(&wire.ReplMsg{
		Kind:          wire.ReplWatermark,
		Inc:           inc,
		Seq:           seq,
		HorizonTS:     s.cfg.Log.Horizon(),
		BoundaryTicks: boundary,
	})
}

// publishLag posts the worst follower's unacknowledged backlog (in records
// of the current incarnation) to the scoreboard. A follower still catching
// up on a prior incarnation counts as the full current tail behind.
func (s *Source) publishLag() {
	st := s.cfg.State
	if st == nil {
		return
	}
	s.mu.Lock()
	tail := s.tailSeq
	var worst uint64
	for sub := range s.subs {
		inc, seq := sub.ack()
		lag := tail
		if inc == s.cfg.Incarnation && seq < tail {
			lag = tail - seq
		} else if inc == s.cfg.Incarnation {
			lag = 0
		}
		if lag > worst {
			worst = lag
		}
	}
	s.mu.Unlock()
	st.SetLag(worst)
}

// frameWriter serializes replication messages onto one socket; writeMsg is
// called only from the subscription's serve goroutine. Every frame is
// stamped with the writer's fencing epoch.
type frameWriter struct {
	nc    net.Conn
	buf   []byte
	epoch uint64
}

func (w *frameWriter) writeMsg(m *wire.ReplMsg) error {
	m.Epoch = w.epoch
	p, err := wire.AppendReplMsg(w.buf[:0], m)
	if err != nil {
		return err
	}
	w.buf = p
	return wire.WriteReplFrame(w.nc, p)
}
