package repl

import (
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ordo/internal/wal"
	"ordo/internal/wire"
)

// TestConcurrentRegisterSplice pins the register/DeliverFlushed splice: a
// writer flushing one record at a time (every flush is a splice window)
// races followers that subscribe mid-stream, some from the origin and some
// resuming by (incarnation, seq) from a position they learned while the
// stream was moving. Each follower asserts the dense-LSN stream it receives
// is exactly resume+1, resume+2, ... — any duplicated record (backfill and
// live feed both shipping the window between gate snapshot and disk read)
// or skipped record (a flush falling between the gate and the first live
// delivery) fails immediately. Payloads carry the LSN they were appended
// as, so a record shipped under the wrong sequence is also caught.
func TestConcurrentRegisterSplice(t *testing.T) {
	dir := t.TempDir()
	dev, err := wal.OpenFile(dir, wal.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	log := wal.New(dev, nil)
	src, err := NewSource(SourceConfig{
		Dir:            dir,
		Log:            log,
		Incarnation:    dev.Incarnation(),
		WatermarkEvery: 5 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- src.Serve(ln) }()

	const total = 400
	var flushed atomic.Uint64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		h := log.NewHandle()
		defer h.Close()
		var payload [8]byte
		for i := uint64(1); i <= total; i++ {
			binary.BigEndian.PutUint64(payload[:], i)
			h.AppendAt(i, payload[:])
			if _, err := log.Flush(); err != nil {
				t.Errorf("flush %d: %v", i, err)
				return
			}
			flushed.Store(i)
		}
	}()

	// Followers subscribe at staggered points while the writer is mid-
	// stream; odd ones resume from the middle of what they saw flushed,
	// pinning that resume-by-position is strictly exclusive.
	const followers = 8
	var wg sync.WaitGroup
	for j := 0; j < followers; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			join := uint64(j * total / followers)
			for flushed.Load() < join {
				time.Sleep(time.Millisecond)
			}
			var resume uint64
			if j%2 == 1 {
				resume = flushed.Load() / 2
			}
			nc, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Errorf("follower %d: %v", j, err)
				return
			}
			defer nc.Close()
			nc.SetDeadline(time.Now().Add(30 * time.Second))
			w := &frameWriter{nc: nc}
			var inc uint64
			if resume > 0 {
				inc = dev.Incarnation()
			}
			if err := w.writeMsg(&wire.ReplMsg{Kind: wire.ReplSubscribe, Inc: inc, Seq: resume}); err != nil {
				t.Errorf("follower %d: subscribe: %v", j, err)
				return
			}
			br := newFrameReader(nc)
			var buf []byte
			want := resume + 1
			for want <= total {
				buf, err = wire.ReadReplFrame(br, buf)
				if err != nil {
					t.Errorf("follower %d: read at seq %d: %v", j, want, err)
					return
				}
				m, err := wire.DecodeReplMsg(buf)
				if err != nil {
					t.Errorf("follower %d: decode: %v", j, err)
					return
				}
				if m.Kind != wire.ReplBatch {
					continue
				}
				if m.Inc != dev.Incarnation() {
					t.Errorf("follower %d: batch from incarnation %d, want %d", j, m.Inc, dev.Incarnation())
					return
				}
				for _, r := range m.Recs {
					if r.Seq != want {
						t.Errorf("follower %d (resume %d): got seq %d, want %d (dup or gap in splice)",
							j, resume, r.Seq, want)
						return
					}
					if got := binary.BigEndian.Uint64(r.Data); got != r.Seq {
						t.Errorf("follower %d: seq %d carries payload %d", j, r.Seq, got)
						return
					}
					want++
				}
			}
		}(j)
	}

	<-writerDone
	wg.Wait()
	src.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
