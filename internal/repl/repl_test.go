package repl_test

import (
	"bufio"
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ordo/internal/db"
	"ordo/internal/faultnet"
	"ordo/internal/repl"
	"ordo/internal/server"
	"ordo/internal/telemetry"
	"ordo/internal/telemetry/span"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

var testSchema = db.Schema{Tables: []db.TableDef{{Name: "t0", Cols: 2}}}

// leaderHarness is one in-process durable leader: a serving listener for
// clients and a faultnet-wrapped replication listener for followers.
type leaderHarness struct {
	t      *testing.T
	dir    string
	engine db.DB
	dev    *wal.FileDevice
	log    *wal.Log
	state  *server.ReplState
	src    *repl.Source
	srv    *server.Server

	addr     string // client serving address
	replAddr string // replication (chaos-wrapped) address
	faultLn  *faultnet.Listener

	serveDone chan error
	replDone  chan error
}

// startLeader boots a leader. replAddr is the replication listen address —
// "127.0.0.1:0" for a fresh pick, or a previous harness's replAddr so a
// restarted leader comes back where its followers expect it. A non-nil
// ring enables distributed tracing: the serving core captures spans for
// client-stamped requests and the Source records repl_ship spans into it.
func startLeader(t *testing.T, dir string, faults faultnet.Config, replAddr string, ring *span.Ring) *leaderHarness {
	t.Helper()
	engine, err := db.New(db.OCC, testSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Replay(engine, recs); err != nil {
		t.Fatal(err)
	}
	dev, err := wal.OpenFile(dir, wal.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	log := wal.New(dev, nil)
	state := server.NewReplState(server.RoleLeader, 0, 0, 0)
	src, err := repl.NewSource(repl.SourceConfig{
		Dir:            dir,
		Log:            log,
		Incarnation:    dev.Incarnation(),
		State:          state,
		WatermarkEvery: 20 * time.Millisecond,
		Spans:          ring,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tel *server.Telemetry
	if ring != nil {
		tel = server.NewTelemetry(telemetry.NewRegistry(), telemetry.NewTracer(64), time.Second)
		tel.EnableTracing(ring, 0)
	}
	srv, err := server.New(server.Config{
		DB:        engine,
		Schema:    testSchema,
		WAL:       log,
		Repl:      state,
		Telemetry: tel,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	replLn, err := net.Listen("tcp", replAddr)
	if err != nil {
		t.Fatal(err)
	}
	h := &leaderHarness{
		t: t, dir: dir, engine: engine, dev: dev, log: log, state: state,
		src: src, srv: srv,
		addr: ln.Addr().String(), replAddr: replLn.Addr().String(),
		serveDone: make(chan error, 1), replDone: make(chan error, 1),
	}
	h.faultLn = faultnet.Wrap(replLn, faults)
	go func() { h.serveDone <- srv.Serve(ln) }()
	go func() { h.replDone <- src.Serve(h.faultLn) }()
	return h
}

func (h *leaderHarness) stop() {
	h.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		h.t.Fatalf("leader shutdown: %v", err)
	}
	<-h.serveDone
	h.src.Close()
	<-h.replDone
	if err := h.dev.Close(); err != nil {
		h.t.Fatalf("leader wal close: %v", err)
	}
}

// followerHarness is one in-process follower: a tailing apply loop over its
// own durable WAL, and a read-only watermark-gated serving listener.
type followerHarness struct {
	t      *testing.T
	dir    string
	engine db.DB
	dev    *wal.FileDevice
	state  *server.ReplState
	fol    *repl.Follower
	srv    *server.Server
	addr   string

	cancel    context.CancelFunc
	runDone   chan struct{}
	serveDone chan error
}

// startFollower boots a follower tailing leaderAddr. A non-nil ring makes
// the apply loop record repl_apply spans for traced records.
func startFollower(t *testing.T, dir, leaderAddr string, ring *span.Ring) *followerHarness {
	t.Helper()
	engine, err := db.New(db.OCC, testSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Replay(engine, recs); err != nil {
		t.Fatal(err)
	}
	dev, err := wal.OpenFile(dir, wal.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	log := wal.New(dev, nil)
	state := server.NewReplState(server.RoleFollower, 0, time.Second, 1<<20)
	fol, err := repl.NewFollower(repl.FollowerConfig{
		Addr:       leaderAddr,
		DB:         engine,
		Log:        log,
		State:      state,
		StateFile:  filepath.Join(dir, "cursor.json"),
		RetryEvery: 20 * time.Millisecond,
		Spans:      ring,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		DB:       engine,
		Schema:   testSchema,
		ReadOnly: true,
		Repl:     state,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &followerHarness{
		t: t, dir: dir, engine: engine, dev: dev, state: state, fol: fol,
		srv: srv, addr: ln.Addr().String(),
		cancel: cancel, runDone: make(chan struct{}), serveDone: make(chan error, 1),
	}
	go func() {
		defer close(h.runDone)
		fol.Run(ctx)
	}()
	go func() { h.serveDone <- srv.Serve(ln) }()
	return h
}

func (h *followerHarness) stop() {
	h.t.Helper()
	h.cancel()
	<-h.runDone
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		h.t.Fatalf("follower shutdown: %v", err)
	}
	<-h.serveDone
	if err := h.dev.Close(); err != nil {
		h.t.Fatalf("follower wal close: %v", err)
	}
}

// ackedWrite is one leader-acknowledged write and its durability token.
type ackedWrite struct {
	key   uint64
	val   uint64
	token uint64 // Response.TS: the timestamp the redo record was logged at
}

// pump writes n keys through one pipelined leader connection, retrying
// BUSY/CONFLICT, and returns every acknowledged write with its token.
func pump(t *testing.T, addr string, base uint64, n int) []ackedWrite {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	acked := make([]ackedWrite, 0, n)
	const window = 32
	var inFlight []ackedWrite
	next := 0
	for len(acked) < n {
		for len(inFlight) < window && next < n {
			w := ackedWrite{key: base + uint64(next), val: base + uint64(next)*7}
			if err := c.WriteRequest(&wire.Request{Op: wire.OpInsert, Key: w.key, Vals: []uint64{w.val, w.val + 1}}); err != nil {
				t.Fatal(err)
			}
			inFlight = append(inFlight, w)
			next++
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := c.ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		w := inFlight[0]
		inFlight = inFlight[1:]
		switch r.Status {
		case wire.StatusOK:
			if r.TS == 0 {
				t.Fatalf("key %d: acked durable write carries no timestamp token", w.key)
			}
			w.token = r.TS
			acked = append(acked, w)
		case wire.StatusBusy, wire.StatusConflict:
			if err := c.WriteRequest(&wire.Request{Op: wire.OpInsert, Key: w.key, Vals: []uint64{w.val, w.val + 1}}); err != nil {
				t.Fatal(err)
			}
			inFlight = append(inFlight, w)
		default:
			t.Fatalf("key %d: %v", w.key, r.Status)
		}
	}
	return acked
}

// getAt issues one GET_AT and returns the response.
func getAt(t *testing.T, c *wire.Conn, key, minTS uint64) wire.Response {
	t.Helper()
	if err := c.WriteRequest(&wire.Request{Op: wire.OpGetAt, Key: key, MinTS: minTS}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := c.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestReplicationEndToEnd is the acceptance run: a durable leader under
// pipelined write load, a follower tailing it through a chaotic link
// (latency, chunked writes, injected resets — every reset forces a
// reconnect-and-resume by position), and the two consistency promises
// checked for every single acknowledged write:
//
//  1. read-your-writes: GET_AT with the write's ack token eventually
//     succeeds on the follower and returns the written value;
//  2. the watermark gate: every NOT_YET on the way carries a watermark
//     strictly below the demanded timestamp, and no read is served above
//     the watermark.
//
// A follower restart in the middle must resume from its durable cursor
// rather than refetch history, and a fresh incarnation of the leader's
// WAL (leader restart) must stream seamlessly after backfill.
func TestReplicationEndToEnd(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	faults := faultnet.Config{
		Seed:        42,
		LatencyProb: 0.02, MaxLatency: 2 * time.Millisecond,
		PartialProb: 0.15, ChunkDelay: time.Millisecond,
		ResetProb: 0.002,
	}
	leader := startLeader(t, ldir, faults, "127.0.0.1:0", nil)
	follower := startFollower(t, fdir, leader.replAddr, nil)

	const phase1 = 400
	acked := pump(t, leader.addr, 0, phase1)

	verify := func(fAddr string, writes []ackedWrite) {
		t.Helper()
		nc, err := net.Dial("tcp", fAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		c := wire.NewConn(nc)
		deadline := time.Now().Add(30 * time.Second)
		for _, w := range writes {
			for {
				r := getAt(t, c, w.key, w.token)
				if r.Status == wire.StatusNotYet {
					if r.TS >= w.token {
						t.Fatalf("key %d: NOT_YET with watermark %d >= demanded %d", w.key, r.TS, w.token)
					}
					if time.Now().After(deadline) {
						t.Fatalf("key %d: not visible on follower before deadline (watermark %d, want %d)", w.key, r.TS, w.token)
					}
					time.Sleep(5 * time.Millisecond)
					continue
				}
				if r.Status != wire.StatusOK {
					t.Fatalf("key %d: GET_AT: %v", w.key, r.Status)
				}
				if len(r.Row) != 2 || r.Row[0] != w.val || r.Row[1] != w.val+1 {
					t.Fatalf("key %d: follower row %v, want [%d %d]", w.key, r.Row, w.val, w.val+1)
				}
				break
			}
		}
	}
	verify(follower.addr, acked)

	// The served prefix is consistent with the advertised watermark: the
	// watermark never exceeds the applied timestamp, so no read ran ahead
	// of apply.
	if w, a := follower.state.Watermark(), follower.state.AppliedTS(); w > a {
		t.Fatalf("watermark %d ran ahead of applied timestamp %d", w, a)
	}

	// The follower must reject writes outright in read-only mode — with
	// NOT_LEADER, so a resilient client knows to chase the leader.
	nc, err := net.Dial("tcp", follower.addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := wire.NewConn(nc)
	if err := fc.WriteRequest(&wire.Request{Op: wire.OpPut, Key: 0, Vals: []uint64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := fc.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := fc.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != wire.StatusNotLeader {
		t.Fatalf("follower answered a write with %v, want NOT_LEADER", r.Status)
	}
	// A demanded timestamp far above anything committed answers NOT_YET
	// carrying the current watermark.
	if r := getAt(t, fc, 0, 1<<62); r.Status != wire.StatusNotYet {
		t.Fatalf("GET_AT far future: %v, want NOT_YET", r.Status)
	}
	nc.Close()

	// Restart the follower: it must come back from its own WAL and cursor,
	// resuming strictly after what it already applied.
	preRestart := follower.fol.Position()
	if preRestart.Inc == 0 || preRestart.Seq == 0 {
		t.Fatalf("follower cursor %+v still at origin after %d applied writes", preRestart, phase1)
	}
	follower.stop()

	const phase2 = 200
	acked2 := pump(t, leader.addr, 1_000_000, phase2)

	follower = startFollower(t, fdir, leader.replAddr, nil)
	if got := follower.fol.Position(); got != preRestart {
		t.Fatalf("restarted follower resumed from %+v, want durable cursor %+v", got, preRestart)
	}
	verify(follower.addr, acked2)
	// Everything from before the restart is still there (recovered from
	// the follower's own WAL, not refetched).
	verify(follower.addr, acked[:20])

	// Restart the leader: a new WAL incarnation on the same replication
	// address. The follower must reconnect, cross the incarnation boundary
	// via backfill, and keep applying.
	// The chaos must not have been vacuous: phase 1 and 2 streamed through
	// the faulty link, so it really delayed or chopped frames.
	if st := leader.faultLn.Stats(); st.Partials == 0 && st.Delays == 0 {
		t.Fatalf("faultnet injected nothing: %+v", st)
	}
	replAddr := leader.replAddr
	leader.stop()
	leader = startLeader(t, ldir, faults, replAddr, nil)
	acked3 := pump(t, leader.addr, 2_000_000, phase2)
	verify(follower.addr, acked3)

	if n := follower.state.AppliedRecords(); n == 0 {
		t.Fatal("follower applied-records counter never moved")
	}
	follower.stop()
	leader.stop()
}

// TestFollowerLagHealth pins the /healthz follower rule end to end: a
// follower that loses its leader flips LagExceeded after the contact bound,
// and a healthy one does not.
func TestFollowerLagHealth(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	leader := startLeader(t, ldir, faultnet.Config{}, "127.0.0.1:0", nil)
	follower := startFollower(t, fdir, leader.replAddr, nil)

	pump(t, leader.addr, 0, 50)
	waitFor(t, "follower contact", func() bool { return follower.state.AppliedRecords() > 0 })
	if follower.state.LagExceeded() {
		t.Fatal("healthy follower reports lag exceeded")
	}

	leader.stop()
	waitFor(t, "lag rule to trip", func() bool { return follower.state.LagExceeded() })
	follower.stop()
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSourceRequiresLog pins constructor validation.
func TestSourceRequiresLog(t *testing.T) {
	if _, err := repl.NewSource(repl.SourceConfig{Dir: t.TempDir()}); err == nil {
		t.Fatal("NewSource accepted a nil log")
	}
	if _, err := repl.NewFollower(repl.FollowerConfig{}); err == nil {
		t.Fatal("NewFollower accepted an empty config")
	}
}

// TestStaleRejectNotContact pins the election-starvation fix: a zombie
// leader refusing a newer follower with lower-epoch REJECTs is a fencing
// event, not leader contact — counting it as contact would keep resetting
// ContactAge and the heartbeat-timeout election would never fire.
func TestStaleRejectNotContact(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				if _, _, err := wire.ReadReplHello(bufio.NewReaderSize(nc, 4<<10), nil); err != nil {
					return
				}
				rej := wire.ReplMsg{Kind: wire.ReplReject, Epoch: 1, Role: uint64(server.RoleLeader)}
				p, err := wire.AppendReplMsg(nil, &rej)
				if err != nil {
					return
				}
				_ = wire.WriteReplFrame(nc, p)
			}()
		}
	}()

	dir := t.TempDir()
	engine, err := db.New(db.OCC, testSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := wal.OpenFile(dir, wal.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	state := server.NewReplState(server.RoleFollower, 0, time.Second, 1<<20)
	fol, err := repl.NewFollower(repl.FollowerConfig{
		Addr:  ln.Addr().String(),
		DB:    engine,
		Log:   wal.New(dev, nil),
		State: state,
		Epoch: 5,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	const settled = 60 * time.Millisecond
	time.Sleep(settled)
	err = fol.Session(context.Background())
	if err == nil {
		t.Fatal("session against a stale-epoch zombie ended without error")
	}
	var fenced *repl.Fenced
	if errors.As(err, &fenced) {
		t.Fatalf("lower-epoch REJECT surfaced as Fenced (%v): converging on a stale regime", err)
	}
	if state.Fencings() == 0 {
		t.Fatal("stale-epoch refusal not counted as a fencing event")
	}
	if age := state.ContactAge(); age < settled {
		t.Fatalf("ContactAge %v < %v: the zombie's REJECT was counted as leader contact", age, settled)
	}
	if fol.Epoch() != 5 {
		t.Fatalf("follower epoch moved to %d on a stale refusal", fol.Epoch())
	}
}

// TestHoldAckGate pins the resumed-leader safety net: with HoldAckGate set,
// the no-subscriber waiver of AckAdvance stays suppressed — a resumed
// leader that may have been superseded must not ack writes only it holds —
// until the first follower subscribes, after which the normal waiver rules
// return for the rest of the Source's lifetime.
func TestHoldAckGate(t *testing.T) {
	dir := t.TempDir()
	dev, err := wal.OpenFile(dir, wal.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	log := wal.New(dev, nil)
	var mu sync.Mutex
	var acks []uint64
	src, err := repl.NewSource(repl.SourceConfig{
		Dir:         dir,
		Log:         log,
		Incarnation: dev.Incarnation(),
		AckAdvance: func(seq uint64) {
			mu.Lock()
			acks = append(acks, seq)
			mu.Unlock()
		},
		HoldAckGate:    true,
		WatermarkEvery: time.Hour, // keep heartbeat frames off the pipe
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	h := log.NewHandle()
	h.AppendAt(1, []byte("x"))
	if _, err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	held := len(acks)
	mu.Unlock()
	if held != 0 {
		t.Fatalf("held gate waived %d ack(s) with no subscriber", held)
	}

	// First subscriber arrives: registration releases the hold.
	cli, srvConn := net.Pipe()
	go src.ServeSubscriber(srvConn, bufio.NewReaderSize(srvConn, 4<<10), &wire.ReplMsg{Kind: wire.ReplSubscribe})
	r := bufio.NewReaderSize(cli, 64<<10)
	for i := 0; i < 2; i++ { // STATUS, then the backfilled batch
		if _, _, err := wire.ReadReplHello(r, nil); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	// The follower dies without acking: the last-leaves waiver must fire
	// now that the hold is released.
	cli.Close()
	waitFor(t, "last-leaves waiver", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(acks) > 0
	})

	// And a later no-subscriber flush waives normally.
	mu.Lock()
	before := len(acks)
	mu.Unlock()
	h.AppendAt(2, []byte("y"))
	if _, err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	after := len(acks)
	mu.Unlock()
	if after <= before {
		t.Fatal("no-subscriber waiver still suppressed after the first subscription")
	}
}
