package repl

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ordo/internal/db"
	"ordo/internal/server"
	"ordo/internal/telemetry/span"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// Reconnect pacing defaults: the delay starts at DefaultRetryEvery,
// doubles per consecutive failure up to DefaultRetryMax, and resets after
// any productive session.
const (
	DefaultRetryEvery = 250 * time.Millisecond
	DefaultRetryMax   = 2 * time.Second
)

// Position is a follower's durable stream cursor: the last leader
// (incarnation, seq) whose record is appended to the local WAL and
// replayed into the engine, and the fencing epoch it was applied under.
type Position struct {
	Inc   uint64 `json:"inc"`
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch"`
}

// Fenced is the error a Session returns when the leader refused the
// subscription with a REJECT frame: the regimes disagree. It carries the
// rejecting leader's view so the caller can converge — adopt the higher
// epoch, truncate the local log to (PrevInc, PrevSeq) if this node's WAL
// runs past it, and resubscribe.
type Fenced struct {
	// Epoch is the rejecting leader's fencing epoch.
	Epoch uint64
	// PrevInc and PrevSeq are where the rejecting leader's regime began.
	PrevInc, PrevSeq uint64
	// Addr is the rejecting leader's client-facing serving address.
	Addr string
}

func (e *Fenced) Error() string {
	return fmt.Sprintf("repl: fenced by leader at epoch %d (regime start %d/%d)", e.Epoch, e.PrevInc, e.PrevSeq)
}

// errStaleFrame reports a mid-stream frame from an older epoch than the
// one this follower adopted — a zombie leader still writing to the link.
var errStaleFrame = errors.New("repl: frame from a stale epoch")

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// Addr is the leader's replication listen address.
	Addr string
	// DB is the live engine the apply loop replays into; the serving
	// server must be read-only so this loop is the engine's only writer.
	DB db.DB
	// Log is the follower's own durable WAL: every leader record is
	// appended (at the leader's commit timestamp) and flushed before it is
	// replayed or acknowledged, so a restart recovers from local disk and
	// promotion is just a restart without the follower flag.
	Log *wal.Log
	// State is the shared scoreboard; applied counters, lag, contact and
	// the safe-read watermark are published into it.
	State *server.ReplState
	// Telemetry, when set, records per-batch apply latency. Optional.
	Telemetry *server.Telemetry
	// Spans, when set, records a repl_apply span for every traced record
	// after it is durable locally and replayed into the engine — the stamp
	// a cross-node merger joins against the leader's repl_ship span.
	// Optional.
	Spans *span.Ring
	// StateFile persists the Position cursor (JSON, temp+fsync+rename).
	// A lost or stale-low cursor only costs a resend — replay is
	// idempotent — but the epoch it records feeds the bootstrap decision,
	// so the write is made durable before the rename installs it.
	StateFile string
	// Boundary reports the follower's own Ordo uncertainty window in clock
	// ticks, already widened for clock-health anomalies by the caller. The
	// effective window is the max of this and the leader's advertised one.
	// Optional (0).
	Boundary func() uint64
	// Epoch is the fencing epoch this follower believes current at
	// construction (from its WAL headers); the cursor's persisted epoch
	// and STATUS frames can only raise it.
	Epoch uint64
	// RetryEvery is the initial reconnect backoff; ≤ 0 means
	// DefaultRetryEvery. RetryMax caps the doubling; ≤ 0 means
	// DefaultRetryMax.
	RetryEvery time.Duration
	RetryMax   time.Duration
	// DialTimeout bounds each dial; ≤ 0 means 3 s.
	DialTimeout time.Duration
	// Logf receives operational messages. Optional.
	Logf func(format string, args ...any)
}

// Follower tails a leader: it subscribes from its durable cursor, appends
// every streamed record to its own WAL, replays it into the engine, and
// maintains the safe-read watermark W = appliedTS − effective uncertainty
// window. The GentleRain-style argument for W (DESIGN.md §13): records
// apply in leader log order, which within an incarnation is commit
// timestamp order, and any commit the leader has not yet streamed carries a
// timestamp above its current clock minus the uncertainty window — so once
// appliedTS reaches T, no record with timestamp ≤ T − window can still be
// in flight, and a read as of that bound sees a frozen prefix.
type Follower struct {
	cfg   FollowerConfig
	h     *wal.Handle
	pos   Position
	epoch uint64 // adopted fencing epoch; only ever raised

	// The session loop owns pos and epoch from a single goroutine; the
	// failover layer's probe handlers read them concurrently via
	// Position/Epoch, which serve this snapshot instead.
	pubMu    sync.Mutex
	pubPos   Position
	pubEpoch uint64

	leaderBoundary uint64
	leaderInc      uint64
	leaderTail     uint64
	productive     bool // current session handled at least one frame

	recsBuf []wal.Record
	posBuf  []byte
}

// NewFollower builds a Follower, loading the durable cursor from
// cfg.StateFile when it exists.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Addr == "" || cfg.DB == nil || cfg.Log == nil {
		return nil, fmt.Errorf("repl: Follower requires Addr, DB and Log")
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = DefaultRetryEvery
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	f := &Follower{cfg: cfg, h: cfg.Log.NewHandle()}
	if cfg.StateFile != "" {
		data, err := os.ReadFile(cfg.StateFile)
		switch {
		case os.IsNotExist(err):
		case err != nil:
			return nil, fmt.Errorf("repl: reading cursor: %w", err)
		default:
			if err := json.Unmarshal(data, &f.pos); err != nil {
				// A corrupt cursor is recoverable: resume from (0, 0) and
				// let idempotent replay absorb the resend.
				cfg.Logf("repl: cursor %s corrupt (%v), resuming from scratch", cfg.StateFile, err)
				f.pos = Position{}
			}
		}
	}
	f.epoch = cfg.Epoch
	if f.pos.Epoch > f.epoch {
		f.epoch = f.pos.Epoch
	}
	f.publish()
	return f, nil
}

// publish snapshots the cursor and epoch for cross-goroutine readers.
// Called by the session goroutine after every mutation.
func (f *Follower) publish() {
	f.pubMu.Lock()
	f.pubPos, f.pubEpoch = f.pos, f.epoch
	f.pubMu.Unlock()
}

// Position returns the current durable cursor. Safe to call from any
// goroutine.
func (f *Follower) Position() Position {
	f.pubMu.Lock()
	defer f.pubMu.Unlock()
	return f.pubPos
}

// Epoch returns the fencing epoch the follower has adopted so far. Safe
// to call from any goroutine.
func (f *Follower) Epoch() uint64 {
	f.pubMu.Lock()
	defer f.pubMu.Unlock()
	return f.pubEpoch
}

// AdoptEpoch raises the follower's epoch (a lower value is ignored) —
// called by the failover layer, between Sessions, after it learns a new
// regime out of band.
func (f *Follower) AdoptEpoch(e uint64) {
	if e > f.epoch {
		f.epoch = e
		f.publish()
	}
}

// Retarget points the next Session at a different leader address. Call it
// only between Sessions, from the goroutine that drives them — the
// failover layer's re-election path.
func (f *Follower) Retarget(addr string) { f.cfg.Addr = addr }

// Converge reacts to a Fenced rejection from a newer regime: adopt its
// epoch and reset the stream cursor to origin, because the promoted
// leader's log speaks its own (incarnation, seq) coordinates — the old
// cursor is meaningless there. The full re-backfill this triggers is
// idempotent (server.Replay upserts in order) and, under the single-
// failure model, cannot lose anything: a follower that held records past
// the new leader's regime start would have out-positioned it in the
// election. Rejections from an older regime (a stale leader probed by a
// newer follower) are ignored.
func (f *Follower) Converge(e *Fenced) error {
	if e.Epoch <= f.epoch {
		return nil
	}
	f.cfg.Logf("repl: converging on epoch %d regime (was %d): resetting cursor (%d, %d)",
		e.Epoch, f.epoch, f.pos.Inc, f.pos.Seq)
	f.epoch = e.Epoch
	f.pos = Position{Epoch: e.Epoch}
	f.publish()
	return f.persistPos()
}

// Run tails the leader until ctx is done, reconnecting (and resuming by
// cursor) across leader restarts and link failures. The delay between
// sessions starts at RetryEvery and doubles per consecutive failure up to
// RetryMax, with ±25% jitter so a fleet of followers does not reconnect in
// lockstep; a productive session (any frame handled) resets it.
func (f *Follower) Run(ctx context.Context) error {
	delay := f.cfg.RetryEvery
	for {
		f.productive = false
		if err := f.Session(ctx); err != nil {
			f.cfg.Logf("repl: session: %v", err)
			var fenced *Fenced
			if errors.As(err, &fenced) {
				if cerr := f.Converge(fenced); cerr != nil {
					return cerr
				}
			}
		}
		if f.productive {
			delay = f.cfg.RetryEvery
		} else if delay *= 2; delay > f.cfg.RetryMax {
			delay = f.cfg.RetryMax
		}
		jittered := delay*3/4 + time.Duration(rand.Int63n(int64(delay)/2))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(jittered):
		}
	}
}

// Session runs one leader connection: subscribe from the cursor, then
// apply WALBATCH frames and track WATERMARK heartbeats until the link or
// ctx dies. A *Fenced return means the leader refused the subscription
// from a different regime; the failover layer (not this loop) decides how
// to converge. One reconnect attempt is counted on the scoreboard per
// call.
func (f *Follower) Session(ctx context.Context) error {
	if st := f.cfg.State; st != nil {
		st.NoteReconnect()
	}
	d := net.Dialer{Timeout: f.cfg.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", f.cfg.Addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	stop := context.AfterFunc(ctx, func() { nc.Close() })
	defer stop()

	w := &frameWriter{nc: nc, epoch: f.epoch}
	if err := w.writeMsg(&wire.ReplMsg{Kind: wire.ReplSubscribe, Inc: f.pos.Inc, Seq: f.pos.Seq}); err != nil {
		return err
	}
	f.cfg.Logf("repl: subscribed to %s after (%d, %d) epoch %d", f.cfg.Addr, f.pos.Inc, f.pos.Seq, f.epoch)

	br := newFrameReader(nc)
	var buf []byte
	for {
		buf, err = wire.ReadReplFrame(br, buf)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		m, err := wire.DecodeReplMsg(buf)
		if err != nil {
			return err
		}
		// The epoch fence, follower side: frames below the adopted epoch
		// come from a fenced zombie leader and end the session; a higher
		// epoch on any frame is the new regime announcing itself.
		if m.Epoch != 0 && m.Epoch < f.epoch {
			if st := f.cfg.State; st != nil {
				st.NoteFencing()
			}
			return fmt.Errorf("%w: %d < %d", errStaleFrame, m.Epoch, f.epoch)
		}
		// Only frames that prove live leader stewardship count as contact.
		// Stale frames (above) and REJECTs are refusals, not heartbeats:
		// counting them would keep resetting ContactAge and starve the
		// election while a zombie leader keeps refusing us.
		if st := f.cfg.State; st != nil && m.Kind != wire.ReplReject {
			st.NoteContact()
		}
		// A higher epoch on a streamed frame is the new regime announcing
		// itself — EXCEPT on a REJECT, whose epoch must reach Converge
		// un-adopted: adopting it here would make the later Converge a
		// no-op and leave the stale cursor pointed into the new leader's
		// unrelated coordinate space.
		if m.Epoch > f.epoch && m.Kind != wire.ReplReject {
			f.cfg.Logf("repl: adopting epoch %d (was %d)", m.Epoch, f.epoch)
			f.epoch = m.Epoch
			w.epoch = m.Epoch
			f.publish()
		}
		f.productive = true
		switch m.Kind {
		case wire.ReplStatus:
			// The regime descriptor sent ahead of the stream: remember
			// where client writes should be redirected.
			if st := f.cfg.State; st != nil && m.Addr != "" {
				st.SetLeaderAddr(m.Addr)
			}
			f.leaderInc, f.leaderTail = m.Inc, m.Seq
		case wire.ReplReject:
			if st := f.cfg.State; st != nil {
				st.NoteFencing()
			}
			return &Fenced{Epoch: m.Epoch, PrevInc: m.PrevInc, PrevSeq: m.PrevSeq, Addr: m.Addr}
		case wire.ReplBatch:
			if err := f.applyBatch(&m); err != nil {
				return err
			}
			if err := w.writeMsg(&wire.ReplMsg{Kind: wire.ReplAck, Inc: f.pos.Inc, Seq: f.pos.Seq}); err != nil {
				return err
			}
			f.publishLag()
		case wire.ReplWatermark:
			f.leaderBoundary = m.BoundaryTicks
			f.leaderInc, f.leaderTail = m.Inc, m.Seq
			f.publishLag()
			f.publishWatermark()
		default:
			return fmt.Errorf("repl: unexpected %v from leader", m.Kind)
		}
	}
}

// applyBatch makes one streamed batch durable and visible, in that order:
// append to the local WAL at the leader's commit timestamps, flush, replay
// into the engine, persist the cursor, publish the watermark. A crash
// between any two steps re-applies a suffix on restart — harmless, because
// replay is an ordered idempotent upsert and the cursor is never ahead of
// the local log.
func (f *Follower) applyBatch(m *wire.ReplMsg) error {
	start := time.Now()
	recs := f.recsBuf[:0]
	var bytes int
	var maxTS uint64
	for i := range m.Recs {
		r := &m.Recs[i]
		// Overlap from a conservative leader resume: already applied.
		if m.Inc == f.pos.Inc && r.Seq <= f.pos.Seq {
			continue
		}
		f.h.AppendAt(r.TS, r.Data)
		recs = append(recs, wal.Record{TS: r.TS, H: int(r.H), Seq: r.HSeq, Data: r.Data})
		bytes += len(r.Data)
		if r.TS > maxTS {
			maxTS = r.TS
		}
	}
	f.recsBuf = recs[:0]
	if len(recs) == 0 {
		return nil
	}
	if _, err := f.cfg.Log.Flush(); err != nil {
		return fmt.Errorf("repl: local wal flush: %w", err)
	}
	if _, err := server.Replay(f.cfg.DB, recs); err != nil {
		return fmt.Errorf("repl: apply: %w", err)
	}
	f.pos = Position{Inc: m.Inc, Seq: m.Recs[len(m.Recs)-1].Seq, Epoch: f.epoch}
	f.publish()
	if err := f.persistPos(); err != nil {
		return err
	}
	if st := f.cfg.State; st != nil {
		st.NoteApplied(len(recs), bytes, maxTS)
	}
	f.publishWatermark()
	if t := f.cfg.Telemetry; t != nil {
		t.ObserveReplApply(time.Since(start))
	}
	// Apply spans stamp the point where the record is both durable locally
	// and visible to reads — Dur covers the whole batch's append+flush+
	// replay, so per-record cost attribution stays honest about batching.
	if ring := f.cfg.Spans; ring != nil {
		var now, unc uint64
		for i := range m.Recs {
			r := &m.Recs[i]
			if r.Trace == 0 {
				continue
			}
			if now == 0 {
				now, unc = ring.Now()
			}
			ring.Record(span.Span{Trace: span.TraceID(r.Trace), Stage: span.StageApply,
				TS: now, Unc: unc, Dur: uint64(time.Since(start)), Lane: -1})
		}
	}
	return nil
}

// persistPos writes the cursor sidecar atomically (temp + fsync + rename).
// A lost cursor only costs a resend, but the epoch it carries feeds the
// bootstrap epoch max — fsyncing before the rename keeps a power failure
// from installing a torn file in place of one that recorded a newer regime.
func (f *Follower) persistPos() error {
	if f.cfg.StateFile == "" {
		return nil
	}
	data, err := json.Marshal(f.pos)
	if err != nil {
		return err
	}
	f.posBuf = append(data, '\n')
	tmp := f.cfg.StateFile + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(f.posBuf); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, f.cfg.StateFile); err != nil {
		return err
	}
	// Renames are metadata; sync the directory so the cursor survives a
	// machine crash as reliably as the log it points into.
	if dir, err := os.Open(filepath.Dir(f.cfg.StateFile)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// publishLag posts how far the apply cursor trails the leader's advertised
// tail. Catching up on an older incarnation counts as the full tail.
func (f *Follower) publishLag() {
	st := f.cfg.State
	if st == nil || f.leaderInc == 0 {
		return
	}
	switch {
	case f.pos.Inc == f.leaderInc && f.pos.Seq >= f.leaderTail:
		st.SetLag(0)
	case f.pos.Inc == f.leaderInc:
		st.SetLag(f.leaderTail - f.pos.Seq)
	default:
		st.SetLag(f.leaderTail)
	}
}

// publishWatermark recomputes W = appliedTS − max(own boundary, leader
// boundary) and publishes it. The scoreboard keeps W monotone, so a
// transient widening of either uncertainty window narrows future advances
// without retracting reads already allowed.
func (f *Follower) publishWatermark() {
	st := f.cfg.State
	if st == nil {
		return
	}
	eff := f.leaderBoundary
	if f.cfg.Boundary != nil {
		if own := f.cfg.Boundary(); own > eff {
			eff = own
		}
	}
	applied := st.AppliedTS()
	if applied > eff {
		st.SetWatermark(applied - eff)
	}
}

// newFrameReader wraps a socket for wire frame reads.
func newFrameReader(nc net.Conn) wire.FrameReader {
	return bufio.NewReaderSize(nc, 64<<10)
}
