package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"ordo/internal/db"
	"ordo/internal/hist"
	"ordo/internal/telemetry/span"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// errWALClosed reports a commit racing server shutdown: the flusher exited
// before the batch's timestamp became durable.
var errWALClosed = errors.New("server: wal closed")

// errReplAckTimeout reports a replication-gated write whose followers did
// not acknowledge the covering flush within Config.ReplAckBound. The write
// is locally durable but cannot be acked as committed: under failover, an
// ack the followers never saw could be lost by the very promotion the gate
// exists to survive. It wraps wire.ErrUncertain so the connection layer
// answers UNCERTAIN — an ambiguous, retryable outcome — rather than ERR,
// which clients treat as a definitive rejection.
var errReplAckTimeout = fmt.Errorf("server: follower ack timeout: %w", wire.ErrUncertain)

// replAckPoll is how often a replication-gated waiter rechecks its
// deadline while parked on the condition variable.
const replAckPoll = 25 * time.Millisecond

// groupCommitter sits between committed engine transactions and the
// write-ahead log: it drives wal.Log.Flush from one flusher goroutine and
// lets connection workers block until a flush has covered their own append
// (DESIGN.md §10).
//
// A committed batch's write-set is encoded as one redo record, appended to
// the connection's WAL handle at the engine's own commit timestamp (so
// replay order matches commit order machine-wide), and the responses are
// withheld until a flush covers that append. Many connections' commits
// ride one flush: while a flush's fsync is in flight, appends accumulate
// and the next flush covers them all — group commit emerges from the
// device latency itself, with no batching timer.
//
// Durability is tracked per append, not by timestamp. append assigns each
// record a dense sequence number under gc.mu strictly after the record
// lands in its handle buffer, and flushOnce snapshots the latest assigned
// sequence before invoking Flush — so "durableSeq covers my seq" proves my
// record was in a buffer when a successful flush drained them. A timestamp
// high-water mark cannot prove that: a worker descheduled between engine
// commit (cts=T) and its append would see the horizon pass T on the back
// of other connections' commits and ack while its record was still
// buffered, losing an acknowledged write on crash (same-handle timestamp
// ties from AppendAt clamping open the same hole).
//
// Device failure is sticky (see wal.FileDevice: after a failed fsync the
// kernel may have dropped dirty pages, so nothing past it can be trusted).
// The committer refuses further appends, every waiter gets the error, and
// the connection layer answers ERR for unacknowledged writes while serving
// reads from the intact in-memory engine.
type groupCommitter struct {
	srv *Server
	log *wal.Log

	mu         sync.Mutex
	cond       *sync.Cond
	appendSeq  uint64 // last sequence assigned to a buffered append
	durableSeq uint64 // appends with seq <= durableSeq are on the device
	dirty      bool   // appends pending since the last flush
	err        error  // sticky device failure
	closing    bool   // closeAndWait ran; no further appends
	closed     bool   // flusher exited

	// Replication-ack gate (Config.ReplAckBound > 0). flushLSN is the
	// log's durable tail LSN after the last successful flush; replAcked is
	// the highest tail LSN a current-incarnation follower has durably
	// acknowledged (or the tail itself while no follower is subscribed —
	// the repl source waives the gate then). A gated waiter's own record
	// is covered by the flush that released it, so replAcked ≥ that
	// flush's tail proves a follower holds the record.
	replAckBound time.Duration
	flushLSN     uint64
	replAcked    uint64

	// Traced appends awaiting their covering flush: flushOnce drains the
	// entries a successful flush covered into fsync spans. Fixed capacity;
	// overflow drops the span (never blocks or allocates on the commit
	// path) — at any sane sampling rate the pending set is tiny because a
	// flush drains it every cycle.
	pendTraced [64]tracedAppend
	nTraced    int

	done      chan struct{}
	closeOnce sync.Once

	// syncHist records non-empty flush durations (append-to-durable,
	// dominated by fsync) for the wal_sync_ns_p99 stat. Its own lock keeps
	// Snapshot() off the commit path's mutex.
	histMu   sync.Mutex
	syncHist hist.H
}

func newGroupCommitter(s *Server, log *wal.Log) *groupCommitter {
	gc := &groupCommitter{srv: s, log: log, done: make(chan struct{}), replAckBound: s.cfg.ReplAckBound}
	gc.cond = sync.NewCond(&gc.mu)
	go gc.flushLoop()
	return gc
}

// failed returns the sticky device error, if any. Connection workers check
// it before running a write transaction so a dead device degrades to
// reads-only serving instead of committing writes that can never be
// acknowledged.
func (gc *groupCommitter) failed() error {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.err
}

// commit appends one redo record at the engine commit timestamp and blocks
// until a flush has covered it. It returns the timestamp the record was
// actually logged at (AppendAt may clamp cts up to the handle watermark) —
// the durability token a write ack carries so a client can later demand
// read-your-writes from a replica. Any error means the write must not be
// acknowledged.
func (gc *groupCommitter) commit(h *wal.Handle, cts uint64, redo []byte) (uint64, error) {
	return gc.commitTrace(h, cts, redo, 0)
}

// commitTrace is commit with a sampled trace ID stamped on the record.
func (gc *groupCommitter) commitTrace(h *wal.Handle, cts uint64, redo []byte, trace uint64) (uint64, error) {
	seq, ts, err := gc.appendTrace(h, cts, redo, trace)
	if err != nil {
		return 0, err
	}
	return ts, gc.wait(seq)
}

// append buffers one redo record at the engine commit timestamp (the
// handle may clamp cts up to its watermark; the recorded timestamp is the
// replay order) and wakes the flusher. It returns the record's durability
// sequence, which is what wait must cover — assigned only after the record
// is in its handle buffer, so a flush draining after the assignment is
// guaranteed to carry it — and the recorded timestamp.
func (gc *groupCommitter) append(h *wal.Handle, cts uint64, redo []byte) (uint64, uint64, error) {
	return gc.appendTrace(h, cts, redo, 0)
}

// tracedAppend pairs a durability sequence with the trace ID riding it.
type tracedAppend struct{ seq, trace uint64 }

// appendTrace is append with a sampled trace ID: the record carries it to
// the replication source, and the covering flush emits this trace's fsync
// span.
func (gc *groupCommitter) appendTrace(h *wal.Handle, cts uint64, redo []byte, trace uint64) (uint64, uint64, error) {
	gc.mu.Lock()
	if gc.err != nil {
		err := gc.err
		gc.mu.Unlock()
		return 0, 0, err
	}
	if gc.closing {
		gc.mu.Unlock()
		return 0, 0, errWALClosed
	}
	gc.mu.Unlock()
	ts := h.AppendAtTrace(cts, redo, trace)
	gc.mu.Lock()
	gc.appendSeq++
	seq := gc.appendSeq
	gc.dirty = true
	if trace != 0 && gc.nTraced < len(gc.pendTraced) {
		gc.pendTraced[gc.nTraced] = tracedAppend{seq, trace}
		gc.nTraced++
	}
	gc.mu.Unlock()
	gc.cond.Broadcast()
	return seq, ts, nil
}

// wait blocks until the durable sequence reaches seq, the device fails,
// or the flusher shuts down. With the replication-ack gate enabled it then
// additionally waits — bounded by replAckBound — for a follower to
// acknowledge the flush that covered the append.
func (gc *groupCommitter) wait(seq uint64) error {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	for gc.err == nil && gc.durableSeq < seq && !gc.closed {
		gc.cond.Wait()
	}
	switch {
	case gc.durableSeq >= seq:
	case gc.err != nil:
		return gc.err
	default:
		return errWALClosed
	}
	if gc.replAckBound <= 0 {
		return nil
	}
	// The record is durable, so some completed flush covered it; that
	// flush's tail is ≤ the current flushLSN, making flushLSN a
	// (conservative) ack target that provably includes the record.
	target := gc.flushLSN
	if gc.replAcked >= target {
		return nil
	}
	deadline := time.Now().Add(gc.replAckBound)
	for gc.err == nil && !gc.closed && gc.replAcked < target {
		if !time.Now().Before(deadline) {
			return errReplAckTimeout
		}
		// sync.Cond has no timed wait; a short timer re-broadcast bounds
		// how long a waiter can miss its deadline.
		t := time.AfterFunc(replAckPoll, gc.cond.Broadcast)
		gc.cond.Wait()
		t.Stop()
	}
	switch {
	case gc.replAcked >= target:
		return nil
	case gc.err != nil:
		return gc.err
	default:
		return errWALClosed
	}
}

// noteReplAck advances the follower-acknowledged tail and releases gated
// waiters. Called by the repl source on every follower WALACK for the
// current incarnation, and with the flush tail itself while no follower is
// subscribed.
func (gc *groupCommitter) noteReplAck(seq uint64) {
	gc.mu.Lock()
	advanced := seq > gc.replAcked
	if advanced {
		gc.replAcked = seq
	}
	gc.mu.Unlock()
	if advanced {
		gc.cond.Broadcast()
	}
}

// flushLoop is the single flusher goroutine: it waits for dirty appends,
// flushes, advances the durable sequence, and wakes waiters. After
// closeAndWait it performs one final flush and exits.
func (gc *groupCommitter) flushLoop() {
	defer close(gc.done)
	for {
		gc.mu.Lock()
		for !gc.dirty && !gc.closing {
			gc.cond.Wait()
		}
		closing := gc.closing
		gc.dirty = false
		gc.mu.Unlock()

		gc.flushOnce()

		if closing {
			gc.mu.Lock()
			gc.closed = true
			gc.mu.Unlock()
			gc.cond.Broadcast()
			return
		}
	}
}

// flushOnce runs one Log.Flush, folding the outcome into the durable
// sequence, metrics, and the sticky error. The sequence snapshot must be
// taken before Flush is called: every append whose seq it covers had its
// record buffered before the snapshot, so Log.Flush's group-commit
// contract (every Append that returned before Flush began is persisted
// when it returns) makes the whole prefix durable on success.
func (gc *groupCommitter) flushOnce() {
	gc.mu.Lock()
	if gc.err != nil {
		gc.mu.Unlock()
		return // dead device: waiters were already woken with the error
	}
	upTo := gc.appendSeq
	gc.mu.Unlock()

	before := gc.log.Flushed()
	start := time.Now()
	_, err := gc.log.Flush()
	elapsed := time.Since(start)

	if err == nil {
		if delta := gc.log.Flushed() - before; delta > 0 {
			gc.srv.m.walFlushes.Add(1)
			gc.srv.m.walRecords.Add(delta)
			gc.histMu.Lock()
			gc.syncHist.RecordDuration(elapsed)
			gc.histMu.Unlock()
		}
	}

	// Traces whose appends this flush covered, drained under gc.mu but
	// recorded after release so the span ring's lock never nests inside it.
	var fsynced [64]uint64
	nFsynced := 0

	gc.mu.Lock()
	if err != nil {
		gc.err = err
		gc.srv.m.walDeviceErrors.Add(1)
		gc.srv.logf("server: wal device failed, degrading to reads-only: %v", err)
	} else {
		if upTo > gc.durableSeq {
			gc.durableSeq = upTo
		}
		if tail := gc.log.Flushed(); tail > gc.flushLSN {
			gc.flushLSN = tail
		}
		kept := 0
		for i := 0; i < gc.nTraced; i++ {
			e := gc.pendTraced[i]
			if e.seq <= upTo {
				fsynced[nFsynced] = e.trace
				nFsynced++
			} else {
				gc.pendTraced[kept] = e
				kept++
			}
		}
		gc.nTraced = kept
	}
	gc.mu.Unlock()
	gc.cond.Broadcast()

	if nFsynced > 0 {
		if ring := gc.srv.spanRing(); ring != nil {
			now, unc := ring.Now()
			for i := 0; i < nFsynced; i++ {
				ring.Record(span.Span{Trace: span.TraceID(fsynced[i]), Stage: span.StageFsync,
					TS: now, Unc: unc, Dur: uint64(elapsed), Lane: -1})
			}
		}
	}
}

// syncP99 returns the p99 of non-empty flush durations in nanoseconds.
func (gc *groupCommitter) syncP99() uint64 {
	gc.histMu.Lock()
	defer gc.histMu.Unlock()
	if gc.syncHist.Count() == 0 {
		return 0
	}
	return gc.syncHist.Quantile(0.99)
}

// closeAndWait forces a final flush and stops the flusher. Call it only
// after every connection has drained (Shutdown's ordering), so no appends
// race the close.
func (gc *groupCommitter) closeAndWait() {
	gc.closeOnce.Do(func() {
		gc.mu.Lock()
		gc.closing = true
		gc.mu.Unlock()
		gc.cond.Broadcast()
		<-gc.done
	})
}

// maxRedoOps bounds a decoded redo record's op count; a committed run is at
// most MaxBatch simple ops or one TXN's wire.MaxTxnOps, both far below it.
const maxRedoOps = 1 << 20

// AppendRedo flattens a committed run's write-set into one redo payload
// appended to dst: a uvarint op count, then each op as a
// uvarint-length-prefixed request encoding. Reusing the wire codec means
// the redo format inherits its validation and fuzz coverage; appending to a
// caller-owned buffer means the group-commit path encodes every record into
// scratch it already owns. Each op's length prefix is reserved at maximum
// varint width, the op encoded in place, and the prefix backfilled with the
// payload shifted down — one buffer, no per-op staging allocation.
func AppendRedo(dst []byte, ops []*wire.Request) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for _, op := range ops {
		base := len(dst)
		const reserve = binary.MaxVarintLen32
		for i := 0; i < reserve; i++ {
			dst = append(dst, 0)
		}
		p, err := wire.AppendRequest(dst, op)
		if err != nil {
			return dst[:0], err
		}
		dst = p
		n := len(dst) - base - reserve
		w := binary.PutUvarint(dst[base:], uint64(n))
		if w < reserve {
			copy(dst[base+w:], dst[base+reserve:])
			dst = dst[:base+w+n]
		}
	}
	return dst, nil
}

// DecodeRedo parses one redo payload back into its write-set.
func DecodeRedo(data []byte) ([]wire.Request, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, errors.New("server: redo: bad op count")
	}
	data = data[k:]
	if n > maxRedoOps || n > uint64(len(data)) {
		return nil, fmt.Errorf("server: redo: implausible op count %d", n)
	}
	ops := make([]wire.Request, 0, n)
	for i := uint64(0); i < n; i++ {
		sz, k := binary.Uvarint(data)
		if k <= 0 || sz > uint64(len(data)-k) {
			return nil, fmt.Errorf("server: redo: op %d: bad length", i)
		}
		op, err := wire.DecodeRequest(data[k : k+int(sz)])
		if err != nil {
			return nil, fmt.Errorf("server: redo: op %d: %w", i, err)
		}
		ops = append(ops, op)
		data = data[k+int(sz):]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("server: redo: %d trailing bytes", len(data))
	}
	return ops, nil
}

// ReplayStats summarizes one startup replay.
type ReplayStats struct {
	// Records is the redo records applied.
	Records int
	// Ops is the total write ops inside them.
	Ops int
	// Anomalies counts ops whose expected engine outcome did not hold (a
	// PUT on a missing row, an INSERT over an existing one, a DELETE of a
	// missing row). Replay applies them as upserts so it is idempotent, but
	// a non-zero count on a replay into an empty engine means the log and
	// the acknowledged history disagree — worth surfacing.
	Anomalies int
}

// Replay applies recovered redo records to an engine in log order. The
// records must already be the recovery-canonical sequence (wal.Recover's
// output: deduped, timestamp-ordered, verified). Each record replays as
// one transaction, matching the atomicity the original commit had.
func Replay(d db.DB, recs []wal.Record) (ReplayStats, error) {
	var st ReplayStats
	if len(recs) == 0 {
		return st, nil
	}
	sess := d.NewSession()
	for i := range recs {
		r := &recs[i]
		ops, err := DecodeRedo(r.Data)
		if err != nil {
			return st, fmt.Errorf("server: replay LSN %d: %w", r.LSN, err)
		}
		err = db.RunWithRetry(sess, DefaultMaxRetries, func(tx db.Tx) error {
			for j := range ops {
				if err := replayOp(tx, &ops[j], &st); err != nil {
					return fmt.Errorf("op %d (%v): %w", j, ops[j].Op, err)
				}
			}
			return nil
		})
		if err != nil {
			return st, fmt.Errorf("server: replay LSN %d: %w", r.LSN, err)
		}
		st.Records++
		st.Ops += len(ops)
	}
	return st, nil
}

// replayOp applies one logged write as an idempotent upsert. The
// insert-vs-update decision is made by reading first rather than by
// catching errors, because engines may defer duplicate detection to commit
// time (OCC buffers inserts); Tx reads see the transaction's own buffered
// writes, so in-record sequences (insert then put of one key) still
// dispatch correctly. Row-level surprises are tolerated (and counted):
// replay must converge on the logged state even if a previous partial
// replay already applied a prefix.
func replayOp(tx db.Tx, op *wire.Request, st *ReplayStats) error {
	table, key := int(op.Table), op.Key
	_, rerr := tx.Read(table, key)
	exists := rerr == nil
	if rerr != nil && !errors.Is(rerr, db.ErrNotFound) {
		return rerr
	}
	switch op.Op {
	case wire.OpPut:
		if !exists {
			st.Anomalies++
			return tx.Insert(table, key, op.Vals)
		}
		return tx.Update(table, key, op.Vals)
	case wire.OpInsert:
		if exists {
			st.Anomalies++
			return tx.Update(table, key, op.Vals)
		}
		return tx.Insert(table, key, op.Vals)
	case wire.OpDelete:
		if !exists {
			st.Anomalies++
			return nil
		}
		return tx.Delete(table, key)
	}
	return fmt.Errorf("server: replay: unexpected op %v in redo record", op.Op)
}
