package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"ordo/internal/wire"
)

// TestOversizeFrameDesyncFatal models the hostile client from the frame
// codec's threat model: an oversize length prefix is consumed but its
// payload is not, so the bytes that follow — here a perfectly well-formed
// PUT frame — sit at a desynchronized stream offset. If the server resumed
// reading it would execute that PUT as if the client had sent it. The
// connection must instead be evicted: the op before the bad header answers
// normally, the fault answers one ERR, the connection closes, and the PUT
// never reaches the engine.
func TestOversizeFrameDesyncFatal(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	f := &fakeDB{}
	srv, ln, serveDone := startRawServer(t, Config{DB: f})

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	var blob bytes.Buffer
	get, err := wire.AppendRequest(nil, &wire.Request{Op: wire.OpGet, Key: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(&blob, get); err != nil {
		t.Fatal(err)
	}
	// The oversize header: length > MaxFrame, no payload behind it.
	var hdr [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(wire.MaxFrame)+1)
	blob.Write(hdr[:n])
	// The smuggled op: a valid PUT frame at the desynchronized offset.
	put, err := wire.AppendRequest(nil, &wire.Request{Op: wire.OpPut, Key: 99, Vals: []uint64{7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(&blob, put); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(blob.Bytes()); err != nil {
		t.Fatal(err)
	}

	c := wire.NewConn(nc)
	r, err := c.ReadResponse()
	if err != nil {
		t.Fatalf("valid op before the bad header: %v", err)
	}
	if r.Status != wire.StatusOK {
		t.Fatalf("valid op answered %v, want OK", r.Status)
	}
	r, err = c.ReadResponse()
	if err != nil {
		t.Fatalf("ERR response must be flushed before close, got %v", err)
	}
	if r.Status != wire.StatusErr {
		t.Fatalf("oversize frame answered %v, want ERR", r.Status)
	}
	if _, err := c.ReadResponse(); !errors.Is(err, io.EOF) {
		t.Fatalf("connection must close after oversize frame, got %v", err)
	}

	snap := srv.Snapshot()
	if snap.ProtoErrs != 1 {
		t.Fatalf("protoErrs=%d, want 1", snap.ProtoErrs)
	}
	if snap.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", snap.Evictions)
	}
	if snap.Puts != 0 {
		t.Fatalf("smuggled PUT executed: puts=%d, want 0", snap.Puts)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestAppendRedoWideLengths crosses the one-byte/two-byte length-varint
// boundary the in-place backfill must handle: a 200-column row's encoding
// is longer than 127 bytes, so its prefix occupies two bytes and the
// payload shifts by three.
func TestAppendRedoWideLengths(t *testing.T) {
	wide := make([]uint64, 200)
	for i := range wide {
		wide[i] = uint64(i * 3)
	}
	ops := []*wire.Request{
		{Op: wire.OpPut, Table: 1, Key: 42, Vals: wide},
		{Op: wire.OpDelete, Table: 0, Key: 7},
		{Op: wire.OpInsert, Table: 2, Key: 9, Vals: []uint64{1}},
	}
	redo, err := AppendRedo(nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRedo(redo)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if !reflect.DeepEqual(got[i].Vals, ops[i].Vals) || got[i].Op != ops[i].Op ||
			got[i].Key != ops[i].Key || got[i].Table != ops[i].Table {
			t.Fatalf("op %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], *ops[i])
		}
	}
}

// TestZeroAllocAppendRedo gates the group-commit encode path: with a
// caller-owned buffer, flattening a run's write-set must not allocate.
func TestZeroAllocAppendRedo(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	ops := []*wire.Request{
		{Op: wire.OpPut, Table: 0, Key: 1, Vals: []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
		{Op: wire.OpInsert, Table: 1, Key: 2, Vals: []uint64{11, 12}},
		{Op: wire.OpDelete, Table: 0, Key: 3},
	}
	var buf []byte
	allocs := testing.AllocsPerRun(1000, func() {
		p, err := AppendRedo(buf[:0], ops)
		if err != nil {
			t.Fatal(err)
		}
		buf = p
	})
	if allocs != 0 {
		t.Fatalf("redo encode: %v allocs/op, want 0", allocs)
	}
}
