//go:build !race

package server

// raceEnabled reports whether the race detector instruments this build;
// allocation-count gates skip under it.
const raceEnabled = false
