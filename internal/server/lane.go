package server

import (
	"fmt"
	"runtime/debug"

	"ordo/internal/db"
	"ordo/internal/shard"
	"ordo/internal/telemetry/span"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// laneRunner is the server-side policy for one shard lane: it owns the
// lane's engine session and WAL append handle, and executes the batches
// the lane goroutine drains from connection rings. The session is touched
// only by the lane goroutine, matching db.Session's single-goroutine
// contract — the single-writer discipline that keeps a partition's writes
// free of engine-level conflicts between lanes.
//
// Durability stays asynchronous here: the runner appends a batch's redo
// record (getting a group-commit sequence) but never waits for the flush —
// the submitting connection worker waits, so a slow fsync stalls one
// connection's pipeline, not the whole partition.
type laneRunner struct {
	srv  *Server
	id   int
	sess db.Session
	// wh is the lane's WAL append buffer in durable mode (nil otherwise);
	// closed by Server.closeLanes after the lane goroutine exits.
	wh *wal.Handle

	// Lane-goroutine-owned scratch, reused across batches.
	redoBuf   []byte
	writePtrs []*wire.Request

	// Session-counter baselines for delta-flushing into server metrics.
	lastCommits, lastAborts uint64
	lastCmps, lastUncertain uint64
}

// exec is the lane's shard.Exec callback. It returns the engine commit
// timestamp to publish on the lane's ordering board; the lane publishes it
// before completing the batch, so publication always precedes the ack.
func (r *laneRunner) exec(b *shard.Batch) (publish uint64) {
	defer func() {
		if p := recover(); p != nil {
			r.srv.m.panics.Add(1)
			r.srv.tracer().Record("panic", fmt.Sprintf("lane %d: %v", r.id, p), 0)
			r.srv.logf("server: lane %d: panic: %v\n%s", r.id, p, debug.Stack())
			// Answer ERR for every slot the batch carries so the stream
			// stays ordered, then replace the poisoned session: the lane
			// must keep serving every other connection's partition.
			kind := wire.RespEmpty
			if b.Kind == shard.Txn {
				kind = wire.RespBatch
			}
			for i := range b.Resps {
				*b.Resps[i] = wire.Response{Kind: kind, Status: wire.StatusErr}
			}
			b.Seq, b.WalWrites, b.Err = 0, 0, nil
			b.Panicked = true
			r.sess = r.srv.cfg.DB.NewSession()
			r.lastCommits, r.lastAborts, r.lastCmps, r.lastUncertain = 0, 0, 0, 0
			publish = 0
		}
	}()
	// Traced batches time the lane's execution with the span clock; the
	// decision was made by the submitting worker, so untraced batches pay
	// only the nil/zero check.
	ring := r.srv.spanRing()
	var laneStart, laneUnc uint64
	traced := ring != nil && b.Trace != 0
	if traced {
		laneStart, laneUnc = ring.Now()
	}
	switch b.Kind {
	case shard.Ops:
		r.execOps(b)
	case shard.Txn:
		r.execTxn(b)
	case shard.TxnRead:
		r.execTxnRead(b)
	}
	r.flushSessionStats()
	var cts uint64
	if cs, ok := r.sess.(db.CommitTS); ok {
		cts = cs.LastCommitTS()
	}
	if traced {
		now, unc := ring.Now()
		var dur uint64
		if now > laneStart {
			dur = now - laneStart
		}
		ring.Record(span.Span{Trace: span.TraceID(b.Trace), Stage: span.StageLane,
			TS: laneStart, Unc: laneUnc, Dur: dur, Lane: int32(r.id)})
		if cts != 0 {
			// The commit span sits at the commit timestamp itself when the
			// node can convert engine ticks to the span clock's scale.
			ts := ring.ConvTicks(cts)
			if ts == 0 {
				ts = now
			}
			ring.Record(span.Span{Trace: span.TraceID(b.Trace), Stage: span.StageCommit,
				TS: ts, Unc: unc, Lane: int32(r.id)})
		}
	}
	return cts
}

// execOps runs one lane's slice of a pipelined simple-op run as a single
// engine transaction — the batching that amortizes timestamp allocation,
// now also across connections that routed into the same lane. The commit/
// degrade semantics mirror the pre-shard per-connection path exactly: a
// batch that cannot commit falls back to per-op transactions so every op
// gets an attributable status, counted under degraded rather than batches.
func (r *laneRunner) execOps(b *shard.Batch) {
	srv := r.srv
	reqs, resps := b.Reqs, b.Resps
	err := db.RunWithRetry(r.sess, srv.cfg.MaxRetries, func(tx db.Tx) error {
		for i := range reqs {
			resp, err := srv.execOp(tx, reqs[i])
			if err != nil {
				return err
			}
			*resps[i] = resp
		}
		return nil
	})
	if err == nil {
		r.walAppendRun(b)
		srv.m.batches.Add(1)
		srv.m.batchedOps.Add(uint64(len(reqs)))
		return
	}
	srv.m.degraded.Add(1)
	if len(reqs) == 1 {
		*resps[0] = wire.Response{Kind: wire.RespEmpty, Status: wire.StatusOf(err)}
		return
	}
	// Degraded path: per-op transactions for status attribution. Each
	// committed write appends its own redo record; the worker's single
	// durability wait on the batch's last sequence covers them all.
	for i := range reqs {
		req := reqs[i]
		err := db.RunWithRetry(r.sess, srv.cfg.MaxRetries, func(tx db.Tx) error {
			resp, err := srv.execOp(tx, req)
			if err != nil {
				return err
			}
			*resps[i] = resp
			return nil
		})
		if err != nil {
			*resps[i] = wire.Response{Kind: wire.RespEmpty, Status: wire.StatusOf(err)}
			continue
		}
		if r.wh != nil && isWrite(req.Op) && resps[i].Status == wire.StatusOK {
			r.writePtrs = append(r.writePtrs[:0], req)
			seq, ts, aerr := r.walAppend(r.writePtrs, b.Trace)
			if aerr != nil {
				srv.m.walUnackedWrites.Add(1)
				*resps[i] = wire.Response{Kind: wire.RespEmpty, Status: wire.StatusErr}
				continue
			}
			resps[i].TS = ts // provisional ack token; the worker erases it if the wait fails
			b.Seq = seq
			b.WalWrites++
		}
	}
}

// execTxn runs a TXN frame whose keys all route to this lane, atomically
// on the lane session. The response goes through *b.Resps[0]; provisional
// durability tokens ride the sub-responses and the worker downgrades the
// whole TXN to ERR if the group-commit wait fails (same all-or-nothing ack
// the pre-shard path had).
func (r *laneRunner) execTxn(b *shard.Batch) {
	srv := r.srv
	req, out := b.Reqs[0], b.Resps[0]
	resps := make([]wire.Response, len(req.Ops))
	err := db.RunWithRetry(r.sess, srv.cfg.MaxRetries, func(tx db.Tx) error {
		for i := range req.Ops {
			resp, err := srv.execOp(tx, &req.Ops[i])
			if err != nil {
				return err
			}
			resps[i] = resp
		}
		return nil
	})
	if err != nil {
		*out = wire.Response{Kind: wire.RespBatch, Status: wire.StatusOf(err)}
		return
	}
	if r.wh != nil {
		writes := r.writePtrs[:0]
		for i := range req.Ops {
			if isWrite(req.Ops[i].Op) && resps[i].Status == wire.StatusOK {
				writes = append(writes, &req.Ops[i])
			}
		}
		r.writePtrs = writes
		if len(writes) > 0 {
			seq, ts, aerr := r.walAppend(writes, b.Trace)
			if aerr != nil {
				srv.m.walUnackedWrites.Add(uint64(len(writes)))
				*out = wire.Response{Kind: wire.RespBatch, Status: wire.StatusErr}
				return
			}
			for i := range req.Ops {
				if isWrite(req.Ops[i].Op) && resps[i].Status == wire.StatusOK {
					resps[i].TS = ts
				}
			}
			b.Seq, b.WalWrites = seq, len(writes)
		}
	}
	*out = wire.Response{Kind: wire.RespBatch, Status: wire.StatusOK, Batch: resps}
}

// execTxnRead runs one lane's slice of a cross-shard read-only TXN as a
// single read-only engine transaction. Failures are batch-level (Err): the
// coordinator owns atomicity, so partial per-op statuses would be fiction.
func (r *laneRunner) execTxnRead(b *shard.Batch) {
	srv := r.srv
	b.Err = db.RunWithRetry(r.sess, srv.cfg.MaxRetries, func(tx db.Tx) error {
		for i := range b.Reqs {
			resp, err := srv.execOp(tx, b.Reqs[i])
			if err != nil {
				return err
			}
			*b.Resps[i] = resp
		}
		return nil
	})
}

// walAppendRun logs a committed batch's acked write-set as one redo record
// at the engine commit timestamp, without waiting for durability: the
// worker waits on b.Seq. Provisional ack tokens are stamped now; the
// worker erases them if its wait fails. An append failure (device already
// failed) flips the would-be-acked writes to ERR immediately.
func (r *laneRunner) walAppendRun(b *shard.Batch) {
	if r.wh == nil {
		return
	}
	reqs, resps := b.Reqs, b.Resps
	writes := r.writePtrs[:0]
	for i := range reqs {
		if isWrite(reqs[i].Op) && resps[i].Status == wire.StatusOK {
			writes = append(writes, reqs[i])
		}
	}
	r.writePtrs = writes
	if len(writes) == 0 {
		return
	}
	seq, ts, err := r.walAppend(writes, b.Trace)
	if err != nil {
		r.srv.m.walUnackedWrites.Add(uint64(len(writes)))
		for i := range reqs {
			if isWrite(reqs[i].Op) && resps[i].Status == wire.StatusOK {
				*resps[i] = wire.Response{Kind: wire.RespEmpty, Status: wire.StatusErr}
			}
		}
		return
	}
	for i := range reqs {
		if isWrite(reqs[i].Op) && resps[i].Status == wire.StatusOK {
			resps[i].TS = ts
		}
	}
	b.Seq, b.WalWrites = seq, len(writes)
}

// walAppend encodes one redo record for writes and appends it at the lane
// session's commit timestamp, returning the durability sequence and the
// logged timestamp. It never blocks on the device. A nonzero trace rides
// the record to the flusher and replication source, and emits the
// wal_append span here.
func (r *laneRunner) walAppend(writes []*wire.Request, trace uint64) (seq, ts uint64, err error) {
	redo, err := AppendRedo(r.redoBuf[:0], writes)
	if err != nil {
		return 0, 0, err
	}
	r.redoBuf = redo
	cts := r.sess.(db.CommitTS).LastCommitTS()
	seq, ts, err = r.srv.gc.appendTrace(r.wh, cts, redo, trace)
	if err == nil && trace != 0 {
		if ring := r.srv.spanRing(); ring != nil {
			now, unc := ring.Now()
			ring.Record(span.Span{Trace: span.TraceID(trace), Stage: span.StageWALAppend,
				TS: now, Unc: unc, Lane: int32(r.id)})
		}
	}
	return seq, ts, err
}

// flushSessionStats adds the lane session's counter deltas to server
// metrics. Only the lane goroutine calls it, so the plain session counters
// stay race-free.
func (r *laneRunner) flushSessionStats() {
	commits, aborts := r.sess.Stats()
	r.srv.m.commits.Add(commits - r.lastCommits)
	r.srv.m.aborts.Add(aborts - r.lastAborts)
	r.lastCommits, r.lastAborts = commits, aborts
	if ch, ok := r.sess.(db.ClockHealth); ok {
		cmps, unc := ch.ClockStats()
		r.srv.m.clockCmps.Add(cmps - r.lastCmps)
		r.srv.m.clockUncertain.Add(unc - r.lastUncertain)
		r.lastCmps, r.lastUncertain = cmps, unc
	}
}
