package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"ordo/internal/db"
	"ordo/internal/db/ycsb"
	"ordo/internal/telemetry"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// startAdmin boots an admin listener over srv on a loopback port and
// returns its base URL plus a close func.
func startAdmin(t *testing.T, srv *Server) (string, func()) {
	t.Helper()
	a, err := ServeAdmin("127.0.0.1:0", NewAdminHandler(srv))
	if err != nil {
		t.Fatal(err)
	}
	return "http://" + a.Addr().String(), func() {
		if err := a.Close(); err != nil {
			t.Errorf("admin close: %v", err)
		}
	}
}

// adminGet fetches one admin path and returns status code and body.
func adminGet(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminHealthz drives the /healthz contract: 200 with a well-formed
// JSON body while serving, then 503 with wal_degraded and the unacked
// write counted after the WAL device dies. The goroutine-leak guard wraps
// the whole lifecycle, admin listener included.
func TestAdminHealthz(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	engine, err := db.New(db.OCC, ycsb.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fd := &wal.FailingDevice{Inner: &wal.MemDevice{}, OK: 1}
	tel := NewTelemetry(nil, telemetry.NewTracer(64), 0)
	cfg := Config{DB: engine, Schema: ycsb.Schema(), WAL: wal.New(fd, nil), Telemetry: tel}
	ts, cleanup := startServer(t, cfg)
	defer cleanup()
	base, closeAdmin := startAdmin(t, ts.srv)
	defer closeAdmin()

	code, body := adminGet(t, base, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz while serving: %d, want 200\n%s", code, body)
	}
	var h healthzBody
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz body: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.WALDegraded || h.WALUnackedWrites != 0 {
		t.Fatalf("healthy body: %+v", h)
	}

	// First write rides the device's one good flush; the second commits in
	// memory but can never become durable — the sticky failure degrades the
	// server to reads-only.
	if r, err := ts.c.Do(&wire.Request{Op: wire.OpInsert, Key: 1, Vals: row(1)}); err != nil || r.Status != wire.StatusOK {
		t.Fatalf("first insert: %v %v", r.Status, err)
	}
	if r, err := ts.c.Do(&wire.Request{Op: wire.OpInsert, Key: 2, Vals: row(2)}); err != nil || r.Status != wire.StatusErr {
		t.Fatalf("insert on failed device: %v %v, want ERR", r.Status, err)
	}

	code, body = adminGet(t, base, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz degraded: %d, want 503\n%s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz degraded body: %v\n%s", err, body)
	}
	if h.Status != "degraded" || !h.WALDegraded || h.WALUnackedWrites != 1 {
		t.Fatalf("degraded body: %+v, want status=degraded wal_degraded=true wal_unacked_writes=1", h)
	}

	// The scrape mirrors the degradation and the device-error trace exists.
	if _, body = adminGet(t, base, "/metrics"); !strings.Contains(body, "ordod_degraded 1") {
		t.Fatalf("/metrics missing ordod_degraded 1 after device failure")
	}
	if _, body = adminGet(t, base, "/trace"); !strings.Contains(body, "wal_device_error") {
		t.Fatalf("/trace missing wal_device_error event:\n%s", body)
	}
}

// TestAdminEndpointsUnderLoad is the scrape-vs-serving race test: pipelined
// clients hammer the engine while scrapers pull /metrics, /varz, and
// /trace. Run under -race this proves the scrape path takes consistent
// snapshots of the sharded histograms and atomic counters; the content
// checks prove the exposition carries the op-latency histograms with the
// counts the load actually produced.
func TestAdminEndpointsUnderLoad(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	tel := NewTelemetry(nil, telemetry.NewTracer(256), 0)
	cfg := newYCSBServer(t, db.OCC)
	cfg.Telemetry = tel
	ts, cleanup := startServer(t, cfg)
	defer cleanup()
	base, closeAdmin := startAdmin(t, ts.srv)
	defer closeAdmin()

	const (
		clients = 4
		opsPer  = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dialServer(t, ts.addr)
			defer c.CloseConn()
			for i := 0; i < opsPer; i++ {
				key := uint64(w*opsPer + i)
				if err := c.WriteRequest(&wire.Request{Op: wire.OpInsert, Key: key, Vals: row(i)}); err != nil {
					t.Errorf("client %d: write: %v", w, err)
					return
				}
				if err := c.WriteRequest(&wire.Request{Op: wire.OpGet, Key: key}); err != nil {
					t.Errorf("client %d: write: %v", w, err)
					return
				}
			}
			if err := c.Flush(); err != nil {
				t.Errorf("client %d: flush: %v", w, err)
				return
			}
			for i := 0; i < 2*opsPer; i++ {
				if _, err := c.ReadResponse(); err != nil {
					t.Errorf("client %d: read %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}

	// Scrapers race the load; every response must be complete and parseable.
	stop := make(chan struct{})
	var sg sync.WaitGroup
	for s := 0; s < 2; s++ {
		sg.Add(1)
		go func() {
			defer sg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, body := adminGet(t, base, "/metrics")
				if code != http.StatusOK {
					t.Errorf("/metrics: %d", code)
					return
				}
				checkExpositionShape(t, body)
				if code, body := adminGet(t, base, "/varz"); code != http.StatusOK || !json.Valid([]byte(body)) {
					t.Errorf("/varz: %d, valid JSON %v", code, json.Valid([]byte(body)))
					return
				}
				if code, body := adminGet(t, base, "/trace"); code != http.StatusOK || !json.Valid([]byte(body)) {
					t.Errorf("/trace: %d, valid JSON %v", code, json.Valid([]byte(body)))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	sg.Wait()
	if t.Failed() {
		return
	}

	// Post-load scrape: the histograms carry what the load produced.
	_, body := adminGet(t, base, "/metrics")
	wantSubstrings := []string{
		`ordod_op_latency_seconds_bucket{op="get",le="+Inf"}`,
		`ordod_op_latency_seconds_bucket{op="insert",le="+Inf"}`,
		"ordod_queue_wait_seconds_count",
		"ordod_batch_ops_count",
		"ordod_wal_sync_seconds_count 0", // registered, no WAL configured
		`ordod_ops_total{op="get"}`,
	}
	for _, want := range wantSubstrings {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var getCount uint64
	fmt.Sscanf(findLine(body, `ordod_op_latency_seconds_count{op="get"}`), "%d", &getCount)
	if want := uint64(clients * opsPer); getCount != want {
		t.Errorf("get latency count = %d, want %d", getCount, want)
	}

	// pprof rides the same mux.
	if code, _ := adminGet(t, base, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}
	if code, _ := adminGet(t, base, "/debug/pprof/profile?seconds=1"); code != http.StatusOK {
		t.Errorf("/debug/pprof/profile: %d", code)
	}
}

// dialServer dials the serving address and wraps it in a wire client.
func dialServer(t *testing.T, addr string) *testConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &testConn{Conn: wire.NewConn(nc), nc: nc}
}

// testConn pairs a wire.Conn with its socket so tests can close it.
type testConn struct {
	*wire.Conn
	nc net.Conn
}

func (c *testConn) CloseConn() { c.nc.Close() }

// checkExpositionShape asserts structural invariants any scrape must hold,
// even mid-load: every sample line belongs to a family that declared TYPE
// first, and histogram bucket counts are cumulative.
func checkExpositionShape(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	var lastBucket string
	var lastCum uint64
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && typed[b] {
				base = b
				break
			}
		}
		if !typed[base] {
			t.Fatalf("sample %q has no TYPE header", line)
		}
		// Cumulative check per bucket series: group by everything before le.
		if strings.HasSuffix(name, "_bucket") {
			series := line[:strings.Index(line, `le="`)]
			var v uint64
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v)
			if series == lastBucket && v < lastCum {
				t.Fatalf("bucket counts not cumulative at %q (%d after %d)", line, v, lastCum)
			}
			lastBucket, lastCum = series, v
		}
	}
}

// findLine returns the value field of the first exposition line starting
// with prefix, or "" when absent.
func findLine(body, prefix string) string {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line[strings.LastIndexByte(line, ' ')+1:]
		}
	}
	return ""
}

// TestAdminServerLeakFree boots and closes the admin listener with an
// in-flight request to prove Close waits for its goroutines.
func TestAdminServerLeakFree(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	cfg := newYCSBServer(t, db.OCC)
	cfg.Telemetry = NewTelemetry(nil, nil, 0)
	ts, cleanup := startServer(t, cfg)
	defer cleanup()
	base, closeAdmin := startAdmin(t, ts.srv)
	if code, _ := adminGet(t, base, "/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	closeAdmin()
	// The port is released: a second admin server can bind and serve.
	base2, closeAdmin2 := startAdmin(t, ts.srv)
	defer closeAdmin2()
	if code, _ := adminGet(t, base2, "/healthz"); code != http.StatusOK {
		t.Fatalf("second admin /healthz: %d", code)
	}
}
