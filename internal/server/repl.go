package server

import (
	"sync/atomic"
	"time"
)

// ReplRole is a server's position in a replication pair.
type ReplRole int32

// Replication roles.
const (
	// RoleNone is an unreplicated server.
	RoleNone ReplRole = iota
	// RoleLeader serves writes and streams its WAL to followers.
	RoleLeader
	// RoleFollower serves watermark-gated reads from a replayed WAL tail.
	RoleFollower
)

// String returns the role's display name.
func (r ReplRole) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleFollower:
		return "follower"
	}
	return "none"
}

// Defaults for ReplState's zero limits.
const (
	// DefaultLagBound is how stale a follower's leader contact may grow
	// before /healthz turns 503.
	DefaultLagBound = 5 * time.Second
	// DefaultMaxLagRecords is how many records a follower may trail the
	// leader's advertised tail before /healthz turns 503.
	DefaultMaxLagRecords = 1 << 16
)

// ReplState is the shared replication scoreboard between a Server and the
// repl subsystem that feeds it: the repl.Source (leader) or repl.Follower
// (follower) writes it, and the server's STATS responses, /varz snapshot,
// /healthz rule, watermark gate and telemetry gauges read it. All fields
// are atomics; every method is safe for concurrent use.
type ReplState struct {
	role   atomic.Int32 // ReplRole; atomic because failover promotes in place
	tickHz uint64       // invariant-clock frequency for tick→ns conversion; 0 = report raw ticks

	lagBound      time.Duration
	maxLagRecords uint64

	followers      atomic.Int64
	lagRecords     atomic.Uint64
	watermark      atomic.Uint64 // safe-read watermark, clock ticks
	appliedTS      atomic.Uint64 // highest commit timestamp applied (follower)
	appliedRecords atomic.Uint64
	appliedBytes   atomic.Uint64
	lastContact    atomic.Int64 // unix nanos of the last leader frame (follower)

	epoch      atomic.Uint64 // fencing epoch the node serves under
	promotions atomic.Uint64 // leadership takeovers this process performed
	fencings   atomic.Uint64 // stale-epoch frames/peers this process rejected
	reconnects atomic.Uint64 // follower reconnect attempts
	leaderAddr atomic.Value  // string: client-facing addr of the believed leader
}

// NewReplState builds a scoreboard for one server. tickHz is the invariant
// clock frequency (tsc.Frequency()); zero reports watermarks in raw ticks.
// lagBound ≤ 0 means DefaultLagBound; maxLagRecords 0 means
// DefaultMaxLagRecords. A follower counts as in contact at construction so
// a freshly booted replica has lagBound to reach its leader before the
// health endpoint starts failing.
func NewReplState(role ReplRole, tickHz uint64, lagBound time.Duration, maxLagRecords uint64) *ReplState {
	if lagBound <= 0 {
		lagBound = DefaultLagBound
	}
	if maxLagRecords == 0 {
		maxLagRecords = DefaultMaxLagRecords
	}
	st := &ReplState{tickHz: tickHz, lagBound: lagBound, maxLagRecords: maxLagRecords}
	st.role.Store(int32(role))
	st.lastContact.Store(time.Now().UnixNano())
	return st
}

// Role returns the server's replication role.
func (st *ReplState) Role() ReplRole { return ReplRole(st.role.Load()) }

// SetRole changes the server's replication role in place — the failover
// promotion path; everything that branches on Role observes the change on
// its next read.
func (st *ReplState) SetRole(role ReplRole) { st.role.Store(int32(role)) }

// SetEpoch publishes the fencing epoch the node serves under. Epochs only
// advance; a smaller value is ignored.
func (st *ReplState) SetEpoch(e uint64) {
	for {
		cur := st.epoch.Load()
		if e <= cur || st.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Epoch returns the fencing epoch.
func (st *ReplState) Epoch() uint64 { return st.epoch.Load() }

// NotePromotion counts a completed leadership takeover.
func (st *ReplState) NotePromotion() { st.promotions.Add(1) }

// Promotions returns the takeover count.
func (st *ReplState) Promotions() uint64 { return st.promotions.Load() }

// NoteFencing counts a stale-epoch rejection (either direction: a stale
// peer we refused, or a newer regime that refused us).
func (st *ReplState) NoteFencing() { st.fencings.Add(1) }

// Fencings returns the stale-epoch rejection count.
func (st *ReplState) Fencings() uint64 { return st.fencings.Load() }

// NoteReconnect counts one follower reconnect attempt.
func (st *ReplState) NoteReconnect() { st.reconnects.Add(1) }

// Reconnects returns the follower reconnect-attempt count.
func (st *ReplState) Reconnects() uint64 { return st.reconnects.Load() }

// SetLeaderAddr publishes the client-facing address of the node currently
// believed to lead — what a follower's NOT_LEADER rejections carry as the
// redirect. Empty means unknown (the write is refused without a hint).
func (st *ReplState) SetLeaderAddr(addr string) { st.leaderAddr.Store(addr) }

// LeaderAddr returns the believed leader's client-facing address.
func (st *ReplState) LeaderAddr() string {
	if v := st.leaderAddr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// AddFollowers adjusts the subscribed-follower count (leader side).
func (st *ReplState) AddFollowers(delta int64) { st.followers.Add(delta) }

// Followers returns the subscribed-follower count.
func (st *ReplState) Followers() int64 { return st.followers.Load() }

// SetLag records the current replication lag in records: on a leader the
// worst follower's unacknowledged backlog, on a follower its own distance
// behind the leader's advertised tail.
func (st *ReplState) SetLag(records uint64) { st.lagRecords.Store(records) }

// Lag returns the current replication lag in records.
func (st *ReplState) Lag() uint64 { return st.lagRecords.Load() }

// SetWatermark publishes the safe-read watermark in clock ticks. The
// watermark only advances; a smaller value is ignored so a transient
// widening of the uncertainty window cannot retract reads already allowed.
func (st *ReplState) SetWatermark(ticks uint64) {
	for {
		cur := st.watermark.Load()
		if ticks <= cur || st.watermark.CompareAndSwap(cur, ticks) {
			return
		}
	}
}

// Watermark returns the safe-read watermark in clock ticks.
func (st *ReplState) Watermark() uint64 { return st.watermark.Load() }

// WatermarkNS returns the watermark converted to nanoseconds, or the raw
// tick value when no clock frequency is known.
func (st *ReplState) WatermarkNS() uint64 {
	w := st.watermark.Load()
	if st.tickHz == 0 {
		return w
	}
	return uint64(float64(w) / float64(st.tickHz) * 1e9)
}

// NoteApplied records one applied batch on a follower: record and byte
// counts for the lag gauges, and the batch's highest commit timestamp.
func (st *ReplState) NoteApplied(records, bytes int, maxTS uint64) {
	st.appliedRecords.Add(uint64(records))
	st.appliedBytes.Add(uint64(bytes))
	for {
		cur := st.appliedTS.Load()
		if maxTS <= cur || st.appliedTS.CompareAndSwap(cur, maxTS) {
			return
		}
	}
}

// AppliedTS returns the highest applied commit timestamp.
func (st *ReplState) AppliedTS() uint64 { return st.appliedTS.Load() }

// AppliedRecords returns the total records applied.
func (st *ReplState) AppliedRecords() uint64 { return st.appliedRecords.Load() }

// AppliedBytes returns the total redo bytes applied.
func (st *ReplState) AppliedBytes() uint64 { return st.appliedBytes.Load() }

// NoteContact records a frame from the leader (follower side).
func (st *ReplState) NoteContact() { st.lastContact.Store(time.Now().UnixNano()) }

// ContactAge returns how long ago the leader was last heard from.
func (st *ReplState) ContactAge() time.Duration {
	return time.Duration(time.Now().UnixNano() - st.lastContact.Load())
}

// LagExceeded implements the follower /healthz rule: unhealthy when the
// apply lag passes the record bound or the leader has not been heard from
// within the lag bound — a dead leader must flip the replica's health so a
// load balancer stops preferring it (and an operator promotes). Always
// false for leaders and unreplicated servers.
func (st *ReplState) LagExceeded() bool {
	if st == nil || st.Role() != RoleFollower {
		return false
	}
	return st.lagRecords.Load() > st.maxLagRecords || st.ContactAge() > st.lagBound
}
