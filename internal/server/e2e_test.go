package server

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"ordo/internal/core"
	"ordo/internal/db"
	"ordo/internal/db/ycsb"
	"ordo/internal/wire"
)

// requireNoGoroutineLeak snapshots the goroutine count and returns a check
// to defer: it polls until the count returns to the baseline (background
// teardown is asynchronous) and fails with a full stack dump if goroutines
// are still alive after the grace period — a goleak-style guard for every
// teardown path in this package.
func requireNoGoroutineLeak(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Fatalf("goroutine leak: %d at start, %d after teardown\n%s", before, n, buf)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestEndToEnd drives ≥10k pipelined ops through real engines over TCP —
// once with logical timestamps (OCC) and once with Ordo hardware timestamps
// (OCC_ORDO) — and requires a clean protocol run: every op answers OK or
// CONFLICT (re-issued), never ERR or a decode/transport failure. For the
// Ordo run the server must also report nonzero clock comparisons, proving
// the timestamp path under test is actually the hardware-clock one.
func TestEndToEnd(t *testing.T) {
	for _, proto := range []db.Protocol{db.OCC, db.OCCOrdo} {
		t.Run(proto.String(), func(t *testing.T) {
			defer requireNoGoroutineLeak(t)()
			var ordo *core.Ordo
			if proto == db.OCCOrdo {
				// Single-vCPU CI boxes make calibration degenerate (one
				// core, boundary 0); construct the primitive directly with
				// a small nonzero boundary instead. Correctness only needs
				// the boundary to be an over-estimate per core pair, and on
				// one core any value is.
				ordo = core.New(core.Hardware, 1000)
			}
			engine, err := db.New(proto, ycsb.Schema(), ordo)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := New(Config{DB: engine, Schema: ycsb.Schema()})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			serveDone := make(chan error, 1)
			go func() { serveDone <- srv.Serve(ln) }()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					t.Errorf("shutdown: %v", err)
				}
				if err := <-serveDone; err != nil {
					t.Errorf("serve: %v", err)
				}
			}()

			const (
				clients = 4
				opsPer  = 3000 // 12k ops total
				records = 256  // small keyspace so OCC_ORDO sees real contention
				window  = 32   // pipeline depth
			)

			// Preload the keyspace on one connection.
			preload(t, ln.Addr().String(), records)

			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for cl := 0; cl < clients; cl++ {
				wg.Add(1)
				go func(cl int) {
					defer wg.Done()
					errs <- runClient(ln.Addr().String(), cl, opsPer, records, window)
				}(cl)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}

			snap := srv.Snapshot()
			if snap.Commits == 0 {
				t.Fatal("server committed nothing")
			}
			if snap.ProtoErrs != 0 {
				t.Fatalf("protocol errors: %d", snap.ProtoErrs)
			}
			if total := snap.Gets + snap.Puts; total < clients*opsPer {
				t.Fatalf("served %d simple ops, want ≥ %d", total, clients*opsPer)
			}
			if proto == db.OCCOrdo && snap.ClockCmps == 0 {
				t.Fatal("OCC_ORDO run recorded no hardware-clock comparisons")
			}
			t.Logf("%s: commits=%d aborts=%d batches=%d avg_batch=%.1f clock_cmps=%d uncertain=%d",
				proto, snap.Commits, snap.Aborts, snap.Batches, snap.AvgBatch,
				snap.ClockCmps, snap.ClockUncertain)
		})
	}
}

func preload(t *testing.T, addr string, records int) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	for k := 0; k < records; k++ {
		if err := c.WriteRequest(&wire.Request{Op: wire.OpInsert, Key: uint64(k), Vals: row(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < records; k++ {
		r, err := c.ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != wire.StatusOK {
			t.Fatalf("preload key %d: %v", k, r.Status)
		}
	}
}

// runClient issues ops 50/50 GET/PUT over a pipelined window, re-issuing
// ops that surface CONFLICT or BUSY (both are legitimate protocol answers;
// only ERR and transport failures fail the run).
func runClient(addr string, seed, ops, records, window int) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	c := wire.NewConn(nc)

	rng := uint64(seed)*2654435761 + 1
	next := func() uint64 {
		// xorshift64: deterministic per client, no shared state.
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	mkReq := func() wire.Request {
		k := next() % uint64(records)
		if next()&1 == 0 {
			return wire.Request{Op: wire.OpGet, Key: k}
		}
		return wire.Request{Op: wire.OpPut, Key: k, Vals: row(int(k))}
	}

	inFlight := make([]wire.Request, 0, window)
	send := func(r wire.Request) error {
		if err := c.WriteRequest(&r); err != nil {
			return err
		}
		inFlight = append(inFlight, r)
		return nil
	}

	done := 0
	issued := 0
	for done < ops {
		for len(inFlight) < window && issued < ops {
			if err := send(mkReq()); err != nil {
				return err
			}
			issued++
		}
		if err := c.Flush(); err != nil {
			return err
		}
		resp, err := c.ReadResponse()
		if err != nil {
			return fmt.Errorf("client %d after %d ops: %w", seed, done, err)
		}
		req := inFlight[0]
		inFlight = inFlight[1:]
		switch resp.Status {
		case wire.StatusOK:
			if req.Op == wire.OpGet && resp.Kind != wire.RespRow {
				return fmt.Errorf("client %d: GET answered %v", seed, resp.Kind)
			}
			done++
		case wire.StatusConflict, wire.StatusBusy:
			if err := send(req); err != nil { // re-issue, does not count
				return err
			}
		default:
			return fmt.Errorf("client %d: op %v status %v", seed, req.Op, resp.Status)
		}
	}
	return nil
}
