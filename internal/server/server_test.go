package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ordo/internal/db"
	"ordo/internal/db/ycsb"
	"ordo/internal/wire"
)

// fakeDB is a scriptable engine for deterministic server tests: GETs answer
// key*10, the first Run can be blocked on a channel, a prefix of Runs can
// be forced to conflict, touching panicKey panics (poisoned-request tests),
// and rowWidth pads GET rows (write-backpressure tests).
type fakeDB struct {
	mu         sync.Mutex
	block      chan struct{} // nil means never block; else first Run waits
	conflicts  int           // forced ErrConflict count before success
	panicKey   uint64        // ops on this key panic when panicArmed
	panicArmed bool
	rowWidth   int // extra columns padded onto GET rows (0 = just one)
	runs       int
	executed   []uint64 // keys touched by committed Runs, in order
}

func (f *fakeDB) checkPoison(key uint64) {
	f.mu.Lock()
	armed := f.panicArmed && key == f.panicKey
	f.mu.Unlock()
	if armed {
		panic(fmt.Sprintf("poisoned request: key %d", key))
	}
}

func (f *fakeDB) Protocol() db.Protocol { return db.OCC }
func (f *fakeDB) NewSession() db.Session {
	return &fakeDBSession{db: f}
}

type fakeDBSession struct {
	db      *fakeDB
	commits uint64
	aborts  uint64
}

func (s *fakeDBSession) Stats() (uint64, uint64) { return s.commits, s.aborts }

func (s *fakeDBSession) Run(fn func(tx db.Tx) error) error {
	f := s.db
	f.mu.Lock()
	f.runs++
	first := f.runs == 1
	if f.conflicts > 0 {
		f.conflicts--
		f.mu.Unlock()
		s.aborts++
		return db.ErrConflict
	}
	f.mu.Unlock()
	if first && f.block != nil {
		<-f.block
	}
	tx := &fakeTx{db: f}
	if err := fn(tx); err != nil {
		s.aborts++
		return err
	}
	f.mu.Lock()
	f.executed = append(f.executed, tx.keys...)
	f.mu.Unlock()
	s.commits++
	return nil
}

type fakeTx struct {
	db   *fakeDB
	keys []uint64
}

func (t *fakeTx) Read(table int, key uint64) ([]uint64, error) {
	t.db.checkPoison(key)
	t.keys = append(t.keys, key)
	row := make([]uint64, 1+t.db.rowWidth)
	row[0] = key * 10
	return row, nil
}
func (t *fakeTx) Update(table int, key uint64, vals []uint64) error {
	t.db.checkPoison(key)
	t.keys = append(t.keys, key)
	return nil
}
func (t *fakeTx) Insert(table int, key uint64, vals []uint64) error {
	t.keys = append(t.keys, key)
	return nil
}
func (t *fakeTx) Delete(table int, key uint64) error {
	t.keys = append(t.keys, key)
	return nil
}

// testServer is one booted loopback server plus a dialed client Conn.
type testServer struct {
	srv  *Server
	c    *wire.Conn
	addr string
}

// startServer boots a server on a loopback listener and returns it with a
// dialed client Conn and a cleanup.
func startServer(t *testing.T, cfg Config) (*testServer, func()) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		nc.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return &testServer{srv: srv, c: wire.NewConn(nc), addr: ln.Addr().String()}, cleanup
}

func newYCSBServer(t *testing.T, p db.Protocol) Config {
	t.Helper()
	engine, err := db.New(p, ycsb.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return Config{DB: engine, Schema: ycsb.Schema()}
}

func row(k int) []uint64 {
	vals := make([]uint64, ycsb.Cols)
	for i := range vals {
		vals[i] = uint64(k)
	}
	return vals
}

func TestServeBasicOps(t *testing.T) {
	ts, cleanup := startServer(t, newYCSBServer(t, db.OCC))
	defer cleanup()
	c := ts.c

	// Insert, read back, update, read back, delete, read again.
	steps := []struct {
		req        wire.Request
		wantStatus wire.Status
		wantRow    []uint64
	}{
		{req: wire.Request{Op: wire.OpInsert, Key: 1, Vals: row(7)}, wantStatus: wire.StatusOK},
		{req: wire.Request{Op: wire.OpGet, Key: 1}, wantStatus: wire.StatusOK, wantRow: row(7)},
		{req: wire.Request{Op: wire.OpPut, Key: 1, Vals: row(9)}, wantStatus: wire.StatusOK},
		{req: wire.Request{Op: wire.OpGet, Key: 1}, wantStatus: wire.StatusOK, wantRow: row(9)},
		{req: wire.Request{Op: wire.OpDelete, Key: 1}, wantStatus: wire.StatusOK},
		{req: wire.Request{Op: wire.OpGet, Key: 1}, wantStatus: wire.StatusNotFound},
		{req: wire.Request{Op: wire.OpDelete, Key: 99}, wantStatus: wire.StatusNotFound},
		{req: wire.Request{Op: wire.OpPut, Key: 99, Vals: row(1)}, wantStatus: wire.StatusNotFound},
		// Schema validation: wrong row width and out-of-range table.
		{req: wire.Request{Op: wire.OpInsert, Key: 2, Vals: []uint64{1}}, wantStatus: wire.StatusErr},
		{req: wire.Request{Op: wire.OpGet, Table: 9, Key: 1}, wantStatus: wire.StatusErr},
	}
	for i, s := range steps {
		resp, err := c.Do(&s.req)
		if err != nil {
			t.Fatalf("step %d (%v): %v", i, s.req.Op, err)
		}
		if resp.Status != s.wantStatus {
			t.Fatalf("step %d (%v): status %v, want %v", i, s.req.Op, resp.Status, s.wantStatus)
		}
		if s.wantRow != nil {
			if len(resp.Row) != len(s.wantRow) || resp.Row[0] != s.wantRow[0] {
				t.Fatalf("step %d: row %v, want %v", i, resp.Row, s.wantRow)
			}
		}
	}
}

// TestPipelinedBatchIsOneTransaction sends a pipelined window and checks
// (a) responses come back in order, (b) a later op in the window observes
// an earlier op's write — only possible if they share one transaction —
// and (c) the server counted exactly one batch.
func TestPipelinedBatchIsOneTransaction(t *testing.T) {
	ts, cleanup := startServer(t, newYCSBServer(t, db.OCC))
	defer cleanup()
	srv, c := ts.srv, ts.c

	reqs := []wire.Request{
		{Op: wire.OpInsert, Key: 5, Vals: row(1)},
		{Op: wire.OpGet, Key: 5},
		{Op: wire.OpPut, Key: 5, Vals: row(2)},
		{Op: wire.OpGet, Key: 5},
	}
	for i := range reqs {
		if err := c.WriteRequest(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var resps []wire.Response
	for range reqs {
		r, err := c.ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, r)
	}
	for i, r := range resps {
		if r.Status != wire.StatusOK {
			t.Fatalf("op %d: status %v", i, r.Status)
		}
	}
	if resps[1].Row[0] != 1 || resps[3].Row[0] != 2 {
		t.Fatalf("reads did not observe in-batch writes: %v, %v", resps[1].Row, resps[3].Row)
	}
	snap := srv.Snapshot()
	if snap.Batches != 1 || snap.BatchedOps != 4 {
		t.Fatalf("batches=%d batchedOps=%d, want 1/4 (pipeline must fold into one txn)", snap.Batches, snap.BatchedOps)
	}
	if snap.Commits != 1 {
		t.Fatalf("commits=%d, want 1", snap.Commits)
	}
}

// TestBatchDuplicateFallsBackToPerOp checks status attribution: a batched
// window whose commit fails on a duplicate insert degrades to per-op
// transactions, so the innocent ops still succeed and only the duplicate
// reports DUPLICATE.
func TestBatchDuplicateFallsBackToPerOp(t *testing.T) {
	ts, cleanup := startServer(t, newYCSBServer(t, db.OCC))
	defer cleanup()
	c := ts.c

	if resp, err := c.Do(&wire.Request{Op: wire.OpInsert, Key: 1, Vals: row(1)}); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("seed insert: %v %v", resp.Status, err)
	}

	reqs := []wire.Request{
		{Op: wire.OpInsert, Key: 2, Vals: row(2)},
		{Op: wire.OpInsert, Key: 1, Vals: row(8)}, // duplicate
		{Op: wire.OpGet, Key: 1},
	}
	for i := range reqs {
		if err := c.WriteRequest(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []wire.Status
	for range reqs {
		r, err := c.ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r.Status)
	}
	want := []wire.Status{wire.StatusOK, wire.StatusDuplicate, wire.StatusOK}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("statuses %v, want %v", got, want)
		}
	}
}

func TestTxnFrameAtomicAndSelfDescribing(t *testing.T) {
	ts, cleanup := startServer(t, newYCSBServer(t, db.OCC))
	defer cleanup()
	c := ts.c

	resp, err := c.Do(&wire.Request{Op: wire.OpTxn, Ops: []wire.Request{
		{Op: wire.OpInsert, Key: 10, Vals: row(3)},
		{Op: wire.OpGet, Key: 10},
		{Op: wire.OpGet, Key: 404},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.RespBatch || resp.Status != wire.StatusOK {
		t.Fatalf("txn response: %+v", resp)
	}
	if len(resp.Batch) != 3 {
		t.Fatalf("txn returned %d results, want 3", len(resp.Batch))
	}
	if resp.Batch[0].Status != wire.StatusOK ||
		resp.Batch[1].Status != wire.StatusOK || resp.Batch[1].Row[0] != 3 ||
		resp.Batch[2].Status != wire.StatusNotFound {
		t.Fatalf("txn per-op results: %+v", resp.Batch)
	}
}

func TestStatsFrame(t *testing.T) {
	ts, cleanup := startServer(t, newYCSBServer(t, db.OCC))
	defer cleanup()
	c := ts.c

	if _, err := c.Do(&wire.Request{Op: wire.OpInsert, Key: 3, Vals: row(1)}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(&wire.Request{Op: wire.OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.RespStats || resp.Stats == nil {
		t.Fatalf("stats response: %+v", resp)
	}
	if resp.Stats.Protocol != "OCC" {
		t.Fatalf("protocol %q", resp.Stats.Protocol)
	}
	if resp.Stats.Commits == 0 {
		t.Fatal("stats must report the preceding commit")
	}
}

// TestConflictRetry forces conflicts under the cap and over it: under the
// cap the op succeeds transparently; a fresh connection forced to conflict
// past the cap surfaces CONFLICT.
func TestConflictRetry(t *testing.T) {
	f := &fakeDB{conflicts: 3}
	ts, cleanup := startServer(t, Config{DB: f, MaxRetries: 5})
	defer cleanup()
	srv, c := ts.srv, ts.c

	resp, err := c.Do(&wire.Request{Op: wire.OpGet, Key: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK || resp.Row[0] != 40 {
		t.Fatalf("retried op: %+v", resp)
	}
	if snap := srv.Snapshot(); snap.Aborts != 3 {
		t.Fatalf("aborts=%d, want 3", snap.Aborts)
	}

	f.mu.Lock()
	f.conflicts = 100
	f.mu.Unlock()
	resp, err = c.Do(&wire.Request{Op: wire.OpGet, Key: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusConflict {
		t.Fatalf("exhausted retries: status %v, want CONFLICT", resp.Status)
	}
}

// TestBusyShedding blocks the engine, floods the connection past its
// bounded queue, and checks that shed ops answer BUSY while every accepted
// op still executes and answers in order.
func TestBusyShedding(t *testing.T) {
	f := &fakeDB{block: make(chan struct{})}
	const total = 40
	ts, cleanup := startServer(t, Config{DB: f, QueueDepth: 4, MaxBatch: 4})
	defer cleanup()
	srv, c := ts.srv, ts.c

	for i := 0; i < total; i++ {
		if err := c.WriteRequest(&wire.Request{Op: wire.OpGet, Key: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the reader fill the bounded queue
	close(f.block)

	var ok, busy []uint64
	for i := 0; i < total; i++ {
		r, err := c.ReadResponse()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		switch r.Status {
		case wire.StatusOK:
			ok = append(ok, r.Row[0]/10)
		case wire.StatusBusy:
			busy = append(busy, uint64(i))
		default:
			t.Fatalf("response %d: status %v", i, r.Status)
		}
	}
	if len(busy) == 0 {
		t.Fatal("queue depth 4 with a blocked engine must shed some of 40 ops")
	}
	if len(ok)+len(busy) != total {
		t.Fatalf("%d ok + %d busy != %d", len(ok), len(busy), total)
	}
	// Every OK response carries its own key, so order-correctness of the
	// response stream is visible: keys must be strictly increasing.
	for i := 1; i < len(ok); i++ {
		if ok[i] <= ok[i-1] {
			t.Fatalf("OK responses out of order: %v", ok)
		}
	}
	f.mu.Lock()
	executed := len(f.executed)
	f.mu.Unlock()
	if executed != len(ok) {
		t.Fatalf("engine executed %d ops but %d OK responses", executed, len(ok))
	}
	if snap := srv.Snapshot(); snap.Busy != uint64(len(busy)) {
		t.Fatalf("snapshot busy=%d, want %d", snap.Busy, len(busy))
	}
}

// TestGracefulDrain checks the SIGTERM path at the package level: requests
// accepted before Shutdown are executed and their responses flushed before
// the connection closes.
func TestGracefulDrain(t *testing.T) {
	f := &fakeDB{block: make(chan struct{})}
	srv, err := New(Config{DB: f})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)

	const total = 5
	for i := 0; i < total; i++ {
		if err := c.WriteRequest(&wire.Request{Op: wire.OpGet, Key: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the reader accept all five

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // drain begins with the engine blocked
	close(f.block)

	for i := 0; i < total; i++ {
		r, err := c.ReadResponse()
		if err != nil {
			t.Fatalf("drained response %d: %v", i, err)
		}
		if r.Status != wire.StatusOK || r.Row[0] != uint64(i*10) {
			t.Fatalf("drained response %d: %+v", i, r)
		}
	}
	if _, err := c.ReadResponse(); !errors.Is(err, io.EOF) {
		t.Fatalf("connection must close after drain, got %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestProtocolErrorAnswersThenCloses sends garbage: the server answers one
// typed ERR response and closes, rather than dropping the connection mute.
func TestProtocolErrorAnswersThenCloses(t *testing.T) {
	ts, cleanup := startServer(t, newYCSBServer(t, db.OCC))
	defer cleanup()
	srv, c := ts.srv, ts.c

	nc, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte{0x02, 0xEE, 0xEE}); err != nil { // valid frame, bogus opcode
		t.Fatal(err)
	}
	cc := wire.NewConn(nc)
	resp, err := cc.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusErr {
		t.Fatalf("garbage frame: status %v, want ERR", resp.Status)
	}
	if _, err := cc.ReadResponse(); !errors.Is(err, io.EOF) {
		t.Fatalf("connection must close after protocol error, got %v", err)
	}
	_ = c // keep the main connection open through the test
	if snap := srv.Snapshot(); snap.ProtoErrs == 0 {
		t.Fatal("protocol error not counted")
	}
}
