package server

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"ordo/internal/db"
	"ordo/internal/wire"
)

// TestIdleEviction: a client that goes quiet past IdleTimeout is evicted —
// its answered work already flushed, the connection closed, the eviction
// counted — without being mistaken for a protocol error.
func TestIdleEviction(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	f := &fakeDB{}
	srv, ln, serveDone := startRawServer(t, Config{DB: f, IdleTimeout: 100 * time.Millisecond})

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	resp, err := c.Do(&wire.Request{Op: wire.OpGet, Key: 4})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("live op before idling: %+v, %v", resp, err)
	}

	// Go quiet: the server must close the connection, not park a goroutine
	// pair on it forever.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.ReadResponse(); !errors.Is(err, io.EOF) {
		t.Fatalf("idle connection should see EOF, got %v", err)
	}
	snap := srv.Snapshot()
	if snap.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", snap.Evictions)
	}
	if snap.ProtoErrs != 0 {
		t.Fatalf("idle eviction miscounted as protocol error: protoErrs=%d", snap.ProtoErrs)
	}
	waitFor(t, "connection teardown", func() bool { return srv.Snapshot().ConnsActive == 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestWriteStallEviction: a client that stops reading while responses pile
// up must be evicted by the write deadline instead of wedging its worker
// (and engine session) on a full send buffer.
func TestWriteStallEviction(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	f := &fakeDB{rowWidth: 4095} // ~4KB per GET response
	srv, ln, serveDone := startRawServer(t, Config{
		DB:           f,
		WriteTimeout: 200 * time.Millisecond,
		QueueDepth:   4096,
	})

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	// Pump GETs and never read a byte back: response bytes fill the
	// kernel buffers until the worker's flush blocks.
	writeErr := make(chan error, 1)
	go func() {
		for i := 0; i < 4000; i++ {
			if err := c.WriteRequest(&wire.Request{Op: wire.OpGet, Key: uint64(i)}); err != nil {
				writeErr <- err
				return
			}
			if i%64 == 0 {
				if err := c.Flush(); err != nil {
					writeErr <- err
					return
				}
			}
		}
		writeErr <- c.Flush()
	}()

	waitFor(t, "write-stall eviction", func() bool { return srv.Snapshot().Evictions >= 1 })
	waitFor(t, "connection teardown", func() bool { return srv.Snapshot().ConnsActive == 0 })
	<-writeErr // client writer exited (error once the server closed, or done)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestPanicContainment: a request that panics the engine answers ERR, kills
// only its own connection, and leaves the server serving other clients.
func TestPanicContainment(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	f := &fakeDB{panicKey: 13, panicArmed: true}
	srv, ln, serveDone := startRawServer(t, Config{DB: f})

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	resp, err := c.Do(&wire.Request{Op: wire.OpGet, Key: 1})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("healthy op: %+v, %v", resp, err)
	}
	resp, err = c.Do(&wire.Request{Op: wire.OpGet, Key: 13})
	if err != nil {
		t.Fatalf("poisoned op must still be answered: %v", err)
	}
	if resp.Status != wire.StatusErr {
		t.Fatalf("poisoned op answered %v, want ERR", resp.Status)
	}
	if _, err := c.ReadResponse(); !errors.Is(err, io.EOF) {
		t.Fatalf("poisoned connection must close, got %v", err)
	}

	// The process survived: a fresh connection still serves.
	nc2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	c2 := wire.NewConn(nc2)
	resp, err = c2.Do(&wire.Request{Op: wire.OpGet, Key: 2})
	if err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("post-panic op: %+v, %v", resp, err)
	}
	if snap := srv.Snapshot(); snap.Panics != 1 {
		t.Fatalf("panics=%d, want 1", snap.Panics)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestServeAfterShutdownClosesListener: a listener handed to Serve after
// (or concurrently with) Shutdown must be closed, not left accepting — the
// re-check happens under the same lock Shutdown closes listeners under.
func TestServeAfterShutdownClosesListener(t *testing.T) {
	srv, err := New(Config{DB: &fakeDB{}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Shutdown must fail")
	}
	if _, err := ln.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("listener left open after losing the Serve/Shutdown race: %v", err)
	}
}

// TestDegradedBatchMetrics: a batch that cannot commit and falls back to
// per-op transactions counts as degraded — not as a batch — and per-op
// counters only tally ops with a non-ERR outcome.
func TestDegradedBatchMetrics(t *testing.T) {
	ts, cleanup := startServer(t, newYCSBServer(t, db.OCC))
	defer cleanup()
	srv, c := ts.srv, ts.c

	// Seed one row, as its own committed single-op batch.
	if resp, err := c.Do(&wire.Request{Op: wire.OpInsert, Key: 1, Vals: row(1)}); err != nil || resp.Status != wire.StatusOK {
		t.Fatalf("seed insert: %+v, %v", resp, err)
	}
	// A window whose batched commit dies on the duplicate insert.
	reqs := []wire.Request{
		{Op: wire.OpInsert, Key: 2, Vals: row(2)},
		{Op: wire.OpInsert, Key: 1, Vals: row(8)}, // duplicate
		{Op: wire.OpGet, Key: 1},
	}
	for i := range reqs {
		if err := c.WriteRequest(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for range reqs {
		if _, err := c.ReadResponse(); err != nil {
			t.Fatal(err)
		}
	}

	snap := srv.Snapshot()
	if snap.Degraded != 1 {
		t.Fatalf("degraded=%d, want 1", snap.Degraded)
	}
	// The seed insert plus both window inserts ran (DUPLICATE is an engine
	// answer, not an ERR); the GET ran once.
	if snap.Inserts != 3 || snap.Gets != 1 {
		t.Fatalf("inserts=%d gets=%d, want 3/1", snap.Inserts, snap.Gets)
	}

	// An op rejected by schema validation answers ERR and must not count.
	if resp, err := c.Do(&wire.Request{Op: wire.OpGet, Table: 9, Key: 1}); err != nil || resp.Status != wire.StatusErr {
		t.Fatalf("invalid-table GET: %+v, %v", resp, err)
	}
	if snap := srv.Snapshot(); snap.Gets != 1 {
		t.Fatalf("ERR op tallied into gets: %d, want 1", snap.Gets)
	}

	// The STATS frame carries the degraded counter.
	resp, err := c.Do(&wire.Request{Op: wire.OpStats})
	if err != nil || resp.Stats == nil {
		t.Fatalf("stats: %+v, %v", resp, err)
	}
	if resp.Stats.Degraded != 1 {
		t.Fatalf("wire stats degraded=%d, want 1", resp.Stats.Degraded)
	}
}
