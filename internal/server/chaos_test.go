package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"ordo/internal/core"
	"ordo/internal/db"
	"ordo/internal/db/ycsb"
	"ordo/internal/faultnet"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// Chaos run shape. Fault magnitudes stay well under the client's hang
// deadline and the shutdown budget, so an injected stall is survivable and
// only a real bug (wedged worker, lost response) trips the detector.
const (
	chaosClients    = 6
	chaosOpsPer     = 400
	chaosRecords    = 256
	chaosWindow     = 16
	chaosReconnects = 30
	chaosHangAfter  = 15 * time.Second
)

func chaosSeed() int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err == nil {
			return v
		}
	}
	return 1
}

func chaosFaults() faultnet.Config {
	return faultnet.Config{
		Seed: chaosSeed(),
		// Probabilities are per-I/O; bufio coalesces a whole pipeline window
		// into a handful of syscalls, so they are set high enough that a run
		// reliably sees latency, chopped frames, stalls, and a few resets.
		LatencyProb: 0.20, MaxLatency: 2 * time.Millisecond,
		StallProb: 0.01, Stall: 300 * time.Millisecond,
		PartialProb: 0.25, ChunkDelay: time.Millisecond,
		ResetProb: 0.01,
	}
}

// TestChaosEndToEnd drives real engines through faultnet: every server-side
// I/O may be delayed, stalled, chopped, or reset. The protocol contract
// under test: each client sees correct responses in request order or a
// clean connection error — never a hang, never a misordered row — and
// after Shutdown the drained snapshot is internally consistent with no
// goroutine left behind.
func TestChaosEndToEnd(t *testing.T) {
	for _, proto := range []db.Protocol{db.OCC, db.OCCOrdo} {
		t.Run(proto.String(), func(t *testing.T) { chaosRun(t, proto) })
	}
}

func chaosRun(t *testing.T, proto db.Protocol) {
	defer requireNoGoroutineLeak(t)()
	var ordo *core.Ordo
	if proto == db.OCCOrdo {
		// Direct construction as in TestEndToEnd: calibration is degenerate
		// on single-vCPU CI boxes and any over-estimate is correct there.
		ordo = core.New(core.Hardware, 1000)
	}
	engine, err := db.New(proto, ycsb.Schema(), ordo)
	if err != nil {
		t.Fatal(err)
	}
	// The chaos run serves durably over a real file-backed device, so the
	// network fault injector and the group-commit path stress each other.
	walDir := t.TempDir()
	dev, err := wal.OpenFile(walDir, wal.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		DB:           engine,
		Schema:       ycsb.Schema(),
		Shards:       4,
		Ordo:         ordo,
		MaxBatch:     16,
		QueueDepth:   64,
		IdleTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		WAL:          wal.New(dev, nil),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two listeners on one server: a clean one for preload, and the
	// faultnet-wrapped one the chaos clients connect through.
	cleanLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rawLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	faultLn := faultnet.Wrap(rawLn, chaosFaults())
	serveDone := make(chan error, 2)
	go func() { serveDone <- srv.Serve(cleanLn) }()
	go func() { serveDone <- srv.Serve(faultLn) }()

	chaosPreload(t, cleanLn.Addr().String())

	var wg sync.WaitGroup
	errs := make(chan error, chaosClients)
	doneCh := make(chan int, chaosClients)
	for cl := 0; cl < chaosClients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			done, err := chaosClient(rawLn.Addr().String(), cl)
			errs <- err
			doneCh <- done
		}(cl)
	}
	wg.Wait()
	close(errs)
	close(doneCh)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	totalDone := 0
	for d := range doneCh {
		totalDone += d
	}
	// Faults cost retries and reconnects, not overall progress.
	if want := chaosClients * chaosOpsPer / 4; totalDone < want {
		t.Fatalf("only %d ops completed under chaos, want ≥ %d", totalDone, want)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under chaos: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-serveDone; err != nil {
			t.Fatalf("serve: %v", err)
		}
	}

	snap := srv.Snapshot()
	assertSnapshotConsistent(t, proto, snap)
	// The drained log must recover cleanly and account for every record the
	// server counted: no duplicates (no device failures happened), no torn
	// tail (the final flush completed before the device closed).
	if err := dev.Close(); err != nil {
		t.Fatalf("closing wal device: %v", err)
	}
	_, info, err := wal.Recover(walDir)
	if err != nil {
		t.Fatalf("recovering drained chaos log: %v", err)
	}
	if uint64(info.Records) != snap.WALRecords {
		t.Fatalf("device holds %d records, server counted %d", info.Records, snap.WALRecords)
	}
	if info.Duplicates != 0 || info.TruncatedBytes != 0 {
		t.Fatalf("clean drain left duplicates=%d truncated=%d", info.Duplicates, info.TruncatedBytes)
	}
	// The run must actually have exercised the fault classes — a chaos test
	// whose injector never fires passes for the wrong reason.
	inj := faultLn.Stats()
	if inj.Delays == 0 || inj.Partials == 0 || inj.Resets == 0 {
		t.Fatalf("fault injector barely fired: %+v — raise probabilities or op count", inj)
	}
	t.Logf("%s chaos: done=%d commits=%d aborts=%d batches=%d degraded=%d busy=%d evicted=%d proto_errs=%d clock_cmps=%d injected=%+v",
		proto, totalDone, snap.Commits, snap.Aborts, snap.Batches, snap.Degraded,
		snap.Busy, snap.Evictions, snap.ProtoErrs, snap.ClockCmps, inj)

	// CI's chaos-smoke job archives the drained snapshot for trend
	// inspection across runs.
	if path := os.Getenv("CHAOS_SNAPSHOT_JSON"); path != "" {
		buf, err := json.MarshalIndent(map[string]any{
			"protocol": proto.String(), "ops_done": totalDone, "snapshot": snap,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(append(buf, '\n'))
		f.Close()
	}
}

// chaosPreload seeds the keyspace through the clean listener. Unlike the
// e2e preload it must respect the small chaos QueueDepth: it keeps at most
// half the queue in flight and re-issues BUSY answers.
func chaosPreload(t *testing.T, addr string) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	var inFlight []uint64
	nextKey := uint64(0)
	loaded := 0
	for loaded < chaosRecords {
		for len(inFlight) < 32 && nextKey < chaosRecords {
			if err := c.WriteRequest(&wire.Request{Op: wire.OpInsert, Key: nextKey, Vals: row(int(nextKey))}); err != nil {
				t.Fatal(err)
			}
			inFlight = append(inFlight, nextKey)
			nextKey++
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := c.ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		k := inFlight[0]
		inFlight = inFlight[1:]
		switch r.Status {
		case wire.StatusOK:
			loaded++
		case wire.StatusBusy, wire.StatusConflict:
			if err := c.WriteRequest(&wire.Request{Op: wire.OpInsert, Key: k, Vals: row(int(k))}); err != nil {
				t.Fatal(err)
			}
			inFlight = append(inFlight, k)
		default:
			t.Fatalf("preload key %d: %v", k, r.Status)
		}
	}
}

// assertSnapshotConsistent checks the drained snapshot's internal
// arithmetic: every batch commit is an engine commit, batching never
// exceeds its cap, and nothing is still connected.
func assertSnapshotConsistent(t *testing.T, proto db.Protocol, snap Snapshot) {
	t.Helper()
	if snap.Commits == 0 {
		t.Fatal("server committed nothing under chaos")
	}
	if snap.Commits+snap.Aborts < snap.Batches {
		t.Fatalf("commits+aborts=%d < batches=%d", snap.Commits+snap.Aborts, snap.Batches)
	}
	if snap.BatchedOps < snap.Batches {
		t.Fatalf("batchedOps=%d < batches=%d", snap.BatchedOps, snap.Batches)
	}
	if snap.Batches > 0 && snap.AvgBatch > 16 {
		t.Fatalf("avg batch %.1f exceeds MaxBatch", snap.AvgBatch)
	}
	if snap.ConnsActive != 0 {
		t.Fatalf("conns still active after shutdown: %d", snap.ConnsActive)
	}
	if proto == db.OCCOrdo && snap.ClockCmps == 0 {
		t.Fatal("OCC_ORDO chaos run recorded no hardware-clock comparisons")
	}
	if snap.Panics != 0 {
		t.Fatalf("worker panics under chaos: %d", snap.Panics)
	}
	// Durable-mode arithmetic: the preload alone guarantees logged writes;
	// each redo record rides exactly one committed transaction; a counted
	// flush wrote at least one record and recorded its sync latency; and a
	// tmpdir device must never fail.
	if snap.WALRecords == 0 {
		t.Fatal("durable chaos run logged no redo records")
	}
	if snap.WALRecords > snap.Commits {
		t.Fatalf("wal_records=%d > commits=%d: a redo record without a commit", snap.WALRecords, snap.Commits)
	}
	if snap.WALFlushes == 0 || snap.WALFlushes > snap.WALRecords {
		t.Fatalf("wal_flushes=%d inconsistent with wal_records=%d", snap.WALFlushes, snap.WALRecords)
	}
	if snap.WALSyncNsP99 == 0 {
		t.Fatal("wal_sync_ns_p99 is zero with flushes recorded")
	}
	if snap.WALDeviceErrors != 0 {
		t.Fatalf("wal_device_errors=%d on a healthy device", snap.WALDeviceErrors)
	}
}

// chaosClient issues pipelined GET/PUTs through the faulty listener. It
// tracks the in-flight window so every OK GET can be checked against the
// key it was issued for — the in-order guarantee — and treats transport
// errors and terminal ERR statuses as a clean connection death: it
// reconnects (bounded) and carries on. A response that misses the hang
// deadline fails the run.
func chaosClient(addr string, seed int) (int, error) {
	rng := uint64(seed)*2654435761 + 12345
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	mkReq := func() wire.Request {
		k := next() % chaosRecords
		if next()&1 == 0 {
			return wire.Request{Op: wire.OpGet, Key: k}
		}
		return wire.Request{Op: wire.OpPut, Key: k, Vals: row(int(k))}
	}

	done := 0
	reconnects := 0
	for done < chaosOpsPer && reconnects <= chaosReconnects {
		n, err := chaosSession(addr, mkReq, chaosOpsPer-done)
		done += n
		if err != nil {
			return done, fmt.Errorf("client %d after %d ops: %w", seed, done, err)
		}
		reconnects++
	}
	return done, nil
}

// chaosSession runs one connection until it completes `want` ops or dies a
// clean death (returns nil). Only a hang or a wrong-order response is an
// error.
func chaosSession(addr string, mkReq func() wire.Request, want int) (int, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, nil // server mid-eviction storm: treat as a clean death
	}
	defer nc.Close()
	c := wire.NewConn(nc)

	var inFlight []wire.Request
	done := 0
	issued := 0
	for done < want {
		for len(inFlight) < chaosWindow && issued < want {
			req := mkReq()
			if err := c.WriteRequest(&req); err != nil {
				return done, nil // clean connection death
			}
			inFlight = append(inFlight, req)
			issued++
		}
		if err := c.Flush(); err != nil {
			return done, nil
		}
		nc.SetReadDeadline(time.Now().Add(chaosHangAfter))
		resp, err := c.ReadResponse()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return done, fmt.Errorf("hang: no response within %v", chaosHangAfter)
			}
			return done, nil // reset/EOF/truncated frame: clean death
		}
		req := inFlight[0]
		inFlight = inFlight[1:]
		switch resp.Status {
		case wire.StatusOK:
			if req.Op == wire.OpGet {
				if resp.Kind != wire.RespRow {
					return done, fmt.Errorf("GET answered kind %v", resp.Kind)
				}
				if len(resp.Row) == 0 || resp.Row[0] != req.Key {
					return done, fmt.Errorf("out-of-order response: GET %d answered row %v", req.Key, resp.Row)
				}
			}
			done++
		case wire.StatusConflict, wire.StatusBusy:
			// Legitimate answers; the op simply doesn't count as done.
		case wire.StatusErr:
			// The server hit a protocol fault on this stream (a frame our
			// side never completed, chopped by an injected reset); the
			// connection is terminal by contract.
			return done, nil
		default:
			return done, fmt.Errorf("op %v answered %v", req.Op, resp.Status)
		}
	}
	return done, nil
}
