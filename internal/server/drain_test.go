package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"ordo/internal/db"
	"ordo/internal/db/ycsb"
	"ordo/internal/telemetry"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// startRawServer boots a server without the convenience client, for tests
// that manage their own connections and shutdown sequencing.
func startRawServer(t *testing.T, cfg Config) (*Server, net.Listener, chan error) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	return srv, ln, serveDone
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// onlyConn returns the single registered serverConn.
func onlyConn(srv *Server) *serverConn {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	for c := range srv.conns {
		return c
	}
	return nil
}

// TestDrainWhileReaderBlockedAtHardCap wedges the reader in the hard-cap
// wait (engine blocked, queue full) and fires Shutdown: the drain must
// unwedge the reader, answer everything that was accepted — responses in
// order — and tear down without leaking either goroutine.
func TestDrainWhileReaderBlockedAtHardCap(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	f := &fakeDB{block: make(chan struct{})}
	srv, ln, serveDone := startRawServer(t, Config{DB: f, QueueDepth: 2, MaxBatch: 2})

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	const total = 50
	for i := 0; i < total; i++ {
		if err := c.WriteRequest(&wire.Request{Op: wire.OpGet, Key: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// The worker popped one run and is blocked in the engine; wait until
	// the reader has filled pending to the hard cap, where it blocks.
	waitFor(t, "reader blocked at hard cap", func() bool {
		sc := onlyConn(srv)
		if sc == nil {
			return false
		}
		sc.mu.Lock()
		defer sc.mu.Unlock()
		return len(sc.pending) >= sc.hardCap()
	})

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // drain begins with the engine still blocked
	close(f.block)

	// Every accepted op answers OK (keys in order) or BUSY, then the
	// connection closes cleanly.
	var okKeys []uint64
	responses := 0
	for {
		r, err := c.ReadResponse()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("response %d: %v", responses, err)
			}
			break
		}
		responses++
		switch r.Status {
		case wire.StatusOK:
			okKeys = append(okKeys, r.Row[0]/10)
		case wire.StatusBusy:
		default:
			t.Fatalf("response %d: status %v", responses, r.Status)
		}
	}
	if responses < 5 || responses > total {
		t.Fatalf("answered %d responses, want between 5 (hard cap + in flight) and %d", responses, total)
	}
	for i := 1; i < len(okKeys); i++ {
		if okKeys[i] <= okKeys[i-1] {
			t.Fatalf("OK responses out of order: %v", okKeys)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestProtoErrFlushOrdering interleaves valid frames with garbage in one
// client flush: every valid op must be answered in order, then exactly one
// ERR for the garbage, all flushed before the connection closes.
func TestProtoErrFlushOrdering(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	f := &fakeDB{}
	srv, ln, serveDone := startRawServer(t, Config{DB: f})

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	for k := 1; k <= 3; k++ {
		if err := c.WriteRequest(&wire.Request{Op: wire.OpGet, Key: uint64(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// A well-framed payload with a bogus opcode: undecodable, stream dead.
	if _, err := nc.Write([]byte{0x02, 0xEE, 0xEE}); err != nil {
		t.Fatal(err)
	}

	for k := 1; k <= 3; k++ {
		r, err := c.ReadResponse()
		if err != nil {
			t.Fatalf("valid op %d: %v", k, err)
		}
		if r.Status != wire.StatusOK || r.Row[0] != uint64(k*10) {
			t.Fatalf("valid op %d answered out of order: %+v", k, r)
		}
	}
	r, err := c.ReadResponse()
	if err != nil {
		t.Fatalf("ERR response must be flushed before close, got %v", err)
	}
	if r.Status != wire.StatusErr {
		t.Fatalf("garbage answered %v, want ERR", r.Status)
	}
	if _, err := c.ReadResponse(); !errors.Is(err, io.EOF) {
		t.Fatalf("connection must close after protocol error, got %v", err)
	}
	if snap := srv.Snapshot(); snap.ProtoErrs != 1 {
		t.Fatalf("protoErrs=%d, want 1", snap.ProtoErrs)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestDurableDrainCoversAckedWrites pipelines inserts and fires Shutdown
// while responses are still streaming: the drained snapshot's WAL counters
// must match the device exactly, and every insert acked OK before the
// connection closed must be recoverable from the log directory — the
// drain's final flush is part of the durability contract.
func TestDurableDrainCoversAckedWrites(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	dir := t.TempDir()
	cfg, dev := durableConfig(t, dir)
	srv, ln, serveDone := startRawServer(t, cfg)

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	const total = 200
	for i := 0; i < total; i++ {
		if err := c.WriteRequest(&wire.Request{Op: wire.OpInsert, Key: uint64(i), Vals: row(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Wait for the first ack so the drain genuinely races an in-progress
	// pipeline; some tail of the window may then be cut off, but whatever
	// is acked OK must be durable.
	acked := make(map[uint64]bool)
	idx := uint64(0)
	r, err := c.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != wire.StatusOK {
		t.Fatalf("first insert answered %v", r.Status)
	}
	acked[idx] = true
	idx++

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	for idx < total {
		r, err := c.ReadResponse()
		if err != nil {
			break // drain closed the connection mid-window
		}
		switch r.Status {
		case wire.StatusOK:
			acked[idx] = true
		case wire.StatusBusy:
		default:
			t.Fatalf("insert %d answered %v", idx, r.Status)
		}
		idx++
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	recs, info, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap := srv.Snapshot(); uint64(info.Records) != snap.WALRecords {
		t.Fatalf("device holds %d records, server counted %d", info.Records, snap.WALRecords)
	}
	if info.Duplicates != 0 || info.TruncatedBytes != 0 {
		t.Fatalf("clean drain left duplicates=%d truncated=%d", info.Duplicates, info.TruncatedBytes)
	}
	fresh, err := db.New(db.OCC, ycsb.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(fresh, recs); err != nil {
		t.Fatal(err)
	}
	if len(acked) == 0 {
		t.Fatal("no insert was acked before the drain; the race never happened")
	}
	sess := fresh.NewSession()
	if err := sess.Run(func(tx db.Tx) error {
		for k := range acked {
			if _, err := tx.Read(0, k); err != nil {
				t.Errorf("acked key %d not recovered: %v", k, err)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownCtxExpiresMidBatch expires the drain deadline while a worker
// sits inside the engine: Shutdown must hard-close the sockets, return the
// context error once the worker surfaces, and leak nothing.
func TestShutdownCtxExpiresMidBatch(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	f := &fakeDB{block: make(chan struct{})}
	srv, ln, serveDone := startRawServer(t, Config{DB: f})

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	if err := c.WriteRequest(&wire.Request{Op: wire.OpGet, Key: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker inside the engine", func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.runs >= 1
	})

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	time.Sleep(250 * time.Millisecond) // let the drain deadline expire mid-batch
	close(f.block)                     // the engine finally returns

	if err := <-shutdownDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown = %v, want DeadlineExceeded", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestScrapeDuringDrain hammers /metrics, /healthz, and Snapshot() across
// the whole drain window — workers mid-flight, workers exiting and closing
// their histogram shards, lanes shutting down — and keeps scraping after
// Shutdown returns. Run under -race this pins the invariant that a scrape
// never reads a per-conn histogram shard or lane counter without
// synchronization after its owner exits; it also asserts that counts
// recorded by dying connections retire into the parent histograms instead
// of vanishing with the shard.
func TestScrapeDuringDrain(t *testing.T) {
	defer requireNoGoroutineLeak(t)()
	f := &fakeDB{block: make(chan struct{})}
	tel := NewTelemetry(nil, telemetry.NewTracer(64), 0)
	srv, ln, serveDone := startRawServer(t, Config{DB: f, QueueDepth: 8, Telemetry: tel})
	base, closeAdmin := startAdmin(t, srv)
	defer closeAdmin()

	// Several connections with queued pipelines; the engine blocks the
	// first Run, so drains must finish work with scrapes in flight.
	const nConns = 3
	conns := make([]*wire.Conn, nConns)
	for i := range conns {
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		conns[i] = wire.NewConn(nc)
		for k := 0; k < 10; k++ {
			if err := conns[i].WriteRequest(&wire.Request{Op: wire.OpGet, Key: uint64(k)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := conns[i].Flush(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "a worker inside the engine", func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.runs >= 1
	})

	stop := make(chan struct{})
	scraperDone := make(chan error, 2)
	go func() {
		for {
			select {
			case <-stop:
				scraperDone <- nil
				return
			default:
			}
			if code, body := adminGet(t, base, "/metrics"); code != 200 {
				scraperDone <- fmt.Errorf("/metrics during drain: %d\n%s", code, body)
				return
			}
			adminGet(t, base, "/healthz")
		}
	}()
	go func() {
		for {
			select {
			case <-stop:
				scraperDone <- nil
				return
			default:
			}
			snap := srv.Snapshot()
			if snap.Panics != 0 {
				scraperDone <- fmt.Errorf("panics mid-drain: %d", snap.Panics)
				return
			}
		}
	}()

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // scrapes overlap the drain beginning
	close(f.block)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// Scrape past the drain: every worker has exited and closed its shards.
	for i := 0; i < 5; i++ {
		if code, body := adminGet(t, base, "/metrics"); code != 200 {
			t.Fatalf("/metrics after drain: %d\n%s", code, body)
		} else if i == 4 {
			// Retired shard counts must survive their connections: the
			// queue-wait histogram saw every queued op.
			if !strings.Contains(body, "ordod_queue_wait_seconds_count") {
				t.Fatal("queue-wait series missing after drain")
			}
			for _, line := range strings.Split(body, "\n") {
				if strings.HasPrefix(line, "ordod_queue_wait_seconds_count") {
					var n float64
					if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &n); err == nil && n == 0 {
						t.Fatalf("queue-wait counts vanished with their connections: %q", line)
					}
				}
			}
		}
	}
	close(stop)
	for i := 0; i < 2; i++ {
		if err := <-scraperDone; err != nil {
			t.Fatal(err)
		}
	}
}
