package server

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"ordo/internal/telemetry"
	"ordo/internal/telemetry/span"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// opClass indexes the per-op-type latency histograms. STATS is excluded:
// it never touches the engine, so its latency says nothing about serving.
const (
	opClassGet = iota
	opClassPut
	opClassInsert
	opClassDelete
	opClassTxn
	nOpClass
)

var opClassNames = [nOpClass]string{"get", "put", "insert", "delete", "txn"}

// opClassOf maps a wire op to its latency class, -1 for untracked ops.
func opClassOf(op wire.Op) int {
	switch op {
	case wire.OpGet, wire.OpGetAt:
		return opClassGet
	case wire.OpPut:
		return opClassPut
	case wire.OpInsert:
		return opClassInsert
	case wire.OpDelete:
		return opClassDelete
	case wire.OpTxn:
		return opClassTxn
	}
	return -1
}

// DefaultSlowOp is the slow-op trace threshold when Telemetry has none.
const DefaultSlowOp = 10 * time.Millisecond

// Telemetry is the server's hook into a metrics registry and event tracer.
// Construct one with NewTelemetry, put it in Config.Telemetry, and New
// binds the server's counters to it; histograms record through per-conn
// shards so the hot path never contends with a scrape (DESIGN.md §11).
// One Telemetry serves exactly one Server — series names would collide
// otherwise.
type Telemetry struct {
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	slowOp time.Duration

	opLatency [nOpClass]*telemetry.Histogram
	batchOps  *telemetry.Histogram
	queueWait *telemetry.Histogram
	ackLat    *telemetry.Histogram
	walFlush  *telemetry.Histogram
	walSync   *telemetry.Histogram
	replApply *telemetry.Histogram
	promote   *telemetry.Histogram

	// Dedicated shards for the WAL observers. The flush observer runs on
	// the group committer's flusher goroutine and the sync observer under
	// the device lock, so each shard has one writer.
	walFlushShard *telemetry.HistShard
	walSyncShard  *telemetry.HistShard
	// replApplyShard has one writer too: the follower's apply loop.
	replApplyShard *telemetry.HistShard
	// promoteShard's one writer is the failover node's supervision loop.
	promoteShard *telemetry.HistShard

	// Distributed tracing (EnableTracing): the node's span ring, the
	// head-sampling rate each connection worker's Sampler is built with,
	// and the seed counter that decorrelates those samplers.
	spans      *span.Ring
	sampleRate float64
	samplerSeq atomic.Uint64

	bound atomic.Bool
}

// NewTelemetry builds a Telemetry recording into reg and tracer. A nil reg
// allocates a fresh registry; a nil tracer records no events. slowOp ≤ 0
// means DefaultSlowOp. Every histogram family is registered here — before
// any traffic — so a scrape always shows the full schema, at zero counts
// when a path has not run (the WAL series in a non-durable server).
func NewTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer, slowOp time.Duration) *Telemetry {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if slowOp <= 0 {
		slowOp = DefaultSlowOp
	}
	t := &Telemetry{reg: reg, tracer: tracer, slowOp: slowOp}
	for cl := 0; cl < nOpClass; cl++ {
		t.opLatency[cl] = reg.Histogram("ordod_op_latency_seconds",
			"Service latency per op: execution start to responses written, by op type.",
			1e9, telemetry.L("op", opClassNames[cl]))
	}
	t.batchOps = reg.Histogram("ordod_batch_ops",
		"Pipelined simple ops folded into one engine transaction.", 0)
	t.queueWait = reg.Histogram("ordod_queue_wait_seconds",
		"Time a request waited in its connection queue before execution.", 1e9)
	t.ackLat = reg.Histogram("ordod_ack_latency_seconds",
		"Durability wait: WAL append to group-commit acknowledgment.", 1e9)
	t.walFlush = reg.Histogram("ordod_wal_flush_seconds",
		"WAL device write duration per non-empty flush.", 1e9)
	t.walSync = reg.Histogram("ordod_wal_sync_seconds",
		"WAL fsync duration.", 1e9)
	t.replApply = reg.Histogram("ordod_repl_apply_seconds",
		"Replication apply latency per batch: leader frame received to engine replay durable.", 1e9)
	t.promote = reg.Histogram("ordod_promotion_seconds",
		"Failover takeover duration: leader declared dead to this node serving writes.", 1e9)
	t.walFlushShard = t.walFlush.NewShard()
	t.walSyncShard = t.walSync.NewShard()
	t.replApplyShard = t.replApply.NewShard()
	t.promoteShard = t.promote.NewShard()
	return t
}

// EnableTracing attaches a span ring and head-sampling rate, turning on
// request-scoped distributed tracing (DESIGN.md §16). Call it before the
// Telemetry is bound to a Server and before any traffic: connection
// workers snapshot the ring at accept time. rate is the per-run sampling
// probability; slow runs, ERR/UNCERTAIN outcomes, and cross-shard
// transactions are force-sampled regardless.
func (t *Telemetry) EnableTracing(ring *span.Ring, rate float64) {
	t.spans = ring
	t.sampleRate = rate
}

// Spans returns the attached span ring; nil when tracing is off.
func (t *Telemetry) Spans() *span.Ring { return t.spans }

// newSampler builds one worker's sampler with a distinct seed.
func (t *Telemetry) newSampler() span.Sampler {
	return span.NewSampler(t.sampleRate, t.samplerSeq.Add(1))
}

// ObservePromotion records one completed leadership takeover's duration;
// called only from the failover node's supervision goroutine.
func (t *Telemetry) ObservePromotion(d time.Duration) {
	t.promoteShard.ObserveDuration(d)
}

// ObserveReplApply records one replication apply batch's latency; called
// only from the follower's single apply goroutine.
func (t *Telemetry) ObserveReplApply(d time.Duration) {
	t.replApplyShard.ObserveDuration(d)
}

// Registry returns the registry this Telemetry records into, for the admin
// /metrics endpoint and for registering neighboring subsystems (the clock
// monitor) on the same scrape.
func (t *Telemetry) Registry() *telemetry.Registry { return t.reg }

// Tracer returns the event tracer; nil when tracing is off.
func (t *Telemetry) Tracer() *telemetry.Tracer { return t.tracer }

// bind registers the server's counters and gauges. CounterFuncs pull the
// existing atomics at scrape time, so instrumented and plain servers share
// one metrics struct and the hot path pays nothing extra.
func (t *Telemetry) bind(s *Server) error {
	if !t.bound.CompareAndSwap(false, true) {
		return errors.New("server: Telemetry already bound to a Server")
	}
	reg, m := t.reg, &s.m
	reg.CounterFunc("ordod_conns_total", "Connections accepted.", m.connsTotal.Load)
	reg.GaugeFunc("ordod_conns_active", "Connections currently open.",
		func() float64 { return float64(m.connsActive.Load()) })

	ops := []struct {
		name string
		v    *atomic.Uint64
	}{
		{"get", &m.gets}, {"put", &m.puts}, {"insert", &m.inserts},
		{"delete", &m.deletes}, {"txn", &m.txns}, {"txn_inner", &m.txnOps},
		{"stats", &m.statsOps},
	}
	for _, op := range ops {
		reg.CounterFunc("ordod_ops_total", "Ops served, by type; txn_inner counts ops inside TXN frames.",
			op.v.Load, telemetry.L("op", op.name))
	}

	reg.CounterFunc("ordod_batches_total", "Simple-op runs committed as one transaction.", m.batches.Load)
	reg.CounterFunc("ordod_batched_ops_total", "Simple ops inside committed batches.", m.batchedOps.Load)

	// Shard-lane observability: one series per lane so imbalance — a hot
	// partition starving its neighbors — shows up directly on a scrape, plus
	// the cross-shard coordination counters.
	reg.GaugeFunc("ordod_shards", "Configured single-writer partition lanes.",
		func() float64 { return float64(s.cfg.Shards) })
	for i := 0; i < s.lanes.N(); i++ {
		ln := s.lanes.Lane(i)
		lbl := telemetry.L("shard", strconv.Itoa(i))
		reg.CounterFunc("ordod_shard_batches_total", "Batches executed by this lane.", ln.Batches, lbl)
		reg.CounterFunc("ordod_shard_ops_total", "Ops executed by this lane.", ln.Ops, lbl)
		reg.CounterFunc("ordod_shard_holds_total", "Cross-shard coordination barriers this lane parked for.", ln.Holds, lbl)
		reg.GaugeFunc("ordod_shard_commit_ts", "Latest commit timestamp this lane published.",
			func() float64 { return float64(ln.Published()) }, lbl)
		reg.GaugeFunc("ordod_shard_queue_depth", "Batches queued in this lane's rings.",
			func() float64 { return float64(ln.Queued()) }, lbl)
	}
	reg.CounterFunc("ordod_cross_shard_txns_total", "Write TXNs that spanned lanes (coordinator path).", m.crossTxns.Load)
	reg.CounterFunc("ordod_cross_shard_reads_total", "Read-only TXNs merged across lanes with cmp_time.", m.crossReads.Load)
	reg.CounterFunc("ordod_cross_shard_retries_total", "Cross-shard read passes retried after a definitely-ordered interfering commit.", m.crossRetries.Load)
	reg.CounterFunc("ordod_cross_shard_not_yet_total", "Cross-shard reads refused with NOT_YET inside the uncertainty window.", m.crossNotYet.Load)

	reg.CounterFunc("ordod_busy_total", "Ops shed with BUSY past the queue bound.", m.busy.Load)
	reg.CounterFunc("ordod_degraded_runs_total", "Runs that fell back to per-op transactions or reads-only serving.", m.degraded.Load)
	reg.CounterFunc("ordod_protocol_errors_total", "Undecodable frames.", m.protoErrs.Load)
	reg.CounterFunc("ordod_evictions_total", "Connections evicted (idle clients, stalled writers).", m.evictions.Load)
	reg.CounterFunc("ordod_panics_total", "Panics contained to one connection.", m.panics.Load)
	reg.CounterFunc("ordod_commits_total", "Engine transactions committed.", m.commits.Load)
	reg.CounterFunc("ordod_aborts_total", "Engine transaction attempts aborted.", m.aborts.Load)
	reg.CounterFunc("ordod_clock_cmps_total", "Timestamp comparisons made by the engine.", m.clockCmps.Load)
	reg.CounterFunc("ordod_clock_uncertain_total", "Timestamp comparisons inside the uncertainty window.", m.clockUncertain.Load)

	reg.CounterFunc("ordod_wal_flushes_total", "Non-empty WAL flushes.", m.walFlushes.Load)
	reg.CounterFunc("ordod_wal_records_total", "Redo records made durable.", m.walRecords.Load)
	reg.CounterFunc("ordod_wal_device_errors_total", "WAL device failures (sticky; the first one degrades serving).", m.walDeviceErrors.Load)
	reg.CounterFunc("ordod_wal_unacked_writes_total",
		"Writes committed in memory but answered ERR because the log failed (DESIGN.md §10).",
		m.walUnackedWrites.Load)
	reg.GaugeFunc("ordod_degraded", "1 when the WAL device has failed and the server serves reads only.",
		func() float64 {
			if s.Degraded() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("ordod_recovered_records", "Redo records replayed at startup.",
		func() float64 {
			if r := s.cfg.Recovery; r != nil {
				return float64(r.Records)
			}
			return 0
		})
	reg.GaugeFunc("ordod_recovery_truncated_bytes", "Torn bytes truncated from the log at startup.",
		func() float64 {
			if r := s.cfg.Recovery; r != nil {
				return float64(r.TruncatedBytes)
			}
			return 0
		})
	if rs := s.cfg.Repl; rs != nil {
		reg.GaugeFunc("ordod_repl_followers", "Followers currently subscribed (leader).",
			func() float64 { return float64(rs.Followers()) })
		reg.GaugeFunc("ordod_repl_lag_records", "Replication lag in redo records (worst follower on a leader; own lag on a follower).",
			func() float64 { return float64(rs.Lag()) })
		reg.GaugeFunc("ordod_repl_watermark_ns", "Safe-read watermark in clock nanoseconds (follower).",
			func() float64 { return float64(rs.WatermarkNS()) })
		reg.CounterFunc("ordod_repl_applied_records_total", "Redo records applied from the leader stream (follower).",
			rs.AppliedRecords)
		reg.CounterFunc("ordod_repl_applied_bytes_total", "Redo bytes applied from the leader stream (follower).",
			rs.AppliedBytes)
		reg.GaugeFunc("ordod_epoch", "Fencing epoch this node serves under.",
			func() float64 { return float64(rs.Epoch()) })
		reg.GaugeFunc("ordod_repl_role", "Replication role: 0 none, 1 leader, 2 follower.",
			func() float64 { return float64(rs.Role()) })
		reg.CounterFunc("ordod_promotions_total", "Leadership takeovers this process performed.", rs.Promotions)
		reg.CounterFunc("ordod_fencings_total", "Stale-epoch frames or peers rejected.", rs.Fencings)
		reg.CounterFunc("ordod_repl_reconnects_total", "Follower reconnect attempts to the leader.", rs.Reconnects)
	}
	return nil
}

// walFlushObs adapts Telemetry to wal.FlushObserver. It is called with the
// log's mutex held, so it only records: a shard observation for successful
// flushes, a trace event for device errors and outlier-slow flushes.
type walFlushObs struct{ t *Telemetry }

func (o walFlushObs) ObserveFlush(records int, d time.Duration, err error) {
	if err != nil {
		o.t.tracer.Record("wal_device_error", fmt.Sprintf("flush of %d records: %v", records, err), d)
		return
	}
	o.t.walFlushShard.ObserveDuration(d)
	if d >= o.t.slowOp {
		o.t.tracer.Record("wal_flush_slow", fmt.Sprintf("%d records", records), d)
	}
}

// WALFlushObserver returns the observer New installs on Config.WAL, also
// available for wiring a Log the server does not own.
func (t *Telemetry) WALFlushObserver() wal.FlushObserver { return walFlushObs{t} }

// WALSyncObserver returns the callback for wal.FileConfig.SyncObserver; it
// runs under the device lock, so it only records.
func (t *Telemetry) WALSyncObserver() func(d time.Duration, err error) {
	return func(d time.Duration, err error) {
		if err != nil {
			t.tracer.Record("wal_device_error", "fsync: "+err.Error(), d)
			return
		}
		t.walSyncShard.ObserveDuration(d)
		if d >= t.slowOp {
			t.tracer.Record("wal_fsync_slow", "", d)
		}
	}
}

// connShards is one connection's private histogram shards: the worker is
// the only writer, so every Observe takes an uncontended lock; closing at
// teardown retires the counts so scraped totals survive connection churn.
type connShards struct {
	op    [nOpClass]*telemetry.HistShard
	batch *telemetry.HistShard
	wait  *telemetry.HistShard
	ack   *telemetry.HistShard
}

func (t *Telemetry) newConnShards() *connShards {
	cs := &connShards{
		batch: t.batchOps.NewShard(),
		wait:  t.queueWait.NewShard(),
		ack:   t.ackLat.NewShard(),
	}
	for cl := 0; cl < nOpClass; cl++ {
		cs.op[cl] = t.opLatency[cl].NewShard()
	}
	return cs
}

func (cs *connShards) close() {
	if cs == nil {
		return
	}
	for _, s := range cs.op {
		s.Close()
	}
	cs.batch.Close()
	cs.wait.Close()
	cs.ack.Close()
}

// observeRun records one executed run: service latency per op (every op in
// a batch waits for the whole batch — its responses are written only after
// the run finishes, so the run duration is each op's service time), batch
// size for simple-op runs, and a trace event when the run was slow.
func (c *serverConn) observeRun(run []item, d time.Duration) {
	t := c.srv.cfg.Telemetry
	simple := 0
	for i := range run {
		it := &run[i]
		if it.shed || it.protoErr {
			continue
		}
		if cl := opClassOf(it.op); cl >= 0 {
			// A traced run offers its trace ID as the latency exemplar, so
			// a scrape's worst-case spike links straight to its spans.
			if c.spanTrace != 0 {
				c.tel.op[cl].ObserveExemplar(uint64(d), uint64(c.spanTrace))
			} else {
				c.tel.op[cl].ObserveDuration(d)
			}
		}
		if it.op.Simple() {
			simple++
		}
	}
	if simple > 0 {
		c.tel.batch.Observe(uint64(simple))
	}
	if d >= t.slowOp {
		t.tracer.Record("slow_op", fmt.Sprintf("%v: run of %d", c.nc.RemoteAddr(), len(run)), d)
	}
}

// tracer returns the configured event tracer. A nil result is fine:
// telemetry.Tracer methods are nil-receiver safe.
func (s *Server) tracer() *telemetry.Tracer {
	if s.cfg.Telemetry == nil {
		return nil
	}
	return s.cfg.Telemetry.tracer
}
