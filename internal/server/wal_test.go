package server

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"ordo/internal/db"
	"ordo/internal/db/ycsb"
	"ordo/internal/wal"
	"ordo/internal/wire"
)

// TestRedoRoundTrip checks the redo codec: every write-set encodes to one
// payload that decodes back to the same ops, and mangled payloads are
// rejected rather than misparsed.
func TestRedoRoundTrip(t *testing.T) {
	sets := [][]*wire.Request{
		{{Op: wire.OpInsert, Table: 0, Key: 1, Vals: []uint64{1, 2}}},
		{
			{Op: wire.OpPut, Table: 1, Key: 9, Vals: []uint64{}},
			{Op: wire.OpDelete, Table: 0, Key: 3},
			{Op: wire.OpInsert, Table: 2, Key: 4, Vals: []uint64{7}},
		},
	}
	for si, ops := range sets {
		redo, err := AppendRedo(nil, ops)
		if err != nil {
			t.Fatalf("set %d: encode: %v", si, err)
		}
		got, err := DecodeRedo(redo)
		if err != nil {
			t.Fatalf("set %d: decode: %v", si, err)
		}
		if len(got) != len(ops) {
			t.Fatalf("set %d: decoded %d ops, want %d", si, len(got), len(ops))
		}
		for i := range ops {
			if got[i].Op != ops[i].Op || got[i].Table != ops[i].Table || got[i].Key != ops[i].Key {
				t.Fatalf("set %d op %d: got %+v, want %+v", si, i, got[i], *ops[i])
			}
			if len(got[i].Vals) != len(ops[i].Vals) ||
				(len(ops[i].Vals) > 0 && !reflect.DeepEqual(got[i].Vals, ops[i].Vals)) {
				t.Fatalf("set %d op %d: vals %v, want %v", si, i, got[i].Vals, ops[i].Vals)
			}
		}
		// Trailing garbage and truncation must both be detected.
		if _, err := DecodeRedo(append(append([]byte(nil), redo...), 0xFF)); err == nil {
			t.Fatalf("set %d: trailing byte accepted", si)
		}
		if _, err := DecodeRedo(redo[:len(redo)-1]); err == nil {
			t.Fatalf("set %d: truncated payload accepted", si)
		}
	}
	if _, err := DecodeRedo(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}

// durableConfig builds a YCSB OCC server config over a FileDevice in a
// temp dir, returning the config and the open device (closed by the test).
func durableConfig(t *testing.T, dir string) (Config, *wal.FileDevice) {
	t.Helper()
	dev, err := wal.OpenFile(dir, wal.FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := db.New(db.OCC, ycsb.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return Config{DB: engine, Schema: ycsb.Schema(), WAL: wal.New(dev, nil)}, dev
}

// TestDurableServeRecoverReplay is the durability e2e: serve writes over a
// real FileDevice, shut down, recover the directory, replay into a fresh
// engine, and check the replayed state equals exactly what was acked.
func TestDurableServeRecoverReplay(t *testing.T) {
	dir := t.TempDir()
	cfg, dev := durableConfig(t, dir)
	ts, cleanup := startServer(t, cfg)
	c := ts.c

	// A mix of shapes: pipelined inserts (one batched commit), an update,
	// a delete, and a TXN — all acked, so all must survive the restart.
	reqs := []wire.Request{
		{Op: wire.OpInsert, Key: 1, Vals: row(1)},
		{Op: wire.OpInsert, Key: 2, Vals: row(2)},
		{Op: wire.OpInsert, Key: 3, Vals: row(3)},
	}
	for i := range reqs {
		if err := c.WriteRequest(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		r, err := c.ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != wire.StatusOK {
			t.Fatalf("insert %d: %v", i, r.Status)
		}
	}
	for _, req := range []wire.Request{
		{Op: wire.OpPut, Key: 2, Vals: row(22)},
		{Op: wire.OpDelete, Key: 3},
		{Op: wire.OpTxn, Ops: []wire.Request{
			{Op: wire.OpInsert, Key: 4, Vals: row(4)},
			{Op: wire.OpPut, Key: 1, Vals: row(11)},
		}},
	} {
		r, err := c.Do(&req)
		if err != nil {
			t.Fatalf("%v: %v", req.Op, err)
		}
		if r.Status != wire.StatusOK {
			t.Fatalf("%v: %v", req.Op, r.Status)
		}
	}

	snap := ts.srv.Snapshot()
	if snap.WALRecords == 0 || snap.WALFlushes == 0 {
		t.Fatalf("wal counters not moving: flushes=%d records=%d", snap.WALFlushes, snap.WALRecords)
	}
	if snap.WALSyncNsP99 == 0 {
		t.Fatal("wal_sync_ns_p99 is zero with flushes recorded")
	}
	if snap.WALDeviceErrors != 0 {
		t.Fatalf("wal_device_errors=%d on a healthy device", snap.WALDeviceErrors)
	}

	cleanup()
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	recs, info, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.TruncatedBytes != 0 {
		t.Fatalf("clean shutdown truncated %d bytes", info.TruncatedBytes)
	}
	fresh, err := db.New(db.OCC, ycsb.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Replay(fresh, recs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Anomalies != 0 {
		t.Fatalf("replay into empty engine hit %d anomalies", st.Anomalies)
	}
	if st.Records != len(recs) {
		t.Fatalf("replayed %d of %d records", st.Records, len(recs))
	}

	want := map[uint64][]uint64{1: row(11), 2: row(22), 4: row(4)}
	gone := []uint64{3, 99}
	sess := fresh.NewSession()
	err = sess.Run(func(tx db.Tx) error {
		for k, v := range want {
			got, err := tx.Read(0, k)
			if err != nil {
				t.Errorf("key %d: %v", k, err)
				continue
			}
			if !reflect.DeepEqual(got, v) {
				t.Errorf("key %d: %v, want %v", k, got, v)
			}
		}
		for _, k := range gone {
			if _, err := tx.Read(0, k); err != db.ErrNotFound {
				t.Errorf("key %d: err %v, want ErrNotFound", k, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDurableDeviceFailureDegrades kills the device mid-serving and checks
// the contract: the in-flight write is ERRed (never acked), later writes
// are refused without touching the engine, reads keep serving, and the
// failure is counted exactly once.
func TestDurableDeviceFailureDegrades(t *testing.T) {
	engine, err := db.New(db.OCC, ycsb.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fd := &wal.FailingDevice{Inner: &wal.MemDevice{}, OK: 1}
	cfg := Config{DB: engine, Schema: ycsb.Schema(), WAL: wal.New(fd, nil)}
	ts, cleanup := startServer(t, cfg)
	defer cleanup()
	c := ts.c

	// First write rides the device's one good flush.
	if r, err := c.Do(&wire.Request{Op: wire.OpInsert, Key: 1, Vals: row(1)}); err != nil || r.Status != wire.StatusOK {
		t.Fatalf("first insert: %v %v", r.Status, err)
	}
	// Second write hits the dead device: committed in memory but never
	// durable, so the server must answer ERR, not OK.
	if r, err := c.Do(&wire.Request{Op: wire.OpInsert, Key: 2, Vals: row(2)}); err != nil || r.Status != wire.StatusErr {
		t.Fatalf("insert on failed device: %v %v, want ERR", r.Status, err)
	}
	// Subsequent writes are refused up front; reads still serve.
	if r, err := c.Do(&wire.Request{Op: wire.OpPut, Key: 1, Vals: row(9)}); err != nil || r.Status != wire.StatusErr {
		t.Fatalf("degraded put: %v %v, want ERR", r.Status, err)
	}
	if r, err := c.Do(&wire.Request{Op: wire.OpTxn, Ops: []wire.Request{
		{Op: wire.OpPut, Key: 1, Vals: row(9)},
	}}); err != nil || r.Status != wire.StatusErr {
		t.Fatalf("degraded txn: %v %v, want ERR", r.Status, err)
	}
	if r, err := c.Do(&wire.Request{Op: wire.OpGet, Key: 1}); err != nil || r.Status != wire.StatusOK || r.Row[0] != 1 {
		t.Fatalf("degraded read: %+v %v, want key 1 served", r, err)
	}
	// Read-only TXNs still serve too.
	if r, err := c.Do(&wire.Request{Op: wire.OpTxn, Ops: []wire.Request{
		{Op: wire.OpGet, Key: 1},
	}}); err != nil || r.Status != wire.StatusOK {
		t.Fatalf("degraded read-only txn: %v %v, want OK", r.Status, err)
	}

	snap := ts.srv.Snapshot()
	if snap.WALDeviceErrors != 1 {
		t.Fatalf("wal_device_errors=%d, want exactly 1 (sticky failure counts once)", snap.WALDeviceErrors)
	}
	// Exactly one write committed in memory and was then ERRed (key 2);
	// the refused-up-front writes never committed, so they don't count.
	if snap.WALUnackedWrites != 1 {
		t.Fatalf("wal_unacked_writes=%d, want 1 (the ERRed insert is committed but unlogged)", snap.WALUnackedWrites)
	}
	// STATS over the wire reports the same degradation.
	r, err := c.Do(&wire.Request{Op: wire.OpStats})
	if err != nil || r.Stats == nil {
		t.Fatalf("stats: %+v %v", r, err)
	}
	if r.Stats.WALDeviceErrors != 1 {
		t.Fatalf("wire wal_device_errors=%d, want 1", r.Stats.WALDeviceErrors)
	}
}

// TestReplayIdempotent replays the same records twice into one engine: the
// second pass must converge on the same state (upsert semantics) while
// counting the anomalies it absorbed.
func TestReplayIdempotent(t *testing.T) {
	redo1, err := AppendRedo(nil, []*wire.Request{
		{Op: wire.OpInsert, Table: 0, Key: 1, Vals: row(1)},
		{Op: wire.OpInsert, Table: 0, Key: 2, Vals: row(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	redo2, err := AppendRedo(nil, []*wire.Request{
		{Op: wire.OpPut, Table: 0, Key: 1, Vals: row(10)},
		{Op: wire.OpDelete, Table: 0, Key: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := []wal.Record{
		{LSN: 1, TS: 100, H: 0, Seq: 0, Data: redo1},
		{LSN: 2, TS: 200, H: 0, Seq: 1, Data: redo2},
	}

	engine, err := db.New(db.OCC, ycsb.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := Replay(engine, recs)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Anomalies != 0 || st1.Records != 2 || st1.Ops != 4 {
		t.Fatalf("first replay: %+v", st1)
	}
	st2, err := Replay(engine, recs)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Anomalies == 0 {
		t.Fatal("second replay reported no anomalies; upsert paths never ran")
	}

	sess := engine.NewSession()
	if err := sess.Run(func(tx db.Tx) error {
		got, err := tx.Read(0, 1)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, row(10)) {
			t.Errorf("key 1: %v, want %v", got, row(10))
		}
		if _, err := tx.Read(0, 2); err != db.ErrNotFound {
			t.Errorf("key 2: err %v, want ErrNotFound", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRequiresCommitTS checks the configuration guard: protocols
// without a machine-wide commit timestamp cannot serve durably.
func TestDurableRequiresCommitTS(t *testing.T) {
	engine, err := db.New(db.Silo, ycsb.Schema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{DB: engine, WAL: wal.New(&wal.MemDevice{}, nil)})
	if err == nil {
		t.Fatal("New accepted a durable SILO server; Silo has no commit timestamps")
	}
}

// TestGroupCommitAckRequiresOwnFlush pins the fix for the acked-write-loss
// race: durability is tracked per append (flush-generation style), so a
// record appended at a stale commit timestamp — its worker descheduled
// while another connection's later-timestamped commit already flushed —
// must not be acknowledged until a flush actually drains it. A timestamp
// high-water mark acked it immediately, and a crash before the next flush
// lost an acknowledged write. Flushes are driven by hand (no flusher
// goroutine) so the adversarial interleaving is exact.
func TestGroupCommitAckRequiresOwnFlush(t *testing.T) {
	dev := &wal.MemDevice{}
	log := wal.New(dev, nil)
	gc := &groupCommitter{srv: &Server{}, log: log, done: make(chan struct{})}
	gc.cond = sync.NewCond(&gc.mu)
	hA, hB := log.NewHandle(), log.NewHandle()

	// Connection B commits at cts=200, appends, and its flush completes.
	seqB, _, err := gc.append(hB, 200, []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	gc.flushOnce()
	if err := gc.wait(seqB); err != nil {
		t.Fatalf("flushed append not acked: %v", err)
	}

	// Connection A committed earlier (cts=100) but its worker only now runs
	// the append: the record is buffered, nothing covering it has flushed.
	seqA, _, err := gc.append(hA, 100, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	acked := make(chan error, 1)
	go func() { acked <- gc.wait(seqA) }()
	select {
	case err := <-acked:
		t.Fatalf("wait returned (err=%v) with the record still buffered", err)
	case <-time.After(50 * time.Millisecond):
	}

	gc.flushOnce()
	if err := <-acked; err != nil {
		t.Fatalf("append not acked by its own flush: %v", err)
	}
	// The ack must imply the record is on the device.
	for _, r := range dev.Records() {
		if string(r.Data) == "a" {
			return
		}
	}
	t.Fatal("acknowledged record missing from the device")
}
