package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"ordo/internal/telemetry"
	"ordo/internal/telemetry/span"
)

// NewAdminHandler builds ordod's admin mux over one server:
//
//	/metrics       Prometheus text exposition of the bound registry
//	/healthz       JSON liveness: 200 while serving, 503 when the WAL
//	               device failed (reads-only) or a drain is in progress
//	/varz          the full Snapshot() JSON document
//	/trace         the event tracer's ring dump; ?kind= and ?limit=
//	               filter server-side, ?since_ns= is the poll cursor
//	               (pass back the previous dump's now_ns)
//	/spans         the distributed-tracing span ring (404 when tracing
//	               is off); ?trace=<16-hex-digit id> filters to one
//	               trace, ?limit= keeps the newest N
//	/debug/pprof/  the standard profiles, on this mux only — the admin
//	               port works in binaries that never touch DefaultServeMux
//
// The handler is safe to serve before Serve is called and after Shutdown
// returns; endpoints read counters, never live sessions.
func NewAdminHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		t := s.cfg.Telemetry
		if t == nil {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", telemetry.ContentType)
		_ = t.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/varz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		var tr *telemetry.Tracer
		if s.cfg.Telemetry != nil {
			tr = s.cfg.Telemetry.tracer
		}
		q := r.URL.Query()
		var sinceNS int64
		if v := q.Get("since_ns"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "bad since_ns: "+err.Error(), http.StatusBadRequest)
				return
			}
			sinceNS = n
		}
		limit := 0
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
				return
			}
			limit = n
		}
		// nil tracer dumps an empty document
		body, err := tr.FilteredDumpJSON(q.Get("kind"), sinceNS, limit)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		ring := s.spanRing()
		if ring == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		var trace span.TraceID
		if v := q.Get("trace"); v != "" {
			id, err := strconv.ParseUint(v, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
				return
			}
			trace = span.TraceID(id)
		}
		limit := 0
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
				return
			}
			limit = n
		}
		body, err := ring.DumpJSON(trace, limit)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// healthzBody is the /healthz JSON document. WALUnackedWrites rides along
// because it is the one counter an operator must check before trusting a
// degraded server's reads: it bounds how much acknowledged-looking state
// exists only in memory (DESIGN.md §10).
type healthzBody struct {
	Status           string  `json:"status"`
	Protocol         string  `json:"protocol"`
	WALDegraded      bool    `json:"wal_degraded"`
	WALUnackedWrites uint64  `json:"wal_unacked_writes"`
	ShuttingDown     bool    `json:"shutting_down"`
	BoundaryNS       float64 `json:"boundary_ns,omitempty"`
	UncertainRate    float64 `json:"uncertain_rate,omitempty"`

	// Replication fields, present only on replicated servers. ReplEpoch
	// and ReplWatermarkNS always encode there (no omitempty): an operator
	// deciding whether a node is safe to promote needs to distinguish
	// "epoch 0, watermark 0" from "not replicated".
	ReplRole        string `json:"repl_role,omitempty"`
	ReplEpoch       uint64 `json:"repl_epoch"`
	ReplWatermarkNS uint64 `json:"repl_watermark_ns"`
	ReplLagRecords  uint64 `json:"repl_lag_records,omitempty"`
	ReplContactMS   int64  `json:"repl_contact_ms,omitempty"`
	ReplLagExceeded bool   `json:"repl_lag_exceeded,omitempty"`
	LeaderAddr      string `json:"leader_addr,omitempty"`
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	body := healthzBody{
		Status:           "ok",
		Protocol:         s.cfg.DB.Protocol().String(),
		WALDegraded:      s.Degraded(),
		WALUnackedWrites: s.m.walUnackedWrites.Load(),
		ShuttingDown:     s.inShutdown.Load(),
	}
	if m := s.cfg.Monitor; m != nil {
		cs := m.Snapshot()
		body.BoundaryNS = cs.BoundaryNS
		body.UncertainRate = cs.UncertainRate
	}
	if rs := s.cfg.Repl; rs != nil {
		body.ReplRole = rs.Role().String()
		body.ReplEpoch = rs.Epoch()
		body.ReplWatermarkNS = rs.WatermarkNS()
		body.ReplLagRecords = rs.Lag()
		body.ReplContactMS = rs.ContactAge().Milliseconds()
		body.ReplLagExceeded = rs.LagExceeded()
		body.LeaderAddr = rs.LeaderAddr()
	}
	code := http.StatusOK
	switch {
	case body.WALDegraded:
		body.Status = "degraded"
		code = http.StatusServiceUnavailable
	case body.ShuttingDown:
		body.Status = "shutting_down"
		code = http.StatusServiceUnavailable
	case body.ReplLagExceeded:
		// A follower that lost its leader or fell too far behind must stop
		// looking healthy, so a balancer routes reads elsewhere and an
		// operator notices before promoting a stale replica.
		body.Status = "repl_lagging"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

// AdminServer is the admin HTTP listener's lifecycle handle.
type AdminServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// ServeAdmin listens on addr and serves h in a background goroutine. The
// caller owns the returned handle and must Close it during drain; Close
// waits for the serve goroutine, so the goroutine-leak guard in tests
// holds.
func ServeAdmin(addr string, h http.Handler) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &AdminServer{ln: ln, srv: &http.Server{Handler: h}, done: make(chan struct{})}
	go func() {
		defer close(a.done)
		_ = a.srv.Serve(ln)
	}()
	return a, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *AdminServer) Addr() net.Addr { return a.ln.Addr() }

// Close drains the admin server: graceful shutdown with a short grace
// period (in-flight scrapes finish), then a hard close for stragglers — a
// 30-second pprof profile must not block the daemon's exit.
func (a *AdminServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err := a.srv.Shutdown(ctx)
	if err != nil {
		err = a.srv.Close()
	}
	<-a.done
	return err
}
